// Workload generator tests: Burgers analytical solution (boundary
// conditions, PDE residual, block consistency), synthetic ERA5 (planted
// orthonormal modes, variance ordering, hyperslab determinism), low-rank
// factories, batch sources and row partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "io/snapshot_store.hpp"
#include "linalg/svd.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/era5_synthetic.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::ortho_defect;
namespace wl = workloads;

// ---------------------------------------------------------------- Burgers

TEST(Burgers, BoundaryConditionAtZero) {
  wl::Burgers b;
  for (double t : {0.0, 0.5, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(b.solution(0.0, t), 0.0);
  }
}

TEST(Burgers, BoundaryConditionAtL) {
  // u(L, t) ≈ 0 — the analytical solution decays exponentially toward
  // x = L for Re = 1000 (≈1e-10, not exactly zero; the paper's boundary
  // condition is satisfied to solver accuracy).
  wl::Burgers b;
  for (double t : {0.0, 1.0, 2.0}) {
    EXPECT_LT(std::fabs(b.solution(1.0, t)), 1e-8);
  }
}

TEST(Burgers, SolutionNonNegativeOnDomain) {
  wl::BurgersConfig cfg;
  cfg.grid_points = 200;
  cfg.snapshots = 10;
  wl::Burgers b(cfg);
  const Matrix a = b.snapshot_matrix();
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) EXPECT_GE(a(i, j), 0.0);
  }
}

TEST(Burgers, SatisfiesPdeResidual) {
  // Verify u_t + u u_x = ν u_xx with central finite differences at
  // interior sample points. Truncation error dominates; the test bounds
  // the relative residual, which would be O(1) if the formula were wrong.
  wl::Burgers b;
  const double nu = 1.0 / b.config().reynolds;
  const double h = 1e-5;   // space step for FD
  const double dt = 1e-6;  // time step for FD
  for (double x : {0.2, 0.4, 0.6}) {
    for (double t : {0.5, 1.0, 1.5}) {
      const double u = b.solution(x, t);
      const double ut =
          (b.solution(x, t + dt) - b.solution(x, t - dt)) / (2 * dt);
      const double ux =
          (b.solution(x + h, t) - b.solution(x - h, t)) / (2 * h);
      const double uxx = (b.solution(x + h, t) - 2 * u +
                          b.solution(x - h, t)) /
                         (h * h);
      const double residual = ut + u * ux - nu * uxx;
      const double scale = std::max({std::fabs(ut), std::fabs(u * ux),
                                     std::fabs(nu * uxx), 1e-12});
      EXPECT_LT(std::fabs(residual) / scale, 1e-3)
          << "x=" << x << " t=" << t;
    }
  }
}

TEST(Burgers, SnapshotMatrixMatchesPointwise) {
  wl::BurgersConfig cfg;
  cfg.grid_points = 64;
  cfg.snapshots = 5;
  wl::Burgers b(cfg);
  const Matrix a = b.snapshot_matrix();
  const Vector x = b.grid();
  for (Index j = 0; j < 5; ++j) {
    const double t = b.time_at(j);
    for (Index i = 0; i < 64; i += 7) {
      EXPECT_DOUBLE_EQ(a(i, j), b.solution(x[i], t));
    }
  }
}

TEST(Burgers, BlockConsistentWithFullMatrix) {
  wl::BurgersConfig cfg;
  cfg.grid_points = 100;
  cfg.snapshots = 20;
  wl::Burgers b(cfg);
  const Matrix full = b.snapshot_matrix();
  const Matrix block = b.snapshot_block(30, 40, 5, 10);
  expect_matrix_near(block, full.block(30, 5, 40, 10), 0.0);
}

TEST(Burgers, GridEndpoints) {
  wl::Burgers b;
  const Vector x = b.grid();
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[x.size() - 1], b.config().length);
}

TEST(Burgers, ConfigValidation) {
  wl::BurgersConfig bad;
  bad.grid_points = 1;
  EXPECT_THROW(wl::Burgers{bad}, Error);
  wl::BurgersConfig bad2;
  bad2.reynolds = -1.0;
  EXPECT_THROW(wl::Burgers{bad2}, Error);
}

TEST(Burgers, SingularSpectrumDecays) {
  // Advection-dominated (Re = 1000) data has a moving front, so the
  // decay is slower than diffusive problems but still strong: the
  // spectrum must be monotone with σ_10/σ_1 < 0.1 and σ_30/σ_1 < 1e-3.
  wl::BurgersConfig cfg;
  cfg.grid_points = 256;
  cfg.snapshots = 60;
  const Matrix a = wl::Burgers(cfg).snapshot_matrix();
  const Vector s = singular_values(a);
  for (Index i = 1; i < s.size(); ++i) EXPECT_GE(s[i - 1], s[i]);
  EXPECT_LT(s[10] / s[0], 0.1);
  EXPECT_LT(s[30] / s[0], 1e-2);
}

// ------------------------------------------------------------------ ERA5

wl::Era5Config small_era5() {
  wl::Era5Config cfg;
  cfg.n_lon = 36;
  cfg.n_lat = 18;
  cfg.snapshots = 400;
  cfg.n_modes = 4;
  return cfg;
}

TEST(Era5, TrueModesOrthonormal) {
  wl::Era5Synthetic era(small_era5());
  EXPECT_LT(ortho_defect(era.true_modes()), 1e-12);
}

TEST(Era5, AmplitudeVariancesDescending) {
  wl::Era5Synthetic era(small_era5());
  const Vector stds = era.amplitude_std();
  for (Index m = 1; m < stds.size(); ++m) {
    EXPECT_GT(stds[m - 1], stds[m]) << "mode " << m;
  }
}

TEST(Era5, MeanFieldNearBasePressure) {
  wl::Era5Synthetic era(small_era5());
  const Vector& mean = era.mean_field();
  for (Index i = 0; i < mean.size(); ++i) {
    EXPECT_NEAR(mean[i], era.config().base_pressure, 10.0);
  }
}

TEST(Era5, HyperslabsDeterministicAndConsistent) {
  wl::Era5Synthetic era(small_era5());
  const Matrix full = era.snapshot_block(0, era.grid_size(), 10, 6);
  const Matrix sub = era.snapshot_block(100, 50, 12, 3);
  expect_matrix_near(sub, full.block(100, 2, 50, 3), 0.0);
  // Re-reading yields identical values (stateless noise).
  const Matrix again = era.snapshot_block(100, 50, 12, 3);
  expect_matrix_near(again, sub, 0.0);
}

TEST(Era5, SameSeedSameData) {
  wl::Era5Synthetic a(small_era5()), b(small_era5());
  expect_matrix_near(a.snapshot_block(0, 100, 0, 5),
                     b.snapshot_block(0, 100, 0, 5), 0.0);
}

TEST(Era5, DifferentSeedDifferentData) {
  wl::Era5Config cfg2 = small_era5();
  cfg2.seed = 777;
  wl::Era5Synthetic a(small_era5()), b(cfg2);
  EXPECT_GT(max_abs_diff(a.snapshot_block(0, 100, 0, 2),
                         b.snapshot_block(0, 100, 0, 2)),
            1e-3);
}

TEST(Era5, SvdRecoversPlantedModes) {
  // The defining property of the substitution: the SVD of the
  // mean-subtracted snapshot matrix recovers the planted modes.
  wl::Era5Config cfg = small_era5();
  cfg.noise_std = 0.01;
  wl::Era5Synthetic era(cfg);
  const Matrix a =
      era.snapshot_block(0, era.grid_size(), 0, cfg.snapshots, true);
  SvdOptions opts;
  opts.rank = cfg.n_modes;
  const SvdResult f = svd(a, opts);
  for (Index m = 0; m < cfg.n_modes; ++m) {
    EXPECT_GT(post::mode_cosine(f.u, m, era.true_modes(), m), 0.99)
        << "mode " << m;
  }
}

TEST(Era5, SnapshotVectorMatchesBlock) {
  wl::Era5Synthetic era(small_era5());
  const Vector snap = era.snapshot(17);
  const Matrix block = era.snapshot_block(0, era.grid_size(), 17, 1);
  testing::expect_vector_near(snap, block.col(0), 0.0);
}

TEST(Era5, ConfigValidation) {
  wl::Era5Config bad = small_era5();
  bad.n_modes = 0;
  EXPECT_THROW(wl::Era5Synthetic{bad}, Error);
  wl::Era5Config bad2 = small_era5();
  bad2.amplitude_decay = 1.5;
  EXPECT_THROW(wl::Era5Synthetic{bad2}, Error);
}

TEST(Era5, GridIndexLayout) {
  wl::Era5Synthetic era(small_era5());
  EXPECT_EQ(era.grid_index(0, 0), 0);
  EXPECT_EQ(era.grid_index(0, 35), 35);
  EXPECT_EQ(era.grid_index(1, 0), 36);
  EXPECT_EQ(era.grid_size(), 36 * 18);
}

// --------------------------------------------------------------- low-rank

TEST(LowRank, SpectraFactories) {
  const Vector g = wl::geometric_spectrum(4, 8.0, 0.5);
  EXPECT_DOUBLE_EQ(g[0], 8.0);
  EXPECT_DOUBLE_EQ(g[3], 1.0);
  const Vector a = wl::algebraic_spectrum(3, 6.0, 1.0);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 3.0);
  EXPECT_DOUBLE_EQ(a[2], 2.0);
  EXPECT_THROW(wl::geometric_spectrum(0, 1.0, 0.5), Error);
  EXPECT_THROW(wl::algebraic_spectrum(3, -1.0, 1.0), Error);
}

TEST(LowRank, SyntheticHasExactSpectrum) {
  Rng rng(60);
  const Vector spectrum = wl::geometric_spectrum(5, 3.0, 0.6);
  const Matrix a = wl::synthetic_low_rank(40, 25, spectrum, rng);
  const Vector s = singular_values(a);
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(s[i], spectrum[i], 1e-12);
  for (Index i = 5; i < s.size(); ++i) EXPECT_NEAR(s[i], 0.0, 1e-12);
}

TEST(LowRank, AscendingSpectrumRejected) {
  Rng rng(61);
  Vector bad{1.0, 2.0};
  EXPECT_THROW(wl::synthetic_low_rank(10, 10, bad, rng), Error);
}

TEST(LowRank, RandomOrthonormal) {
  Rng rng(62);
  const Matrix q = wl::random_orthonormal(20, 6, rng);
  EXPECT_LT(ortho_defect(q), 1e-13);
  EXPECT_THROW(wl::random_orthonormal(3, 5, rng), Error);
}

// ------------------------------------------------------------ batch source

TEST(BatchSource, MatrixSourceYieldsAllColumns) {
  const Matrix data = testing::random_matrix(8, 10, 63);
  wl::MatrixBatchSource src(data);
  Matrix acc;
  while (!src.exhausted()) acc = hcat(acc, src.next_batch(3));
  expect_matrix_near(acc, data, 0.0);
  EXPECT_THROW(src.next_batch(1), Error);
}

TEST(BatchSource, MatrixSourceRowBlock) {
  const Matrix data = testing::random_matrix(10, 6, 64);
  wl::MatrixBatchSource src(data, 2, 5);
  EXPECT_EQ(src.rows(), 5);
  const Matrix b = src.next_batch(6);
  expect_matrix_near(b, data.block(2, 0, 5, 6), 0.0);
}

TEST(BatchSource, TailBatchSmaller) {
  const Matrix data = testing::random_matrix(4, 7, 65);
  wl::MatrixBatchSource src(data);
  EXPECT_EQ(src.next_batch(5).cols(), 5);
  EXPECT_EQ(src.next_batch(5).cols(), 2);  // tail
  EXPECT_TRUE(src.exhausted());
}

TEST(BatchSource, StoreSourceStreamsRowBlock) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path =
      (dir / ("parsvd_bs_" + std::to_string(::getpid()) + ".snap")).string();
  const Matrix data = testing::random_matrix(12, 9, 66);
  {
    io::SnapshotWriter w(path, 12, 4);
    w.append_batch(data);
    w.close();
  }
  wl::StoreBatchSource src(path, 3, 6);
  Matrix acc;
  while (!src.exhausted()) acc = hcat(acc, src.next_batch(4));
  expect_matrix_near(acc, data.block(3, 0, 6, 9), 0.0);
  std::filesystem::remove(path);
}

TEST(BatchSource, GeneratorSource) {
  wl::GeneratorBatchSource src(5, 12, [](Index col0, Index ncols) {
    Matrix m(5, ncols);
    for (Index j = 0; j < ncols; ++j) {
      for (Index i = 0; i < 5; ++i) {
        m(i, j) = static_cast<double>(col0 + j) + 0.1 * static_cast<double>(i);
      }
    }
    return m;
  });
  const Matrix b1 = src.next_batch(5);
  EXPECT_DOUBLE_EQ(b1(0, 0), 0.0);
  const Matrix b2 = src.next_batch(5);
  EXPECT_DOUBLE_EQ(b2(0, 0), 5.0);
  EXPECT_EQ(src.position(), 10);
}

TEST(BatchSource, GeneratorShapeValidated) {
  wl::GeneratorBatchSource src(5, 10,
                               [](Index, Index) { return Matrix(4, 1); });
  EXPECT_THROW(src.next_batch(1), Error);
}

// ------------------------------------------------------------- partition

TEST(PartitionRows, EvenSplit) {
  const auto p = wl::partition_rows(100, 4, 2);
  EXPECT_EQ(p.offset, 50);
  EXPECT_EQ(p.count, 25);
}

TEST(PartitionRows, RemainderSpreadsToFirstRanks) {
  // 10 rows over 3 ranks: 4, 3, 3.
  EXPECT_EQ(wl::partition_rows(10, 3, 0).count, 4);
  EXPECT_EQ(wl::partition_rows(10, 3, 1).count, 3);
  EXPECT_EQ(wl::partition_rows(10, 3, 2).count, 3);
  EXPECT_EQ(wl::partition_rows(10, 3, 1).offset, 4);
  EXPECT_EQ(wl::partition_rows(10, 3, 2).offset, 7);
}

TEST(PartitionRows, CoversExactly) {
  for (int size : {1, 3, 7}) {
    Index total = 0;
    for (int r = 0; r < size; ++r) {
      const auto p = wl::partition_rows(53, size, r);
      EXPECT_EQ(p.offset, total);
      total += p.count;
    }
    EXPECT_EQ(total, 53);
  }
}

TEST(PartitionRows, Validation) {
  EXPECT_THROW(wl::partition_rows(5, 0, 0), Error);
  EXPECT_THROW(wl::partition_rows(5, 2, 2), Error);
  EXPECT_THROW(wl::partition_rows(2, 5, 0), Error);
}

}  // namespace
}  // namespace parsvd
