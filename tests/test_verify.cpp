// Tests of the static verification layer (src/verify):
//   * the seeded-defect schedules are all detected, each with the
//     expected violation kind and a non-empty counterexample trace;
//   * every real-protocol schedule the emitters produce passes;
//   * cross-validation — the model is tied back to reality by running
//     the REAL threaded collectives under run_on() and comparing the
//     context's message/byte counters against the schedule's send
//     totals. A drift between the emitters and the production wire
//     behaviour shows up here as a count or volume mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "core/apmos.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"
#include "verify/checker.hpp"
#include "verify/schedules.hpp"
#include "verify/selftest.hpp"

namespace parsvd::verify {
namespace {

// ------------------------------------------------------- negative tests

TEST(VerifyNegative, SeededDefectsAllDetected) {
  for (const SeededDefect& defect : seeded_defects()) {
    const CheckReport report = check_schedule(defect.schedule);
    ASSERT_FALSE(report.ok()) << defect.schedule.name;
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) {
        found = true;
        EXPECT_FALSE(v.trace.empty())
            << defect.schedule.name << ": counterexample trace missing";
      }
    }
    EXPECT_TRUE(found) << defect.schedule.name << ": expected a "
                       << to_string(defect.expected) << " violation, got\n"
                       << report.to_string();
  }
}

TEST(VerifyNegative, ReportRendersCounterexample) {
  const SeededDefect defect = seeded_defects().front();
  const std::string rendered = check_schedule(defect.schedule).to_string();
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
  EXPECT_NE(rendered.find("rank "), std::string::npos);
}

TEST(VerifyNegative, TagRegistry) {
  EXPECT_TRUE(tag_registered(pmpi::tags::kBcast));
  EXPECT_TRUE(tag_registered(pmpi::tags::kAllreduce));
  EXPECT_TRUE(tag_registered(pmpi::tags::tsqr_up(0)));
  EXPECT_TRUE(tag_registered(pmpi::tags::tsqr_down(30)));
  EXPECT_TRUE(tag_registered(pmpi::tags::apmos_w()));
  EXPECT_TRUE(tag_registered(pmpi::tags::kUserBase));
  EXPECT_TRUE(tag_registered(pmpi::tags::kUserBase + 12345));
  EXPECT_FALSE(tag_registered(0));
  EXPECT_FALSE(tag_registered(7));
  EXPECT_FALSE(tag_registered(-1));
  EXPECT_FALSE(tag_registered(-11));
  EXPECT_FALSE(tag_registered(pmpi::tags::kApmosGatherBase +
                              pmpi::tags::kRangeWidth));
}

// ------------------------------------------------------ cross-validation

struct Totals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

Totals schedule_totals(const Schedule& s) {
  Totals t;
  for (const CommScript& script : s.ranks) {
    for (const CommEvent& e : script.events()) {
      if (e.kind != CommEvent::Kind::Send) continue;
      ++t.messages;
      t.bytes += e.bytes;
    }
  }
  return t;
}

std::shared_ptr<pmpi::Context> make_ctx(int p, const CollectiveConfig& cfg) {
  auto ctx = std::make_shared<pmpi::Context>(p);
  ctx->set_collective_algo(cfg.algo);
  ctx->set_eager_threshold_bytes(cfg.eager_threshold_bytes);
  ctx->set_tree_min_ranks(cfg.tree_min_ranks);
  return ctx;
}

/// Run the real collective and require the schedule to (a) pass the
/// checker and (b) predict the context's message/byte counters exactly.
void expect_matches_reality(
    const Schedule& s, int p, const CollectiveConfig& cfg,
    const std::function<void(pmpi::Communicator&)>& body) {
  const CheckReport report = check_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto ctx = make_ctx(p, cfg);
  pmpi::run_on(ctx, body);
  const Totals t = schedule_totals(s);
  EXPECT_EQ(ctx->total_messages(), t.messages) << s.name;
  EXPECT_EQ(ctx->total_bytes(), t.bytes) << s.name;
}

std::vector<CollectiveConfig> cross_configs() {
  using A = pmpi::CollectiveAlgo;
  return {
      {A::Flat, std::uint64_t{1} << 14, 8},
      {A::Tree, std::uint64_t{1} << 14, 8},
      {A::Auto, 256, 4},
  };
}

const int kRankCounts[] = {1, 2, 3, 5, 8, 16};

TEST(VerifyCrossValidation, Bcast) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      for (const int root : {0, p - 1}) {
        const Schedule s = script_bcast(p, root, 7 * sizeof(double), cfg);
        expect_matches_reality(s, p, cfg, [root](pmpi::Communicator& comm) {
          std::vector<double> v(7, comm.rank() == root ? 1.5 : 0.0);
          comm.bcast(v, root);
        });
      }
    }
  }
}

TEST(VerifyCrossValidation, Gatherv) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        per_rank[static_cast<std::size_t>(r)] =
            sizeof(double) * static_cast<std::uint64_t>(3 + r);
      }
      const Schedule s = script_gather(p, 0, per_rank, cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        std::vector<double> local(static_cast<std::size_t>(3 + comm.rank()),
                                  2.0);
        comm.gatherv<double>(local, 0);
      });
    }
  }
}

TEST(VerifyCrossValidation, Allgather) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      const Schedule s = script_allgather(p, sizeof(double), cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        comm.allgather_double(static_cast<double>(comm.rank()));
      });
    }
  }
}

TEST(VerifyCrossValidation, ReduceAndAllreduce) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      // 16 doubles sit below the 256 B Auto threshold, 64 above it: both
      // sides of the eager switch are validated against reality.
      for (const std::size_t n : {std::size_t{16}, std::size_t{64}}) {
        const Schedule sr = script_reduce(p, 0, n * sizeof(double), cfg);
        expect_matches_reality(sr, p, cfg, [n](pmpi::Communicator& comm) {
          std::vector<double> v(n, static_cast<double>(comm.rank()));
          comm.reduce(v, pmpi::Op::Sum, 0);
        });
        const Schedule sa = script_allreduce(p, n * sizeof(double), cfg);
        expect_matches_reality(sa, p, cfg, [n](pmpi::Communicator& comm) {
          std::vector<double> v(n, 1.0);
          comm.allreduce(v, pmpi::Op::Sum);
        });
      }
    }
  }
}

TEST(VerifyCrossValidation, ScatterRows) {
  const CollectiveConfig cfg;  // scatter has a single topology
  for (const int p : kRankCounts) {
    const Index cols = 3;
    std::vector<Index> rows_per_rank(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> block_bytes(static_cast<std::size_t>(p));
    Index total = 0;
    for (int r = 0; r < p; ++r) {
      rows_per_rank[static_cast<std::size_t>(r)] = r + 1;
      block_bytes[static_cast<std::size_t>(r)] =
          2 * sizeof(std::int64_t) +
          sizeof(double) * static_cast<std::uint64_t>((r + 1) * cols);
      total += r + 1;
    }
    const Schedule s = script_scatter_rows(p, 0, block_bytes, cfg);
    expect_matches_reality(
        s, p, cfg, [&rows_per_rank, total, cols](pmpi::Communicator& comm) {
          Matrix full;
          if (comm.rank() == 0) {
            full = Matrix(total, cols);
            for (Index i = 0; i < full.size(); ++i) full.data()[i] = 0.25;
          }
          comm.scatter_rows(full, rows_per_rank, 0);
        });
  }
}

TEST(VerifyCrossValidation, TsqrTree) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      const Index k = 4;
      const Schedule s = script_tsqr_tree(p, k, cfg);
      expect_matches_reality(s, p, cfg, [k](pmpi::Communicator& comm) {
        Matrix a(8, k);  // local rows >= k, the tree precondition
        for (Index i = 0; i < a.size(); ++i) {
          a.data()[i] = 0.1 * static_cast<double>(
                                  (i * 7 + comm.rank() * 13) % 23) +
                        1.0;
        }
        tsqr(comm, a, TsqrVariant::Tree);
      });
    }
  }
}

// ----------------------- metrics-registry vs schedule cross-validation

// The accessors consumed above (total_messages / total_bytes) are thin
// views over the per-context obs::Registry. Pin the registry series
// themselves — dotted names, per-sender split, payload histogram —
// against the schedule predictions for one flat and one tree bcast, so
// a metric rename or a half-done migration cannot silently detach the
// Context accessors from the registry while both tests keep passing.
TEST(VerifyCrossValidation, MetricsRegistryTotals) {
  using A = pmpi::CollectiveAlgo;
  constexpr int p = 8;
  constexpr std::size_t n = 48;  // doubles, comfortably above eager games
  for (const A algo : {A::Flat, A::Tree}) {
    const CollectiveConfig cfg{algo, std::uint64_t{1} << 14, 4};
    const Schedule s = script_bcast(p, 0, n * sizeof(double), cfg);
    ASSERT_TRUE(check_schedule(s).ok());
    auto ctx = make_ctx(p, cfg);
    pmpi::run_on(ctx, [](pmpi::Communicator& comm) {
      std::vector<double> v(n, comm.rank() == 0 ? 3.0 : 0.0);
      comm.bcast(v, 0);
    });
    obs::Registry& reg = ctx->metrics();
    const Totals t = schedule_totals(s);
    EXPECT_EQ(reg.counter("comm.messages").value(), t.messages) << s.name;
    EXPECT_EQ(reg.counter("comm.bytes").value(), t.bytes) << s.name;
    // Per-sender series against each rank's script, and their sum
    // against the total (no bytes may hide outside the rank split).
    std::uint64_t rank_sum = 0;
    for (int r = 0; r < p; ++r) {
      std::uint64_t sent = 0;
      for (const CommEvent& e :
           s.ranks[static_cast<std::size_t>(r)].events()) {
        if (e.kind == CommEvent::Kind::Send) sent += e.bytes;
      }
      const std::uint64_t got =
          reg.counter("comm.rank" + std::to_string(r) + ".bytes").value();
      EXPECT_EQ(got, sent) << s.name << " rank " << r;
      rank_sum += got;
    }
    EXPECT_EQ(rank_sum, t.bytes) << s.name;
    // Every post records its payload in the size histogram.
    const obs::Histogram& h = reg.histogram("comm.payload_bytes");
    EXPECT_EQ(h.count(), t.messages) << s.name;
    EXPECT_EQ(h.sum(), t.bytes) << s.name;
    // And the legacy accessors must read the same registry, not a copy.
    EXPECT_EQ(ctx->total_messages(), t.messages);
    EXPECT_EQ(ctx->total_bytes(), t.bytes);
  }
}

TEST(VerifyCrossValidation, Apmos) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      // a_local: 8 x 5 per rank, r1 = 3, r2 = 2. W^i is 5 x 3; the
      // broadcast X is 5 x 2 and Lambda has 2 entries.
      const std::uint64_t mat_hdr = 2 * sizeof(std::int64_t);
      const Schedule s = script_apmos(
          p, /*w=*/mat_hdr + sizeof(double) * 5 * 3,
          /*x=*/mat_hdr + sizeof(double) * 5 * 2,
          /*lambda=*/sizeof(double) * 2, cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        Matrix a(8, 5);
        for (Index i = 0; i < a.size(); ++i) {
          a.data()[i] =
              1.0 + 0.01 * static_cast<double>((i * 11 + comm.rank()) % 17);
        }
        ApmosOptions opts;
        opts.r1 = 3;
        opts.r2 = 2;
        apmos_svd(comm, a, opts);
      });
    }
  }
}

}  // namespace
}  // namespace parsvd::verify
