// Tests of the static verification layer (src/verify):
//   * the seeded-defect schedules are all detected, each with the
//     expected violation kind and a non-empty counterexample trace;
//   * every real-protocol schedule the emitters produce passes;
//   * cross-validation — the model is tied back to reality by running
//     the REAL threaded collectives under run_on() and comparing the
//     context's message/byte counters against the schedule's send
//     totals. A drift between the emitters and the production wire
//     behaviour shows up here as a count or volume mismatch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include "core/apmos.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"
#include "verify/checker.hpp"
#include "verify/schedules.hpp"
#include "verify/selftest.hpp"

namespace parsvd::verify {
namespace {

// ------------------------------------------------------- negative tests

TEST(VerifyNegative, SeededDefectsAllDetected) {
  for (const SeededDefect& defect : seeded_defects()) {
    const CheckReport report = check_schedule(defect.schedule);
    ASSERT_FALSE(report.ok()) << defect.schedule.name;
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) {
        found = true;
        EXPECT_FALSE(v.trace.empty())
            << defect.schedule.name << ": counterexample trace missing";
      }
    }
    EXPECT_TRUE(found) << defect.schedule.name << ": expected a "
                       << to_string(defect.expected) << " violation, got\n"
                       << report.to_string();
  }
}

TEST(VerifyNegative, ReportRendersCounterexample) {
  const SeededDefect defect = seeded_defects().front();
  const std::string rendered = check_schedule(defect.schedule).to_string();
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
  EXPECT_NE(rendered.find("rank "), std::string::npos);
}

TEST(VerifyNegative, TagRegistry) {
  EXPECT_TRUE(tag_registered(pmpi::tags::kBcast));
  EXPECT_TRUE(tag_registered(pmpi::tags::kAllreduce));
  EXPECT_TRUE(tag_registered(pmpi::tags::tsqr_up(0)));
  EXPECT_TRUE(tag_registered(pmpi::tags::tsqr_down(30)));
  EXPECT_TRUE(tag_registered(pmpi::tags::apmos_w()));
  EXPECT_TRUE(tag_registered(pmpi::tags::kUserBase));
  EXPECT_TRUE(tag_registered(pmpi::tags::kUserBase + 12345));
  EXPECT_FALSE(tag_registered(0));
  EXPECT_FALSE(tag_registered(7));
  EXPECT_FALSE(tag_registered(-1));
  // kBarrier is wire traffic only inside a group's scoped band; the
  // world barrier is the context's central rendezvous.
  EXPECT_FALSE(tag_registered(pmpi::tags::kBarrier));
  EXPECT_FALSE(tag_registered(pmpi::tags::kApmosGatherBase +
                              pmpi::tags::kRangeWidth));
}

TEST(VerifyNegative, TagRegistryGroupScoped) {
  namespace tags = pmpi::tags;
  // A group band holds the group's whole local tag space...
  EXPECT_TRUE(tag_registered(tags::group_scope(1, tags::kBcast)));
  EXPECT_TRUE(tag_registered(tags::group_scope(1, tags::kBarrier)));
  EXPECT_TRUE(tag_registered(tags::group_scope(3, tags::tsqr_up(12))));
  EXPECT_TRUE(tag_registered(tags::group_scope(3, tags::apmos_w())));
  EXPECT_TRUE(tag_registered(tags::group_scope(7, tags::kUserBase)));
  EXPECT_TRUE(tag_registered(
      tags::group_scope(tags::kMaxGroups, tags::kGroupUserLimit - 1)));
  // ...but scoping does not launder unregistered base tags, and band
  // offsets past the last mintable group are rejected.
  EXPECT_FALSE(tag_registered(tags::group_scope(1, 0)));
  EXPECT_FALSE(tag_registered(tags::group_scope(2, 7)));
  EXPECT_FALSE(tag_registered(
      tags::group_scope(1, tags::kApmosGatherBase + tags::kRangeWidth)));
  EXPECT_FALSE(tag_registered(
      tags::group_scope(tags::kMaxGroups + 1, tags::kBcast)));
}

// ------------------------------------------------------ group schedules

TEST(VerifyGroups, EmbedTranslatesPeersAndScopesTags) {
  const Schedule local = script_bcast(2, 0, 48, CollectiveConfig{});
  Schedule world = make_schedule("embed test", 4);
  const GroupSpec g{2, {3, 1}};  // group rank 0 -> world 3, 1 -> world 1
  embed_group_schedule(world, local, g);
  // World ranks 0 and 2 stay silent.
  EXPECT_TRUE(world.ranks[0].events().empty());
  EXPECT_TRUE(world.ranks[2].events().empty());
  ASSERT_EQ(world.ranks[3].events().size(), 1u);
  ASSERT_EQ(world.ranks[1].events().size(), 1u);
  const CommEvent& send = world.ranks[3].events()[0];
  const CommEvent& recv = world.ranks[1].events()[0];
  EXPECT_EQ(send.kind, CommEvent::Kind::Send);
  EXPECT_EQ(send.peer, 1);  // group rank 1, translated
  EXPECT_EQ(send.tag, pmpi::tags::group_scope(2, pmpi::tags::kBcast));
  EXPECT_EQ(recv.kind, CommEvent::Kind::Recv);
  EXPECT_EQ(recv.peer, 3);
  EXPECT_EQ(recv.tag, send.tag);
  EXPECT_TRUE(check_schedule(world).ok());
}

TEST(VerifyGroups, PartitionSchedulesPass) {
  const CollectiveConfig cfg;
  // Interleaved membership plus a bystander world rank (8 is in no
  // group): the checker must prove the whole choreography.
  const std::vector<GroupSpec> groups{
      {1, {0, 2, 4, 6}},
      {2, {1, 3, 5, 7}},
  };
  const std::vector<GroupProtocol> protos{GroupProtocol::TsqrTree,
                                          GroupProtocol::Allreduce};
  const Schedule s = script_partition(9, groups, protos, 512, cfg);
  const CheckReport report = check_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(s.ranks[8].events().empty());
  // Totals decode per group and cover every send in the schedule.
  const std::map<int, GroupTotals> totals = group_send_totals(s);
  ASSERT_EQ(totals.size(), 2u);
  std::uint64_t all_messages = 0;
  std::uint64_t all_bytes = 0;
  for (const CommScript& script : s.ranks) {
    for (const CommEvent& e : script.events()) {
      if (e.kind == CommEvent::Kind::Send) {
        ++all_messages;
        all_bytes += e.bytes;
      }
    }
  }
  std::uint64_t msg_sum = 0;
  std::uint64_t byte_sum = 0;
  for (const auto& [id, t] : totals) {
    EXPECT_GT(t.messages, 0u) << "group " << id;
    msg_sum += t.messages;
    byte_sum += t.bytes;
  }
  EXPECT_EQ(msg_sum, all_messages);
  EXPECT_EQ(byte_sum, all_bytes);
}

TEST(VerifyGroups, OverlappingPartitionRejected) {
  const std::vector<GroupSpec> groups{{1, {0, 1}}, {2, {1, 2}}};
  const std::vector<GroupProtocol> protos{GroupProtocol::Bcast,
                                          GroupProtocol::Bcast};
  EXPECT_THROW(script_partition(3, groups, protos, 8, CollectiveConfig{}),
               Error);
}

// ------------------------------------------------------ cross-validation

struct Totals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

Totals schedule_totals(const Schedule& s) {
  Totals t;
  for (const CommScript& script : s.ranks) {
    for (const CommEvent& e : script.events()) {
      if (e.kind != CommEvent::Kind::Send) continue;
      ++t.messages;
      t.bytes += e.bytes;
    }
  }
  return t;
}

std::shared_ptr<pmpi::Context> make_ctx(int p, const CollectiveConfig& cfg) {
  auto ctx = std::make_shared<pmpi::Context>(p);
  ctx->set_collective_algo(cfg.algo);
  ctx->set_eager_threshold_bytes(cfg.eager_threshold_bytes);
  ctx->set_tree_min_ranks(cfg.tree_min_ranks);
  return ctx;
}

/// Run the real collective and require the schedule to (a) pass the
/// checker and (b) predict the context's message/byte counters exactly.
void expect_matches_reality(
    const Schedule& s, int p, const CollectiveConfig& cfg,
    const std::function<void(pmpi::Communicator&)>& body) {
  const CheckReport report = check_schedule(s);
  EXPECT_TRUE(report.ok()) << report.to_string();
  auto ctx = make_ctx(p, cfg);
  pmpi::run_on(ctx, body);
  const Totals t = schedule_totals(s);
  EXPECT_EQ(ctx->total_messages(), t.messages) << s.name;
  EXPECT_EQ(ctx->total_bytes(), t.bytes) << s.name;
}

std::vector<CollectiveConfig> cross_configs() {
  using A = pmpi::CollectiveAlgo;
  return {
      {A::Flat, std::uint64_t{1} << 14, 8},
      {A::Tree, std::uint64_t{1} << 14, 8},
      {A::Auto, 256, 4},
  };
}

const int kRankCounts[] = {1, 2, 3, 5, 8, 16};

TEST(VerifyCrossValidation, Bcast) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      for (const int root : {0, p - 1}) {
        const Schedule s = script_bcast(p, root, 7 * sizeof(double), cfg);
        expect_matches_reality(s, p, cfg, [root](pmpi::Communicator& comm) {
          std::vector<double> v(7, comm.rank() == root ? 1.5 : 0.0);
          comm.bcast(v, root);
        });
      }
    }
  }
}

TEST(VerifyCrossValidation, Gatherv) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        per_rank[static_cast<std::size_t>(r)] =
            sizeof(double) * static_cast<std::uint64_t>(3 + r);
      }
      const Schedule s = script_gather(p, 0, per_rank, cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        std::vector<double> local(static_cast<std::size_t>(3 + comm.rank()),
                                  2.0);
        comm.gatherv<double>(local, 0);
      });
    }
  }
}

TEST(VerifyCrossValidation, Allgather) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      const Schedule s = script_allgather(p, sizeof(double), cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        comm.allgather_double(static_cast<double>(comm.rank()));
      });
    }
  }
}

TEST(VerifyCrossValidation, ReduceAndAllreduce) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      // 16 doubles sit below the 256 B Auto threshold, 64 above it: both
      // sides of the eager switch are validated against reality.
      for (const std::size_t n : {std::size_t{16}, std::size_t{64}}) {
        const Schedule sr = script_reduce(p, 0, n * sizeof(double), cfg);
        expect_matches_reality(sr, p, cfg, [n](pmpi::Communicator& comm) {
          std::vector<double> v(n, static_cast<double>(comm.rank()));
          comm.reduce(v, pmpi::Op::Sum, 0);
        });
        const Schedule sa = script_allreduce(p, n * sizeof(double), cfg);
        expect_matches_reality(sa, p, cfg, [n](pmpi::Communicator& comm) {
          std::vector<double> v(n, 1.0);
          comm.allreduce(v, pmpi::Op::Sum);
        });
      }
    }
  }
}

TEST(VerifyCrossValidation, ScatterRows) {
  const CollectiveConfig cfg;  // scatter has a single topology
  for (const int p : kRankCounts) {
    const Index cols = 3;
    std::vector<Index> rows_per_rank(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> block_bytes(static_cast<std::size_t>(p));
    Index total = 0;
    for (int r = 0; r < p; ++r) {
      rows_per_rank[static_cast<std::size_t>(r)] = r + 1;
      block_bytes[static_cast<std::size_t>(r)] =
          2 * sizeof(std::int64_t) +
          sizeof(double) * static_cast<std::uint64_t>((r + 1) * cols);
      total += r + 1;
    }
    const Schedule s = script_scatter_rows(p, 0, block_bytes, cfg);
    expect_matches_reality(
        s, p, cfg, [&rows_per_rank, total, cols](pmpi::Communicator& comm) {
          Matrix full;
          if (comm.rank() == 0) {
            full = Matrix(total, cols);
            for (Index i = 0; i < full.size(); ++i) full.data()[i] = 0.25;
          }
          comm.scatter_rows(full, rows_per_rank, 0);
        });
  }
}

TEST(VerifyCrossValidation, TsqrTree) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      const Index k = 4;
      const Schedule s = script_tsqr_tree(p, k, cfg);
      expect_matches_reality(s, p, cfg, [k](pmpi::Communicator& comm) {
        Matrix a(8, k);  // local rows >= k, the tree precondition
        for (Index i = 0; i < a.size(); ++i) {
          a.data()[i] = 0.1 * static_cast<double>(
                                  (i * 7 + comm.rank() * 13) % 23) +
                        1.0;
        }
        tsqr(comm, a, TsqrVariant::Tree);
      });
    }
  }
}

// ----------------------- metrics-registry vs schedule cross-validation

// The accessors consumed above (total_messages / total_bytes) are thin
// views over the per-context obs::Registry. Pin the registry series
// themselves — dotted names, per-sender split, payload histogram —
// against the schedule predictions for one flat and one tree bcast, so
// a metric rename or a half-done migration cannot silently detach the
// Context accessors from the registry while both tests keep passing.
TEST(VerifyCrossValidation, MetricsRegistryTotals) {
  using A = pmpi::CollectiveAlgo;
  constexpr int p = 8;
  constexpr std::size_t n = 48;  // doubles, comfortably above eager games
  for (const A algo : {A::Flat, A::Tree}) {
    const CollectiveConfig cfg{algo, std::uint64_t{1} << 14, 4};
    const Schedule s = script_bcast(p, 0, n * sizeof(double), cfg);
    ASSERT_TRUE(check_schedule(s).ok());
    auto ctx = make_ctx(p, cfg);
    pmpi::run_on(ctx, [](pmpi::Communicator& comm) {
      std::vector<double> v(n, comm.rank() == 0 ? 3.0 : 0.0);
      comm.bcast(v, 0);
    });
    obs::Registry& reg = ctx->metrics();
    const Totals t = schedule_totals(s);
    EXPECT_EQ(reg.counter("comm.messages").value(), t.messages) << s.name;
    EXPECT_EQ(reg.counter("comm.bytes").value(), t.bytes) << s.name;
    // Per-sender series against each rank's script, and their sum
    // against the total (no bytes may hide outside the rank split).
    std::uint64_t rank_sum = 0;
    for (int r = 0; r < p; ++r) {
      std::uint64_t sent = 0;
      for (const CommEvent& e :
           s.ranks[static_cast<std::size_t>(r)].events()) {
        if (e.kind == CommEvent::Kind::Send) sent += e.bytes;
      }
      const std::uint64_t got =
          reg.counter("comm.rank" + std::to_string(r) + ".bytes").value();
      EXPECT_EQ(got, sent) << s.name << " rank " << r;
      rank_sum += got;
    }
    EXPECT_EQ(rank_sum, t.bytes) << s.name;
    // Every post records its payload in the size histogram.
    const obs::Histogram& h = reg.histogram("comm.payload_bytes");
    EXPECT_EQ(h.count(), t.messages) << s.name;
    EXPECT_EQ(h.sum(), t.bytes) << s.name;
    // And the legacy accessors must read the same registry, not a copy.
    EXPECT_EQ(ctx->total_messages(), t.messages);
    EXPECT_EQ(ctx->total_bytes(), t.bytes);
  }
}

// Two concurrent jobs on disjoint subgroups of one context: the model
// is the world schedule with each group's local protocol embedded into
// its scoped tag band. Pins (a) the per-group registry series
// "comm.group<id>.messages"/"comm.group<id>.bytes" to the model's
// per-band send totals and (b) the world totals to their sum —
// subgroup() is purely local, so group traffic is ALL the traffic.
TEST(VerifyCrossValidation, GroupRegistryTotals) {
  constexpr int p = 8;
  constexpr Index k = 4;
  constexpr std::size_t n = 64;  // allreduce payload, doubles
  const std::array<int, 4> evens{0, 2, 4, 6};
  const std::array<int, 4> odds{1, 3, 5, 7};
  for (const CollectiveConfig& cfg : cross_configs()) {
    // Model: group 1 (evens) runs a tree TSQR, group 2 (odds) an
    // allreduce followed by a group barrier.
    Schedule s = make_schedule("two subgroup jobs", p);
    embed_group_schedule(s, script_tsqr_tree(4, k, cfg),
                         GroupSpec{1, {evens.begin(), evens.end()}});
    const GroupSpec odd_spec{2, {odds.begin(), odds.end()}};
    embed_group_schedule(s, script_allreduce(4, n * sizeof(double), cfg),
                         odd_spec);
    embed_group_schedule(s, script_group_barrier(4), odd_spec);
    const CheckReport report = check_schedule(s);
    ASSERT_TRUE(report.ok()) << report.to_string();

    // Reality: pre-mint the groups in a fixed order so ids are stable,
    // then run both jobs concurrently on one context.
    auto ctx = make_ctx(p, cfg);
    ctx->group_for({evens.begin(), evens.end()});
    ctx->group_for({odds.begin(), odds.end()});
    pmpi::run_on(ctx, [&](pmpi::Communicator& comm) {
      if (comm.rank() % 2 == 0) {
        auto sub = comm.subgroup(evens);
        ASSERT_TRUE(sub.has_value());
        Matrix a(8, k);  // local rows >= k, the tree precondition
        for (Index i = 0; i < a.size(); ++i) {
          a.data()[i] =
              0.1 * static_cast<double>((i * 7 + sub->rank() * 13) % 23) +
              1.0;
        }
        tsqr(*sub, a, TsqrVariant::Tree);
      } else {
        auto sub = comm.subgroup(odds);
        ASSERT_TRUE(sub.has_value());
        std::vector<double> v(n, 1.0);
        sub->allreduce(v, pmpi::Op::Sum);
        sub->barrier();
      }
    });

    const std::map<int, GroupTotals> model = group_send_totals(s);
    ASSERT_EQ(model.size(), 2u);
    obs::Registry& reg = ctx->metrics();
    std::uint64_t msg_sum = 0;
    std::uint64_t byte_sum = 0;
    for (const auto& [id, t] : model) {
      const std::string prefix = "comm.group" + std::to_string(id);
      EXPECT_EQ(reg.counter(prefix + ".messages").value(), t.messages)
          << s.name << " group " << id;
      EXPECT_EQ(reg.counter(prefix + ".bytes").value(), t.bytes)
          << s.name << " group " << id;
      msg_sum += t.messages;
      byte_sum += t.bytes;
    }
    EXPECT_EQ(ctx->total_messages(), msg_sum) << s.name;
    EXPECT_EQ(ctx->total_bytes(), byte_sum) << s.name;
  }
}

TEST(VerifyCrossValidation, GroupBarrierTotals) {
  // The flat gather+release barrier: 2(p-1) zero-byte messages.
  for (const int p : kRankCounts) {
    const Schedule local = script_group_barrier(p);
    Schedule world = make_schedule("group barrier", p);
    std::vector<int> members(static_cast<std::size_t>(p));
    std::iota(members.begin(), members.end(), 0);
    embed_group_schedule(world, local, GroupSpec{1, members});
    const CheckReport report = check_schedule(world);
    ASSERT_TRUE(report.ok()) << report.to_string();

    const CollectiveConfig cfg;
    auto ctx = make_ctx(p, cfg);
    ctx->group_for(members);
    pmpi::run_on(ctx, [&members](pmpi::Communicator& comm) {
      auto sub = comm.subgroup(members);
      ASSERT_TRUE(sub.has_value());
      sub->barrier();
    });
    const std::map<int, GroupTotals> model = group_send_totals(world);
    const std::uint64_t expect_msgs =
        p > 1 ? 2u * static_cast<std::uint64_t>(p - 1) : 0u;
    if (p > 1) {
      ASSERT_EQ(model.size(), 1u);
      EXPECT_EQ(model.at(1).messages, expect_msgs);
      EXPECT_EQ(model.at(1).bytes, 0u);
    } else {
      EXPECT_TRUE(model.empty());
    }
    EXPECT_EQ(ctx->total_messages(), expect_msgs) << "p=" << p;
    EXPECT_EQ(ctx->total_bytes(), 0u) << "p=" << p;
  }
}

TEST(VerifyCrossValidation, Apmos) {
  for (const CollectiveConfig& cfg : cross_configs()) {
    for (const int p : kRankCounts) {
      // a_local: 8 x 5 per rank, r1 = 3, r2 = 2. W^i is 5 x 3; the
      // broadcast X is 5 x 2 and Lambda has 2 entries.
      const std::uint64_t mat_hdr = 2 * sizeof(std::int64_t);
      const Schedule s = script_apmos(
          p, /*w=*/mat_hdr + sizeof(double) * 5 * 3,
          /*x=*/mat_hdr + sizeof(double) * 5 * 2,
          /*lambda=*/sizeof(double) * 2, cfg);
      expect_matches_reality(s, p, cfg, [](pmpi::Communicator& comm) {
        Matrix a(8, 5);
        for (Index i = 0; i < a.size(); ++i) {
          a.data()[i] =
              1.0 + 0.01 * static_cast<double>((i * 11 + comm.rank()) % 17);
        }
        ApmosOptions opts;
        opts.r1 = 3;
        opts.r2 = 2;
        apmos_svd(comm, a, opts);
      });
    }
  }
}

}  // namespace
}  // namespace parsvd::verify
