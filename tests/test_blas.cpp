// BLAS kernel tests: level-1/2/3 against naive references, all transpose
// combinations, the threaded GEMM path, and a parameterized shape sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "linalg/blas.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::naive_matmul;
using testing::random_matrix;

TEST(Blas1, Dot) {
  Vector x{1, 2, 3}, y{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 4 - 10 + 18);
  EXPECT_THROW(dot(x.span(), Vector{1.0}.span()), Error);
}

TEST(Blas1, Axpy) {
  Vector x{1, 2}, y{10, 20};
  axpy(3.0, x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Blas1, Scal) {
  Vector x{2, -4};
  scal(-0.5, x.span());
  EXPECT_DOUBLE_EQ(x[0], -1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Blas1, Nrm2MatchesHypot) {
  Vector x{3, 4, 12};
  EXPECT_DOUBLE_EQ(nrm2(x.span()), 13.0);
}

TEST(Blas1, Nrm2ExtremeScales) {
  Vector tiny(4, 1e-200);
  EXPECT_NEAR(nrm2(tiny.span()), 2e-200, 1e-214);
  Vector huge(4, 1e200);
  EXPECT_NEAR(nrm2(huge.span()), 2e200, 1e186);
}

TEST(Blas2, GemvNoTrans) {
  const Matrix a = random_matrix(7, 5, 11);
  Vector x(5), y(7, 0.5);
  Rng rng(3);
  for (Index i = 0; i < 5; ++i) x[i] = rng.gaussian();
  Vector y_ref = y;
  // reference: y = 2 A x + 0.5 y
  for (Index i = 0; i < 7; ++i) {
    double s = 0.0;
    for (Index j = 0; j < 5; ++j) s += a(i, j) * x[j];
    y_ref[i] = 2.0 * s + 0.5 * y_ref[i];
  }
  gemv(Trans::No, 2.0, a, x.span(), 0.5, y.span());
  testing::expect_vector_near(y, y_ref, 1e-13);
}

TEST(Blas2, GemvTrans) {
  const Matrix a = random_matrix(6, 4, 13);
  Vector x(6, 1.0), y(4, 0.0);
  gemv(Trans::Yes, 1.0, a, x.span(), 0.0, y.span());
  for (Index j = 0; j < 4; ++j) {
    double s = 0.0;
    for (Index i = 0; i < 6; ++i) s += a(i, j);
    EXPECT_NEAR(y[j], s, 1e-13);
  }
}

TEST(Blas2, GemvShapeChecks) {
  const Matrix a(3, 2);
  Vector x(3), y(3);
  EXPECT_THROW(gemv(Trans::No, 1.0, a, x.span(), 0.0, y.span()), Error);
}

TEST(Blas2, Ger) {
  Matrix a(3, 2, 1.0);
  Vector x{1, 2, 3}, y{10, 20};
  ger(0.1, x.span(), y.span(), a);
  EXPECT_NEAR(a(0, 0), 1.0 + 0.1 * 1 * 10, 1e-14);
  EXPECT_NEAR(a(2, 1), 1.0 + 0.1 * 3 * 20, 1e-14);
}

TEST(Blas3, MatmulMatchesNaive) {
  const Matrix a = random_matrix(13, 7, 1);
  const Matrix b = random_matrix(7, 9, 2);
  expect_matrix_near(matmul(a, b), naive_matmul(a, b), 1e-12);
}

TEST(Blas3, TransposeACombination) {
  const Matrix a = random_matrix(7, 13, 3);
  const Matrix b = random_matrix(7, 9, 4);
  expect_matrix_near(matmul(a, b, Trans::Yes, Trans::No),
                     naive_matmul(a.transposed(), b), 1e-12);
}

TEST(Blas3, TransposeBCombination) {
  const Matrix a = random_matrix(5, 8, 5);
  const Matrix b = random_matrix(6, 8, 6);
  expect_matrix_near(matmul(a, b, Trans::No, Trans::Yes),
                     naive_matmul(a, b.transposed()), 1e-12);
}

TEST(Blas3, TransposeBothCombination) {
  const Matrix a = random_matrix(8, 5, 7);
  const Matrix b = random_matrix(9, 8, 8);
  expect_matrix_near(matmul(a, b, Trans::Yes, Trans::Yes),
                     naive_matmul(a.transposed(), b.transposed()), 1e-12);
}

TEST(Blas3, GemmAlphaBetaSemantics) {
  const Matrix a = random_matrix(4, 4, 9);
  const Matrix b = random_matrix(4, 4, 10);
  Matrix c(4, 4, 1.0);
  const Matrix c0 = c;
  gemm(Trans::No, Trans::No, 2.0, a, b, 3.0, c);
  const Matrix expected = 2.0 * naive_matmul(a, b) + 3.0 * c0;
  expect_matrix_near(c, expected, 1e-12);
}

TEST(Blas3, GemmBetaZeroIgnoresGarbage) {
  const Matrix a = random_matrix(3, 3, 11);
  const Matrix b = random_matrix(3, 3, 12);
  Matrix c(3, 3);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  expect_matrix_near(c, naive_matmul(a, b), 1e-12);
}

TEST(Blas3, GemmAlphaZeroShortCircuits) {
  const Matrix a = random_matrix(3, 3, 13);
  const Matrix b = random_matrix(3, 3, 14);
  Matrix c(3, 3, 2.0);
  gemm(Trans::No, Trans::No, 0.0, a, b, 1.0, c);
  expect_matrix_near(c, Matrix(3, 3, 2.0), 0.0);
}

TEST(Blas3, GemmInnerDimMismatchThrows) {
  Matrix c(2, 2);
  EXPECT_THROW(
      gemm(Trans::No, Trans::No, 1.0, Matrix(2, 3), Matrix(4, 2), 0.0, c),
      Error);
}

TEST(Blas3, GemmWrongOutputShapeThrows) {
  Matrix c(3, 3);
  EXPECT_THROW(
      gemm(Trans::No, Trans::No, 1.0, Matrix(2, 3), Matrix(3, 2), 0.0, c),
      Error);
}

TEST(Blas3, LargeGemmUsesThreadedPathCorrectly) {
  // Above kGemmParallelThreshold the pool fans out; verify it still
  // matches the naive product.
  const Index n = 90;  // 90^3 ≈ 7.3e5 > threshold (64^3 ≈ 2.6e5)
  const Matrix a = random_matrix(n, n, 15);
  const Matrix b = random_matrix(n, n, 16);
  expect_matrix_near(matmul(a, b), naive_matmul(a, b), 1e-10);
}

TEST(Blas3, GramMatchesExplicitProduct) {
  const Matrix a = random_matrix(20, 6, 17);
  const Matrix g = gram(a);
  expect_matrix_near(g, naive_matmul(a.transposed(), a), 1e-12);
  // symmetry is exact by construction
  for (Index i = 0; i < g.rows(); ++i) {
    for (Index j = 0; j < g.cols(); ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(Blas3, GramOddSizesMatchExplicitProduct) {
  // Sizes chosen to straddle the kGramBlock=48 column blocking and hit
  // ragged final blocks in the packed kernel.
  const int ms[] = {1, 7, 33};
  const int ns[] = {1, 5, 47, 49};
  for (const int m : ms) {
    for (const int n : ns) {
      const Matrix a = random_matrix(m, n, 500 + 10 * m + n);
      const Matrix g = gram(a);
      SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n);
      expect_matrix_near(g, naive_matmul(a.transposed(), a), 1e-11);
      for (Index i = 0; i < g.rows(); ++i) {
        for (Index j = 0; j < g.cols(); ++j) {
          EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
        }
      }
    }
  }
}

TEST(Blas3, GramParallelPathMatchesExplicitProduct) {
  // n^2 m / 2 = 40^2 * 600 / 2 = 4.8e5 > the 64^3 parallel threshold, so
  // the column blocks fan out across the pool.
  const Matrix a = random_matrix(600, 40, 21);
  const Matrix g = gram(a);
  expect_matrix_near(g, naive_matmul(a.transposed(), a), 1e-10);
  for (Index i = 0; i < g.rows(); ++i) {
    for (Index j = 0; j < g.cols(); ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(Blas2, GemvParallelPathMatchesReference) {
  // m*n = 512*300 = 1.536e5 > kGemvParallelThreshold (1.31e5), so both
  // orientations take the threaded row/column partitions.
  const Index m = 512, n = 300;
  const Matrix a = random_matrix(m, n, 22);
  Vector x(n), xt(m);
  Rng rng(23);
  for (Index j = 0; j < n; ++j) x[j] = rng.gaussian();
  for (Index i = 0; i < m; ++i) xt[i] = rng.gaussian();

  Vector y(m, 0.25), y_ref = y;
  for (Index i = 0; i < m; ++i) {
    double s = 0.0;
    for (Index j = 0; j < n; ++j) s += a(i, j) * x[j];
    y_ref[i] = 1.5 * s - 0.5 * y_ref[i];
  }
  gemv(Trans::No, 1.5, a, x.span(), -0.5, y.span());
  testing::expect_vector_near(y, y_ref, 1e-11);

  Vector z(n, 0.0), z_ref(n, 0.0);
  for (Index j = 0; j < n; ++j) {
    double s = 0.0;
    for (Index i = 0; i < m; ++i) s += a(i, j) * xt[i];
    z_ref[j] = s;
  }
  gemv(Trans::Yes, 1.0, a, xt.span(), 0.0, z.span());
  testing::expect_vector_near(z, z_ref, 1e-11);
}

TEST(Blas3, GemmRejectsAliasedOutput) {
  // The packed kernel reads A/B while writing C, so C overlapping either
  // operand is a hard error rather than silent corruption.
  Matrix a = random_matrix(4, 4, 24);
  const Matrix b = random_matrix(4, 4, 25);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, a), Error);
  Matrix b2 = random_matrix(4, 4, 26);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b2, 0.0, b2), Error);
  // Distinct matrices of identical shape must still be accepted.
  Matrix c(4, 4);
  EXPECT_NO_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c));
}

TEST(Blas3, OddAndPrimeSizesAllTransposeCombos) {
  // Sizes straddling the 8x6 micro-tile and the MC/KC panel edges: every
  // combination exercises ragged packing in at least one dimension.
  const int sizes[] = {1, 3, 7, 63, 64, 65, 129};
  for (const int s : sizes) {
    for (int combo = 0; combo < 4; ++combo) {
      const Trans ta = (combo & 1) ? Trans::Yes : Trans::No;
      const Trans tb = (combo & 2) ? Trans::Yes : Trans::No;
      // Rectangular m,k,n derived from s so the three extents differ.
      const Index m = s, k = std::max(1, s - 2), n = std::max(1, s - 1);
      const Matrix a = (ta == Trans::No) ? random_matrix(m, k, 300 + s + combo)
                                         : random_matrix(k, m, 300 + s + combo);
      const Matrix b = (tb == Trans::No) ? random_matrix(k, n, 400 + s + combo)
                                         : random_matrix(n, k, 400 + s + combo);
      const Matrix lhs = (ta == Trans::No) ? a : a.transposed();
      const Matrix rhs = (tb == Trans::No) ? b : b.transposed();
      SCOPED_TRACE(::testing::Message() << "s=" << s << " combo=" << combo);
      expect_matrix_near(matmul(a, b, ta, tb), naive_matmul(lhs, rhs), 1e-11);
    }
  }
}

// ----------------------------------------------------- shape sweep (TEST_P)

using GemmShape = std::tuple<int, int, int, int>;  // m, k, n, transpose-combo

class GemmShapeSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeSweep, MatchesNaive) {
  const auto [m, k, n, combo] = GetParam();
  const Trans ta = (combo & 1) ? Trans::Yes : Trans::No;
  const Trans tb = (combo & 2) ? Trans::Yes : Trans::No;
  const Matrix a = (ta == Trans::No) ? random_matrix(m, k, 100 + combo)
                                     : random_matrix(k, m, 100 + combo);
  const Matrix b = (tb == Trans::No) ? random_matrix(k, n, 200 + combo)
                                     : random_matrix(n, k, 200 + combo);
  const Matrix lhs = (ta == Trans::No) ? a : a.transposed();
  const Matrix rhs = (tb == Trans::No) ? b : b.transposed();
  expect_matrix_near(matmul(a, b, ta, tb), naive_matmul(lhs, rhs), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Combine(::testing::Values(1, 2, 17, 64),
                       ::testing::Values(1, 3, 32),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace parsvd
