// Edge-case and robustness tests for the SVD backends: graded spectra,
// duplicate singular values, bidiagonal-already inputs, extreme scales,
// rank deficiency, and agreement on the paper's own data shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "test_utils.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::expect_vector_near;
using testing::ortho_defect;
namespace wl = workloads;

TEST(SvdEdge, GradedSpectrumTwelveOrders) {
  // σ spanning 1e0 .. 1e-12: Jacobi must resolve every value to high
  // relative accuracy (its signature property).
  Rng rng(1);
  Vector spectrum(7);
  for (Index i = 0; i < 7; ++i) spectrum[i] = std::pow(10.0, -2.0 * static_cast<double>(i));
  const Matrix a = wl::synthetic_low_rank(40, 20, spectrum, rng);
  const SvdResult f = svd_jacobi(a);
  // The synthetic construction itself (GEMM at sigma_max scale) injects
  // ~eps*sigma_max absolute noise into the data, so the achievable bound
  // is relative accuracy down to ~1e-10 and absolute eps*sigma_max below.
  for (Index i = 0; i < 7; ++i) {
    const double tol =
        std::max(1e-10 * spectrum[i], 5e-16 * spectrum[0] * 100.0);
    EXPECT_NEAR(f.s[i], spectrum[i], tol) << "sigma " << i;
  }
}

TEST(SvdEdge, GolubKahanGradedSpectrum) {
  // GK's accuracy is absolute (eps * sigma_max), looser than Jacobi for
  // tiny values — document the contract at 1e-8 sigma_max.
  Rng rng(2);
  Vector spectrum{1.0, 1e-4, 1e-8};
  const Matrix a = wl::synthetic_low_rank(30, 15, spectrum, rng);
  const SvdResult f = svd_golub_kahan(a);
  EXPECT_NEAR(f.s[0], 1.0, 1e-13);
  EXPECT_NEAR(f.s[1], 1e-4, 1e-12);
  EXPECT_NEAR(f.s[2], 1e-8, 1e-13 * 1.0);  // absolute eps*sigma_max bound
}

TEST(SvdEdge, DuplicateSingularValues) {
  // σ = {2, 2, 1}: the paired subspace is degenerate; factors must stay
  // orthonormal and reconstruct exactly even though individual vectors
  // are non-unique.
  Rng rng(3);
  const Vector spectrum{2.0, 2.0, 1.0};
  const Matrix a = wl::synthetic_low_rank(25, 12, spectrum, rng);
  for (const auto method :
       {SvdMethod::Jacobi, SvdMethod::GolubKahan, SvdMethod::MethodOfSnapshots}) {
    SvdOptions opts;
    opts.method = method;
    opts.rank = 3;  // the rank-deficient tail would yield zero U columns
    const SvdResult f = svd(a, opts);
    EXPECT_NEAR(f.s[0], 2.0, 1e-10);
    EXPECT_NEAR(f.s[1], 2.0, 1e-10);
    EXPECT_NEAR(f.s[2], 1.0, 1e-10);
    EXPECT_LT(ortho_defect(f.u), 1e-9);
    testing::expect_matrix_near(f.reconstruct(), a, 1e-10);
  }
}

TEST(SvdEdge, AlreadyDiagonalRectangular) {
  Matrix a(5, 3, 0.0);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  for (const auto method : {SvdMethod::Jacobi, SvdMethod::GolubKahan}) {
    SvdOptions opts;
    opts.method = method;
    const SvdResult f = svd(a, opts);
    EXPECT_NEAR(f.s[0], 3.0, 1e-14);
    EXPECT_NEAR(f.s[1], 2.0, 1e-14);
    EXPECT_NEAR(f.s[2], 1.0, 1e-14);
  }
}

TEST(SvdEdge, BidiagonalInput) {
  // Exercise the GK chasing on an input that IS bidiagonal (no
  // reduction work, straight to QL).
  Matrix a(4, 4, 0.0);
  a(0, 0) = 4.0; a(0, 1) = 1.0;
  a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 2) = 2.0; a(2, 3) = 1.0;
  a(3, 3) = 1.0;
  const SvdResult gk = svd_golub_kahan(a);
  const SvdResult jac = svd_jacobi(a);
  expect_vector_near(gk.s, jac.s, 1e-12);
  testing::expect_matrix_near(gk.reconstruct(), a, 1e-12);
}

TEST(SvdEdge, ExtremeScaleLarge) {
  Rng rng(4);
  Matrix a = Matrix::gaussian(12, 8, rng);
  a *= 1e150;
  const SvdResult f = svd(a);
  EXPECT_TRUE(std::isfinite(f.s[0]));
  EXPECT_GT(f.s[0], 1e149);
  testing::expect_matrix_near(f.reconstruct(), a, 1e138);
}

TEST(SvdEdge, ExtremeScaleTiny) {
  Rng rng(5);
  Matrix a = Matrix::gaussian(12, 8, rng);
  a *= 1e-150;
  const SvdResult f = svd(a);
  EXPECT_GT(f.s[0], 0.0);
  testing::expect_matrix_near(f.reconstruct(), a, 1e-162);
}

TEST(SvdEdge, SingleRowAndColumn) {
  const Matrix row{{3.0, 4.0}};
  const SvdResult fr = svd(row);
  EXPECT_NEAR(fr.s[0], 5.0, 1e-14);
  Matrix col(2, 1);
  col(0, 0) = 3.0;
  col(1, 0) = 4.0;
  const SvdResult fc = svd(col);
  EXPECT_NEAR(fc.s[0], 5.0, 1e-14);
}

TEST(SvdEdge, OrthogonalInputHasUnitSpectrum) {
  Rng rng(6);
  const Matrix q = wl::random_orthonormal(20, 20, rng);
  const SvdResult f = svd(q);
  for (Index i = 0; i < 20; ++i) EXPECT_NEAR(f.s[i], 1.0, 1e-12);
}

TEST(SvdEdge, BurgersShapeBackendsAgree) {
  // The paper's data shape (tall snapshot matrix, fast-decaying
  // spectrum): all three backends agree on the retained spectrum.
  wl::BurgersConfig cfg;
  cfg.grid_points = 512;
  cfg.snapshots = 80;
  const Matrix a = wl::Burgers(cfg).snapshot_matrix();
  SvdOptions j, g, m;
  j.method = SvdMethod::Jacobi;
  g.method = SvdMethod::GolubKahan;
  m.method = SvdMethod::MethodOfSnapshots;
  m.eigh_method = EighMethod::Tridiagonal;
  j.rank = g.rank = m.rank = 10;
  const SvdResult fj = svd(a, j);
  const SvdResult fg = svd(a, g);
  const SvdResult fm = svd(a, m);
  for (Index i = 0; i < 10; ++i) {
    EXPECT_NEAR(fg.s[i], fj.s[i], 1e-9 * fj.s[0]) << "GK sigma " << i;
    EXPECT_NEAR(fm.s[i], fj.s[i], 1e-7 * fj.s[0]) << "MOS sigma " << i;
  }
}

TEST(SvdEdge, MosTridiagonalMatchesMosJacobi) {
  Rng rng(7);
  const Matrix a = Matrix::gaussian(60, 25, rng);
  SvdOptions mj, mt;
  mj.method = mt.method = SvdMethod::MethodOfSnapshots;
  mj.eigh_method = EighMethod::Jacobi;
  mt.eigh_method = EighMethod::Tridiagonal;
  const SvdResult fj = svd(a, mj);
  const SvdResult ft = svd(a, mt);
  expect_vector_near(ft.s, fj.s, 1e-9 * fj.s[0]);
}

TEST(SvdEdge, RepeatedCallsDeterministic) {
  const Matrix a = testing::random_matrix(30, 18, 8);
  const SvdResult f1 = svd(a);
  const SvdResult f2 = svd(a);
  testing::expect_matrix_near(f1.u, f2.u, 0.0);
  testing::expect_matrix_near(f1.v, f2.v, 0.0);
  expect_vector_near(f1.s, f2.s, 0.0);
}

TEST(SvdEdge, NearRankDeficientStable) {
  // Two nearly-identical columns (differ at 1e-13): no backend may blow
  // up, and the tiny second singular value must be << the first.
  Matrix a(20, 2);
  Rng rng(9);
  for (Index i = 0; i < 20; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = a(i, 0) * (1.0 + 1e-13);
  }
  for (const auto method : {SvdMethod::Jacobi, SvdMethod::GolubKahan}) {
    SvdOptions opts;
    opts.method = method;
    const SvdResult f = svd(a, opts);
    EXPECT_LT(f.s[1] / f.s[0], 1e-11);
    testing::expect_matrix_near(f.reconstruct(), a, 1e-12);
  }
}

}  // namespace
}  // namespace parsvd
