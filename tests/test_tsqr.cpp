// Distributed TSQR tests: both variants against the serial QR, rank-count
// invariance, uneven row splits, orthogonality of the assembled Q.
#include <gtest/gtest.h>

#include <tuple>

#include "core/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using testing::expect_matrix_near;
using testing::naive_matmul;
using testing::ortho_defect;
using testing::random_matrix;
using workloads::partition_rows;

/// Run TSQR over `p` ranks on row-blocks of `a`; reassemble the global Q
/// and return (Q, R).
QrResult run_tsqr(const Matrix& a, int p, TsqrVariant variant) {
  std::vector<Matrix> q_blocks(static_cast<std::size_t>(p));
  Matrix r;
  std::mutex mu;
  pmpi::run(p, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), p, comm.rank());
    const Matrix local = a.block(part.offset, 0, part.count, a.cols());
    TsqrResult res = tsqr(comm, local, variant);
    std::lock_guard<std::mutex> lock(mu);
    q_blocks[static_cast<std::size_t>(comm.rank())] = std::move(res.q_local);
    if (comm.is_root()) r = std::move(res.r);
  });
  return {vcat(q_blocks), std::move(r)};
}

class TsqrSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};
// params: ranks, rows, cols, variant

TEST_P(TsqrSweep, MatchesSerialQr) {
  const auto [p, m, n, variant_idx] = GetParam();
  if (m < p * n) GTEST_SKIP() << "blocks must be taller than wide for TSQR";
  const auto variant = static_cast<TsqrVariant>(variant_idx);
  const Matrix a = random_matrix(m, n, 77);
  const QrResult dist = run_tsqr(a, p, variant);
  const QrResult serial = qr_thin(a);

  // Same deterministic sign convention → exact same factors (up to fp).
  expect_matrix_near(dist.r, serial.r, 1e-10, "R");
  expect_matrix_near(dist.q, serial.q, 1e-10, "Q");
}

INSTANTIATE_TEST_SUITE_P(
    Combos, TsqrSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values(64, 150),
                       ::testing::Values(1, 5, 12),
                       ::testing::Values(0, 1)));  // Direct, Tree

TEST(Tsqr, ReconstructsInput) {
  const Matrix a = random_matrix(120, 8, 78);
  for (const auto variant : {TsqrVariant::Direct, TsqrVariant::Tree}) {
    const QrResult qr = run_tsqr(a, 4, variant);
    expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-11);
    EXPECT_LT(ortho_defect(qr.q), 1e-12);
  }
}

TEST(Tsqr, UnevenRowDistribution) {
  // 5 ranks over 103 rows: blocks of 21/21/21/20/20.
  const Matrix a = random_matrix(103, 6, 79);
  const QrResult dist = run_tsqr(a, 5, TsqrVariant::Direct);
  const QrResult serial = qr_thin(a);
  expect_matrix_near(dist.q, serial.q, 1e-10);
}

TEST(Tsqr, RFactorIdenticalOnAllRanks) {
  const Matrix a = random_matrix(80, 5, 80);
  std::vector<Matrix> r_per_rank(4);
  pmpi::run(4, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), 4, comm.rank());
    const Matrix local = a.block(part.offset, 0, part.count, a.cols());
    TsqrResult res = tsqr(comm, local, TsqrVariant::Direct);
    r_per_rank[static_cast<std::size_t>(comm.rank())] = std::move(res.r);
  });
  for (int r = 1; r < 4; ++r) {
    expect_matrix_near(r_per_rank[static_cast<std::size_t>(r)], r_per_rank[0],
                       0.0);
  }
}

TEST(Tsqr, VariantsAgreeWithEachOther) {
  const Matrix a = random_matrix(96, 7, 81);
  const QrResult direct = run_tsqr(a, 6, TsqrVariant::Direct);
  const QrResult tree = run_tsqr(a, 6, TsqrVariant::Tree);
  expect_matrix_near(direct.q, tree.q, 1e-10);
  expect_matrix_near(direct.r, tree.r, 1e-10);
}

TEST(Tsqr, SingleRankEqualsSerial) {
  const Matrix a = random_matrix(40, 5, 82);
  const QrResult dist = run_tsqr(a, 1, TsqrVariant::Tree);
  const QrResult serial = qr_thin(a);
  expect_matrix_near(dist.q, serial.q, 0.0);
  expect_matrix_near(dist.r, serial.r, 0.0);
}

TEST(Tsqr, PositiveDiagonalConvention) {
  const Matrix a = random_matrix(72, 6, 83);
  const QrResult qr = run_tsqr(a, 3, TsqrVariant::Direct);
  for (Index i = 0; i < qr.r.rows(); ++i) EXPECT_GE(qr.r(i, i), 0.0);
}

TEST(Tsqr, EmptyLocalBlockThrows) {
  pmpi::run(1, [](Communicator& comm) {
    EXPECT_THROW(tsqr(comm, Matrix{}, TsqrVariant::Direct), Error);
  });
}

TEST(Tsqr, NonPowerOfTwoTreeRanks) {
  // Tree reduction with 5 and 6 ranks exercises the unpaired-rank path.
  for (int p : {5, 6}) {
    const Matrix a = random_matrix(90, 4, 84);
    const QrResult dist = run_tsqr(a, p, TsqrVariant::Tree);
    const QrResult serial = qr_thin(a);
    expect_matrix_near(dist.q, serial.q, 1e-10);
  }
}

}  // namespace
}  // namespace parsvd
