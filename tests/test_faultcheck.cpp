// Failure-space checker tests (DESIGN §13), three layers:
//
//   * golden counterexample traces — the seeded recovery-path defects
//     must render the victim, the kill step and the stuck op verbatim,
//     so the traces stay debuggable and deterministic;
//   * cross-validation — for sampled (protocol, P, victim, step)
//     tuples, the real runtime runs under a probe-pinned FaultPlan
//     kill and the registry message/byte totals and FaultReport
//     contents must equal the model's prediction. Only deterministic
//     scenarios (no is_dead()-guard race) are pinned;
//   * the zero-failure regression — the sweep over every FT protocol
//     and kill point must stay clean, so any future recovery-path edit
//     that breaks quiescence fails here, not in production.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/apmos.hpp"
#include "core/parallel_streaming.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"
#include "pmpi/fault.hpp"
#include "test_utils.hpp"
#include "verify/checker.hpp"
#include "verify/fault_schedules.hpp"
#include "verify/selftest.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using pmpi::Context;
using pmpi::FaultPlan;
using verify::check_fault_schedule;
using verify::CheckReport;
using verify::FaultScenario;
using verify::FaultSchedule;
using verify::kNoKillStep;
using verify::StreamingShape;
using verify::Violation;

std::shared_ptr<Context> make_ctx(int size, FaultPlan plan) {
  auto ctx = std::make_shared<Context>(size);
  ctx->set_fault_plan(std::move(plan));
  return ctx;
}

void expect_contains(const std::string& text, const std::string& needle) {
  EXPECT_NE(text.find(needle), std::string::npos)
      << "missing:\n  " << needle << "\nin report:\n" << text;
}

const verify::SeededFaultDefect& defect_named(const std::string& prefix) {
  static const std::vector<verify::SeededFaultDefect> defects =
      verify::seeded_fault_defects();
  for (const auto& d : defects) {
    if (d.schedule.name.rfind(prefix, 0) == 0) return d;
  }
  ADD_FAILURE() << "no seeded fault defect named " << prefix;
  return defects.front();
}

// ------------------------------------------- golden counterexample traces

TEST(FaultTraceGolden, NakedWaitNamesVictimStepAndStuckOp) {
  const auto& d = defect_named("bad:ft-naked-wait");
  const CheckReport report = check_fault_schedule(d.schedule, d.scenario);
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  expect_contains(text, "+ kill(victim=1, step=0)");
  expect_contains(text,
                  "[orphaned-wait] receive 0 on channel (src 1 -> dst 0, tag "
                  "-6) is a naked wait on rank 1, which dies at step 0 "
                  "without posting it — the wait can never complete");
  expect_contains(text,
                  "[orphaned-wait] rank 0 blocks forever on rank 1, which "
                  "died at step 0 — the wait is not death-bounded, so "
                  "recovery never runs");
  // The stuck op is marked at the blocked rank's program position.
  expect_contains(text, "rank 0 (event 0 of 2):");
  expect_contains(
      text,
      "> [0] Recv(src=1, tag=-6, 64 B)  // NAKED wait on a possibly-dead "
      "child — the defect");
  expect_contains(text,
                  "[1] Recv(src=2, tag=-6, 64 B, bounded)  // bounded wait");
}

TEST(FaultTraceGolden, RetransmitReframeIsByteMismatchOnLiveChannel) {
  const auto& d = defect_named("bad:ft-retransmit-reframed");
  const CheckReport report = check_fault_schedule(d.schedule, d.scenario);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::ByteMismatch);
  const std::string text = report.to_string();
  expect_contains(text,
                  "[byte-mismatch] message 1 on channel (src 2 -> dst 0, tag "
                  "-6): sender posts 72 B, receiver expects 64 B");
  expect_contains(text, "rank 2 (event 1 of 2):");
  expect_contains(text,
                  "> [1] Send(dest=0, tag=-6, 72 B)  // retransmit of rank "
                  "1's slot, +8 B repair header — the defect");
}

TEST(FaultTraceGolden, SkippedReleaseDeadlocksTheLiveSurvivor) {
  const auto& d = defect_named("bad:ft-skipped-release");
  const CheckReport report = check_fault_schedule(d.schedule, d.scenario);
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  expect_contains(text,
                  "[deadlock] 1 of 4 ranks cannot run to completion under "
                  "the kill");
  // Rank 3 is stuck on the ALIVE root, so this must NOT read as an
  // orphaned wait on the victim.
  expect_contains(text,
                  "rank 3 blocked on channel (src 0 -> dst 3, tag -7) — "
                  "source rank has FINISHED its script (dropped send)");
  expect_contains(
      text, "> [1] Recv(src=0, tag=-7, 16 B)  // release — never sent");
}

TEST(FaultTraceGolden, DroppedContributionIsUnmatchedPreKillSend) {
  const auto& d = defect_named("bad:ft-dropped-contribution");
  const CheckReport report = check_fault_schedule(d.schedule, d.scenario);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::UnmatchedSend);
  const std::string text = report.to_string();
  expect_contains(text, "+ kill(victim=1, step=1)");
  expect_contains(text,
                  "[unmatched-send] send 0 on channel (src 1 -> dst 0, tag "
                  "-6) (64 B) was posted by the victim pre-kill but no "
                  "survivor ever consumes it");
  expect_contains(text,
                  "> [0] Send(dest=0, tag=-6, 64 B)  // contribution — "
                  "executes before the kill");
}

TEST(FaultTraceGolden, EverySeededFaultDefectIsDetectedWithExpectedKind) {
  for (const auto& d : verify::seeded_fault_defects()) {
    const CheckReport report = check_fault_schedule(d.schedule, d.scenario);
    ASSERT_FALSE(report.ok()) << d.schedule.name;
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == d.expected) found = true;
    }
    EXPECT_TRUE(found) << d.schedule.name << ": expected "
                       << verify::to_string(d.expected) << " in\n"
                       << report.to_string();
    // Every violation must carry a non-empty counterexample trace.
    for (const Violation& v : report.violations) {
      EXPECT_FALSE(v.trace.empty()) << d.schedule.name;
    }
  }
}

// --------------------------------------------- zero-failure regression

// The failure-space sweep on the shipped FT protocols must stay clean.
// schedule_check --faults covers the full grid; this in-process slice
// keeps the guarantee inside the unit suite so a recovery-path edit
// cannot regress quiescence without a red test.
TEST(FaultSweepRegression, AllKillPointsQuiesceOnShippedProtocols) {
  std::size_t scenarios = 0;
  std::size_t failures = 0;
  const auto run = [&](const FaultSchedule& fs) {
    ++scenarios;
    const CheckReport r = check_fault_schedule(fs.schedule, fs.scenario);
    if (!r.ok()) {
      ++failures;
      ADD_FAILURE() << r.to_string();
    }
  };
  const auto sweep = [&](auto&& emit, int victim) {
    const FaultSchedule healthy = emit(FaultScenario{victim, kNoKillStep});
    const std::size_t n = healthy.schedule.ranks[static_cast<std::size_t>(
        victim)].events().size();
    run(healthy);
    for (std::size_t step = 0; step < n; ++step) {
      run(emit(FaultScenario{victim, step}));
    }
  };

  for (int p = 2; p <= 9; ++p) {
    std::vector<std::uint64_t> bytes(static_cast<std::size_t>(p), 48);
    std::vector<std::int64_t> rows(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      rows[static_cast<std::size_t>(r)] = 2 + (r % 4);
    }
    for (int v = 1; v < p; ++v) {
      sweep([&](FaultScenario f) {
        return verify::script_ft_gather(p, 0, bytes, f);
      }, v);
      sweep([&](FaultScenario f) {
        return verify::script_ft_bcast(p, 0, 256, f);
      }, v);
      sweep([&](FaultScenario f) {
        return verify::script_ft_allreduce(p, 0, 5, f);
      }, v);
      sweep([&](FaultScenario f) {
        return verify::script_ft_tsqr_direct(rows, 3, f);
      }, v);
      sweep([&](FaultScenario f) {
        return verify::script_ft_apmos(rows, 4, 3, 2, f);
      }, v);
      StreamingShape shape;
      shape.rows_by_rank = rows;
      shape.num_modes = 2;
      shape.batch_cols = 2;
      shape.rounds = 2;
      sweep([&](FaultScenario f) {
        return verify::script_ft_streaming_updates(shape, f);
      }, v);
    }
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_GT(scenarios, 1000u);  // the slice must stay a real sweep
}

// ------------------------------------------------------ cross-validation
// Each test pins one deterministic (protocol, P, victim, step) tuple:
// model-checked quiescence, then the real runtime under the same kill
// with registry totals (and FaultReport, where the protocol emits one)
// byte-identical to the model's prediction.

TEST(FaultCrossValidation, GatherKillBeforePost) {
  const int p = 4;
  const int root = 0;
  const int victim = 2;
  std::vector<std::uint64_t> bytes;
  for (int r = 0; r < p; ++r) {
    bytes.push_back(24 + 8 * static_cast<std::uint64_t>(r));
  }
  const FaultSchedule model =
      verify::script_ft_gather(p, root, bytes, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  pmpi::run_on(ctx, [&](Communicator& comm) {
    std::vector<std::byte> payload(
        bytes[static_cast<std::size_t>(comm.rank())]);
    const auto out = comm.gather_bytes_ft(std::move(payload), root);
    if (comm.rank() == root) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
      EXPECT_FALSE(out[victim].has_value());
      EXPECT_TRUE(out[1].has_value());
      EXPECT_TRUE(out[3].has_value());
    }
  });
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{victim});
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

TEST(FaultCrossValidation, GatherRotatedRootKillBeforePost) {
  const int p = 3;
  const int root = 2;
  const int victim = 0;
  const std::vector<std::uint64_t> bytes{40, 56, 72};
  const FaultSchedule model =
      verify::script_ft_gather(p, root, bytes, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  pmpi::run_on(ctx, [&](Communicator& comm) {
    std::vector<std::byte> payload(
        bytes[static_cast<std::size_t>(comm.rank())]);
    const auto out = comm.gather_bytes_ft(std::move(payload), root);
    if (comm.rank() == root) {
      EXPECT_FALSE(out[0].has_value());
      EXPECT_TRUE(out[1].has_value());
    }
  });
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

TEST(FaultCrossValidation, AllreduceKillBeforeContribution) {
  const int p = 4;
  const int victim = 1;
  const std::size_t n = 6;
  const FaultSchedule model = verify::script_ft_allreduce(p, 0, n, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  // Survivors must agree on the survivors-only sum.
  std::vector<double> expected(n, 0.0);
  for (int r = 0; r < p; ++r) {
    if (r == victim) continue;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] += static_cast<double>(r * 100) + static_cast<double>(i);
    }
  }

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::vector<double>, 4> results;
  pmpi::run_on(ctx, [&](Communicator& comm) {
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<double>(comm.rank() * 100) + static_cast<double>(i);
    }
    comm.allreduce_sum_ft(std::span<double>(data), 0);
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  for (int r = 0; r < p; ++r) {
    if (r == victim) continue;
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

TEST(FaultCrossValidation, AllreduceLargerWorldKillBeforeContribution) {
  const int p = 6;
  const int victim = 5;
  const FaultSchedule model = verify::script_ft_allreduce(p, 0, 9, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  pmpi::run_on(ctx, [&](Communicator& comm) {
    std::vector<double> data(9, 1.0);
    comm.allreduce_sum_ft(std::span<double>(data), 0);
    if (comm.rank() != victim) {
      EXPECT_EQ(data[0], static_cast<double>(p - 1)) << "rank " << comm.rank();
    }
  });
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{victim});
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

TEST(FaultCrossValidation, TsqrDirectKillBeforeRFactorPost) {
  const int p = 4;
  const std::int64_t k = 3;
  const int victim = 2;
  const std::vector<std::int64_t> rows{5, 6, 7, 8};
  const FaultSchedule model =
      verify::script_ft_tsqr_direct(rows, k, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  pmpi::run_on(ctx, [&](Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const Matrix a = testing::random_matrix(rows[r], k, 900 + r);
    const TsqrResult out = tsqr(comm, a, TsqrVariant::Direct, true);
    if (comm.rank() != victim) {
      EXPECT_EQ(out.excluded_ranks, std::vector<int>{victim})
          << "rank " << comm.rank();
      EXPECT_EQ(out.r.rows(), k);
      EXPECT_EQ(out.r.cols(), k);
    }
  });
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{victim});
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

TEST(FaultCrossValidation, ApmosKillBeforeGatherPostPinsReport) {
  const int p = 4;
  const int victim = 1;
  const std::int64_t n_cols = 6;
  const std::vector<std::int64_t> rows{4, 5, 6, 7};
  const FaultSchedule model =
      verify::script_ft_apmos(rows, n_cols, /*r1=*/3, /*r2=*/2, {victim, 0});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());
  ASSERT_FALSE(model.report_flat.empty());

  FaultPlan plan;
  plan.kill_rank(victim, 0);
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::optional<FaultReport>, 4> reports;
  pmpi::run_on(ctx, [&](Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const Matrix a = testing::random_matrix(rows[r], n_cols, 950 + r);
    ApmosOptions opts;
    opts.r1 = 3;
    opts.r2 = 2;
    opts.fault_tolerant = true;
    const ApmosResult out = apmos_svd(comm, a, opts);
    reports[r] = out.report;
  });
  for (int r = 0; r < p; ++r) {
    if (r == victim) continue;
    ASSERT_TRUE(reports[static_cast<std::size_t>(r)].has_value());
    EXPECT_EQ(reports[static_cast<std::size_t>(r)]->to_doubles(),
              model.report_flat)
        << "rank " << r;
  }
  EXPECT_EQ(ctx->total_messages(), model.messages);
  EXPECT_EQ(ctx->total_bytes(), model.bytes);
}

/// Streaming cross-validation harness: probe the healthy
/// initialize-only run to pin the victim's op offset and the init
/// section's registry totals, then rerun with `rounds` updates under
/// the probe-pinned kill and compare everything to the model.
void cross_validate_streaming(int p, std::vector<std::int64_t> rows,
                              std::int64_t cols0, int victim, int rounds,
                              std::size_t kill_step) {
  const std::int64_t K = 2;
  const std::int64_t B = 2;

  StreamingShape shape;
  shape.rows_by_rank = rows;
  shape.num_modes = K;
  shape.batch_cols = B;
  shape.rounds = rounds;
  shape.init_energy.resize(static_cast<std::size_t>(p));
  shape.round_energy.assign(static_cast<std::size_t>(rounds),
                            std::vector<double>(static_cast<std::size_t>(p)));
  for (int r = 0; r < p; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const double f0 =
        testing::random_matrix(rows[ri], cols0, 70 + ri).norm_fro();
    shape.init_energy[ri] = f0 * f0;
    for (int t = 0; t < rounds; ++t) {
      const double ft = testing::random_matrix(
                            rows[ri], B,
                            100 + 10 * static_cast<std::uint64_t>(t) + ri)
                            .norm_fro();
      shape.round_energy[static_cast<std::size_t>(t)][ri] = ft * ft;
    }
  }

  const FaultSchedule model =
      verify::script_ft_streaming_updates(shape, {victim, kill_step});
  ASSERT_TRUE(model.deterministic);
  ASSERT_TRUE(check_fault_schedule(model.schedule, model.scenario).ok());

  const auto job = [&](Communicator& comm, int updates,
                       std::array<std::optional<FaultReport>, 8>& reports) {
    const auto r = static_cast<std::size_t>(comm.rank());
    StreamingOptions opts;
    opts.num_modes = K;
    opts.fault_tolerant = true;
    ParallelStreamingSVD svd(comm, opts, TsqrVariant::Direct);
    svd.initialize(testing::random_matrix(rows[r], cols0, 70 + r));
    for (int t = 0; t < updates; ++t) {
      svd.incorporate_data(testing::random_matrix(
          rows[r], B, 100 + 10 * static_cast<std::uint64_t>(t) + r));
    }
    reports[r] = svd.fault_report();
  };

  // Healthy probe: initialize only. Its op counts and registry totals
  // are the (identical) init-section baseline of the kill run.
  auto probe = std::make_shared<Context>(p);
  std::array<std::optional<FaultReport>, 8> probe_reports;
  pmpi::run_on(probe, [&](Communicator& comm) {
    job(comm, 0, probe_reports);
  });
  const std::uint64_t offset = probe->ops(victim);
  const std::uint64_t base_msgs = probe->total_messages();
  const std::uint64_t base_bytes = probe->total_bytes();

  FaultPlan plan;
  plan.kill_rank(victim, offset + kill_step);
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::optional<FaultReport>, 8> reports;
  pmpi::run_on(ctx, [&](Communicator& comm) { job(comm, rounds, reports); });

  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{victim});
  EXPECT_EQ(ctx->total_messages(), base_msgs + model.messages);
  EXPECT_EQ(ctx->total_bytes(), base_bytes + model.bytes);

  const FaultReport want = FaultReport::from_doubles(model.report_flat);
  for (int r = 0; r < p; ++r) {
    if (r == victim) continue;
    const auto& got = reports[static_cast<std::size_t>(r)];
    ASSERT_TRUE(got.has_value()) << "rank " << r;
    EXPECT_EQ(got->degraded, want.degraded) << "rank " << r;
    EXPECT_EQ(got->dead_ranks, want.dead_ranks) << "rank " << r;
    EXPECT_EQ(got->surviving_rows, want.surviving_rows) << "rank " << r;
    EXPECT_EQ(got->lost_rows, want.lost_rows) << "rank " << r;
    EXPECT_EQ(got->extent_known, want.extent_known) << "rank " << r;
    EXPECT_DOUBLE_EQ(got->coverage, want.coverage) << "rank " << r;
    EXPECT_DOUBLE_EQ(got->accuracy_bound, want.accuracy_bound)
        << "rank " << r;
  }
}

TEST(FaultCrossValidation, StreamingKillAtSecondRoundEnergyPost) {
  // Victim dies at its round-2 energy post (model step 9): round 1 is
  // fully healthy, round 2 runs degraded with the death observed at
  // the energy gather.
  cross_validate_streaming(/*p=*/4, {4, 5, 6, 7}, /*cols0=*/4, /*victim=*/1,
                           /*rounds=*/2, /*kill_step=*/9);
}

TEST(FaultCrossValidation, StreamingKillAtModesPostShrinksRoundTwo) {
  // Single-row blocks make the stacked-QR extent rank-limited, so the
  // round-2 degraded sizes genuinely diverge from the healthy ones
  // (qcols drops from 3 to 2) — the totals only match if the model
  // tracks the degraded size evolution exactly. The kill lands at the
  // victim's round-1 modes post (model step 7), after it already
  // consumed the round-1 result broadcasts.
  cross_validate_streaming(/*p=*/3, {1, 1, 1}, /*cols0=*/4, /*victim=*/2,
                           /*rounds=*/2, /*kill_step=*/7);
}

}  // namespace
}  // namespace parsvd
