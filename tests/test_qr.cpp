// QR factorization tests: reconstruction, orthogonality, sign convention,
// wide matrices, Q application, least squares, and Gram-Schmidt.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::naive_matmul;
using testing::ortho_defect;
using testing::random_matrix;

TEST(Qr, ReconstructsTall) {
  const Matrix a = random_matrix(20, 5, 1);
  const QrResult qr = qr_thin(a);
  ASSERT_EQ(qr.q.rows(), 20);
  ASSERT_EQ(qr.q.cols(), 5);
  ASSERT_EQ(qr.r.rows(), 5);
  ASSERT_EQ(qr.r.cols(), 5);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-12);
}

TEST(Qr, QHasOrthonormalColumns) {
  const Matrix a = random_matrix(50, 8, 2);
  const QrResult qr = qr_thin(a);
  EXPECT_LT(ortho_defect(qr.q), 1e-13);
}

TEST(Qr, RIsUpperTriangular) {
  const Matrix a = random_matrix(12, 6, 3);
  const QrResult qr = qr_thin(a);
  for (Index j = 0; j < qr.r.cols(); ++j) {
    for (Index i = j + 1; i < qr.r.rows(); ++i) {
      EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
    }
  }
}

TEST(Qr, SignConventionPositiveDiagonal) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_matrix(15, 6, 40 + seed);
    const QrResult qr = qr_thin(a);
    for (Index i = 0; i < 6; ++i) EXPECT_GE(qr.r(i, i), 0.0) << "seed " << seed;
  }
}

TEST(Qr, SignConventionMakesFactorizationUnique) {
  // Full-rank A has a unique QR with positive diag(R); scrambling the
  // input sign column-wise must not change Q·R, and must reproduce the
  // exact same R diag signs.
  const Matrix a = random_matrix(10, 4, 5);
  const QrResult qr1 = qr_thin(a);
  Matrix a2 = a;
  // A cosmetic perturbation: qr of the same matrix twice.
  const QrResult qr2 = qr_thin(a2);
  expect_matrix_near(qr1.q, qr2.q, 0.0);
  expect_matrix_near(qr1.r, qr2.r, 0.0);
}

TEST(Qr, WideMatrixReducedShapes) {
  const Matrix a = random_matrix(4, 9, 6);
  const QrResult qr = qr_thin(a);
  ASSERT_EQ(qr.q.rows(), 4);
  ASSERT_EQ(qr.q.cols(), 4);
  ASSERT_EQ(qr.r.rows(), 4);
  ASSERT_EQ(qr.r.cols(), 9);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-12);
  EXPECT_LT(ortho_defect(qr.q), 1e-13);
}

TEST(Qr, SquareMatrix) {
  const Matrix a = random_matrix(7, 7, 7);
  const QrResult qr = qr_thin(a);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-12);
}

TEST(Qr, SingleColumn) {
  const Matrix a = random_matrix(9, 1, 8);
  const QrResult qr = qr_thin(a);
  EXPECT_NEAR(qr.r(0, 0), a.col(0).norm2(), 1e-13);
}

TEST(Qr, RankDeficientStillFactors) {
  // Two identical columns: QR exists, R(1,1) = 0.
  Matrix a(6, 2);
  Rng rng(9);
  for (Index i = 0; i < 6; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = a(i, 0);
  }
  const QrResult qr = qr_thin(a);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-12);
  EXPECT_NEAR(qr.r(1, 1), 0.0, 1e-12);
}

TEST(Qr, ZeroMatrixFactors) {
  const Matrix a(5, 3, 0.0);
  const QrResult qr = qr_thin(a);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-14);
}

TEST(Qr, EmptyThrows) {
  EXPECT_THROW(qr_thin(Matrix{}), Error);
}

TEST(HouseholderQr, ApplyQtThenQRoundTrips) {
  const Matrix a = random_matrix(12, 5, 10);
  const HouseholderQr f(a);
  Matrix b = random_matrix(12, 3, 11);
  const Matrix b0 = b;
  f.apply_qt(b);
  f.apply_q(b);
  expect_matrix_near(b, b0, 1e-12);
}

TEST(HouseholderQr, ApplyQtGivesRFromA) {
  const Matrix a = random_matrix(10, 4, 12);
  const HouseholderQr f(a);
  Matrix work = a;
  f.apply_qt(work);
  // Top 4x4 of QᵀA must equal R.
  const Matrix r = f.r();
  expect_matrix_near(work.top_rows(4), r, 1e-12);
  // Below the triangle everything must vanish.
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 4; i < 10; ++i) EXPECT_NEAR(work(i, j), 0.0, 1e-12);
  }
}

TEST(HouseholderQr, LeastSquaresSolvesConsistentSystem) {
  const Matrix a = random_matrix(20, 5, 13);
  Vector x_true(5);
  Rng rng(14);
  for (Index i = 0; i < 5; ++i) x_true[i] = rng.gaussian();
  Vector b(20, 0.0);
  gemv(Trans::No, 1.0, a, x_true.span(), 0.0, b.span());
  const HouseholderQr f(a);
  const Vector x = f.solve_least_squares(b);
  testing::expect_vector_near(x, x_true, 1e-11);
}

TEST(HouseholderQr, LeastSquaresMinimizesResidualNorm) {
  const Matrix a = random_matrix(15, 3, 15);
  Vector b(15);
  Rng rng(16);
  for (Index i = 0; i < 15; ++i) b[i] = rng.gaussian();
  const HouseholderQr f(a);
  const Vector x = f.solve_least_squares(b);
  // Residual must be orthogonal to the column space: Aᵀ(b - Ax) = 0.
  Vector r = b;
  gemv(Trans::No, -1.0, a, x.span(), 1.0, r.span());
  Vector atr(3, 0.0);
  gemv(Trans::Yes, 1.0, a, r.span(), 0.0, atr.span());
  EXPECT_LT(atr.norm_inf(), 1e-11);
}

TEST(HouseholderQr, LeastSquaresRejectsWide) {
  const Matrix a = random_matrix(3, 5, 17);
  const HouseholderQr f(a);
  EXPECT_THROW(f.solve_least_squares(Vector(3)), Error);
}

// ------------------------------------------------- blocked compact-WY path

namespace {
double frob_norm(const Matrix& a) {
  double s = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}
}  // namespace

TEST(BlockedQr, MatchesUnblockedReference) {
  // Same matrix through the level-2 reference sweep (block 1) and the
  // compact-WY path (block 8): identical reflectors, so R must agree to
  // rounding and both Q factors must reconstruct A.
  const Matrix a = random_matrix(50, 20, 30);
  const HouseholderQr ref(a, 1);
  const HouseholderQr blk(a, 8);
  EXPECT_EQ(ref.block(), 1);
  EXPECT_EQ(blk.block(), 8);
  expect_matrix_near(blk.r(), ref.r(), 1e-12);
  expect_matrix_near(blk.thin_q(), ref.thin_q(), 1e-12);
}

TEST(BlockedQr, OrthogonalityAndReconstruction) {
  // The ISSUE acceptance gates: ||QᵀQ - I||_max <= 1e-12 and
  // ||A - QR||_F <= 1e-12 ||A||_F for the blocked factorization.
  const std::tuple<int, int, Index> cases[] = {
      {120, 40, 8}, {200, 64, 16}, {97, 33, 8}, {64, 64, 32}, {300, 48, 0}};
  for (const auto& [m, n, block] : cases) {
    SCOPED_TRACE(::testing::Message()
                 << "m=" << m << " n=" << n << " block=" << block);
    const Matrix a = random_matrix(m, n, 600 + m + n);
    const HouseholderQr f(a, block);
    const Matrix q = f.thin_q();
    EXPECT_LE(orthogonality_error(q), 1e-12);
    Matrix residual = naive_matmul(q, f.r());
    for (Index j = 0; j < residual.cols(); ++j) {
      for (Index i = 0; i < residual.rows(); ++i) residual(i, j) -= a(i, j);
    }
    EXPECT_LE(frob_norm(residual), 1e-12 * frob_norm(a));
  }
}

TEST(BlockedQr, ApplyQtThenQRoundTrips) {
  const Matrix a = random_matrix(80, 30, 31);
  const HouseholderQr f(a, 8);
  Matrix b = random_matrix(80, 5, 32);
  const Matrix b0 = b;
  f.apply_qt(b);
  f.apply_q(b);
  expect_matrix_near(b, b0, 1e-12);
}

TEST(BlockedQr, ApplyQtAgreesWithUnblocked) {
  const Matrix a = random_matrix(70, 24, 33);
  const HouseholderQr ref(a, 1);
  const HouseholderQr blk(a, 8);
  Matrix b1 = random_matrix(70, 6, 34);
  Matrix b2 = b1;
  ref.apply_qt(b1);
  blk.apply_qt(b2);
  expect_matrix_near(b2, b1, 1e-12);
}

TEST(BlockedQr, WideMatrixFactorsWithPartialFinalPanel) {
  // m < n: only min(m,n) reflectors exist and the final panel is ragged.
  const Matrix a = random_matrix(20, 45, 35);
  const HouseholderQr f(a, 8);
  const Matrix q = f.thin_q();
  EXPECT_LE(orthogonality_error(q), 1e-12);
  expect_matrix_near(naive_matmul(q, f.r()), a, 1e-11);
}

TEST(BlockedQr, LeastSquaresMatchesUnblocked) {
  const Matrix a = random_matrix(90, 25, 36);
  Vector b(90);
  Rng rng(37);
  for (Index i = 0; i < 90; ++i) b[i] = rng.gaussian();
  const Vector x_ref = HouseholderQr(a, 1).solve_least_squares(b);
  const Vector x_blk = HouseholderQr(a, 8).solve_least_squares(b);
  testing::expect_vector_near(x_blk, x_ref, 1e-11);
}

TEST(Mgs2, OrthonormalizesWellConditioned) {
  Matrix a = random_matrix(30, 6, 18);
  const Index dropped = orthonormalize_mgs2(a);
  EXPECT_EQ(dropped, 0);
  EXPECT_LT(ortho_defect(a), 1e-13);
}

TEST(Mgs2, DetectsDependentColumns) {
  Matrix a(10, 3);
  Rng rng(19);
  for (Index i = 0; i < 10; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = rng.gaussian();
    a(i, 2) = 2.0 * a(i, 0) - a(i, 1);  // dependent
  }
  const Index dropped = orthonormalize_mgs2(a);
  EXPECT_EQ(dropped, 1);
  // The dropped column is zeroed.
  EXPECT_DOUBLE_EQ(nrm2(a.col_span(2)), 0.0);
}

TEST(Mgs2, IllConditionedStaysOrthogonal) {
  // Near-dependent columns — the second pass is what saves this.
  Matrix a(50, 4);
  Rng rng(20);
  for (Index i = 0; i < 50; ++i) a(i, 0) = rng.gaussian();
  for (Index j = 1; j < 4; ++j) {
    for (Index i = 0; i < 50; ++i) {
      a(i, j) = a(i, 0) + 1e-7 * rng.gaussian();
    }
  }
  orthonormalize_mgs2(a);
  EXPECT_LT(ortho_defect(a), 1e-12);
}

TEST(OrthogonalityError, ZeroForExactQ) {
  EXPECT_DOUBLE_EQ(orthogonality_error(Matrix::identity(4)), 0.0);
}

// ----------------------------------------------------------- shape sweep

class QrShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(QrShapeSweep, FactorizationInvariants) {
  const auto [m, n, seed] = GetParam();
  const Matrix a = random_matrix(m, n, seed);
  const QrResult qr = qr_thin(a);
  const Index k = std::min<Index>(m, n);
  ASSERT_EQ(qr.q.cols(), k);
  ASSERT_EQ(qr.r.rows(), k);
  expect_matrix_near(naive_matmul(qr.q, qr.r), a, 1e-11);
  EXPECT_LT(ortho_defect(qr.q), 1e-12);
  for (Index i = 0; i < k; ++i) EXPECT_GE(qr.r(i, i), -1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapeSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 23, 64, 200, 300),
                       ::testing::Values(1, 2, 5, 23, 64),
                       ::testing::Values(0u, 1u, 2u)));

}  // namespace
}  // namespace parsvd
