// Mixed-precision and compensated-accumulation contracts (DESIGN §12):
// the fp32 engine agrees with fp64 to fp32 accuracy on every transpose
// combination, the Mixed randomized-SVD path recovers fp64-grade singular
// values (within the 1e-10 refinement tolerance) on the Burgers snapshot
// matrix and the adversarial spiked spectrum, Single is measurably
// coarser, compensated dot/Gram survive catastrophic cancellation that
// naive fp64 summation loses entirely, and the autotune profile
// round-trips through its JSON persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/randomized.hpp"
#include "linalg/autotune.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "test_utils.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using workloads::synthetic_low_rank;

MatrixF random_f32(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  return to_single(Matrix::gaussian(rows, cols, rng));
}

// Largest per-sigma relative deviation between two results' spectra.
double max_sigma_rel_err(const SvdResult& ref, const SvdResult& got) {
  EXPECT_EQ(ref.s.size(), got.s.size());
  double err = 0.0;
  for (Index i = 0; i < ref.s.size(); ++i) {
    err = std::max(err, std::abs(got.s[i] - ref.s[i]) / ref.s[i]);
  }
  return err;
}

TEST(PrecisionF32, GemmMatchesF64AllTransposeCombos) {
  const Index m = 37, k = 29, n = 31;
  for (int combo = 0; combo < 4; ++combo) {
    const Trans ta = (combo & 1) ? Trans::Yes : Trans::No;
    const Trans tb = (combo & 2) ? Trans::Yes : Trans::No;
    Rng rng(500 + static_cast<std::uint64_t>(combo));
    const Matrix a = (ta == Trans::No) ? Matrix::gaussian(m, k, rng)
                                       : Matrix::gaussian(k, m, rng);
    const Matrix b = (tb == Trans::No) ? Matrix::gaussian(k, n, rng)
                                       : Matrix::gaussian(n, k, rng);
    const Matrix want = matmul(a, b, ta, tb);
    const MatrixF got = matmul_f32(to_single(a), to_single(b), ta, tb);
    // fp32 rounding of the operands plus sqrt(k)-ish accumulation error.
    EXPECT_LT(max_abs_diff(to_double(got), want), 1e-3) << "combo " << combo;
  }
}

TEST(PrecisionF32, GemmBetaAndAlphaSemantics) {
  const MatrixF a = random_f32(12, 7, 510);
  const MatrixF b = random_f32(7, 9, 511);
  MatrixF c(12, 9, 1.0f);
  // C = 2*A*B + 3*C with C prefilled with ones.
  gemm_f32(Trans::No, Trans::No, 2.0f, a, b, 3.0f, c);
  const Matrix want_ab = matmul(to_double(a), to_double(b));
  for (Index j = 0; j < 9; ++j) {
    for (Index i = 0; i < 12; ++i) {
      EXPECT_NEAR(static_cast<double>(c(i, j)), 2.0 * want_ab(i, j) + 3.0,
                  1e-4);
    }
  }
}

TEST(PrecisionF32, Mgs2ProducesOrthonormalBasis) {
  MatrixF a = random_f32(60, 12, 512);
  const Index dropped = orthonormalize_mgs2_f32(a);
  ASSERT_EQ(dropped, 0);  // random gaussian columns are full rank
  const Matrix q = to_double(a);
  const Matrix g = gram(q);
  for (Index j = 0; j < 12; ++j) {
    for (Index i = 0; i < 12; ++i) {
      EXPECT_NEAR(g(i, j), (i == j) ? 1.0 : 0.0, 1e-5);
    }
  }
}

TEST(PrecisionCholQr2, MatchesMgs2SubspaceAtGemmSpeedShapes) {
  // Well-conditioned tall block: CholQR2 must produce an orthonormal
  // basis of the same column space (projector match, since the basis
  // itself is method-dependent).
  Rng rng(513);
  const Matrix a0 = Matrix::gaussian(300, 24, rng);
  Matrix qc = a0;
  ASSERT_EQ(orthonormalize_cholqr2(qc), 0);
  EXPECT_LT(orthogonality_error(qc), 1e-13);
  Matrix qm = a0;
  ASSERT_EQ(orthonormalize_mgs2(qm), 0);
  // P = Q Qᵀ is basis-independent; compare through a probe vector set.
  const Matrix probe = Matrix::gaussian(300, 6, rng);
  const Matrix pc = matmul(qc, matmul(qc, probe, Trans::Yes, Trans::No));
  const Matrix pm = matmul(qm, matmul(qm, probe, Trans::Yes, Trans::No));
  EXPECT_LT(max_abs_diff(pc, pm), 1e-10);
}

TEST(PrecisionCholQr2, FallsBackToMgs2OnRankDeficiency) {
  // Column 3 duplicates column 0: the Gram matrix is exactly singular,
  // Cholesky breaks down, and the MGS2 fallback must report the drop.
  Rng rng(514);
  Matrix a = Matrix::gaussian(80, 6, rng);
  for (Index i = 0; i < a.rows(); ++i) a(i, 3) = a(i, 0);
  const Index dropped = orthonormalize_cholqr2(a);
  EXPECT_EQ(dropped, 1);
}

TEST(PrecisionCholQr2, F32ProducesOrthonormalBasisAndSurvivesConditioning) {
  MatrixF a = random_f32(200, 16, 515);
  ASSERT_EQ(orthonormalize_cholqr2_f32(a), 0);
  const Matrix g = gram(to_double(a));
  for (Index j = 0; j < 16; ++j) {
    for (Index i = 0; i < 16; ++i) {
      EXPECT_NEAR(g(i, j), (i == j) ? 1.0 : 0.0, 1e-5);
    }
  }
  // kappa ~ 1e4 means kappa^2 ~ 1e8 > 1/eps_f32: past the fp32 CholQR
  // breakdown bar, so this exercises the MGS2 fallback path; the result
  // must still be orthonormal.
  Rng rng(516);
  Vector spectrum(8);
  for (Index i = 0; i < 8; ++i) spectrum[i] = std::pow(10.0, -static_cast<double>(i) * 4.0 / 7.0);
  MatrixF b = to_single(synthetic_low_rank(160, 8, spectrum, rng));
  orthonormalize_cholqr2_f32(b);
  const Matrix gb = gram(to_double(b));
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < 8; ++i) {
      EXPECT_NEAR(gb(i, j), (i == j) ? 1.0 : 0.0, 1e-4);
    }
  }
}

// The acceptance fixture: the adversarial spiked spectrum from the sketch
// accuracy suite — two huge spikes over a flat noise floor, the classic
// case where a coarse subspace is catastrophically wrong.
TEST(PrecisionMixed, SigmaWithinRefinementToleranceOnSpikedSpectrum) {
  Rng rng(103);
  Vector spectrum(32);
  spectrum[0] = 100.0;
  spectrum[1] = 50.0;
  for (Index i = 2; i < spectrum.size(); ++i) spectrum[i] = 0.01;
  const Matrix a = synthetic_low_rank(96, 64, spectrum, rng);

  RandomizedOptions opts;
  opts.rank = 2;
  opts.oversampling = 10;
  opts.power_iterations = 1;
  RandomizedOptions od = opts;
  od.precision = Precision::Double;
  RandomizedOptions om = opts;
  om.precision = Precision::Mixed;

  const SvdResult fd = randomized_svd(a, od);
  const SvdResult fm = randomized_svd(a, om);
  ASSERT_EQ(fd.s.size(), 2);
  EXPECT_LT(max_sigma_rel_err(fd, fm), 1e-10);
}

TEST(PrecisionMixed, SigmaWithinRefinementToleranceOnBurgersModes) {
  // A small cut of the paper's Burgers snapshot matrix: strongly decaying
  // physical spectrum, the library's flagship input.
  workloads::BurgersConfig config;
  config.grid_points = 256;
  config.snapshots = 64;
  const Matrix a = workloads::Burgers(config).snapshot_matrix();

  RandomizedOptions opts;
  opts.rank = 5;
  opts.oversampling = 8;
  opts.power_iterations = 2;
  RandomizedOptions od = opts;
  od.precision = Precision::Double;
  RandomizedOptions om = opts;
  om.precision = Precision::Mixed;

  const SvdResult fd = randomized_svd(a, od);
  const SvdResult fm = randomized_svd(a, om);
  ASSERT_EQ(fd.s.size(), 5);
  EXPECT_LT(max_sigma_rel_err(fd, fm), 1e-10);
}

TEST(PrecisionMixed, GeometricSpectrumSweepStaysRefined) {
  // The bench's claim workload at test scale: geometric decay 0.9.
  Rng rng(0x5eedf00d);
  const Vector spectrum = workloads::geometric_spectrum(24, 1.0, 0.9);
  const Matrix a = synthetic_low_rank(192, 96, spectrum, rng);
  RandomizedOptions opts;
  opts.rank = 8;
  opts.oversampling = 8;
  opts.power_iterations = 2;
  RandomizedOptions od = opts;
  od.precision = Precision::Double;
  RandomizedOptions om = opts;
  om.precision = Precision::Mixed;
  const SvdResult fd = randomized_svd(a, od);
  const SvdResult fm = randomized_svd(a, om);
  EXPECT_LT(max_sigma_rel_err(fd, fm), 1e-10);
}

TEST(PrecisionSingle, CoarserThanMixedButSane) {
  Rng rng(0x51e9);
  const Vector spectrum = workloads::geometric_spectrum(24, 1.0, 0.9);
  const Matrix a = synthetic_low_rank(160, 80, spectrum, rng);
  RandomizedOptions opts;
  opts.rank = 6;
  opts.oversampling = 8;
  opts.power_iterations = 2;
  RandomizedOptions od = opts;
  od.precision = Precision::Double;
  RandomizedOptions om = opts;
  om.precision = Precision::Mixed;
  RandomizedOptions os = opts;
  os.precision = Precision::Single;

  const SvdResult fd = randomized_svd(a, od);
  const double mixed_err = max_sigma_rel_err(fd, randomized_svd(a, om));
  const double single_err = max_sigma_rel_err(fd, randomized_svd(a, os));
  // Single projects in fp32 — error at fp32 scale, orders of magnitude
  // above the refined Mixed path but still a usable approximation.
  EXPECT_GT(single_err, mixed_err);
  EXPECT_LT(single_err, 1e-3);
  EXPECT_LT(mixed_err, 1e-10);
}

TEST(PrecisionCompensated, DotRecoversCatastrophicCancellation) {
  // Products are [1e17, 3, -1e17]: naive fp64 rounds 1e17 + 3 back to
  // 1e17 (ulp is 16 there) and returns 0; Dot2 keeps the 3 exactly.
  const std::vector<double> x = {1e9, 1.5, 1e9};
  const std::vector<double> y = {1e8, 2.0, -1e8};
  EXPECT_EQ(dot_compensated(x, y), 3.0);
}

TEST(PrecisionCompensated, GramBeatsNaiveOnIllConditionedColumns) {
  // Columns of huge alternating-sign entries plus a small signal: every
  // cross dot cancels catastrophically. Entries are chosen so products
  // and the true sums are exactly representable, making the compensated
  // result exact while naive summation loses the signal.
  // The first 62 rows of c0 alternate ±1e9 (31 exactly cancelling pairs
  // against the constant-1e8 c1); the last two rows carry the small
  // signal. The cross products are [1e17, -1e17, ..., 3.0, 0.0]: the big
  // pairs cancel exactly and the true dot is 3.0, but naive
  // left-to-right fp64 summation absorbs the 3.0 into a 1e17-scale
  // partial (ulp 16) and loses it. Dot2 keeps it exactly.
  const Index m = 64;
  Matrix a(m, 2);
  for (Index i = 0; i < m - 2; ++i) {
    a(i, 0) = (i % 2 == 0) ? 1e9 : -1e9;
    a(i, 1) = 1e8;
  }
  a(m - 2, 0) = 2.0;
  a(m - 2, 1) = 1.5;
  a(m - 1, 0) = 1e9;
  a(m - 1, 1) = 0.0;
  const Matrix g = gram_compensated(a);
  EXPECT_EQ(g(0, 1), 3.0);
  EXPECT_EQ(g(1, 0), 3.0);
  // And the diagonal matches long-double reference accumulation.
  long double d0 = 0.0L;
  for (Index i = 0; i < m; ++i) {
    d0 += static_cast<long double>(a(i, 0)) * static_cast<long double>(a(i, 0));
  }
  EXPECT_EQ(g(0, 0), static_cast<double>(d0));
}

TEST(PrecisionParse, RoundTripsAndRejectsJunk) {
  EXPECT_EQ(precision_from_string("double"), Precision::Double);
  EXPECT_EQ(precision_from_string("single"), Precision::Single);
  EXPECT_EQ(precision_from_string("mixed"), Precision::Mixed);
  EXPECT_STREQ(to_string(Precision::Mixed), "mixed");
  EXPECT_STREQ(to_string(Precision::Single), "single");
  EXPECT_STREQ(to_string(Precision::Double), "double");
  EXPECT_THROW(precision_from_string("fp16"), Error);
}

TEST(Autotune, ProfileRoundTripsThroughJson) {
  autotune::Profile p;
  p.f64 = {128, 384, 4096, 8, 6};
  p.f32 = {64, 512, 4032, 16, 6};
  p.qr_block = 48;
  p.tuned = true;
  const std::string path = ::testing::TempDir() + "parsvd_tune_roundtrip.json";
  autotune::save_profile(p, path);
  autotune::Profile loaded;
  ASSERT_TRUE(autotune::load_profile(path, loaded));
  EXPECT_EQ(loaded, p);
  std::remove(path.c_str());
}

TEST(Autotune, VersionMismatchIsRejected) {
  const std::string path = ::testing::TempDir() + "parsvd_tune_badver.json";
  {
    std::ofstream out(path);
    out << "{\n  \"schema_version\": 99,\n  \"tuned\": true,\n"
        << "  \"f64\": {\"mc\": 96, \"kc\": 256, \"nc\": 4032, \"mr\": 8, "
           "\"nr\": 6},\n"
        << "  \"f32\": {\"mc\": 96, \"kc\": 512, \"nc\": 4032, \"mr\": 16, "
           "\"nr\": 6},\n"
        << "  \"qr_block\": 32\n}\n";
  }
  autotune::Profile loaded = autotune::default_profile();
  const autotune::Profile before = loaded;
  EXPECT_FALSE(autotune::load_profile(path, loaded));
  EXPECT_EQ(loaded, before);  // untouched on rejection
  std::remove(path.c_str());
}

TEST(Autotune, SanitizeClampsToLegalFeasibleBlocking) {
  const autotune::Blocking fallback = autotune::default_profile().f64;
  // Nonsense request: tiny/huge blocks and an uninstantiated micro tile.
  autotune::Blocking wild{1, 100000, 3, 5, 7};
  const autotune::Blocking fixed = autotune::sanitize(wild, fallback);
  EXPECT_TRUE(detail::has_kernel_f64(fixed.mr, fixed.nr));
  EXPECT_GE(fixed.mc, fixed.mr);
  EXPECT_EQ(fixed.mc % fixed.mr, 0);
  EXPECT_GE(fixed.nc, fixed.nr);
  EXPECT_EQ(fixed.nc % fixed.nr, 0);
  EXPECT_GE(fixed.kc, 8);
  EXPECT_LE(fixed.kc, 8192);
  // Sane requests pass through unchanged.
  const autotune::Blocking ok = autotune::sanitize(fallback, fallback);
  EXPECT_EQ(ok, fallback);
}

TEST(Autotune, DefaultProfileIsFeasible) {
  const autotune::Profile p = autotune::default_profile();
  EXPECT_TRUE(detail::has_kernel_f64(p.f64.mr, p.f64.nr));
  EXPECT_TRUE(detail::has_kernel_f32(p.f32.mr, p.f32.nr));
  EXPECT_FALSE(p.tuned);
  EXPECT_GT(p.qr_block, 0);
  // The active profile (whatever env this test runs under) is feasible
  // too — resolution always ends in sanitize().
  const autotune::Profile& active = autotune::active_profile();
  EXPECT_TRUE(detail::has_kernel_f64(active.f64.mr, active.f64.nr));
  EXPECT_TRUE(detail::has_kernel_f32(active.f32.mr, active.f32.nr));
}

}  // namespace
}  // namespace parsvd
