// Parameterized property sweeps over the streaming SVD configuration
// space: every (K, batch, ff, backend, parallel-ranks) combination must
// uphold the structural invariants regardless of accuracy — orthonormal
// modes, non-negative descending singular values, stable shapes — and
// the ff = 1 configurations must track the batch SVD.
#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "core/parallel_streaming.hpp"
#include "core/streaming.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using testing::ortho_defect;
namespace wl = workloads;

const Matrix& shared_data() {
  static const Matrix data = [] {
    wl::BurgersConfig cfg;
    cfg.grid_points = 256;
    cfg.snapshots = 96;
    return wl::Burgers(cfg).snapshot_matrix();
  }();
  return data;
}

// ------------------------------------------------- serial sweep (TEST_P)

using SerialCase = std::tuple<int, int, double, int>;  // K, B, ff, method

class SerialStreamingSweep : public ::testing::TestWithParam<SerialCase> {};

TEST_P(SerialStreamingSweep, StructuralInvariants) {
  const auto [k, b, ff, method_idx] = GetParam();
  const Matrix& data = shared_data();

  StreamingOptions opts;
  opts.num_modes = k;
  opts.forget_factor = ff;
  opts.method = static_cast<SvdMethod>(method_idx);
  SerialStreamingSVD s(opts);

  wl::MatrixBatchSource src(data);
  s.initialize(src.next_batch(b));
  while (!src.exhausted()) s.incorporate_data(src.next_batch(b));

  // Shapes: the first batch caps the initial basis at min(K, B); later
  // updates widen the factorization, so the final count lies between
  // that floor and K.
  const Index k_floor = std::min<Index>(k, std::min<Index>(b, data.rows()));
  EXPECT_EQ(s.modes().rows(), data.rows());
  EXPECT_LE(s.modes().cols(), k);
  EXPECT_GE(s.modes().cols(), k_floor);
  EXPECT_EQ(s.singular_values().size(), s.modes().cols());
  EXPECT_EQ(s.snapshots_seen(), data.cols());
  const Index k_eff = s.modes().cols();

  // Orthonormality of the retained basis.
  EXPECT_LT(ortho_defect(s.modes()), 1e-9);

  // Spectrum sanity.
  const Vector& sv = s.singular_values();
  for (Index i = 0; i < sv.size(); ++i) {
    EXPECT_GE(sv[i], 0.0);
    if (i > 0) {
      EXPECT_GE(sv[i - 1], sv[i] - 1e-12);
    }
  }

  // ff = 1 tracks the batch SVD's leading values (loose bound: the
  // truncation tail perturbs at the percent level on full-rank data).
  if (ff == 1.0) {
    SvdOptions ref_opts;
    ref_opts.rank = k_eff;
    const SvdResult ref = svd(data, ref_opts);
    for (Index i = 0; i < std::min<Index>(2, k_eff); ++i) {
      EXPECT_NEAR(sv[i], ref.s[i], 5e-2 * ref.s[i]) << "sigma " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SerialStreamingSweep,
    ::testing::Combine(::testing::Values(1, 4, 12),          // K
                       ::testing::Values(8, 24, 96),         // batch
                       ::testing::Values(1.0, 0.95, 0.7),    // ff
                       ::testing::Values(0, 2)));            // Jacobi, GK

// ----------------------------------------------- parallel sweep (TEST_P)

using ParallelCase = std::tuple<int, int, int>;  // ranks, K, tsqr variant

class ParallelStreamingSweep : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelStreamingSweep, StructuralInvariants) {
  const auto [p, k, variant_idx] = GetParam();
  const Matrix& data = shared_data();
  const auto variant = static_cast<TsqrVariant>(variant_idx);

  StreamingOptions opts;
  opts.num_modes = k;
  opts.forget_factor = 0.95;

  Matrix modes;
  Vector sv;
  std::mutex mu;
  pmpi::run(p, [&](Communicator& comm) {
    const auto part = wl::partition_rows(data.rows(), p, comm.rank());
    ParallelStreamingSVD s(comm, opts, variant);
    wl::MatrixBatchSource src(data, part.offset, part.count);
    s.initialize(src.next_batch(24));
    while (!src.exhausted()) s.incorporate_data(src.next_batch(24));
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      modes = s.modes();
      sv = s.singular_values();
    }
  });

  EXPECT_EQ(modes.rows(), data.rows());
  EXPECT_EQ(modes.cols(), k);
  EXPECT_LT(ortho_defect(modes), 1e-8);
  for (Index i = 1; i < sv.size(); ++i) EXPECT_GE(sv[i - 1], sv[i] - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelStreamingSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),  // ranks
                       ::testing::Values(2, 6),           // K
                       ::testing::Values(0, 1)));         // Direct, Tree

}  // namespace
}  // namespace parsvd
