// Randomized stress tests for the message-passing runtime: many ranks,
// random message sizes/tags/interleavings, mixed point-to-point and
// collective traffic — the failure modes (lost wakeups, tag cross-talk,
// FIFO violations) only show under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "pmpi/comm.hpp"
#include "support/rng.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using pmpi::Op;

TEST(PmpiStress, RandomizedAllToAllExchange) {
  // Every rank sends a random-length checksummed payload to every other
  // rank on a per-pair tag, receives from everyone, and verifies.
  const int p = 8;
  pmpi::run(p, [p](Communicator& comm) {
    Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    // Send phase.
    for (int dst = 0; dst < p; ++dst) {
      if (dst == comm.rank()) continue;
      const std::size_t len = 1 + rng.uniform_index(4096);
      std::vector<double> payload(len);
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < len; ++i) {
        payload[i] = rng.uniform(-1.0, 1.0);
        sum += payload[i];
      }
      payload[len - 1] = sum;  // checksum in the last slot
      comm.send<double>(payload, dst, comm.rank() * p + dst);
    }
    // Receive phase (any order of sources).
    for (int src = 0; src < p; ++src) {
      if (src == comm.rank()) continue;
      const std::vector<double> got =
          comm.recv<double>(src, src * p + comm.rank());
      ASSERT_GE(got.size(), 1u);
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < got.size(); ++i) sum += got[i];
      EXPECT_NEAR(got.back(), sum, 1e-9) << "src " << src;
    }
  });
}

TEST(PmpiStress, ManyMessagesSameChannelKeepOrder) {
  // 2000 small messages on one (src, dst, tag) channel must arrive in
  // exactly the posted order.
  pmpi::run(2, [](Communicator& comm) {
    constexpr int kCount = 2000;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        comm.send<int>(std::vector<int>{i}, 1, 5);
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(comm.recv<int>(0, 5).at(0), i);
      }
    }
  });
}

TEST(PmpiStress, InterleavedTagsNoCrossTalk) {
  // Two logical streams share a channel pair with different tags; the
  // receiver drains them in opposite orders.
  pmpi::run(2, [](Communicator& comm) {
    constexpr int kCount = 200;
    if (comm.rank() == 0) {
      Rng rng(7);
      int sent_a = 0, sent_b = 0;
      while (sent_a < kCount || sent_b < kCount) {
        const bool pick_a =
            sent_b >= kCount || (sent_a < kCount && rng.uniform() < 0.5);
        if (pick_a) {
          comm.send<int>(std::vector<int>{sent_a++}, 1, 1);
        } else {
          comm.send<int>(std::vector<int>{1000 + sent_b++}, 1, 2);
        }
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(comm.recv<int>(0, 2).at(0), 1000 + i);
      }
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(comm.recv<int>(0, 1).at(0), i);
      }
    }
  });
}

TEST(PmpiStress, RepeatedCollectivesConsistent) {
  // 100 rounds of mixed collectives; any ordering bug between rounds
  // shows up as a wrong reduction value.
  const int p = 6;
  pmpi::run(p, [p](Communicator& comm) {
    for (int round = 0; round < 100; ++round) {
      const double mine = static_cast<double>(comm.rank() + round);
      const double sum = comm.allreduce_scalar(mine, Op::Sum);
      const double expected =
          static_cast<double>(p * round + (p * (p - 1)) / 2);
      ASSERT_DOUBLE_EQ(sum, expected) << "round " << round;

      std::vector<double> data;
      if (comm.rank() == round % p) data = {static_cast<double>(round)};
      comm.bcast(data, round % p);
      ASSERT_EQ(data.size(), 1u);
      ASSERT_DOUBLE_EQ(data[0], static_cast<double>(round));
    }
  });
}

TEST(PmpiStress, LargePayloadsSurvive) {
  // 8 MB matrices through gather + bcast.
  pmpi::run(3, [](Communicator& comm) {
    const Matrix local = testing::random_matrix(
        1024, 256, 2000 + static_cast<std::uint64_t>(comm.rank()));
    const std::vector<Matrix> all = comm.gather_matrices(local, 0);
    Matrix back;
    if (comm.is_root()) {
      back = all[2];
    }
    comm.bcast_matrix(back, 0);
    const Matrix expected = testing::random_matrix(1024, 256, 2002);
    EXPECT_DOUBLE_EQ(max_abs_diff(back, expected), 0.0);
  });
}

TEST(PmpiStress, PayloadCapRejectsOversizedSend) {
  // A send above the per-message cap must fail with a typed CommError at
  // the sender — not corrupt the mailbox or stall the receiver — and the
  // channel must remain usable afterwards.
  auto ctx = std::make_shared<pmpi::Context>(2);
  ctx->set_max_payload_bytes(1024);
  pmpi::run_on(ctx, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> big(4096, 1.0);  // 32 KiB > 1 KiB cap
      bool threw = false;
      try {
        comm.send<double>(big, 1, 7);
      } catch (const CommError&) {
        threw = true;
      }
      EXPECT_TRUE(threw) << "oversized send<double> was accepted";

      threw = false;
      try {
        comm.send_matrix(Matrix(64, 64), 1, 8);
      } catch (const CommError&) {
        threw = true;
      }
      EXPECT_TRUE(threw) << "oversized send_matrix was accepted";

      // The failed sends must not have consumed sequence numbers or left
      // partial messages behind: a conforming send still goes through.
      comm.send<int>(std::vector<int>{42}, 1, 9);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 9).at(0), 42);
    }
  });
}

TEST(PmpiStress, EmptyPayloadStillTravelsUnderTightCap) {
  // The cap bounds oversized messages only; zero-byte payloads (empty
  // matrices travel as shape-only headers plus no data) must still pass.
  auto ctx = std::make_shared<pmpi::Context>(2);
  ctx->set_max_payload_bytes(64);
  pmpi::run_on(ctx, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(std::vector<double>{}, 1, 3);
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 3).empty());
    }
  });
}

TEST(PmpiStress, AbortDuringBarrierWakesEveryRankExactlyOnce) {
  // abort_job() fired while other ranks sit inside barrier() must wake
  // each of them with exactly one JobAbortedError — no hang, no double
  // delivery. Repeated across fresh contexts to catch lost-wakeup races.
  constexpr int kIters = 25;
  const int p = 4;
  for (int iter = 0; iter < kIters; ++iter) {
    std::atomic<int> aborted_throws{0};
    std::atomic<int> other_throws{0};
    auto ctx = std::make_shared<pmpi::Context>(p);
    try {
      pmpi::run_on(ctx, [&](Communicator& comm) {
        if (comm.rank() == 0) {
          // Give the other ranks time to block inside barrier().
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          comm.context().abort_job();
          return;
        }
        try {
          comm.barrier();
          ADD_FAILURE() << "barrier returned after abort, iter " << iter;
        } catch (const JobAbortedError&) {
          aborted_throws.fetch_add(1);
          throw;
        } catch (...) {
          other_throws.fetch_add(1);
          throw;
        }
      });
      ADD_FAILURE() << "run_on did not surface the abort, iter " << iter;
    } catch (const JobAbortedError&) {
      // Expected: every non-aborting rank saw the abort.
    }
    EXPECT_EQ(aborted_throws.load(), p - 1) << "iter " << iter;
    EXPECT_EQ(other_throws.load(), 0) << "iter " << iter;
  }
}

TEST(PmpiStress, ConcurrentJobsDoNotInterfere) {
  // Two communicator jobs running simultaneously in one process (the
  // bench harness does this when nested) must stay fully isolated.
  std::atomic<int> failures{0};
  std::thread t1([&] {
    try {
      pmpi::run(4, [](Communicator& comm) {
        for (int i = 0; i < 50; ++i) {
          const double s = comm.allreduce_scalar(1.0, Op::Sum);
          if (s != 4.0) throw ConfigError("bad sum in job 1");
        }
      });
    } catch (...) {
      failures.fetch_add(1);
    }
  });
  std::thread t2([&] {
    try {
      pmpi::run(3, [](Communicator& comm) {
        for (int i = 0; i < 50; ++i) {
          const double s = comm.allreduce_scalar(2.0, Op::Sum);
          if (s != 6.0) throw ConfigError("bad sum in job 2");
        }
      });
    } catch (...) {
      failures.fetch_add(1);
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace parsvd
