// Symmetric eigensolver tests: known decompositions, invariants over a
// random sweep, Gram-matrix positive semidefiniteness, convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eigh.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::naive_matmul;
using testing::ortho_defect;
using testing::random_symmetric;

TEST(Eigh, DiagonalMatrix) {
  const Matrix a = Matrix::diag(Vector{3, 1, 2});
  const EighResult e = eigh(a);
  EXPECT_DOUBLE_EQ(e.values[0], 3.0);
  EXPECT_DOUBLE_EQ(e.values[1], 2.0);
  EXPECT_DOUBLE_EQ(e.values[2], 1.0);
}

TEST(Eigh, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with vectors (1,1), (1,-1).
  const Matrix a{{2, 1}, {1, 2}};
  const EighResult e = eigh(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-14);
  EXPECT_NEAR(e.values[1], 1.0, 1e-14);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(e.vectors(0, 0)), inv_sqrt2, 1e-14);
  EXPECT_NEAR(std::fabs(e.vectors(1, 0)), inv_sqrt2, 1e-14);
}

TEST(Eigh, IdentityHasUnitEigenvalues) {
  const EighResult e = eigh(Matrix::identity(5));
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(e.values[i], 1.0, 1e-15);
}

TEST(Eigh, ValuesDescending) {
  const Matrix a = random_symmetric(12, 21);
  const EighResult e = eigh(a);
  for (Index i = 1; i < e.values.size(); ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

TEST(Eigh, VectorsOrthonormal) {
  const Matrix a = random_symmetric(15, 22);
  const EighResult e = eigh(a);
  EXPECT_LT(ortho_defect(e.vectors), 1e-12);
}

TEST(Eigh, Reconstruction) {
  const Matrix a = random_symmetric(10, 23);
  const EighResult e = eigh(a);
  const Matrix vd = naive_matmul(e.vectors, Matrix::diag(e.values));
  const Matrix rec = naive_matmul(vd, e.vectors.transposed());
  expect_matrix_near(rec, a, 1e-11);
}

TEST(Eigh, EigenvalueEquationHolds) {
  const Matrix a = random_symmetric(8, 24);
  const EighResult e = eigh(a);
  for (Index j = 0; j < 8; ++j) {
    Vector av(8, 0.0);
    gemv(Trans::No, 1.0, a, e.vectors.col_span(j), 0.0, av.span());
    Vector lv = e.values[j] * e.vectors.col(j);
    EXPECT_LT(max_abs_diff(av, lv), 1e-11) << "pair " << j;
  }
}

TEST(Eigh, TraceEqualsEigenvalueSum) {
  const Matrix a = random_symmetric(9, 25);
  const EighResult e = eigh(a);
  double trace = 0.0;
  for (Index i = 0; i < 9; ++i) trace += a(i, i);
  EXPECT_NEAR(e.values.sum(), trace, 1e-11);
}

TEST(Eigh, GramMatrixIsPsd) {
  const Matrix g = gram(testing::random_matrix(20, 6, 26));
  const EighResult e = eigh(g);
  for (Index i = 0; i < e.values.size(); ++i) {
    EXPECT_GE(e.values[i], -1e-10);
  }
}

TEST(Eigh, RejectsNonSquare) {
  EXPECT_THROW(eigh(Matrix(3, 4)), Error);
}

TEST(Eigh, RejectsAsymmetric) {
  Matrix a{{1, 2}, {5, 1}};
  EXPECT_THROW(eigh(a), Error);
}

TEST(Eigh, HandlesRepeatedEigenvalues) {
  // 2 I plus a rank-1 bump: eigenvalues {3, 2, 2}.
  Matrix a = 2.0 * Matrix::identity(3);
  a(0, 0) = 3.0;
  const EighResult e = eigh(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-13);
  EXPECT_NEAR(e.values[1], 2.0, 1e-13);
  EXPECT_NEAR(e.values[2], 2.0, 1e-13);
  EXPECT_LT(ortho_defect(e.vectors), 1e-12);
}

TEST(Eigh, OneByOne) {
  const EighResult e = eigh(Matrix{{-4.0}});
  EXPECT_DOUBLE_EQ(e.values[0], -4.0);
  EXPECT_DOUBLE_EQ(std::fabs(e.vectors(0, 0)), 1.0);
}

class EighSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EighSweep, Invariants) {
  const auto [n, seed] = GetParam();
  const Matrix a = random_symmetric(n, 500 + seed);
  const EighResult e = eigh(a);
  EXPECT_LT(ortho_defect(e.vectors), 1e-11);
  const Matrix vd = naive_matmul(e.vectors, Matrix::diag(e.values));
  const Matrix rec = naive_matmul(vd, e.vectors.transposed());
  // Tolerance scales with matrix norm.
  expect_matrix_near(rec, a, 1e-10 * std::max(1.0, a.norm_fro()));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EighSweep,
    ::testing::Combine(::testing::Values(2, 3, 7, 16, 33),
                       ::testing::Values(0u, 1u, 2u, 3u)));

}  // namespace
}  // namespace parsvd
