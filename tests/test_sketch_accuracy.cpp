// Accuracy sweep for the sketched randomized SVD: the Halko-style
// spectral-error bound on synthetic decaying spectra for all three sketch
// kinds, an adversarial spiked spectrum, structured-vs-dense error
// ratios, and a cross-backend check against the deterministic SVD.
#include <gtest/gtest.h>

#include <cmath>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "test_utils.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using sketch::SketchKind;
using workloads::synthetic_low_rank;

const SketchKind kAllKinds[] = {SketchKind::DenseGaussian,
                                SketchKind::SparseSign, SketchKind::Srht};

// sqrt(Σ_{i >= k} σ_i²) — the Frobenius error of the optimal rank-k
// approximation, the yardstick of the Halko bound.
double tail_fro(const Vector& spectrum, Index k) {
  double sum = 0.0;
  for (Index i = k; i < spectrum.size(); ++i) sum += spectrum[i] * spectrum[i];
  return std::sqrt(sum);
}

double projection_residual(const Matrix& a, const Matrix& q) {
  const Matrix proj = matmul(q, matmul(q, a, Trans::Yes, Trans::No));
  return (a - proj).norm_fro();
}

// Range-finder residual for one kind at the given oversampling.
double residual_for(const Matrix& a, SketchKind kind, Index rank,
                    Index oversampling, std::uint64_t seed) {
  RandomizedOptions opts;
  opts.rank = rank;
  opts.oversampling = oversampling;
  opts.sketch_kind = kind;
  Rng rng(seed);
  const Matrix q = randomized_range_finder(a, opts, rng);
  return projection_residual(a, q);
}

TEST(SketchAccuracy, HalkoBoundOnAlgebraicSpectrum) {
  // σ_i = 1/(1+i): slow decay, a meaningful tail at every truncation.
  // With oversampling 10 the expected residual is (1 + r/(p-1))^{1/2} ≈
  // 1.5x the optimal tail; 3x leaves deterministic-seed headroom.
  Rng rng(101);
  const Vector spectrum = workloads::algebraic_spectrum(40, 1.0, 1.0);
  const Matrix a = synthetic_low_rank(120, 80, spectrum, rng);
  const Index rank = 10;
  const double optimal = tail_fro(spectrum, rank);
  for (SketchKind kind : kAllKinds) {
    const double err = residual_for(a, kind, rank, 10, 0x5eedULL);
    EXPECT_LE(err, 3.0 * optimal) << sketch::to_string(kind);
  }
}

TEST(SketchAccuracy, HalkoBoundOnGeometricSpectrum) {
  Rng rng(102);
  const Vector spectrum = workloads::geometric_spectrum(30, 10.0, 0.8);
  const Matrix a = synthetic_low_rank(100, 60, spectrum, rng);
  const Index rank = 8;
  const double optimal = tail_fro(spectrum, rank);
  for (SketchKind kind : kAllKinds) {
    const double err = residual_for(a, kind, rank, 10, 0x5eedULL);
    EXPECT_LE(err, 3.0 * optimal) << sketch::to_string(kind);
  }
}

TEST(SketchAccuracy, AdversarialSpikedSpectrum) {
  // Two huge spikes over a flat noise floor: the classic case where a
  // sketch that misses a spike direction is catastrophically wrong.
  Rng rng(103);
  Vector spectrum(32);
  spectrum[0] = 100.0;
  spectrum[1] = 50.0;
  for (Index i = 2; i < spectrum.size(); ++i) spectrum[i] = 0.01;
  const Matrix a = synthetic_low_rank(96, 64, spectrum, rng);
  for (SketchKind kind : kAllKinds) {
    RandomizedOptions opts;
    opts.rank = 2;
    opts.oversampling = 10;
    opts.sketch_kind = kind;
    const SvdResult f = randomized_svd(a, opts);
    ASSERT_EQ(f.s.size(), 2);
    EXPECT_NEAR(f.s[0], 100.0, 1.0) << sketch::to_string(kind);
    EXPECT_NEAR(f.s[1], 50.0, 1.0) << sketch::to_string(kind);
  }
}

TEST(SketchAccuracy, StructuredWithinTwiceDenseError) {
  // The acceptance bar: at oversampling >= 10 the structured operators'
  // residuals stay within 2x the dense-Gaussian residual.
  Rng rng(104);
  const Vector spectrum = workloads::algebraic_spectrum(40, 1.0, 1.0);
  const Matrix a = synthetic_low_rank(120, 80, spectrum, rng);
  const double dense =
      residual_for(a, SketchKind::DenseGaussian, 10, 10, 0x5eedULL);
  for (SketchKind kind : {SketchKind::SparseSign, SketchKind::Srht}) {
    const double err = residual_for(a, kind, 10, 10, 0x5eedULL);
    EXPECT_LE(err, 2.0 * dense) << sketch::to_string(kind);
  }
}

TEST(SketchAccuracy, ExactLowRankRecoveredByAllKinds) {
  Rng rng(105);
  const Vector spectrum = workloads::geometric_spectrum(5, 4.0, 0.5);
  const Matrix a = synthetic_low_rank(80, 48, spectrum, rng);
  for (SketchKind kind : kAllKinds) {
    RandomizedOptions opts;
    opts.rank = 5;
    opts.oversampling = 10;
    opts.sketch_kind = kind;
    const SvdResult f = randomized_svd(a, opts);
    ASSERT_EQ(f.s.size(), 5);
    for (Index i = 0; i < 5; ++i) {
      EXPECT_NEAR(f.s[i], spectrum[i], 1e-8 * spectrum[0])
          << sketch::to_string(kind) << " sigma " << i;
    }
  }
}

TEST(SketchAccuracy, CrossBackendAgreesWithDeterministicSvd) {
  // Sketched randomized SVD vs the deterministic backend within the
  // ablation tolerance (reconstruction error within 1.5x of optimal).
  Rng rng(106);
  const Vector spectrum = workloads::algebraic_spectrum(50, 1.0, 1.0);
  const Matrix a = synthetic_low_rank(100, 70, spectrum, rng);
  SvdOptions dopts;
  dopts.rank = 10;
  const double err_det = (a - svd(a, dopts).reconstruct()).norm_fro();
  for (SketchKind kind : kAllKinds) {
    RandomizedOptions opts;
    opts.rank = 10;
    opts.oversampling = 10;
    opts.power_iterations = 2;
    opts.sketch_kind = kind;
    const double err = (a - randomized_svd(a, opts).reconstruct()).norm_fro();
    EXPECT_LE(err, 1.5 * err_det + 1e-12) << sketch::to_string(kind);
  }
}

TEST(SketchAccuracy, AutoKindIsAccurate) {
  Rng rng(107);
  const Vector spectrum = workloads::geometric_spectrum(4, 2.0, 0.5);
  const Matrix a = synthetic_low_rank(60, 40, spectrum, rng);
  RandomizedOptions opts;
  opts.rank = 4;
  opts.oversampling = 8;
  opts.sketch_kind = SketchKind::Auto;
  const SvdResult f = randomized_svd(a, opts);
  EXPECT_NEAR(f.s[0], spectrum[0], 1e-8);
}

}  // namespace
}  // namespace parsvd
