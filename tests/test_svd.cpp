// SVD tests: exact small cases, invariant sweep over shapes x backends,
// cross-backend agreement, truncation, pseudoinverse axioms, sign fixing.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "test_utils.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::expect_vector_near;
using testing::naive_matmul;
using testing::ortho_defect;
using testing::random_matrix;

Matrix reconstruct(const SvdResult& f) {
  Matrix us = f.u;
  for (Index j = 0; j < us.cols(); ++j) {
    for (Index i = 0; i < us.rows(); ++i) us(i, j) *= f.s[j];
  }
  return naive_matmul(us, f.v.transposed());
}

TEST(Svd, DiagonalMatrixExact) {
  const Matrix a = Matrix::diag(Vector{5, 3, 1});
  for (const auto method : {SvdMethod::Jacobi, SvdMethod::GolubKahan,
                            SvdMethod::MethodOfSnapshots}) {
    SvdOptions opts;
    opts.method = method;
    const SvdResult f = svd(a, opts);
    EXPECT_NEAR(f.s[0], 5.0, 1e-12);
    EXPECT_NEAR(f.s[1], 3.0, 1e-12);
    EXPECT_NEAR(f.s[2], 1.0, 1e-12);
  }
}

TEST(Svd, NegativeDiagonalGivesPositiveSingularValues) {
  const Matrix a = Matrix::diag(Vector{-7, 2});
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 7.0, 1e-13);
  EXPECT_NEAR(f.s[1], 2.0, 1e-13);
}

TEST(Svd, Known2x2) {
  // [[3, 0], [4, 5]] has singular values sqrt(45 ± sqrt(2025 - 225))... use
  // the exact values: σ² are eigenvalues of AᵀA = [[25, 20], [20, 25]],
  // i.e. 45 and 5 → σ = 3√5 and √5.
  const Matrix a{{3, 0}, {4, 5}};
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 3.0 * std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(f.s[1], std::sqrt(5.0), 1e-12);
}

TEST(Svd, RankOneMatrix) {
  // a = 2 * u vᵀ with unit u, v.
  Matrix a(4, 3);
  const Vector u{0.5, 0.5, 0.5, 0.5};
  const Vector v{1.0, 0.0, 0.0};
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 3; ++j) a(i, j) = 2.0 * u[i] * v[j];
  }
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 2.0, 1e-12);
  for (Index j = 1; j < f.s.size(); ++j) EXPECT_NEAR(f.s[j], 0.0, 1e-12);
}

TEST(Svd, SingularValuesMatchEigPhilosophy) {
  const Matrix a = random_matrix(9, 6, 30);
  const SvdResult f = svd(a);
  // σ_max bounds: ||A||_F² = Σ σ².
  double ssq = 0.0;
  for (Index i = 0; i < f.s.size(); ++i) ssq += f.s[i] * f.s[i];
  EXPECT_NEAR(ssq, a.norm_fro() * a.norm_fro(), 1e-9);
}

TEST(Svd, TruncationKeepsLeading) {
  const Matrix a = random_matrix(12, 8, 31);
  const SvdResult full = svd(a);
  SvdOptions opts;
  opts.rank = 3;
  const SvdResult trunc = svd(a, opts);
  ASSERT_EQ(trunc.s.size(), 3);
  ASSERT_EQ(trunc.u.cols(), 3);
  ASSERT_EQ(trunc.v.cols(), 3);
  for (Index i = 0; i < 3; ++i) EXPECT_NEAR(trunc.s[i], full.s[i], 1e-11);
}

TEST(Svd, ReconstructMethodMatchesManual) {
  const Matrix a = random_matrix(7, 5, 32);
  const SvdResult f = svd(a);
  expect_matrix_near(f.reconstruct(), reconstruct(f), 1e-12);
}

TEST(Svd, JacobiAndGolubKahanAgreeOnSpectrum) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Matrix a = random_matrix(20, 9, 600 + seed);
    SvdOptions j, g;
    j.method = SvdMethod::Jacobi;
    g.method = SvdMethod::GolubKahan;
    const SvdResult fj = svd(a, j);
    const SvdResult fg = svd(a, g);
    expect_vector_near(fj.s, fg.s, 1e-10, "spectra");
  }
}

TEST(Svd, MethodOfSnapshotsAgreesForWellSeparated) {
  Rng rng(33);
  const Vector spectrum = workloads::geometric_spectrum(6, 10.0, 0.5);
  const Matrix a = workloads::synthetic_low_rank(50, 10, spectrum, rng);
  SvdOptions opts;
  opts.method = SvdMethod::MethodOfSnapshots;
  const SvdResult f = svd(a, opts);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(f.s[i], spectrum[i], 1e-7 * spectrum[0]);
  }
}

TEST(Svd, RecoversPlantedSpectrumExactly) {
  Rng rng(34);
  const Vector spectrum = workloads::geometric_spectrum(5, 4.0, 0.3);
  const Matrix a = workloads::synthetic_low_rank(30, 20, spectrum, rng);
  const SvdResult f = svd(a);
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(f.s[i], spectrum[i], 1e-11);
  for (Index i = 5; i < f.s.size(); ++i) EXPECT_NEAR(f.s[i], 0.0, 1e-11);
}

TEST(Svd, WideMatrixHandled) {
  const Matrix a = random_matrix(4, 11, 35);
  for (const auto method : {SvdMethod::Jacobi, SvdMethod::GolubKahan}) {
    SvdOptions opts;
    opts.method = method;
    const SvdResult f = svd(a, opts);
    ASSERT_EQ(f.u.rows(), 4);
    ASSERT_EQ(f.v.rows(), 11);
    expect_matrix_near(reconstruct(f), a, 1e-11);
  }
}

TEST(Svd, TallVeryThin) {
  const Matrix a = random_matrix(500, 3, 36);
  const SvdResult f = svd(a);
  expect_matrix_near(reconstruct(f), a, 1e-11);
  EXPECT_LT(ortho_defect(f.u), 1e-12);
}

TEST(Svd, SingleElement) {
  const Matrix a{{-3.0}};
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 3.0, 1e-15);
  EXPECT_NEAR(f.u(0, 0) * f.v(0, 0) * f.s[0], -3.0, 1e-14);
}

TEST(Svd, ZeroMatrix) {
  const Matrix a(5, 3, 0.0);
  const SvdResult f = svd(a);
  for (Index i = 0; i < f.s.size(); ++i) EXPECT_DOUBLE_EQ(f.s[i], 0.0);
}

TEST(Svd, EmptyThrows) {
  EXPECT_THROW(svd(Matrix{}), Error);
}

TEST(Svd, SingularValuesHelper) {
  const Matrix a = random_matrix(8, 5, 37);
  const Vector s = singular_values(a);
  const SvdResult f = svd(a);
  expect_vector_near(s, f.s, 1e-12);
}

// ------------------------------------------------------------------ pinv

TEST(Pinv, MoorePenroseAxioms) {
  const Matrix a = random_matrix(8, 5, 38);
  const Matrix ap = pinv(a);
  ASSERT_EQ(ap.rows(), 5);
  ASSERT_EQ(ap.cols(), 8);
  // 1) A A⁺ A = A
  expect_matrix_near(naive_matmul(naive_matmul(a, ap), a), a, 1e-10);
  // 2) A⁺ A A⁺ = A⁺
  expect_matrix_near(naive_matmul(naive_matmul(ap, a), ap), ap, 1e-10);
  // 3) (A A⁺)ᵀ = A A⁺
  const Matrix aap = naive_matmul(a, ap);
  expect_matrix_near(aap.transposed(), aap, 1e-10);
  // 4) (A⁺ A)ᵀ = A⁺ A
  const Matrix apa = naive_matmul(ap, a);
  expect_matrix_near(apa.transposed(), apa, 1e-10);
}

TEST(Pinv, InvertsNonsingularSquare) {
  const Matrix a = random_matrix(6, 6, 39);
  const Matrix ap = pinv(a);
  expect_matrix_near(naive_matmul(a, ap), Matrix::identity(6), 1e-9);
}

TEST(Pinv, RankDeficientHandled) {
  Rng rng(40);
  const Vector spectrum = workloads::geometric_spectrum(2, 3.0, 0.5);
  const Matrix a = workloads::synthetic_low_rank(6, 6, spectrum, rng);
  const Matrix ap = pinv(a);
  // A A⁺ A = A still holds on the rank-2 matrix.
  expect_matrix_near(naive_matmul(naive_matmul(a, ap), a), a, 1e-10);
}

// ------------------------------------------------------------- sign fixing

TEST(FixSvdSigns, LargestEntryPositive) {
  const Matrix a = random_matrix(10, 4, 41);
  SvdResult f = svd(a);
  const Matrix before = reconstruct(f);
  fix_svd_signs(f.u, f.v);
  for (Index j = 0; j < f.u.cols(); ++j) {
    double best = 0.0;
    for (Index i = 0; i < f.u.rows(); ++i) {
      if (std::fabs(f.u(i, j)) > std::fabs(best)) best = f.u(i, j);
    }
    EXPECT_GT(best, 0.0) << "column " << j;
  }
  // Reconstruction unchanged by coordinated sign flips.
  expect_matrix_near(reconstruct(f), before, 1e-13);
}

TEST(FixModeSigns, Idempotent) {
  Matrix u = random_matrix(9, 3, 42);
  fix_mode_signs(u);
  Matrix again = u;
  fix_mode_signs(again);
  expect_matrix_near(again, u, 0.0);
}

// ----------------------------------------------- invariant sweep (TEST_P)

using SvdCase = std::tuple<int, int, int, std::uint64_t>;  // m, n, method, seed

class SvdSweep : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdSweep, Invariants) {
  const auto [m, n, method_idx, seed] = GetParam();
  const auto method = static_cast<SvdMethod>(method_idx);
  if (method == SvdMethod::MethodOfSnapshots && m < n) {
    GTEST_SKIP() << "MOS assumes m >= n";
  }
  const Matrix a = random_matrix(m, n, 700 + seed);
  SvdOptions opts;
  opts.method = method;
  const SvdResult f = svd(a, opts);

  // σ descending, non-negative.
  for (Index i = 0; i < f.s.size(); ++i) {
    EXPECT_GE(f.s[i], 0.0);
    if (i > 0) {
      EXPECT_GE(f.s[i - 1], f.s[i] - 1e-12);
    }
  }
  // Orthonormal factors (MOS loses precision near machine-eps spectra
  // but Gaussian matrices are well conditioned).
  EXPECT_LT(ortho_defect(f.u), 1e-9);
  EXPECT_LT(ortho_defect(f.v), 1e-9);
  // Reconstruction.
  const double scale = std::max(1.0, a.norm_max());
  expect_matrix_near(reconstruct(f), a, 1e-9 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdSweep,
    ::testing::Combine(::testing::Values(1, 2, 6, 19, 48),
                       ::testing::Values(1, 2, 6, 19),
                       ::testing::Values(0, 1, 2),  // Jacobi, MOS, GK
                       ::testing::Values(0u, 1u)));

}  // namespace
}  // namespace parsvd
