// Weighted-inner-product streaming SVD tests: √w-space orthonormality,
// physical-space W-orthonormality, recovery of planted W-orthonormal
// modes, serial/parallel agreement, ERA5 area weights.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "core/parallel_streaming.hpp"
#include "core/streaming.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/era5_synthetic.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using testing::ortho_defect;
namespace wl = workloads;

/// Max |ΦᵀWΦ - I| — orthonormality under the weighted inner product.
double weighted_ortho_defect(const Matrix& phi, const Vector& w) {
  double worst = 0.0;
  for (Index i = 0; i < phi.cols(); ++i) {
    for (Index j = 0; j < phi.cols(); ++j) {
      double s = 0.0;
      for (Index r = 0; r < phi.rows(); ++r) s += phi(r, i) * w[r] * phi(r, j);
      const double target = (i == j) ? 1.0 : 0.0;
      worst = std::max(worst, std::fabs(s - target));
    }
  }
  return worst;
}

Vector test_weights(Index m, std::uint64_t seed) {
  Rng rng(seed);
  Vector w(m);
  for (Index i = 0; i < m; ++i) w[i] = rng.uniform(0.2, 3.0);
  return w;
}

/// Data with known W-orthonormal modes: A = Φ diag(a) Gᵀ where
/// ΦᵀWΦ = I — built by unscaling an orthonormal basis of √w space.
struct PlantedWeighted {
  Matrix data;
  Matrix phi;  // W-orthonormal planted modes
  Vector w;
};

PlantedWeighted make_planted(Index m, Index n, Index k, std::uint64_t seed) {
  PlantedWeighted out;
  out.w = test_weights(m, seed);
  Rng rng(seed + 1);
  const Matrix q = wl::random_orthonormal(m, k, rng);  // orthonormal in √w space
  out.phi = Matrix(m, k);
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < m; ++i) {
      out.phi(i, j) = q(i, j) / std::sqrt(out.w[i]);
    }
  }
  // Amplitudes: orthogonal time series with descending energies.
  Matrix amps = wl::random_orthonormal(n, k, rng);
  for (Index j = 0; j < k; ++j) {
    scal(10.0 * std::pow(0.5, static_cast<double>(j)) *
             std::sqrt(static_cast<double>(n)),
         amps.col_span(j));
  }
  out.data = matmul(out.phi, amps, Trans::No, Trans::Yes);
  return out;
}

TEST(WeightedStreaming, UnweightedPhysicalEqualsModes) {
  StreamingOptions opts;
  opts.num_modes = 3;
  SerialStreamingSVD s(opts);
  s.initialize(testing::random_matrix(20, 10, 1));
  testing::expect_matrix_near(s.physical_modes(), s.modes(), 0.0);
}

TEST(WeightedStreaming, ModesOrthonormalInScaledSpace) {
  const Index m = 60;
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.row_weights = test_weights(m, 2);
  SerialStreamingSVD s(opts);
  s.initialize(testing::random_matrix(m, 20, 3));
  s.incorporate_data(testing::random_matrix(m, 20, 4));
  EXPECT_LT(ortho_defect(s.modes()), 1e-10);
}

TEST(WeightedStreaming, PhysicalModesWOrthonormal) {
  const Index m = 60;
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.row_weights = test_weights(m, 5);
  SerialStreamingSVD s(opts);
  s.initialize(testing::random_matrix(m, 25, 6));
  EXPECT_LT(weighted_ortho_defect(s.physical_modes(), opts.row_weights),
            1e-10);
}

TEST(WeightedStreaming, RecoversPlantedWOrthonormalModes) {
  const PlantedWeighted p = make_planted(80, 40, 3, 7);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;
  opts.row_weights = p.w;
  SerialStreamingSVD s(opts);
  wl::MatrixBatchSource src(p.data);
  s.initialize(src.next_batch(10));
  while (!src.exhausted()) s.incorporate_data(src.next_batch(10));

  const Matrix physical = s.physical_modes();
  // Weighted cosine between recovered and planted mode.
  for (Index j = 0; j < 3; ++j) {
    double num = 0.0;
    for (Index i = 0; i < 80; ++i) {
      num += physical(i, j) * p.w[i] * p.phi(i, j);
    }
    EXPECT_GT(std::fabs(num), 0.9999) << "mode " << j;
  }
}

TEST(WeightedStreaming, WeightsChangeTheAnswer) {
  // A mode concentrated on heavily-weighted rows must rank higher under
  // weighting. Row 0 carries amplitude 5, row 1 carries amplitude 6; a
  // weight of 4 on row 0 flips the energy ordering (5²·4 > 6²).
  const Index m = 30, n = 20;
  Matrix data(m, n, 0.0);
  Rng rng(8);
  for (Index j = 0; j < n; ++j) {
    data(0, j) = 5.0 * ((j % 2 == 0) ? 1.0 : -1.0);
    data(1, j) = 6.0 * ((j % 3 == 0) ? 1.0 : -1.0);
  }
  StreamingOptions unweighted;
  unweighted.num_modes = 1;
  unweighted.forget_factor = 1.0;
  StreamingOptions weighted = unweighted;
  weighted.row_weights = Vector(m, 1.0);
  weighted.row_weights[0] = 4.0;

  SerialStreamingSVD su(unweighted), sw(weighted);
  su.initialize(data);
  sw.initialize(data);
  // Unweighted: leading mode concentrates on row 1; weighted: row 0.
  EXPECT_GT(std::fabs(su.modes()(1, 0)), 0.9);
  EXPECT_GT(std::fabs(sw.modes()(0, 0)), 0.9);
}

TEST(WeightedStreaming, WrongWeightLengthThrows) {
  StreamingOptions opts;
  opts.num_modes = 2;
  opts.row_weights = Vector(5, 1.0);
  SerialStreamingSVD s(opts);
  EXPECT_THROW(s.initialize(Matrix(8, 4, 1.0)), Error);
}

TEST(WeightedStreaming, NonPositiveWeightRejected) {
  StreamingOptions opts;
  opts.num_modes = 2;
  opts.row_weights = Vector(4, 1.0);
  opts.row_weights[2] = 0.0;
  EXPECT_THROW(SerialStreamingSVD{opts}, Error);
}

TEST(WeightedStreaming, ParallelMatchesSerial) {
  const PlantedWeighted p = make_planted(120, 30, 3, 9);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;

  StreamingOptions serial_opts = opts;
  serial_opts.row_weights = p.w;
  SerialStreamingSVD serial(serial_opts);
  wl::MatrixBatchSource src(p.data);
  serial.initialize(src.next_batch(15));
  while (!src.exhausted()) serial.incorporate_data(src.next_batch(15));
  const Matrix serial_phys = serial.physical_modes();

  Matrix par_phys;
  Vector par_s;
  std::mutex mu;
  pmpi::run(3, [&](Communicator& comm) {
    const auto part = wl::partition_rows(120, 3, comm.rank());
    StreamingOptions local_opts = opts;
    local_opts.row_weights = p.w.segment(part.offset, part.count);
    ParallelStreamingSVD psvd(comm, local_opts);
    wl::MatrixBatchSource local_src(p.data, part.offset, part.count);
    psvd.initialize(local_src.next_batch(15));
    while (!local_src.exhausted()) {
      psvd.incorporate_data(local_src.next_batch(15));
    }
    Matrix phys = psvd.physical_modes();  // collective
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      par_phys = std::move(phys);
      par_s = psvd.singular_values();
    }
  });

  testing::expect_vector_near(par_s, serial.singular_values(),
                              1e-6 * serial.singular_values()[0]);
  const Vector errs = post::mode_errors_l2(par_phys, serial_phys);
  for (Index j = 0; j < errs.size(); ++j) {
    EXPECT_LT(errs[j], 1e-4) << "mode " << j;
  }
  EXPECT_LT(weighted_ortho_defect(par_phys, p.w), 1e-8);
}

TEST(Era5AreaWeights, CosLatitudeShapeAndNormalization) {
  wl::Era5Config cfg;
  cfg.n_lon = 36;
  cfg.n_lat = 18;
  cfg.snapshots = 10;
  wl::Era5Synthetic era(cfg);
  const Vector w = era.area_weights();
  ASSERT_EQ(w.size(), era.grid_size());
  // Mean 1.
  EXPECT_NEAR(w.sum() / static_cast<double>(w.size()), 1.0, 1e-12);
  // Equator-adjacent cells heavier than polar cells.
  EXPECT_GT(w[era.grid_index(9, 0)], w[era.grid_index(0, 0)]);
  EXPECT_GT(w[era.grid_index(9, 0)], w[era.grid_index(17, 0)]);
  // Zonally constant.
  EXPECT_DOUBLE_EQ(w[era.grid_index(5, 0)], w[era.grid_index(5, 20)]);
  for (Index i = 0; i < w.size(); ++i) EXPECT_GT(w[i], 0.0);
}

TEST(Era5AreaWeights, WeightedPipelineRuns) {
  wl::Era5Config cfg;
  cfg.n_lon = 24;
  cfg.n_lat = 12;
  cfg.snapshots = 120;
  cfg.n_modes = 2;
  wl::Era5Synthetic era(cfg);

  StreamingOptions opts;
  opts.num_modes = 2;
  opts.forget_factor = 1.0;
  opts.row_weights = era.area_weights();
  SerialStreamingSVD s(opts);
  const Matrix data =
      era.snapshot_block(0, era.grid_size(), 0, cfg.snapshots, true);
  s.initialize(data);
  EXPECT_LT(weighted_ortho_defect(s.physical_modes(), opts.row_weights),
            1e-9);
}

}  // namespace
}  // namespace parsvd
