// Lint fixture — NOT compiled. The naked waits inside the *_ft
// collective must each produce a [ft-wait] finding: the peer may be
// dead, so every wait in a fault-tolerant collective must sit inside a
// try/catch (RankDeadError) block (death-bounded, dead-resolves into
// exclusion) or carry the root-must-survive marker. A survivor parked
// on a rank that died before posting hangs forever — exactly the
// orphaned-wait class schedule_check --faults proves the shipped
// protocols free of.
#include "pmpi/comm.hpp"
#include "pmpi/tags.hpp"

namespace parsvd {

std::vector<std::vector<std::byte>> broken_gather_ft(
    pmpi::Communicator& comm) {
  std::vector<std::vector<std::byte>> out;
  for (int src = 1; src < comm.size(); ++src) {
    // Naked wait on a possibly-dead contributor — the defect.
    out.push_back(comm.wait_scoped(src, pmpi::tags::kFtGather));
  }
  // Death-bounded sibling: this one is correct and must NOT be flagged.
  try {
    out.push_back(comm.wait_scoped(0, pmpi::tags::kFtGather));
  } catch (const pmpi::RankDeadError&) {
  }
  // Naked recv of the recovery slice from a non-root peer — the defect.
  Matrix slice = comm.recv_matrix(comm.size() - 1, pmpi::tags::kFtBcast);
  (void)slice;
  return out;
}

}  // namespace parsvd
