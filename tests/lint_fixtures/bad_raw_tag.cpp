// Lint fixture — NOT compiled. Feeds parsvd_lint.py's negative test:
// the raw integer tag literals below must each produce a [raw-tag]
// finding (wire tags must come from src/pmpi/tags.hpp).
#include "pmpi/comm.hpp"

void fixture(parsvd::pmpi::Communicator& comm, const parsvd::Matrix& m) {
  comm.send_matrix(m, 1, 42);         // raw tag literal
  (void)comm.recv_matrix(0, 42);      // raw tag literal
  (void)comm.irecv(0, 0x2a);          // raw tag literal, hex
}
