// Lint fixture — NOT compiled. The blocking receive inside the
// parsvd-pipelined region must produce a [pipelined] finding.
#include "pmpi/comm.hpp"
#include "pmpi/tags.hpp"

void fixture(parsvd::pmpi::Communicator& comm) {
  // parsvd-pipelined begin (receives must be pre-posted, not blocking)
  (void)comm.recv_matrix(0, parsvd::pmpi::tags::kUserBase);
  // parsvd-pipelined end
}
