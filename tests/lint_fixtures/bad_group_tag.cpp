// Seeded-bad fixture for the `group-tag` rule (never compiled, only
// linted): hand-rolled group tag-namespace arithmetic outside src/pmpi.
// Wire tags on group communicators are scoped by the Communicator
// translation layer; callers composing scoped tags themselves can land
// in a sibling group's band or double-scope an already-scoped tag.
#include <vector>

#include "pmpi/comm.hpp"

namespace fixture {

void hand_rolled_group_scope(parsvd::pmpi::Communicator& comm) {
  const std::vector<double> v{1.0};
  // BAD: composing the scoped wire tag by hand instead of passing the
  // group-local tag to a group communicator.
  const int wire = parsvd::pmpi::tags::group_scope(2, 1024);
  comm.send<double>(v, 1, wire);
  // BAD: reproducing the band arithmetic from the raw constants.
  const int band = -(parsvd::pmpi::tags::kGroupScopedBase +
                     3 * parsvd::pmpi::tags::kGroupSpan +
                     parsvd::pmpi::tags::kGroupTagBias);
  comm.send<double>(v, 1, band);
  // BAD: decoding a wire tag in application code.
  const int owner = parsvd::pmpi::tags::scoped_group(wire);
  (void)owner;
}

}  // namespace fixture
