// Seeded-bad fixture for the raw-rng rule: never compiled, only linted.
// Raw std generators and distributions bypass parsvd::Rng's seed-split
// discipline and are not bit-reproducible across standard libraries.
#include <cstdlib>
#include <random>

double bad_draws() {
  std::mt19937_64 gen(42);                        // raw-rng
  std::uniform_real_distribution<double> u(0, 1); // raw-rng
  std::srand(7);                                  // raw-rng
  return u(gen) + static_cast<double>(std::rand());  // raw-rng
}
