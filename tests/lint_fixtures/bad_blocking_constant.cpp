// Lint fixture — NOT compiled. The raw blocking-constant env reads must
// each produce a [blocking] finding: cache-blocking knobs are resolved
// once by the autotune profile (linalg/autotune.cpp); a second read
// outside src/linalg/ can disagree with what the kernels actually use
// and skips sanitization.
#include "support/env.hpp"

long fixture() {
  const long mc = parsvd::env::get_int("PARSVD_GEMM_MC", 96);
  const long kc = parsvd::env::get_int("PARSVD_GEMM_KC", 256);
  const long nc = parsvd::env::get_int("PARSVD_GEMM_NC", 4032);
  const long qb = parsvd::env::get_int("PARSVD_QR_BLOCK", 32);
  return mc + kc + nc + qb;
}
