// Lint fixture — NOT compiled. The wall-clock call must produce a
// [bench-clock] finding: bench JSON must be bit-reproducible.
#include <ctime>

const char* fixture() {
  static char stamp[64];
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%d", std::gmtime(&now));
  return stamp;
}
