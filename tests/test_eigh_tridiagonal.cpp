// Tridiagonal (tred2/tql2) eigensolver tests: invariants, known cases,
// and cross-validation against the independently-implemented Jacobi
// backend — two unrelated algorithms agreeing on random inputs is the
// strongest correctness evidence available without a reference LAPACK.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eigh.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
using testing::expect_vector_near;
using testing::naive_matmul;
using testing::ortho_defect;
using testing::random_symmetric;

EighOptions tri() {
  EighOptions opts;
  opts.method = EighMethod::Tridiagonal;
  return opts;
}

TEST(EighTridiagonal, DiagonalMatrix) {
  const EighResult e = eigh(Matrix::diag(Vector{3, 1, 2}), tri());
  EXPECT_DOUBLE_EQ(e.values[0], 3.0);
  EXPECT_DOUBLE_EQ(e.values[1], 2.0);
  EXPECT_DOUBLE_EQ(e.values[2], 1.0);
}

TEST(EighTridiagonal, Known2x2) {
  const EighResult e = eigh(Matrix{{2, 1}, {1, 2}}, tri());
  EXPECT_NEAR(e.values[0], 3.0, 1e-14);
  EXPECT_NEAR(e.values[1], 1.0, 1e-14);
}

TEST(EighTridiagonal, OneByOne) {
  const EighResult e = eigh(Matrix{{-5.0}}, tri());
  EXPECT_DOUBLE_EQ(e.values[0], -5.0);
}

TEST(EighTridiagonal, AlreadyTridiagonal) {
  // The discrete 1-D Laplacian has eigenvalues 2 - 2cos(kπ/(n+1)).
  const Index n = 12;
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  const EighResult e = eigh(a, tri());
  constexpr double kPi = 3.14159265358979323846;
  for (Index k = 0; k < n; ++k) {
    // Descending order → the k-th value uses mode (n - k).
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(n - k) * kPi /
                             static_cast<double>(n + 1));
    EXPECT_NEAR(e.values[k], expected, 1e-12) << "k = " << k;
  }
}

TEST(EighTridiagonal, VectorsOrthonormal) {
  const EighResult e = eigh(random_symmetric(25, 81), tri());
  EXPECT_LT(ortho_defect(e.vectors), 1e-12);
}

TEST(EighTridiagonal, Reconstruction) {
  const Matrix a = random_symmetric(18, 82);
  const EighResult e = eigh(a, tri());
  const Matrix vd = naive_matmul(e.vectors, Matrix::diag(e.values));
  expect_matrix_near(naive_matmul(vd, e.vectors.transposed()), a, 1e-11);
}

TEST(EighTridiagonal, AgreesWithJacobiOnSpectra) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix a = random_symmetric(20, 900 + seed);
    const EighResult ej = eigh(a);  // Jacobi default
    const EighResult et = eigh(a, tri());
    expect_vector_near(et.values, ej.values, 1e-11, "spectra");
  }
}

TEST(EighTridiagonal, AgreesWithJacobiOnSubspaces) {
  const Matrix a = random_symmetric(15, 83);
  const EighResult ej = eigh(a);
  const EighResult et = eigh(a, tri());
  // Eigenvectors agree up to sign for simple spectra.
  for (Index j = 0; j < 15; ++j) {
    const double c =
        std::fabs(dot(ej.vectors.col_span(j), et.vectors.col_span(j)));
    EXPECT_GT(c, 1.0 - 1e-9) << "pair " << j;
  }
}

TEST(EighTridiagonal, RepeatedEigenvalues) {
  Matrix a = 2.0 * Matrix::identity(4);
  a(0, 0) = 5.0;
  const EighResult e = eigh(a, tri());
  EXPECT_NEAR(e.values[0], 5.0, 1e-13);
  for (Index i = 1; i < 4; ++i) EXPECT_NEAR(e.values[i], 2.0, 1e-13);
  EXPECT_LT(ortho_defect(e.vectors), 1e-12);
}

TEST(EighTridiagonal, NegativeSpectra) {
  Matrix a = random_symmetric(10, 84);
  a -= 100.0 * Matrix::identity(10);
  const EighResult e = eigh(a, tri());
  for (Index i = 0; i < 10; ++i) EXPECT_LT(e.values[i], 0.0);
  const Matrix vd = naive_matmul(e.vectors, Matrix::diag(e.values));
  expect_matrix_near(naive_matmul(vd, e.vectors.transposed()), a, 1e-9);
}

TEST(EighTridiagonal, RejectsNonSquareAndAsymmetric) {
  EXPECT_THROW(eigh(Matrix(3, 4), tri()), Error);
  EXPECT_THROW(eigh(Matrix{{1, 2}, {5, 1}}, tri()), Error);
}

class EighTridiagonalSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EighTridiagonalSweep, CrossValidatesJacobi) {
  const auto [n, seed] = GetParam();
  const Matrix a = random_symmetric(n, 1000 + seed);
  const EighResult ej = eigh(a);
  const EighResult et = eigh(a, tri());
  expect_vector_near(et.values, ej.values,
                     1e-10 * std::max(1.0, a.norm_fro()));
  EXPECT_LT(ortho_defect(et.vectors), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EighTridiagonalSweep,
    ::testing::Combine(::testing::Values(2, 3, 8, 17, 40, 64),
                       ::testing::Values(0u, 1u, 2u)));

}  // namespace
}  // namespace parsvd
