// End-to-end integration tests spanning every module: workload → on-disk
// store → partitioned parallel streaming → post-processing, mirroring the
// paper's full ERA5 pipeline (§4.3, Fig 2) and the Burgers validation at
// paper-like (scaled-down) parameters.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>

#include "core/factory.hpp"
#include "core/parallel_streaming.hpp"
#include "io/snapshot_store.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/era5_synthetic.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
namespace wl = workloads;

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parsvd_pipe_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(PipelineTest, Era5StoreToModesRecoversPlantedStructures) {
  // 1. Generate the synthetic reanalysis and write it through the
  //    chunked store (the "simulation produces a file" stage).
  wl::Era5Config cfg;
  cfg.n_lon = 36;
  cfg.n_lat = 18;
  cfg.snapshots = 240;
  cfg.n_modes = 3;
  cfg.noise_std = 0.01;
  wl::Era5Synthetic era(cfg);
  const std::string store_path = (dir_ / "era5.snap").string();
  {
    io::SnapshotWriter writer(store_path, era.grid_size(), 32);
    Index written = 0;
    while (written < cfg.snapshots) {
      const Index take = std::min<Index>(48, cfg.snapshots - written);
      writer.append_batch(era.snapshot_block(0, era.grid_size(), written,
                                             take, /*subtract_mean=*/true));
      written += take;
    }
    writer.close();
  }

  // 2. Four ranks stream their row-blocks out of the shared file into
  //    the distributed streaming SVD (parallel IO + parallel compute).
  const int ranks = 4;
  Matrix modes;
  Vector sv;
  std::mutex mu;
  pmpi::run(ranks, [&](Communicator& comm) {
    const auto part = wl::partition_rows(era.grid_size(), ranks, comm.rank());
    wl::StoreBatchSource source(store_path, part.offset, part.count);
    StreamingOptions opts;
    opts.num_modes = 3;
    opts.forget_factor = 1.0;
    ParallelStreamingSVD svd_obj(comm, opts);
    svd_obj.initialize(source.next_batch(60));
    while (!source.exhausted()) {
      svd_obj.incorporate_data(source.next_batch(60));
    }
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      modes = svd_obj.modes();
      sv = svd_obj.singular_values();
    }
  });

  // 3. The recovered modes must match the planted coherent structures.
  ASSERT_EQ(modes.cols(), 3);
  for (Index m = 0; m < 3; ++m) {
    EXPECT_GT(post::mode_cosine(modes, m, era.true_modes(), m), 0.98)
        << "mode " << m;
  }
  // Singular values reflect the planted amplitude ordering.
  for (Index m = 1; m < 3; ++m) EXPECT_GT(sv[m - 1], sv[m]);

  // 4. Post-processing artifacts render without error.
  EXPECT_NO_THROW(post::write_mode_pgm((dir_ / "mode0.pgm").string(),
                                       modes.col(0), cfg.n_lat, cfg.n_lon));
  const std::string art = post::ascii_heatmap(modes.col(0), cfg.n_lat,
                                              cfg.n_lon, 12, 36);
  EXPECT_FALSE(art.empty());
}

TEST_F(PipelineTest, BurgersPaperScaledValidation) {
  // Paper parameters scaled down 16x in space, 8x in snapshots (same
  // physics: Re = 1000, L = 1, t_f = 2).
  wl::BurgersConfig cfg;
  cfg.grid_points = 1024;
  cfg.snapshots = 100;
  wl::Burgers burgers(cfg);

  StreamingOptions opts;
  opts.num_modes = 10;
  opts.forget_factor = 0.95;

  // Serial reference.
  SerialStreamingSVD serial(opts);
  {
    wl::MatrixBatchSource src(burgers.snapshot_matrix());
    serial.initialize(src.next_batch(25));
    while (!src.exhausted()) serial.incorporate_data(src.next_batch(25));
  }

  // 4-rank parallel run generating blocks on the fly (no global matrix).
  Matrix par_modes;
  std::mutex mu;
  pmpi::run(4, [&](Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, 4, comm.rank());
    ParallelStreamingSVD svd_obj(comm, opts);
    Index done = 0;
    while (done < cfg.snapshots) {
      const Index take = std::min<Index>(25, cfg.snapshots - done);
      const Matrix batch =
          burgers.snapshot_block(part.offset, part.count, done, take);
      if (done == 0) {
        svd_obj.initialize(batch);
      } else {
        svd_obj.incorporate_data(batch);
      }
      done += take;
    }
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      par_modes = svd_obj.modes();
    }
  });

  // Fig 1(a)/(b) as assertions: first two modes agree to plot accuracy.
  for (Index m = 0; m < 2; ++m) {
    const Vector err = post::pointwise_mode_error(par_modes, serial.modes(), m);
    EXPECT_LT(err.norm_inf(), 5e-3) << "mode " << m;
    EXPECT_GT(post::mode_cosine(par_modes, m, serial.modes(), m), 0.9999)
        << "mode " << m;
  }
}

TEST_F(PipelineTest, FactoryPolymorphismAcrossBothImplementations) {
  // The factory interface runs the same driver code for serial and
  // parallel objects — the paper's design-pattern claim, exercised.
  wl::BurgersConfig cfg;
  cfg.grid_points = 200;
  cfg.snapshots = 40;
  wl::Burgers burgers(cfg);
  const Matrix data = burgers.snapshot_matrix();

  StreamingOptions opts;
  opts.num_modes = 4;

  auto drive = [&](SvdBase& svd_obj, Index row0, Index nrows) {
    wl::MatrixBatchSource src(data, row0, nrows);
    svd_obj.initialize(src.next_batch(10));
    while (!src.exhausted()) svd_obj.incorporate_data(src.next_batch(10));
  };

  auto serial = make_streaming_svd(opts);
  drive(*serial, 0, cfg.grid_points);
  const Vector serial_s = serial->singular_values();

  Vector par_s;
  std::mutex mu;
  pmpi::run(2, [&](Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, 2, comm.rank());
    auto par = make_streaming_svd(opts, comm);
    drive(*par, part.offset, part.count);
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      par_s = par->singular_values();
    }
  });

  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(par_s[i], serial_s[i], 1e-4 * serial_s[0]) << "sigma " << i;
  }
}

TEST_F(PipelineTest, OutOfCoreMemoryStaysBounded) {
  // The streaming path must never materialize the full matrix: feed a
  // 2000 x 160 problem through 10-column batches and verify the result
  // against the batch SVD. (Memory is bounded by construction — this
  // guards the cols() of every intermediate.)
  wl::BurgersConfig cfg;
  cfg.grid_points = 2000;
  cfg.snapshots = 160;
  wl::Burgers burgers(cfg);

  StreamingOptions opts;
  opts.num_modes = 6;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  Index done = 0;
  while (done < cfg.snapshots) {
    const Index take = std::min<Index>(10, cfg.snapshots - done);
    const Matrix batch = burgers.snapshot_block(0, cfg.grid_points, done, take);
    EXPECT_LE(batch.cols(), 10);
    if (done == 0) {
      s.initialize(batch);
    } else {
      s.incorporate_data(batch);
    }
    done += take;
  }
  // K-truncated streaming on a full-rank matrix discards tail energy at
  // each step, so agreement is at the percent level per singular value —
  // the inherent truncation error of Algorithm 1, not a defect.
  // Truncation error grows toward the last retained modes (they border
  // the discarded tail).
  const SvdResult ref = svd(burgers.snapshot_matrix(), {.rank = 6});
  for (Index i = 0; i < 6; ++i) {
    const double rel_tol = (i < 4) ? 2e-2 : 1e-1;
    EXPECT_NEAR(s.singular_values()[i], ref.s[i], rel_tol * ref.s[i]);
  }
}

}  // namespace
}  // namespace parsvd
