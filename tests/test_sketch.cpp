// Sketch-operator tests: FWHT correctness, apply-vs-realize agreement for
// all three kinds, the per-global-row seeding contract (partition- and
// rank-count-invariant realization), the distributed sketch-apply against
// the serial Ωᵀ A, threaded-vs-serial applies, and the Auto policy.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "pmpi/comm.hpp"
#include "sketch/distributed.hpp"
#include "sketch/sketch.hpp"
#include "support/thread_pool.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using sketch::SketchKind;
using testing::expect_matrix_near;

const SketchKind kAllKinds[] = {SketchKind::DenseGaussian,
                                SketchKind::SparseSign, SketchKind::Srht};

TEST(Fwht, MatchesPopcountDefinition) {
  // y[c] = Σ_r x[r]·(−1)^popcount(r & c) on a length-8 vector.
  const Index n = 8;
  std::vector<double> x{1.0, -2.0, 0.5, 3.0, -1.0, 0.25, 4.0, -0.75};
  std::vector<double> y = x;
  sketch::fwht(y.data(), n);
  for (Index c = 0; c < n; ++c) {
    double want = 0.0;
    for (Index r = 0; r < n; ++r) {
      const auto bits = static_cast<std::uint64_t>(r & c);
      const double h = (std::popcount(bits) & 1) != 0 ? -1.0 : 1.0;
      want += x[static_cast<std::size_t>(r)] * h;
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(c)], want, 1e-12) << "c=" << c;
  }
}

TEST(Fwht, SelfInverseUpToN) {
  const Index n = 16;
  Rng rng(21);
  std::vector<double> x(static_cast<std::size_t>(n));
  rng.fill_gaussian(x.data(), x.size());
  std::vector<double> y = x;
  sketch::fwht(y.data(), n);
  sketch::fwht(y.data(), n);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], static_cast<double>(n) * x[i], 1e-10);
  }
}

TEST(Sketch, NextPow2) {
  EXPECT_EQ(sketch::next_pow2(1), 1);
  EXPECT_EQ(sketch::next_pow2(2), 2);
  EXPECT_EQ(sketch::next_pow2(3), 4);
  EXPECT_EQ(sketch::next_pow2(1024), 1024);
  EXPECT_EQ(sketch::next_pow2(1025), 2048);
}

TEST(Sketch, KindStringsRoundTrip) {
  for (SketchKind kind : kAllKinds) {
    EXPECT_EQ(sketch::kind_from_string(sketch::to_string(kind)), kind);
  }
  EXPECT_EQ(sketch::kind_from_string("SRHT"), SketchKind::Srht);
  EXPECT_EQ(sketch::kind_from_string("dense"), SketchKind::DenseGaussian);
  EXPECT_EQ(sketch::kind_from_string("countsketch"), SketchKind::SparseSign);
  EXPECT_EQ(sketch::kind_from_string("auto"), SketchKind::Auto);
  EXPECT_THROW(sketch::kind_from_string("bogus"), ConfigError);
}

TEST(Sketch, MakeSketchRejectsAuto) {
  EXPECT_THROW(sketch::make_sketch(SketchKind::Auto, 8, 4, 1), ConfigError);
}

TEST(Sketch, OperatorSeedSeparatesKindsAndDraws) {
  const std::uint64_t base = 0xfeedULL;
  const std::uint64_t dense =
      sketch::derive_operator_seed(base, SketchKind::DenseGaussian, 0);
  const std::uint64_t sparse =
      sketch::derive_operator_seed(base, SketchKind::SparseSign, 0);
  const std::uint64_t srht =
      sketch::derive_operator_seed(base, SketchKind::Srht, 0);
  EXPECT_NE(dense, sparse);
  EXPECT_NE(dense, srht);
  EXPECT_NE(sparse, srht);
  EXPECT_NE(dense, sketch::derive_operator_seed(base, SketchKind::DenseGaussian, 1));
  // And the derivation is a pure function.
  EXPECT_EQ(dense, sketch::derive_operator_seed(base, SketchKind::DenseGaussian, 0));
}

TEST(Sketch, ApplyRightMatchesRealizedOperator) {
  // Y = A Ω through the fast path must equal the dense realization of Ω
  // pushed through a reference matmul.
  const Index m = 23;
  const Index d = 24;
  const Index s = 10;
  const Matrix a = testing::random_matrix(m, d, 31);
  for (SketchKind kind : kAllKinds) {
    const auto op = sketch::make_sketch(kind, d, s, 0xabcdULL);
    const Matrix omega = op->realize_rows(0, d);
    ASSERT_EQ(omega.rows(), d);
    ASSERT_EQ(omega.cols(), s);
    const Matrix want = testing::naive_matmul(a, omega);
    const Matrix got = op->apply_right(a);
    expect_matrix_near(got, want, 1e-12 * static_cast<double>(d),
                       sketch::to_string(kind));
  }
}

TEST(Sketch, RealizeRowsPartitionInvariant) {
  // The per-global-row derivation makes any blocking of the rows
  // bit-identical to the one-shot realization.
  const Index d = 37;
  const Index s = 9;
  for (SketchKind kind : kAllKinds) {
    const auto op = sketch::make_sketch(kind, d, s, 0x1234ULL);
    const Matrix whole = op->realize_rows(0, d);
    for (Index block : {1, 5, 16}) {
      for (Index r0 = 0; r0 < d; r0 += block) {
        const Index nr = std::min(block, d - r0);
        const Matrix part = op->realize_rows(r0, nr);
        for (Index r = 0; r < nr; ++r) {
          for (Index k = 0; k < s; ++k) {
            EXPECT_EQ(part(r, k), whole(r0 + r, k))
                << sketch::to_string(kind) << " row " << (r0 + r);
          }
        }
      }
    }
  }
}

TEST(Sketch, SparseSignRowStructure) {
  const Index d = 40;
  const Index s = 12;
  sketch::SparseSignSketch op(d, s, 0x77ULL, 4);
  EXPECT_EQ(op.nnz_per_row(), 4);
  const double mag = 1.0 / std::sqrt(4.0);
  const Matrix omega = op.realize_rows(0, d);
  for (Index r = 0; r < d; ++r) {
    Index nonzeros = 0;
    for (Index k = 0; k < s; ++k) {
      if (omega(r, k) != 0.0) {
        ++nonzeros;
        EXPECT_NEAR(std::fabs(omega(r, k)), mag, 1e-15);
      }
    }
    EXPECT_EQ(nonzeros, 4) << "row " << r;
  }
}

TEST(Sketch, SparseSignNnzCappedBySketchDim) {
  sketch::SparseSignSketch op(20, 3, 0x77ULL, 10);
  EXPECT_EQ(op.nnz_per_row(), 3);
}

TEST(Sketch, SrhtStructure) {
  const Index d = 37;  // pads to 64
  const Index s = 11;
  sketch::SrhtSketch op(d, s, 0x99ULL);
  EXPECT_EQ(op.padded_dim(), 64);
  ASSERT_EQ(op.selected().size(), static_cast<std::size_t>(s));
  for (std::size_t t = 0; t < op.selected().size(); ++t) {
    EXPECT_GE(op.selected()[t], 0);
    EXPECT_LT(op.selected()[t], 64);
    if (t > 0) EXPECT_LT(op.selected()[t - 1], op.selected()[t]);
  }
  // Every realized entry is ±1/√s.
  const double mag = 1.0 / std::sqrt(static_cast<double>(s));
  const Matrix omega = op.realize_rows(0, d);
  for (Index r = 0; r < d; ++r) {
    for (Index k = 0; k < s; ++k) {
      EXPECT_NEAR(std::fabs(omega(r, k)), mag, 1e-15);
    }
  }
}

TEST(Sketch, AccumulateLeftMatchesRealizedOperator) {
  // Splitting the rows over several accumulate_left calls must sum to
  // the serial Ωᵀ A — this is the distributed-apply building block.
  const Index d = 30;
  const Index n = 7;
  const Index s = 6;
  const Matrix a = testing::random_matrix(d, n, 41);
  for (SketchKind kind : kAllKinds) {
    const auto op = sketch::make_sketch(kind, d, s, 0x31415ULL);
    const Matrix omega = op->realize_rows(0, d);
    const Matrix want = testing::naive_matmul(omega.transposed(), a);
    Matrix b(s, n);
    const Index split[] = {0, 11, 17, 30};
    for (int i = 0; i + 1 < 4; ++i) {
      const Index r0 = split[i];
      const Index nr = split[i + 1] - r0;
      const Matrix block = a.block(r0, 0, nr, n);
      op->accumulate_left(block, r0, b);
    }
    expect_matrix_near(b, want, 1e-12 * static_cast<double>(d),
                       sketch::to_string(kind));
  }
}

TEST(Sketch, CountersRecordApplies) {
  const Matrix a = testing::random_matrix(8, 16, 51);
  const auto op = sketch::make_sketch(SketchKind::SparseSign, 16, 4, 0x5ULL);
  obs::Counter& applies =
      obs::Registry::global().counter("sketch.sparse_sign.applies");
  obs::Counter& flops =
      obs::Registry::global().counter("sketch.sparse_sign.flops");
  const std::uint64_t applies0 = applies.value();
  const std::uint64_t flops0 = flops.value();
  (void)op->apply_right(a);
  EXPECT_EQ(applies.value(), applies0 + 1);
  EXPECT_GT(flops.value(), flops0);
}

TEST(Sketch, ShapeValidation) {
  const auto op = sketch::make_sketch(SketchKind::DenseGaussian, 16, 4, 1);
  const Matrix wrong = testing::random_matrix(8, 15, 61);
  EXPECT_THROW(op->apply_right(wrong), Error);
  Matrix b(4, 3);
  const Matrix tall = testing::random_matrix(17, 3, 62);
  EXPECT_THROW(op->accumulate_left(tall, 0, b), Error);
  const Matrix ok = testing::random_matrix(8, 3, 63);
  EXPECT_THROW(op->accumulate_left(ok, 12, b), Error);  // 12 + 8 > 16
}

TEST(Sketch, ThreadedApplyMatchesSerial) {
  // Sizes above the fan-out threshold with a forced 4-worker pool; the
  // panel scatter must agree with the realized-operator reference.
  const Index m = 320;
  const Index d = 128;
  const Index s = 16;
  const Matrix a = testing::random_matrix(m, d, 71);
  ThreadPool::set_global_threads(4);
  for (SketchKind kind : {SketchKind::SparseSign, SketchKind::Srht}) {
    const auto op = sketch::make_sketch(kind, d, s, 0xbeefULL);
    const Matrix got = op->apply_right(a);
    const Matrix want = matmul(a, op->realize_rows(0, d));
    expect_matrix_near(got, want, 1e-11 * static_cast<double>(d),
                       sketch::to_string(kind));
  }
  ThreadPool::set_global_threads(0);
}

TEST(Sketch, AutoResolvesConcreteKindsUnchanged) {
  for (SketchKind kind : kAllKinds) {
    EXPECT_EQ(sketch::resolve_auto(kind, 1000, 1000, 20), kind);
  }
}

TEST(Sketch, AutoKeepsDenseForWideEmbeddings) {
  // sketch_dim within a factor 2 of dim: structured operators cannot win.
  EXPECT_EQ(sketch::resolve_auto(SketchKind::Auto, 100, 24, 16),
            SketchKind::DenseGaussian);
  EXPECT_EQ(sketch::resolve_auto(SketchKind::Auto, 100, 8, 8),
            SketchKind::DenseGaussian);
}

TEST(Sketch, AutoPicksStructuredKindsForLargeShapes) {
  // Power-of-two dim: the log-factor butterfly beats the ζ-sparse
  // scatter; a badly padded dim flips the choice to sparse-sign.
  EXPECT_EQ(sketch::resolve_auto(SketchKind::Auto, 4096, 2048, 64),
            SketchKind::Srht);
  EXPECT_EQ(sketch::resolve_auto(SketchKind::Auto, 4096, 1040, 64),
            SketchKind::SparseSign);
}

// ------------------------------------------------ distributed contract

TEST(SketchDistributed, RealizationPinnedAcrossRankCounts) {
  // The determinism pin: the BYTES of each rank's realized slice must
  // equal the serial operator's rows for P in {1, 2, 4} — exact double
  // equality, not a tolerance.
  const Index m_global = 48;
  const Index s = 8;
  for (SketchKind kind : kAllKinds) {
    const auto serial = sketch::make_sketch(kind, m_global, s, 0xc0ffeeULL);
    const Matrix whole = serial->realize_rows(0, m_global);
    for (int p : {1, 2, 4}) {
      pmpi::run(p, [&](pmpi::Communicator& comm) {
        const Index rows = m_global / comm.size();
        const Index off = rows * comm.rank();
        const auto local =
            sketch::make_sketch(kind, m_global, s, 0xc0ffeeULL);
        const Matrix slice = local->realize_rows(off, rows);
        for (Index r = 0; r < rows; ++r) {
          for (Index k = 0; k < s; ++k) {
            EXPECT_EQ(slice(r, k), whole(off + r, k))
                << sketch::to_string(kind) << " P=" << p << " rank "
                << comm.rank();
          }
        }
      });
    }
  }
}

TEST(SketchDistributed, ApplyMatchesSerialSketch) {
  // B = Ωᵀ A assembled from per-rank partial sketches + allreduce must
  // match the serial product for every kind and rank count.
  const Index m_global = 64;
  const Index n = 9;
  const Index s = 7;
  const Matrix a = testing::random_matrix(m_global, n, 81);
  for (SketchKind kind : kAllKinds) {
    const auto serial = sketch::make_sketch(kind, m_global, s, 0xabcULL);
    const Matrix want =
        testing::naive_matmul(serial->realize_rows(0, m_global).transposed(), a);
    for (int p : {1, 2, 4}) {
      pmpi::run(p, [&](pmpi::Communicator& comm) {
        const Index rows = m_global / comm.size();
        const Index off = rows * comm.rank();
        const auto local = sketch::make_sketch(kind, m_global, s, 0xabcULL);
        const Matrix a_local = a.block(off, 0, rows, n);
        const Matrix b =
            sketch::distributed_sketch_apply(comm, *local, a_local, off);
        ASSERT_EQ(b.rows(), s);
        ASSERT_EQ(b.cols(), n);
        // Reduce order differs across P: tolerance, not bit equality.
        expect_matrix_near(b, want, 1e-11 * static_cast<double>(m_global),
                           sketch::to_string(kind));
      });
    }
  }
}

}  // namespace
}  // namespace parsvd
