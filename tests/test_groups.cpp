// Communicator groups (Communicator::split / subgroup): dense group
// numbering, tag-scope isolation between siblings and the world
// communicator, group-scoped collectives and barriers, communicator-
// scoped death reporting, and the acceptance scenario — two concurrent
// solver jobs on disjoint subgroups of one Context, bit-identical to
// solo runs including under a seeded rank kill in the sibling group.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/parallel_streaming.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"
#include "pmpi/fault.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using pmpi::Context;
using pmpi::FaultPlan;

void expect_bits_equal(const Matrix& got, const Matrix& want,
                       const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.size()) * sizeof(double)),
            0)
      << what << ": matrices differ bitwise";
}

// ------------------------------------------------------ split / subgroup

TEST(Groups, SplitByParityOrderedByKey) {
  // color = rank parity; key = -rank, so each group's dense numbering is
  // DESCENDING parent rank — split must honour (key, parent rank) order,
  // not member order.
  pmpi::run(6, [](Communicator& comm) {
    std::optional<Communicator> sub = comm.split(comm.rank() % 2, -comm.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 3);
    const std::vector<int> want = comm.rank() % 2 == 0
                                      ? std::vector<int>{4, 2, 0}
                                      : std::vector<int>{5, 3, 1};
    ASSERT_NE(sub->group(), nullptr);
    EXPECT_EQ(sub->group()->members(), want);
    EXPECT_EQ(sub->world_rank(), comm.rank());
    // This rank's group rank is its position in the ordered member list.
    for (int gr = 0; gr < 3; ++gr) {
      if (want[static_cast<std::size_t>(gr)] == comm.rank()) {
        EXPECT_EQ(sub->rank(), gr);
      }
    }
    // Ascending-color minting: even group is id 1, odd group id 2.
    EXPECT_EQ(sub->group()->id(), 1 + comm.rank() % 2);
  });
}

TEST(Groups, SplitNegativeColorOptsOut) {
  pmpi::run(4, [](Communicator& comm) {
    std::optional<Communicator> sub =
        comm.split(comm.rank() == 3 ? -1 : 0);
    if (comm.rank() == 3) {
      EXPECT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 3);
      EXPECT_EQ(sub->rank(), comm.rank());
    }
  });
}

TEST(Groups, SubgroupIsLocalAndOrdered) {
  // subgroup() never communicates; the list order defines group ranks.
  pmpi::run(4, [](Communicator& comm) {
    const std::array<int, 2> members{3, 1};
    std::optional<Communicator> sub = comm.subgroup(members);
    if (comm.rank() == 3 || comm.rank() == 1) {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 2);
      EXPECT_EQ(sub->rank(), comm.rank() == 3 ? 0 : 1);
      EXPECT_EQ(sub->world_rank(), comm.rank());
      // Group rank 0 (world 3) -> group rank 1 (world 1).
      if (sub->rank() == 0) {
        const std::vector<double> v{2.5, -1.0};
        sub->send<double>(v, 1, pmpi::tags::kUserBase);
      } else {
        const std::vector<double> got =
            sub->recv<double>(0, pmpi::tags::kUserBase);
        EXPECT_EQ(got, (std::vector<double>{2.5, -1.0}));
      }
    } else {
      EXPECT_FALSE(sub.has_value());
    }
  });
}

TEST(Groups, SplitOfGroupNestsTranslation) {
  // Splitting a group communicator: member lists are world ranks even
  // when the parent is itself a group (wr() composes).
  pmpi::run(8, [](Communicator& comm) {
    std::optional<Communicator> half = comm.split(comm.rank() / 4);
    ASSERT_TRUE(half.has_value());
    // Split each half by parity of its GROUP rank.
    std::optional<Communicator> quarter = half->split(half->rank() % 2);
    ASSERT_TRUE(quarter.has_value());
    EXPECT_EQ(quarter->size(), 2);
    EXPECT_EQ(quarter->world_rank(), comm.rank());
    // Even group ranks of the upper half are world ranks {4, 6}.
    if (comm.rank() >= 4 && comm.rank() % 2 == 0) {
      EXPECT_EQ(quarter->group()->members(), (std::vector<int>{4, 6}));
    }
    // Exchange inside the nested group still routes correctly.
    double v = quarter->rank() == 0 ? 10.0 + comm.rank() : 0.0;
    quarter->bcast_double(v, 0);
    const int gr0_world = quarter->group()->members()[0];
    EXPECT_EQ(v, 10.0 + gr0_world);
  });
}

// ------------------------------------------------------ tag-scope hygiene

TEST(Groups, SameTagIsolatedAcrossWorldAndSiblings) {
  // Three streams on the SAME user tag: world 0->1, group{0,1} 0->1 and
  // group{2,3} 0->1, world 2->3. Receivers consume the group stream
  // before the world stream while senders post world first — only the
  // scoped tag namespace keeps the channels apart.
  constexpr int kTag = pmpi::tags::kUserBase + 5;
  pmpi::run(4, [](Communicator& comm) {
    std::optional<Communicator> sub = comm.split(comm.rank() / 2);
    ASSERT_TRUE(sub.has_value());
    const double world_v = 1.0 + comm.rank();
    const double group_v = 100.0 + comm.rank();
    if (comm.rank() % 2 == 0) {
      // World first, then the group stream, same tag, same peer thread.
      comm.send<double>(std::vector<double>{world_v}, comm.rank() + 1, kTag);
      sub->send<double>(std::vector<double>{group_v}, 1, kTag);
    } else {
      const std::vector<double> g = sub->recv<double>(0, kTag);
      const std::vector<double> w = comm.recv<double>(comm.rank() - 1, kTag);
      ASSERT_EQ(g.size(), 1u);
      ASSERT_EQ(w.size(), 1u);
      EXPECT_EQ(g[0], 100.0 + comm.rank() - 1);
      EXPECT_EQ(w[0], 1.0 + comm.rank() - 1);
    }
  });
}

TEST(Groups, GroupUserTagLimitEnforced) {
  pmpi::run(2, [](Communicator& comm) {
    std::optional<Communicator> sub = comm.split(0);
    ASSERT_TRUE(sub.has_value());
    const std::vector<double> v{1.0};
    // World communicators accept any non-negative tag; group ones must
    // reject tags the finite scoped band cannot hold.
    EXPECT_THROW(sub->send<double>(v, 0, pmpi::tags::kGroupUserLimit),
                 Error);
    if (comm.rank() == 0) {
      sub->send<double>(v, 1, pmpi::tags::kGroupUserLimit - 1);
    } else {
      EXPECT_EQ(sub->recv<double>(0, pmpi::tags::kGroupUserLimit - 1), v);
    }
  });
}

// ------------------------------------------------- collectives / barrier

TEST(Groups, ConcurrentSiblingCollectives) {
  // Both halves run the full collective menu concurrently; results are
  // group-local throughout.
  pmpi::run(8, [](Communicator& comm) {
    const int color = comm.rank() / 4;
    std::optional<Communicator> sub = comm.split(color);
    ASSERT_TRUE(sub.has_value());
    const int p = sub->size();

    std::vector<double> b{color == 0 ? 7.0 : -3.0};
    sub->bcast(b, 0);
    EXPECT_EQ(b[0], color == 0 ? 7.0 : -3.0);

    std::vector<double> acc{1.0 + sub->rank()};
    sub->allreduce(acc, pmpi::Op::Sum);
    EXPECT_EQ(acc[0], 1.0 + 2.0 + 3.0 + 4.0);

    const std::vector<double> mine(
        static_cast<std::size_t>(sub->rank() + 1),
        static_cast<double>(100 * color + sub->rank()));
    const std::vector<double> all = sub->gatherv<double>(mine, 0);
    if (sub->is_root()) {
      std::size_t at = 0;
      for (int r = 0; r < p; ++r) {
        for (int i = 0; i <= r; ++i) {
          EXPECT_EQ(all[at++], 100 * color + r);
        }
      }
    } else {
      EXPECT_TRUE(all.empty());
    }

    sub->barrier();
    const std::vector<Index> rows = sub->allgather_index(10 + sub->rank());
    EXPECT_EQ(rows, (std::vector<Index>{10, 11, 12, 13}));
  });
}

TEST(Groups, GroupBarrierSingletonAndRepeated) {
  pmpi::run(3, [](Communicator& comm) {
    std::optional<Communicator> solo =
        comm.subgroup(std::array<int, 1>{comm.rank()});
    ASSERT_TRUE(solo.has_value());
    solo->barrier();  // p == 1 path must not touch the world barrier
    std::optional<Communicator> all = comm.split(0);
    ASSERT_TRUE(all.has_value());
    for (int i = 0; i < 5; ++i) all->barrier();
  });
}

// ------------------------------------------------------- death isolation

TEST(Groups, DeadRanksAreCommunicatorScoped) {
  auto ctx = std::make_shared<Context>(4);
  ctx->mark_dead(3);
  pmpi::run_on(ctx, [](Communicator& comm) {
    if (comm.rank() == 3) return;  // the "dead" rank stays silent
    const std::array<int, 2> lo{0, 1};
    const std::array<int, 2> hi{2, 3};
    std::optional<Communicator> a = comm.subgroup(lo);
    std::optional<Communicator> b = comm.subgroup(hi);
    EXPECT_EQ(comm.dead_ranks(), std::vector<int>{3});
    if (a) {
      // The sibling's death is invisible to this group.
      EXPECT_TRUE(a->dead_ranks().empty());
      EXPECT_EQ(a->alive_count(), 2);
    }
    if (b) {
      // World rank 3 is THIS group's rank 1.
      EXPECT_EQ(b->dead_ranks(), std::vector<int>{1});
      EXPECT_TRUE(b->is_dead(1));
      EXPECT_EQ(b->alive_count(), 1);
    }
  });
}

// ------------------------------------ concurrent jobs on one Context

TEST(Groups, ConcurrentTsqrBitIdenticalToSolo) {
  const Index k = 4;
  const auto local_panel = [&](int grank, std::uint64_t job_seed) {
    return testing::random_matrix(8 + grank, k,
                                  job_seed + static_cast<std::uint64_t>(grank));
  };

  // Solo baselines: each job alone on its own 4-rank world.
  std::array<std::optional<TsqrResult>, 4> solo_a;
  std::array<std::optional<TsqrResult>, 4> solo_b;
  pmpi::run(4, [&](Communicator& comm) {
    solo_a[static_cast<std::size_t>(comm.rank())] =
        tsqr(comm, local_panel(comm.rank(), 1000), TsqrVariant::Tree);
  });
  pmpi::run(4, [&](Communicator& comm) {
    solo_b[static_cast<std::size_t>(comm.rank())] =
        tsqr(comm, local_panel(comm.rank(), 2000), TsqrVariant::Tree);
  });

  // Both jobs concurrently, on disjoint halves of one 8-rank Context.
  std::array<std::optional<TsqrResult>, 8> got;
  pmpi::run(8, [&](Communicator& comm) {
    std::optional<Communicator> sub = comm.split(comm.rank() / 4);
    ASSERT_TRUE(sub.has_value());
    const std::uint64_t job_seed = comm.rank() < 4 ? 1000 : 2000;
    got[static_cast<std::size_t>(comm.rank())] =
        tsqr(*sub, local_panel(sub->rank(), job_seed), TsqrVariant::Tree);
  });

  for (int r = 0; r < 8; ++r) {
    const auto& want = r < 4 ? solo_a[static_cast<std::size_t>(r)]
                             : solo_b[static_cast<std::size_t>(r - 4)];
    ASSERT_TRUE(want.has_value());
    ASSERT_TRUE(got[static_cast<std::size_t>(r)].has_value());
    expect_bits_equal(got[static_cast<std::size_t>(r)]->r, want->r, "R");
    expect_bits_equal(got[static_cast<std::size_t>(r)]->q_local, want->q_local,
                      "q_local");
  }
}

// The acceptance scenario (and the group-scoped fault-injection
// coverage): two fault-tolerant streaming jobs on disjoint halves, a
// seeded FaultPlan kills one rank of group B mid-stream, and
//   * group A's results stay bit-identical to its solo run,
//   * group A's FaultReport stays clean,
//   * group B completes degraded, reporting the death in GROUP-LOCAL
//     numbering — the death-isolation contract end to end.
TEST(GroupsFault, KillInOneGroupIsolatedFromSibling) {
  constexpr int kWorld = 8;
  constexpr int kHalf = 4;
  const Index cols0 = 8;
  const Index cols = 6;

  // One half-job: rank r streams two batches of its row block. Seeds
  // depend only on (group rank, job seed) so the solo and concurrent
  // runs see identical data.
  const auto job = [&](Communicator& comm, std::uint64_t job_seed,
                       std::optional<FaultReport>* report, Matrix* modes,
                       Vector* values) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const Index rows = 10 + comm.rank();
    StreamingOptions opts;
    opts.num_modes = 5;
    opts.fault_tolerant = true;
    ParallelStreamingSVD svd(comm, opts, TsqrVariant::Direct);
    svd.initialize(testing::random_matrix(rows, cols0, job_seed + 70 + r));
    for (int i = 0; i < 2; ++i) {
      svd.incorporate_data(testing::random_matrix(
          rows, cols, job_seed + 100 + 10 * static_cast<std::uint64_t>(i) + r));
    }
    if (report) *report = svd.fault_report();
    if (comm.is_root()) {
      if (modes) *modes = svd.modes();
      if (values) *values = svd.singular_values();
    }
  };

  const auto concurrent = [&](Communicator& comm,
                              std::array<std::optional<FaultReport>, kWorld>&
                                  reports,
                              Matrix* a_modes, Vector* a_values) {
    std::optional<Communicator> sub = comm.split(comm.rank() / kHalf);
    ASSERT_TRUE(sub.has_value());
    const bool in_a = comm.rank() < kHalf;
    job(*sub, in_a ? 1000 : 2000,
        &reports[static_cast<std::size_t>(comm.rank())],
        in_a ? a_modes : nullptr, in_a ? a_values : nullptr);
  };

  // Solo baseline for group A's job.
  std::array<std::optional<FaultReport>, kWorld> solo_reports;
  Matrix solo_modes;
  Vector solo_values;
  pmpi::run(kHalf, [&](Communicator& comm) {
    job(comm, 1000, &solo_reports[static_cast<std::size_t>(comm.rank())],
        &solo_modes, &solo_values);
  });

  // Probe run (healthy) pins the op count at which world rank 5 — group
  // B's local rank 1 — begins its second streaming update.
  auto probe = std::make_shared<Context>(kWorld);
  {
    std::array<std::optional<FaultReport>, kWorld> reports;
    pmpi::run_on(probe, [&](Communicator& comm) {
      std::optional<Communicator> sub = comm.split(comm.rank() / kHalf);
      ASSERT_TRUE(sub.has_value());
      const auto r = static_cast<std::uint64_t>(sub->rank());
      const Index rows = 10 + sub->rank();
      StreamingOptions opts;
      opts.num_modes = 5;
      opts.fault_tolerant = true;
      const std::uint64_t seed = comm.rank() < kHalf ? 1000 : 2000;
      ParallelStreamingSVD svd(*sub, opts, TsqrVariant::Direct);
      svd.initialize(testing::random_matrix(rows, cols0, seed + 70 + r));
      svd.incorporate_data(
          testing::random_matrix(rows, cols, seed + 100 + r));
      reports[static_cast<std::size_t>(comm.rank())] = svd.fault_report();
    });
    for (const auto& rep : reports) {
      ASSERT_TRUE(rep.has_value());
      EXPECT_FALSE(rep->degraded);
    }
  }

  FaultPlan plan;
  plan.kill_rank(5, probe->ops(5));
  auto ctx = std::make_shared<Context>(kWorld);
  ctx->set_fault_plan(std::move(plan));

  std::array<std::optional<FaultReport>, kWorld> reports;
  Matrix a_modes;
  Vector a_values;
  pmpi::run_on(ctx, [&](Communicator& comm) {
    concurrent(comm, reports, &a_modes, &a_values);
  });

  // The context saw exactly one death, world rank 5.
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{5});
  EXPECT_FALSE(reports[5].has_value());

  // Group A: untouched — clean reports and a bit-identical result.
  for (int r = 0; r < kHalf; ++r) {
    const auto& rep = reports[static_cast<std::size_t>(r)];
    ASSERT_TRUE(rep.has_value()) << "group A rank " << r;
    EXPECT_FALSE(rep->degraded) << "group A rank " << r;
    EXPECT_TRUE(rep->dead_ranks.empty()) << "group A rank " << r;
  }
  expect_bits_equal(a_modes, solo_modes, "group A modes vs solo");
  ASSERT_EQ(a_values.size(), solo_values.size());
  for (Index i = 0; i < a_values.size(); ++i) {
    EXPECT_EQ(a_values[i], solo_values[i]) << "singular value " << i;
  }

  // Group B: degraded, and the death is reported in GROUP-LOCAL
  // numbering (world 5 == group B rank 1), with the group's own extents.
  const Index b_total_rows = 10 + 11 + 12 + 13;
  for (int r = kHalf; r < kWorld; ++r) {
    if (r == 5) continue;
    const auto& rep = reports[static_cast<std::size_t>(r)];
    ASSERT_TRUE(rep.has_value()) << "group B rank " << r;
    EXPECT_TRUE(rep->degraded) << "group B rank " << r;
    EXPECT_EQ(rep->dead_ranks, std::vector<int>{1}) << "group B rank " << r;
    EXPECT_TRUE(rep->extent_known);
    EXPECT_EQ(rep->lost_rows, 11);
    EXPECT_EQ(rep->surviving_rows, b_total_rows - 11);
    EXPECT_GT(rep->coverage, 0.0);
    EXPECT_LT(rep->coverage, 1.0);
  }
}

}  // namespace
}  // namespace parsvd
