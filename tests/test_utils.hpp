// Shared helpers for the parsvd test suite: naive reference kernels
// (deliberately independent from the library implementations), random
// matrix factories, and gtest matchers for matrix proximity.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace parsvd::testing {

/// Reference O(mnk) matmul written against operator() only.
inline Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (Index k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

inline Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::gaussian(rows, cols, rng);
}

/// Random symmetric matrix with entries O(1).
inline Matrix random_symmetric(Index n, std::uint64_t seed) {
  const Matrix g = random_matrix(n, n, seed);
  Matrix s(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) s(i, j) = 0.5 * (g(i, j) + g(j, i));
  }
  return s;
}

inline void expect_matrix_near(const Matrix& actual, const Matrix& expected,
                               double tol, const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  const double err = max_abs_diff(actual, expected);
  EXPECT_LE(err, tol) << what << " max |diff| = " << err;
}

inline void expect_vector_near(const Vector& actual, const Vector& expected,
                               double tol, const char* what = "") {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  const double err = max_abs_diff(actual, expected);
  EXPECT_LE(err, tol) << what << " max |diff| = " << err;
}

/// Max |AᵀA - I| — orthonormal-columns check.
inline double ortho_defect(const Matrix& q) {
  double worst = 0.0;
  for (Index i = 0; i < q.cols(); ++i) {
    for (Index j = 0; j < q.cols(); ++j) {
      double s = 0.0;
      for (Index r = 0; r < q.rows(); ++r) s += q(r, i) * q(r, j);
      const double target = (i == j) ? 1.0 : 0.0;
      worst = std::max(worst, std::fabs(s - target));
    }
  }
  return worst;
}

}  // namespace parsvd::testing
