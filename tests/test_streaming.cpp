// Serial streaming SVD tests: exactness at ff = 1, forget-factor
// semantics, truncation, API contract, randomized inner path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.hpp"
#include "core/streaming.hpp"
#include "linalg/blas.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::ortho_defect;
using testing::random_matrix;

Matrix burgers_data(Index m = 400, Index n = 100) {
  workloads::BurgersConfig cfg;
  cfg.grid_points = m;
  cfg.snapshots = n;
  return workloads::Burgers(cfg).snapshot_matrix();
}

/// Feed `a` into a streaming SVD in batches of `batch` columns.
void stream_in(SvdBase& svd_obj, const Matrix& a, Index batch) {
  svd_obj.initialize(a.block(0, 0, a.rows(), std::min(batch, a.cols())));
  Index done = std::min(batch, a.cols());
  while (done < a.cols()) {
    const Index take = std::min(batch, a.cols() - done);
    svd_obj.incorporate_data(a.block(0, done, a.rows(), take));
    done += take;
  }
}

TEST(SerialStreaming, SingleBatchEqualsBatchSvd) {
  const Matrix a = burgers_data();
  StreamingOptions opts;
  opts.num_modes = 8;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  s.initialize(a);
  const SvdResult ref = svd(a);
  for (Index i = 0; i < 8; ++i) {
    EXPECT_NEAR(s.singular_values()[i], ref.s[i], 1e-9 * ref.s[0]);
  }
  const Vector errs = post::mode_errors_l2(s.modes(), ref.u.left_cols(8));
  for (Index j = 0; j < errs.size(); ++j) EXPECT_LT(errs[j], 1e-8);
}

TEST(SerialStreaming, ForgetFactorOneConvergesToBatchSvd) {
  // With ff = 1 and K >= numerical rank, streaming over batches must
  // reproduce the one-shot SVD (the paper's own statement in §3.1).
  Rng rng(300);
  const Vector spectrum = workloads::geometric_spectrum(6, 10.0, 0.5);
  const Matrix a = workloads::synthetic_low_rank(150, 60, spectrum, rng);

  StreamingOptions opts;
  opts.num_modes = 10;  // > rank 6
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  stream_in(s, a, 15);

  const SvdResult ref = svd(a);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(s.singular_values()[i], ref.s[i], 1e-8 * ref.s[0])
        << "sigma " << i;
  }
  const Vector errs =
      post::mode_errors_l2(s.modes().left_cols(6), ref.u.left_cols(6));
  for (Index j = 0; j < 6; ++j) EXPECT_LT(errs[j], 1e-6) << "mode " << j;
}

TEST(SerialStreaming, BatchSizeInvariantAtFfOne) {
  Rng rng(301);
  const Matrix a =
      workloads::synthetic_low_rank(100, 48,
                                    workloads::geometric_spectrum(5, 4.0, 0.4),
                                    rng);
  StreamingOptions opts;
  opts.num_modes = 8;
  opts.forget_factor = 1.0;

  SerialStreamingSVD s1(opts), s2(opts);
  stream_in(s1, a, 6);
  stream_in(s2, a, 16);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(s1.singular_values()[i], s2.singular_values()[i], 1e-8);
  }
}

TEST(SerialStreaming, ModesStayOrthonormal) {
  const Matrix a = burgers_data();
  StreamingOptions opts;
  opts.num_modes = 6;
  SerialStreamingSVD s(opts);
  stream_in(s, a, 20);
  EXPECT_LT(ortho_defect(s.modes()), 1e-10);
}

TEST(SerialStreaming, SingularValuesDescending) {
  const Matrix a = burgers_data();
  StreamingOptions opts;
  opts.num_modes = 6;
  SerialStreamingSVD s(opts);
  stream_in(s, a, 25);
  const Vector& sv = s.singular_values();
  for (Index i = 1; i < sv.size(); ++i) EXPECT_GE(sv[i - 1], sv[i]);
}

TEST(SerialStreaming, ForgetFactorDiscountsOldData) {
  // Phase 1 has energy only in direction e1, phase 2 only in e2. With a
  // small ff, the final leading mode must be e2, not e1.
  const Index m = 50;
  Matrix phase1(m, 20, 0.0), phase2(m, 20, 0.0);
  for (Index j = 0; j < 20; ++j) {
    phase1(0, j) = 10.0;
    phase2(1, j) = 5.0;  // weaker, but recent
  }
  StreamingOptions opts;
  opts.num_modes = 2;
  opts.forget_factor = 0.1;
  SerialStreamingSVD s(opts);
  s.initialize(phase1);
  for (int rep = 0; rep < 5; ++rep) s.incorporate_data(phase2);

  // Leading mode concentrated on coordinate 1 (e2).
  EXPECT_GT(std::fabs(s.modes()(1, 0)), 0.99);
  EXPECT_LT(std::fabs(s.modes()(0, 0)), 0.2);
}

TEST(SerialStreaming, FfOneRetainsOldData) {
  // Same two-phase experiment with ff = 1: e1 energy (10 > 5) must win.
  const Index m = 50;
  Matrix phase1(m, 20, 0.0), phase2(m, 20, 0.0);
  for (Index j = 0; j < 20; ++j) {
    phase1(0, j) = 10.0;
    phase2(1, j) = 5.0;
  }
  StreamingOptions opts;
  opts.num_modes = 2;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  s.initialize(phase1);
  s.incorporate_data(phase2);
  EXPECT_GT(std::fabs(s.modes()(0, 0)), 0.99);
}

TEST(SerialStreaming, TruncatesToNumModes) {
  const Matrix a = random_matrix(60, 30, 302);
  StreamingOptions opts;
  opts.num_modes = 4;
  SerialStreamingSVD s(opts);
  stream_in(s, a, 10);
  EXPECT_EQ(s.modes().cols(), 4);
  EXPECT_EQ(s.singular_values().size(), 4);
}

TEST(SerialStreaming, KEffectiveCappedByFirstBatch) {
  // First batch narrower than K: retained modes = batch width.
  const Matrix a = random_matrix(40, 3, 303);
  StreamingOptions opts;
  opts.num_modes = 10;
  SerialStreamingSVD s(opts);
  s.initialize(a);
  EXPECT_EQ(s.modes().cols(), 3);
}

TEST(SerialStreaming, TracksCounters) {
  const Matrix a = random_matrix(30, 24, 304);
  StreamingOptions opts;
  opts.num_modes = 3;
  SerialStreamingSVD s(opts);
  EXPECT_FALSE(s.initialized());
  stream_in(s, a, 8);
  EXPECT_TRUE(s.initialized());
  EXPECT_EQ(s.iterations(), 2);       // 24 cols in batches of 8 → init + 2
  EXPECT_EQ(s.snapshots_seen(), 24);
}

TEST(SerialStreaming, ApiContractEnforced) {
  StreamingOptions opts;
  opts.num_modes = 2;
  SerialStreamingSVD s(opts);
  EXPECT_THROW(s.incorporate_data(Matrix(4, 2, 1.0)), Error);  // before init
  s.initialize(Matrix(4, 2, 1.0));
  EXPECT_THROW(s.initialize(Matrix(4, 2, 1.0)), Error);        // double init
  EXPECT_THROW(s.incorporate_data(Matrix(5, 2, 1.0)), Error);  // row change
  EXPECT_THROW(s.incorporate_data(Matrix{}), Error);           // empty batch
}

TEST(SerialStreaming, OptionValidation) {
  StreamingOptions bad;
  bad.num_modes = 0;
  EXPECT_THROW(SerialStreamingSVD{bad}, Error);
  StreamingOptions bad2;
  bad2.forget_factor = 0.0;
  EXPECT_THROW(SerialStreamingSVD{bad2}, Error);
  StreamingOptions bad3;
  bad3.forget_factor = 1.5;
  EXPECT_THROW(SerialStreamingSVD{bad3}, Error);
}

TEST(SerialStreaming, LowRankPathTracksDeterministic) {
  Rng rng(305);
  const Matrix a = workloads::synthetic_low_rank(
      200, 60, workloads::geometric_spectrum(5, 8.0, 0.4), rng);
  StreamingOptions det;
  det.num_modes = 5;
  det.forget_factor = 1.0;
  StreamingOptions rnd = det;
  rnd.low_rank = true;
  rnd.randomized.oversampling = 10;
  rnd.randomized.power_iterations = 2;

  SerialStreamingSVD sd(det), sr(rnd);
  stream_in(sd, a, 15);
  stream_in(sr, a, 15);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(sr.singular_values()[i], sd.singular_values()[i],
                1e-4 * sd.singular_values()[0])
        << "sigma " << i;
  }
}

TEST(SerialStreaming, GolubKahanBackendAgrees) {
  const Matrix a = burgers_data(200, 60);
  StreamingOptions j;
  j.num_modes = 4;
  j.forget_factor = 1.0;
  StreamingOptions g = j;
  g.method = SvdMethod::GolubKahan;
  SerialStreamingSVD sj(j), sg(g);
  stream_in(sj, a, 15);
  stream_in(sg, a, 15);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(sg.singular_values()[i], sj.singular_values()[i], 1e-8);
  }
}

TEST(Factory, SerialFactoryProducesWorkingObject) {
  StreamingOptions opts;
  opts.num_modes = 3;
  auto s = make_streaming_svd(opts);
  ASSERT_NE(s, nullptr);
  s->initialize(random_matrix(20, 10, 306));
  EXPECT_EQ(s->modes().cols(), 3);
}

}  // namespace
}  // namespace parsvd
