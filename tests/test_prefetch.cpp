// PrefetchingBatchSource and the pipelined streaming executor: batch
// boundaries and results must be bit-identical with prefetch on or off,
// on both the Burgers and the ERA5-synthetic workloads, and the worker
// thread must propagate exceptions and shut down cleanly (these tests
// also run under TSan in CI).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/parallel_streaming.hpp"
#include "test_utils.hpp"
#include "workloads/burgers.hpp"
#include "workloads/era5_synthetic.hpp"
#include "workloads/prefetch_source.hpp"
#include "workloads/streaming_executor.hpp"

namespace parsvd {
namespace {

namespace wl = workloads;

TEST(PrefetchSource, YieldsSameBatchesAsInner) {
  const Matrix data = testing::random_matrix(12, 30, 5);
  wl::MatrixBatchSource plain(data);
  wl::PrefetchingBatchSource pre(std::make_unique<wl::MatrixBatchSource>(data),
                                 7);
  EXPECT_EQ(pre.rows(), plain.rows());
  EXPECT_EQ(pre.total_snapshots(), plain.total_snapshots());
  while (!plain.exhausted()) {
    ASSERT_FALSE(pre.exhausted());
    const Matrix a = plain.next_batch(7);
    const Matrix b = pre.next_batch(7);
    testing::expect_matrix_near(b, a, 0.0);
  }
  EXPECT_TRUE(pre.exhausted());
  EXPECT_EQ(pre.position(), data.cols());
}

TEST(PrefetchSource, DepthOneStillInOrder) {
  const Matrix data = testing::random_matrix(4, 9, 8);
  wl::PrefetchingBatchSource pre(std::make_unique<wl::MatrixBatchSource>(data),
                                 2, /*depth=*/1);
  Index seen = 0;
  while (!pre.exhausted()) {
    const Matrix b = pre.next_batch(2);
    testing::expect_matrix_near(b, data.block(0, seen, 4, b.cols()), 0.0);
    seen += b.cols();
  }
  EXPECT_EQ(seen, 9);
}

TEST(PrefetchSource, MismatchedWidthThrows) {
  const Matrix data = testing::random_matrix(3, 8, 1);
  wl::PrefetchingBatchSource pre(std::make_unique<wl::MatrixBatchSource>(data),
                                 4);
  EXPECT_THROW((void)pre.next_batch(5), Error);
  testing::expect_matrix_near(pre.next_batch(4), data.block(0, 0, 3, 4), 0.0);
}

TEST(PrefetchSource, DestructorJoinsWithoutConsuming) {
  // Construct, let the worker fill its queue, destroy — must not hang
  // or leak the thread (TSan/ASan would flag it).
  const Matrix data = testing::random_matrix(6, 40, 2);
  wl::PrefetchingBatchSource pre(std::make_unique<wl::MatrixBatchSource>(data),
                                 4);
  (void)pre.next_batch(4);
}

TEST(PrefetchSource, WorkerExceptionReachesConsumer) {
  auto gen = [](Index col0, Index) -> Matrix {
    if (col0 >= 4) throw std::runtime_error("ingest failed");
    return Matrix(3, 2);
  };
  wl::PrefetchingBatchSource pre(
      std::make_unique<wl::GeneratorBatchSource>(3, 10, gen), 2);
  (void)pre.next_batch(2);  // col0 = 0
  (void)pre.next_batch(2);  // col0 = 2
  EXPECT_THROW(
      {
        // The worker hit the throw somewhere ahead; draining must
        // surface it rather than hang or fabricate a batch.
        while (true) (void)pre.next_batch(2);
      },
      std::runtime_error);
}

TEST(PrefetchSource, RejectsConsumedInner) {
  const Matrix data = testing::random_matrix(3, 6, 4);
  auto inner = std::make_unique<wl::MatrixBatchSource>(data);
  (void)inner->next_batch(2);
  EXPECT_THROW(wl::PrefetchingBatchSource(std::move(inner), 2), Error);
}

// ---------------------------------------------------------------------
// End-to-end determinism: the distributed streaming SVD must produce
// bit-identical singular values and local modes with prefetch on/off.

struct StreamedResult {
  Vector svals;
  std::vector<Matrix> local_modes;
};

template <typename MakeSource>
StreamedResult stream_distributed(int p, Index batch, bool prefetch,
                                  const MakeSource& make_source) {
  StreamedResult out;
  out.local_modes.resize(static_cast<std::size_t>(p));
  StreamingOptions opts;
  opts.num_modes = 6;
  opts.forget_factor = 1.0;
  pmpi::run(p, [&](pmpi::Communicator& comm) {
    ParallelStreamingSVD svd(comm, opts, TsqrVariant::Tree);
    wl::StreamingExecutorOptions eopts;
    eopts.batch_cols = batch;
    eopts.prefetch = prefetch;
    wl::run_streaming(svd, make_source(comm), eopts);
    out.local_modes[static_cast<std::size_t>(comm.rank())] = svd.local_modes();
    if (comm.is_root()) out.svals = svd.singular_values();
  });
  return out;
}

void expect_bit_identical(const StreamedResult& a, const StreamedResult& b) {
  ASSERT_EQ(a.svals.size(), b.svals.size());
  for (Index i = 0; i < a.svals.size(); ++i) {
    EXPECT_EQ(a.svals[i], b.svals[i]) << "singular value " << i;
  }
  ASSERT_EQ(a.local_modes.size(), b.local_modes.size());
  for (std::size_t r = 0; r < a.local_modes.size(); ++r) {
    testing::expect_matrix_near(a.local_modes[r], b.local_modes[r], 0.0);
  }
}

TEST(PrefetchDeterminism, BurgersBitIdentical) {
  const int p = 4;
  const Index rows = 96, snaps = 40, batch = 8;
  wl::BurgersConfig cfg;
  cfg.grid_points = rows;
  cfg.snapshots = snaps;
  const auto burgers = std::make_shared<wl::Burgers>(cfg);
  const auto make_source = [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(rows, p, comm.rank());
    return std::make_unique<wl::GeneratorBatchSource>(
        part.count, snaps, [burgers, part](Index col0, Index ncols) {
          return burgers->snapshot_block(part.offset, part.count, col0, ncols);
        });
  };
  const StreamedResult off = stream_distributed(p, batch, false, make_source);
  const StreamedResult on = stream_distributed(p, batch, true, make_source);
  ASSERT_GT(off.svals.size(), 0);
  expect_bit_identical(off, on);
}

TEST(PrefetchDeterminism, Era5SyntheticBitIdentical) {
  const int p = 3;
  const Index batch = 6;
  wl::Era5Config cfg;
  cfg.n_lat = 12;
  cfg.n_lon = 16;
  cfg.snapshots = 24;
  const auto era5 = std::make_shared<wl::Era5Synthetic>(cfg);
  const Index rows = era5->grid_size();
  const Index snaps = cfg.snapshots;
  const auto make_source = [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(rows, p, comm.rank());
    return std::make_unique<wl::GeneratorBatchSource>(
        part.count, snaps, [era5, part](Index col0, Index ncols) {
          return era5->snapshot_block(part.offset, part.count, col0, ncols,
                                      /*subtract_mean=*/false);
        });
  };
  const StreamedResult off = stream_distributed(p, batch, false, make_source);
  const StreamedResult on = stream_distributed(p, batch, true, make_source);
  ASSERT_GT(off.svals.size(), 0);
  expect_bit_identical(off, on);
}

}  // namespace
}  // namespace parsvd
