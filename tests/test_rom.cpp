// Reduced-order-modeling API tests: modal projection and reconstruction
// (SvdBase::project / reconstruct), serial vs distributed, weighted and
// unweighted — the Galerkin workflow of paper §2.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "core/parallel_streaming.hpp"
#include "core/streaming.hpp"
#include "linalg/blas.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
namespace wl = workloads;

Matrix low_rank_data(Index m, Index n, Index k, std::uint64_t seed) {
  Rng rng(seed);
  return wl::synthetic_low_rank(m, n, wl::geometric_spectrum(k, 10.0, 0.5),
                                rng);
}

TEST(Rom, ProjectReconstructRoundTripsLowRankData) {
  // K >= rank and ff = 1: projecting training data and reconstructing
  // must reproduce it to working precision.
  const Matrix data = low_rank_data(80, 40, 4, 1);
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  s.initialize(data);

  const Matrix coeffs = s.project(data);
  ASSERT_EQ(coeffs.rows(), 4);
  ASSERT_EQ(coeffs.cols(), 40);
  const Matrix rec = s.reconstruct(coeffs);
  testing::expect_matrix_near(rec, data, 1e-9);
}

TEST(Rom, CoefficientEnergyMatchesSingularValues) {
  // On training data, row j of the coefficients is σ_j v_jᵀ — its norm
  // equals σ_j.
  const Matrix data = low_rank_data(60, 30, 3, 2);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  s.initialize(data);
  const Matrix coeffs = s.project(data);
  for (Index j = 0; j < 3; ++j) {
    EXPECT_NEAR(coeffs.row(j).norm2(), s.singular_values()[j],
                1e-8 * s.singular_values()[0])
        << "row " << j;
  }
}

TEST(Rom, ProjectionOfUnseenSnapshotBounded) {
  const Matrix data = low_rank_data(50, 25, 3, 3);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;
  SerialStreamingSVD s(opts);
  s.initialize(data);

  // An unseen snapshot inside the span reconstructs exactly; one outside
  // the span reconstructs to its projection only.
  Matrix in_span(50, 1);
  for (Index i = 0; i < 50; ++i) in_span(i, 0) = 2.0 * data(i, 3) - data(i, 7);
  const Matrix rec = s.reconstruct(s.project(in_span));
  testing::expect_matrix_near(rec, in_span, 1e-9);

  Rng rng(4);
  Matrix random_snap = Matrix::gaussian(50, 1, rng);
  const Matrix rec2 = s.reconstruct(s.project(random_snap));
  // ||rec2|| <= ||snap|| (orthogonal projection is a contraction).
  EXPECT_LE(rec2.norm_fro(), random_snap.norm_fro() + 1e-12);
}

TEST(Rom, WeightedProjectionUsesWInnerProduct) {
  const Index m = 40;
  Rng rng(5);
  Vector w(m);
  for (Index i = 0; i < m; ++i) w[i] = rng.uniform(0.5, 2.0);

  const Matrix data = low_rank_data(m, 20, 3, 6);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;
  opts.row_weights = w;
  SerialStreamingSVD s(opts);
  s.initialize(data);

  // project must equal Φᵀ W B with the physical modes.
  const Matrix phi = s.physical_modes();
  const Matrix coeffs = s.project(data);
  Matrix expected(3, 20, 0.0);
  for (Index j = 0; j < 20; ++j) {
    for (Index k = 0; k < 3; ++k) {
      double sum = 0.0;
      for (Index i = 0; i < m; ++i) sum += phi(i, k) * w[i] * data(i, j);
      expected(k, j) = sum;
    }
  }
  testing::expect_matrix_near(coeffs, expected, 1e-10);

  // Round trip still exact for in-span data.
  testing::expect_matrix_near(s.reconstruct(coeffs), data, 1e-9);
}

TEST(Rom, ParallelProjectMatchesSerial) {
  const Matrix data = low_rank_data(90, 30, 4, 7);
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.forget_factor = 1.0;

  SerialStreamingSVD serial(opts);
  serial.initialize(data);
  const Matrix serial_coeffs = serial.project(data);

  std::vector<Matrix> coeffs_per_rank(3);
  std::vector<Matrix> rec_blocks(3);
  std::mutex mu;
  pmpi::run(3, [&](Communicator& comm) {
    const auto part = wl::partition_rows(90, 3, comm.rank());
    ParallelStreamingSVD psvd(comm, opts);
    const Matrix local = data.block(part.offset, 0, part.count, 30);
    psvd.initialize(local);
    Matrix c = psvd.project(local);
    Matrix r = psvd.reconstruct(c);
    std::lock_guard<std::mutex> lock(mu);
    coeffs_per_rank[static_cast<std::size_t>(comm.rank())] = std::move(c);
    rec_blocks[static_cast<std::size_t>(comm.rank())] = std::move(r);
  });

  // Every rank holds identical global coefficients.
  for (int r = 1; r < 3; ++r) {
    testing::expect_matrix_near(coeffs_per_rank[static_cast<std::size_t>(r)],
                                coeffs_per_rank[0], 0.0);
  }
  // Coefficients match the serial run up to per-mode sign: compare via
  // reassembled reconstruction, which is sign-invariant.
  const Matrix par_rec = vcat(rec_blocks);
  testing::expect_matrix_near(par_rec, data, 1e-8);
  testing::expect_matrix_near(serial.reconstruct(serial_coeffs), data, 1e-8);
}

TEST(Rom, ApiContract) {
  StreamingOptions opts;
  opts.num_modes = 2;
  SerialStreamingSVD s(opts);
  EXPECT_THROW(s.project(Matrix(4, 1, 1.0)), Error);      // before init
  EXPECT_THROW(s.reconstruct(Matrix(2, 1, 1.0)), Error);  // before init
  s.initialize(testing::random_matrix(6, 4, 8));
  EXPECT_THROW(s.reconstruct(Matrix(5, 1, 1.0)), Error);  // wrong K
}

}  // namespace
}  // namespace parsvd
