// Randomized SVD tests: planted-spectrum recovery, oversampling and
// power-iteration effects, determinism, range-finder quality.
#include <gtest/gtest.h>

#include <cmath>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "test_utils.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::ortho_defect;
using workloads::geometric_spectrum;
using workloads::synthetic_low_rank;

// Moderately decaying spectrum for the near-optimal reconstruction test.
Vector algebraic_spectrum_for_test() {
  return workloads::algebraic_spectrum(50, 1.0, 1.0);
}

TEST(RangeFinder, ColumnsOrthonormal) {
  Rng rng(1);
  const Matrix a = Matrix::gaussian(60, 30, rng);
  RandomizedOptions opts;
  opts.rank = 8;
  opts.oversampling = 4;
  Rng sketch(2);
  const Matrix q = randomized_range_finder(a, opts, sketch);
  ASSERT_EQ(q.rows(), 60);
  ASSERT_EQ(q.cols(), 12);
  EXPECT_LT(ortho_defect(q), 1e-12);
}

TEST(RangeFinder, SketchCappedByMatrixSize) {
  Rng rng(3);
  const Matrix a = Matrix::gaussian(10, 5, rng);
  RandomizedOptions opts;
  opts.rank = 20;
  opts.oversampling = 20;
  Rng sketch(4);
  const Matrix q = randomized_range_finder(a, opts, sketch);
  EXPECT_EQ(q.cols(), 5);
}

TEST(RangeFinder, CapturesExactLowRankRange) {
  Rng rng(5);
  const Matrix a = synthetic_low_rank(80, 40, geometric_spectrum(5, 1.0, 0.5), rng);
  RandomizedOptions opts;
  opts.rank = 5;
  opts.oversampling = 5;
  Rng sketch(6);
  const Matrix q = randomized_range_finder(a, opts, sketch);
  // || A - Q Qᵀ A ||_F should be ~0 for an exactly rank-5 matrix.
  const Matrix proj = matmul(q, matmul(q, a, Trans::Yes, Trans::No));
  EXPECT_LT((a - proj).norm_fro(), 1e-10);
}

TEST(RandomizedSvd, RecoversExactLowRank) {
  Rng rng(7);
  const Vector spectrum = geometric_spectrum(6, 10.0, 0.4);
  const Matrix a = synthetic_low_rank(100, 50, spectrum, rng);
  RandomizedOptions opts;
  opts.rank = 6;
  opts.oversampling = 6;
  const SvdResult f = randomized_svd(a, opts);
  ASSERT_EQ(f.s.size(), 6);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(f.s[i], spectrum[i], 1e-9 * spectrum[0]) << "sigma " << i;
  }
  EXPECT_LT(ortho_defect(f.u), 1e-10);
  EXPECT_LT(ortho_defect(f.v), 1e-10);
}

TEST(RandomizedSvd, ReconstructionNearOptimal) {
  // For a noisy matrix, the rank-k randomized error should be within a
  // modest factor of the optimal (truncated deterministic) error.
  Rng rng(8);
  const Matrix a =
      synthetic_low_rank(80, 60, algebraic_spectrum_for_test(), rng);
  RandomizedOptions opts;
  opts.rank = 10;
  opts.oversampling = 8;
  opts.power_iterations = 2;
  const SvdResult rand_f = randomized_svd(a, opts);
  SvdOptions dopts;
  dopts.rank = 10;
  const SvdResult det_f = svd(a, dopts);

  const double err_rand = (a - rand_f.reconstruct()).norm_fro();
  const double err_det = (a - det_f.reconstruct()).norm_fro();
  EXPECT_LE(err_rand, 1.5 * err_det + 1e-12);
}

TEST(RandomizedSvd, PowerIterationsImproveSlowDecay) {
  Rng rng(9);
  // Slow decay: randomized SVD without power iterations struggles.
  const Vector spectrum = workloads::algebraic_spectrum(40, 1.0, 0.5);
  const Matrix a = synthetic_low_rank(120, 60, spectrum, rng);

  RandomizedOptions no_power;
  no_power.rank = 8;
  no_power.oversampling = 2;
  no_power.power_iterations = 0;
  no_power.seed = 42;
  RandomizedOptions with_power = no_power;
  with_power.power_iterations = 3;

  const double err0 =
      (a - randomized_svd(a, no_power).reconstruct()).norm_fro();
  const double err3 =
      (a - randomized_svd(a, with_power).reconstruct()).norm_fro();
  EXPECT_LE(err3, err0 + 1e-12);
}

TEST(RandomizedSvd, DeterministicPerSeed) {
  Rng rng(10);
  const Matrix a = Matrix::gaussian(40, 20, rng);
  RandomizedOptions opts;
  opts.rank = 5;
  opts.seed = 99;
  const SvdResult f1 = randomized_svd(a, opts);
  const SvdResult f2 = randomized_svd(a, opts);
  testing::expect_matrix_near(f1.u, f2.u, 0.0);
  testing::expect_vector_near(f1.s, f2.s, 0.0);
}

TEST(RandomizedSvd, DifferentSeedsStillAccurate) {
  Rng rng(11);
  const Vector spectrum = geometric_spectrum(4, 5.0, 0.3);
  const Matrix a = synthetic_low_rank(50, 30, spectrum, rng);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RandomizedOptions opts;
    opts.rank = 4;
    opts.seed = seed;
    const SvdResult f = randomized_svd(a, opts);
    EXPECT_NEAR(f.s[0], spectrum[0], 1e-8) << "seed " << seed;
  }
}

TEST(RandomizedSvd, CallerOwnedRngAdvances) {
  // Two calls with the same generator must consume the stream (fresh
  // sketch per call, as the paper prescribes). On an exactly rank-3
  // matrix both sketches recover the exact spectrum, so the values agree
  // even though the sketches differ.
  Rng rng(12);
  const Matrix a =
      synthetic_low_rank(30, 15, geometric_spectrum(3, 2.0, 0.5), rng);
  RandomizedOptions opts;
  opts.rank = 3;
  Rng stream(55);
  const SvdResult f1 = randomized_svd(a, opts, stream);
  const SvdResult f2 = randomized_svd(a, opts, stream);
  testing::expect_vector_near(f1.s, f2.s, 1e-9);
  // The generator moved: a fresh generator at the same seed reproduces
  // the FIRST call bit-for-bit.
  Rng fresh(55);
  const SvdResult f3 = randomized_svd(a, opts, fresh);
  testing::expect_matrix_near(f3.u, f1.u, 0.0);
  // And the second call's state differs from the first's start state.
  Rng fresh2(55);
  EXPECT_NE(stream.next_u64(), fresh2.next_u64());
}

TEST(RandomizedSvd, RankValidation) {
  Rng rng(13);
  const Matrix a = Matrix::gaussian(10, 10, rng);
  RandomizedOptions opts;
  opts.rank = 0;
  EXPECT_THROW(randomized_svd(a, opts), Error);
}

TEST(RandomizedSvd, InnerMethodSelectable) {
  Rng rng(14);
  const Vector spectrum = geometric_spectrum(3, 2.0, 0.5);
  const Matrix a = synthetic_low_rank(40, 20, spectrum, rng);
  RandomizedOptions opts;
  opts.rank = 3;
  opts.inner_method = SvdMethod::GolubKahan;
  const SvdResult f = randomized_svd(a, opts);
  EXPECT_NEAR(f.s[0], spectrum[0], 1e-8);
}

}  // namespace
}  // namespace parsvd
