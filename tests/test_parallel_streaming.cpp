// Distributed streaming SVD tests: serial/parallel equivalence (the
// paper's Fig 1(a)/(b) validation, as assertions), rank invariance,
// TSQR-variant independence, randomized path, mode gathering.
#include <gtest/gtest.h>

#include <mutex>

#include "core/factory.hpp"
#include "core/parallel_streaming.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using testing::ortho_defect;
using workloads::partition_rows;

Matrix burgers_data(Index m = 400, Index n = 120) {
  workloads::BurgersConfig cfg;
  cfg.grid_points = m;
  cfg.snapshots = n;
  return workloads::Burgers(cfg).snapshot_matrix();
}

struct ParallelRun {
  Matrix modes;  // gathered at root
  Vector s;
};

ParallelRun run_parallel_streaming(const Matrix& a, int p, Index batch,
                                   StreamingOptions opts,
                                   TsqrVariant variant = TsqrVariant::Direct) {
  ParallelRun out;
  std::mutex mu;
  pmpi::run(p, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), p, comm.rank());
    ParallelStreamingSVD s(comm, opts, variant);
    Index done = std::min(batch, a.cols());
    s.initialize(a.block(part.offset, 0, part.count, done));
    while (done < a.cols()) {
      const Index take = std::min(batch, a.cols() - done);
      s.incorporate_data(a.block(part.offset, done, part.count, take));
      done += take;
    }
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      out.modes = s.modes();
      out.s = s.singular_values();
    }
  });
  return out;
}

void run_serial_reference(const Matrix& a, Index batch, StreamingOptions opts,
                          Matrix& modes, Vector& s) {
  SerialStreamingSVD serial(opts);
  Index done = std::min(batch, a.cols());
  serial.initialize(a.block(0, 0, a.rows(), done));
  while (done < a.cols()) {
    const Index take = std::min(batch, a.cols() - done);
    serial.incorporate_data(a.block(0, done, a.rows(), take));
    done += take;
  }
  modes = serial.modes();
  s = serial.singular_values();
}

TEST(ParallelStreaming, MatchesSerialOnBurgers) {
  // The paper's core validation (Fig 1a/b): parallel vs serial streaming
  // on Burgers snapshots, 4 ranks.
  const Matrix a = burgers_data();
  StreamingOptions opts;
  opts.num_modes = 6;
  opts.forget_factor = 0.95;

  const ParallelRun par = run_parallel_streaming(a, 4, 30, opts);
  Matrix serial_modes;
  Vector serial_s;
  run_serial_reference(a, 30, opts, serial_modes, serial_s);

  // The parallel initialization truncates each rank's right-vector
  // contribution to K columns (Listing 3), so agreement is at the 1e-4
  // level the paper's own Fig 1 error curves show — not machine epsilon.
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(par.s[i], serial_s[i], 1e-4 * serial_s[0]) << "sigma " << i;
  }
  const Vector errs = post::mode_errors_l2(par.modes, serial_modes);
  for (Index j = 0; j < errs.size(); ++j) {
    EXPECT_LT(errs[j], 5e-3) << "mode " << j;
  }
}

TEST(ParallelStreaming, FfOneEqualsBatchSvd) {
  Rng rng(400);
  const Matrix a = workloads::synthetic_low_rank(
      240, 60, workloads::geometric_spectrum(5, 10.0, 0.4), rng);
  StreamingOptions opts;
  opts.num_modes = 8;
  opts.forget_factor = 1.0;
  const ParallelRun par = run_parallel_streaming(a, 4, 12, opts);
  const SvdResult ref = svd(a);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(par.s[i], ref.s[i], 1e-7 * ref.s[0]) << "sigma " << i;
  }
  const Vector errs =
      post::mode_errors_l2(par.modes.left_cols(5), ref.u.left_cols(5));
  for (Index j = 0; j < 5; ++j) EXPECT_LT(errs[j], 1e-5) << "mode " << j;
}

TEST(ParallelStreaming, RankCountInvariance) {
  const Matrix a = burgers_data(300, 80);
  StreamingOptions opts;
  opts.num_modes = 5;
  opts.forget_factor = 0.95;
  const ParallelRun base = run_parallel_streaming(a, 1, 20, opts);
  for (int p : {2, 3, 4}) {
    const ParallelRun run = run_parallel_streaming(a, p, 20, opts);
    // The APMOS initialization truncates per-rank, so different rank
    // counts see slightly different initial subspaces; agreement is at
    // the same 1e-4 level as the serial/parallel comparison.
    testing::expect_vector_near(run.s, base.s, 1e-4 * base.s[0]);
    const Vector errs = post::mode_errors_l2(run.modes, base.modes);
    for (Index j = 0; j < errs.size(); ++j) {
      EXPECT_LT(errs[j], 5e-3) << "p=" << p << " mode " << j;
    }
  }
}

TEST(ParallelStreaming, TsqrVariantsEquivalent) {
  const Matrix a = burgers_data(256, 60);
  StreamingOptions opts;
  opts.num_modes = 4;
  const ParallelRun direct =
      run_parallel_streaming(a, 4, 15, opts, TsqrVariant::Direct);
  const ParallelRun tree =
      run_parallel_streaming(a, 4, 15, opts, TsqrVariant::Tree);
  testing::expect_vector_near(direct.s, tree.s, 1e-9);
  testing::expect_matrix_near(direct.modes, tree.modes, 1e-8);
}

TEST(ParallelStreaming, GatheredModesOrthonormal) {
  const Matrix a = burgers_data(300, 90);
  StreamingOptions opts;
  opts.num_modes = 5;
  const ParallelRun run = run_parallel_streaming(a, 3, 30, opts);
  EXPECT_LT(ortho_defect(run.modes), 1e-8);
}

TEST(ParallelStreaming, LocalModesShapeAndOffsets) {
  const Matrix a = burgers_data(205, 40);
  StreamingOptions opts;
  opts.num_modes = 3;
  pmpi::run(3, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), 3, comm.rank());
    ParallelStreamingSVD s(comm, opts);
    s.initialize(a.block(part.offset, 0, part.count, a.cols()));
    EXPECT_EQ(s.local_modes().rows(), part.count);
    EXPECT_EQ(s.local_modes().cols(), 3);
    EXPECT_EQ(s.row_offset(), part.offset);
    EXPECT_EQ(s.global_rows(), 205);
  });
}

TEST(ParallelStreaming, ModesOnlyAtRoot) {
  const Matrix a = burgers_data(120, 30);
  StreamingOptions opts;
  opts.num_modes = 2;
  pmpi::run(2, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), 2, comm.rank());
    ParallelStreamingSVD s(comm, opts);
    s.initialize(a.block(part.offset, 0, part.count, a.cols()));
    if (comm.is_root()) {
      EXPECT_EQ(s.modes().rows(), 120);
    } else {
      EXPECT_TRUE(s.modes().empty());
    }
  });
}

TEST(ParallelStreaming, RandomizedPathCloseToDeterministic) {
  Rng rng(401);
  const Matrix a = workloads::synthetic_low_rank(
      300, 60, workloads::geometric_spectrum(5, 10.0, 0.4), rng);
  StreamingOptions det;
  det.num_modes = 5;
  det.forget_factor = 1.0;
  StreamingOptions rnd = det;
  rnd.low_rank = true;
  rnd.randomized.oversampling = 10;
  rnd.randomized.power_iterations = 2;

  const ParallelRun d = run_parallel_streaming(a, 4, 15, det);
  const ParallelRun r = run_parallel_streaming(a, 4, 15, rnd);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(r.s[i], d.s[i], 1e-3 * d.s[0]) << "sigma " << i;
  }
}

TEST(ParallelStreaming, CountersTrack) {
  const Matrix a = burgers_data(100, 45);
  StreamingOptions opts;
  opts.num_modes = 3;
  pmpi::run(2, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), 2, comm.rank());
    ParallelStreamingSVD s(comm, opts);
    s.initialize(a.block(part.offset, 0, part.count, 15));
    s.incorporate_data(a.block(part.offset, 15, part.count, 15));
    s.incorporate_data(a.block(part.offset, 30, part.count, 15));
    EXPECT_EQ(s.iterations(), 2);
    EXPECT_EQ(s.snapshots_seen(), 45);
  });
}

TEST(ParallelStreaming, ApiContract) {
  StreamingOptions opts;
  opts.num_modes = 2;
  pmpi::run(2, [&](Communicator& comm) {
    ParallelStreamingSVD s(comm, opts);
    // Collective misuse must fail on every rank uniformly (all ranks
    // throw before communicating, so no deadlock).
    EXPECT_THROW(s.incorporate_data(Matrix(4, 2, 1.0)), Error);
  });
}

TEST(Factory, ParallelFactoryProducesWorkingObject) {
  const Matrix a = burgers_data(80, 20);
  StreamingOptions opts;
  opts.num_modes = 2;
  pmpi::run(2, [&](Communicator& comm) {
    auto s = make_streaming_svd(opts, comm);
    ASSERT_NE(s, nullptr);
    const auto part = partition_rows(a.rows(), 2, comm.rank());
    s->initialize(a.block(part.offset, 0, part.count, a.cols()));
    EXPECT_EQ(s->singular_values().size(), 2);
  });
}

}  // namespace
}  // namespace parsvd
