// Non-blocking messaging layer and collective-algorithm sweep: Request
// lifecycle (isend/irecv/test/wait/wait_any), debug channel discipline,
// and every collective checked at awkward rank counts under both the
// flat and the log(P) tree topologies.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "pmpi/comm.hpp"
#include "pmpi/request.hpp"
#include "pmpi/tags.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using pmpi::CollectiveAlgo;
using pmpi::Communicator;
using pmpi::Op;
using pmpi::Request;
using testing::expect_matrix_near;

TEST(CommAsync, IsendIrecvRoundtrip) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.0, 2.0, 3.0};
      Request s = comm.isend<double>(data, 1, 5);
      EXPECT_TRUE(s.done());
    } else {
      Request r = comm.irecv(0, 5);
      EXPECT_FALSE(r.done());
      r.wait();
      const std::vector<double> got = r.take<double>();
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[2], 3.0);
    }
  });
}

TEST(CommAsync, IsendMatrixRoundtrip) {
  pmpi::run(2, [](Communicator& comm) {
    const Matrix m = testing::random_matrix(6, 4, 11);
    if (comm.rank() == 0) {
      comm.isend_matrix(m, 1, 3);
    } else {
      Request r = comm.irecv(0, 3);
      r.wait();
      expect_matrix_near(r.take_matrix(), m, 0.0);
    }
  });
}

TEST(CommAsync, TestPollsUntilArrival) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      // Receiver signals readiness first so rank 0's send is guaranteed
      // to happen after at least one failed test() on the other side.
      comm.recv<int>(1, 1);
      comm.send<int>(std::vector<int>{42}, 1, 2);
    } else {
      Request r = comm.irecv(0, 2);
      EXPECT_FALSE(r.test());
      comm.send<int>(std::vector<int>{0}, 0, 1);
      while (!r.test()) {
        std::this_thread::yield();
      }
      EXPECT_EQ(r.take<int>().at(0), 42);
    }
  });
}

TEST(CommAsync, WaitAnyCompletesAllChannels) {
  constexpr int kPeers = 4;
  pmpi::run(kPeers + 1, [](Communicator& comm) {
    const int root = kPeers;  // last rank collects
    if (comm.rank() == root) {
      std::vector<Request> reqs;
      for (int src = 0; src < kPeers; ++src) {
        reqs.push_back(comm.irecv(src, 9));
      }
      std::vector<bool> seen(kPeers, false);
      for (int n = 0; n < kPeers; ++n) {
        const std::size_t which = pmpi::wait_any(reqs);
        ASSERT_LT(which, seen.size());
        EXPECT_FALSE(seen[which]);
        seen[which] = true;
        EXPECT_EQ(reqs[which].take<int>().at(0), static_cast<int>(which));
      }
    } else {
      comm.isend<int>(std::vector<int>{comm.rank()}, root, 9);
    }
  });
}

TEST(CommAsync, WaitAllDrainsRequests) {
  pmpi::run(3, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(1, 4));
      reqs.push_back(comm.irecv(2, 4));
      pmpi::wait_all(reqs);
      EXPECT_EQ(reqs[0].take<int>().at(0), 1);
      EXPECT_EQ(reqs[1].take<int>().at(0), 2);
    } else {
      comm.isend<int>(std::vector<int>{comm.rank()}, 0, 4);
    }
  });
}

TEST(CommAsync, TakeTwiceThrows) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.isend<int>(std::vector<int>{7}, 1, 0);
    } else {
      Request r = comm.irecv(0, 0);
      r.wait();
      (void)r.take_bytes();
      EXPECT_THROW((void)r.take_bytes(), Error);
    }
  });
}

TEST(CommAsync, TakeBeforeCompletionThrows) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request r = comm.irecv(0, 0);
      EXPECT_THROW((void)r.take_bytes(), Error);
      r.cancel();
      comm.recv<int>(0, 1);  // sync so the posted message isn't orphaned
      comm.recv<int>(0, 0);
    } else {
      comm.send<int>(std::vector<int>{1}, 1, 1);
      comm.send<int>(std::vector<int>{2}, 1, 0);
    }
  });
}

TEST(CommAsync, MovedFromRequestIsInvalid) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.isend<int>(std::vector<int>{5}, 1, 0);
    } else {
      Request a = comm.irecv(0, 0);
      Request b = std::move(a);
      EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
      b.wait();
      EXPECT_EQ(b.take<int>().at(0), 5);
    }
  });
}

TEST(CommAsync, EmptyRequestOpsThrow) {
  Request r;
  EXPECT_FALSE(r.valid());
  EXPECT_THROW(r.wait(), Error);
  EXPECT_THROW((void)r.test(), Error);
  EXPECT_THROW((void)r.take_bytes(), Error);
}

#ifndef NDEBUG
TEST(CommAsync, DuplicateIrecvChannelThrowsInDebug) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request a = comm.irecv(0, 6);
      EXPECT_THROW((void)comm.irecv(0, 6), CommError);
      a.cancel();
      comm.recv<int>(0, 6);
    } else {
      comm.send<int>(std::vector<int>{1}, 1, 6);
    }
  });
}

TEST(CommAsync, BlockingRecvOverlappingIrecvThrowsInDebug) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request a = comm.irecv(0, 6);
      EXPECT_THROW((void)comm.recv<int>(0, 6), CommError);
      a.wait();
      EXPECT_EQ(a.take<int>().at(0), 3);
    } else {
      comm.send<int>(std::vector<int>{3}, 1, 6);
    }
  });
}

TEST(CommAsync, CancelReleasesChannel) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request a = comm.irecv(0, 6);
      a.cancel();
      Request b = comm.irecv(0, 6);  // channel free again
      b.wait();
      EXPECT_EQ(b.take<int>().at(0), 8);
    } else {
      comm.send<int>(std::vector<int>{8}, 1, 6);
    }
  });
}
#endif  // !NDEBUG

// ---------------------------------------------------------------------
// Collective sweep: every collective × awkward rank counts × topology.
// Values are small exact integers so flat and tree reductions must agree
// bit-for-bit despite different association orders.

class CollectiveSweep
    : public ::testing::TestWithParam<std::tuple<int, CollectiveAlgo>> {
 protected:
  int ranks() const { return std::get<0>(GetParam()); }
  CollectiveAlgo algo() const { return std::get<1>(GetParam()); }

  std::shared_ptr<pmpi::Context> make_ctx() const {
    auto ctx = std::make_shared<pmpi::Context>(ranks());
    ctx->set_collective_algo(algo());
    return ctx;
  }
};

TEST_P(CollectiveSweep, BcastVector) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<double> data;
      if (comm.rank() == root) data = {1.0, 2.0, 3.0, 4.0};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 4u);
      EXPECT_DOUBLE_EQ(data[3], 4.0);
    }
  });
}

TEST_P(CollectiveSweep, BcastMatrix) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const Matrix ref = testing::random_matrix(7, 3, 21);
    Matrix m;
    if (comm.is_root()) m = ref;
    comm.bcast_matrix(m, 0);
    expect_matrix_near(m, ref, 0.0);
  });
}

TEST_P(CollectiveSweep, GatherMatrices) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const Matrix mine = testing::random_matrix(3 + comm.rank(), 2,
                                               100 + comm.rank());
    const std::vector<Matrix> all = comm.gather_matrices(mine, 0);
    if (comm.is_root()) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
      for (int src = 0; src < comm.size(); ++src) {
        expect_matrix_near(all[static_cast<std::size_t>(src)],
                           testing::random_matrix(3 + src, 2, 100 + src), 0.0);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveSweep, GathervVariableLengths) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    // Rank r contributes r+1 values, all equal to r.
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                             static_cast<double>(comm.rank()));
    std::vector<std::size_t> counts;
    const std::vector<double> all =
        comm.gatherv(std::span<const double>(mine), 0, &counts);
    if (comm.is_root()) {
      const int p = comm.size();
      ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
      std::size_t at = 0;
      for (int src = 0; src < p; ++src) {
        ASSERT_EQ(counts[static_cast<std::size_t>(src)],
                  static_cast<std::size_t>(src + 1));
        for (int k = 0; k <= src; ++k) {
          EXPECT_DOUBLE_EQ(all.at(at++), static_cast<double>(src));
        }
      }
      EXPECT_EQ(at, all.size());
    }
  });
}

TEST_P(CollectiveSweep, GathervEmptyContribution) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    // Odd ranks contribute nothing — exercises the zero-length frames.
    std::vector<double> mine;
    if (comm.rank() % 2 == 0) mine.assign(2, static_cast<double>(comm.rank()));
    const std::vector<double> all =
        comm.gatherv(std::span<const double>(mine), 0);
    if (comm.is_root()) {
      std::size_t expected = 0;
      for (int src = 0; src < comm.size(); src += 2) expected += 2;
      EXPECT_EQ(all.size(), expected);
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumExact) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const int p = comm.size();
    std::vector<double> v{static_cast<double>(comm.rank() + 1), 1.0};
    comm.reduce(std::span<double>(v), Op::Sum, 0);
    if (comm.is_root()) {
      EXPECT_DOUBLE_EQ(v[0], static_cast<double>(p) * (p + 1) / 2.0);
      EXPECT_DOUBLE_EQ(v[1], static_cast<double>(p));
    }
  });
}

TEST_P(CollectiveSweep, AllreduceMaxMinSum) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const int p = comm.size();
    const double r = static_cast<double>(comm.rank());
    std::vector<double> mx{r};
    comm.allreduce(std::span<double>(mx), Op::Max);
    EXPECT_DOUBLE_EQ(mx[0], static_cast<double>(p - 1));
    std::vector<double> mn{r};
    comm.allreduce(std::span<double>(mn), Op::Min);
    EXPECT_DOUBLE_EQ(mn[0], 0.0);
    std::vector<double> sm{r, 2.0};
    comm.allreduce(std::span<double>(sm), Op::Sum);
    EXPECT_DOUBLE_EQ(sm[0], static_cast<double>(p) * (p - 1) / 2.0);
    EXPECT_DOUBLE_EQ(sm[1], 2.0 * p);
  });
}

TEST_P(CollectiveSweep, AllgatherScalars) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const std::vector<double> all =
        comm.allgather_double(static_cast<double>(comm.rank() * 10));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int src = 0; src < comm.size(); ++src) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(src)],
                       static_cast<double>(src * 10));
    }
  });
}

TEST_P(CollectiveSweep, ScatterRows) {
  pmpi::run_on(make_ctx(), [](Communicator& comm) {
    const int p = comm.size();
    std::vector<Index> per_rank;
    Index total = 0;
    for (int r = 0; r < p; ++r) {
      per_rank.push_back(2 + r % 3);
      total += per_rank.back();
    }
    Matrix full;
    if (comm.is_root()) full = testing::random_matrix(total, 3, 77);
    const Matrix mine =
        comm.scatter_rows(full, std::span<const Index>(per_rank), 0);
    Index offset = 0;
    for (int r = 0; r < comm.rank(); ++r) {
      offset += per_rank[static_cast<std::size_t>(r)];
    }
    const Matrix ref = testing::random_matrix(total, 3, 77)
                           .block(offset, 0,
                                  per_rank[static_cast<std::size_t>(comm.rank())],
                                  3);
    expect_matrix_near(mine, ref, 0.0);
  });
}

TEST_P(CollectiveSweep, TreeAndFlatBitIdentical) {
  // The same job run under both topologies must produce identical
  // gather/allreduce results (integer payloads; order-insensitive sums).
  const auto run_with = [this](CollectiveAlgo algo) {
    auto ctx = std::make_shared<pmpi::Context>(ranks());
    ctx->set_collective_algo(algo);
    std::vector<double> out;
    pmpi::run_on(ctx, [&out](Communicator& comm) {
      std::vector<double> mine{static_cast<double>(comm.rank() + 1)};
      comm.allreduce(std::span<double>(mine), Op::Sum);
      const std::vector<double> all = comm.gatherv(
          std::span<const double>(mine), 0);
      if (comm.is_root()) out = all;
    });
    return out;
  };
  EXPECT_EQ(run_with(CollectiveAlgo::Flat), run_with(CollectiveAlgo::Tree));
}

INSTANTIATE_TEST_SUITE_P(
    RanksAlgos, CollectiveSweep,
    ::testing::Combine(::testing::Values(3, 5, 6, 7, 12),
                       ::testing::Values(CollectiveAlgo::Flat,
                                         CollectiveAlgo::Tree)),
    [](const ::testing::TestParamInfo<CollectiveSweep::ParamType>& param) {
      return "p" + std::to_string(std::get<0>(param.param)) +
             (std::get<1>(param.param) == CollectiveAlgo::Flat ? "Flat"
                                                               : "Tree");
    });

// Auto policy: small jobs keep the flat topologies, big jobs switch.
TEST(CollectivePolicy, AutoRespectsTreeMinRanks) {
  auto ctx = std::make_shared<pmpi::Context>(4);
  ctx->set_tree_min_ranks(8);
  EXPECT_EQ(ctx->collective_algo(), CollectiveAlgo::Auto);
  std::vector<double> out;
  pmpi::run_on(ctx, [&out](Communicator& comm) {
    std::vector<double> v{static_cast<double>(comm.rank())};
    comm.allreduce(std::span<double>(v), Op::Sum);
    if (comm.is_root()) out = v;
  });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
}

TEST(CollectivePolicy, BadEnvAlgoThrows) {
  ::setenv("PARSVD_COMM_ALGO", "bogus", 1);
  EXPECT_THROW(pmpi::Context(2), ConfigError);
  ::unsetenv("PARSVD_COMM_ALGO");
}

TEST(CollectivePolicy, EnvAlgoForcesTree) {
  ::setenv("PARSVD_COMM_ALGO", "tree", 1);
  pmpi::Context ctx(4);
  EXPECT_EQ(ctx.collective_algo(), CollectiveAlgo::Tree);
  ::unsetenv("PARSVD_COMM_ALGO");
}

}  // namespace
}  // namespace parsvd
