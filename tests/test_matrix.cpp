// Unit tests for the Matrix/Vector containers.
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "support/rng.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;

TEST(Vector, ConstructionAndFill) {
  Vector v(5, 2.0);
  EXPECT_EQ(v.size(), 5);
  for (Index i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(v[i], 2.0);
  v.fill(-1.0);
  EXPECT_DOUBLE_EQ(v[3], -1.0);
}

TEST(Vector, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Vector, HeadAndSegment) {
  Vector v{1, 2, 3, 4, 5};
  const Vector h = v.head(2);
  EXPECT_EQ(h.size(), 2);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
  const Vector s = v.segment(1, 3);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
  EXPECT_THROW(v.segment(3, 4), Error);
}

TEST(Vector, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(v.sum(), -1.0);
}

TEST(Vector, Norm2OverflowSafe) {
  Vector v(3, 1e200);
  EXPECT_NEAR(v.norm2(), std::sqrt(3.0) * 1e200, 1e186);
}

TEST(Vector, Arithmetic) {
  Vector a{1, 2}, b{3, 5};
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c[1], 5.0);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  const Vector d = 3.0 * a;
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_THROW(a += Vector{1.0}, Error);
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.size(), 6);
  EXPECT_DOUBLE_EQ(m(2, 1), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, InitializerListIsRowMajor) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, ColumnMajorStorage) {
  Matrix m{{1, 3}, {2, 4}};
  // Column 0 is {1, 2}, contiguous.
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[1], 2.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.data()[3], 4.0);
}

TEST(Matrix, ColSpanIsContiguousView) {
  Matrix m{{1, 3}, {2, 4}};
  auto c1 = m.col_span(1);
  ASSERT_EQ(c1.size(), 2u);
  c1[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
  const Matrix d = Matrix::diag(Vector{2, 5});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, GaussianIsDeterministicPerSeed) {
  Rng r1(5), r2(5);
  const Matrix a = Matrix::gaussian(4, 3, r1);
  const Matrix b = Matrix::gaussian(4, 3, r2);
  expect_matrix_near(a, b, 0.0);
}

TEST(Matrix, RowColExtraction) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector r1 = m.row(1);
  EXPECT_DOUBLE_EQ(r1[0], 3.0);
  EXPECT_DOUBLE_EQ(r1[1], 4.0);
  const Vector c0 = m.col(0);
  EXPECT_DOUBLE_EQ(c0[2], 5.0);
  EXPECT_THROW(m.row(3), Error);
  EXPECT_THROW(m.col(2), Error);
}

TEST(Matrix, BlockExtractionAndWrite) {
  Matrix m(4, 4);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 4; ++i) m(i, j) = static_cast<double>(10 * i + j);
  }
  const Matrix b = m.block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 23.0);

  Matrix target(4, 4, 0.0);
  target.set_block(2, 1, b);
  EXPECT_DOUBLE_EQ(target(2, 1), 12.0);
  EXPECT_DOUBLE_EQ(target(3, 2), 23.0);
  EXPECT_THROW(m.block(3, 3, 2, 2), Error);
  EXPECT_THROW(target.set_block(3, 3, b), Error);
}

TEST(Matrix, SetRowSetCol) {
  Matrix m(2, 3, 0.0);
  m.set_row(1, Vector{1, 2, 3});
  EXPECT_DOUBLE_EQ(m(1, 2), 3.0);
  m.set_col(0, Vector{7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW(m.set_row(1, Vector{1}), Error);
  EXPECT_THROW(m.set_col(0, Vector{1}), Error);
}

TEST(Matrix, Transpose) {
  const Matrix m = testing::random_matrix(37, 21, 99);
  const Matrix t = m.transposed();
  ASSERT_EQ(t.rows(), 21);
  ASSERT_EQ(t.cols(), 37);
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
    }
  }
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  const Matrix m = testing::random_matrix(50, 33, 7);
  expect_matrix_near(m.transposed().transposed(), m, 0.0);
}

TEST(Matrix, Norms) {
  Matrix m{{3, 0}, {0, -4}};
  EXPECT_DOUBLE_EQ(m.norm_fro(), 5.0);
  EXPECT_DOUBLE_EQ(m.norm_max(), 4.0);
  EXPECT_DOUBLE_EQ(m.norm_inf(), 4.0);  // max row abs-sum
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
  c = c - a;
  expect_matrix_near(c, b, 1e-15);
  c = 2.0 * a;
  EXPECT_DOUBLE_EQ(c(0, 1), 4.0);
  EXPECT_THROW(a += Matrix(3, 3), Error);
}

TEST(Matrix, HcatVcat) {
  Matrix a{{1}, {2}};
  Matrix b{{3, 4}, {5, 6}};
  const Matrix h = hcat(a, b);
  ASSERT_EQ(h.rows(), 2);
  ASSERT_EQ(h.cols(), 3);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 2), 6.0);

  Matrix c{{1, 2}};
  const Matrix v = vcat(c, b);
  ASSERT_EQ(v.rows(), 3);
  EXPECT_DOUBLE_EQ(v(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(v(2, 0), 5.0);
}

TEST(Matrix, HcatWithEmptyIsIdentityOp) {
  const Matrix a = testing::random_matrix(3, 2, 1);
  expect_matrix_near(hcat(Matrix{}, a), a, 0.0);
  expect_matrix_near(hcat(a, Matrix{}), a, 0.0);
  expect_matrix_near(vcat(Matrix{}, a), a, 0.0);
}

TEST(Matrix, HcatShapeMismatchThrows) {
  EXPECT_THROW(hcat(Matrix(2, 1), Matrix(3, 1)), Error);
  EXPECT_THROW(vcat(Matrix(1, 2), Matrix(1, 3)), Error);
}

TEST(Matrix, MultiBlockConcat) {
  std::vector<Matrix> blocks{Matrix(2, 1, 1.0), Matrix(2, 2, 2.0),
                             Matrix(2, 1, 3.0)};
  const Matrix h = hcat(blocks);
  ASSERT_EQ(h.cols(), 4);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(1, 3), 3.0);

  std::vector<Matrix> vblocks{Matrix(1, 2, 1.0), Matrix(3, 2, 2.0)};
  const Matrix v = vcat(vblocks);
  ASSERT_EQ(v.rows(), 4);
  EXPECT_DOUBLE_EQ(v(3, 1), 2.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
  EXPECT_THROW(max_abs_diff(a, Matrix(2, 2)), Error);
}

TEST(Matrix, ResizeReinitializes) {
  Matrix m(2, 2, 5.0);
  m.resize(3, 1, -1.0);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_DOUBLE_EQ(m(2, 0), -1.0);
}

TEST(Matrix, ToStringTruncates) {
  const Matrix m = testing::random_matrix(20, 20, 3);
  const std::string s = m.to_string(4);
  EXPECT_NE(s.find("Matrix 20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(Matrix, NegativeDimensionsThrow) {
  EXPECT_THROW(Matrix(-1, 2), Error);
  EXPECT_THROW(Vector(-3), Error);
}

TEST(Matrix, EmptyMatrixBehaves) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.size(), 0);
}

}  // namespace
}  // namespace parsvd
