// Tests of the observability layer (src/obs):
//   * TraceRing overwrite-oldest semantics and capacity rounding;
//   * thread identity mapping and the (pid, tid, start, -dur, name)
//     flush order across rings written by different threads;
//   * byte-identical Chrome trace JSON under a FakeClock — the property
//     the replayable-trace design hangs on;
//   * span emission from ThreadPool workers while the pool is armed
//     (the TSan leg runs this test to prove the hot path is race-free);
//   * the metrics registry: typed series, stable references, snapshots,
//     and the logger's per-level routing through the global registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"

namespace parsvd::obs {
namespace {

// ------------------------------------------------------------ TraceRing

TEST(TraceRing, OverwritesOldestAndCountsDrops) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::int64_t i = 0; i < 7; ++i) {
    ring.push({"e", i, 1});
  }
  EXPECT_EQ(ring.recorded(), 7u);
  EXPECT_EQ(ring.dropped(), 3u);
  const std::vector<TraceEvent> kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].start_ns, static_cast<std::int64_t>(i) + 3)
        << "snapshot must be the newest events, oldest first";
  }
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
}

// ------------------------------------------------- flush order / identity

// Run `body` on a fresh thread bound to the given trace track.
void on_track(int rank, int tid, const char* label,
              const std::function<void()>& body) {
  std::thread t([&] {
    set_thread_identity(rank, tid, label);
    body();
  });
  t.join();
}

TEST(TraceFlush, MultiThreadEventsSortByTrackThenTime) {
  FakeClock fake(0);
  set_clock(&fake);
  trace::reset();
  trace::arm(true);

  // Record out of track order on purpose; the flush must sort.
  on_track(1, 0, "rank-main", [&] {
    fake.set_ns(100);
    {
      PARSVD_TRACE_SCOPE("late");
      fake.advance_ns(50);
    }
    PARSVD_TRACE_INSTANT("ping");
  });
  on_track(0, 0, "rank-main", [&] {
    fake.set_ns(10);
    PARSVD_TRACE_SCOPE("outer");
    {
      PARSVD_TRACE_SCOPE("inner");
      fake.advance_ns(20);
    }
    fake.advance_ns(5);
  });
  on_track(-1, 5, "aux", [&] {
    fake.set_ns(7);
    PARSVD_TRACE_INSTANT("mark");
  });

  const std::vector<trace::FlushedEvent> evs = trace::snapshot();
  trace::arm(false);
  set_clock(nullptr);

  ASSERT_EQ(evs.size(), 5u);
  // Shared row (pid 0) first, then rank rows in order.
  EXPECT_STREQ(evs[0].event.name, "mark");
  EXPECT_EQ(evs[0].pid, 0);
  EXPECT_EQ(evs[0].tid, 5);
  EXPECT_LT(evs[0].event.dur_ns, 0);  // instant

  // Same start: the longer (parent) span precedes its child.
  EXPECT_STREQ(evs[1].event.name, "outer");
  EXPECT_EQ(evs[1].pid, 1);
  EXPECT_EQ(evs[1].event.start_ns, 10);
  EXPECT_EQ(evs[1].event.dur_ns, 25);
  EXPECT_STREQ(evs[2].event.name, "inner");
  EXPECT_EQ(evs[2].event.start_ns, 10);
  EXPECT_EQ(evs[2].event.dur_ns, 20);

  EXPECT_STREQ(evs[3].event.name, "late");
  EXPECT_EQ(evs[3].pid, 2);
  EXPECT_EQ(evs[3].event.start_ns, 100);
  EXPECT_EQ(evs[3].event.dur_ns, 50);
  EXPECT_STREQ(evs[4].event.name, "ping");
  EXPECT_EQ(evs[4].event.start_ns, 150);
}

TEST(TraceIdentity, AnonymousThreadGetsSharedFallbackTrack) {
  trace::reset();
  trace::arm(true);
  std::thread t([] { PARSVD_TRACE_INSTANT("anon.mark"); });
  t.join();
  trace::arm(false);
  bool found = false;
  for (const trace::FlushedEvent& fe : trace::snapshot()) {
    if (std::string(fe.event.name) == "anon.mark") {
      found = true;
      EXPECT_EQ(fe.pid, 0) << "unidentified threads land on the shared row";
      EXPECT_GE(fe.tid, 1000) << "fallback tids sit above assigned ones";
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceIdentity, RingCapacityAppliesToNewThreads) {
  trace::reset();
  trace::arm(true);
  trace::set_ring_capacity(8);
  const std::uint64_t dropped_before = trace::dropped();
  std::thread t([] {
    for (int i = 0; i < 20; ++i) PARSVD_TRACE_INSTANT("wrap.mark");
  });
  t.join();
  trace::set_ring_capacity(16384);  // restore the default for later tests
  trace::arm(false);
  EXPECT_EQ(trace::dropped() - dropped_before, 12u);
  std::uint64_t kept = 0;
  for (const trace::FlushedEvent& fe : trace::snapshot()) {
    if (std::string(fe.event.name) == "wrap.mark") ++kept;
  }
  EXPECT_EQ(kept, 8u);
}

// ------------------------------------------------ deterministic JSON

std::string deterministic_flush(FakeClock& fake) {
  trace::reset();
  trace::arm(true);
  on_track(0, 0, "rank-main", [&] {
    fake.set_ns(1000);
    {
      PARSVD_TRACE_SCOPE("pssvd.initialize");
      fake.advance_ns(2500);
      {
        PARSVD_TRACE_SCOPE("linalg.qr.factor");
        fake.advance_ns(700);
      }
    }
    PARSVD_TRACE_INSTANT("comm.timeout");
    {
      PARSVD_TRACE_SCOPE("stream.incorporate");
      fake.advance_ns(123);
    }
  });
  trace::arm(false);
  return trace::flush_json();
}

TEST(TraceFlush, FakeClockOutputIsByteIdentical) {
  FakeClock fake(0);
  set_clock(&fake);
  const std::string first = deterministic_flush(fake);
  const std::string second = deterministic_flush(fake);
  set_clock(nullptr);
  EXPECT_EQ(first, second);

  // Spot-check the Chrome trace-event shape Perfetto expects.
  EXPECT_NE(first.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(first.find("\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1"),
            std::string::npos);
  EXPECT_NE(first.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(first.find("\"rank-main\""), std::string::npos);
  // t0-normalized microsecond timestamps with fixed 3-digit fractions.
  EXPECT_NE(first.find("\"name\":\"pssvd.initialize\",\"pid\":1,\"tid\":0,"
                       "\"ts\":0.000,\"dur\":3.200"),
            std::string::npos);
  EXPECT_NE(first.find("\"name\":\"linalg.qr.factor\",\"pid\":1,\"tid\":0,"
                       "\"ts\":2.500,\"dur\":0.700"),
            std::string::npos);
  EXPECT_NE(first.find("\"s\":\"t\""), std::string::npos);  // the instant
  EXPECT_NE(first.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // PARSVD_TRACE_WALL_ANCHOR is off: the anchor must stay 0 so the
  // output carries no wall-clock bits.
  EXPECT_NE(first.find("\"wall_anchor_ns\":\"0\""), std::string::npos);
}

// ----------------------------------------------------- pool worker spans

TEST(TracePool, WorkersEmitSpansWhileArmed) {
  trace::reset();
  trace::arm(true);
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(
      0, 64,
      [&sum](std::size_t lo, std::size_t hi) {
        sum.fetch_add(hi - lo, std::memory_order_relaxed);
      },
      /*grain=*/4);
  trace::arm(false);
  EXPECT_EQ(sum.load(), 64u);

  std::uint64_t chunks = 0, fors = 0;
  for (const trace::FlushedEvent& fe : trace::snapshot()) {
    const std::string name = fe.event.name;
    if (name == "pool.chunk") {
      ++chunks;
      EXPECT_EQ(fe.pid, 0) << "pool spans live on the shared row";
    }
    if (name == "pool.parallel_for") ++fors;
  }
  EXPECT_EQ(fors, 1u);
  EXPECT_EQ(chunks, 16u);  // ceil(64 / grain 4), caller + workers combined
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramSemantics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(5);
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.track_max(7);
  g.track_max(99);
  g.track_max(12);
  EXPECT_EQ(g.max_value(), 99);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);

  Histogram h;
  h.record(0);     // bit width 0
  h.record(1);     // 1
  h.record(2);     // 2
  h.record(3);     // 2
  h.record(1024);  // 11
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("comm.bytes");
  a.add(7);
  // Enough distinct names to force rehash-like growth in a flat design;
  // the node-based maps must keep `a`'s address valid regardless.
  for (int i = 0; i < 64; ++i) {
    reg.counter("filler." + std::to_string(i)).add(1);
  }
  Counter& b = reg.counter("comm.bytes");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);

  reg.gauge("pool.queue_depth").set(3);
  reg.histogram("comm.payload_bytes").record(100);
  const std::vector<Registry::Sample> snap = reg.snapshot();
  ASSERT_FALSE(snap.empty());
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].name, snap[i].name) << "snapshot is name-sorted";
  }
  const std::string table = reg.format_table();
  EXPECT_NE(table.find("comm.bytes"), std::string::npos);
  EXPECT_NE(table.find("pool.queue_depth"), std::string::npos);

  reg.reset();
  EXPECT_EQ(b.value(), 0u) << "reset zeroes values but keeps refs valid";
  EXPECT_EQ(reg.gauge("pool.queue_depth").value(), 0);
}

TEST(Metrics, LoggerRoutesPerLevelCountsThroughGlobalRegistry) {
  Counter& infos = Registry::global().counter("log.messages.info");
  Counter& warns = Registry::global().counter("log.messages.warn");
  const std::uint64_t info0 = infos.value();
  const std::uint64_t warn0 = warns.value();
  log::write(log::Level::Info, "obs test: info line");
  log::write(log::Level::Warn, "obs test: warn line");
  log::write(log::Level::Warn, "obs test: warn line again");
  EXPECT_EQ(infos.value() - info0, 1u);
  EXPECT_EQ(warns.value() - warn0, 2u);
}

}  // namespace
}  // namespace parsvd::obs
