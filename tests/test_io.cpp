// IO tests: binary matrix/vector round-trips, CSV, and the chunked
// SnapshotStore including hyperslab reads and malformed-file handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/matrix_io.hpp"
#include "io/snapshot_store.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parsvd_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, MatrixBinaryRoundTrip) {
  const Matrix m = testing::random_matrix(17, 9, 1);
  io::write_matrix(path("m.bin"), m);
  expect_matrix_near(io::read_matrix(path("m.bin")), m, 0.0);
}

TEST_F(IoTest, EmptyMatrixRoundTrip) {
  io::write_matrix(path("e.bin"), Matrix{});
  EXPECT_TRUE(io::read_matrix(path("e.bin")).empty());
}

TEST_F(IoTest, VectorRoundTrip) {
  Vector v{1.5, -2.25, 1e-300, 1e300};
  io::write_vector(path("v.bin"), v);
  testing::expect_vector_near(io::read_vector(path("v.bin")), v, 0.0);
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(io::read_matrix(path("nope.bin")), IoError);
}

TEST_F(IoTest, ReadGarbageThrows) {
  std::ofstream out(path("garbage.bin"), std::ios::binary);
  out << "this is not a matrix";
  out.close();
  EXPECT_THROW(io::read_matrix(path("garbage.bin")), IoError);
}

TEST_F(IoTest, ReadTruncatedThrows) {
  const Matrix m = testing::random_matrix(10, 10, 2);
  io::write_matrix(path("t.bin"), m);
  std::filesystem::resize_file(path("t.bin"), 64);
  EXPECT_THROW(io::read_matrix(path("t.bin")), IoError);
}

TEST_F(IoTest, VectorFileRejectsMatrix) {
  io::write_matrix(path("m2.bin"), Matrix(3, 2, 1.0));
  EXPECT_THROW(io::read_vector(path("m2.bin")), IoError);
}

TEST_F(IoTest, CsvRoundTripNoHeader) {
  const Matrix m = testing::random_matrix(5, 3, 3);
  io::write_csv(path("m.csv"), m);
  expect_matrix_near(io::read_csv(path("m.csv")), m, 0.0);
}

TEST_F(IoTest, CsvRoundTripWithHeader) {
  const Matrix m = testing::random_matrix(4, 2, 4);
  io::write_csv(path("h.csv"), m, {"alpha", "beta"});
  expect_matrix_near(io::read_csv(path("h.csv")), m, 0.0);
  // Header text present in the file.
  std::ifstream in(path("h.csv"));
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "alpha,beta");
}

TEST_F(IoTest, CsvHeaderCountValidated) {
  EXPECT_THROW(io::write_csv(path("bad.csv"), Matrix(2, 2), {"only_one"}),
               Error);
}

TEST_F(IoTest, CsvEmptyFileGivesEmptyMatrix) {
  std::ofstream(path("empty.csv")).close();
  EXPECT_TRUE(io::read_csv(path("empty.csv")).empty());
}

// --------------------------------------------------------- SnapshotStore

TEST_F(IoTest, StoreRoundTripExactChunks) {
  const Matrix data = testing::random_matrix(20, 8, 5);
  {
    io::SnapshotWriter w(path("s.snap"), 20, /*chunk_cols=*/4);
    w.append_batch(data);
    w.close();
  }
  io::SnapshotReader r(path("s.snap"));
  EXPECT_EQ(r.rows(), 20);
  EXPECT_EQ(r.snapshots(), 8);
  EXPECT_EQ(r.chunk_cols(), 4);
  expect_matrix_near(r.read_snapshots(0, 8), data, 0.0);
}

TEST_F(IoTest, StorePartialFinalChunk) {
  const Matrix data = testing::random_matrix(10, 7, 6);
  {
    io::SnapshotWriter w(path("p.snap"), 10, 4);  // 7 = 4 + 3 (partial)
    w.append_batch(data);
    w.close();
  }
  io::SnapshotReader r(path("p.snap"));
  EXPECT_EQ(r.snapshots(), 7);
  expect_matrix_near(r.read_snapshots(0, 7), data, 0.0);
}

TEST_F(IoTest, StoreAppendOneByOne) {
  const Matrix data = testing::random_matrix(6, 5, 7);
  {
    io::SnapshotWriter w(path("o.snap"), 6, 2);
    for (Index j = 0; j < 5; ++j) w.append(data.col(j));
    EXPECT_EQ(w.snapshots_written(), 5);
    w.close();
  }
  io::SnapshotReader r(path("o.snap"));
  expect_matrix_near(r.read_snapshots(0, 5), data, 0.0);
}

TEST_F(IoTest, StoreHyperslabReads) {
  const Matrix data = testing::random_matrix(30, 12, 8);
  {
    io::SnapshotWriter w(path("hs.snap"), 30, 5);
    w.append_batch(data);
    w.close();
  }
  io::SnapshotReader r(path("hs.snap"));
  // Row block in the middle, column range crossing a chunk boundary.
  const Matrix slab = r.read_rows(7, 11, 3, 6);
  expect_matrix_near(slab, data.block(7, 3, 11, 6), 0.0);
}

TEST_F(IoTest, StorePartitionedReadsCoverMatrix) {
  // Simulate 3 ranks each reading a disjoint row block; together they
  // must reconstruct the full data (the parallel-IO pattern).
  const Matrix data = testing::random_matrix(25, 9, 9);
  {
    io::SnapshotWriter w(path("pr.snap"), 25, 4);
    w.append_batch(data);
    w.close();
  }
  std::vector<Matrix> blocks;
  const Index counts[3] = {9, 8, 8};
  Index offset = 0;
  for (int rank = 0; rank < 3; ++rank) {
    io::SnapshotReader r(path("pr.snap"));  // independent open per rank
    blocks.push_back(r.read_rows(offset, counts[rank], 0, 9));
    offset += counts[rank];
  }
  expect_matrix_near(vcat(blocks), data, 0.0);
}

TEST_F(IoTest, StoreOutOfRangeHyperslabThrows) {
  {
    io::SnapshotWriter w(path("r.snap"), 10, 2);
    w.append_batch(Matrix(10, 4, 1.0));
    w.close();
  }
  io::SnapshotReader r(path("r.snap"));
  EXPECT_THROW(r.read_rows(8, 5, 0, 1), Error);   // rows overflow
  EXPECT_THROW(r.read_rows(0, 1, 3, 5), Error);   // cols overflow
  EXPECT_THROW(r.read_rows(-1, 2, 0, 1), Error);  // negative
}

TEST_F(IoTest, StoreAppendShapeValidated) {
  io::SnapshotWriter w(path("shape.snap"), 8, 2);
  EXPECT_THROW(w.append(Vector(7)), Error);
  EXPECT_THROW(w.append_batch(Matrix(9, 2, 0.0)), Error);
}

TEST_F(IoTest, StoreWriteAfterCloseThrows) {
  io::SnapshotWriter w(path("closed.snap"), 4, 2);
  w.append(Vector(4, 1.0));
  w.close();
  EXPECT_THROW(w.append(Vector(4, 1.0)), Error);
}

TEST_F(IoTest, StoreRejectsForeignFile) {
  io::write_matrix(path("notstore.bin"), Matrix(2, 2, 1.0));
  EXPECT_THROW(io::SnapshotReader r(path("notstore.bin")), IoError);
}

TEST_F(IoTest, StoreHeaderCountsVisibleBeforeClose) {
  // Destructor-close path: writer goes out of scope without close().
  const Matrix data = testing::random_matrix(5, 3, 10);
  {
    io::SnapshotWriter w(path("d.snap"), 5, 2);
    w.append_batch(data);
  }
  io::SnapshotReader r(path("d.snap"));
  EXPECT_EQ(r.snapshots(), 3);
  expect_matrix_near(r.read_snapshots(0, 3), data, 0.0);
}

TEST_F(IoTest, LargeChunkSingle) {
  // chunk wider than total snapshots.
  const Matrix data = testing::random_matrix(12, 3, 11);
  {
    io::SnapshotWriter w(path("wide.snap"), 12, 64);
    w.append_batch(data);
    w.close();
  }
  io::SnapshotReader r(path("wide.snap"));
  expect_matrix_near(r.read_snapshots(0, 3), data, 0.0);
}

}  // namespace
}  // namespace parsvd
