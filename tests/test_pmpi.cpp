// Message-passing runtime tests: point-to-point semantics, FIFO/tag
// matching, every collective against hand-computed results, rank sweeps,
// error propagation and deadlock-free aborts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "pmpi/comm.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using pmpi::Op;
using testing::expect_matrix_near;

TEST(Pmpi, SingleRankRuns) {
  bool ran = false;
  pmpi::run(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    EXPECT_TRUE(comm.is_root());
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(Pmpi, InvalidSizeThrows) {
  EXPECT_THROW(pmpi::run(0, [](Communicator&) {}), Error);
}

TEST(Pmpi, PointToPointDelivers) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      comm.send<double>(data, 1, 7);
    } else {
      const std::vector<double> got = comm.recv<double>(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST(Pmpi, FifoOrderPerChannel) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const std::vector<int> msg{i};
        comm.send<int>(msg, 1, 0);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        const std::vector<int> got = comm.recv<int>(0, 0);
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0], i);
      }
    }
  });
}

TEST(Pmpi, TagsMatchIndependently) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(std::vector<int>{111}, 1, 1);
      comm.send<int>(std::vector<int>{222}, 1, 2);
    } else {
      // Receive in reverse tag order: matching is by tag, not arrival.
      EXPECT_EQ(comm.recv<int>(0, 2).at(0), 222);
      EXPECT_EQ(comm.recv<int>(0, 1).at(0), 111);
    }
  });
}

TEST(Pmpi, NegativeUserTagRejected) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send<int>(std::vector<int>{1}, 1, -1), Error);
      comm.send<int>(std::vector<int>{1}, 1, 0);  // unblock peer
    } else {
      comm.recv<int>(0, 0);
    }
  });
}

TEST(Pmpi, MatrixRoundTripPreservesShape) {
  pmpi::run(2, [](Communicator& comm) {
    const Matrix m = testing::random_matrix(5, 3, 50);
    if (comm.rank() == 0) {
      comm.send_matrix(m, 1, 3);
    } else {
      const Matrix got = comm.recv_matrix(0, 3);
      expect_matrix_near(got, m, 0.0);
    }
  });
}

TEST(Pmpi, EmptyMatrixTravels) {
  pmpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_matrix(Matrix{}, 1, 0);
    } else {
      const Matrix got = comm.recv_matrix(0, 0);
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Pmpi, BarrierSynchronizes) {
  // All ranks must reach phase 1 before any proceeds to phase 2.
  std::atomic<int> in_phase1{0};
  std::atomic<bool> violated{false};
  pmpi::run(4, [&](Communicator& comm) {
    in_phase1.fetch_add(1);
    comm.barrier();
    if (in_phase1.load() != 4) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

class BcastSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BcastSweep, AllRanksReceive) {
  const auto [size, root] = GetParam();
  if (root >= size) GTEST_SKIP();
  pmpi::run(size, [root = root](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == root) data = {1.0, 2.0, 3.0, 4.0};
    comm.bcast(data, root);
    ASSERT_EQ(data.size(), 4u);
    EXPECT_DOUBLE_EQ(data[3], 4.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankRootCombos, BcastSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              8),
                                            ::testing::Values(0, 1, 3)));

TEST(Pmpi, BcastMatrixFromNonzeroRoot) {
  pmpi::run(3, [](Communicator& comm) {
    Matrix m;
    if (comm.rank() == 2) m = testing::random_matrix(4, 2, 51);
    comm.bcast_matrix(m, 2);
    const Matrix expected = testing::random_matrix(4, 2, 51);
    expect_matrix_near(m, expected, 0.0);
  });
}

TEST(Pmpi, BcastScalarHelpers) {
  pmpi::run(4, [](Communicator& comm) {
    double d = comm.is_root() ? 3.25 : 0.0;
    comm.bcast_double(d, 0);
    EXPECT_DOUBLE_EQ(d, 3.25);
    Index i = comm.is_root() ? 77 : 0;
    comm.bcast_index(i, 0);
    EXPECT_EQ(i, 77);
  });
}

TEST(Pmpi, GatherMatricesInRankOrder) {
  pmpi::run(4, [](Communicator& comm) {
    Matrix local(2, 1, static_cast<double>(comm.rank()));
    const std::vector<Matrix> all = comm.gather_matrices(local, 0);
    if (comm.is_root()) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)](0, 0),
                         static_cast<double>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Pmpi, GathervConcatenatesWithCounts) {
  pmpi::run(3, [](Communicator& comm) {
    // Rank r contributes r+1 values, all equal to r.
    std::vector<double> local(static_cast<std::size_t>(comm.rank() + 1),
                              static_cast<double>(comm.rank()));
    std::vector<std::size_t> counts;
    const std::vector<double> all = comm.gatherv<double>(local, 0, &counts);
    if (comm.is_root()) {
      ASSERT_EQ(counts.size(), 3u);
      EXPECT_EQ(counts[0], 1u);
      EXPECT_EQ(counts[1], 2u);
      EXPECT_EQ(counts[2], 3u);
      ASSERT_EQ(all.size(), 6u);
      EXPECT_DOUBLE_EQ(all[0], 0.0);
      EXPECT_DOUBLE_EQ(all[2], 1.0);
      EXPECT_DOUBLE_EQ(all[5], 2.0);
    }
  });
}

TEST(Pmpi, AllgatherVisibleEverywhere) {
  pmpi::run(5, [](Communicator& comm) {
    const std::vector<double> all =
        comm.allgather_double(static_cast<double>(comm.rank() * 10));
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 10.0);
    }
    const std::vector<Index> idx = comm.allgather_index(comm.rank() + 100);
    EXPECT_EQ(idx[3], 103);
  });
}

TEST(Pmpi, ScatterRowsPartitions) {
  pmpi::run(3, [](Communicator& comm) {
    Matrix full;
    if (comm.is_root()) {
      full = Matrix(6, 2);
      for (Index i = 0; i < 6; ++i) {
        for (Index j = 0; j < 2; ++j) full(i, j) = static_cast<double>(10 * i + j);
      }
    }
    const std::vector<Index> counts{1, 2, 3};
    const Matrix mine = comm.scatter_rows(full, counts, 0);
    ASSERT_EQ(mine.rows(), counts[static_cast<std::size_t>(comm.rank())]);
    ASSERT_EQ(mine.cols(), 2);
    // Row offset of this rank: sum of previous counts.
    Index offset = 0;
    for (int r = 0; r < comm.rank(); ++r) offset += counts[static_cast<std::size_t>(r)];
    EXPECT_DOUBLE_EQ(mine(0, 0), static_cast<double>(10 * offset));
  });
}

TEST(Pmpi, ReduceSumAtRoot) {
  pmpi::run(4, [](Communicator& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()),
                             1.0};
    comm.reduce(data, Op::Sum, 0);
    if (comm.is_root()) {
      EXPECT_DOUBLE_EQ(data[0], 0 + 1 + 2 + 3);
      EXPECT_DOUBLE_EQ(data[1], 4.0);
    }
  });
}

TEST(Pmpi, AllreduceMaxMin) {
  pmpi::run(4, [](Communicator& comm) {
    const double mx =
        comm.allreduce_scalar(static_cast<double>(comm.rank()), Op::Max);
    EXPECT_DOUBLE_EQ(mx, 3.0);
    const double mn =
        comm.allreduce_scalar(static_cast<double>(comm.rank()), Op::Min);
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST(Pmpi, AllreduceVectorSum) {
  pmpi::run(3, [](Communicator& comm) {
    std::vector<double> data{1.0, static_cast<double>(comm.rank())};
    comm.allreduce(data, Op::Sum);
    EXPECT_DOUBLE_EQ(data[0], 3.0);
    EXPECT_DOUBLE_EQ(data[1], 3.0);
  });
}

TEST(Pmpi, CommVolumeAccounted) {
  auto ctx = pmpi::run_with_stats(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(std::vector<double>(100, 1.0), 1, 0);
    } else {
      comm.recv<double>(0, 0);
    }
  });
  EXPECT_EQ(ctx->total_bytes(), 100 * sizeof(double));
  EXPECT_EQ(ctx->rank_bytes(0), 100 * sizeof(double));
  EXPECT_EQ(ctx->rank_bytes(1), 0u);
  EXPECT_EQ(ctx->total_messages(), 1u);
}

TEST(Pmpi, RankExceptionPropagatesWithoutDeadlock) {
  // Rank 1 dies before sending; rank 0 is blocked in recv. abort_job
  // must wake rank 0 and the original error must surface.
  EXPECT_THROW(pmpi::run(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 1) {
                             throw ConfigError("rank 1 exploded");
                           }
                           comm.recv<double>(1, 0);  // would deadlock
                         }),
               ConfigError);
}

TEST(Pmpi, BarrierAbortsOnPeerFailure) {
  EXPECT_THROW(pmpi::run(3,
                         [](Communicator& comm) {
                           if (comm.rank() == 2) {
                             throw ConfigError("died before barrier");
                           }
                           comm.barrier();
                         }),
               ConfigError);
}

TEST(Pmpi, PeerRangeValidated) {
  pmpi::run(2, [](Communicator& comm) {
    EXPECT_THROW(comm.send<int>(std::vector<int>{1}, 5, 0), Error);
    EXPECT_THROW(comm.recv<int>(-1, 0), Error);
  });
}

TEST(Pmpi, ManyRanksStress) {
  // Ring exchange with 16 ranks: each sends to (r+1) % p and receives
  // from (r-1+p) % p, twice, with a barrier between rounds.
  pmpi::run(16, [](Communicator& comm) {
    const int p = comm.size();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    for (int round = 0; round < 2; ++round) {
      comm.send<int>(std::vector<int>{comm.rank() * 100 + round}, next, round);
      const std::vector<int> got = comm.recv<int>(prev, round);
      EXPECT_EQ(got.at(0), prev * 100 + round);
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace parsvd
