// Brand incremental-SVD baseline tests: agreement with the batch SVD and
// with the Levy-Lindenbaum update, right-vector tracking, long-stream
// orthogonality (the periodic re-orthonormalization), forget-factor
// equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/incremental_brand.hpp"
#include "core/streaming.hpp"
#include "linalg/blas.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::ortho_defect;
namespace wl = workloads;

void stream_in(SvdBase& s, const Matrix& data, Index batch) {
  wl::MatrixBatchSource src(data);
  s.initialize(src.next_batch(batch));
  while (!src.exhausted()) s.incorporate_data(src.next_batch(batch));
}

TEST(IncrementalBrand, MatchesBatchSvdOnLowRankData) {
  Rng rng(500);
  const Matrix data = wl::synthetic_low_rank(
      120, 60, wl::geometric_spectrum(5, 10.0, 0.4), rng);
  StreamingOptions opts;
  opts.num_modes = 8;
  opts.forget_factor = 1.0;
  IncrementalSVD s(opts);
  stream_in(s, data, 12);

  const SvdResult ref = svd(data);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(s.singular_values()[i], ref.s[i], 1e-8 * ref.s[0]);
  }
  const Vector errs =
      post::mode_errors_l2(s.modes().left_cols(5), ref.u.left_cols(5));
  for (Index j = 0; j < 5; ++j) EXPECT_LT(errs[j], 1e-6) << "mode " << j;
}

TEST(IncrementalBrand, AgreesWithLevyLindenbaum) {
  // Same options, same stream: the two updates compute the same
  // mathematical object at ff = 1 (and approximately for ff < 1).
  wl::BurgersConfig cfg;
  cfg.grid_points = 400;
  cfg.snapshots = 100;
  const Matrix data = wl::Burgers(cfg).snapshot_matrix();

  for (double ff : {1.0, 0.9}) {
    StreamingOptions opts;
    opts.num_modes = 6;
    opts.forget_factor = ff;
    SerialStreamingSVD ll(opts);
    IncrementalSVD brand(opts);
    stream_in(ll, data, 20);
    stream_in(brand, data, 20);
    for (Index i = 0; i < 6; ++i) {
      EXPECT_NEAR(brand.singular_values()[i], ll.singular_values()[i],
                  1e-6 * ll.singular_values()[0])
          << "ff=" << ff << " sigma " << i;
    }
    const Vector errs = post::mode_errors_l2(brand.modes(), ll.modes());
    for (Index j = 0; j < 4; ++j) {
      EXPECT_LT(errs[j], 1e-4) << "ff=" << ff << " mode " << j;
    }
  }
}

TEST(IncrementalBrand, RightVectorTrackingReconstructsStream) {
  Rng rng(501);
  const Matrix data = wl::synthetic_low_rank(
      80, 50, wl::geometric_spectrum(4, 5.0, 0.5), rng);
  StreamingOptions opts;
  opts.num_modes = 6;
  opts.forget_factor = 1.0;
  IncrementalSVD s(opts, /*track_right_vectors=*/true);
  stream_in(s, data, 10);

  ASSERT_EQ(s.right_vectors().rows(), 50);
  ASSERT_EQ(s.right_vectors().cols(), s.modes().cols());
  const Matrix rec = s.reconstruct_stream();
  testing::expect_matrix_near(rec, data, 1e-8);
}

TEST(IncrementalBrand, RightVectorsOrthonormal) {
  Rng rng(502);
  const Matrix data = wl::synthetic_low_rank(
      60, 40, wl::geometric_spectrum(4, 3.0, 0.5), rng);
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.forget_factor = 1.0;
  IncrementalSVD s(opts, true);
  stream_in(s, data, 8);
  EXPECT_LT(ortho_defect(s.right_vectors()), 1e-9);
}

TEST(IncrementalBrand, RightVectorsRequireOptIn) {
  StreamingOptions opts;
  opts.num_modes = 2;
  IncrementalSVD s(opts);
  s.initialize(testing::random_matrix(10, 5, 503));
  EXPECT_THROW(s.right_vectors(), Error);
  EXPECT_THROW(s.reconstruct_stream(), Error);
}

TEST(IncrementalBrand, LongStreamStaysOrthonormal) {
  // 100 updates crosses the re-orthonormalization interval three times;
  // drift must stay at the eps level.
  Rng rng(504);
  StreamingOptions opts;
  opts.num_modes = 5;
  opts.forget_factor = 0.99;
  IncrementalSVD s(opts);
  s.initialize(Matrix::gaussian(200, 8, rng));
  for (int i = 0; i < 100; ++i) {
    Matrix batch = Matrix::gaussian(200, 4, rng);
    s.incorporate_data(batch);
  }
  EXPECT_LT(ortho_defect(s.modes()), 1e-10);
  EXPECT_EQ(s.iterations(), 100);
}

TEST(IncrementalBrand, WeightedStreamSupported) {
  const Index m = 50;
  Rng rng(505);
  Vector w(m);
  for (Index i = 0; i < m; ++i) w[i] = rng.uniform(0.5, 2.0);
  StreamingOptions opts;
  opts.num_modes = 3;
  opts.forget_factor = 1.0;
  opts.row_weights = w;
  IncrementalSVD s(opts, true);
  const Matrix data = testing::random_matrix(m, 30, 506);
  stream_in(s, data, 10);
  // physical_modes W-orthonormal (inherited machinery).
  const Matrix phi = s.physical_modes();
  double worst = 0.0;
  for (Index a = 0; a < 3; ++a) {
    for (Index c = 0; c < 3; ++c) {
      double sum = 0.0;
      for (Index i = 0; i < m; ++i) sum += phi(i, a) * w[i] * phi(i, c);
      worst = std::max(worst, std::fabs(sum - (a == c ? 1.0 : 0.0)));
    }
  }
  EXPECT_LT(worst, 1e-9);
}

TEST(IncrementalBrand, ApiContract) {
  StreamingOptions opts;
  opts.num_modes = 2;
  IncrementalSVD s(opts);
  EXPECT_THROW(s.incorporate_data(Matrix(3, 1, 1.0)), Error);
  s.initialize(Matrix(3, 2, 1.0));
  EXPECT_THROW(s.initialize(Matrix(3, 2, 1.0)), Error);
  EXPECT_THROW(s.incorporate_data(Matrix(4, 1, 1.0)), Error);
}

TEST(IncrementalBrand, RandomizedInnerPath) {
  Rng rng(507);
  const Matrix data = wl::synthetic_low_rank(
      150, 60, wl::geometric_spectrum(4, 8.0, 0.4), rng);
  StreamingOptions det;
  det.num_modes = 4;
  det.forget_factor = 1.0;
  StreamingOptions rnd = det;
  rnd.low_rank = true;
  rnd.randomized.oversampling = 10;
  rnd.randomized.power_iterations = 2;
  IncrementalSVD sd(det), sr(rnd);
  stream_in(sd, data, 15);
  stream_in(sr, data, 15);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(sr.singular_values()[i], sd.singular_values()[i],
                1e-3 * sd.singular_values()[0]);
  }
}

}  // namespace
}  // namespace parsvd
