// Unit tests for src/support: RNG, timers, thread pool, env parsing,
// error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <thread>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace parsvd {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit in 1000 draws
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent(23);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(29), b(29);
  Rng sa = a.split(5), sb = b.split(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, FillGaussianFillsAll) {
  Rng rng(31);
  std::vector<double> buf(257, 0.0);
  rng.fill_gaussian(buf.data(), buf.size());
  int zeros = 0;
  for (double v : buf) {
    if (v == 0.0) ++zeros;
  }
  EXPECT_EQ(zeros, 0);
}

// ---------------------------------------------------------------- Timer

TEST(Stopwatch, AccumulatesLaps) {
  Stopwatch w;
  w.start();
  const double lap1 = w.stop();
  w.start();
  const double lap2 = w.stop();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  EXPECT_EQ(w.laps(), 2u);
  EXPECT_NEAR(w.total_seconds(), lap1 + lap2, 1e-12);
}

TEST(Stopwatch, StopWithoutStartIsZero) {
  Stopwatch w;
  EXPECT_EQ(w.stop(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
}

TEST(Stopwatch, ResetClears) {
  Stopwatch w;
  w.start();
  w.stop();
  w.reset();
  EXPECT_EQ(w.total_seconds(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
}

TEST(TimingRegistry, RecordsStats) {
  TimingRegistry reg;
  reg.record("phase", 1.0);
  reg.record("phase", 3.0);
  reg.record("other", 0.5);
  const TimingStats s = reg.stats("phase");
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.total, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(TimingRegistry, UnknownSectionIsEmpty) {
  TimingRegistry reg;
  const TimingStats s = reg.stats("nope");
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(TimingRegistry, SnapshotSortedByName) {
  TimingRegistry reg;
  reg.record("b", 1.0);
  reg.record("a", 1.0);
  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].first, "b");
}

TEST(TimingRegistry, FormatTableContainsSections) {
  TimingRegistry reg;
  reg.record("gather", 0.25);
  const std::string table = reg.format_table();
  EXPECT_NE(table.find("gather"), std::string::npos);
  EXPECT_NE(table.find("count"), std::string::npos);
}

TEST(ScopedTimer, RecordsOnDestruction) {
  TimingRegistry reg;
  {
    ScopedTimer t("scope", reg);
  }
  EXPECT_EQ(reg.stats("scope").count, 1u);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          0, 100,
          [&](std::size_t lo, std::size_t) {
            if (lo == 0) throw std::runtime_error("boom");
          },
          1),
      std::runtime_error);
}

TEST(ThreadPool, ExplicitGrainRespected) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(hi - lo, 10u);
        chunks.fetch_add(1);
      },
      10);
  EXPECT_EQ(chunks.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

// ------------------------------------------------------------------ env

TEST(Env, MissingReturnsFallback) {
  unsetenv("PARSVD_TEST_ENV_X");
  EXPECT_EQ(env::get_int("PARSVD_TEST_ENV_X", 5), 5);
  EXPECT_DOUBLE_EQ(env::get_double("PARSVD_TEST_ENV_X", 2.5), 2.5);
  EXPECT_TRUE(env::get_bool("PARSVD_TEST_ENV_X", true));
  EXPECT_EQ(env::get_string("PARSVD_TEST_ENV_X", "d"), "d");
}

TEST(Env, ParsesInt) {
  setenv("PARSVD_TEST_ENV_I", "42", 1);
  EXPECT_EQ(env::get_int("PARSVD_TEST_ENV_I", 0), 42);
  setenv("PARSVD_TEST_ENV_I", "-7", 1);
  EXPECT_EQ(env::get_int("PARSVD_TEST_ENV_I", 0), -7);
  unsetenv("PARSVD_TEST_ENV_I");
}

TEST(Env, MalformedIntFallsBack) {
  setenv("PARSVD_TEST_ENV_I", "12abc", 1);
  EXPECT_EQ(env::get_int("PARSVD_TEST_ENV_I", 9), 9);
  unsetenv("PARSVD_TEST_ENV_I");
}

TEST(Env, ParsesDouble) {
  setenv("PARSVD_TEST_ENV_D", "0.95", 1);
  EXPECT_DOUBLE_EQ(env::get_double("PARSVD_TEST_ENV_D", 0.0), 0.95);
  unsetenv("PARSVD_TEST_ENV_D");
}

TEST(Env, ParsesBoolVariants) {
  for (const char* t : {"1", "true", "YES", "On"}) {
    setenv("PARSVD_TEST_ENV_B", t, 1);
    EXPECT_TRUE(env::get_bool("PARSVD_TEST_ENV_B", false)) << t;
  }
  for (const char* f : {"0", "false", "NO", "Off"}) {
    setenv("PARSVD_TEST_ENV_B", f, 1);
    EXPECT_FALSE(env::get_bool("PARSVD_TEST_ENV_B", true)) << f;
  }
  setenv("PARSVD_TEST_ENV_B", "maybe", 1);
  EXPECT_TRUE(env::get_bool("PARSVD_TEST_ENV_B", true));
  unsetenv("PARSVD_TEST_ENV_B");
}

// ---------------------------------------------------------------- errors

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    PARSVD_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("one is not two"), std::string::npos);
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorMacros, CheckPassesSilently) {
  EXPECT_NO_THROW(PARSVD_CHECK(true, "fine"));
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw DimensionError("d"), Error);
  EXPECT_THROW(throw ConvergenceError("c"), Error);
  EXPECT_THROW(throw IoError("i"), Error);
  EXPECT_THROW(throw CommError("m"), Error);
  EXPECT_THROW(throw ConfigError("g"), Error);
}

}  // namespace
}  // namespace parsvd
