// APMOS distributed-SVD tests: agreement with the serial SVD, rank-count
// invariance, truncation (r1/r2) behaviour, randomized root SVD.
#include <gtest/gtest.h>

#include <mutex>

#include "core/apmos.hpp"
#include "linalg/blas.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using testing::expect_vector_near;
using testing::ortho_defect;
using workloads::partition_rows;

/// Run APMOS over p ranks on row-blocks of `a` and reassemble the global
/// mode matrix.
ApmosResult run_apmos(const Matrix& a, int p, const ApmosOptions& opts) {
  std::vector<Matrix> u_blocks(static_cast<std::size_t>(p));
  Vector s;
  std::mutex mu;
  pmpi::run(p, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), p, comm.rank());
    const Matrix local = a.block(part.offset, 0, part.count, a.cols());
    ApmosResult res = apmos_svd(comm, local, opts);
    std::lock_guard<std::mutex> lock(mu);
    u_blocks[static_cast<std::size_t>(comm.rank())] = std::move(res.u_local);
    if (comm.is_root()) s = std::move(res.s);
  });
  return {vcat(u_blocks), std::move(s), {}};
}

Matrix burgers_data() {
  workloads::BurgersConfig cfg;
  cfg.grid_points = 512;
  cfg.snapshots = 120;
  return workloads::Burgers(cfg).snapshot_matrix();
}

TEST(Apmos, SingularValuesMatchSerialSvd) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 50;
  opts.r2 = 5;
  const ApmosResult res = run_apmos(a, 4, opts);
  const SvdResult serial = svd(a);
  ASSERT_EQ(res.s.size(), 5);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(res.s[i], serial.s[i], 1e-6 * serial.s[0]) << "sigma " << i;
  }
}

TEST(Apmos, ModesMatchSerialSvd) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 50;
  opts.r2 = 5;
  const ApmosResult res = run_apmos(a, 4, opts);
  const SvdResult serial = svd(a);
  const Vector errs =
      post::mode_errors_l2(res.u_local, serial.u.left_cols(5));
  for (Index j = 0; j < errs.size(); ++j) {
    EXPECT_LT(errs[j], 1e-5) << "mode " << j;
  }
}

TEST(Apmos, GlobalModesOrthonormal) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 40;
  opts.r2 = 4;
  const ApmosResult res = run_apmos(a, 3, opts);
  EXPECT_LT(ortho_defect(res.u_local), 1e-6);
}

TEST(Apmos, RankCountInvariance) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 30;
  opts.r2 = 4;
  const ApmosResult r1 = run_apmos(a, 1, opts);
  for (int p : {2, 4, 5}) {
    const ApmosResult rp = run_apmos(a, p, opts);
    expect_vector_near(rp.s, r1.s, 1e-7 * r1.s[0]);
    const Vector errs = post::mode_errors_l2(rp.u_local, r1.u_local);
    for (Index j = 0; j < errs.size(); ++j) {
      EXPECT_LT(errs[j], 1e-5) << "p=" << p << " mode " << j;
    }
  }
}

TEST(Apmos, ExactOnPlantedLowRank) {
  Rng rng(200);
  const Vector spectrum = workloads::geometric_spectrum(6, 10.0, 0.5);
  const Matrix a = workloads::synthetic_low_rank(200, 40, spectrum, rng);
  ApmosOptions opts;
  opts.r1 = 10;
  opts.r2 = 6;
  const ApmosResult res = run_apmos(a, 4, opts);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(res.s[i], spectrum[i], 1e-8 * spectrum[0]);
  }
}

TEST(Apmos, SmallR1DegradesGracefully) {
  // r1 below the effective rank loses accuracy but must not blow up:
  // the leading mode is still recovered well.
  const Matrix a = burgers_data();
  ApmosOptions tight;
  tight.r1 = 3;
  tight.r2 = 3;
  const ApmosResult res = run_apmos(a, 4, tight);
  const SvdResult serial = svd(a);
  EXPECT_NEAR(res.s[0], serial.s[0], 1e-3 * serial.s[0]);
  EXPECT_GT(post::mode_cosine(res.u_local, 0, serial.u, 0), 0.999);
}

TEST(Apmos, R2LimitsReturnedModes) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 20;
  opts.r2 = 2;
  const ApmosResult res = run_apmos(a, 2, opts);
  EXPECT_EQ(res.s.size(), 2);
  EXPECT_EQ(res.u_local.cols(), 2);
}

TEST(Apmos, RandomizedRootSvdClose) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 30;
  opts.r2 = 4;
  opts.low_rank = true;
  opts.randomized.oversampling = 10;
  opts.randomized.power_iterations = 2;
  const ApmosResult res = run_apmos(a, 4, opts);
  const SvdResult serial = svd(a);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(res.s[i], serial.s[i], 1e-3 * serial.s[0]) << "sigma " << i;
  }
}

TEST(Apmos, SingularValuesConsistentAcrossRanks) {
  const Matrix a = burgers_data();
  ApmosOptions opts;
  opts.r1 = 20;
  opts.r2 = 3;
  std::vector<Vector> s_per_rank(3);
  pmpi::run(3, [&](Communicator& comm) {
    const auto part = partition_rows(a.rows(), 3, comm.rank());
    const Matrix local = a.block(part.offset, 0, part.count, a.cols());
    const ApmosResult res = apmos_svd(comm, local, opts);
    s_per_rank[static_cast<std::size_t>(comm.rank())] = res.s;
  });
  for (int r = 1; r < 3; ++r) {
    expect_vector_near(s_per_rank[static_cast<std::size_t>(r)], s_per_rank[0],
                       0.0);
  }
}

TEST(Apmos, GenerateRightVectorsShapes) {
  const Matrix a = testing::random_matrix(30, 12, 201);
  const auto [v, s] = generate_right_vectors(a, 5, SvdMethod::Jacobi);
  EXPECT_EQ(v.rows(), 12);
  EXPECT_EQ(v.cols(), 5);
  EXPECT_EQ(s.size(), 5);
  EXPECT_LT(ortho_defect(v), 1e-12);
}

TEST(Apmos, OptionValidation) {
  pmpi::run(1, [](Communicator& comm) {
    ApmosOptions bad;
    bad.r1 = 0;
    EXPECT_THROW(apmos_svd(comm, Matrix(4, 2, 1.0), bad), Error);
    ApmosOptions bad2;
    bad2.r2 = -1;
    EXPECT_THROW(apmos_svd(comm, Matrix(4, 2, 1.0), bad2), Error);
  });
}

}  // namespace
}  // namespace parsvd
