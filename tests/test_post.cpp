// Post-processing tests: sign alignment, mode errors, principal angles,
// spectrum/reconstruction metrics, and the PGM/ASCII exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "test_utils.hpp"
#include "workloads/lowrank.hpp"

namespace parsvd {
namespace {

using testing::expect_matrix_near;
constexpr double kPi = 3.14159265358979323846;

TEST(AlignSigns, FlipsAntiParallelColumns) {
  Matrix ref = testing::random_matrix(10, 3, 1);
  Matrix flipped = ref;
  scal(-1.0, flipped.col_span(1));
  const Matrix aligned = post::align_signs(flipped, ref);
  expect_matrix_near(aligned, ref, 0.0);
}

TEST(AlignSigns, LeavesAlignedAlone) {
  const Matrix ref = testing::random_matrix(8, 2, 2);
  expect_matrix_near(post::align_signs(ref, ref), ref, 0.0);
}

TEST(ModeErrors, ZeroForIdentical) {
  const Matrix m = testing::random_matrix(12, 4, 3);
  const Vector l2 = post::mode_errors_l2(m, m);
  const Vector mx = post::mode_errors_max(m, m);
  for (Index j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(l2[j], 0.0);
    EXPECT_DOUBLE_EQ(mx[j], 0.0);
  }
}

TEST(ModeErrors, SignInsensitive) {
  const Matrix ref = testing::random_matrix(10, 2, 4);
  Matrix flipped = ref;
  flipped *= -1.0;
  const Vector l2 = post::mode_errors_l2(flipped, ref);
  for (Index j = 0; j < 2; ++j) EXPECT_LT(l2[j], 1e-15);
}

TEST(ModeErrors, DetectsPerturbation) {
  Matrix ref = testing::random_matrix(10, 1, 5);
  Matrix noisy = ref;
  noisy(0, 0) += 0.5;
  const Vector mx = post::mode_errors_max(noisy, ref);
  EXPECT_NEAR(mx[0], 0.5, 1e-12);
}

TEST(PointwiseModeError, MatchesDefinition) {
  Matrix ref = testing::random_matrix(6, 2, 6);
  Matrix other = ref;
  other(3, 1) += 0.25;
  const Vector err = post::pointwise_mode_error(other, ref, 1);
  EXPECT_NEAR(err[3], 0.25, 1e-12);
  EXPECT_NEAR(err[0], 0.0, 1e-12);
}

TEST(PrincipalAngles, IdenticalSubspacesZero) {
  Rng rng(7);
  const Matrix q = workloads::random_orthonormal(20, 4, rng);
  EXPECT_LT(post::max_principal_angle(q, q), 1e-7);
}

TEST(PrincipalAngles, OrthogonalSubspacesRightAngle) {
  Matrix a(6, 1, 0.0), b(6, 1, 0.0);
  a(0, 0) = 1.0;
  b(3, 0) = 1.0;
  EXPECT_NEAR(post::max_principal_angle(a, b), kPi / 2.0, 1e-12);
}

TEST(PrincipalAngles, KnownAngle) {
  // Vectors at 30 degrees.
  Matrix a(2, 1), b(2, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 0.0;
  b(0, 0) = std::cos(kPi / 6.0);
  b(1, 0) = std::sin(kPi / 6.0);
  EXPECT_NEAR(post::max_principal_angle(a, b), kPi / 6.0, 1e-12);
}

TEST(PrincipalAngles, RotationWithinSubspaceIgnored) {
  // The subspace metric must be invariant under intra-subspace rotation
  // that column-wise errors would flag.
  Rng rng(8);
  const Matrix q = workloads::random_orthonormal(15, 2, rng);
  Matrix rotated(15, 2);
  const double c = std::cos(0.7), s = std::sin(0.7);
  for (Index i = 0; i < 15; ++i) {
    rotated(i, 0) = c * q(i, 0) - s * q(i, 1);
    rotated(i, 1) = s * q(i, 0) + c * q(i, 1);
  }
  EXPECT_LT(post::max_principal_angle(q, rotated), 1e-7);
}

TEST(SpectrumError, RelativeDefinition) {
  Vector ref{10.0, 1.0}, est{11.0, 0.9};
  const Vector err = post::spectrum_relative_error(ref, est);
  EXPECT_NEAR(err[0], 0.1, 1e-12);
  EXPECT_NEAR(err[1], 0.1, 1e-12);
}

TEST(ReconstructionError, ZeroForExactFactors) {
  Rng rng(9);
  const Matrix a = workloads::synthetic_low_rank(
      20, 10, workloads::geometric_spectrum(4, 2.0, 0.5), rng);
  const SvdResult f = svd(a);
  EXPECT_LT(post::relative_reconstruction_error(a, f.u, f.s, f.v), 1e-12);
}

TEST(ReconstructionError, TruncationMatchesTailEnergy) {
  Rng rng(10);
  const Vector spectrum{4.0, 2.0, 1.0};
  const Matrix a = workloads::synthetic_low_rank(30, 15, spectrum, rng);
  SvdOptions opts;
  opts.rank = 2;
  const SvdResult f = svd(a, opts);
  // ||A - A_2||_F = σ_3; relative = σ_3 / ||A||_F.
  const double expected = 1.0 / std::sqrt(16.0 + 4.0 + 1.0);
  EXPECT_NEAR(post::relative_reconstruction_error(a, f.u, f.s, f.v), expected,
              1e-10);
}

TEST(ProjectionError, ZeroWhenSpanned) {
  Rng rng(11);
  const Matrix a = workloads::synthetic_low_rank(
      25, 12, workloads::geometric_spectrum(3, 5.0, 0.5), rng);
  SvdOptions opts;
  opts.rank = 3;
  const SvdResult f = svd(a, opts);
  EXPECT_LT(post::relative_projection_error(a, f.u), 1e-12);
}

TEST(ModeCosine, BoundsAndExactness) {
  const Matrix m = testing::random_matrix(10, 2, 12);
  EXPECT_NEAR(post::mode_cosine(m, 0, m, 0), 1.0, 1e-12);
  const double c = post::mode_cosine(m, 0, m, 1);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

// ------------------------------------------------------------- exporters

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parsvd_post_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ExportTest, PgmHeaderAndSize) {
  Vector field(6 * 4);
  for (Index i = 0; i < field.size(); ++i) field[i] = static_cast<double>(i);
  const std::string path = (dir_ / "mode.pgm").string();
  post::write_mode_pgm(path, field, 4, 6);

  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<unsigned char> pixels(24);
  in.read(reinterpret_cast<char*>(pixels.data()), 24);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(pixels[0], 0);      // min value → 0
  EXPECT_EQ(pixels[23], 255);   // max value → 255
}

TEST_F(ExportTest, PgmSizeValidated) {
  EXPECT_THROW(
      post::write_mode_pgm((dir_ / "x.pgm").string(), Vector(5), 2, 3), Error);
}

TEST(AsciiHeatmap, DimensionsRespected) {
  Vector field(20 * 40);
  for (Index i = 0; i < field.size(); ++i) {
    field[i] = std::sin(static_cast<double>(i));
  }
  const std::string art = post::ascii_heatmap(field, 20, 40, 10, 30);
  Index lines = 0;
  std::size_t pos = 0;
  while ((pos = art.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 10);
  EXPECT_EQ(art.find('\n'), 30u);  // first line width
}

TEST(AsciiHeatmap, ConstantFieldUniform) {
  const std::string art = post::ascii_heatmap(Vector(12, 5.0), 3, 4, 3, 4);
  // All cells render the same character.
  char c = art[0];
  for (char ch : art) {
    if (ch != '\n') {
      EXPECT_EQ(ch, c);
    }
  }
}

TEST(AsciiPlot, ProducesRequestedRows) {
  Vector sig(100);
  for (Index i = 0; i < 100; ++i) {
    sig[i] = std::sin(0.1 * static_cast<double>(i));
  }
  const std::string art = post::ascii_plot(sig, 8, 40);
  Index lines = 0;
  std::size_t pos = 0;
  while ((pos = art.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 8);
  EXPECT_NE(art.find('*'), std::string::npos);
}

TEST(AsciiPlot, RejectsEmptySignal) {
  EXPECT_THROW(post::ascii_plot(Vector{}), Error);
}

}  // namespace
}  // namespace parsvd
