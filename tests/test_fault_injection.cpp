// Fault-injection tests for the pmpi runtime and the degraded-completion
// mode of the distributed solvers.
//
// Three layers:
//   * deterministic single-fault tests (explicit FaultPlan events) that
//     pin down the recovery semantics of each FaultKind;
//   * chaos sweeps — 220 seeded plans (120 recoverable-fault seeds that
//     must produce bit-exact results, 100 kill-enabled seeds that must
//     either succeed or fail with a typed parsvd::Error) over a workload
//     mixing send/recv, bcast, gather, allreduce and barrier.  The
//     invariant under test is "never a hang": every run terminates, via
//     recovery, RankDeadError, CommTimeout or abort_job cascade;
//   * degraded-completion tests: killing a rank mid-call still yields
//     modes for the surviving partitions, with the loss quantified in a
//     FaultReport (the streaming driver's bound is sharp because it
//     records per-rank extents and energies up front).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/apmos.hpp"
#include "core/parallel_streaming.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"
#include "pmpi/fault.hpp"
#include "support/rng.hpp"
#include "test_utils.hpp"

namespace parsvd {
namespace {

using pmpi::Communicator;
using pmpi::Context;
using pmpi::FaultKind;
using pmpi::FaultPlan;

std::shared_ptr<Context> make_ctx(int size, FaultPlan plan) {
  auto ctx = std::make_shared<Context>(size);
  ctx->set_fault_plan(std::move(plan));
  return ctx;
}

/// Deterministic payload so every receiver can verify bit-exact delivery.
std::vector<double> pattern(std::uint64_t seed, int stream, std::size_t len) {
  Rng rng(seed * 1000003 + static_cast<std::uint64_t>(stream));
  std::vector<double> v(len);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_doubles_eq(const std::vector<double>& got,
                       const std::vector<double>& want, std::uint64_t seed,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what << " seed " << seed;
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got[i] - want[i]));
  }
  EXPECT_EQ(err, 0.0) << what << " seed " << seed;
}

// --------------------------------------------------------- fault plumbing

TEST(FaultPlanTest, ChecksumDetectsBitFlip) {
  std::vector<std::byte> buf(1031);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 37 + 11);
  }
  const std::uint64_t base = pmpi::payload_checksum(buf.data(), buf.size());
  EXPECT_EQ(base, pmpi::payload_checksum(buf.data(), buf.size()));
  for (std::size_t pos : {std::size_t{0}, std::size_t{517}, buf.size() - 1}) {
    buf[pos] ^= std::byte{1};
    EXPECT_NE(base, pmpi::payload_checksum(buf.data(), buf.size()))
        << "flip at " << pos;
    buf[pos] ^= std::byte{1};
  }
  EXPECT_EQ(pmpi::payload_checksum(nullptr, 0),
            pmpi::payload_checksum(nullptr, 0));
}

TEST(FaultPlanTest, ChaosPlanIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::chaos(42, 0.1, 0.1, 0.1, 0.1, 0.05);
  const FaultPlan b = FaultPlan::chaos(42, 0.1, 0.1, 0.1, 0.1, 0.05);
  const FaultPlan c = FaultPlan::chaos(43, 0.1, 0.1, 0.1, 0.1, 0.05);
  int differs = 0;
  for (int rank = 0; rank < 4; ++rank) {
    for (std::uint64_t op = 0; op < 200; ++op) {
      const auto da = a.on_message(rank, op);
      const auto db = b.on_message(rank, op);
      ASSERT_EQ(da.has_value(), db.has_value());
      if (da) {
        EXPECT_EQ(da->kind, db->kind);
        EXPECT_EQ(da->param, db->param);
      }
      EXPECT_EQ(a.kills(rank, op), b.kills(rank, op));
      const auto dc = c.on_message(rank, op);
      if (da.has_value() != dc.has_value()) ++differs;
    }
  }
  EXPECT_GT(differs, 0) << "different seeds should reshuffle the faults";
}

TEST(FaultPlanTest, FromEnvReadsRatesAndDefaultsEmpty) {
  EXPECT_TRUE(FaultPlan::from_env().empty());
  ::setenv("PARSVD_FAULT_SEED", "7", 1);
  ::setenv("PARSVD_FAULT_DROP", "0.25", 1);
  const FaultPlan plan = FaultPlan::from_env();
  ::unsetenv("PARSVD_FAULT_SEED");
  ::unsetenv("PARSVD_FAULT_DROP");
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(plan.can_kill());
  int drops = 0;
  for (std::uint64_t op = 0; op < 400; ++op) {
    const auto d = plan.on_message(1, op);
    if (d && d->kind == FaultKind::Drop) ++drops;
  }
  EXPECT_GT(drops, 40);  // ~100 expected at rate 0.25
}

// ------------------------------------------- single-fault recovery paths

TEST(FaultInjection, DropIsRecoveredFromRetransmitLog) {
  FaultPlan plan;
  plan.inject(0, 0, FaultKind::Drop);
  auto ctx = make_ctx(2, std::move(plan));
  const auto payload = pattern(1, 7, 256);
  pmpi::run_on(ctx, [&payload](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(payload, 1, 7);
    } else {
      expect_doubles_eq(comm.recv<double>(0, 7), payload, 1, "drop");
    }
  });
  EXPECT_EQ(ctx->faults_injected(), 1u);
  EXPECT_GE(ctx->retransmits(), 1u);
}

TEST(FaultInjection, TruncationIsDetectedAndRetransmitted) {
  FaultPlan plan;
  plan.inject(0, 0, FaultKind::Truncate, 16);
  auto ctx = make_ctx(2, std::move(plan));
  const auto payload = pattern(2, 9, 128);
  pmpi::run_on(ctx, [&payload](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(payload, 1, 9);
    } else {
      expect_doubles_eq(comm.recv<double>(0, 9), payload, 2, "truncate");
    }
  });
  EXPECT_EQ(ctx->faults_injected(), 1u);
  EXPECT_GE(ctx->retransmits(), 1u);
}

TEST(FaultInjection, DuplicateIsDiscardedBySequenceNumber) {
  FaultPlan plan;
  plan.inject(0, 0, FaultKind::Duplicate);
  auto ctx = make_ctx(2, std::move(plan));
  const auto first = pattern(3, 1, 32);
  const auto second = pattern(3, 2, 32);
  pmpi::run_on(ctx, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(first, 1, 4);
      comm.send<double>(second, 1, 4);
    } else {
      // The duplicated first message must not shadow the second one.
      expect_doubles_eq(comm.recv<double>(0, 4), first, 3, "dup first");
      expect_doubles_eq(comm.recv<double>(0, 4), second, 3, "dup second");
    }
  });
  EXPECT_EQ(ctx->faults_injected(), 1u);
}

TEST(FaultInjection, DelayedMessageStillArrivesIntact) {
  FaultPlan plan;
  plan.inject(0, 0, FaultKind::Delay, 30);
  auto ctx = make_ctx(2, std::move(plan));
  const auto payload = pattern(4, 5, 64);
  const auto t0 = std::chrono::steady_clock::now();
  pmpi::run_on(ctx, [&payload](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(payload, 1, 2);
    } else {
      expect_doubles_eq(comm.recv<double>(0, 2), payload, 4, "delay");
    }
  });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(ctx->faults_injected(), 1u);
  EXPECT_GE(elapsed.count(), 20);  // the 30 ms hold actually held
}

TEST(FaultInjection, WaitOnKilledRankThrowsRankDeadError) {
  FaultPlan plan;
  plan.kill_rank(1, 0);
  auto ctx = make_ctx(2, std::move(plan));
  EXPECT_THROW(pmpi::run_on(ctx,
                            [](Communicator& comm) {
                              if (comm.rank() == 1) {
                                comm.send<int>(std::vector<int>{1}, 0, 3);
                              } else {
                                comm.recv<int>(1, 3);
                              }
                            }),
               RankDeadError);
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{1});
  EXPECT_EQ(ctx->alive_count(), 1);
}

TEST(FaultInjection, MessagePostedBeforeDeathIsStillConsumed) {
  // Death is not retroactive: a payload already in the mailbox outlives
  // its sender.
  FaultPlan plan;
  plan.kill_rank(1, 1);  // second op: the send succeeds, then it dies
  auto ctx = make_ctx(2, std::move(plan));
  const auto payload = pattern(5, 1, 16);
  pmpi::run_on(ctx, [&payload](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.send<double>(payload, 0, 8);
      comm.barrier();  // killed here
    } else {
      expect_doubles_eq(comm.recv<double>(0 + 1, 8), payload, 5, "pre-death");
    }
  });
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{1});
}

TEST(FaultInjection, SilentPeerTimesOutWithCommTimeout) {
  auto ctx = std::make_shared<Context>(2);
  ctx->set_wait_timeout(std::chrono::milliseconds(50));
  ctx->set_max_retries(1);
  EXPECT_THROW(pmpi::run_on(ctx,
                            [](Communicator& comm) {
                              if (comm.rank() == 0) {
                                comm.recv<int>(1, 6);  // never sent
                              }
                            }),
               CommTimeout);
}

TEST(FaultInjection, BarrierReleasesWhenARankDies) {
  FaultPlan plan;
  plan.kill_rank(2, 0);
  auto ctx = make_ctx(3, std::move(plan));
  pmpi::run_on(ctx, [](Communicator& comm) { comm.barrier(); });
  EXPECT_EQ(ctx->alive_count(), 2);
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{2});
}

TEST(FaultInjection, ZeroFaultRunInjectsNothing) {
  auto ctx = std::make_shared<Context>(3);
  pmpi::run_on(ctx, [](Communicator& comm) {
    std::vector<double> b;
    if (comm.rank() == 0) b = pattern(6, 0, 40);
    comm.bcast(b, 0);
    expect_doubles_eq(b, pattern(6, 0, 40), 6, "healthy bcast");
    comm.barrier();
  });
  EXPECT_EQ(ctx->faults_injected(), 0u);
  EXPECT_EQ(ctx->retransmits(), 0u);
}

// ----------------------------------------------------------- chaos sweeps

/// Mixed workload touching every communication primitive, with results
/// that are exact functions of (seed, rank) so any corruption is caught.
void chaos_workload(Communicator& comm, std::uint64_t seed) {
  const int p = comm.size();
  const int r = comm.rank();

  // Point-to-point ring with per-sender tags.
  const int next = (r + 1) % p;
  const int prev = (r + p - 1) % p;
  comm.send<double>(pattern(seed, 10 + r, 64), next, 10 + r);
  expect_doubles_eq(comm.recv<double>(prev, 10 + prev),
                    pattern(seed, 10 + prev, 64), seed, "ring");

  // Broadcast from root.
  std::vector<double> b;
  if (r == 0) b = pattern(seed, 99, 48);
  comm.bcast(b, 0);
  expect_doubles_eq(b, pattern(seed, 99, 48), seed, "bcast");

  // Gather at root.
  const std::vector<double> mine{static_cast<double>(r + 1)};
  const std::vector<double> all = comm.gatherv<double>(mine, 0);
  if (r == 0) {
    ASSERT_EQ(static_cast<int>(all.size()), p) << "seed " << seed;
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], i + 1) << "seed " << seed;
    }
  }

  // Allreduce.
  double v[1] = {static_cast<double>(r)};
  comm.allreduce(std::span<double>(v, 1), pmpi::Op::Sum);
  EXPECT_EQ(v[0], p * (p - 1) / 2.0) << "seed " << seed;

  comm.barrier();
}

TEST(FaultChaos, RecoverableFaultSweepIsExact) {
  // 120 seeded plans over drop/delay/duplicate/truncate: every run must
  // finish with bit-exact results — drops and truncations recover from
  // the retransmit log, duplicates are discarded, delays are waited out.
  constexpr std::uint64_t kSeeds = 120;
  std::uint64_t injected = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultPlan plan = FaultPlan::chaos(seed, 0.06, 0.05, 0.05, 0.04);
    plan.delay_ms = 1;
    auto ctx = make_ctx(4, std::move(plan));
    pmpi::run_on(ctx,
                 [seed](Communicator& comm) { chaos_workload(comm, seed); });
    injected += ctx->faults_injected();
  }
  // Rate sanity: at ~20% combined fault rate the sweep must have
  // actually exercised the recovery machinery many times.
  EXPECT_GT(injected, 200u);
}

TEST(FaultChaos, KillSweepEndsInSuccessOrTypedErrorNeverHangs) {
  // 100 seeded plans with rank kills enabled (root protected): a run
  // either completes exactly or surfaces a typed parsvd::Error through
  // run_on. Anything else — a hang, a raw std::exception — fails.
  constexpr std::uint64_t kSeeds = 100;
  int clean = 0;
  int typed = 0;
  std::uint64_t deaths = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultPlan plan =
        FaultPlan::chaos(1000 + seed, 0.04, 0.03, 0.03, 0.03, 0.02);
    plan.delay_ms = 1;
    plan.protect_rank(0);
    auto ctx = make_ctx(4, std::move(plan));
    try {
      pmpi::run_on(ctx, [seed](Communicator& comm) {
        chaos_workload(comm, 1000 + seed);
      });
      ++clean;
    } catch (const Error&) {
      ++typed;
    }
    const std::vector<int> dead = ctx->dead_ranks();
    deaths += dead.size();
    EXPECT_TRUE(std::find(dead.begin(), dead.end(), 0) == dead.end())
        << "protected root died, seed " << seed;
  }
  EXPECT_EQ(clean + typed, static_cast<int>(kSeeds));
  EXPECT_GT(typed, 0) << "kill rate 2% over 100 seeds must hit some runs";
  EXPECT_GT(clean, 0) << "some runs must survive untouched";
  EXPECT_GT(deaths, 0u);
  std::printf("kill sweep: %d clean, %d typed failures, %llu rank deaths\n",
              clean, typed, static_cast<unsigned long long>(deaths));
}

TEST(FaultChaos, TreeCollectivesRecoverableSweepIsExact) {
  // The composition the async-comm PR must not break: the log(P)
  // topologies (binomial gather frames, tree bcast, recursive-doubling
  // allreduce with the non-power-of-two fold-in — p = 6) ride the same
  // checksum/seq envelope, so 110 seeded recoverable plans must still
  // produce bit-exact results.
  constexpr std::uint64_t kSeeds = 110;
  std::uint64_t injected = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultPlan plan = FaultPlan::chaos(2000 + seed, 0.06, 0.05, 0.05, 0.04);
    plan.delay_ms = 1;
    auto ctx = make_ctx(6, std::move(plan));
    ctx->set_collective_algo(pmpi::CollectiveAlgo::Tree);
    pmpi::run_on(ctx, [seed](Communicator& comm) {
      chaos_workload(comm, 2000 + seed);
    });
    injected += ctx->faults_injected();
  }
  EXPECT_GT(injected, 200u);
}

TEST(FaultChaos, TreeCollectivesKillSweepNeverHangs) {
  // Kills under forced tree topologies: a dead interior tree node takes
  // its whole subtree's path down, which must surface as a typed error
  // (or degrade to a clean completion) — never a hang.
  constexpr std::uint64_t kSeeds = 100;
  int clean = 0;
  int typed = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    FaultPlan plan =
        FaultPlan::chaos(3000 + seed, 0.04, 0.03, 0.03, 0.03, 0.02);
    plan.delay_ms = 1;
    plan.protect_rank(0);
    auto ctx = make_ctx(6, std::move(plan));
    ctx->set_collective_algo(pmpi::CollectiveAlgo::Tree);
    try {
      pmpi::run_on(ctx, [seed](Communicator& comm) {
        chaos_workload(comm, 3000 + seed);
      });
      ++clean;
    } catch (const Error&) {
      ++typed;
    }
  }
  EXPECT_EQ(clean + typed, static_cast<int>(kSeeds));
  EXPECT_GT(typed, 0);
  EXPECT_GT(clean, 0);
  std::printf("tree kill sweep: %d clean, %d typed failures\n", clean, typed);
}

// ---------------------------------------------------- degraded completion

TEST(FaultDegraded, ApmosCompletesWithoutTheDeadRank) {
  const int p = 4;
  const Index rows = 12;
  const Index cols = 10;
  FaultPlan plan;
  plan.kill_rank(2, 0);  // dies on its first op: the W gather post
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::optional<ApmosResult>, 4> results;
  pmpi::run_on(ctx, [&results, rows, cols](Communicator& comm) {
    const Matrix a = testing::random_matrix(
        rows, cols, 40 + static_cast<std::uint64_t>(comm.rank()));
    ApmosOptions opts;
    opts.r1 = 6;
    opts.r2 = 4;
    opts.fault_tolerant = true;
    results[static_cast<std::size_t>(comm.rank())] = apmos_svd(comm, a, opts);
  });
  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{2});
  EXPECT_FALSE(results[2].has_value()) << "killed rank must not produce";
  for (int r : {0, 1, 3}) {
    const auto& res = results[static_cast<std::size_t>(r)];
    ASSERT_TRUE(res.has_value()) << "rank " << r;
    EXPECT_TRUE(res->report.degraded);
    EXPECT_EQ(res->report.dead_ranks, std::vector<int>{2});
    EXPECT_EQ(res->report.surviving_rows, 3 * rows);
    // One-shot APMOS never heard from rank 2, so the lost extent is
    // unknown and the bound is the vacuous worst case.
    EXPECT_FALSE(res->report.extent_known);
    EXPECT_EQ(res->report.accuracy_bound, 1.0);
    EXPECT_EQ(res->u_local.rows(), rows);
    EXPECT_EQ(res->u_local.cols(), 4);
    ASSERT_EQ(res->s.size(), 4);
    for (Index j = 0; j < res->s.size(); ++j) EXPECT_GT(res->s[j], 0.0);
  }
}

TEST(FaultDegraded, TsqrExcludesDeadRankAndStaysAFactorization) {
  const int p = 3;
  const Index rows = 8;
  const Index cols = 5;
  std::array<Matrix, 3> blocks;
  for (int r = 0; r < p; ++r) {
    blocks[static_cast<std::size_t>(r)] = testing::random_matrix(
        rows, cols, 60 + static_cast<std::uint64_t>(r));
  }
  FaultPlan plan;
  plan.kill_rank(1, 0);  // dies on its first op: the R gather post
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::optional<TsqrResult>, 3> results;
  pmpi::run_on(ctx, [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] = tsqr(
        comm, blocks[static_cast<std::size_t>(comm.rank())],
        TsqrVariant::Direct, /*fault_tolerant=*/true);
  });
  EXPECT_FALSE(results[1].has_value());
  for (int r : {0, 2}) {
    const auto& res = results[static_cast<std::size_t>(r)];
    ASSERT_TRUE(res.has_value()) << "rank " << r;
    EXPECT_EQ(res->excluded_ranks, std::vector<int>{1});
    // Still an exact factorization of the surviving rows.
    testing::expect_matrix_near(
        testing::naive_matmul(res->q_local, res->r),
        blocks[static_cast<std::size_t>(r)], 1e-10, "q_local * r");
  }
  // Survivor Q slices stack to an orthonormal basis.
  const Matrix stacked = vcat(results[0]->q_local, results[2]->q_local);
  EXPECT_LT(testing::ortho_defect(stacked), 1e-10);
}

TEST(FaultDegraded, StreamingSurvivesKillingOneOfFourMidStream) {
  // The acceptance scenario: 4 ranks stream batches; rank 1 dies at the
  // start of the second update. The survivors finish that update and a
  // further one, and the fault report quantifies the loss sharply.
  const int p = 4;
  const Index cols0 = 8;
  const Index cols = 6;
  const auto job = [&](Communicator& comm, int updates,
                       std::array<std::optional<FaultReport>, 4>& reports,
                       Index* modes_rows) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const Index rows = 10 + comm.rank();  // uneven partitions
    StreamingOptions opts;
    opts.num_modes = 5;
    opts.fault_tolerant = true;
    ParallelStreamingSVD svd(comm, opts, TsqrVariant::Direct);
    svd.initialize(testing::random_matrix(rows, cols0, 70 + r));
    for (int i = 0; i < updates; ++i) {
      svd.incorporate_data(testing::random_matrix(
          rows, cols, 100 + 10 * static_cast<std::uint64_t>(i) + r));
    }
    // Survivors can still project a distributed batch afterwards.
    const Matrix coeff =
        svd.project(testing::random_matrix(rows, cols, 500 + r));
    EXPECT_EQ(coeff.rows(), 5);
    EXPECT_EQ(coeff.cols(), cols);
    reports[static_cast<std::size_t>(comm.rank())] = svd.fault_report();
    if (comm.is_root() && modes_rows != nullptr) {
      *modes_rows = svd.modes().rows();
    }
  };

  // Probe run (healthy, one update) pins the op count at which the
  // second update starts for rank 1 — the fault schedule is a pure
  // function of the per-rank op sequence, so this is exact.
  auto probe = std::make_shared<Context>(p);
  std::array<std::optional<FaultReport>, 4> probe_reports;
  pmpi::run_on(probe, [&](Communicator& comm) {
    job(comm, 1, probe_reports, nullptr);
  });
  for (const auto& rep : probe_reports) {
    ASSERT_TRUE(rep.has_value());
    EXPECT_FALSE(rep->degraded);
    EXPECT_EQ(rep->coverage, 1.0);
    EXPECT_EQ(rep->accuracy_bound, 0.0);
  }
  const std::uint64_t kill_at = probe->ops(1);

  FaultPlan plan;
  plan.kill_rank(1, kill_at);
  auto ctx = make_ctx(p, std::move(plan));
  std::array<std::optional<FaultReport>, 4> reports;
  Index modes_rows = -1;
  pmpi::run_on(ctx, [&](Communicator& comm) {
    job(comm, 2, reports, &modes_rows);
  });

  EXPECT_EQ(ctx->dead_ranks(), std::vector<int>{1});
  EXPECT_FALSE(reports[1].has_value());
  const Index total_rows = 10 + 11 + 12 + 13;
  const Index lost_rows = 11;
  for (int r : {0, 2, 3}) {
    const auto& rep = reports[static_cast<std::size_t>(r)];
    ASSERT_TRUE(rep.has_value()) << "rank " << r;
    EXPECT_TRUE(rep->degraded);
    EXPECT_EQ(rep->dead_ranks, std::vector<int>{1});
    EXPECT_TRUE(rep->extent_known);
    EXPECT_EQ(rep->lost_rows, lost_rows);
    EXPECT_EQ(rep->surviving_rows, total_rows - lost_rows);
    EXPECT_GT(rep->coverage, 0.0);
    EXPECT_LT(rep->coverage, 1.0);
    EXPECT_NEAR(rep->accuracy_bound, std::sqrt(1.0 - rep->coverage), 1e-12);
  }
  // Root's gathered modes cover exactly the surviving partitions.
  EXPECT_EQ(modes_rows, total_rows - lost_rows);
}

}  // namespace
}  // namespace parsvd
