// Zero-fault overhead of the pmpi reliability envelope — the cost a
// fault-free job pays for having the chaos layer available. Three
// configurations run the same messaging-heavy workload:
//
//   baseline     reliability off (seed behavior: no checksums, no seqs)
//   reliability  envelope armed: per-message checksum + sequence numbers
//   armed        a FaultPlan installed whose single event can never fire,
//                so every post also consults the plan (the configuration a
//                production job runs under when chaos testing is compiled
//                in but idle)
//
// The PR's acceptance target is < 3% overhead for the armed configuration
// at realistic payload sizes. The bench records — it does not gate — the
// timing, because shared CI runners make wall-clock assertions flaky; the
// smoke mode instead asserts correctness invariants (bit-exact delivery,
// zero injected faults, zero retransmits).
//
// Usage:
//   bench_fault_overhead            full sweep, writes BENCH_fault.json
//   bench_fault_overhead --smoke    few rounds, correctness asserts only
//   bench_fault_overhead --out=F    write the JSON to F
//   PARSVD_BENCH_OUT=F              same as --out=F
//
// JSON schema (schema_version 1):
//   { bench, schema_version, smoke, ranks, rounds, reps, payload_doubles,
//     baseline_seconds, reliability_seconds, armed_seconds,
//     reliability_overhead_pct, armed_overhead_pct,
//     messages_per_run, armed_faults_injected, armed_retransmits }
// `*_seconds` is the best of `reps` repetitions (fresh Context each rep,
// so thread spawn/join cost is charged equally to every configuration).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "pmpi/comm.hpp"
#include "pmpi/fault.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"

namespace {

using parsvd::pmpi::Communicator;
using parsvd::pmpi::Context;
using parsvd::pmpi::FaultPlan;

constexpr int kRanks = 4;
constexpr std::size_t kPayloadDoubles = 256;  // 2 KiB per point-to-point hop

enum class Config { Baseline, Reliability, Armed };

// One round = ring exchange + allreduce + barrier: the mix APMOS/TSQR
// iterations put on the runtime (point-to-point plus collectives).
void workload(Communicator& comm, int rounds, double* checksum_out) {
  const int r = comm.rank();
  const int p = comm.size();
  std::vector<double> ring(kPayloadDoubles);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    ring[i] = static_cast<double>(r) + static_cast<double>(i) * 1e-3;
  }
  double acc = 0.0;
  for (int round = 0; round < rounds; ++round) {
    comm.send(std::span<const double>(ring), (r + 1) % p, 10 + r);
    const std::vector<double> got =
        comm.recv<double>((r + p - 1) % p, 10 + (r + p - 1) % p);
    acc += got.empty() ? 0.0 : got.front() + got.back();
    double v[2] = {static_cast<double>(r), 1.0};
    comm.allreduce(std::span<double>(v, 2), parsvd::pmpi::Op::Sum);
    acc += v[0] + v[1];
    comm.barrier();
  }
  checksum_out[r] = acc;
}

struct RunResult {
  double seconds = 0.0;
  double checksum[kRanks] = {0.0, 0.0, 0.0, 0.0};
  std::uint64_t messages = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retransmits = 0;
};

RunResult run_once(Config cfg, int rounds) {
  auto ctx = std::make_shared<Context>(kRanks);
  switch (cfg) {
    case Config::Baseline:
      break;
    case Config::Reliability:
      ctx->set_reliability(true);
      break;
    case Config::Armed: {
      // One event at an operation index the workload never reaches:
      // plan consulted on every post, nothing ever fires.
      FaultPlan plan;
      plan.inject(0, std::numeric_limits<std::uint64_t>::max() - 1,
                  parsvd::pmpi::FaultKind::Drop);
      ctx->set_fault_plan(std::move(plan));
      break;
    }
  }
  RunResult cur;
  parsvd::Stopwatch sw;
  sw.start();
  parsvd::pmpi::run_on(ctx, [rounds, &cur](Communicator& comm) {
    workload(comm, rounds, cur.checksum);
  });
  cur.seconds = sw.stop();
  cur.messages = ctx->total_messages();
  cur.faults_injected = ctx->faults_injected();
  cur.retransmits = ctx->retransmits();
  return cur;
}

int check_failures(const RunResult& a, const RunResult& b, const char* name) {
  int failures = 0;
  for (int r = 0; r < kRanks; ++r) {
    if (a.checksum[r] != b.checksum[r]) {
      std::fprintf(stderr, "FAIL: %s rank %d checksum %.17g != %.17g\n", name,
                   r, a.checksum[r], b.checksum[r]);
      ++failures;
    }
  }
  return failures;
}

double overhead_pct(double base, double other) {
  return base > 0.0 ? (other / base - 1.0) * 100.0 : 0.0;
}

bool write_json(const std::string& path, bool smoke, int rounds, int reps,
                const RunResult& base, const RunResult& rel,
                const RunResult& armed) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fault_overhead\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"ranks\": %d,\n", kRanks);
  std::fprintf(f, "  \"rounds\": %d,\n", rounds);
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"payload_doubles\": %zu,\n", kPayloadDoubles);
  std::fprintf(f, "  \"baseline_seconds\": %.6e,\n", base.seconds);
  std::fprintf(f, "  \"reliability_seconds\": %.6e,\n", rel.seconds);
  std::fprintf(f, "  \"armed_seconds\": %.6e,\n", armed.seconds);
  std::fprintf(f, "  \"reliability_overhead_pct\": %.3f,\n",
               overhead_pct(base.seconds, rel.seconds));
  std::fprintf(f, "  \"armed_overhead_pct\": %.3f,\n",
               overhead_pct(base.seconds, armed.seconds));
  std::fprintf(f, "  \"messages_per_run\": %llu,\n",
               static_cast<unsigned long long>(base.messages));
  std::fprintf(f, "  \"armed_faults_injected\": %llu,\n",
               static_cast<unsigned long long>(armed.faults_injected));
  std::fprintf(f, "  \"armed_retransmits\": %llu\n",
               static_cast<unsigned long long>(armed.retransmits));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out =
      parsvd::env::get_string("PARSVD_BENCH_OUT", "BENCH_fault.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const int rounds = smoke ? 50 : 2000;
  const int reps = smoke ? 2 : 9;

  // Interleave the configurations across repetitions (A B C, A B C, ...)
  // and keep the per-config best: machine-load spikes on a shared runner
  // then hit every configuration equally instead of biasing one block.
  RunResult base, rel, armed;
  base.seconds = rel.seconds = armed.seconds =
      std::numeric_limits<double>::max();
  for (int rep = 0; rep < reps; ++rep) {
    RunResult b = run_once(Config::Baseline, rounds);
    if (b.seconds < base.seconds) base = b;
    RunResult r = run_once(Config::Reliability, rounds);
    if (r.seconds < rel.seconds) rel = r;
    RunResult a = run_once(Config::Armed, rounds);
    if (a.seconds < armed.seconds) armed = a;
  }

  int failures = 0;
  failures += check_failures(base, rel, "reliability");
  failures += check_failures(base, armed, "armed");
  if (armed.faults_injected != 0) {
    std::fprintf(stderr, "FAIL: armed run injected %llu faults\n",
                 static_cast<unsigned long long>(armed.faults_injected));
    ++failures;
  }
  if (armed.retransmits != 0) {
    std::fprintf(stderr, "FAIL: armed run performed %llu retransmits\n",
                 static_cast<unsigned long long>(armed.retransmits));
    ++failures;
  }
  if (base.messages == 0) {
    std::fprintf(stderr, "FAIL: workload sent no messages\n");
    ++failures;
  }

  std::printf(
      "fault overhead (%d ranks, %d rounds, best of %d): baseline %.3f ms, "
      "reliability %.3f ms (%+.2f%%), armed %.3f ms (%+.2f%%)\n",
      kRanks, rounds, reps, base.seconds * 1e3, rel.seconds * 1e3,
      overhead_pct(base.seconds, rel.seconds), armed.seconds * 1e3,
      overhead_pct(base.seconds, armed.seconds));

  const bool wrote = write_json(out, smoke, rounds, reps, base, rel, armed);
  return (failures == 0 && wrote) ? 0 : 1;
}
