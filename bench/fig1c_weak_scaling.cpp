// Reproduces Figure 1(c): weak scaling of the parallelized + randomized
// SVD (APMOS, no streaming), 1024 grid points per rank — the paper's
// Theta experiment up to 256 KNL nodes.
//
// Substitution note (DESIGN.md §1): ranks here are threads on one
// machine, so raw wall-clock conflates scheduler contention with
// algorithmic cost once ranks exceed cores. The bench therefore reports
// three quantities per rank count:
//   * t_rank_max  — max per-rank thread-CPU time (the cost on dedicated
//                   cores, i.e. what an MPI wall clock would show);
//   * t_root      — rank 0's thread-CPU time (holds the extra gather-SVD
//                   work, the term that eventually bends the curve);
//   * comm volume — exact bytes moved (gather grows as O(p·r1·N),
//                   broadcast as O(p·r2·N)).
// Ideal weak scaling = flat t_rank_max; the measured shape reproduces
// the paper's near-ideal trend with the slow root-term growth.
//
// Caveat on this host: thread-CPU time excludes scheduler *wait*, but
// oversubscribing p threads onto few physical cores still inflates it
// through shared cache/memory-bandwidth contention. Interpret the curve
// above p = hardware cores together with the bytes/rank column (the
// machine-independent algorithmic communication term).
//
// PARSVD_MAX_RANKS (default 64), PARSVD_SNAPSHOTS (default 128),
// PARSVD_ROWS_PER_RANK (default 1024).
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/apmos.hpp"
#include "io/matrix_io.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  // Paper values: 1024 grid points per rank, 800 snapshots.
  const Index rows_per_rank = env::get_int("PARSVD_ROWS_PER_RANK", 1024);
  const Index snapshots = env::get_int("PARSVD_SNAPSHOTS", 800);
  const int max_ranks = static_cast<int>(env::get_int("PARSVD_MAX_RANKS", 64));

  ApmosOptions aopts;
  aopts.r1 = env::get_int("PARSVD_R1", 50);
  aopts.r2 = env::get_int("PARSVD_R2", 5);
  aopts.low_rank = true;
  aopts.randomized.oversampling = 8;
  aopts.randomized.power_iterations = 1;
  aopts.method = SvdMethod::MethodOfSnapshots;  // M_i >> N local stage
  aopts.eigh_method = EighMethod::Tridiagonal;

  std::printf("=== Figure 1(c): weak scaling, randomized+parallel SVD ===\n");
  std::printf("%lld rows/rank, %lld snapshots, r1 = %lld, r2 = %lld\n\n",
              static_cast<long long>(rows_per_rank),
              static_cast<long long>(snapshots),
              static_cast<long long>(aopts.r1),
              static_cast<long long>(aopts.r2));
  std::printf("%-7s %10s %14s %12s %14s %14s %11s\n", "ranks", "rows",
              "t_rank_max[s]", "t_root[s]", "bytes_total", "bytes/rank",
              "efficiency");

  double t_base = 0.0;
  std::vector<std::array<double, 2>> series;  // (p, t_rank_max) for CSV
  Matrix csv(0, 0);
  std::vector<std::array<double, 6>> rows_out;

  for (int p = 1; p <= max_ranks; p *= 2) {
    const Index global_rows = rows_per_rank * p;
    wl::BurgersConfig cfg;
    cfg.grid_points = global_rows;
    cfg.snapshots = snapshots;
    wl::Burgers burgers(cfg);

    std::vector<double> rank_cpu(static_cast<std::size_t>(p), 0.0);
    auto ctx = pmpi::run_with_stats(p, [&](pmpi::Communicator& comm) {
      const auto part = wl::partition_rows(global_rows, p, comm.rank());
      // Per the paper, data generation/IO is outside the timed region.
      const Matrix local =
          burgers.snapshot_block(part.offset, part.count, 0, snapshots);
      comm.barrier();
      const double cpu0 = thread_cpu_seconds();
      ApmosResult res = apmos_svd(comm, local, aopts);
      const double cpu1 = thread_cpu_seconds();
      rank_cpu[static_cast<std::size_t>(comm.rank())] = cpu1 - cpu0;
      (void)res;
    });

    double t_rank_max = 0.0;
    for (double t : rank_cpu) t_rank_max = std::max(t_rank_max, t);
    const double t_root = rank_cpu[0];
    if (p == 1) t_base = t_rank_max;
    const double efficiency = t_base / std::max(t_rank_max, 1e-12);
    const auto bytes = ctx->total_bytes();

    std::printf("%-7d %10lld %14.4f %12.4f %14llu %14llu %10.1f%%\n", p,
                static_cast<long long>(global_rows), t_rank_max, t_root,
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(bytes / static_cast<unsigned>(p)),
                100.0 * efficiency);
    rows_out.push_back({static_cast<double>(p),
                        static_cast<double>(global_rows), t_rank_max, t_root,
                        static_cast<double>(bytes), efficiency});
    series.push_back({static_cast<double>(p), t_rank_max});
  }

  Matrix out(static_cast<Index>(rows_out.size()), 6);
  for (Index i = 0; i < out.rows(); ++i) {
    for (Index j = 0; j < 6; ++j) {
      out(i, j) = rows_out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  io::write_csv("fig1c_weak_scaling.csv", out,
                {"ranks", "rows", "t_rank_max", "t_root", "bytes_total",
                 "efficiency"});
  std::printf("\nideal weak scaling = flat t_rank_max (100%% efficiency); "
              "the gather/bcast\nvolume terms grow linearly in ranks and "
              "eventually bend the curve, as on Theta.\n");
  std::printf("wrote fig1c_weak_scaling.csv\n\n");
  return 0;
}
