// Overhead of the obs tracing layer — what an instrumented production
// run pays with recording disarmed, and what arming the per-thread
// trace rings costs on a realistic distributed workload. Two
// configurations run the same P=4 Burgers streaming SVD:
//
//   disabled   spans compiled in but disarmed: every PARSVD_TRACE_SCOPE
//              costs one relaxed atomic load (the production default)
//   armed      every span/instant recorded into the per-thread rings
//
// The PR's acceptance target is < 2% overhead for the armed
// configuration. The bench records — it does not hard-gate — the
// timing, because shared CI runners make wall-clock assertions flaky;
// smoke mode instead asserts the invariants that cannot be
// load-sensitive: bit-identical singular values across configurations,
// per-rank trace rows covering >= 95% of the traced wall time, and a
// Perfetto-loadable flush.
//
// Usage:
//   bench_obs_overhead                 full sweep, writes BENCH_obs.json
//   bench_obs_overhead --smoke         small sizes, correctness asserts
//   bench_obs_overhead --out=F         write the JSON to F
//   bench_obs_overhead --trace-out=F   also flush the last armed trace
//   PARSVD_BENCH_OUT=F                 same as --out=F
//
// JSON schema (schema_version 1):
//   { bench, schema_version, smoke, ranks, rows_per_rank, snapshots,
//     batch, reps, disabled_seconds, armed_seconds, overhead_pct,
//     trace_events, trace_dropped, coverage_min_pct,
//     results_bit_identical }
// `*_seconds` is the best of `reps` interleaved repetitions.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/parallel_streaming.hpp"
#include "obs/trace.hpp"
#include "pmpi/comm.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/streaming_executor.hpp"

namespace {

namespace wl = parsvd::workloads;
using parsvd::Index;
using parsvd::Vector;
using parsvd::pmpi::Communicator;

constexpr int kRanks = 4;

struct RunResult {
  double seconds = 0.0;
  Vector svals;
};

RunResult run_streaming_once(Index rows_per_rank, Index snapshots,
                             Index batch) {
  wl::BurgersConfig cfg;
  cfg.grid_points = rows_per_rank * kRanks;
  cfg.snapshots = snapshots;
  const wl::Burgers burgers(cfg);

  parsvd::StreamingOptions sopts;
  sopts.num_modes = 8;
  sopts.forget_factor = 1.0;

  RunResult out;
  parsvd::Stopwatch sw;
  sw.start();
  parsvd::pmpi::run(kRanks, [&](Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, kRanks, comm.rank());
    auto gen = [&burgers, part](Index col0, Index ncols) {
      return burgers.snapshot_block(part.offset, part.count, col0, ncols);
    };
    auto source = std::make_unique<wl::GeneratorBatchSource>(
        part.count, snapshots, std::move(gen));
    parsvd::ParallelStreamingSVD svd(comm, sopts, parsvd::TsqrVariant::Tree);
    wl::StreamingExecutorOptions eopts;
    eopts.batch_cols = batch;
    wl::run_streaming(svd, std::move(source), eopts);
    if (comm.is_root()) out.svals = svd.singular_values();
  });
  out.seconds = sw.stop();
  return out;
}

bool bit_identical(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

struct TraceStats {
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  double coverage_min_pct = 0.0;  // min over ranks of span-union / wall
  int rank_rows = 0;
};

// Coverage of the traced wall time by each rank's process row: union of
// that rank's span intervals over [min start, max end] across all spans.
TraceStats analyze_trace() {
  namespace trace = parsvd::obs::trace;
  TraceStats stats;
  const std::vector<trace::FlushedEvent> events = trace::snapshot();
  stats.dropped = trace::dropped();

  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  std::int64_t t1 = std::numeric_limits<std::int64_t>::min();
  struct Interval {
    std::int64_t start, end;
  };
  // pid -> intervals; pids are small (rank+1, 0 = shared).
  std::vector<std::vector<Interval>> by_pid(
      static_cast<std::size_t>(kRanks) + 1);
  for (const auto& fe : events) {
    if (fe.event.dur_ns < 0) continue;  // instants don't cover time
    ++stats.events;
    t0 = std::min(t0, fe.event.start_ns);
    t1 = std::max(t1, fe.event.start_ns + fe.event.dur_ns);
    if (fe.pid >= 1 && fe.pid <= kRanks) {
      by_pid[static_cast<std::size_t>(fe.pid)].push_back(
          {fe.event.start_ns, fe.event.start_ns + fe.event.dur_ns});
    }
  }
  if (stats.events == 0 || t1 <= t0) return stats;
  const double wall = static_cast<double>(t1 - t0);

  stats.coverage_min_pct = 100.0;
  for (int pid = 1; pid <= kRanks; ++pid) {
    auto& ivals = by_pid[static_cast<std::size_t>(pid)];
    if (ivals.empty()) continue;
    ++stats.rank_rows;
    std::sort(ivals.begin(), ivals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    std::int64_t covered = 0;
    std::int64_t last_end = std::numeric_limits<std::int64_t>::min();
    for (const Interval& iv : ivals) {
      if (iv.start > last_end) {
        covered += iv.end - iv.start;
        last_end = iv.end;
      } else if (iv.end > last_end) {
        covered += iv.end - last_end;
        last_end = iv.end;
      }
    }
    stats.coverage_min_pct = std::min(
        stats.coverage_min_pct, 100.0 * static_cast<double>(covered) / wall);
  }
  if (stats.rank_rows == 0) stats.coverage_min_pct = 0.0;
  return stats;
}

double overhead_pct(double base, double other) {
  return base > 0.0 ? (other / base - 1.0) * 100.0 : 0.0;
}

bool write_json(const std::string& path, bool smoke, Index rows_per_rank,
                Index snapshots, Index batch, int reps,
                const RunResult& disabled, const RunResult& armed,
                const TraceStats& stats, bool identical) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"ranks\": %d,\n", kRanks);
  std::fprintf(f, "  \"rows_per_rank\": %lld,\n",
               static_cast<long long>(rows_per_rank));
  std::fprintf(f, "  \"snapshots\": %lld,\n", static_cast<long long>(snapshots));
  std::fprintf(f, "  \"batch\": %lld,\n", static_cast<long long>(batch));
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"disabled_seconds\": %.6e,\n", disabled.seconds);
  std::fprintf(f, "  \"armed_seconds\": %.6e,\n", armed.seconds);
  std::fprintf(f, "  \"overhead_pct\": %.3f,\n",
               overhead_pct(disabled.seconds, armed.seconds));
  std::fprintf(f, "  \"trace_events\": %llu,\n",
               static_cast<unsigned long long>(stats.events));
  std::fprintf(f, "  \"trace_dropped\": %llu,\n",
               static_cast<unsigned long long>(stats.dropped));
  std::fprintf(f, "  \"coverage_min_pct\": %.2f,\n", stats.coverage_min_pct);
  std::fprintf(f, "  \"results_bit_identical\": %s\n",
               identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace trace = parsvd::obs::trace;
  bool smoke = false;
  std::string out = parsvd::env::get_string("PARSVD_BENCH_OUT", "BENCH_obs.json");
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // The armed cost has a fixed component (each fresh thread's first span
  // allocates its ring), so the full sweep must run long enough for that
  // to amortize — the < 2% claim is about steady-state production runs,
  // not few-millisecond toys.
  const Index rows_per_rank = smoke ? 96 : 1024;
  const Index snapshots = smoke ? 48 : 240;
  const Index batch = 12;
  const int reps = smoke ? 2 : 5;

  // Interleave configurations (disabled, armed, disabled, armed, ...)
  // and keep the per-config best, so load spikes on a shared runner hit
  // both configurations equally.
  RunResult disabled, armed;
  disabled.seconds = armed.seconds = std::numeric_limits<double>::max();
  TraceStats stats;
  for (int rep = 0; rep < reps; ++rep) {
    trace::arm(false);
    RunResult d = run_streaming_once(rows_per_rank, snapshots, batch);
    if (d.seconds < disabled.seconds) {
      disabled.seconds = d.seconds;
      disabled.svals = d.svals;
    }

    trace::reset();  // only this rep's spans feed the coverage analysis
    trace::arm(true);
    RunResult a = run_streaming_once(rows_per_rank, snapshots, batch);
    trace::arm(false);
    if (a.seconds < armed.seconds) {
      armed.seconds = a.seconds;
      armed.svals = a.svals;
    }
    stats = analyze_trace();  // writers quiescent: run() joined its threads
  }

  int failures = 0;
  const bool identical = bit_identical(disabled.svals, armed.svals);
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: singular values differ between disabled and armed\n");
    ++failures;
  }
  if (stats.events == 0) {
    std::fprintf(stderr, "FAIL: armed run recorded no spans\n");
    ++failures;
  }
  if (stats.rank_rows != kRanks) {
    std::fprintf(stderr, "FAIL: trace has %d rank rows, expected %d\n",
                 stats.rank_rows, kRanks);
    ++failures;
  }
  if (stats.coverage_min_pct < 95.0) {
    std::fprintf(stderr, "FAIL: min rank coverage %.2f%% < 95%%\n",
                 stats.coverage_min_pct);
    ++failures;
  }

  if (!trace_out.empty()) {
    if (trace::flush_json_to(trace_out)) {
      std::printf("wrote %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "FAIL: cannot write trace to %s\n",
                   trace_out.c_str());
      ++failures;
    }
  }

  std::printf(
      "obs overhead (%d ranks, %lld rows/rank, %lld snapshots, best of %d): "
      "disabled %.3f ms, armed %.3f ms (%+.2f%%), %llu spans "
      "(%llu dropped), min rank coverage %.1f%%\n",
      kRanks, static_cast<long long>(rows_per_rank),
      static_cast<long long>(snapshots), reps, disabled.seconds * 1e3,
      armed.seconds * 1e3, overhead_pct(disabled.seconds, armed.seconds),
      static_cast<unsigned long long>(stats.events),
      static_cast<unsigned long long>(stats.dropped), stats.coverage_min_pct);

  const bool wrote = write_json(out, smoke, rows_per_rank, snapshots, batch,
                                reps, disabled, armed, stats, identical);
  return (failures == 0 && wrote) ? 0 : 1;
}
