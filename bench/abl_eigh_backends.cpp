// Ablation: symmetric eigensolver backend (cyclic Jacobi vs
// tridiagonalization + QL) on Gram matrices — the kernel behind the
// method-of-snapshots SVD that APMOS stage 1 runs on every rank. The
// crossover motivates SvdOptions::eigh_method.
#include <benchmark/benchmark.h>

#include "linalg/blas.hpp"
#include "linalg/eigh.hpp"
#include "support/rng.hpp"

namespace {

using namespace parsvd;

Matrix gram_input(Index n, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix a = Matrix::gaussian(4 * n, n, rng);
  return gram(a);
}

void BM_EighJacobi(benchmark::State& state) {
  const Matrix g = gram_input(state.range(0), 5);
  EighOptions opts;
  opts.method = EighMethod::Jacobi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigh(g, opts));
  }
}

void BM_EighTridiagonal(benchmark::State& state) {
  const Matrix g = gram_input(state.range(0), 5);
  EighOptions opts;
  opts.method = EighMethod::Tridiagonal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigh(g, opts));
  }
}

BENCHMARK(BM_EighJacobi)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EighTridiagonal)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
