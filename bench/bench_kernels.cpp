// Dense-kernel microbenchmark — the repo's machine-readable perf
// trajectory for the level-3 kernel engine (gemm fp64/fp32 / blocked QR /
// gram / gemv) and the mixed-precision randomized-SVD path. Times each
// kernel across sizes and thread counts, compares the packed GEMM against
// a faithful copy of the pre-engine ("seed") kernel, and persists
// everything to BENCH_kernels.json so later perf PRs are measured against
// a recorded baseline.
//
// Usage:
//   bench_kernels              full sweep, writes BENCH_kernels.json
//   bench_kernels --smoke      tiny sizes, asserts kernel-vs-reference
//                              agreement and nonzero throughput (ctest
//                              hook); the full-size claim fields are
//                              emitted as JSON null — never as fake zeros
//   bench_kernels --tune       run the autotune sweep first, persist the
//                              winning profile, and record the
//                              tuned-vs-default deltas in the JSON
//   bench_kernels --tune-out=F write the tuned profile to F
//                              (default parsvd_tune.json)
//   bench_kernels --out=F      write the JSON trajectory to F
//   PARSVD_BENCH_OUT=F         same as --out=F
//
// JSON schema (schema_version 2):
//   { bench, schema_version, smoke, hardware_concurrency,
//     blocking: {f64: {mc..nr}, f32: {mc..nr}, qr_block, tuned},
//     results: [ {kernel, m, n, k, threads, seconds, gflops, flops} ... ],
//     autotune: null | {probe_size, f64: {...}, f32: {...}, qr: {...}},
//     gemm_512_seed_seconds, gemm_512_packed_seconds,
//     gemm_512_speedup_vs_seed, gemm_f32_512_seconds,
//     gemm_f32_512_speedup_vs_f64, mixed_rsvd_double_seconds,
//     mixed_rsvd_mixed_seconds, mixed_rsvd_speedup,
//     mixed_rsvd_sigma_rel_err, single_rsvd_sigma_rel_err, failures }
// Claim fields are numbers in a full run and null in smoke runs (the
// smoke sizes cannot support the claims). `seconds` is the best of the
// timed repetitions; `flops` is the deterministic per-shape flop model
// the CI checker compares exactly across runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/randomized.hpp"
#include "linalg/autotune.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "workloads/lowrank.hpp"

namespace {

using parsvd::HouseholderQr;
using parsvd::Index;
using parsvd::Matrix;
using parsvd::MatrixF;
using parsvd::Precision;
using parsvd::RandomizedOptions;
using parsvd::Rng;
using parsvd::Trans;
using parsvd::Vector;

// ------------------------------------------------------------ references

// Faithful copy of the seed GEMM (pre-engine axpy-blocked triple loop) —
// the baseline the packed kernel is measured against. Compiled with the
// same flags as the engine so the comparison is algorithmic, not a
// compiler-flag artifact.
void gemm_seed(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
               const Matrix& b, double beta, Matrix& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  if (beta == 0.0) {
    c.fill(0.0);
  } else if (beta != 1.0) {
    c *= beta;
  }
  struct View {
    const double* data;
    Index stride_row, stride_col;
    double at(Index r, Index cc) const { return data[r * stride_row + cc * stride_col]; }
  };
  const View va = (trans_a == Trans::No) ? View{a.data(), 1, a.rows()}
                                         : View{a.data(), a.rows(), 1};
  const View vb = (trans_b == Trans::No) ? View{b.data(), 1, b.rows()}
                                         : View{b.data(), b.rows(), 1};
  constexpr Index kBlockK = 128;
  constexpr Index kBlockI = 128;
  for (Index jb = 0; jb < n; ++jb) {
    double* cj = c.col_data(jb);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index k1 = std::min(k, k0 + kBlockK);
      for (Index i0 = 0; i0 < m; i0 += kBlockI) {
        const Index i1 = std::min(m, i0 + kBlockI);
        for (Index kk = k0; kk < k1; ++kk) {
          const double bkj = alpha * vb.at(kk, jb);
          if (bkj == 0.0) continue;
          const double* arow = va.data + kk * va.stride_col;
          if (va.stride_row == 1) {
            for (Index i = i0; i < i1; ++i) cj[i] += bkj * arow[i];
          } else {
            for (Index i = i0; i < i1; ++i) cj[i] += bkj * arow[i * va.stride_row];
          }
        }
      }
    }
  }
}

// O(mnk) reference written against operator() only (smoke checks).
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (Index p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::gaussian(rows, cols, rng);
}

// ---------------------------------------------------------------- timing

struct Result {
  std::string kernel;
  Index m, n, k;
  int threads;
  double seconds;
  double gflops;
  double flops;  // deterministic per-shape model, for the CI checker
};

// Best-of-reps wall time: repeat until >= 0.2 s of samples (min 3 reps).
template <typename Fn>
double time_best(Fn&& fn) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (reps < 3 || (total < 0.2 && reps < 50)) {
    parsvd::Stopwatch watch;
    watch.start();
    fn();
    const double s = watch.stop();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return best;
}

class Harness {
 public:
  explicit Harness(bool smoke) : smoke_(smoke) {}

  void record(const std::string& kernel, Index m, Index n, Index k,
              int threads, double seconds, double flops) {
    const double gflops = (seconds > 0.0) ? flops / seconds * 1e-9 : 0.0;
    results_.push_back({kernel, m, n, k, threads, seconds, gflops, flops});
    std::printf("%-12s m=%-6td n=%-6td k=%-6td threads=%-2d  %10.4f ms  %8.2f GFLOP/s\n",
                kernel.c_str(), m, n, k, threads, seconds * 1e3, gflops);
    if (seconds <= 0.0 || gflops <= 0.0) {
      fail("kernel '" + kernel + "' reported nonpositive throughput");
    }
  }

  void check(bool ok, const std::string& what) {
    if (!ok) fail(what);
  }

  void fail(const std::string& what) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    failures_++;
  }

  int failures() const { return failures_; }
  const std::vector<Result>& results() const { return results_; }
  bool smoke() const { return smoke_; }

  // Full-size claim measurements; unset (emitted as null) in smoke runs.
  std::optional<double> seed_512_seconds;
  std::optional<double> packed_512_seconds;
  std::optional<double> f32_512_seconds;
  std::optional<double> rsvd_double_seconds;
  std::optional<double> rsvd_mixed_seconds;
  std::optional<double> rsvd_sigma_rel_err;
  std::optional<double> rsvd_single_sigma_rel_err;

  std::optional<parsvd::autotune::SweepResult> tune;

 private:
  bool smoke_;
  std::vector<Result> results_;
  int failures_ = 0;
};

// ---------------------------------------------------------------- benches

double cube_flops(Index s) {
  return 2.0 * static_cast<double>(s) * static_cast<double>(s) *
         static_cast<double>(s);
}

void record_gemm(Harness& h, const std::string& name, Index s, double sec,
                 int threads) {
  h.record(name, s, s, s, threads, sec, cube_flops(s));
}

// Full runs repeat the smoke shapes (cheap) so a fresh smoke run and the
// committed full trajectory always share entries for the CI flop-model
// comparison.
void bench_gemm(Harness& h) {
  const std::vector<Index> sizes =
      h.smoke() ? std::vector<Index>{64} : std::vector<Index>{64, 128, 256, 512};
  const std::vector<int> threads = h.smoke() ? std::vector<int>{1}
                                             : std::vector<int>{1, 2, 4};
  for (const Index s : sizes) {
    const Matrix a = random_matrix(s, s, 1);
    const Matrix b = random_matrix(s, s, 2);
    Matrix c(s, s);
    for (const int t : threads) {
      parsvd::ThreadPool::set_global_threads(static_cast<std::size_t>(t));
      const double sec = time_best([&] {
        parsvd::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
      });
      record_gemm(h, "gemm", s, sec, t);
      if (s == 512 && t == 1) h.packed_512_seconds = sec;
    }
  }
  parsvd::ThreadPool::set_global_threads(1);

  // Transposed operands route through the same packed kernel: record
  // points so regressions on the strided path show up in the trajectory.
  const std::vector<Index> tsizes =
      h.smoke() ? std::vector<Index>{48} : std::vector<Index>{48, 384};
  for (const Index ts : tsizes) {
    const Matrix at = random_matrix(ts, ts, 3);
    const Matrix bt = random_matrix(ts, ts, 4);
    Matrix ct(ts, ts);
    const double sec_tn = time_best([&] {
      parsvd::gemm(Trans::Yes, Trans::No, 1.0, at, bt, 0.0, ct);
    });
    record_gemm(h, "gemm_tn", ts, sec_tn, 1);
    const double sec_nt = time_best([&] {
      parsvd::gemm(Trans::No, Trans::Yes, 1.0, at, bt, 0.0, ct);
    });
    record_gemm(h, "gemm_nt", ts, sec_nt, 1);
  }

  // Seed-kernel comparison (single thread, same build flags).
  const std::vector<Index> csizes =
      h.smoke() ? std::vector<Index>{64} : std::vector<Index>{64, 512};
  for (const Index cs : csizes) {
    const Matrix a0 = random_matrix(cs, cs, 5);
    const Matrix b0 = random_matrix(cs, cs, 6);
    Matrix c0(cs, cs);
    const double sec_seed = time_best([&] {
      gemm_seed(Trans::No, Trans::No, 1.0, a0, b0, 0.0, c0);
    });
    record_gemm(h, "gemm_seed", cs, sec_seed, 1);
    if (cs == 512) h.seed_512_seconds = sec_seed;
  }
}

void bench_gemm_f32(Harness& h) {
  const std::vector<Index> sizes =
      h.smoke() ? std::vector<Index>{64} : std::vector<Index>{64, 256, 512};
  for (const Index s : sizes) {
    const MatrixF a = parsvd::to_single(random_matrix(s, s, 11));
    const MatrixF b = parsvd::to_single(random_matrix(s, s, 12));
    MatrixF c(s, s);
    const double sec = time_best([&] {
      parsvd::gemm_f32(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c);
    });
    record_gemm(h, "gemm_f32", s, sec, 1);
    if (s == 512) h.f32_512_seconds = sec;
  }
}

void bench_qr(Harness& h) {
  struct Shape {
    Index m, n;
  };
  const std::vector<Shape> shapes = h.smoke()
                                        ? std::vector<Shape>{{96, 24}}
                                        : std::vector<Shape>{{96, 24},
                                                             {2048, 128},
                                                             {8192, 64},
                                                             {512, 512}};
  for (const Shape s : shapes) {
    const Matrix a = random_matrix(s.m, s.n, 7);
    const double mm = static_cast<double>(s.m);
    const double nn = static_cast<double>(s.n);
    const double factor_flops = 2.0 * mm * nn * nn - 2.0 * nn * nn * nn / 3.0;
    const double sec_factor = time_best([&] { HouseholderQr f(a); });
    h.record("qr_factor", s.m, s.n, 0, 1, sec_factor, factor_flops);

    const HouseholderQr f(a);
    const double sec_q = time_best([&] { Matrix q = f.thin_q(); });
    h.record("qr_thin_q", s.m, s.n, 0, 1, sec_q, factor_flops);
  }
}

void bench_gram(Harness& h) {
  struct Shape {
    Index m, n;
  };
  const std::vector<Shape> shapes = h.smoke()
                                        ? std::vector<Shape>{{80, 24}}
                                        : std::vector<Shape>{{80, 24},
                                                             {8192, 256},
                                                             {2048, 512}};
  const std::vector<int> threads = h.smoke() ? std::vector<int>{1}
                                             : std::vector<int>{1, 4};
  for (const Shape s : shapes) {
    const Matrix a = random_matrix(s.m, s.n, 8);
    const double flops = static_cast<double>(s.m) * static_cast<double>(s.n) *
                         static_cast<double>(s.n);
    for (const int t : threads) {
      parsvd::ThreadPool::set_global_threads(static_cast<std::size_t>(t));
      const double sec = time_best([&] { Matrix g = parsvd::gram(a); });
      h.record("gram", s.m, s.n, 0, t, sec, flops);
    }
  }
  parsvd::ThreadPool::set_global_threads(1);
}

void bench_gemv(Harness& h) {
  struct Shape {
    Index m, n;
  };
  const std::vector<Shape> shapes = h.smoke()
                                        ? std::vector<Shape>{{96, 40}}
                                        : std::vector<Shape>{{96, 40},
                                                             {4096, 2048}};
  for (const Shape s : shapes) {
    const Matrix a = random_matrix(s.m, s.n, 9);
    Vector x(s.n), y(s.m);
    Rng rng(10);
    for (Index i = 0; i < s.n; ++i) x[i] = rng.gaussian();
    const double flops =
        2.0 * static_cast<double>(s.m) * static_cast<double>(s.n);
    const double sec_n = time_best([&] {
      parsvd::gemv(Trans::No, 1.0, a, x.span(), 0.0, y.span());
    });
    h.record("gemv", s.m, s.n, 0, 1, sec_n, flops);

    Vector xt(s.m), yt(s.n);
    for (Index i = 0; i < s.m; ++i) xt[i] = rng.gaussian();
    const double sec_t = time_best([&] {
      parsvd::gemv(Trans::Yes, 1.0, a, xt.span(), 0.0, yt.span());
    });
    h.record("gemv_t", s.m, s.n, 0, 1, sec_t, flops);
  }
}

// Flop model of one randomized SVD: sketch apply + power iterations +
// projection + lift, all through the range width sk = rank + oversampling.
double rsvd_flops(Index m, Index n, Index rank, Index oversampling,
                  int power) {
  const double mm = static_cast<double>(m);
  const double nn = static_cast<double>(n);
  const double sk =
      static_cast<double>(std::min(rank + oversampling, std::min(m, n)));
  return 2.0 * mm * nn * sk * (2.0 + 2.0 * power) +
         2.0 * mm * sk * static_cast<double>(rank);
}

// End-to-end mixed-precision randomized SVD: the acceptance case is
// 4096x2048 at rank 64 (fp64 vs mixed wall time, plus the refined
// singular-value agreement). Smoke shrinks the problem and only checks
// agreement — the claim fields stay null.
void bench_mixed_rsvd(Harness& h) {
  struct Case {
    Index m, n, rank, spectrum_len;
    bool claim;  // the acceptance shape whose numbers feed the claims
  };
  const std::vector<Case> cases =
      h.smoke() ? std::vector<Case>{{192, 96, 8, 24, false}}
                : std::vector<Case>{{192, 96, 8, 24, false},
                                    {4096, 2048, 64, 128, true}};
  for (const Case c : cases) {
    RandomizedOptions opts;
    opts.rank = c.rank;
    opts.oversampling = 8;
    opts.power_iterations = 2;
    opts.seed = 0xbe7c;
    opts.sketch_kind = parsvd::sketch::SketchKind::DenseGaussian;

    Rng rng(0x5eedf00d);
    // POD-like spiked spectrum: gentle geometric decay across the modes
    // the sketch captures, then a 1e-3 energy drop past the sketch width
    // (snapshot matrices of dissipative PDEs decay this way — compare the
    // Burgers spectra in tests/test_precision.cpp). The boundary gap is
    // what makes a fixed power-iteration count converge at all, and it is
    // what the Mixed refinement's final fp64 iteration contracts the fp32
    // subspace noise against; a gapless tail would measure the spectrum's
    // unresolvability, not the precision regimes.
    const Index sk = c.rank + opts.oversampling;
    Vector spectrum(c.spectrum_len);
    for (Index i = 0; i < c.spectrum_len; ++i) {
      spectrum[i] = i < sk ? std::pow(0.97, static_cast<double>(i))
                           : 1e-3 * std::pow(0.97, static_cast<double>(sk)) *
                                 std::pow(0.9, static_cast<double>(i - sk));
    }
    const Matrix a =
        parsvd::workloads::synthetic_low_rank(c.m, c.n, spectrum, rng);
    const double flops =
        rsvd_flops(c.m, c.n, opts.rank, opts.oversampling,
                   opts.power_iterations);

    RandomizedOptions od = opts;
    od.precision = Precision::Double;
    RandomizedOptions om = opts;
    om.precision = Precision::Mixed;
    RandomizedOptions os = opts;
    os.precision = Precision::Single;

    // Accuracy first (one run each, identical seeds → identical sketches).
    const parsvd::SvdResult fd = parsvd::randomized_svd(a, od);
    const parsvd::SvdResult fm = parsvd::randomized_svd(a, om);
    const parsvd::SvdResult fs = parsvd::randomized_svd(a, os);
    double mixed_err = 0.0, single_err = 0.0;
    for (Index i = 0; i < fd.s.size(); ++i) {
      mixed_err = std::max(mixed_err, std::abs(fm.s[i] - fd.s[i]) / fd.s[i]);
      single_err = std::max(single_err, std::abs(fs.s[i] - fd.s[i]) / fd.s[i]);
    }
    std::printf("rsvd %tdx%td sigma rel err: mixed %.3e  single %.3e\n", c.m,
                c.n, mixed_err, single_err);
    // The refinement contract holds at every size — gate it in smoke too.
    h.check(mixed_err < 1e-10,
            "mixed-path singular values drifted beyond 1e-10 of fp64");

    const double sec_d = time_best([&] {
      parsvd::SvdResult r = parsvd::randomized_svd(a, od);
    });
    h.record("rsvd_double", c.m, c.n, opts.rank, 1, sec_d, flops);
    const double sec_m = time_best([&] {
      parsvd::SvdResult r = parsvd::randomized_svd(a, om);
    });
    h.record("rsvd_mixed", c.m, c.n, opts.rank, 1, sec_m, flops);
    const double sec_s = time_best([&] {
      parsvd::SvdResult r = parsvd::randomized_svd(a, os);
    });
    h.record("rsvd_single", c.m, c.n, opts.rank, 1, sec_s, flops);

    if (c.claim) {
      h.rsvd_double_seconds = sec_d;
      h.rsvd_mixed_seconds = sec_m;
      h.rsvd_sigma_rel_err = mixed_err;
      h.rsvd_single_sigma_rel_err = single_err;
      std::printf("rsvd mixed speedup vs double: %.2fx\n", sec_d / sec_m);
    }
  }
}

// ------------------------------------------------------- smoke validation

void smoke_checks(Harness& h) {
  // GEMM: all four transpose combinations against the naive reference.
  {
    const Index m = 33, k = 17, n = 29;
    for (int combo = 0; combo < 4; ++combo) {
      const Trans ta = (combo & 1) ? Trans::Yes : Trans::No;
      const Trans tb = (combo & 2) ? Trans::Yes : Trans::No;
      const Matrix a = (ta == Trans::No) ? random_matrix(m, k, 20 + combo)
                                         : random_matrix(k, m, 20 + combo);
      const Matrix b = (tb == Trans::No) ? random_matrix(k, n, 30 + combo)
                                         : random_matrix(n, k, 30 + combo);
      const Matrix got = parsvd::matmul(a, b, ta, tb);
      const Matrix want =
          naive_matmul((ta == Trans::No) ? a : a.transposed(),
                       (tb == Trans::No) ? b : b.transposed());
      h.check(parsvd::max_abs_diff(got, want) < 1e-10,
              "gemm combo " + std::to_string(combo) + " disagrees with reference");
      // fp32 engine on the same operands: same structure, fp32 tolerance.
      const MatrixF got32 = parsvd::matmul_f32(parsvd::to_single(a),
                                               parsvd::to_single(b), ta, tb);
      h.check(parsvd::max_abs_diff(parsvd::to_double(got32), want) < 1e-3,
              "gemm_f32 combo " + std::to_string(combo) +
                  " disagrees with reference");
    }
  }
  // Packed GEMM vs the seed kernel on a size that engages packing.
  {
    const Matrix a = random_matrix(70, 65, 40);
    const Matrix b = random_matrix(65, 60, 41);
    Matrix c1(70, 60), c2(70, 60);
    parsvd::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c1);
    gemm_seed(Trans::No, Trans::No, 1.0, a, b, 0.0, c2);
    h.check(parsvd::max_abs_diff(c1, c2) < 1e-10, "packed gemm vs seed gemm");

    MatrixF c3(70, 60);
    parsvd::gemm_f32(Trans::No, Trans::No, 1.0f, parsvd::to_single(a),
                     parsvd::to_single(b), 0.0f, c3);
    h.check(parsvd::max_abs_diff(parsvd::to_double(c3), c2) < 1e-3,
            "packed gemm_f32 vs seed gemm");
  }
  // Compensated dot recovers a catastrophically cancelled sum exactly.
  {
    const std::vector<double> x = {1e9, 1.5, 1e9};
    const std::vector<double> y = {1e8, 2.0, -1e8};
    // products are [1e17, 3, -1e17]; naive fp64 rounds 1e17 + 3 to 1e17
    // and returns 0, Dot2 keeps the 3 exactly.
    h.check(parsvd::dot_compensated(x, y) == 3.0,
            "dot_compensated failed the cancellation fixture");
  }
  // Compensated Gram carries the same exactness through AᵀA.
  {
    Matrix a(3, 2);
    a(0, 0) = 1e9;  a(1, 0) = 1.5;  a(2, 0) = 1e9;
    a(0, 1) = 1e8;  a(1, 1) = 2.0;  a(2, 1) = -1e8;
    const Matrix g = parsvd::gram_compensated(a);
    h.check(g(0, 1) == 3.0 && g(1, 0) == 3.0,
            "gram_compensated failed the cancellation fixture");
  }
  // Blocked QR vs the unblocked reference sweep.
  {
    const Matrix a = random_matrix(50, 20, 42);
    const HouseholderQr blocked(a, 8);
    const HouseholderQr unblocked(a, 1);
    h.check(parsvd::max_abs_diff(blocked.r(), unblocked.r()) < 1e-10,
            "blocked QR R differs from unblocked");
    const Matrix q = blocked.thin_q();
    h.check(parsvd::orthogonality_error(q) < 1e-12, "blocked QR Q not orthonormal");
    h.check(parsvd::max_abs_diff(naive_matmul(q, blocked.r()), a) <
                1e-12 * a.norm_fro(),
            "blocked QR does not reconstruct A");
  }
  // Gram vs explicit product.
  {
    const Matrix a = random_matrix(37, 19, 43);
    h.check(parsvd::max_abs_diff(parsvd::gram(a),
                                 naive_matmul(a.transposed(), a)) < 1e-10,
            "gram disagrees with AᵀA");
  }
  // Gemv vs naive.
  {
    const Matrix a = random_matrix(41, 23, 44);
    Vector x(23), y(41);
    Rng rng(45);
    for (Index i = 0; i < 23; ++i) x[i] = rng.gaussian();
    parsvd::gemv(Trans::No, 1.0, a, x.span(), 0.0, y.span());
    Vector want(41);
    for (Index i = 0; i < 41; ++i) {
      double s = 0.0;
      for (Index j = 0; j < 23; ++j) s += a(i, j) * x[j];
      want[i] = s;
    }
    h.check(parsvd::max_abs_diff(y, want) < 1e-12, "gemv disagrees with reference");
  }
  std::printf("smoke checks: %s\n", h.failures() == 0 ? "ok" : "FAILED");
}

// ---------------------------------------------------------------- tuning

void run_tune(Harness& h, const std::string& profile_out) {
  std::printf("autotune sweep (%s)...\n", h.smoke() ? "smoke" : "full");
  parsvd::autotune::SweepResult sweep = parsvd::autotune::sweep(h.smoke());
  parsvd::autotune::save_profile(sweep.profile, profile_out);
  std::printf("wrote %s\n", profile_out.c_str());
  auto report = [](const char* name, const parsvd::autotune::SweepEntry& e) {
    std::printf(
        "tune %-4s best mc=%td kc=%td nc=%td mr=%td nr=%td  "
        "%.4f ms vs default %.4f ms (%.2fx, %d candidates)\n",
        name, e.best.mc, e.best.kc, e.best.nc, e.best.mr, e.best.nr,
        e.best_seconds * 1e3, e.default_seconds * 1e3,
        (e.best_seconds > 0.0) ? e.default_seconds / e.best_seconds : 0.0,
        e.candidates);
  };
  report("f64", sweep.f64);
  report("f32", sweep.f32);
  std::printf("tune qr   best block=%td  %.4f ms vs default %.4f ms\n",
              sweep.profile.qr_block, sweep.qr_best_seconds * 1e3,
              sweep.qr_default_seconds * 1e3);
  h.check(sweep.f64.best_seconds <= sweep.f64.default_seconds,
          "autotune f64 winner slower than the default blocking");
  h.check(sweep.f32.best_seconds <= sweep.f32.default_seconds,
          "autotune f32 winner slower than the default blocking");
  h.tune = std::move(sweep);
}

// ------------------------------------------------------------ JSON output

void print_opt(std::FILE* f, const char* key, std::optional<double> v,
               const char* suffix) {
  if (v.has_value()) {
    std::fprintf(f, "  \"%s\": %.6e%s\n", key, *v, suffix);
  } else {
    std::fprintf(f, "  \"%s\": null%s\n", key, suffix);
  }
}

void print_blocking(std::FILE* f, const parsvd::autotune::Blocking& b) {
  std::fprintf(f,
               "{\"mc\": %lld, \"kc\": %lld, \"nc\": %lld, \"mr\": %lld, "
               "\"nr\": %lld}",
               static_cast<long long>(b.mc), static_cast<long long>(b.kc),
               static_cast<long long>(b.nc), static_cast<long long>(b.mr),
               static_cast<long long>(b.nr));
}

bool write_json(const Harness& h, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  // No timestamp (or any other wall-clock artifact): the JSON must be
  // bit-reproducible apart from the measured seconds, so CI can diff
  // structure run-to-run. Enforced by the bench-clock lint rule.
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", h.smoke() ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  const parsvd::autotune::Profile& prof = parsvd::autotune::active_profile();
  std::fprintf(f, "  \"blocking\": {\"f64\": ");
  print_blocking(f, prof.f64);
  std::fprintf(f, ", \"f32\": ");
  print_blocking(f, prof.f32);
  std::fprintf(f, ", \"qr_block\": %lld, \"tuned\": %s},\n",
               static_cast<long long>(prof.qr_block),
               prof.tuned ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  const auto& rs = h.results();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const Result& r = rs[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
                 "\"threads\": %d, \"seconds\": %.6e, \"gflops\": %.4f, "
                 "\"flops\": %.6e}%s\n",
                 r.kernel.c_str(), static_cast<long long>(r.m),
                 static_cast<long long>(r.n), static_cast<long long>(r.k),
                 r.threads, r.seconds, r.gflops, r.flops,
                 (i + 1 < rs.size()) ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (h.tune.has_value()) {
    const parsvd::autotune::SweepResult& t = *h.tune;
    auto entry = [&](const char* name, const parsvd::autotune::SweepEntry& e,
                     const char* suffix) {
      std::fprintf(f, "    \"%s\": {\"best\": ", name);
      print_blocking(f, e.best);
      std::fprintf(f,
                   ", \"default_seconds\": %.6e, \"best_seconds\": %.6e, "
                   "\"speedup\": %.3f, \"candidates\": %d}%s\n",
                   e.default_seconds, e.best_seconds,
                   (e.best_seconds > 0.0) ? e.default_seconds / e.best_seconds
                                          : 0.0,
                   e.candidates, suffix);
    };
    std::fprintf(f, "  \"autotune\": {\n");
    std::fprintf(f, "    \"probe_size\": %lld,\n",
                 static_cast<long long>(t.probe_size));
    entry("f64", t.f64, ",");
    entry("f32", t.f32, ",");
    std::fprintf(f,
                 "    \"qr\": {\"block\": %lld, \"rows\": %lld, \"cols\": %lld, "
                 "\"default_seconds\": %.6e, \"best_seconds\": %.6e, "
                 "\"speedup\": %.3f}\n",
                 static_cast<long long>(t.profile.qr_block),
                 static_cast<long long>(t.qr_rows),
                 static_cast<long long>(t.qr_cols), t.qr_default_seconds,
                 t.qr_best_seconds,
                 (t.qr_best_seconds > 0.0)
                     ? t.qr_default_seconds / t.qr_best_seconds
                     : 0.0);
    std::fprintf(f, "  },\n");
  } else {
    std::fprintf(f, "  \"autotune\": null,\n");
  }
  print_opt(f, "gemm_512_seed_seconds", h.seed_512_seconds, ",");
  print_opt(f, "gemm_512_packed_seconds", h.packed_512_seconds, ",");
  std::optional<double> speedup_vs_seed;
  if (h.seed_512_seconds && h.packed_512_seconds && *h.packed_512_seconds > 0.0) {
    speedup_vs_seed = *h.seed_512_seconds / *h.packed_512_seconds;
  }
  print_opt(f, "gemm_512_speedup_vs_seed", speedup_vs_seed, ",");
  print_opt(f, "gemm_f32_512_seconds", h.f32_512_seconds, ",");
  std::optional<double> f32_speedup;
  if (h.packed_512_seconds && h.f32_512_seconds && *h.f32_512_seconds > 0.0) {
    f32_speedup = *h.packed_512_seconds / *h.f32_512_seconds;
  }
  print_opt(f, "gemm_f32_512_speedup_vs_f64", f32_speedup, ",");
  print_opt(f, "mixed_rsvd_double_seconds", h.rsvd_double_seconds, ",");
  print_opt(f, "mixed_rsvd_mixed_seconds", h.rsvd_mixed_seconds, ",");
  std::optional<double> rsvd_speedup;
  if (h.rsvd_double_seconds && h.rsvd_mixed_seconds &&
      *h.rsvd_mixed_seconds > 0.0) {
    rsvd_speedup = *h.rsvd_double_seconds / *h.rsvd_mixed_seconds;
  }
  print_opt(f, "mixed_rsvd_speedup", rsvd_speedup, ",");
  print_opt(f, "mixed_rsvd_sigma_rel_err", h.rsvd_sigma_rel_err, ",");
  print_opt(f, "single_rsvd_sigma_rel_err", h.rsvd_single_sigma_rel_err, ",");
  std::fprintf(f, "  \"failures\": %d\n", h.failures());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool tune = false;
  std::string out = parsvd::env::get_string("PARSVD_BENCH_OUT",
                                            "BENCH_kernels.json");
  std::string tune_out = "parsvd_tune.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
    } else if (std::strncmp(argv[i], "--tune-out=", 11) == 0) {
      tune_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--tune] [--tune-out=PATH] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  Harness h(smoke);
  smoke_checks(h);  // correctness gate runs in both modes (cheap)
  parsvd::ThreadPool::set_global_threads(1);
  if (tune) run_tune(h, tune_out);
  bench_gemm(h);
  bench_gemm_f32(h);
  bench_qr(h);
  bench_gram(h);
  bench_gemv(h);
  bench_mixed_rsvd(h);

  if (!smoke && h.packed_512_seconds && h.seed_512_seconds) {
    std::printf("gemm 512^3 single-thread speedup vs seed kernel: %.2fx\n",
                *h.seed_512_seconds / *h.packed_512_seconds);
  }
  if (!smoke && h.packed_512_seconds && h.f32_512_seconds) {
    std::printf("gemm_f32 512^3 speedup vs fp64: %.2fx\n",
                *h.packed_512_seconds / *h.f32_512_seconds);
  }
  const bool wrote = write_json(h, out);
  return (h.failures() == 0 && wrote) ? 0 : 1;
}
