// Dense-kernel microbenchmark — the repo's machine-readable perf
// trajectory for the level-3 kernel engine (gemm / blocked QR / gram /
// gemv). Times each kernel across sizes and thread counts, compares the
// packed GEMM against a faithful copy of the pre-engine ("seed") kernel,
// and persists everything to BENCH_kernels.json so later perf PRs are
// measured against a recorded baseline.
//
// Usage:
//   bench_kernels            full sweep, writes BENCH_kernels.json
//   bench_kernels --smoke    tiny sizes, asserts kernel-vs-reference
//                            agreement and nonzero throughput (ctest hook)
//   bench_kernels --out=F    write the JSON trajectory to F
//   PARSVD_BENCH_OUT=F       same as --out=F
//
// JSON schema (schema_version 1):
//   { bench, schema_version, smoke, hardware_concurrency,
//     blocking: {mc, kc, nc, mr, nr, qr_block},
//     results: [ {kernel, m, n, k, threads, seconds, gflops} ... ],
//     gemm_512_seed_seconds, gemm_512_packed_seconds,
//     gemm_512_speedup_vs_seed }
// `seconds` is the best of the timed repetitions; `gflops` uses the
// standard flop counts (2mnk for gemm, 2mn^2 - 2n^3/3 for QR, mn^2 for
// gram, 2mn for gemv).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using parsvd::HouseholderQr;
using parsvd::Index;
using parsvd::Matrix;
using parsvd::Rng;
using parsvd::Trans;
using parsvd::Vector;

// ------------------------------------------------------------ references

// Faithful copy of the seed GEMM (pre-engine axpy-blocked triple loop) —
// the baseline the packed kernel is measured against. Compiled with the
// same flags as the engine so the comparison is algorithmic, not a
// compiler-flag artifact.
void gemm_seed(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
               const Matrix& b, double beta, Matrix& c) {
  const Index m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const Index k = (trans_a == Trans::No) ? a.cols() : a.rows();
  const Index n = (trans_b == Trans::No) ? b.cols() : b.rows();
  if (beta == 0.0) {
    c.fill(0.0);
  } else if (beta != 1.0) {
    c *= beta;
  }
  struct View {
    const double* data;
    Index stride_row, stride_col;
    double at(Index r, Index cc) const { return data[r * stride_row + cc * stride_col]; }
  };
  const View va = (trans_a == Trans::No) ? View{a.data(), 1, a.rows()}
                                         : View{a.data(), a.rows(), 1};
  const View vb = (trans_b == Trans::No) ? View{b.data(), 1, b.rows()}
                                         : View{b.data(), b.rows(), 1};
  constexpr Index kBlockK = 128;
  constexpr Index kBlockI = 128;
  for (Index jb = 0; jb < n; ++jb) {
    double* cj = c.col_data(jb);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index k1 = std::min(k, k0 + kBlockK);
      for (Index i0 = 0; i0 < m; i0 += kBlockI) {
        const Index i1 = std::min(m, i0 + kBlockI);
        for (Index kk = k0; kk < k1; ++kk) {
          const double bkj = alpha * vb.at(kk, jb);
          if (bkj == 0.0) continue;
          const double* arow = va.data + kk * va.stride_col;
          if (va.stride_row == 1) {
            for (Index i = i0; i < i1; ++i) cj[i] += bkj * arow[i];
          } else {
            for (Index i = i0; i < i1; ++i) cj[i] += bkj * arow[i * va.stride_row];
          }
        }
      }
    }
  }
}

// O(mnk) reference written against operator() only (smoke checks).
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (Index p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::gaussian(rows, cols, rng);
}

// ---------------------------------------------------------------- timing

struct Result {
  std::string kernel;
  Index m, n, k;
  int threads;
  double seconds;
  double gflops;
};

// Best-of-reps wall time: repeat until >= 0.2 s of samples (min 3 reps).
template <typename Fn>
double time_best(Fn&& fn) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (reps < 3 || (total < 0.2 && reps < 50)) {
    parsvd::Stopwatch watch;
    watch.start();
    fn();
    const double s = watch.stop();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return best;
}

class Harness {
 public:
  explicit Harness(bool smoke) : smoke_(smoke) {}

  void record(const std::string& kernel, Index m, Index n, Index k,
              int threads, double seconds, double flops) {
    const double gflops = (seconds > 0.0) ? flops / seconds * 1e-9 : 0.0;
    results_.push_back({kernel, m, n, k, threads, seconds, gflops});
    std::printf("%-12s m=%-6td n=%-6td k=%-6td threads=%-2d  %10.4f ms  %8.2f GFLOP/s\n",
                kernel.c_str(), m, n, k, threads, seconds * 1e3, gflops);
    if (seconds <= 0.0 || gflops <= 0.0) {
      fail("kernel '" + kernel + "' reported nonpositive throughput");
    }
  }

  void check(bool ok, const std::string& what) {
    if (!ok) fail(what);
  }

  void fail(const std::string& what) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    failures_++;
  }

  int failures() const { return failures_; }
  const std::vector<Result>& results() const { return results_; }
  bool smoke() const { return smoke_; }

  double seed_512_seconds = 0.0;
  double packed_512_seconds = 0.0;

 private:
  bool smoke_;
  std::vector<Result> results_;
  int failures_ = 0;
};

// ---------------------------------------------------------------- benches

void record_gemm(Harness& h, const std::string& name, Index s, double sec,
                 int threads);

void bench_gemm(Harness& h) {
  const std::vector<Index> sizes = h.smoke() ? std::vector<Index>{64}
                                             : std::vector<Index>{128, 256, 512};
  const std::vector<int> threads = h.smoke() ? std::vector<int>{1}
                                             : std::vector<int>{1, 2, 4};
  for (const Index s : sizes) {
    const Matrix a = random_matrix(s, s, 1);
    const Matrix b = random_matrix(s, s, 2);
    Matrix c(s, s);
    for (const int t : threads) {
      parsvd::ThreadPool::set_global_threads(static_cast<std::size_t>(t));
      const double sec = time_best([&] {
        parsvd::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
      });
      record_gemm(h, "gemm", s, sec, t);
      if (s == 512 && t == 1) h.packed_512_seconds = sec;
    }
  }
  parsvd::ThreadPool::set_global_threads(1);

  // Transposed operands route through the same packed kernel: record one
  // point so regressions on the strided path show up in the trajectory.
  const Index ts = h.smoke() ? 48 : 384;
  const Matrix at = random_matrix(ts, ts, 3);
  const Matrix bt = random_matrix(ts, ts, 4);
  Matrix ct(ts, ts);
  const double sec_tn = time_best([&] {
    parsvd::gemm(Trans::Yes, Trans::No, 1.0, at, bt, 0.0, ct);
  });
  record_gemm(h, "gemm_tn", ts, sec_tn, 1);
  const double sec_nt = time_best([&] {
    parsvd::gemm(Trans::No, Trans::Yes, 1.0, at, bt, 0.0, ct);
  });
  record_gemm(h, "gemm_nt", ts, sec_nt, 1);

  // Seed-kernel comparison (single thread, same build flags).
  const Index cs = h.smoke() ? 64 : 512;
  const Matrix a0 = random_matrix(cs, cs, 5);
  const Matrix b0 = random_matrix(cs, cs, 6);
  Matrix c0(cs, cs);
  const double sec_seed = time_best([&] {
    gemm_seed(Trans::No, Trans::No, 1.0, a0, b0, 0.0, c0);
  });
  record_gemm(h, "gemm_seed", cs, sec_seed, 1);
  if (cs == 512) h.seed_512_seconds = sec_seed;
}

void record_gemm(Harness& h, const std::string& name, Index s, double sec,
                 int threads);

void record_gemm(Harness& h, const std::string& name, Index s, double sec,
                 int threads) {
  const double flops = 2.0 * static_cast<double>(s) * static_cast<double>(s) *
                       static_cast<double>(s);
  h.record(name, s, s, s, threads, sec, flops);
}

void bench_qr(Harness& h) {
  struct Shape {
    Index m, n;
  };
  const std::vector<Shape> shapes = h.smoke()
                                        ? std::vector<Shape>{{96, 24}}
                                        : std::vector<Shape>{{2048, 128},
                                                             {8192, 64},
                                                             {512, 512}};
  for (const Shape s : shapes) {
    const Matrix a = random_matrix(s.m, s.n, 7);
    const double mm = static_cast<double>(s.m);
    const double nn = static_cast<double>(s.n);
    const double factor_flops = 2.0 * mm * nn * nn - 2.0 * nn * nn * nn / 3.0;
    const double sec_factor = time_best([&] { HouseholderQr f(a); });
    h.record("qr_factor", s.m, s.n, 0, 1, sec_factor, factor_flops);

    const HouseholderQr f(a);
    const double sec_q = time_best([&] { Matrix q = f.thin_q(); });
    h.record("qr_thin_q", s.m, s.n, 0, 1, sec_q, factor_flops);
  }
}

void bench_gram(Harness& h) {
  struct Shape {
    Index m, n;
  };
  const std::vector<Shape> shapes = h.smoke()
                                        ? std::vector<Shape>{{80, 24}}
                                        : std::vector<Shape>{{8192, 256},
                                                             {2048, 512}};
  const std::vector<int> threads = h.smoke() ? std::vector<int>{1}
                                             : std::vector<int>{1, 4};
  for (const Shape s : shapes) {
    const Matrix a = random_matrix(s.m, s.n, 8);
    const double flops = static_cast<double>(s.m) * static_cast<double>(s.n) *
                         static_cast<double>(s.n);
    for (const int t : threads) {
      parsvd::ThreadPool::set_global_threads(static_cast<std::size_t>(t));
      const double sec = time_best([&] { Matrix g = parsvd::gram(a); });
      h.record("gram", s.m, s.n, 0, t, sec, flops);
    }
  }
  parsvd::ThreadPool::set_global_threads(1);
}

void bench_gemv(Harness& h) {
  const Index m = h.smoke() ? 96 : 4096;
  const Index n = h.smoke() ? 40 : 2048;
  const Matrix a = random_matrix(m, n, 9);
  Vector x(n), y(m);
  Rng rng(10);
  for (Index i = 0; i < n; ++i) x[i] = rng.gaussian();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n);
  const double sec_n = time_best([&] {
    parsvd::gemv(Trans::No, 1.0, a, x.span(), 0.0, y.span());
  });
  h.record("gemv", m, n, 0, 1, sec_n, flops);

  Vector xt(m), yt(n);
  for (Index i = 0; i < m; ++i) xt[i] = rng.gaussian();
  const double sec_t = time_best([&] {
    parsvd::gemv(Trans::Yes, 1.0, a, xt.span(), 0.0, yt.span());
  });
  h.record("gemv_t", m, n, 0, 1, sec_t, flops);
}

// ------------------------------------------------------- smoke validation

void smoke_checks(Harness& h) {
  // GEMM: all four transpose combinations against the naive reference.
  {
    const Index m = 33, k = 17, n = 29;
    for (int combo = 0; combo < 4; ++combo) {
      const Trans ta = (combo & 1) ? Trans::Yes : Trans::No;
      const Trans tb = (combo & 2) ? Trans::Yes : Trans::No;
      const Matrix a = (ta == Trans::No) ? random_matrix(m, k, 20 + combo)
                                         : random_matrix(k, m, 20 + combo);
      const Matrix b = (tb == Trans::No) ? random_matrix(k, n, 30 + combo)
                                         : random_matrix(n, k, 30 + combo);
      const Matrix got = parsvd::matmul(a, b, ta, tb);
      const Matrix want =
          naive_matmul((ta == Trans::No) ? a : a.transposed(),
                       (tb == Trans::No) ? b : b.transposed());
      h.check(parsvd::max_abs_diff(got, want) < 1e-10,
              "gemm combo " + std::to_string(combo) + " disagrees with reference");
    }
  }
  // Packed GEMM vs the seed kernel on a size that engages packing.
  {
    const Matrix a = random_matrix(70, 65, 40);
    const Matrix b = random_matrix(65, 60, 41);
    Matrix c1(70, 60), c2(70, 60);
    parsvd::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c1);
    gemm_seed(Trans::No, Trans::No, 1.0, a, b, 0.0, c2);
    h.check(parsvd::max_abs_diff(c1, c2) < 1e-10, "packed gemm vs seed gemm");
  }
  // Blocked QR vs the unblocked reference sweep.
  {
    const Matrix a = random_matrix(50, 20, 42);
    const HouseholderQr blocked(a, 8);
    const HouseholderQr unblocked(a, 1);
    h.check(parsvd::max_abs_diff(blocked.r(), unblocked.r()) < 1e-10,
            "blocked QR R differs from unblocked");
    const Matrix q = blocked.thin_q();
    h.check(parsvd::orthogonality_error(q) < 1e-12, "blocked QR Q not orthonormal");
    h.check(parsvd::max_abs_diff(naive_matmul(q, blocked.r()), a) <
                1e-12 * a.norm_fro(),
            "blocked QR does not reconstruct A");
  }
  // Gram vs explicit product.
  {
    const Matrix a = random_matrix(37, 19, 43);
    h.check(parsvd::max_abs_diff(parsvd::gram(a),
                                 naive_matmul(a.transposed(), a)) < 1e-10,
            "gram disagrees with AᵀA");
  }
  // Gemv vs naive.
  {
    const Matrix a = random_matrix(41, 23, 44);
    Vector x(23), y(41);
    Rng rng(45);
    for (Index i = 0; i < 23; ++i) x[i] = rng.gaussian();
    parsvd::gemv(Trans::No, 1.0, a, x.span(), 0.0, y.span());
    Vector want(41);
    for (Index i = 0; i < 41; ++i) {
      double s = 0.0;
      for (Index j = 0; j < 23; ++j) s += a(i, j) * x[j];
      want[i] = s;
    }
    h.check(parsvd::max_abs_diff(y, want) < 1e-12, "gemv disagrees with reference");
  }
  std::printf("smoke checks: %s\n", h.failures() == 0 ? "ok" : "FAILED");
}

// ------------------------------------------------------------ JSON output

bool write_json(const Harness& h, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  // No timestamp (or any other wall-clock artifact): the JSON must be
  // bit-reproducible apart from the measured seconds, so CI can diff
  // structure run-to-run. Enforced by the bench-clock lint rule.
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", h.smoke() ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"blocking\": {\"mc\": %lld, \"kc\": %lld, \"nc\": %lld, "
               "\"mr\": 8, \"nr\": 6, \"qr_block\": %lld},\n",
               static_cast<long long>(parsvd::env::get_int("PARSVD_GEMM_MC", 96)),
               static_cast<long long>(parsvd::env::get_int("PARSVD_GEMM_KC", 256)),
               static_cast<long long>(parsvd::env::get_int("PARSVD_GEMM_NC", 4032)),
               static_cast<long long>(parsvd::env::get_int("PARSVD_QR_BLOCK", 32)));
  std::fprintf(f, "  \"results\": [\n");
  const auto& rs = h.results();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const Result& r = rs[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
                 "\"threads\": %d, \"seconds\": %.6e, \"gflops\": %.4f}%s\n",
                 r.kernel.c_str(), static_cast<long long>(r.m),
                 static_cast<long long>(r.n), static_cast<long long>(r.k),
                 r.threads, r.seconds, r.gflops,
                 (i + 1 < rs.size()) ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gemm_512_seed_seconds\": %.6e,\n", h.seed_512_seconds);
  std::fprintf(f, "  \"gemm_512_packed_seconds\": %.6e,\n", h.packed_512_seconds);
  const double speedup = (h.packed_512_seconds > 0.0)
                             ? h.seed_512_seconds / h.packed_512_seconds
                             : 0.0;
  std::fprintf(f, "  \"gemm_512_speedup_vs_seed\": %.3f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = parsvd::env::get_string("PARSVD_BENCH_OUT",
                                            "BENCH_kernels.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  Harness h(smoke);
  smoke_checks(h);  // correctness gate runs in both modes (cheap)
  parsvd::ThreadPool::set_global_threads(1);
  bench_gemm(h);
  bench_qr(h);
  bench_gram(h);
  bench_gemv(h);

  if (!smoke && h.packed_512_seconds > 0.0) {
    std::printf("gemm 512^3 single-thread speedup vs seed kernel: %.2fx\n",
                h.seed_512_seconds / h.packed_512_seconds);
  }
  const bool wrote = write_json(h, out);
  return (h.failures() == 0 && wrote) ? 0 : 1;
}
