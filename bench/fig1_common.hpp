// Shared driver for the Figure 1(a)/(b) reproductions: serial SVD vs the
// randomized+parallel (APMOS, 4 ranks) SVD of the Burgers snapshot
// matrix, reported as the paper plots it — the singular-vector profile
// and the pointwise |serial - parallel| error curve for one mode.
//
// Paper parameters: 16384 grid points, 800 snapshots, Re = 1000, 4 ranks,
// r1 = 50, r2 = 5. Defaults here are scaled (4096 x 200) so the whole
// bench suite runs in minutes on a laptop; set PARSVD_FULL=1 to run the
// exact paper size.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "core/apmos.hpp"
#include "io/matrix_io.hpp"
#include "linalg/svd.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"

namespace parsvd::bench {

inline int run_fig1(Index mode, const std::string& csv_name) {
  namespace wl = workloads;
  const bool full = env::get_bool("PARSVD_FULL", false);

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", full ? 16384 : 4096);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", full ? 800 : 200);
  const int ranks = static_cast<int>(env::get_int("PARSVD_RANKS", 4));

  ApmosOptions aopts;
  aopts.r1 = env::get_int("PARSVD_R1", 50);
  aopts.r2 = env::get_int("PARSVD_R2", 5);
  aopts.low_rank = true;  // the paper's "randomized+parallel deployment"
  aopts.randomized.oversampling = 8;
  aopts.randomized.power_iterations = 2;
  // Local stage via method of snapshots (M_i >> N here, the case the
  // paper §3.2 calls out) on the fast tridiagonal eigensolver.
  aopts.method = SvdMethod::MethodOfSnapshots;
  aopts.eigh_method = EighMethod::Tridiagonal;

  std::printf("=== Figure 1(%c): singular vector %lld, serial vs "
              "randomized+parallel ===\n",
              mode == 0 ? 'a' : 'b', static_cast<long long>(mode + 1));
  std::printf("Burgers %lld x %lld, Re = %.0f, %d ranks, r1 = %lld, "
              "r2 = %lld\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots), cfg.reynolds, ranks,
              static_cast<long long>(aopts.r1),
              static_cast<long long>(aopts.r2));

  wl::Burgers burgers(cfg);

  // Serial reference: method of snapshots (m >> n), exactly the
  // comparison baseline the paper uses.
  Stopwatch serial_watch;
  serial_watch.start();
  const Matrix data = burgers.snapshot_matrix();
  SvdOptions sopts;
  sopts.method = SvdMethod::MethodOfSnapshots;
  sopts.eigh_method = EighMethod::Tridiagonal;
  sopts.rank = aopts.r2;
  SvdResult serial = svd(data, sopts);
  fix_svd_signs(serial.u, serial.v);
  const double t_serial = serial_watch.stop();

  // Distributed randomized run.
  Matrix par_modes;
  Vector par_s;
  std::mutex mu;
  Stopwatch par_watch;
  par_watch.start();
  pmpi::run(ranks, [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, ranks, comm.rank());
    const Matrix local =
        burgers.snapshot_block(part.offset, part.count, 0, cfg.snapshots);
    ApmosResult res = apmos_svd(comm, local, aopts);
    const std::vector<Matrix> blocks = comm.gather_matrices(res.u_local, 0);
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      par_modes = vcat(blocks);
      par_s = res.s;
    }
  });
  const double t_parallel = par_watch.stop();

  // The paper's plotted quantities: mode profile + pointwise error.
  const Matrix aligned = post::align_signs(par_modes, serial.u);
  const Vector err = post::pointwise_mode_error(par_modes, serial.u, mode);

  std::printf("\nsigma_%lld: serial = %.8f, parallel = %.8f\n",
              static_cast<long long>(mode + 1), serial.s[mode], par_s[mode]);
  std::printf("timing: serial SVD %.3f s, randomized+parallel %.3f s "
              "(%d thread-backed ranks)\n",
              t_serial, t_parallel, ranks);

  // Profile table, downsampled to 17 points across the domain (the
  // curve the paper draws).
  std::printf("\n%-10s %16s %16s %14s\n", "x", "serial U", "parallel U",
              "|error|");
  const Index stride = std::max<Index>(1, cfg.grid_points / 16);
  for (Index i = 0; i < cfg.grid_points; i += stride) {
    const double x = static_cast<double>(i) /
                     static_cast<double>(cfg.grid_points - 1);
    std::printf("%-10.4f %16.8f %16.8f %14.3e\n", x, serial.u(i, mode),
                aligned(i, mode), err[i]);
  }
  double mean_err = 0.0;
  for (Index i = 0; i < err.size(); ++i) mean_err += err[i];
  mean_err /= static_cast<double>(err.size());
  std::printf("\nerror: max = %.3e, mean = %.3e  (paper shows ~1e-4..1e-3 "
              "band for this comparison)\n",
              err.norm_inf(), mean_err);

  std::printf("\nmode %lld profile (serial):\n",
              static_cast<long long>(mode + 1));
  std::fputs(post::ascii_plot(serial.u.col(mode), 12, 72).c_str(), stdout);

  // Full-resolution curves for external plotting.
  Matrix csv(cfg.grid_points, 3);
  for (Index i = 0; i < cfg.grid_points; ++i) {
    csv(i, 0) = serial.u(i, mode);
    csv(i, 1) = aligned(i, mode);
    csv(i, 2) = err[i];
  }
  io::write_csv(csv_name, csv, {"serial", "parallel", "abs_error"});
  std::printf("wrote %s\n\n", csv_name.c_str());
  return 0;
}

}  // namespace parsvd::bench
