// Ablation: deterministic SVD backend choice (one-sided Jacobi vs
// Golub-Kahan vs method of snapshots) across the matrix shapes the
// library actually sees — square R factors from the streaming update and
// tall-skinny snapshot blocks from APMOS stage 1.
#include <benchmark/benchmark.h>

#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace {

using namespace parsvd;

Matrix make_input(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::gaussian(m, n, rng);
}

void BM_SvdJacobi(benchmark::State& state) {
  const Matrix a = make_input(state.range(0), state.range(1), 17);
  SvdOptions opts;
  opts.method = SvdMethod::Jacobi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd(a, opts));
  }
}

void BM_SvdGolubKahan(benchmark::State& state) {
  const Matrix a = make_input(state.range(0), state.range(1), 17);
  SvdOptions opts;
  opts.method = SvdMethod::GolubKahan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd(a, opts));
  }
}

void BM_SvdMethodOfSnapshots(benchmark::State& state) {
  const Matrix a = make_input(state.range(0), state.range(1), 17);
  SvdOptions opts;
  opts.method = SvdMethod::MethodOfSnapshots;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd(a, opts));
  }
}

// Square R-factor shapes (streaming update inner SVD).
BENCHMARK(BM_SvdJacobi)->Args({60, 60})->Args({120, 120})->Args({240, 240})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SvdGolubKahan)->Args({60, 60})->Args({120, 120})->Args({240, 240})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SvdMethodOfSnapshots)->Args({60, 60})->Args({120, 120})
    ->Args({240, 240})->Unit(benchmark::kMillisecond);

// Tall-skinny snapshot blocks (APMOS stage 1).
BENCHMARK(BM_SvdJacobi)->Args({4096, 64})->Args({8192, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SvdGolubKahan)->Args({4096, 64})->Args({8192, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SvdMethodOfSnapshots)->Args({4096, 64})->Args({8192, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
