// Reproduces Figure 2: the first two coherent-structure modes of the
// global surface-pressure dataset, computed with parallel IO through the
// chunked snapshot store and the distributed streaming SVD.
//
// The real ERA5 pressure field is access-gated; the synthetic analogue
// plants known planetary-wave modes (DESIGN.md §1), so in addition to
// rendering the two mode maps (what the paper shows) this bench scores
// the recovered modes against the planted ground truth.
//
// PARSVD_SNAPSHOTS (default 2000; paper period = 11688), PARSVD_RANKS.
#include <cstdio>
#include <mutex>

#include "core/parallel_streaming.hpp"
#include "io/snapshot_store.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/era5_synthetic.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::Era5Config cfg;
  cfg.n_lon = env::get_int("PARSVD_LON", 144);
  cfg.n_lat = env::get_int("PARSVD_LAT", 72);
  cfg.snapshots =
      env::get_int("PARSVD_SNAPSHOTS", env::get_bool("PARSVD_FULL", false)
                                           ? 11688
                                           : 2000);
  cfg.n_modes = 6;
  const int ranks = static_cast<int>(env::get_int("PARSVD_RANKS", 4));
  const Index batch = env::get_int("PARSVD_BATCH", 200);
  const std::string store = "fig2_era5.snap";

  std::printf("=== Figure 2: ERA5-analogue surface pressure modes ===\n");
  std::printf("grid %lld x %lld (%lld cells), %lld snapshots (6-hourly), "
              "%d ranks\n",
              static_cast<long long>(cfg.n_lat),
              static_cast<long long>(cfg.n_lon),
              static_cast<long long>(cfg.n_lat * cfg.n_lon),
              static_cast<long long>(cfg.snapshots), ranks);

  wl::Era5Synthetic era(cfg);

  Stopwatch io_watch;
  io_watch.start();
  {
    io::SnapshotWriter writer(store, era.grid_size(), 64);
    Index written = 0;
    while (written < cfg.snapshots) {
      const Index take = std::min<Index>(256, cfg.snapshots - written);
      writer.append_batch(era.snapshot_block(0, era.grid_size(), written,
                                             take, /*subtract_mean=*/true));
      written += take;
    }
    writer.close();
  }
  const double t_io = io_watch.stop();

  StreamingOptions opts;
  opts.num_modes = 4;
  opts.forget_factor = env::get_double("PARSVD_FF", 1.0);

  Matrix modes;
  Vector s;
  std::mutex mu;
  Stopwatch solve;
  solve.start();
  auto ctx = pmpi::run_with_stats(ranks, [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(era.grid_size(), ranks, comm.rank());
    wl::StoreBatchSource source(store, part.offset, part.count);
    ParallelStreamingSVD psvd(comm, opts);
    psvd.initialize(source.next_batch(batch));
    while (!source.exhausted()) {
      psvd.incorporate_data(source.next_batch(batch));
    }
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      modes = psvd.modes();
      s = psvd.singular_values();
    }
  });
  const double t_solve = solve.stop();

  std::printf("dataset write: %.2f s; distributed streaming SVD: %.2f s; "
              "comm volume: %.2f MB\n",
              t_io, t_solve,
              static_cast<double>(ctx->total_bytes()) / (1024.0 * 1024.0));

  std::printf("\n%-6s %14s %20s\n", "mode", "sigma", "cosine vs planted");
  for (Index m = 0; m < opts.num_modes; ++m) {
    std::printf("%-6lld %14.4f %20.6f\n", static_cast<long long>(m + 1), s[m],
                post::mode_cosine(modes, m, era.true_modes(), m));
  }

  for (Index m = 0; m < 2; ++m) {
    const std::string pgm = "fig2_mode" + std::to_string(m + 1) + ".pgm";
    post::write_mode_pgm(pgm, modes.col(m), cfg.n_lat, cfg.n_lon);
    std::printf("\nFigure 2, mode %lld (image: %s):\n",
                static_cast<long long>(m + 1), pgm.c_str());
    std::fputs(
        post::ascii_heatmap(modes.col(m), cfg.n_lat, cfg.n_lon, 18, 72)
            .c_str(),
        stdout);
  }
  std::printf("\n");
  std::remove(store.c_str());
  return 0;
}
