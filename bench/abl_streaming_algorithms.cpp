// Ablation: streaming-update algorithm — Levy-Lindenbaum (Algorithm 1,
// the paper's choice) vs Brand's incremental SVD (the classical baseline
// the paper cites through the recommender-system lineage).
//
// Same stream, same K, same ff: per-update cost differs structurally —
// Levy-Lindenbaum re-QRs the full m x (K + B) concatenation every batch;
// Brand factors only the (K + b') x (K + B) core after projecting, and
// can optionally carry right singular vectors. The bench reports wall
// time and the spectrum deviation from the batch SVD for both.
#include <cstdio>

#include "core/incremental_brand.hpp"
#include "core/streaming.hpp"
#include "io/matrix_io.hpp"
#include "linalg/svd.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 8192);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 400);
  const Index num_modes = env::get_int("PARSVD_MODES", 10);
  const Index batch = env::get_int("PARSVD_BATCH", 40);

  std::printf("=== Ablation: streaming update algorithm ===\n");
  std::printf("Burgers %lld x %lld, K = %lld, B = %lld, ff = 1.0\n\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots),
              static_cast<long long>(num_modes),
              static_cast<long long>(batch));

  wl::Burgers burgers(cfg);
  const Matrix data = burgers.snapshot_matrix();
  SvdOptions ref_opts;
  ref_opts.method = SvdMethod::MethodOfSnapshots;
  ref_opts.eigh_method = EighMethod::Tridiagonal;
  ref_opts.rank = num_modes;
  const SvdResult ref = svd(data, ref_opts);

  StreamingOptions opts;
  opts.num_modes = num_modes;
  opts.forget_factor = 1.0;

  auto drive = [&](SvdBase& s) {
    Stopwatch watch;
    watch.start();
    Index done = 0;
    while (done < cfg.snapshots) {
      const Index take = std::min(batch, cfg.snapshots - done);
      const Matrix block = data.block(0, done, cfg.grid_points, take);
      if (done == 0) {
        s.initialize(block);
      } else {
        s.incorporate_data(block);
      }
      done += take;
    }
    return watch.stop();
  };

  std::printf("%-32s %10s %14s %22s\n", "algorithm", "time[s]", "snaps/s",
              "max rel sigma err");
  std::vector<std::array<double, 3>> rows;
  auto report = [&](const char* name, SvdBase& s, double t) {
    const double err =
        post::spectrum_relative_error(ref.s, s.singular_values()).norm_inf();
    std::printf("%-32s %10.3f %14.0f %22.3e\n", name, t,
                static_cast<double>(cfg.snapshots) / t, err);
    rows.push_back({t, static_cast<double>(cfg.snapshots) / t, err});
  };

  {
    SerialStreamingSVD ll(opts);
    const double t = drive(ll);
    report("Levy-Lindenbaum (paper Alg. 1)", ll, t);
  }
  {
    IncrementalSVD brand(opts);
    const double t = drive(brand);
    report("Brand incremental", brand, t);
  }
  {
    IncrementalSVD brand_v(opts, /*track_right_vectors=*/true);
    const double t = drive(brand_v);
    report("Brand incremental (+V)", brand_v, t);
  }
  {
    StreamingOptions ropts = opts;
    ropts.low_rank = true;
    ropts.randomized.oversampling = 8;
    ropts.randomized.power_iterations = 1;
    SerialStreamingSVD ll_rand(ropts);
    const double t = drive(ll_rand);
    report("Levy-Lindenbaum + randomized", ll_rand, t);
  }

  Matrix out(static_cast<Index>(rows.size()), 3);
  for (Index i = 0; i < out.rows(); ++i) {
    for (Index j = 0; j < 3; ++j) {
      out(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  io::write_csv("abl_streaming_algorithms.csv", out,
                {"time_s", "snaps_per_s", "max_rel_sigma_err"});
  std::printf("\nboth updates track the batch spectrum; Brand's core-only "
              "refactorization\nwins on throughput for m >> K + B, at the "
              "price of the periodic\nre-orthonormalization. wrote "
              "abl_streaming_algorithms.csv\n\n");
  return 0;
}
