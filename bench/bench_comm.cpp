// Collective-algorithm and streaming-prefetch benchmark.
//
// Part 1 sweeps the three collectives the solvers lean on (gather,
// bcast, allreduce) over rank counts and payload sizes, once with the
// flat O(P) topologies and once with the log(P) trees (binomial
// gather/bcast, recursive-doubling allreduce). Because this host runs
// every rank as a thread — often on far fewer cores than ranks — raw
// wall-clock cannot demonstrate the latency win; each entry therefore
// records three quantities:
//   * seconds            measured (best of reps; informational only)
//   * model_seconds      alpha-beta critical-path cost of the topology
//                        (alpha = per-message latency, beta = s/byte),
//                        the machine-independent algorithmic term
//   * per-round counters exact bytes/messages moved, and root's posted
//                        bytes — deterministic, so CI can gate on them
// The committed BENCH_comm.json is the trajectory; the claim block
// shows tree beating flat on the model for P >= 8 at >= 1 MiB.
//
// Part 2 times the pipelined streaming executor end-to-end on the
// Burgers weak-scaling workload: ParallelStreamingSVD fed by a
// GeneratorBatchSource whose generator carries a configurable ingest
// latency (the paper's streaming setting is I/O-bound: snapshots arrive
// from disk or a running simulation). With prefetch on, a background
// thread pulls the next batch while the solver factors the current one,
// so the sleep overlaps compute even on a single core. A zero-latency
// variant is recorded too — on a CPU-bound all-core run prefetch cannot
// win wall-clock, and pretending otherwise would be dishonest. Both
// variants assert bit-identical singular values with prefetch on/off.
//
// Usage:
//   bench_comm            full sweep, writes BENCH_comm.json
//   bench_comm --smoke    tiny rounds, correctness asserts only
//   bench_comm --out=F    write the JSON to F
//   PARSVD_BENCH_OUT=F    same as --out=F
//
// JSON schema (schema_version 1): see write_json below.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_streaming.hpp"
#include "pmpi/comm.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"
#include "workloads/streaming_executor.hpp"

namespace {

using parsvd::Index;
using parsvd::Matrix;
using parsvd::Vector;
using parsvd::pmpi::CollectiveAlgo;
using parsvd::pmpi::Communicator;
using parsvd::pmpi::Context;
namespace wl = parsvd::workloads;

// alpha-beta machine model for the critical-path costs: a generic
// cluster-interconnect operating point (1 us latency, 10 GB/s), recorded
// in the JSON so the trajectory is self-describing.
constexpr double kAlphaSeconds = 1e-6;
constexpr double kBetaSecondsPerByte = 1e-10;

int ceil_log2(int p) {
  int levels = 0;
  while ((1 << levels) < p) ++levels;
  return levels;
}

// Critical-path cost of one collective under the alpha-beta model.
// `bytes` is one rank's contribution (gather/allreduce) or the payload
// (bcast). Rank counts in the sweep are powers of two, so the
// recursive-doubling allreduce needs no fold-in term.
double model_seconds(const std::string& coll, bool tree, int p,
                     std::size_t bytes) {
  const double a = kAlphaSeconds;
  const double b = static_cast<double>(bytes) * kBetaSecondsPerByte;
  const int levels = ceil_log2(p);
  if (coll == "gather") {
    // Flat: root takes p-1 sequential messages. Tree: root takes one
    // assembled frame per level; the bytes still all pass through root.
    return tree ? levels * a + b * (p - 1) : (p - 1) * (a + b);
  }
  if (coll == "bcast") {
    return tree ? levels * (a + b) : (p - 1) * (a + b);
  }
  if (coll == "allreduce") {
    // Flat = reduce at root + flat fan-out; RD = log2(p) full exchanges.
    return tree ? levels * (a + b) : 2.0 * (p - 1) * (a + b);
  }
  std::fprintf(stderr, "unknown collective %s\n", coll.c_str());
  return 0.0;
}

struct CollectiveEntry {
  std::string collective;
  bool tree = false;
  int ranks = 0;
  std::size_t payload_bytes = 0;  // one rank's contribution
  int rounds = 0;
  double seconds = 0.0;
  double model = 0.0;
  double bytes_per_round = 0.0;
  double messages_per_round = 0.0;
  double root_bytes_per_round = 0.0;
  int failures = 0;
};

// One timed run of `rounds` iterations of one collective on a fresh
// context. Every round checks the result exactly (the payloads are
// small integers, so flat and tree reductions agree bit-for-bit).
CollectiveEntry run_collective(const std::string& coll, bool tree, int p,
                               std::size_t doubles, int rounds) {
  CollectiveEntry e;
  e.collective = coll;
  e.tree = tree;
  e.ranks = p;
  e.payload_bytes = doubles * sizeof(double);
  e.rounds = rounds;

  auto ctx = std::make_shared<Context>(p);
  ctx->set_collective_algo(tree ? CollectiveAlgo::Tree : CollectiveAlgo::Flat);
  std::vector<int> failures(static_cast<std::size_t>(p), 0);

  parsvd::Stopwatch sw;
  sw.start();
  parsvd::pmpi::run_on(ctx, [&](Communicator& comm) {
    const int r = comm.rank();
    int& fail = failures[static_cast<std::size_t>(r)];
    std::vector<double> mine(doubles);
    for (std::size_t i = 0; i < doubles; ++i) {
      mine[i] = static_cast<double>(r + 1);
    }
    for (int round = 0; round < rounds; ++round) {
      if (coll == "gather") {
        std::vector<double> all =
            comm.gatherv(std::span<const double>(mine), 0);
        if (comm.is_root()) {
          if (all.size() != doubles * static_cast<std::size_t>(p)) ++fail;
          for (int src = 0; src < p && fail == 0; ++src) {
            const std::size_t at = static_cast<std::size_t>(src) * doubles;
            if (all[at] != static_cast<double>(src + 1)) ++fail;
          }
        }
      } else if (coll == "bcast") {
        std::vector<double> buf;
        if (comm.is_root()) buf = mine;
        comm.bcast(buf, 0);
        if (buf.size() != doubles || buf.front() != 1.0) ++fail;
      } else if (coll == "allreduce") {
        std::vector<double> acc = mine;
        comm.allreduce(std::span<double>(acc), parsvd::pmpi::Op::Sum);
        const double want = static_cast<double>(p) * (p + 1) / 2.0;
        if (acc.front() != want || acc.back() != want) ++fail;
      }
    }
  });
  e.seconds = sw.stop();
  e.model = model_seconds(coll, tree, p, e.payload_bytes);
  e.bytes_per_round = static_cast<double>(ctx->total_bytes()) / rounds;
  e.messages_per_round = static_cast<double>(ctx->total_messages()) / rounds;
  e.root_bytes_per_round = static_cast<double>(ctx->rank_bytes(0)) / rounds;
  for (int f : failures) e.failures += f;
  return e;
}

struct PrefetchRun {
  double seconds = 0.0;
  Vector svals;
};

// End-to-end distributed streaming SVD over Burgers snapshots, every
// rank ingesting through a generator that sleeps `latency_ms` per batch
// (emulated disk/simulation latency) before producing its row block.
PrefetchRun run_streaming_once(int p, Index rows_per_rank, Index snapshots,
                               Index batch, double latency_ms, bool prefetch) {
  wl::BurgersConfig cfg;
  cfg.grid_points = rows_per_rank * p;
  cfg.snapshots = snapshots;
  const wl::Burgers burgers(cfg);

  parsvd::StreamingOptions sopts;
  sopts.num_modes = 8;
  sopts.forget_factor = 1.0;

  PrefetchRun out;
  parsvd::Stopwatch sw;
  sw.start();
  parsvd::pmpi::run(p, [&](Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, p, comm.rank());
    auto gen = [&burgers, part, latency_ms](Index col0, Index ncols) {
      if (latency_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(latency_ms));
      }
      return burgers.snapshot_block(part.offset, part.count, col0, ncols);
    };
    auto source = std::make_unique<wl::GeneratorBatchSource>(
        part.count, snapshots, std::move(gen));
    parsvd::ParallelStreamingSVD svd(comm, sopts, parsvd::TsqrVariant::Tree);
    wl::StreamingExecutorOptions eopts;
    eopts.batch_cols = batch;
    eopts.prefetch = prefetch;
    wl::run_streaming(svd, std::move(source), eopts);
    if (comm.is_root()) out.svals = svd.singular_values();
  });
  out.seconds = sw.stop();
  return out;
}

double gain_pct(double sync_s, double pref_s) {
  return pref_s > 0.0 ? (sync_s / pref_s - 1.0) * 100.0 : 0.0;
}

bool bit_identical(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

struct PrefetchEntry {
  int ranks = 0;
  Index rows_per_rank = 0;
  Index snapshots = 0;
  Index batch = 0;
  double latency_ms = 0.0;
  double sync_seconds = 0.0;
  double prefetch_seconds = 0.0;
  bool identical = false;
};

bool write_json(const std::string& path, bool smoke,
                const std::vector<CollectiveEntry>& sweep,
                const PrefetchEntry& latent, const PrefetchEntry& zero) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"comm\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"alpha_seconds\": %.3e,\n", kAlphaSeconds);
  std::fprintf(f, "  \"beta_seconds_per_byte\": %.3e,\n", kBetaSecondsPerByte);
  std::fprintf(f, "  \"collectives\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const CollectiveEntry& e = sweep[i];
    std::fprintf(
        f,
        "    {\"collective\": \"%s\", \"algo\": \"%s\", \"ranks\": %d, "
        "\"payload_bytes\": %zu, \"rounds\": %d, \"seconds\": %.6e, "
        "\"model_seconds\": %.6e, \"bytes_per_round\": %.1f, "
        "\"messages_per_round\": %.1f, \"root_bytes_per_round\": %.1f}%s\n",
        e.collective.c_str(), e.tree ? "tree" : "flat", e.ranks,
        e.payload_bytes, e.rounds, e.seconds, e.model, e.bytes_per_round,
        e.messages_per_round, e.root_bytes_per_round,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Acceptance claim (a): at P >= 8 and >= 1 MiB, the tree topologies
  // beat flat gather/bcast on the alpha-beta critical path.
  const int cp = 8;
  const std::size_t cbytes = std::size_t{1} << 20;
  const double g_flat = model_seconds("gather", false, cp, cbytes);
  const double g_tree = model_seconds("gather", true, cp, cbytes);
  const double b_flat = model_seconds("bcast", false, cp, cbytes);
  const double b_tree = model_seconds("bcast", true, cp, cbytes);
  std::fprintf(f, "  \"claim_tree_beats_flat\": {\n");
  std::fprintf(f, "    \"ranks\": %d,\n", cp);
  std::fprintf(f, "    \"payload_bytes\": %zu,\n", cbytes);
  std::fprintf(f, "    \"gather_model_speedup\": %.4f,\n", g_flat / g_tree);
  std::fprintf(f, "    \"bcast_model_speedup\": %.4f,\n", b_flat / b_tree);
  std::fprintf(f, "    \"holds\": %s\n",
               (g_tree < g_flat && b_tree < b_flat) ? "true" : "false");
  std::fprintf(f, "  },\n");

  const auto prefetch_block = [f](const char* key, const PrefetchEntry& e,
                                  bool last) {
    std::fprintf(f, "  \"%s\": {\n", key);
    std::fprintf(f, "    \"ranks\": %d,\n", e.ranks);
    std::fprintf(f, "    \"rows_per_rank\": %lld,\n",
                 static_cast<long long>(e.rows_per_rank));
    std::fprintf(f, "    \"snapshots\": %lld,\n",
                 static_cast<long long>(e.snapshots));
    std::fprintf(f, "    \"batch_cols\": %lld,\n",
                 static_cast<long long>(e.batch));
    std::fprintf(f, "    \"ingest_latency_ms\": %.3f,\n", e.latency_ms);
    std::fprintf(f, "    \"sync_seconds\": %.6e,\n", e.sync_seconds);
    std::fprintf(f, "    \"prefetch_seconds\": %.6e,\n", e.prefetch_seconds);
    std::fprintf(f, "    \"gain_pct\": %.2f,\n",
                 gain_pct(e.sync_seconds, e.prefetch_seconds));
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 e.identical ? "true" : "false");
    std::fprintf(f, "  }%s\n", last ? "" : ",");
  };
  prefetch_block("prefetch", latent, false);
  prefetch_block("prefetch_zero_latency", zero, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out =
      parsvd::env::get_string("PARSVD_BENCH_OUT", "BENCH_comm.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  int failures = 0;

  // ----------------------------------------------------- collective sweep
  const std::vector<int> rank_counts = {4, 8, 16};
  const std::vector<std::size_t> payloads = {1024, 131072};  // 8 KiB, 1 MiB
  const int reps = smoke ? 1 : 3;
  std::vector<CollectiveEntry> sweep;
  std::printf("%-10s %-5s %6s %12s %10s %12s %14s\n", "collective", "algo",
              "ranks", "bytes/rank", "time[ms]", "model[us]", "rootB/round");
  for (const char* coll : {"gather", "bcast", "allreduce"}) {
    for (int p : rank_counts) {
      for (std::size_t doubles : payloads) {
        const bool big = doubles >= 65536;
        const int rounds = smoke ? 2 : (big ? 6 : 20);
        for (bool tree : {false, true}) {
          CollectiveEntry best;
          best.seconds = std::numeric_limits<double>::max();
          for (int rep = 0; rep < reps; ++rep) {
            CollectiveEntry e = run_collective(coll, tree, p, doubles, rounds);
            failures += e.failures;
            if (e.seconds < best.seconds) best = e;
          }
          std::printf("%-10s %-5s %6d %12zu %10.3f %12.2f %14.0f\n",
                      best.collective.c_str(), tree ? "tree" : "flat", p,
                      best.payload_bytes, best.seconds * 1e3, best.model * 1e6,
                      best.root_bytes_per_round);
          sweep.push_back(std::move(best));
        }
      }
    }
  }

  // --------------------------------------------------- streaming prefetch
  const int sp = 4;
  const Index rows_per_rank = smoke ? 64 : 512;
  const Index snapshots = smoke ? 48 : 320;
  const Index batch = 16;
  const double latency_ms = smoke ? 2.0 : 3.0;
  const int preps = smoke ? 1 : 3;

  const auto measure = [&](double lat) {
    PrefetchEntry e;
    e.ranks = sp;
    e.rows_per_rank = rows_per_rank;
    e.snapshots = snapshots;
    e.batch = batch;
    e.latency_ms = lat;
    e.sync_seconds = e.prefetch_seconds = std::numeric_limits<double>::max();
    Vector sync_sv, pref_sv;
    for (int rep = 0; rep < preps; ++rep) {
      PrefetchRun s =
          run_streaming_once(sp, rows_per_rank, snapshots, batch, lat, false);
      PrefetchRun q =
          run_streaming_once(sp, rows_per_rank, snapshots, batch, lat, true);
      if (s.seconds < e.sync_seconds) e.sync_seconds = s.seconds;
      if (q.seconds < e.prefetch_seconds) e.prefetch_seconds = q.seconds;
      sync_sv = std::move(s.svals);
      pref_sv = std::move(q.svals);
    }
    e.identical = bit_identical(sync_sv, pref_sv) && sync_sv.size() > 0;
    return e;
  };

  PrefetchEntry latent = measure(latency_ms);
  PrefetchEntry zero = measure(0.0);
  if (!latent.identical || !zero.identical) {
    std::fprintf(stderr,
                 "FAIL: prefetch on/off singular values not bit-identical\n");
    ++failures;
  }
  std::printf(
      "prefetch (P=%d, %.1f ms ingest latency): sync %.3f s, prefetch %.3f s "
      "(%+.1f%%); zero-latency %+.1f%%\n",
      sp, latency_ms, latent.sync_seconds, latent.prefetch_seconds,
      gain_pct(latent.sync_seconds, latent.prefetch_seconds),
      gain_pct(zero.sync_seconds, zero.prefetch_seconds));

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d collective/prefetch check(s) failed\n",
                 failures);
  }
  const bool wrote = write_json(out, smoke, sweep, latent, zero);
  return (failures == 0 && wrote) ? 0 : 1;
}
