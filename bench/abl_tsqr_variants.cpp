// Ablation: direct (gather-at-root, the paper's Listing 4) vs
// tree-reduction TSQR. Reports wall time per factorization plus the
// exact communication volume — the direct variant's root hotspot is
// O(p · n²) gathered bytes, the tree's is O(n²) per message over log₂(p)
// rounds.
#include <benchmark/benchmark.h>

#include "core/tsqr.hpp"
#include "support/rng.hpp"
#include "workloads/batch_source.hpp"

namespace {

using namespace parsvd;

void run_variant(benchmark::State& state, TsqrVariant variant) {
  const int p = static_cast<int>(state.range(0));
  const Index rows_per_rank = state.range(1);
  const Index n = state.range(2);

  // Pre-generate each rank's block once (data creation outside timing).
  std::vector<Matrix> blocks;
  Rng rng(7);
  for (int r = 0; r < p; ++r) {
    blocks.push_back(Matrix::gaussian(rows_per_rank, n, rng));
  }

  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto ctx = pmpi::run_with_stats(p, [&](pmpi::Communicator& comm) {
      TsqrResult res =
          tsqr(comm, blocks[static_cast<std::size_t>(comm.rank())], variant);
      benchmark::DoNotOptimize(res);
    });
    bytes = ctx->total_bytes();
  }
  state.counters["comm_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  state.counters["root_recv_bytes"] = benchmark::Counter(
      static_cast<double>(variant == TsqrVariant::Direct
                              ? static_cast<std::uint64_t>(p - 1) *
                                    static_cast<std::uint64_t>(n) *
                                    static_cast<std::uint64_t>(n) * 8
                              : static_cast<std::uint64_t>(n) *
                                    static_cast<std::uint64_t>(n) * 8));
}

void BM_TsqrDirect(benchmark::State& state) {
  run_variant(state, TsqrVariant::Direct);
}

void BM_TsqrTree(benchmark::State& state) {
  run_variant(state, TsqrVariant::Tree);
}

// args: ranks, rows/rank, cols
BENCHMARK(BM_TsqrDirect)
    ->Args({2, 2048, 32})
    ->Args({4, 2048, 32})
    ->Args({8, 2048, 32})
    ->Args({16, 1024, 32})
    ->Args({4, 2048, 96})
    ->Args({8, 1024, 96})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TsqrTree)
    ->Args({2, 2048, 32})
    ->Args({4, 2048, 32})
    ->Args({8, 2048, 32})
    ->Args({16, 1024, 32})
    ->Args({4, 2048, 96})
    ->Args({8, 1024, 96})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
