// Ablation: the APMOS truncation factors r1 (per-rank contribution to
// the gathered W) and r2 (modes broadcast back) — "the choices for r1
// and r2 may be used to balance communication costs and accuracy"
// (paper §3.2). For each (r1, r2) the bench reports the exact gather +
// broadcast volume and the accuracy of the recovered modes against the
// serial SVD: max principal angle of the retained subspace and the
// worst relative singular-value error.
#include <cstdio>
#include <mutex>

#include "core/apmos.hpp"
#include "io/matrix_io.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 2048);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 200);
  const int ranks = static_cast<int>(env::get_int("PARSVD_RANKS", 4));

  std::printf("=== Ablation: APMOS truncation (r1 x r2) ===\n");
  std::printf("Burgers %lld x %lld, %d ranks; reference = serial SVD\n\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots), ranks);

  wl::Burgers burgers(cfg);
  const Matrix data = burgers.snapshot_matrix();
  SvdOptions ref_opts;
  ref_opts.method = SvdMethod::MethodOfSnapshots;
  ref_opts.eigh_method = EighMethod::Tridiagonal;
  const SvdResult ref = svd(data, ref_opts);

  std::printf("%-5s %-5s %14s %14s %18s %18s\n", "r1", "r2", "gather[KB]",
              "bcast[KB]", "max principal[rad]", "max rel sigma err");

  std::vector<std::array<double, 6>> rows;
  for (Index r1 : {2, 5, 10, 20, 50}) {
    for (Index r2 : {2, 5}) {
      if (r2 > r1) continue;
      ApmosOptions opts;
      opts.r1 = r1;
      opts.r2 = r2;

      Matrix modes;
      Vector s;
      std::mutex mu;
      auto ctx = pmpi::run_with_stats(ranks, [&](pmpi::Communicator& comm) {
        const auto part =
            wl::partition_rows(cfg.grid_points, ranks, comm.rank());
        const Matrix local =
            data.block(part.offset, 0, part.count, cfg.snapshots);
        ApmosResult res = apmos_svd(comm, local, opts);
        const std::vector<Matrix> blocks =
            comm.gather_matrices(res.u_local, 0);
        if (comm.is_root()) {
          std::lock_guard<std::mutex> lock(mu);
          modes = vcat(blocks);
          s = res.s;
        }
      });

      // Communication model (exact for this implementation): each
      // non-root rank gathers an N x r1 block; the root broadcasts an
      // N x r2 block plus r2 values to every other rank.
      const double gather_kb =
          static_cast<double>(ranks - 1) *
          static_cast<double>(cfg.snapshots * r1) * 8.0 / 1024.0;
      const double bcast_kb = static_cast<double>(ranks - 1) *
                              static_cast<double>(cfg.snapshots * r2 + r2) *
                              8.0 / 1024.0;
      (void)ctx;

      const double angle =
          post::max_principal_angle(modes, ref.u.left_cols(r2));
      const Vector sv_err =
          post::spectrum_relative_error(ref.s.head(r2), s);
      const double max_sv_err = sv_err.norm_inf();

      std::printf("%-5lld %-5lld %14.1f %14.1f %18.3e %18.3e\n",
                  static_cast<long long>(r1), static_cast<long long>(r2),
                  gather_kb, bcast_kb, angle, max_sv_err);
      rows.push_back({static_cast<double>(r1), static_cast<double>(r2),
                      gather_kb, bcast_kb, angle, max_sv_err});
    }
  }

  Matrix out(static_cast<Index>(rows.size()), 6);
  for (Index i = 0; i < out.rows(); ++i) {
    for (Index j = 0; j < 6; ++j) {
      out(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  io::write_csv("abl_truncation_sweep.csv", out,
                {"r1", "r2", "gather_kb", "bcast_kb", "max_principal_angle",
                 "max_rel_sigma_err"});
  std::printf("\nlarger r1 buys accuracy at linear gather cost; r2 only "
              "sets how many modes\ncome back (paper defaults r1 = 50, "
              "r2 = 5). wrote abl_truncation_sweep.csv\n\n");
  return 0;
}
