// Ablation: streaming batch size B (Algorithm 1's "snapshots per
// batch"). Larger batches amortize the per-update QR + small-SVD cost
// but raise the peak working-set (M x (K + B)); accuracy at ff = 1 is
// batch-size independent in exact arithmetic — the sweep verifies that
// and measures the throughput curve.
#include <cstdio>

#include "core/streaming.hpp"
#include "io/matrix_io.hpp"
#include "linalg/svd.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 4096);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 400);
  const Index num_modes = 8;

  std::printf("=== Ablation: streaming batch size B ===\n");
  std::printf("Burgers %lld x %lld, K = %lld, ff = 1.0\n\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots),
              static_cast<long long>(num_modes));
  std::printf("%-8s %10s %12s %16s %20s %22s\n", "B", "updates", "time[s]",
              "snaps/s", "max rel sigma err", "peak workset [MB]");

  wl::Burgers burgers(cfg);
  const Matrix data = burgers.snapshot_matrix();
  SvdOptions ref_opts;
  ref_opts.method = SvdMethod::MethodOfSnapshots;
  ref_opts.eigh_method = EighMethod::Tridiagonal;
  ref_opts.rank = num_modes;
  const SvdResult ref = svd(data, ref_opts);

  std::vector<std::array<double, 5>> rows;
  for (Index b : {10, 25, 50, 100, 200, 400}) {
    StreamingOptions opts;
    opts.num_modes = num_modes;
    opts.forget_factor = 1.0;
    SerialStreamingSVD s(opts);

    Stopwatch watch;
    watch.start();
    Index done = 0;
    while (done < cfg.snapshots) {
      const Index take = std::min(b, cfg.snapshots - done);
      const Matrix block = data.block(0, done, cfg.grid_points, take);
      if (done == 0) {
        s.initialize(block);
      } else {
        s.incorporate_data(block);
      }
      done += take;
    }
    const double t = watch.stop();
    const double sv_err =
        post::spectrum_relative_error(ref.s, s.singular_values()).norm_inf();
    const double workset_mb = static_cast<double>(cfg.grid_points) *
                              static_cast<double>(num_modes + b) * 8.0 /
                              (1024.0 * 1024.0);
    std::printf("%-8lld %10lld %12.3f %16.0f %20.3e %22.2f\n",
                static_cast<long long>(b),
                static_cast<long long>(s.iterations() + 1), t,
                static_cast<double>(cfg.snapshots) / t, sv_err, workset_mb);
    rows.push_back({static_cast<double>(b), t,
                    static_cast<double>(cfg.snapshots) / t, sv_err,
                    workset_mb});
  }

  Matrix out(static_cast<Index>(rows.size()), 5);
  for (Index i = 0; i < out.rows(); ++i) {
    for (Index j = 0; j < 5; ++j) {
      out(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  io::write_csv("abl_batch_size.csv", out,
                {"batch", "time_s", "snaps_per_s", "max_rel_sigma_err",
                 "workset_mb"});
  std::printf("\nsmall B is fastest (total cost ~ M N (K+B)^2 / B) and "
              "leanest, but each extra\nupdate truncates the tail again, "
              "so accuracy on full-rank data improves with\nB — the "
              "streaming trade-off Algorithm 1 embodies. wrote "
              "abl_batch_size.csv\n\n");
  return 0;
}
