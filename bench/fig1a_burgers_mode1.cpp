// Reproduces Figure 1(a): first singular vector of the Burgers snapshot
// matrix, serial vs randomized+parallel, with the pointwise error curve.
#include "fig1_common.hpp"

int main() { return parsvd::bench::run_fig1(0, "fig1a_mode1.csv"); }
