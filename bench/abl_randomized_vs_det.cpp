// Ablation: randomized vs deterministic SVD kernels (paper §3.3 — "any
// SVD requirement ... may be randomized").
//
// Times rank-K factorization of tall matrices with a decaying spectrum —
// the shape of the matrices whose SVD the library randomizes — and
// attaches the rank-K reconstruction error as a counter so the
// speed/accuracy trade is visible in one table. Sweeps power iterations
// 0-2 to show where the extra passes pay off, and the structured sketch
// operators (dense Gaussian / sparse-sign / SRHT) at fixed q = 1 to show
// what the range-finder's test matrix costs relative to the rest of the
// pipeline.
#include <benchmark/benchmark.h>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "workloads/lowrank.hpp"

namespace {

using namespace parsvd;

constexpr Index kRank = 10;

Matrix make_decaying(Index m, Index n, std::uint64_t seed) {
  Rng rng(seed);
  const Index k = std::min<Index>(n, 60);
  return workloads::synthetic_low_rank(
      m, n, workloads::algebraic_spectrum(k, 1.0, 1.0), rng);
}

double rank_k_error(const Matrix& a, const SvdResult& f) {
  Matrix us = f.u;
  for (Index j = 0; j < us.cols(); ++j) {
    for (Index i = 0; i < us.rows(); ++i) us(i, j) *= f.s[j];
  }
  const Matrix rec = matmul(us, f.v, Trans::No, Trans::Yes);
  return (a - rec).norm_fro() / a.norm_fro();
}

void BM_Deterministic(benchmark::State& state) {
  const Matrix a = make_decaying(state.range(0), state.range(1), 31);
  SvdOptions opts;
  opts.rank = kRank;
  SvdResult last;
  for (auto _ : state) {
    last = svd(a, opts);
    benchmark::DoNotOptimize(last);
  }
  state.counters["rel_err"] = rank_k_error(a, last);
}

constexpr sketch::SketchKind kKinds[] = {sketch::SketchKind::DenseGaussian,
                                         sketch::SketchKind::SparseSign,
                                         sketch::SketchKind::Srht};

void BM_Randomized(benchmark::State& state) {
  const Matrix a = make_decaying(state.range(0), state.range(1), 31);
  RandomizedOptions opts;
  opts.rank = kRank;
  opts.oversampling = 8;
  opts.power_iterations = static_cast<int>(state.range(2));
  opts.sketch_kind = kKinds[static_cast<std::size_t>(state.range(3))];
  state.SetLabel(sketch::to_string(opts.sketch_kind));
  Rng rng(99);
  SvdResult last;
  for (auto _ : state) {
    last = randomized_svd(a, opts, rng);
    benchmark::DoNotOptimize(last);
  }
  state.counters["rel_err"] = rank_k_error(a, last);
}

BENCHMARK(BM_Deterministic)
    ->Args({2048, 256})
    ->Args({4096, 256})
    ->Args({8192, 512})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Randomized)
    // Power-iteration sweep at the paper's dense Gaussian operator.
    ->Args({2048, 256, 0, 0})
    ->Args({2048, 256, 1, 0})
    ->Args({2048, 256, 2, 0})
    ->Args({4096, 256, 1, 0})
    ->Args({8192, 512, 1, 0})
    // Sketch-kind sweep at fixed q = 1: dense GEMM vs the structured
    // operators (sparse-sign scatter, SRHT trim + FWHT + sample).
    ->Args({2048, 256, 1, 1})
    ->Args({2048, 256, 1, 2})
    ->Args({4096, 256, 1, 1})
    ->Args({4096, 256, 1, 2})
    ->Args({8192, 512, 1, 1})
    ->Args({8192, 512, 1, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
