// Reproduces Figure 1(b): second singular vector of the Burgers snapshot
// matrix, serial vs randomized+parallel, with the pointwise error curve.
#include "fig1_common.hpp"

int main() { return parsvd::bench::run_fig1(1, "fig1b_mode2.csv"); }
