// Ablation: the forget factor ff (paper §3.1 — ff = 1.0 recovers the
// batch SVD; smaller values discount old batches).
//
// Two experiments:
//   1. Stationary data: how far each ff drifts from the batch SVD
//      (ff = 1.0 must sit at numerical zero).
//   2. Regime change: a stream whose dominant structure switches halfway;
//      per-ff recovery latency (batches until re-alignment > 0.99) and
//      final alignment. Small ff tracks fast; ff = 1 may never re-lock.
#include <cstdio>

#include "core/streaming.hpp"
#include "io/matrix_io.hpp"
#include "linalg/svd.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "workloads/burgers.hpp"
#include "workloads/lowrank.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  const double ffs[] = {1.0, 0.99, 0.95, 0.9, 0.8, 0.5};

  // ---- experiment 1: stationary stream vs batch SVD -------------------
  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 1024);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 200);
  const Index batch = 25;
  const Index num_modes = 6;

  std::printf("=== Ablation: forget factor ff ===\n\n");
  std::printf("[1] stationary Burgers stream (%lld x %lld, batches of "
              "%lld) vs batch SVD\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots),
              static_cast<long long>(batch));
  std::printf("%-8s %20s %22s\n", "ff", "max rel sigma err",
              "max principal angle");

  wl::Burgers burgers(cfg);
  const Matrix data = burgers.snapshot_matrix();
  SvdOptions ref_opts;
  ref_opts.method = SvdMethod::MethodOfSnapshots;
  ref_opts.eigh_method = EighMethod::Tridiagonal;
  ref_opts.rank = num_modes;
  const SvdResult ref = svd(data, ref_opts);

  std::vector<std::array<double, 3>> exp1;
  for (double ff : ffs) {
    StreamingOptions opts;
    opts.num_modes = num_modes;
    opts.forget_factor = ff;
    SerialStreamingSVD s(opts);
    Index done = 0;
    while (done < cfg.snapshots) {
      const Index take = std::min(batch, cfg.snapshots - done);
      const Matrix b = data.block(0, done, cfg.grid_points, take);
      if (done == 0) {
        s.initialize(b);
      } else {
        s.incorporate_data(b);
      }
      done += take;
    }
    const double sv_err =
        post::spectrum_relative_error(ref.s, s.singular_values()).norm_inf();
    const double angle = post::max_principal_angle(s.modes(), ref.u);
    std::printf("%-8.2f %20.3e %22.3e\n", ff, sv_err, angle);
    exp1.push_back({ff, sv_err, angle});
  }

  // ---- experiment 2: regime change ------------------------------------
  const Index m = 600;
  const Index batches = 30;
  const Index batch_cols = 20;
  const Index switch_at = batches / 2;
  Rng rng(11);
  const Matrix structures = wl::random_orthonormal(m, 2, rng);

  auto make_batch = [&](Index bidx, Rng& stream) {
    const bool regime_b = bidx >= switch_at;
    Matrix out(m, batch_cols);
    for (Index j = 0; j < batch_cols; ++j) {
      const double amp = 10.0 * (1.0 + 0.2 * stream.gaussian());
      const double weak = 2.0 * stream.gaussian();
      for (Index i = 0; i < m; ++i) {
        out(i, j) = amp * structures(i, regime_b ? 1 : 0) +
                    weak * structures(i, regime_b ? 0 : 1) +
                    0.1 * stream.gaussian();
      }
    }
    return out;
  };

  std::printf("\n[2] regime switch at batch %lld of %lld\n",
              static_cast<long long>(switch_at),
              static_cast<long long>(batches));
  std::printf("%-8s %26s %20s\n", "ff", "recovery latency [batches]",
              "final alignment");

  std::vector<std::array<double, 3>> exp2;
  for (double ff : ffs) {
    StreamingOptions opts;
    opts.num_modes = 2;
    opts.forget_factor = ff;
    SerialStreamingSVD s(opts);
    Rng stream(123);  // same stream for every ff
    Index recovery = -1;
    double final_align = 0.0;
    for (Index b = 0; b < batches; ++b) {
      const Matrix data_b = make_batch(b, stream);
      if (b == 0) {
        s.initialize(data_b);
      } else {
        s.incorporate_data(data_b);
      }
      if (b >= switch_at) {
        final_align = post::mode_cosine(s.modes(), 0, structures, 1);
        if (recovery < 0 && final_align > 0.99) {
          recovery = b - switch_at + 1;
        }
      }
    }
    if (recovery < 0) {
      std::printf("%-8.2f %26s %20.4f\n", ff, "never", final_align);
    } else {
      std::printf("%-8.2f %26lld %20.4f\n", ff,
                  static_cast<long long>(recovery), final_align);
    }
    exp2.push_back({ff, static_cast<double>(recovery), final_align});
  }

  Matrix out1(static_cast<Index>(std::size(ffs)), 3);
  Matrix out2(static_cast<Index>(std::size(ffs)), 3);
  for (Index i = 0; i < out1.rows(); ++i) {
    for (Index j = 0; j < 3; ++j) {
      out1(i, j) = exp1[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      out2(i, j) = exp2[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  io::write_csv("abl_ff_stationary.csv", out1,
                {"ff", "max_rel_sigma_err", "max_principal_angle"});
  io::write_csv("abl_ff_regime.csv", out2,
                {"ff", "recovery_batches", "final_alignment"});
  std::printf("\nff = 1.0 is the most accurate on stationary data (its "
              "residual error is the\nK-truncation tail, not forgetting); "
              "smaller ff trades stationary accuracy\nfor tracking speed "
              "after a regime change. wrote abl_ff_*.csv\n\n");
  return 0;
}
