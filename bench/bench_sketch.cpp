// Structured-sketch benchmark: apply cost and spectral accuracy of the
// three SketchOperator kinds (dense Gaussian GEMM, sparse-sign scatter,
// SRHT butterfly), plus the distributed sketch-apply at P = 4.
//
// Part 1 times Y = A Ω (operator construction + apply — the production
// cost of a fresh test matrix per draw) across (m, n, k) sweep points at
// oversampling 10. Every timed entry also records the kind's model flop
// count — an exact machine-independent function of the shape that CI can
// gate, where wall-clock on a noisy shared runner cannot.
//
// Part 2 sweeps the range-finder residual ‖A − QQᵀA‖_F on a synthetic
// algebraic spectrum across oversampling values, identical parameters in
// smoke and full modes so fresh-vs-committed runs are comparable. The
// residuals are serial-path deterministic per seed.
//
// Part 3 runs the distributed sketch-apply (per-rank accumulate_left +
// allreduce) at P = 4 and checks it against the serial Ωᵀ A.
//
// The committed BENCH_sketch.json is the trajectory; the claim blocks
// record sparse-sign and SRHT beating the dense GEMM at (4096, 2048,
// k=64) and the structured residuals staying within 2x of dense at
// oversampling >= 10.
//
// Usage:
//   bench_sketch            full sweep, writes BENCH_sketch.json
//   bench_sketch --smoke    smallest apply point, correctness asserts
//   bench_sketch --out=F    write the JSON to F
//   PARSVD_BENCH_OUT=F      same as --out=F

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "pmpi/comm.hpp"
#include "sketch/distributed.hpp"
#include "sketch/sketch.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/lowrank.hpp"

namespace {

using parsvd::Index;
using parsvd::Matrix;
using parsvd::Rng;
using parsvd::Vector;
using parsvd::sketch::SketchKind;
namespace sk = parsvd::sketch;
namespace wl = parsvd::workloads;

constexpr SketchKind kKinds[] = {SketchKind::DenseGaussian,
                                 SketchKind::SparseSign, SketchKind::Srht};
constexpr Index kOversampling = 10;

double max_entry_diff(const Matrix& a, const Matrix& b) {
  double worst = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      worst = std::max(worst, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

struct ApplyEntry {
  SketchKind kind = SketchKind::DenseGaussian;
  Index m = 0, n = 0, k = 0, sketch_dim = 0;
  double seconds = 0.0;
  double flops = 0.0;  // per-kind model, machine-independent
  double max_err = 0.0;
};

// Best-of-reps timing of one fresh-operator apply; correctness checked
// against the realized operator through the library GEMM.
ApplyEntry run_apply(SketchKind kind, const Matrix& a, Index k, int reps,
                     int* failures) {
  ApplyEntry e;
  e.kind = kind;
  e.m = a.rows();
  e.n = a.cols();
  e.k = k;
  e.sketch_dim = k + kOversampling;
  e.seconds = std::numeric_limits<double>::max();
  const std::uint64_t seed = sk::derive_operator_seed(0xbe7cULL, kind, 0);
  Matrix y;
  for (int rep = 0; rep < reps; ++rep) {
    parsvd::Stopwatch sw;
    sw.start();
    const auto op = sk::make_sketch(kind, e.n, e.sketch_dim, seed);
    op->apply_right(a, y);
    e.seconds = std::min(e.seconds, sw.stop());
    e.flops = op->apply_flops(e.m);
  }
  const auto op = sk::make_sketch(kind, e.n, e.sketch_dim, seed);
  const Matrix want = matmul(a, op->realize_rows(0, e.n));
  e.max_err = max_entry_diff(y, want);
  if (!(e.max_err < 1e-9 * static_cast<double>(e.n))) {
    std::fprintf(stderr, "FAIL: %s apply mismatch at m=%lld (%.3e)\n",
                 sk::to_string(kind), static_cast<long long>(e.m), e.max_err);
    ++*failures;
  }
  return e;
}

struct AccuracyEntry {
  SketchKind kind = SketchKind::DenseGaussian;
  Index rank = 0, oversampling = 0;
  double residual = 0.0;
  double ratio_vs_dense = 0.0;
};

// Range-finder residual on a slowly decaying spectrum. Identical
// parameters in smoke and full modes: the numbers must be comparable
// across fresh-vs-committed runs.
std::vector<AccuracyEntry> run_accuracy(Index* out_m, Index* out_n) {
  const Index m = 192, n = 128, rank = 8;
  *out_m = m;
  *out_n = n;
  Rng data_rng(0xacc5ULL);
  const Vector spectrum = wl::algebraic_spectrum(48, 1.0, 1.0);
  const Matrix a = wl::synthetic_low_rank(m, n, spectrum, data_rng);
  std::vector<AccuracyEntry> out;
  for (Index p : {Index{6}, Index{10}, Index{14}}) {
    double dense_residual = 0.0;
    for (SketchKind kind : kKinds) {
      parsvd::RandomizedOptions opts;
      opts.rank = rank;
      opts.oversampling = p;
      opts.sketch_kind = kind;
      Rng rng(0x5eedULL);
      const Matrix q = parsvd::randomized_range_finder(a, opts, rng);
      const Matrix proj =
          matmul(q, matmul(q, a, parsvd::Trans::Yes, parsvd::Trans::No));
      AccuracyEntry e;
      e.kind = kind;
      e.rank = rank;
      e.oversampling = p;
      e.residual = (a - proj).norm_fro();
      if (kind == SketchKind::DenseGaussian) dense_residual = e.residual;
      e.ratio_vs_dense =
          dense_residual > 0.0 ? e.residual / dense_residual : 1.0;
      out.push_back(e);
    }
  }
  return out;
}

struct DistributedEntry {
  SketchKind kind = SketchKind::DenseGaussian;
  int ranks = 0;
  Index rows = 0, cols = 0, sketch_dim = 0;
  double seconds = 0.0;
  double max_err = 0.0;
};

DistributedEntry run_distributed(SketchKind kind, Index rows, Index cols,
                                 Index s, int p, int* failures) {
  DistributedEntry e;
  e.kind = kind;
  e.ranks = p;
  e.rows = rows;
  e.cols = cols;
  e.sketch_dim = s;
  Rng data_rng(0xd15cULL);
  const Matrix a = Matrix::gaussian(rows, cols, data_rng);
  const std::uint64_t seed = sk::derive_operator_seed(0xd157ULL, kind, 0);
  const auto serial = sk::make_sketch(kind, rows, s, seed);
  Matrix want(s, cols);
  serial->accumulate_left(a, 0, want);

  Matrix got;
  parsvd::Stopwatch sw;
  sw.start();
  parsvd::pmpi::run(p, [&](parsvd::pmpi::Communicator& comm) {
    const Index block = rows / comm.size();
    const Index off = block * comm.rank();
    const Index nr = comm.rank() + 1 == comm.size() ? rows - off : block;
    const auto local = sk::make_sketch(kind, rows, s, seed);
    const Matrix b = sk::distributed_sketch_apply(
        comm, *local, a.block(off, 0, nr, cols), off);
    if (comm.is_root()) got = b;
  });
  e.seconds = sw.stop();
  e.max_err = max_entry_diff(got, want);
  if (!(e.max_err < 1e-8 * static_cast<double>(rows))) {
    std::fprintf(stderr, "FAIL: %s distributed sketch mismatch (%.3e)\n",
                 sk::to_string(kind), e.max_err);
    ++*failures;
  }
  return e;
}

const ApplyEntry* find_apply(const std::vector<ApplyEntry>& apply,
                             SketchKind kind, Index m) {
  for (const ApplyEntry& e : apply) {
    if (e.kind == kind && e.m == m) return &e;
  }
  return nullptr;
}

bool write_json(const std::string& path, bool smoke,
                const std::vector<ApplyEntry>& apply,
                const std::vector<AccuracyEntry>& accuracy, Index acc_m,
                Index acc_n, const std::vector<DistributedEntry>& dist,
                Index claim_m, Index claim_n, Index claim_k, int failures) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sketch\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"oversampling\": %lld,\n",
               static_cast<long long>(kOversampling));
  std::fprintf(f, "  \"apply\": [\n");
  for (std::size_t i = 0; i < apply.size(); ++i) {
    const ApplyEntry& e = apply[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"m\": %lld, \"n\": %lld, "
                 "\"k\": %lld, \"sketch_dim\": %lld, \"seconds\": %.6e, "
                 "\"flops\": %.6e, \"max_err\": %.3e}%s\n",
                 sk::to_string(e.kind), static_cast<long long>(e.m),
                 static_cast<long long>(e.n), static_cast<long long>(e.k),
                 static_cast<long long>(e.sketch_dim), e.seconds, e.flops,
                 e.max_err, i + 1 < apply.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"accuracy_m\": %lld,\n", static_cast<long long>(acc_m));
  std::fprintf(f, "  \"accuracy_n\": %lld,\n", static_cast<long long>(acc_n));
  std::fprintf(f, "  \"accuracy\": [\n");
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyEntry& e = accuracy[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"rank\": %lld, "
                 "\"oversampling\": %lld, \"residual\": %.6e, "
                 "\"ratio_vs_dense\": %.4f}%s\n",
                 sk::to_string(e.kind), static_cast<long long>(e.rank),
                 static_cast<long long>(e.oversampling), e.residual,
                 e.ratio_vs_dense, i + 1 < accuracy.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"distributed\": [\n");
  for (std::size_t i = 0; i < dist.size(); ++i) {
    const DistributedEntry& e = dist[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"ranks\": %d, \"rows\": %lld, "
                 "\"cols\": %lld, \"sketch_dim\": %lld, \"seconds\": %.6e, "
                 "\"max_err\": %.3e}%s\n",
                 sk::to_string(e.kind), e.ranks, static_cast<long long>(e.rows),
                 static_cast<long long>(e.cols),
                 static_cast<long long>(e.sketch_dim), e.seconds, e.max_err,
                 i + 1 < dist.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // Acceptance claim (a): the structured applies beat the dense GEMM at
  // the largest sweep point (4096 x 2048, k = 64 in the full run).
  const ApplyEntry* dense = find_apply(apply, SketchKind::DenseGaussian, claim_m);
  const ApplyEntry* sparse = find_apply(apply, SketchKind::SparseSign, claim_m);
  const ApplyEntry* srht = find_apply(apply, SketchKind::Srht, claim_m);
  const double sp_speedup =
      dense && sparse && sparse->seconds > 0.0 ? dense->seconds / sparse->seconds : 0.0;
  const double sr_speedup =
      dense && srht && srht->seconds > 0.0 ? dense->seconds / srht->seconds : 0.0;
  std::fprintf(f, "  \"claim_structured_beats_dense\": {\n");
  std::fprintf(f, "    \"m\": %lld,\n", static_cast<long long>(claim_m));
  std::fprintf(f, "    \"n\": %lld,\n", static_cast<long long>(claim_n));
  std::fprintf(f, "    \"k\": %lld,\n", static_cast<long long>(claim_k));
  std::fprintf(f, "    \"sparse_speedup\": %.3f,\n", sp_speedup);
  std::fprintf(f, "    \"srht_speedup\": %.3f,\n", sr_speedup);
  std::fprintf(f, "    \"holds\": %s\n",
               (sp_speedup > 1.0 && sr_speedup > 1.0) ? "true" : "false");
  std::fprintf(f, "  },\n");

  // Acceptance claim (b): structured residuals within 2x of dense at
  // oversampling >= 10.
  double max_ratio = 0.0;
  for (const AccuracyEntry& e : accuracy) {
    if (e.oversampling >= 10) max_ratio = std::max(max_ratio, e.ratio_vs_dense);
  }
  std::fprintf(f, "  \"claim_accuracy_within_2x\": {\n");
  std::fprintf(f, "    \"oversampling_min\": 10,\n");
  std::fprintf(f, "    \"max_ratio_vs_dense\": %.4f,\n", max_ratio);
  std::fprintf(f, "    \"holds\": %s\n", max_ratio <= 2.0 ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"failures\": %d\n", failures);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out =
      parsvd::env::get_string("PARSVD_BENCH_OUT", "BENCH_sketch.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  int failures = 0;

  // ----------------------------------------------------- apply-time sweep
  struct Point {
    Index m, n, k;
  };
  const std::vector<Point> points = smoke
                                        ? std::vector<Point>{{1024, 512, 32}}
                                        : std::vector<Point>{{1024, 512, 32},
                                                             {2048, 1024, 48},
                                                             {4096, 2048, 64}};
  const int reps = smoke ? 1 : 3;
  std::vector<ApplyEntry> apply;
  std::printf("%-14s %6s %6s %5s %10s %12s\n", "kind", "m", "n", "k",
              "time[ms]", "flops");
  for (const Point& pt : points) {
    Rng rng(0xda7aULL + static_cast<std::uint64_t>(pt.m));
    const Matrix a = Matrix::gaussian(pt.m, pt.n, rng);
    for (SketchKind kind : kKinds) {
      ApplyEntry e = run_apply(kind, a, pt.k, reps, &failures);
      std::printf("%-14s %6lld %6lld %5lld %10.3f %12.3e\n",
                  sk::to_string(kind), static_cast<long long>(e.m),
                  static_cast<long long>(e.n), static_cast<long long>(e.k),
                  e.seconds * 1e3, e.flops);
      apply.push_back(e);
    }
  }
  const Point& largest = points.back();

  // ------------------------------------------------------- accuracy sweep
  Index acc_m = 0, acc_n = 0;
  const std::vector<AccuracyEntry> accuracy = run_accuracy(&acc_m, &acc_n);
  for (const AccuracyEntry& e : accuracy) {
    std::printf("accuracy %-14s rank=%lld p=%lld residual=%.4e (%.2fx dense)\n",
                sk::to_string(e.kind), static_cast<long long>(e.rank),
                static_cast<long long>(e.oversampling), e.residual,
                e.ratio_vs_dense);
  }

  // ------------------------------------------------- distributed at P = 4
  const Index drows = smoke ? 512 : 4096;
  const Index dcols = smoke ? 64 : 256;
  std::vector<DistributedEntry> dist;
  for (SketchKind kind : kKinds) {
    DistributedEntry e = run_distributed(kind, drows, dcols, 32, 4, &failures);
    std::printf("distributed %-14s P=4 rows=%lld time=%.3f ms err=%.2e\n",
                sk::to_string(kind), static_cast<long long>(e.rows),
                e.seconds * 1e3, e.max_err);
    dist.push_back(e);
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d sketch check(s) failed\n", failures);
  }
  const bool wrote = write_json(out, smoke, apply, accuracy, acc_m, acc_n,
                                dist, largest.m, largest.n, largest.k,
                                failures);
  return (failures == 0 && wrote) ? 0 : 1;
}
