// Global-pressure coherent structures with parallel IO — the paper's
// second science case (§4.3, Fig 2), on the synthetic ERA5 analogue.
//
// Pipeline: generate the reanalysis-like dataset → write it through the
// chunked SnapshotStore → four ranks stream disjoint row-blocks out of
// the shared file into the distributed streaming SVD → export the first
// two modes as PGM images and ASCII heatmaps → score them against the
// planted ground truth (which the real ERA5 could not provide).
//
// Environment knobs:
//   PARSVD_LON=144 PARSVD_LAT=72 PARSVD_SNAPSHOTS=1000 PARSVD_RANKS=4
#include <cstdio>
#include <mutex>

#include "core/parallel_streaming.hpp"
#include "io/snapshot_store.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/era5_synthetic.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::Era5Config cfg;
  cfg.n_lon = env::get_int("PARSVD_LON", 144);
  cfg.n_lat = env::get_int("PARSVD_LAT", 72);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 1000);
  cfg.n_modes = 6;
  const int ranks = static_cast<int>(env::get_int("PARSVD_RANKS", 4));
  const Index batch = env::get_int("PARSVD_BATCH", 100);
  const std::string store_path =
      env::get_string("PARSVD_STORE", "era5_synth.snap");

  wl::Era5Synthetic era(cfg);
  std::printf("ERA5 analogue: %lld x %lld grid (%lld cells), %lld snapshots\n",
              static_cast<long long>(cfg.n_lat),
              static_cast<long long>(cfg.n_lon),
              static_cast<long long>(era.grid_size()),
              static_cast<long long>(cfg.snapshots));

  // Stage 1: the "simulation" writes the dataset to disk in chunks.
  Stopwatch io_watch;
  io_watch.start();
  {
    io::SnapshotWriter writer(store_path, era.grid_size(), 64);
    Index written = 0;
    while (written < cfg.snapshots) {
      const Index take = std::min<Index>(128, cfg.snapshots - written);
      writer.append_batch(era.snapshot_block(0, era.grid_size(), written,
                                             take, /*subtract_mean=*/true));
      written += take;
    }
    writer.close();
  }
  std::printf("wrote %s in %.2f s\n", store_path.c_str(), io_watch.stop());

  // Stage 2: distributed analysis — each rank reads only its rows.
  // PARSVD_WEIGHTED=1 switches on cos-latitude area weighting (the
  // standard EOF convention; modes become orthonormal under the
  // cell-area inner product instead of the plain Euclidean one).
  const bool weighted = env::get_bool("PARSVD_WEIGHTED", false);
  const Vector area_w = era.area_weights();
  StreamingOptions opts;
  opts.num_modes = 4;
  opts.forget_factor = 1.0;

  Matrix modes;
  Vector s;
  std::mutex mu;
  Stopwatch solve_watch;
  solve_watch.start();
  pmpi::run(ranks, [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(era.grid_size(), ranks, comm.rank());
    wl::StoreBatchSource source(store_path, part.offset, part.count);
    StreamingOptions local_opts = opts;
    if (weighted) {
      local_opts.row_weights = area_w.segment(part.offset, part.count);
    }
    ParallelStreamingSVD psvd(comm, local_opts);
    psvd.initialize(source.next_batch(batch));
    while (!source.exhausted()) {
      psvd.incorporate_data(source.next_batch(batch));
    }
    Matrix physical = psvd.physical_modes();  // collective
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      modes = std::move(physical);
      s = psvd.singular_values();
    }
  });
  if (weighted) std::printf("(cos-latitude area weighting active)\n");
  std::printf("distributed streaming SVD (%d ranks) in %.2f s\n", ranks,
              solve_watch.stop());

  // Stage 3: post-processing + verification against the planted truth.
  std::printf("\n%-6s %14s %22s\n", "mode", "sigma", "cosine vs planted");
  for (Index m = 0; m < opts.num_modes; ++m) {
    std::printf("%-6lld %14.4f %22.6f\n", static_cast<long long>(m + 1), s[m],
                post::mode_cosine(modes, m, era.true_modes(), m));
  }

  for (Index m = 0; m < 2; ++m) {
    const std::string pgm = "era5_mode" + std::to_string(m + 1) + ".pgm";
    post::write_mode_pgm(pgm, modes.col(m), cfg.n_lat, cfg.n_lon);
    std::printf("\nmode %lld (%s):\n", static_cast<long long>(m + 1),
                pgm.c_str());
    std::fputs(
        post::ascii_heatmap(modes.col(m), cfg.n_lat, cfg.n_lon, 18, 72)
            .c_str(),
        stdout);
  }
  std::remove(store_path.c_str());
  return 0;
}
