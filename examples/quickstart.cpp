// Quickstart: the smallest end-to-end use of the library.
//
//   1. build a snapshot matrix (here: random low-rank data),
//   2. stream it through the serial streaming SVD in batches,
//   3. read back singular values and modes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/factory.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/lowrank.hpp"

int main() {
  using namespace parsvd;

  // A 2000 x 200 data matrix with a known 8-mode spectrum.
  Rng rng(42);
  const Vector spectrum = workloads::geometric_spectrum(8, 100.0, 0.5);
  const Matrix data = workloads::synthetic_low_rank(2000, 200, spectrum, rng);

  // Configure the streaming SVD: keep 8 modes, no forgetting.
  StreamingOptions opts;
  opts.num_modes = 8;
  opts.forget_factor = 1.0;

  auto svd = make_streaming_svd(opts);

  // Stream the data in batches of 25 snapshots — the full matrix is
  // never handed to the solver at once.
  workloads::MatrixBatchSource source(data);
  svd->initialize(source.next_batch(25));
  while (!source.exhausted()) {
    svd->incorporate_data(source.next_batch(25));
  }

  std::printf("streamed %lld snapshots in %lld update steps\n",
              static_cast<long long>(svd->snapshots_seen()),
              static_cast<long long>(svd->iterations() + 1));
  std::printf("%-6s %14s %14s\n", "mode", "sigma (est)", "sigma (true)");
  for (Index i = 0; i < 8; ++i) {
    std::printf("%-6lld %14.6f %14.6f\n", static_cast<long long>(i),
                svd->singular_values()[i], spectrum[i]);
  }
  std::printf("modes matrix: %lld x %lld\n",
              static_cast<long long>(svd->modes().rows()),
              static_cast<long long>(svd->modes().cols()));
  return 0;
}
