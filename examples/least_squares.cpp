// Least squares & pseudoinverse — the matrix-computation applications
// the paper's §2 motivates alongside modal analysis.
//
// Fits a polynomial to noisy samples three ways and compares them:
//   1. QR least squares (HouseholderQr::solve_least_squares),
//   2. the SVD pseudoinverse x = A⁺ b,
//   3. a rank-truncated pseudoinverse (regularization for the
//      ill-conditioned high-degree Vandermonde system).
#include <cmath>
#include <cstdio>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

int main() {
  using namespace parsvd;

  const Index samples = env::get_int("PARSVD_SAMPLES", 200);
  const Index degree = env::get_int("PARSVD_DEGREE", 14);
  Rng rng(17);

  // Ground truth: y = sin(2πx) sampled on [0, 1] with noise.
  Vector x(samples), y(samples);
  for (Index i = 0; i < samples; ++i) {
    x[i] = static_cast<double>(i) / static_cast<double>(samples - 1);
    y[i] = std::sin(2.0 * 3.14159265358979323846 * x[i]) +
           0.05 * rng.gaussian();
  }

  // Vandermonde design matrix (deliberately ill-conditioned for larger
  // degree — that is what the truncated pseudoinverse is for).
  Matrix a(samples, degree + 1);
  for (Index i = 0; i < samples; ++i) {
    double p = 1.0;
    for (Index j = 0; j <= degree; ++j) {
      a(i, j) = p;
      p *= x[i];
    }
  }

  const Vector sv = singular_values(a);
  std::printf("design matrix: %lld x %lld, cond = %.3e\n",
              static_cast<long long>(samples),
              static_cast<long long>(degree + 1),
              sv[0] / sv[sv.size() - 1]);

  // --- 1. QR least squares ---------------------------------------------
  const HouseholderQr qr(a);
  const Vector coef_qr = qr.solve_least_squares(y);

  // --- 2. full pseudoinverse --------------------------------------------
  const Matrix a_pinv = pinv(a);
  Vector coef_pinv(degree + 1, 0.0);
  gemv(Trans::No, 1.0, a_pinv, y.span(), 0.0, coef_pinv.span());

  // --- 3. rank-truncated pseudoinverse ----------------------------------
  // Treat singular values below 1e-10 σ_max as noise directions.
  const Matrix a_pinv_reg = pinv(a, 1e-10);
  Vector coef_reg(degree + 1, 0.0);
  gemv(Trans::No, 1.0, a_pinv_reg, y.span(), 0.0, coef_reg.span());

  auto rms_residual = [&](const Vector& coef) {
    Vector r = y;
    gemv(Trans::No, -1.0, a, coef.span(), 1.0, r.span());
    return r.norm2() / std::sqrt(static_cast<double>(samples));
  };

  std::printf("\n%-28s %14s %18s\n", "method", "RMS residual",
              "max |coefficient|");
  auto report = [&](const char* name, const Vector& coef) {
    double cmax = 0.0;
    for (Index j = 0; j < coef.size(); ++j) {
      cmax = std::max(cmax, std::fabs(coef[j]));
    }
    std::printf("%-28s %14.6f %18.4f\n", name, rms_residual(coef), cmax);
  };
  report("QR least squares", coef_qr);
  report("SVD pseudoinverse", coef_pinv);
  report("truncated pseudoinverse", coef_reg);

  // QR and the full pseudoinverse solve the same problem; they must
  // agree to working precision.
  const double diff = max_abs_diff(coef_qr, coef_pinv);
  std::printf("\nmax |QR - pinv| coefficient difference: %.3e\n", diff);
  std::printf("(QR and pseudoinverse agree; truncation trades a slightly\n"
              "larger residual for bounded coefficients on ill-conditioned\n"
              "systems — the classic SVD regularization from paper §2.)\n");
  return 0;
}
