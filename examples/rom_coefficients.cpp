// Reduced-order modeling with the streaming POD basis (paper §2).
//
// Builds a K-mode basis from the first half of the Burgers trajectory,
// then projects the *unseen* second half onto it: the modal coefficients
// a_j(t) = ⟨φ_j, u(t)⟩ are the reduced state a Galerkin ROM would evolve,
// and the reconstruction error measures how well the basis extrapolates
// beyond its training window.
#include <cmath>
#include <cstdio>

#include "core/streaming.hpp"
#include "io/matrix_io.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 2048);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 200);
  const Index num_modes = env::get_int("PARSVD_MODES", 8);
  const Index half = cfg.snapshots / 2;

  wl::Burgers burgers(cfg);
  std::printf("Burgers ROM: %lld dof, K = %lld modes, train on snapshots "
              "1..%lld, test on %lld..%lld\n\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(num_modes), static_cast<long long>(half),
              static_cast<long long>(half + 1),
              static_cast<long long>(cfg.snapshots));

  // Train the basis on the first half, streamed in batches of 25.
  StreamingOptions opts;
  opts.num_modes = num_modes;
  opts.forget_factor = 1.0;
  SerialStreamingSVD pod(opts);
  for (Index done = 0; done < half;) {
    const Index take = std::min<Index>(25, half - done);
    const Matrix batch = burgers.snapshot_block(0, cfg.grid_points, done, take);
    if (done == 0) {
      pod.initialize(batch);
    } else {
      pod.incorporate_data(batch);
    }
    done += take;
  }

  // Project train + test windows; report reconstruction error per time.
  std::printf("%-10s %12s %16s\n", "t", "window", "rel. rec. error");
  double train_worst = 0.0, test_worst = 0.0;
  for (Index j = 0; j < cfg.snapshots; j += cfg.snapshots / 20) {
    const Matrix snap = burgers.snapshot_block(0, cfg.grid_points, j, 1);
    const Matrix rec = pod.reconstruct(pod.project(snap));
    const double err = (snap - rec).norm_fro() / snap.norm_fro();
    const bool is_train = j < half;
    (is_train ? train_worst : test_worst) =
        std::max(is_train ? train_worst : test_worst, err);
    std::printf("%-10.3f %12s %16.3e\n", burgers.time_at(j),
                is_train ? "train" : "test", err);
  }

  // Leading modal coefficients over time (the ROM state trajectory).
  const Index probe = 6;
  Matrix coeffs(num_modes, probe);
  std::printf("\nleading modal coefficients a_j(t):\n%-10s", "t");
  for (Index k = 0; k < 3; ++k) std::printf(" %12s", ("a_" + std::to_string(k + 1)).c_str());
  std::printf("\n");
  for (Index p = 0; p < probe; ++p) {
    const Index j = p * (cfg.snapshots - 1) / (probe - 1);
    const Matrix snap = burgers.snapshot_block(0, cfg.grid_points, j, 1);
    const Matrix c = pod.project(snap);
    coeffs.set_block(0, p, c);
    std::printf("%-10.3f", burgers.time_at(j));
    for (Index k = 0; k < 3; ++k) std::printf(" %12.5f", c(k, 0));
    std::printf("\n");
  }
  io::write_csv("rom_coefficients.csv", coeffs.transposed());

  std::printf("\nworst relative reconstruction error: train %.3e, test "
              "%.3e\n",
              train_worst, test_worst);
  std::printf("(the advecting front leaves the training subspace — the "
              "classic POD\nlimitation for transport-dominated flows, and "
              "exactly why the paper's\nstreaming update matters:)\n");

  // The streaming fix: keep incorporating data as it arrives. The basis
  // refreshes and the late-time error collapses.
  for (Index done = half; done < cfg.snapshots;) {
    const Index take = std::min<Index>(25, cfg.snapshots - done);
    pod.incorporate_data(
        burgers.snapshot_block(0, cfg.grid_points, done, take));
    done += take;
  }
  double updated_worst = 0.0;
  for (Index j = half; j < cfg.snapshots; j += cfg.snapshots / 20) {
    const Matrix snap = burgers.snapshot_block(0, cfg.grid_points, j, 1);
    const Matrix rec = pod.reconstruct(pod.project(snap));
    updated_worst =
        std::max(updated_worst, (snap - rec).norm_fro() / snap.norm_fro());
  }
  std::printf("\nafter streaming the second half through "
              "incorporate_data():\n  worst test-window error %.3e "
              "(was %.3e)\n",
              updated_worst, test_worst);
  std::printf("wrote rom_coefficients.csv\n");
  return 0;
}
