// Online SVD with regime change — the "on the fly" use case the paper's
// §2 motivates (lightweight SVD for online computations).
//
// A simulated sensor field switches its dominant coherent structure
// halfway through the stream. Two streaming SVDs watch the same stream:
// one with ff = 1.0 (all history retained) and one with ff = 0.9
// (exponential forgetting). The monitor prints, per batch, each
// tracker's alignment with the currently-active structure — showing the
// forgetting tracker re-locking onto the new regime while the ff = 1
// tracker stays anchored to the historical average.
#include <cmath>
#include <cstdio>

#include "core/streaming.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "workloads/lowrank.hpp"

int main() {
  using namespace parsvd;

  const Index m = env::get_int("PARSVD_GRID", 600);
  const Index batches = env::get_int("PARSVD_BATCHES", 24);
  const Index batch_cols = env::get_int("PARSVD_BATCH", 20);
  Rng rng(7);

  // Two orthogonal "physical" structures; regime A then regime B.
  const Matrix structures = workloads::random_orthonormal(m, 2, rng);

  auto make_batch = [&](Index batch_idx) {
    const bool regime_b = batch_idx >= batches / 2;
    Matrix batch(m, batch_cols);
    for (Index j = 0; j < batch_cols; ++j) {
      const double amp = 10.0 * (1.0 + 0.2 * rng.gaussian());
      const double weak = 2.0 * rng.gaussian();
      for (Index i = 0; i < m; ++i) {
        const double dominant = structures(i, regime_b ? 1 : 0);
        const double minor = structures(i, regime_b ? 0 : 1);
        batch(i, j) = amp * dominant + weak * minor + 0.1 * rng.gaussian();
      }
    }
    return batch;
  };

  StreamingOptions retain;
  retain.num_modes = 2;
  retain.forget_factor = 1.0;
  StreamingOptions forget = retain;
  forget.forget_factor = 0.9;

  SerialStreamingSVD tracker_retain(retain);
  SerialStreamingSVD tracker_forget(forget);

  std::printf("%-7s %-8s %22s %22s\n", "batch", "regime", "align ff=1.0",
              "align ff=0.9");
  for (Index b = 0; b < batches; ++b) {
    const Matrix batch = make_batch(b);
    if (b == 0) {
      tracker_retain.initialize(batch);
      tracker_forget.initialize(batch);
    } else {
      tracker_retain.incorporate_data(batch);
      tracker_forget.incorporate_data(batch);
    }
    const Index active = (b >= batches / 2) ? 1 : 0;
    const double a1 =
        post::mode_cosine(tracker_retain.modes(), 0, structures, active);
    const double a2 =
        post::mode_cosine(tracker_forget.modes(), 0, structures, active);
    std::printf("%-7lld %-8s %22.4f %22.4f\n", static_cast<long long>(b),
                active == 0 ? "A" : "B", a1, a2);
  }

  std::printf(
      "\nff = 0.9 re-locks onto regime B within a few batches; ff = 1.0\n"
      "stays dominated by whichever regime holds the larger cumulative\n"
      "energy — the trade-off the forget factor controls (paper §3.1).\n");
  return 0;
}
