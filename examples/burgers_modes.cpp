// Coherent-structure extraction from the viscous Burgers equation —
// the paper's first science case (§4.3).
//
// Runs the serial streaming SVD and the 4-rank distributed streaming SVD
// on the same analytical snapshot data, prints the singular values, the
// serial/parallel mode discrepancy, and an ASCII rendering of the first
// two modes. Writes modes + errors to CSV for external plotting.
//
// Environment knobs:
//   PARSVD_GRID=2048  PARSVD_SNAPSHOTS=200  PARSVD_RANKS=4  PARSVD_MODES=6
#include <cstdio>
#include <mutex>

#include "core/factory.hpp"
#include "core/parallel_streaming.hpp"
#include "io/matrix_io.hpp"
#include "post/export.hpp"
#include "post/metrics.hpp"
#include "support/env.hpp"
#include "workloads/batch_source.hpp"
#include "workloads/burgers.hpp"

int main() {
  using namespace parsvd;
  namespace wl = workloads;

  wl::BurgersConfig cfg;
  cfg.grid_points = env::get_int("PARSVD_GRID", 2048);
  cfg.snapshots = env::get_int("PARSVD_SNAPSHOTS", 200);
  const int ranks = static_cast<int>(env::get_int("PARSVD_RANKS", 4));
  const Index batch = env::get_int("PARSVD_BATCH", 50);

  StreamingOptions opts;
  opts.num_modes = env::get_int("PARSVD_MODES", 6);
  opts.forget_factor = env::get_double("PARSVD_FF", 0.95);

  wl::Burgers burgers(cfg);
  std::printf("Burgers: %lld grid points, %lld snapshots, Re = %.0f\n",
              static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.snapshots), cfg.reynolds);

  // --- serial reference ---------------------------------------------
  SerialStreamingSVD serial(opts);
  {
    wl::MatrixBatchSource src(burgers.snapshot_matrix());
    serial.initialize(src.next_batch(batch));
    while (!src.exhausted()) serial.incorporate_data(src.next_batch(batch));
  }

  // --- distributed run (blocks generated per rank, never the full
  //     matrix) ---------------------------------------------------------
  Matrix par_modes;
  Vector par_s;
  std::mutex mu;
  pmpi::run(ranks, [&](pmpi::Communicator& comm) {
    const auto part = wl::partition_rows(cfg.grid_points, ranks, comm.rank());
    ParallelStreamingSVD psvd(comm, opts);
    Index done = 0;
    while (done < cfg.snapshots) {
      const Index take = std::min(batch, cfg.snapshots - done);
      const Matrix block =
          burgers.snapshot_block(part.offset, part.count, done, take);
      if (done == 0) {
        psvd.initialize(block);
      } else {
        psvd.incorporate_data(block);
      }
      done += take;
    }
    if (comm.is_root()) {
      std::lock_guard<std::mutex> lock(mu);
      par_modes = psvd.modes();
      par_s = psvd.singular_values();
    }
  });

  // --- comparison (Fig 1a/b content) ----------------------------------
  std::printf("\n%-6s %16s %16s %14s\n", "mode", "sigma(serial)",
              "sigma(parallel)", "L2 mode error");
  const Vector errs = post::mode_errors_l2(par_modes, serial.modes());
  for (Index i = 0; i < opts.num_modes; ++i) {
    std::printf("%-6lld %16.8f %16.8f %14.3e\n", static_cast<long long>(i),
                serial.singular_values()[i], par_s[i], errs[i]);
  }

  for (Index m = 0; m < std::min<Index>(2, opts.num_modes); ++m) {
    std::printf("\nmode %lld shape (serial):\n", static_cast<long long>(m + 1));
    std::fputs(post::ascii_plot(serial.modes().col(m), 12, 72).c_str(),
               stdout);
  }

  io::write_csv("burgers_serial_modes.csv", serial.modes());
  io::write_csv("burgers_parallel_modes.csv", par_modes);
  std::printf(
      "\nwrote burgers_serial_modes.csv / burgers_parallel_modes.csv\n");
  return 0;
}
