#!/usr/bin/env python3
"""trace_report: per-phase / per-rank breakdown of a parsvd trace.

Reads the Chrome trace-event JSON written by the obs layer
(`PARSVD_TRACE=1 PARSVD_TRACE_OUT=trace.json <binary>` or
`parsvd::obs::trace::flush_json_to`) and prints:

  * a per-phase table — event count, inclusive time, self (exclusive)
    time, and the slowest single rank for that phase;
  * a per-rank table — span count, busy time (union of that rank's
    spans) and its coverage of the run's wall time;
  * a critical-path estimate: for each phase take the maximum self time
    any one rank spent in it, and sum — a lower bound on the serial
    chain assuming phases do not overlap across ranks.

Spans nested on one thread track are attributed properly: a parent's
self time excludes every enclosed child span, so `tsqr.factor_panel`
time is not double-counted inside `pssvd.incorporate`.

Usage:
  trace_report.py TRACE.json [--top N] [--phase-prefix PFX]

Exit status: 0 on success, 2 on a malformed trace.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import pathlib
import sys


def load_events(path: pathlib.Path):
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"trace_report: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"trace_report: {path} has no traceEvents array", file=sys.stderr)
        raise SystemExit(2)
    return doc, events


def union_length(intervals):
    """Total length covered by a list of (start, end) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def self_times(track_events):
    """Exclusive time per event name for one (pid, tid) track.

    Spans on one track are properly nested (they come from one thread's
    RAII scopes), so a sweep with a stack attributes each slice of time
    to the innermost open span.
    """
    per_name = collections.defaultdict(float)
    # Sort by start, longest-first at equal starts so parents precede
    # their children (the flusher emits them in this order already).
    spans = sorted(track_events, key=lambda e: (e["ts"], -e["dur"]))
    stack = []  # (name, end)
    for ev in spans:
        start, end = ev["ts"], ev["ts"] + ev["dur"]
        while stack and stack[-1][1] <= start:
            stack.pop()
        if stack:
            per_name[stack[-1][0]] -= ev["dur"]
        per_name[ev["name"]] += ev["dur"]
        stack.append((ev["name"], end))
    return per_name


def fmt_ms(us: float) -> str:
    return f"{us / 1000.0:10.3f}"


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument("--top", type=int, default=30,
                        help="rows in the per-phase table (default 30)")
    parser.add_argument("--phase-prefix", default="",
                        help="only report phases whose name starts with this")
    args = parser.parse_args(argv)

    doc, events = load_events(args.trace)
    spans = [e for e in events
             if e.get("ph") == "X" and isinstance(e.get("dur"), (int, float))]
    instants = [e for e in events if e.get("ph") == "i"]
    if not spans:
        print("trace_report: no complete ('X') events in trace")
        return 0

    t0 = min(e["ts"] for e in spans)
    t1 = max(e["ts"] + e["dur"] for e in spans)
    wall = max(t1 - t0, 1e-9)

    # ------------------------------------------------ per-phase aggregation
    tracks = collections.defaultdict(list)
    for e in spans:
        tracks[(e.get("pid", 0), e.get("tid", 0))].append(e)

    incl = collections.defaultdict(float)   # name -> inclusive µs
    count = collections.Counter()
    excl = collections.defaultdict(float)   # name -> self µs (all tracks)
    excl_by_rank = collections.defaultdict(lambda: collections.defaultdict(float))
    for (pid, _tid), evs in tracks.items():
        for e in evs:
            incl[e["name"]] += e["dur"]
            count[e["name"]] += 1
        for name, self_us in self_times(evs).items():
            excl[name] += self_us
            excl_by_rank[name][pid] += self_us

    names = [n for n in incl if n.startswith(args.phase_prefix)]
    names.sort(key=lambda n: -excl[n])

    print(f"trace: {args.trace}")
    print(f"wall time: {wall / 1000.0:.3f} ms   spans: {len(spans)}   "
          f"instants: {len(instants)}   tracks: {len(tracks)}")
    anchor = (doc.get("otherData") or {}).get("wall_anchor_ns", "0")
    if anchor not in ("0", 0):
        print(f"wall anchor: {anchor} ns since epoch")
    print()
    print(f"{'phase':<28} {'count':>7} {'incl ms':>10} {'self ms':>10} "
          f"{'self %':>7} {'max-rank self ms':>17}")
    print("-" * 84)
    for name in names[:args.top]:
        by_rank = excl_by_rank[name]
        max_rank_self = max(by_rank.values(), default=0.0)
        print(f"{name:<28} {count[name]:>7} {fmt_ms(incl[name])} "
              f"{fmt_ms(excl[name])} {100.0 * excl[name] / wall:>6.1f}% "
              f"{fmt_ms(max_rank_self):>17}")
    if len(names) > args.top:
        print(f"... {len(names) - args.top} more phases (raise --top)")

    # -------------------------------------------------- per-rank coverage
    print()
    print(f"{'rank':<8} {'spans':>7} {'busy ms':>10} {'coverage':>9}")
    print("-" * 38)
    rank_pids = sorted({pid for (pid, _t) in tracks if pid > 0})
    coverages = []
    for pid in rank_pids:
        evs = [e for (p, _t), t_evs in tracks.items() if p == pid for e in t_evs]
        busy = union_length([(e["ts"], e["ts"] + e["dur"]) for e in evs])
        cov = 100.0 * busy / wall
        coverages.append(cov)
        print(f"rank {pid - 1:<3} {len(evs):>7} {fmt_ms(busy)} {cov:>8.1f}%")
    shared = [e for (p, _t), t_evs in tracks.items() if p == 0 for e in t_evs]
    if shared:
        busy = union_length([(e["ts"], e["ts"] + e["dur"]) for e in shared])
        print(f"{'shared':<8} {len(shared):>7} {fmt_ms(busy)} "
              f"{100.0 * busy / wall:>8.1f}%")
    if coverages:
        print(f"min rank coverage: {min(coverages):.1f}%")

    # -------------------------------------------- critical-path estimate
    critical = sum(max(excl_by_rank[n].values(), default=0.0) for n in names)
    print()
    print(f"critical-path estimate (sum of per-phase max-rank self time): "
          f"{critical / 1000.0:.3f} ms  ({100.0 * critical / wall:.1f}% of wall)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream closed early (e.g. piped into `head`) — not an error.
        # Re-point stdout at devnull so the interpreter's shutdown flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
