#!/usr/bin/env python3
"""parsvd_lint: project-specific invariants no generic linter knows.

Rules
-----
  raw-tag        An integer literal passed in the tag position of a pmpi
                 messaging call. Every wire tag must come from the
                 src/pmpi/tags.hpp registry (named constant or band
                 helper) so protocols cannot collide by picking the same
                 ad-hoc number. Scope: src/, bench/, examples/.

  pipelined      A blocking communication call inside a region marked
                 `// parsvd-pipelined begin` ... `// parsvd-pipelined
                 end`. Those regions exist to overlap pre-posted
                 receives with local compute; a blocking call there
                 silently serializes the overlap again. Scope: src/.

  env-registry   A PARSVD_* environment variable read through
                 support/env (or std::getenv) that is missing from the
                 README.md registry table. Undocumented knobs rot.
                 Scope: src/, bench/, examples/ against README.md.

  raw-rng        A raw random source (std::mt19937, std::random_device,
                 std::*_distribution, rand()/srand()) outside
                 src/support/rng.{hpp,cpp}. Every random draw must go
                 through parsvd::Rng so sketches and test fixtures stay
                 bit-reproducible across platforms (libstdc++ and libc++
                 disagree on distribution algorithms) and so the
                 documented seed-split discipline holds. Scope: src/,
                 bench/, examples/.

  group-tag      Hand-rolled group tag-namespace arithmetic
                 (tags::group_scope / scoped_group / unscoped or the
                 kGroupScopedBase / kGroupSpan / kGroupTagBias constants)
                 outside src/pmpi and src/verify. Group communicators
                 scope every wire tag internally; callers composing
                 scoped tags by hand can collide with a sibling group's
                 band or double-scope a tag. The verify model is exempt
                 because it must mirror the wire encoding exactly.
                 Scope: src/, bench/, examples/.

  blocking       A cache-blocking / kernel-tuning environment variable
                 (PARSVD_GEMM_MC/KC/NC, PARSVD_QR_BLOCK) read outside
                 src/linalg/. Blocking constants are owned by the
                 autotune profile (linalg/autotune.cpp resolves
                 defaults -> PARSVD_TUNE_PROFILE -> env overrides ->
                 sanitize, once per process); a second read elsewhere
                 can disagree with what the kernels actually use and
                 silently skips sanitization. Scope: src/, bench/,
                 examples/.

  ft-wait        A naked wait (wait/wait_any/wait_scoped/recv_matrix/
                 recv_bytes) inside a fault-tolerant collective (any
                 function whose name ends in `_ft`) that is not
                 death-bounded. The peer may be dead, so every wait on
                 it must sit inside a try block with a
                 `catch (RankDeadError)` handler — the watchdog-armed
                 idiom the recovery paths use — or the survivor hangs
                 forever on a rank that will never post (the
                 orphaned-wait class schedule_check --faults proves
                 absent). A line whose raw text (or the line above it)
                 carries `parsvd-lint: allow-ft-wait` is exempt —
                 reserved for waits on rank 0 under the documented
                 root-must-survive contract. Scope: src/.

  wall-clock     Wall-clock APIs (std::time, gmtime, localtime,
                 strftime, system_clock) in library or bench sources.
                 Bench JSON must be bit-reproducible run-to-run so CI
                 can diff it, and trace/measurement timestamps come
                 from the pluggable obs clock (steady in production,
                 fake in tests) so instrumented output is replayable.
                 A line whose raw text carries the marker
                 `parsvd-lint: allow-wall-clock` is exempt — reserved
                 for the single anchor read in src/obs/clock.cpp.
                 Scope: src/, bench/.

Usage
-----
  parsvd_lint.py [--repo ROOT]            lint the whole repository
  parsvd_lint.py [--repo ROOT] FILE...    lint specific files (all rules
                                          apply to every listed file;
                                          used by the fixture tests)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# ------------------------------------------------------------ rule: raw-tag

# Messaging calls that take a wire tag, with the 0-based index of the
# tag argument. Context methods post(src, dest, tag, payload) and
# wait(dest, src, tag) both carry the tag third; zero- or two-argument
# wait() overloads (condition variables, requests) never reach index 2.
TAG_ARG_INDEX = {
    "send_matrix": 2,
    "isend_matrix": 2,
    "recv_matrix": 1,
    "irecv": 1,
    "send_bytes": 2,
    "recv_bytes": 1,
    "post": 2,
    "wait": 2,
}

INT_LITERAL = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
CALL_NAME = re.compile(r"\b(" + "|".join(TAG_ARG_INDEX) + r")\s*\(")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving
    line structure so finding line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def split_args(text: str, open_paren: int):
    """Top-level comma split of the argument list opening at
    `open_paren`; returns (args, end_index) or None if unbalanced."""
    depth = 0
    args, start = [], open_paren + 1
    for i in range(open_paren, len(text)):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args, i
        elif ch == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return None


def rule_raw_tag(path: pathlib.Path, text: str, findings: list) -> None:
    if path.name == "tags.hpp":
        return  # the registry itself
    clean = strip_comments(text)
    for m in CALL_NAME.finditer(clean):
        name = m.group(1)
        parsed = split_args(clean, clean.index("(", m.end() - 1))
        if parsed is None:
            continue
        args, _ = parsed
        idx = TAG_ARG_INDEX[name]
        if idx >= len(args):
            continue
        tag = args[idx].strip()
        if INT_LITERAL.match(tag):
            line = clean.count("\n", 0, m.start()) + 1
            findings.append(
                (path, line, "raw-tag",
                 f"integer literal '{tag}' in the tag position of {name}(); "
                 "use a constant from src/pmpi/tags.hpp"))


# ---------------------------------------------------------- rule: pipelined

BLOCKING_CALLS = re.compile(
    r"\b(recv_matrix|recv_bytes|gather_matrices|gatherv|gather_bytes_ft|"
    r"gather_matrices_ft|scatter_rows|reduce|allreduce|allreduce_scalar|"
    r"allreduce_sum_ft|bcast|bcast_matrix|bcast_double|bcast_index|"
    r"bcast_bytes_ft|bcast_matrix_ft|bcast_doubles_ft|barrier|wait|"
    r"wait_all|wait_any|allgather_double|allgather_index)\s*\(")

PIPELINE_BEGIN = re.compile(r"parsvd-pipelined\s+begin")
PIPELINE_END = re.compile(r"parsvd-pipelined\s+end")


def rule_pipelined(path: pathlib.Path, text: str, findings: list) -> None:
    clean_lines = strip_comments(text).splitlines()
    inside = False
    for lineno, (raw, clean) in enumerate(
            zip(text.splitlines(), clean_lines), start=1):
        if PIPELINE_BEGIN.search(raw):
            inside = True
            continue
        if PIPELINE_END.search(raw):
            inside = False
            continue
        if not inside:
            continue
        m = BLOCKING_CALLS.search(clean)
        if m:
            findings.append(
                (path, lineno, "pipelined",
                 f"blocking call {m.group(1)}() inside a parsvd-pipelined "
                 "region; only posts (irecv/isend) and local compute may "
                 "appear between begin/end"))


# ------------------------------------------------------- rule: env-registry

ENV_READ = re.compile(
    r'(?:env::get_\w+|std::getenv|\bgetenv)\s*\(\s*"(PARSVD_[A-Z0-9_]+)"')
ENV_TOKEN = re.compile(r"PARSVD_[A-Z0-9_]+")


def rule_env_registry(paths, readme: pathlib.Path, findings: list) -> None:
    documented = set(ENV_TOKEN.findall(
        readme.read_text(encoding="utf-8"))) if readme.exists() else set()
    for path in paths:
        text = path.read_text(encoding="utf-8", errors="replace")
        for m in ENV_READ.finditer(text):
            var = m.group(1)
            if var in documented:
                continue
            line = text.count("\n", 0, m.start()) + 1
            findings.append(
                (path, line, "env-registry",
                 f"{var} is read here but missing from the README.md "
                 "environment-variable registry"))


# ------------------------------------------------------------ rule: raw-rng

RAW_RNG = re.compile(
    r"\b(std::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+|knuth_b|"
    r"default_random_engine|random_device|\w+_distribution)\b|"
    r"(?:std::)?s?rand\s*\()")

# The one sanctioned wrapper: parsvd::Rng in src/support/rng.{hpp,cpp}
# owns the generator; everything else derives streams via Rng::split.
RAW_RNG_EXEMPT_NAMES = {"rng.hpp", "rng.cpp"}


def rule_raw_rng(path: pathlib.Path, text: str, findings: list) -> None:
    if path.name in RAW_RNG_EXEMPT_NAMES and path.parent.name == "support":
        return
    clean = strip_comments(text)
    for m in RAW_RNG.finditer(clean):
        line = clean.count("\n", 0, m.start()) + 1
        findings.append(
            (path, line, "raw-rng",
             f"raw random source '{m.group(1).strip()}'; draw through "
             "parsvd::Rng (src/support/rng.hpp) so streams stay "
             "reproducible and follow the seed-split discipline"))


# ---------------------------------------------------------- rule: group-tag

GROUP_TAG_ARITH = re.compile(
    r"\b(group_scope\s*\(|scoped_group\s*\(|unscoped\s*\(|"
    r"kGroupScopedBase\b|kGroupSpan\b|kGroupTagBias\b)")

# The wire layer itself (src/pmpi) and the static model that must mirror
# its tag encoding (src/verify) are the only sanctioned users.
GROUP_TAG_EXEMPT_DIRS = {"pmpi", "verify"}


def group_tag_exempt(path: pathlib.Path, root) -> bool:
    if root is None:
        return False
    try:
        parts = path.resolve().relative_to(root).parts
    except ValueError:
        return False
    return len(parts) >= 2 and parts[0] == "src" and \
        parts[1] in GROUP_TAG_EXEMPT_DIRS


def rule_group_tag(path: pathlib.Path, text: str, findings: list,
                   root=None) -> None:
    if group_tag_exempt(path, root):
        return
    clean = strip_comments(text)
    for m in GROUP_TAG_ARITH.finditer(clean):
        line = clean.count("\n", 0, m.start()) + 1
        token = m.group(1).strip().rstrip("(").strip()
        findings.append(
            (path, line, "group-tag",
             f"group tag-namespace arithmetic '{token}' outside src/pmpi "
             "and src/verify; group communicators scope wire tags "
             "internally — pass the group-local tag and let the "
             "Communicator translation layer relocate it"))


# ----------------------------------------------------------- rule: blocking

BLOCKING_ENV_READ = re.compile(
    r'(?:env::get_\w+|std::getenv|\bgetenv)\s*\(\s*'
    r'"(PARSVD_GEMM_(?:MC|KC|NC)|PARSVD_QR_BLOCK)"')

# The autotune profile resolver is the single sanctioned reader: it
# folds the env overrides into the sanitized per-process profile that
# the kernels actually dispatch on.
BLOCKING_EXEMPT_DIRS = {"linalg"}


def blocking_exempt(path: pathlib.Path, root) -> bool:
    if root is None:
        return False
    try:
        parts = path.resolve().relative_to(root).parts
    except ValueError:
        return False
    return len(parts) >= 2 and parts[0] == "src" and \
        parts[1] in BLOCKING_EXEMPT_DIRS


def rule_blocking(path: pathlib.Path, text: str, findings: list,
                  root=None) -> None:
    if blocking_exempt(path, root):
        return
    # Raw text, not strip_comments: the env name is a string literal,
    # which comment stripping blanks out (same as rule_env_registry).
    for m in BLOCKING_ENV_READ.finditer(text):
        line = text.count("\n", 0, m.start()) + 1
        findings.append(
            (path, line, "blocking",
             f"blocking constant {m.group(1)} read outside src/linalg/; "
             "query parsvd::autotune::active_profile() instead — it folds "
             "profile files and env overrides into the sanitized blocking "
             "the kernels actually use"))


# ------------------------------------------------------------ rule: ft-wait

FT_FUNC_DEF = re.compile(r"\b(\w+_ft)\s*\(")
FT_WAIT_CALL = re.compile(
    r"\b(wait_scoped|wait_any|wait|recv_matrix|recv_bytes)\s*\(")
FT_CATCH = re.compile(r"\s*catch\s*\(([^)]*)\)")
FT_WAIT_EXEMPT = "parsvd-lint: allow-ft-wait"


def match_brace(text: str, open_idx: int) -> int:
    """Index of the `}` matching the `{` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def ft_function_bodies(clean: str):
    """(start, end) spans of the bodies of `*_ft` function DEFINITIONS
    (a parameter list followed by `{`; calls/declarations end in `;`)."""
    for m in FT_FUNC_DEF.finditer(clean):
        parsed = split_args(clean, clean.index("(", m.end() - 1))
        if parsed is None:
            continue
        _, close = parsed
        j = close + 1
        while j < len(clean) and clean[j].isspace():
            j += 1
        if j >= len(clean) or clean[j] != "{":
            continue
        end = match_brace(clean, j)
        if end > 0:
            yield j, end


def death_bounded_spans(clean: str, start: int, end: int):
    """Spans inside [start, end) protected by a try whose catch chain
    handles RankDeadError — the sanctioned death-bounded wait idiom."""
    body = clean[start:end]
    for m in re.finditer(r"\btry\b", body):
        ob = body.find("{", m.end())
        if ob < 0:
            continue
        cb = match_brace(body, ob)
        if cb < 0:
            continue
        handled = False
        j = cb + 1
        while True:
            mc = FT_CATCH.match(body, j)
            if not mc:
                break
            if "RankDeadError" in mc.group(1):
                handled = True
            cob = body.find("{", mc.end())
            if cob < 0:
                break
            ccb = match_brace(body, cob)
            if ccb < 0:
                break
            j = ccb + 1
        if handled:
            yield start + ob, start + cb


def rule_ft_wait(path: pathlib.Path, text: str, findings: list) -> None:
    clean = strip_comments(text)
    raw_lines = text.splitlines()
    for start, end in ft_function_bodies(clean):
        bounded = list(death_bounded_spans(clean, start, end))
        for m in FT_WAIT_CALL.finditer(clean, start, end):
            if any(lo <= m.start() <= hi for lo, hi in bounded):
                continue
            lineno = clean.count("\n", 0, m.start()) + 1
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            prev = raw_lines[lineno - 2] if lineno >= 2 else ""
            if FT_WAIT_EXEMPT in raw or FT_WAIT_EXEMPT in prev:
                continue
            findings.append(
                (path, lineno, "ft-wait",
                 f"naked {m.group(1)}() in a fault-tolerant collective; "
                 "the peer may be dead — wrap the wait in try/catch "
                 "(RankDeadError) so it dead-resolves, or mark the "
                 "root-must-survive contract with "
                 "'parsvd-lint: allow-ft-wait'"))


# --------------------------------------------------------- rule: wall-clock

WALL_CLOCK = re.compile(
    r"\b(std::time\s*\(|std::gmtime|std::localtime|std::strftime|"
    r"\bgmtime\s*\(|\blocaltime\s*\(|\bstrftime\s*\(|system_clock)")

# Checked against the RAW line (markers live in comments, which
# strip_comments blanks out before the regex runs). The marker exempts
# its own line and the one immediately after it, so wrapped expressions
# can carry the marker on a comment line of their own.
WALL_CLOCK_EXEMPT = "parsvd-lint: allow-wall-clock"


def rule_wall_clock(path: pathlib.Path, text: str, findings: list) -> None:
    raw_lines = text.splitlines()
    for lineno, line in enumerate(strip_comments(text).splitlines(), start=1):
        m = WALL_CLOCK.search(line)
        if not m:
            continue
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        prev = raw_lines[lineno - 2] if lineno >= 2 else ""
        if WALL_CLOCK_EXEMPT in raw or WALL_CLOCK_EXEMPT in prev:
            continue
        findings.append(
            (path, lineno, "wall-clock",
             f"wall-clock API '{m.group(1).strip()}'; bench JSON and trace "
             "output must be reproducible run-to-run (time through the "
             "pluggable obs clock or support/timer's steady stopwatch)"))


# ------------------------------------------------------------------ driver

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def collect(root: pathlib.Path, subdir: str):
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(p for p in base.rglob("*")
                  if p.suffix in SOURCE_SUFFIXES and p.is_file())


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="lint only these files, all rules")
    args = parser.parse_args(argv)
    root = args.repo.resolve()
    readme = root / "README.md"

    findings: list = []
    if args.files:
        # Explicit file mode (fixtures): every rule applies to each file.
        for path in args.files:
            if not path.is_file():
                print(f"parsvd_lint: no such file: {path}", file=sys.stderr)
                return 2
            text = path.read_text(encoding="utf-8", errors="replace")
            rule_raw_tag(path, text, findings)
            rule_pipelined(path, text, findings)
            rule_raw_rng(path, text, findings)
            rule_group_tag(path, text, findings)
            rule_blocking(path, text, findings)
            rule_ft_wait(path, text, findings)
            rule_wall_clock(path, text, findings)
        rule_env_registry(args.files, readme, findings)
    else:
        src = collect(root, "src")
        bench = collect(root, "bench")
        examples = collect(root, "examples")
        for path in src + bench + examples:
            text = path.read_text(encoding="utf-8", errors="replace")
            rule_raw_tag(path, text, findings)
            rule_raw_rng(path, text, findings)
            rule_group_tag(path, text, findings, root)
            rule_blocking(path, text, findings, root)
        for path in src:
            text = path.read_text(encoding="utf-8", errors="replace")
            rule_pipelined(path, text, findings)
            rule_ft_wait(path, text, findings)
        for path in src + bench:
            rule_wall_clock(
                path, path.read_text(encoding="utf-8", errors="replace"),
                findings)
        rule_env_registry(src + bench + examples, readme, findings)

    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"parsvd_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("parsvd_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
