#!/usr/bin/env python3
"""CI gate for the comm benchmark trajectory.

Validates a freshly produced BENCH_comm.json (usually a --smoke run)
against the committed trajectory:

  1. both files parse and carry the schema_version-1 keys;
  2. the committed trajectory's acceptance claims hold (tree beats flat
     on the alpha-beta model at P >= 8 / 1 MiB; prefetch >= +20% with
     ingest latency; prefetch on/off bit-identical);
  3. for every (collective, algo, ranks, payload_bytes) entry present in
     BOTH files, the deterministic per-round byte/message counters agree
     within a tolerance (default 25%). The counters are exact functions
     of the topology, so a drift means a collective silently changed
     shape — the regression wall-clock timing cannot flag on a noisy
     shared runner.

Usage: check_bench_comm.py FRESH_JSON COMMITTED_JSON [--tolerance=0.25]
"""

import json
import sys

REQUIRED_TOP = [
    "bench",
    "schema_version",
    "collectives",
    "claim_tree_beats_flat",
    "prefetch",
    "prefetch_zero_latency",
]
REQUIRED_ENTRY = [
    "collective",
    "algo",
    "ranks",
    "payload_bytes",
    "seconds",
    "model_seconds",
    "bytes_per_round",
    "messages_per_round",
    "root_bytes_per_round",
]
GATED_COUNTERS = ["bytes_per_round", "messages_per_round", "root_bytes_per_round"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    for key in REQUIRED_TOP:
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
    if doc["bench"] != "comm" or doc["schema_version"] != 1:
        fail(f"{path}: not a schema_version-1 comm record")
    for i, entry in enumerate(doc["collectives"]):
        for key in REQUIRED_ENTRY:
            if key not in entry:
                fail(f"{path}: collectives[{i}] missing '{key}'")
    return doc


def entry_key(e):
    return (e["collective"], e["algo"], e["ranks"], e["payload_bytes"])


def main(argv):
    tolerance = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    fresh = load(paths[0])
    committed = load(paths[1])

    claim = committed["claim_tree_beats_flat"]
    if not claim.get("holds"):
        fail("committed trajectory: claim_tree_beats_flat does not hold")
    if claim.get("gather_model_speedup", 0) <= 1 or claim.get(
        "bcast_model_speedup", 0
    ) <= 1:
        fail("committed trajectory: tree model speedups must exceed 1x")
    pref = committed["prefetch"]
    if not pref.get("bit_identical"):
        fail("committed trajectory: prefetch results not bit-identical")
    gain = pref["sync_seconds"] / pref["prefetch_seconds"] - 1.0
    if gain < 0.20:
        fail(
            f"committed trajectory: prefetch gain {gain * 100:.1f}% "
            "below the 20% acceptance bar"
        )
    if not committed["prefetch_zero_latency"].get("bit_identical"):
        fail("committed trajectory: zero-latency prefetch not bit-identical")

    committed_by_key = {entry_key(e): e for e in committed["collectives"]}
    compared = 0
    for e in fresh["collectives"]:
        ref = committed_by_key.get(entry_key(e))
        if ref is None:
            continue
        for counter in GATED_COUNTERS:
            a, b = e[counter], ref[counter]
            if a == b == 0:
                continue
            denom = max(abs(a), abs(b))
            if abs(a - b) / denom > tolerance:
                fail(
                    f"{entry_key(e)}: {counter} regressed "
                    f"{a:.1f} vs committed {b:.1f} (> {tolerance * 100:.0f}%)"
                )
        compared += 1
    if compared == 0:
        fail("no comparable collective entries between fresh and committed runs")

    if not fresh["prefetch"].get("bit_identical"):
        fail("fresh run: prefetch results not bit-identical")

    print(
        f"OK: {compared} collective entries within {tolerance * 100:.0f}%, "
        f"claims hold (gather model speedup "
        f"{claim['gather_model_speedup']:.2f}x, prefetch {gain * 100:+.1f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
