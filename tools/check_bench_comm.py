#!/usr/bin/env python3
"""CI gate for the comm benchmark trajectory.

Validates a freshly produced BENCH_comm.json (usually a --smoke run)
against the committed trajectory:

  1. both files parse and carry the schema_version-1 keys;
  2. the committed trajectory's acceptance claims hold (tree beats flat
     on the alpha-beta model at P >= 8 / 1 MiB; prefetch >= +20% with
     ingest latency; prefetch on/off bit-identical);
  3. for every (collective, algo, ranks, payload_bytes) entry present in
     BOTH files, the deterministic per-round byte/message counters agree
     within a tolerance (default 25%). The counters are exact functions
     of the topology, so a drift means a collective silently changed
     shape — the regression wall-clock timing cannot flag on a noisy
     shared runner.

Usage: check_bench_comm.py FRESH_JSON COMMITTED_JSON [--tolerance=0.25]
"""

import sys

import benchlib
from benchlib import fail

REQUIRED_TOP = [
    "bench",
    "schema_version",
    "collectives",
    "claim_tree_beats_flat",
    "prefetch",
    "prefetch_zero_latency",
]
REQUIRED_ENTRY = [
    "collective",
    "algo",
    "ranks",
    "payload_bytes",
    "seconds",
    "model_seconds",
    "bytes_per_round",
    "messages_per_round",
    "root_bytes_per_round",
]
GATED_COUNTERS = ["bytes_per_round", "messages_per_round", "root_bytes_per_round"]


def load(path):
    return benchlib.load_record(
        path, "comm", 1, REQUIRED_TOP, {"collectives": REQUIRED_ENTRY})


def entry_key(e):
    return (e["collective"], e["algo"], e["ranks"], e["payload_bytes"])


def main(argv):
    fresh_path, committed_path, opts = benchlib.parse_gate_args(
        argv, __doc__, {"tolerance": (float, 0.25)})
    tolerance = opts["tolerance"]
    fresh = load(fresh_path)
    committed = load(committed_path)

    claim = committed["claim_tree_beats_flat"]
    if not claim.get("holds"):
        fail("committed trajectory: claim_tree_beats_flat does not hold")
    if claim.get("gather_model_speedup", 0) <= 1 or claim.get(
        "bcast_model_speedup", 0
    ) <= 1:
        fail("committed trajectory: tree model speedups must exceed 1x")
    pref = committed["prefetch"]
    if not pref.get("bit_identical"):
        fail("committed trajectory: prefetch results not bit-identical")
    gain = pref["sync_seconds"] / pref["prefetch_seconds"] - 1.0
    if gain < 0.20:
        fail(
            f"committed trajectory: prefetch gain {gain * 100:.1f}% "
            "below the 20% acceptance bar"
        )
    if not committed["prefetch_zero_latency"].get("bit_identical"):
        fail("committed trajectory: zero-latency prefetch not bit-identical")

    compared = 0
    for key, e, ref in benchlib.match_entries(
            fresh["collectives"], committed["collectives"], entry_key):
        for counter in GATED_COUNTERS:
            benchlib.gate_within(key, counter, e[counter], ref[counter],
                                 tolerance)
        compared += 1
    benchlib.require_compared(compared)

    if not fresh["prefetch"].get("bit_identical"):
        fail("fresh run: prefetch results not bit-identical")

    print(
        f"OK: {compared} collective entries within {tolerance * 100:.0f}%, "
        f"claims hold (gather model speedup "
        f"{claim['gather_model_speedup']:.2f}x, prefetch {gain * 100:+.1f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
