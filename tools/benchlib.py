"""Shared claim-gating plumbing for the check_bench_* CI gates.

Every gate follows the same shape: load a fresh artifact (usually a
--smoke run) and the committed trajectory, validate both envelopes
against the bench's schema, check the committed run's acceptance claims,
then compare the deterministic counters of every entry present in BOTH
files — exact for arithmetic models, within a tolerance for seeded
residuals — because wall-clock timing can never gate on a noisy shared
runner. This module owns the bench-agnostic half of that shape; the
per-bench claim logic stays in the individual scripts.
"""

from __future__ import annotations

import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_record(path, bench, schema_version, required_top, sections=None):
    """Parse a bench JSON artifact and validate its envelope.

    `required_top` lists the mandatory top-level keys; `sections` maps a
    top-level list-valued key to the keys every entry of that list must
    carry. Any violation is a gate failure, not an exception.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    for key in required_top:
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
    if doc["bench"] != bench or doc["schema_version"] != schema_version:
        fail(f"{path}: not a schema_version-{schema_version} {bench} record")
    for section, required in (sections or {}).items():
        for i, entry in enumerate(doc[section]):
            for key in required:
                if key not in entry:
                    fail(f"{path}: {section}[{i}] missing '{key}'")
    return doc


def parse_gate_args(argv, usage, flags=None):
    """Split --name=value flags from the two positional artifact paths.

    `flags` maps a flag name to (converter, default). Returns
    (fresh_path, committed_path, values). Exits 2 with `usage` on a
    wrong path count or an unknown flag.
    """
    values = {name: default for name, (_, default) in (flags or {}).items()}
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--") and "=" in arg:
            name, raw = arg[2:].split("=", 1)
            if flags is None or name not in flags:
                print(usage, file=sys.stderr)
                sys.exit(2)
            values[name] = flags[name][0](raw)
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(usage, file=sys.stderr)
        sys.exit(2)
    return paths[0], paths[1], values


def match_entries(fresh_entries, committed_entries, key):
    """(key, fresh, committed) for entries present in BOTH lists."""
    committed_by_key = {key(e): e for e in committed_entries}
    for e in fresh_entries:
        ref = committed_by_key.get(key(e))
        if ref is not None:
            yield key(e), e, ref


def gate_exact(entry_key, counter, a, b, what="drifted"):
    """Deterministic counters (flop models, byte counts) must agree
    exactly between runs — any drift means the code changed shape."""
    if a != b:
        fail(f"{entry_key}: {counter} {what} {a:.4g} vs committed {b:.4g}")


def gate_within(entry_key, counter, a, b, tolerance, what="regressed"):
    """Seeded-but-noisy counters must agree within a relative tolerance.
    A (0, 0) pair is agreement, not a division by zero."""
    if a == b == 0:
        return
    denom = max(abs(a), abs(b), 1e-300)
    if abs(a - b) / denom > tolerance:
        fail(
            f"{entry_key}: {counter} {what} {a:.6g} vs committed {b:.6g} "
            f"(> {tolerance * 100:.0f}%)"
        )


def require_compared(compared: int) -> None:
    """A gate that matched nothing gates nothing — that is a failure."""
    if compared == 0:
        fail("no comparable entries between fresh and committed runs")
