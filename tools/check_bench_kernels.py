#!/usr/bin/env python3
"""CI gate for the dense-kernel benchmark trajectory.

Validates a freshly produced BENCH_kernels.json (usually a --smoke run)
against the committed full-size trajectory:

  1. both files parse, carry the schema_version-2 keys (including the
     blocking profile actually used), and report zero correctness
     failures (every kernel matched its reference, the compensated-dot
     fixtures were exact, and the mixed-path singular values stayed
     within refinement tolerance);
  2. claim fields are honest: a smoke run must emit them as null —
     never as fabricated zeros — and a full run must emit them all;
  3. the committed trajectory's acceptance claims hold: the packed fp64
     GEMM beats the seed kernel at 512^3, the fp32 engine reaches
     >= 1.5x the fp64 engine at 512^3, the mixed-precision randomized
     SVD reaches >= 1.2x fp64 end-to-end at 4096x2048 rank 64 while its
     refined singular values stay within 1e-10 relative of fp64, and
     every recorded speedup field is consistent with the seconds it was
     derived from;
  4. for every result entry present in BOTH files (matched on
     kernel/m/n/k/threads) the deterministic flop model agrees exactly —
     a drift means a kernel changed its arithmetic, which wall-clock
     noise on a shared runner can never flag;
  5. if the committed run carried an autotune section, the recorded
     winners are sane: best_seconds <= default_seconds for both
     precisions and every sweep visited at least one candidate.

Usage: check_bench_kernels.py FRESH_JSON COMMITTED_JSON
"""

import sys

import benchlib
from benchlib import fail

REQUIRED_TOP = [
    "bench",
    "schema_version",
    "smoke",
    "hardware_concurrency",
    "blocking",
    "results",
    "autotune",
    "gemm_512_seed_seconds",
    "gemm_512_packed_seconds",
    "gemm_512_speedup_vs_seed",
    "gemm_f32_512_seconds",
    "gemm_f32_512_speedup_vs_f64",
    "mixed_rsvd_double_seconds",
    "mixed_rsvd_mixed_seconds",
    "mixed_rsvd_speedup",
    "mixed_rsvd_sigma_rel_err",
    "single_rsvd_sigma_rel_err",
    "failures",
]
REQUIRED_RESULT = ["kernel", "m", "n", "k", "threads", "seconds", "gflops", "flops"]
REQUIRED_BLOCKING = ["mc", "kc", "nc", "mr", "nr"]
CLAIM_FIELDS = [
    "gemm_512_seed_seconds",
    "gemm_512_packed_seconds",
    "gemm_512_speedup_vs_seed",
    "gemm_f32_512_seconds",
    "gemm_f32_512_speedup_vs_f64",
    "mixed_rsvd_double_seconds",
    "mixed_rsvd_mixed_seconds",
    "mixed_rsvd_speedup",
    "mixed_rsvd_sigma_rel_err",
    "single_rsvd_sigma_rel_err",
]

RSVD_CLAIM_POINT = {"m": 4096, "n": 2048, "k": 64}
F32_SPEEDUP_BAR = 1.5
MIXED_SPEEDUP_BAR = 1.2
SIGMA_REL_ERR_BAR = 1e-10


def load(path):
    doc = benchlib.load_record(
        path, "kernels", 2, REQUIRED_TOP, {"results": REQUIRED_RESULT})
    blocking = doc["blocking"]
    for prec in ("f64", "f32"):
        if prec not in blocking:
            fail(f"{path}: blocking missing '{prec}'")
        for key in REQUIRED_BLOCKING:
            if not isinstance(blocking[prec].get(key), int):
                fail(f"{path}: blocking.{prec}.{key} missing or not an int")
    if not isinstance(blocking.get("qr_block"), int):
        fail(f"{path}: blocking.qr_block missing or not an int")
    if "tuned" not in blocking:
        fail(f"{path}: blocking.tuned missing")
    if doc["failures"] != 0:
        fail(f"{path}: {doc['failures']} correctness failures recorded")
    # Honesty gate (the bug this schema revision fixed): a smoke run has
    # no full-size measurements, so its claim fields must be null — a
    # zero here is a fabricated number.
    for field in CLAIM_FIELDS:
        value = doc[field]
        if doc["smoke"]:
            if value is not None:
                fail(
                    f"{path}: smoke run carries claim field '{field}'="
                    f"{value!r} (must be null — smoke sizes cannot "
                    f"support the claims)"
                )
        else:
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: full run claim field '{field}'={value!r} invalid")
    return doc


def result_key(e):
    return (e["kernel"], e["m"], e["n"], e["k"], e["threads"])


def check_speedup_consistency(doc, num_key, den_key, speedup_key):
    num, den, speedup = doc[num_key], doc[den_key], doc[speedup_key]
    want = num / den
    if abs(speedup - want) / want > 1e-6:
        fail(
            f"committed trajectory: {speedup_key}={speedup:.6g} inconsistent "
            f"with {num_key}/{den_key}={want:.6g}"
        )


def check_committed_claims(doc):
    if doc["smoke"]:
        fail("committed trajectory is a smoke run — claims need a full run")
    check_speedup_consistency(
        doc, "gemm_512_seed_seconds", "gemm_512_packed_seconds",
        "gemm_512_speedup_vs_seed")
    check_speedup_consistency(
        doc, "gemm_512_packed_seconds", "gemm_f32_512_seconds",
        "gemm_f32_512_speedup_vs_f64")
    check_speedup_consistency(
        doc, "mixed_rsvd_double_seconds", "mixed_rsvd_mixed_seconds",
        "mixed_rsvd_speedup")
    if doc["gemm_512_speedup_vs_seed"] <= 1.0:
        fail(
            "committed trajectory: packed gemm "
            f"{doc['gemm_512_speedup_vs_seed']:.2f}x does not beat the seed "
            "kernel at 512^3"
        )
    if doc["gemm_f32_512_speedup_vs_f64"] < F32_SPEEDUP_BAR:
        fail(
            "committed trajectory: fp32 gemm "
            f"{doc['gemm_f32_512_speedup_vs_f64']:.2f}x below the "
            f"{F32_SPEEDUP_BAR}x bar vs fp64 at 512^3"
        )
    if doc["mixed_rsvd_speedup"] < MIXED_SPEEDUP_BAR:
        fail(
            "committed trajectory: mixed randomized SVD "
            f"{doc['mixed_rsvd_speedup']:.2f}x below the "
            f"{MIXED_SPEEDUP_BAR}x bar vs fp64 end-to-end"
        )
    if doc["mixed_rsvd_sigma_rel_err"] > SIGMA_REL_ERR_BAR:
        fail(
            "committed trajectory: mixed-path singular values drifted "
            f"{doc['mixed_rsvd_sigma_rel_err']:.3e} relative from fp64 "
            f"(bar {SIGMA_REL_ERR_BAR:.0e})"
        )
    # The claim must have been measured at the acceptance shape.
    rsvd = [e for e in doc["results"] if e["kernel"] == "rsvd_mixed"]
    if not any(
        e["m"] == RSVD_CLAIM_POINT["m"]
        and e["n"] == RSVD_CLAIM_POINT["n"]
        and e["k"] == RSVD_CLAIM_POINT["k"]
        for e in rsvd
    ):
        fail(
            "committed trajectory: no rsvd_mixed entry at the acceptance "
            f"point {RSVD_CLAIM_POINT}"
        )
    autotune = doc["autotune"]
    if autotune is not None:
        for prec in ("f64", "f32"):
            entry = autotune.get(prec)
            if entry is None:
                fail(f"committed trajectory: autotune section missing '{prec}'")
            if entry.get("candidates", 0) < 1:
                fail(f"committed trajectory: autotune.{prec} visited no candidates")
            if entry["best_seconds"] > entry["default_seconds"]:
                fail(
                    f"committed trajectory: autotune.{prec} winner "
                    f"({entry['best_seconds']:.3e}s) slower than the default "
                    f"blocking ({entry['default_seconds']:.3e}s)"
                )


def main(argv):
    fresh_path, committed_path, _ = benchlib.parse_gate_args(argv, __doc__)
    fresh = load(fresh_path)
    committed = load(committed_path)
    check_committed_claims(committed)

    compared = 0
    for key, e, ref in benchlib.match_entries(
            fresh["results"], committed["results"], result_key):
        # The flop model is an exact function of (kernel, shape): any
        # drift means a kernel changed its arithmetic.
        benchlib.gate_exact(key, "flop model", e["flops"], ref["flops"])
        compared += 1
    benchlib.require_compared(compared)

    print(
        f"OK: {compared} matched entries, claims hold (packed "
        f"{committed['gemm_512_speedup_vs_seed']:.2f}x vs seed, fp32 "
        f"{committed['gemm_f32_512_speedup_vs_f64']:.2f}x vs fp64 at 512^3, "
        f"mixed rsvd {committed['mixed_rsvd_speedup']:.2f}x with sigma err "
        f"{committed['mixed_rsvd_sigma_rel_err']:.2e})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
