#!/usr/bin/env python3
"""CI gate for the structured-sketch benchmark trajectory.

Validates a freshly produced BENCH_sketch.json (usually a --smoke run)
against the committed trajectory:

  1. both files parse, carry the schema_version-1 keys, and report zero
     correctness failures (every sketch apply matched its realized
     operator and the distributed sketch matched the serial product);
  2. the committed trajectory's acceptance claims hold: sparse-sign AND
     SRHT beat the dense-Gaussian GEMM at the 4096x2048, k=64 sweep
     point, and at oversampling >= 10 the structured residuals stay
     within 2x of dense;
  3. for every apply entry present in BOTH files (matched on kind/m/n/k)
     the deterministic flop model agrees exactly, and for every accuracy
     entry (matched on kind/rank/oversampling) the residual agrees
     within a tolerance (default 25%). The residuals are deterministic
     functions of the pinned seeds, so a drift means the operators
     changed shape — regressing wall-clock timing cannot flag on a
     noisy shared runner.

Usage: check_bench_sketch.py FRESH_JSON COMMITTED_JSON [--tolerance=0.25]
"""

import sys

import benchlib
from benchlib import fail

REQUIRED_TOP = [
    "bench",
    "schema_version",
    "smoke",
    "oversampling",
    "apply",
    "accuracy",
    "distributed",
    "claim_structured_beats_dense",
    "claim_accuracy_within_2x",
    "failures",
]
REQUIRED_APPLY = ["kind", "m", "n", "k", "sketch_dim", "seconds", "flops", "max_err"]
REQUIRED_ACCURACY = ["kind", "rank", "oversampling", "residual", "ratio_vs_dense"]
REQUIRED_DISTRIBUTED = ["kind", "ranks", "rows", "cols", "sketch_dim", "max_err"]

CLAIM_POINT = {"m": 4096, "n": 2048, "k": 64}


def load(path):
    doc = benchlib.load_record(
        path, "sketch", 1, REQUIRED_TOP,
        {
            "apply": REQUIRED_APPLY,
            "accuracy": REQUIRED_ACCURACY,
            "distributed": REQUIRED_DISTRIBUTED,
        })
    if doc["failures"] != 0:
        fail(f"{path}: {doc['failures']} correctness failures recorded")
    return doc


def apply_key(e):
    return (e["kind"], e["m"], e["n"], e["k"])


def accuracy_key(e):
    return (e["kind"], e["rank"], e["oversampling"])


def main(argv):
    fresh_path, committed_path, opts = benchlib.parse_gate_args(
        argv, __doc__, {"tolerance": (float, 0.25)})
    tolerance = opts["tolerance"]
    fresh = load(fresh_path)
    committed = load(committed_path)

    speed = committed["claim_structured_beats_dense"]
    if not speed.get("holds"):
        fail("committed trajectory: claim_structured_beats_dense does not hold")
    for axis, want in CLAIM_POINT.items():
        if speed.get(axis) != want:
            fail(
                f"committed trajectory: speed claim measured at "
                f"{axis}={speed.get(axis)}, acceptance point is {axis}={want}"
            )
    if speed.get("sparse_speedup", 0) <= 1 or speed.get("srht_speedup", 0) <= 1:
        fail("committed trajectory: structured speedups must exceed 1x")
    acc = committed["claim_accuracy_within_2x"]
    if not acc.get("holds"):
        fail("committed trajectory: claim_accuracy_within_2x does not hold")
    if acc.get("oversampling_min", 0) < 10:
        fail("committed trajectory: accuracy claim below oversampling 10")
    if acc.get("max_ratio_vs_dense", 99.0) > 2.0:
        fail(
            "committed trajectory: structured residual "
            f"{acc.get('max_ratio_vs_dense'):.3f}x dense exceeds the 2x bar"
        )

    compared = 0
    for key, e, ref in benchlib.match_entries(
            fresh["apply"], committed["apply"], apply_key):
        # The flop model is an exact function of (kind, shape): any drift
        # means an operator changed its arithmetic.
        benchlib.gate_exact(key, "flop model", e["flops"], ref["flops"])
        compared += 1
    for key, e, ref in benchlib.match_entries(
            fresh["accuracy"], committed["accuracy"], accuracy_key):
        benchlib.gate_within(key, "residual", e["residual"], ref["residual"],
                             tolerance, what="drifted")
        compared += 1
    benchlib.require_compared(compared)

    print(
        f"OK: {compared} entries within {tolerance * 100:.0f}%, claims hold "
        f"(sparse {speed['sparse_speedup']:.2f}x, srht "
        f"{speed['srht_speedup']:.2f}x vs dense at 4096x2048; structured "
        f"residual <= {acc['max_ratio_vs_dense']:.2f}x dense)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
