#!/usr/bin/env python3
"""CI gate for the obs tracing-overhead benchmark.

Validates a freshly produced BENCH_obs.json (usually a --smoke run)
against the committed full-size artifact:

  1. both files parse and carry the schema_version-1 keys;
  2. the committed artifact's acceptance claims hold: armed overhead
     below the 2% target on the full-size (non-smoke) run, every rank
     row covering >= 95% of the traced wall time, bit-identical
     singular values with tracing on/off, and a non-empty trace;
  3. the fresh run's deterministic invariants hold (bit-identical
     results, >= 95% coverage, spans recorded). Its overhead is
     reported but NOT gated: a smoke run lasts a few milliseconds, so
     fixed arming costs dominate and shared-runner wall-clock noise
     would make the gate flaky — the timing claim lives in the
     committed artifact, which comes from the amortized full sweep;
  4. with --trace=FILE, the flushed trace artifact is checked for
     Perfetto-loadability: well-formed traceEvents, complete events
     with sane timestamps, and process_name metadata for every rank.

Usage: check_bench_obs.py FRESH_JSON COMMITTED_JSON [--trace=TRACE.json]
"""

import json
import sys

import benchlib
from benchlib import fail

REQUIRED = [
    "bench",
    "schema_version",
    "smoke",
    "ranks",
    "disabled_seconds",
    "armed_seconds",
    "overhead_pct",
    "trace_events",
    "trace_dropped",
    "coverage_min_pct",
    "results_bit_identical",
]

COMMITTED_OVERHEAD_PCT = 2.0
COVERAGE_FLOOR_PCT = 95.0


def load(path):
    return benchlib.load_record(path, "obs", 1, REQUIRED)


def check_invariants(path, doc):
    """Load-insensitive invariants every run must satisfy."""
    if not doc["results_bit_identical"]:
        fail(f"{path}: singular values differ between disabled and armed")
    if doc["trace_events"] <= 0:
        fail(f"{path}: armed run recorded no spans")
    if doc["coverage_min_pct"] < COVERAGE_FLOOR_PCT:
        fail(
            f"{path}: min rank coverage {doc['coverage_min_pct']:.2f}% "
            f"below the {COVERAGE_FLOOR_PCT:.0f}% floor"
        )
    if doc["disabled_seconds"] <= 0 or doc["armed_seconds"] <= 0:
        fail(f"{path}: non-positive timings")


def check_trace(path, ranks):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing traceEvents array")
    named_pids = set()
    spans = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{path}: traceEvents[{i}] has unknown ph {ph!r}")
        if not isinstance(ev.get("name"), str):
            fail(f"{path}: traceEvents[{i}] missing a string name")
        if ph == "X":
            spans += 1
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{path}: traceEvents[{i}] has bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{path}: traceEvents[{i}] has bad dur {dur!r}")
        elif ph == "M" and ev.get("name") == "process_name":
            named_pids.add(ev.get("pid"))
    if spans == 0:
        fail(f"{path}: no complete ('X') events")
    missing = [r + 1 for r in range(ranks) if r + 1 not in named_pids]
    if missing:
        fail(f"{path}: no process_name metadata for rank pids {missing}")
    return spans


def main(argv):
    fresh_path, committed_path, opts = benchlib.parse_gate_args(
        argv, __doc__, {"trace": (str, None)})
    fresh = load(fresh_path)
    committed = load(committed_path)

    if committed["smoke"]:
        fail("committed artifact: must come from the full-size sweep, not --smoke")
    check_invariants(committed_path, committed)
    if committed["overhead_pct"] >= COMMITTED_OVERHEAD_PCT:
        fail(
            f"committed artifact: armed overhead {committed['overhead_pct']:.2f}% "
            f"exceeds the {COMMITTED_OVERHEAD_PCT:.0f}% acceptance target"
        )

    check_invariants(fresh_path, fresh)

    trace_note = ""
    if opts["trace"] is not None:
        spans = check_trace(opts["trace"], fresh["ranks"])
        trace_note = f", trace artifact valid ({spans} spans)"

    print(
        f"OK: committed overhead {committed['overhead_pct']:+.2f}% "
        f"(coverage {committed['coverage_min_pct']:.1f}%), fresh run "
        f"bit-identical at {fresh['coverage_min_pct']:.1f}% coverage "
        f"(overhead {fresh['overhead_pct']:+.2f}%, informational)"
        f"{trace_note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
