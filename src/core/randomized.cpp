#include "core/randomized.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "sketch/sketch.hpp"

namespace parsvd {

Matrix randomized_range_finder(const Matrix& a, const RandomizedOptions& opts,
                               Rng& rng) {
  PARSVD_REQUIRE(!a.empty(), "range finder of an empty matrix");
  PARSVD_REQUIRE(opts.rank > 0, "randomized rank must be positive");
  const Index m = a.rows();
  const Index n = a.cols();
  const Index sk = std::min(opts.rank + opts.oversampling, std::min(m, n));

  // One value off the caller's stream seeds the operator through the
  // documented split — the stream still advances per draw (fresh Ω per
  // call), and the operator's own randomness is per-global-row so the
  // same seed realizes the same Ω on every rank.
  const sketch::SketchKind kind =
      sketch::resolve_auto(opts.sketch_kind, m, n, sk);
  const auto op = sketch::make_sketch(
      kind, n, sk, sketch::derive_operator_seed(rng.next_u64(), kind, 0));
  Matrix y;
  op->apply_right(a, y);
  orthonormalize_mgs2(y);

  // Y ← orth(A (Aᵀ Y)); the inner orthonormalization keeps the power
  // iterates from collapsing onto the top singular direction. Z and Y
  // are allocated once and written in place by the kernels each pass.
  if (opts.power_iterations > 0) {
    Matrix z(n, sk);
    for (int it = 0; it < opts.power_iterations; ++it) {
      gemm(Trans::Yes, Trans::No, 1.0, a, y, 0.0, z);
      orthonormalize_mgs2(z);
      gemm(Trans::No, Trans::No, 1.0, a, z, 0.0, y);
      orthonormalize_mgs2(y);
    }
  }
  return y;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts,
                         Rng& rng) {
  const Matrix q = randomized_range_finder(a, opts, rng);
  // B = Qᵀ A is (r + p) x n — small enough for a dense SVD.
  const Matrix b = matmul(q, a, Trans::Yes, Trans::No);
  SvdOptions inner;
  inner.method = opts.inner_method;
  SvdResult f = svd(b, inner);
  f.u = matmul(q, f.u);

  const Index keep = std::min(opts.rank, f.s.size());
  f.u = f.u.left_cols(keep);
  f.v = f.v.left_cols(keep);
  f.s = f.s.head(keep);
  return f;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts) {
  Rng rng(opts.seed);
  return randomized_svd(a, opts, rng);
}

}  // namespace parsvd
