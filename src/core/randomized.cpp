#include "core/randomized.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "sketch/sketch.hpp"

namespace parsvd {

namespace {

Index sketch_width(const Matrix& a, const RandomizedOptions& opts) {
  return std::min(opts.rank + opts.oversampling, std::min(a.rows(), a.cols()));
}

/// fp32 range-finder core shared by the Single and Mixed regimes: the
/// sketch apply and every power-iteration GEMM run on float buffers
/// through the packed fp32 engine. The fp32 copy of A is returned too so
/// the Single path can project without re-converting.
struct RangeF32 {
  MatrixF af;
  MatrixF q;
};

RangeF32 range_finder_f32(const Matrix& a, const RandomizedOptions& opts,
                          Rng& rng) {
  const Index sk = sketch_width(a, opts);
  const sketch::SketchKind kind =
      sketch::resolve_auto(opts.sketch_kind, a.rows(), a.cols(), sk);
  const auto op = sketch::make_sketch(
      kind, a.cols(), sk, sketch::derive_operator_seed(rng.next_u64(), kind, 0));

  // Orthonormalizations here are CholeskyQR2, not MGS2: at range-finder
  // shapes (tall, sketch-width columns) MGS2's dot/axpy sweeps are
  // memory-bound and eat as much wall time as the GEMMs they sit
  // between, which would wash out the fp32 savings end-to-end. CholQR2
  // is all level-3 and falls back to MGS2 on breakdown (qr.hpp).
  RangeF32 r;
  r.af = to_single(a);
  op->apply_right_f32(r.af, r.q);
  orthonormalize_cholqr2_f32(r.q);

  if (opts.power_iterations > 0) {
    MatrixF z(a.cols(), sk);
    for (int it = 0; it < opts.power_iterations; ++it) {
      gemm_f32(Trans::Yes, Trans::No, 1.0f, r.af, r.q, 0.0f, z);
      orthonormalize_cholqr2_f32(z);
      gemm_f32(Trans::No, Trans::No, 1.0f, r.af, z, 0.0f, r.q);
      orthonormalize_cholqr2_f32(r.q);
    }
  }
  return r;
}

}  // namespace

Matrix randomized_range_finder(const Matrix& a, const RandomizedOptions& opts,
                               Rng& rng) {
  PARSVD_REQUIRE(!a.empty(), "range finder of an empty matrix");
  PARSVD_REQUIRE(opts.rank > 0, "randomized rank must be positive");

  if (opts.precision != Precision::Double) {
    // The refinement pass (DESIGN §12): Mixed trades the LAST fp32 power
    // iteration for an fp64 one. The fp32 sketch + early iterations buy
    // the throughput; the final fp64 power step contracts the fp32
    // subspace noise by the spectral gap ratio (twice — once per half
    // step) with no fp32 rounding floor, and the fp64
    // re-orthogonalizations hand the downstream fp64 Rayleigh-Ritz
    // projection an orthonormal basis. Net: singular values track the
    // all-fp64 path quadratically in the contracted angle, at ~2/3 of
    // its GEMM cost. With power_iterations == 0 there is no iteration to
    // trade; Mixed then degrades to sketch-in-fp32 + fp64 re-orth, which
    // keeps the same algorithm shape as Double (no extra iteration that
    // would change what is being computed).
    const bool refine_iter =
        opts.precision == Precision::Mixed && opts.power_iterations > 0;
    RandomizedOptions inner = opts;
    if (refine_iter) inner.power_iterations = opts.power_iterations - 1;
    RangeF32 r = range_finder_f32(a, inner, rng);
    Matrix y = to_double(r.q);
    if (opts.precision == Precision::Mixed) {
      orthonormalize_cholqr2(y);
      if (refine_iter) {
        Matrix z(a.cols(), sketch_width(a, opts));
        gemm(Trans::Yes, Trans::No, 1.0, a, y, 0.0, z);
        orthonormalize_cholqr2(z);
        gemm(Trans::No, Trans::No, 1.0, a, z, 0.0, y);
        orthonormalize_cholqr2(y);
      }
    }
    return y;
  }

  const Index m = a.rows();
  const Index n = a.cols();
  const Index sk = sketch_width(a, opts);

  // One value off the caller's stream seeds the operator through the
  // documented split — the stream still advances per draw (fresh Ω per
  // call), and the operator's own randomness is per-global-row so the
  // same seed realizes the same Ω on every rank.
  const sketch::SketchKind kind =
      sketch::resolve_auto(opts.sketch_kind, m, n, sk);
  const auto op = sketch::make_sketch(
      kind, n, sk, sketch::derive_operator_seed(rng.next_u64(), kind, 0));
  Matrix y;
  op->apply_right(a, y);
  orthonormalize_mgs2(y);

  // Y ← orth(A (Aᵀ Y)); the inner orthonormalization keeps the power
  // iterates from collapsing onto the top singular direction. Z and Y
  // are allocated once and written in place by the kernels each pass.
  if (opts.power_iterations > 0) {
    Matrix z(n, sk);
    for (int it = 0; it < opts.power_iterations; ++it) {
      gemm(Trans::Yes, Trans::No, 1.0, a, y, 0.0, z);
      orthonormalize_mgs2(z);
      gemm(Trans::No, Trans::No, 1.0, a, z, 0.0, y);
      orthonormalize_mgs2(y);
    }
  }
  return y;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts,
                         Rng& rng) {
  SvdOptions inner;
  inner.method = opts.inner_method;
  SvdResult f;
  Matrix q;

  if (opts.precision == Precision::Single) {
    // Coarse fp32-throughout path: the projection B = Qᵀ A also runs in
    // fp32, so singular values carry fp32-level error. Bench/ablation
    // regime — Mixed is the accuracy-preserving fast path.
    PARSVD_REQUIRE(!a.empty(), "randomized SVD of an empty matrix");
    PARSVD_REQUIRE(opts.rank > 0, "randomized rank must be positive");
    RangeF32 r = range_finder_f32(a, opts, rng);
    const Matrix b = to_double(matmul_f32(r.q, r.af, Trans::Yes, Trans::No));
    f = svd(b, inner);
    f.u = matmul(to_double(r.q), f.u);
  } else {
    // Double and Mixed share the fp64 Rayleigh-Ritz projection; they
    // differ only inside randomized_range_finder (Mixed runs the sketch
    // and all but the last power iteration in fp32, then finishes in
    // fp64 — see the refinement note there).
    q = randomized_range_finder(a, opts, rng);
    // B = Qᵀ A is (r + p) x n — small enough for a dense SVD.
    const Matrix b = matmul(q, a, Trans::Yes, Trans::No);
    f = svd(b, inner);
    f.u = matmul(q, f.u);
  }

  const Index keep = std::min(opts.rank, f.s.size());
  f.u = f.u.left_cols(keep);
  f.v = f.v.left_cols(keep);
  f.s = f.s.head(keep);
  return f;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts) {
  Rng rng(opts.seed);
  return randomized_svd(a, opts, rng);
}

}  // namespace parsvd
