#include "core/randomized.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace parsvd {

Matrix randomized_range_finder(const Matrix& a, const RandomizedOptions& opts,
                               Rng& rng) {
  PARSVD_REQUIRE(!a.empty(), "range finder of an empty matrix");
  PARSVD_REQUIRE(opts.rank > 0, "randomized rank must be positive");
  const Index m = a.rows();
  const Index n = a.cols();
  const Index sketch = std::min(opts.rank + opts.oversampling, std::min(m, n));

  Matrix omega = Matrix::gaussian(n, sketch, rng);
  Matrix y = matmul(a, omega);
  orthonormalize_mgs2(y);

  for (int it = 0; it < opts.power_iterations; ++it) {
    // Y ← orth(A (Aᵀ Y)); the inner orthonormalization keeps the power
    // iterates from collapsing onto the top singular direction.
    Matrix z = matmul(a, y, Trans::Yes, Trans::No);
    orthonormalize_mgs2(z);
    y = matmul(a, z);
    orthonormalize_mgs2(y);
  }
  return y;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts,
                         Rng& rng) {
  const Matrix q = randomized_range_finder(a, opts, rng);
  // B = Qᵀ A is (r + p) x n — small enough for a dense SVD.
  const Matrix b = matmul(q, a, Trans::Yes, Trans::No);
  SvdOptions inner;
  inner.method = opts.inner_method;
  SvdResult f = svd(b, inner);
  f.u = matmul(q, f.u);

  const Index keep = std::min(opts.rank, f.s.size());
  f.u = f.u.left_cols(keep);
  f.v = f.v.left_cols(keep);
  f.s = f.s.head(keep);
  return f;
}

SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts) {
  Rng rng(opts.seed);
  return randomized_svd(a, opts, rng);
}

}  // namespace parsvd
