#include "core/options.hpp"

#include "support/error.hpp"

namespace parsvd {

void StreamingOptions::validate() const {
  PARSVD_REQUIRE(num_modes > 0, "num_modes must be positive");
  PARSVD_REQUIRE(forget_factor > 0.0 && forget_factor <= 1.0,
                 "forget_factor must lie in (0, 1]");
  for (Index i = 0; i < row_weights.size(); ++i) {
    PARSVD_REQUIRE(row_weights[i] > 0.0, "row weights must be positive");
  }
  if (low_rank) {
    PARSVD_REQUIRE(randomized.rank > 0, "randomized rank must be positive");
    PARSVD_REQUIRE(randomized.oversampling >= 0, "oversampling must be >= 0");
    PARSVD_REQUIRE(randomized.power_iterations >= 0,
                   "power_iterations must be >= 0");
  }
}

void ApmosOptions::validate() const {
  PARSVD_REQUIRE(r1 > 0, "r1 must be positive");
  PARSVD_REQUIRE(r2 > 0, "r2 must be positive");
  if (low_rank) {
    PARSVD_REQUIRE(randomized.rank > 0, "randomized rank must be positive");
    PARSVD_REQUIRE(randomized.oversampling >= 0, "oversampling must be >= 0");
    PARSVD_REQUIRE(randomized.power_iterations >= 0,
                   "power_iterations must be >= 0");
  }
}

}  // namespace parsvd
