#include "core/options.hpp"

#include "support/error.hpp"

namespace parsvd {

std::vector<double> FaultReport::to_doubles() const {
  std::vector<double> flat;
  flat.reserve(7 + dead_ranks.size());
  flat.push_back(degraded ? 1.0 : 0.0);
  flat.push_back(static_cast<double>(dead_ranks.size()));
  for (int r : dead_ranks) flat.push_back(static_cast<double>(r));
  flat.push_back(static_cast<double>(surviving_rows));
  flat.push_back(static_cast<double>(lost_rows));
  flat.push_back(extent_known ? 1.0 : 0.0);
  flat.push_back(coverage);
  flat.push_back(accuracy_bound);
  return flat;
}

FaultReport FaultReport::from_doubles(const std::vector<double>& flat) {
  PARSVD_REQUIRE(flat.size() >= 7, "FaultReport: truncated encoding");
  FaultReport out;
  std::size_t i = 0;
  out.degraded = flat[i++] != 0.0;
  const auto ndead = static_cast<std::size_t>(flat[i++]);
  PARSVD_REQUIRE(flat.size() == 7 + ndead, "FaultReport: length mismatch");
  out.dead_ranks.reserve(ndead);
  for (std::size_t k = 0; k < ndead; ++k) {
    out.dead_ranks.push_back(static_cast<int>(flat[i++]));
  }
  out.surviving_rows = static_cast<Index>(flat[i++]);
  out.lost_rows = static_cast<Index>(flat[i++]);
  out.extent_known = flat[i++] != 0.0;
  out.coverage = flat[i++];
  out.accuracy_bound = flat[i++];
  return out;
}

void StreamingOptions::validate() const {
  PARSVD_REQUIRE(num_modes > 0, "num_modes must be positive");
  PARSVD_REQUIRE(forget_factor > 0.0 && forget_factor <= 1.0,
                 "forget_factor must lie in (0, 1]");
  for (Index i = 0; i < row_weights.size(); ++i) {
    PARSVD_REQUIRE(row_weights[i] > 0.0, "row weights must be positive");
  }
  if (low_rank) {
    PARSVD_REQUIRE(randomized.rank > 0, "randomized rank must be positive");
    PARSVD_REQUIRE(randomized.oversampling >= 0, "oversampling must be >= 0");
    PARSVD_REQUIRE(randomized.power_iterations >= 0,
                   "power_iterations must be >= 0");
  }
}

void ApmosOptions::validate() const {
  PARSVD_REQUIRE(r1 > 0, "r1 must be positive");
  PARSVD_REQUIRE(r2 > 0, "r2 must be positive");
  if (low_rank) {
    PARSVD_REQUIRE(randomized.rank > 0, "randomized rank must be positive");
    PARSVD_REQUIRE(randomized.oversampling >= 0, "oversampling must be >= 0");
    PARSVD_REQUIRE(randomized.power_iterations >= 0,
                   "power_iterations must be >= 0");
  }
}

}  // namespace parsvd
