// Distributed tall-skinny QR (TSQR).
//
// The streaming update (Algorithm 1, step 1) needs the QR of a tall
// matrix whose rows are partitioned across ranks.  Two variants:
//
//   Direct (Benson, Gleich & Demmel 2013; the one PyParSVD implements in
//   Listing 4): every rank computes a local thin QR, the R factors are
//   gathered and stacked at rank 0, one QR of the (Σkᵢ x n) stack yields
//   the global R, and rank 0 scatters the matching row-slices of the
//   stack's Q back so each rank forms Q_localᵢ = Qᵢ · sliceᵢ.
//
//   Tree: R factors combine pairwise up a binary reduction tree and the
//   per-pair Q blocks are unwound down the same tree.  Message sizes stay
//   O(n²) regardless of rank count, at the price of log₂(p) rounds —
//   the classic trade against the direct variant's O(p·n²) root hotspot.
//
// Both use the deterministic positive-diagonal sign convention from
// qr_thin, which replaces the sign-negation "trick for consistency" in
// the PyParSVD listing (see DESIGN.md §4).
#pragma once

#include <vector>

#include "core/options.hpp"
#include "linalg/matrix.hpp"
#include "pmpi/comm.hpp"

namespace parsvd {

struct TsqrResult {
  /// Local slice of the global Q: rows match this rank's a_local rows,
  /// columns = min(Σ min(Mᵢ, n), n).
  Matrix q_local;
  /// Global R factor, identical on every rank.
  Matrix r;
  /// Ranks whose R factor was lost to a failure (fault-tolerant mode
  /// only; always empty otherwise). Their rows are absent from R.
  std::vector<int> excluded_ranks;
};

/// Distributed thin QR of the implicitly row-stacked matrix
/// A = [a_local⁰; a_local¹; ...]. Collective: every rank must call with
/// the same column count and variant.
///
/// With `fault_tolerant` set the gather/broadcast legs use the
/// ft-collectives: ranks that die mid-call are excluded and the
/// factorization completes on the survivors' rows (excluded_ranks lists
/// the casualties). Only the Direct variant supports exclusion — Tree
/// falls back to Direct in fault-tolerant mode. Rank 0's death remains
/// unrecoverable (it owns the stacked factorization).
TsqrResult tsqr(pmpi::Communicator& comm, const Matrix& a_local,
                TsqrVariant variant = TsqrVariant::Direct,
                bool fault_tolerant = false);

}  // namespace parsvd
