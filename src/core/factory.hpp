// Factory entry point mirroring the paper's factory design pattern (§4):
// one call site that yields either the serial or the distributed
// implementation behind the shared SvdBase interface.
#pragma once

#include <memory>

#include "core/parallel_streaming.hpp"
#include "core/streaming.hpp"

namespace parsvd {

/// Serial streaming SVD.
std::unique_ptr<SvdBase> make_streaming_svd(const StreamingOptions& opts);

/// Distributed streaming SVD over `comm` (must outlive the object).
std::unique_ptr<SvdBase> make_streaming_svd(
    const StreamingOptions& opts, pmpi::Communicator& comm,
    TsqrVariant tsqr_variant = TsqrVariant::Direct);

}  // namespace parsvd
