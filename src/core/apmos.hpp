// Approximate Partitioned Method Of Snapshots (APMOS) distributed SVD —
// Algorithm 2 of the paper (after Wang, McBee & Iliescu 2016).
//
// Each rank holds a row-block A^i (its grid points x N snapshots):
//   1. local SVD → right singular vectors V^i and values Σ^i;
//   2. truncate to r1 columns, form W^i = Ṽ^i diag(Σ̃^i);
//   3. gather W = [W^1 ... W^p] at rank 0 (N x p·r1);
//   4. SVD of W at rank 0 (optionally randomized, §3.3);
//   5. truncate to r2 modes, broadcast (X̃, Λ̃);
//   6. local global-mode slices Ũ^i_j = A^i X̃_j / Λ̃_j.
//
// r1 trades gather volume against fidelity of each rank's contribution;
// r2 trades broadcast volume against the number of recovered modes — the
// abl_truncation_sweep bench quantifies both.
#pragma once

#include "core/options.hpp"
#include "linalg/matrix.hpp"
#include "pmpi/comm.hpp"
#include "support/rng.hpp"

namespace parsvd {

struct ApmosResult {
  /// This rank's rows of the leading global left singular vectors
  /// (local_rows x k, k = min(r2, available spectrum)).
  Matrix u_local;
  /// Approximate global singular values (k), identical on every rank.
  Vector s;
  /// Loss metadata when opts.fault_tolerant was set and ranks died
  /// mid-call; default-clean otherwise. One-shot APMOS never hears from
  /// a rank that dies before its gather post, so a degraded report
  /// carries the vacuous worst-case bound (extent_known = false); the
  /// streaming driver, which records extents up front, sharpens it.
  FaultReport report;
};

/// Distributed SVD of the implicitly row-stacked matrix
/// A = [a_local⁰; a_local¹; ...]. Collective over `comm`; every rank
/// passes the same snapshot count (columns) and options.
/// `rng` is consulted only at rank 0 and only when opts.low_rank is set.
ApmosResult apmos_svd(pmpi::Communicator& comm, const Matrix& a_local,
                      const ApmosOptions& opts, Rng* rng = nullptr);

/// Stage 1-2 helper, exposed for tests: leading right singular vectors
/// (n x k) and singular values (k), k = min(r1, min(m, n)).
/// Mirrors PyParSVD's generate_right_vectors.
std::pair<Matrix, Vector> generate_right_vectors(
    const Matrix& a, Index r1, SvdMethod method,
    EighMethod eigh_method = EighMethod::Jacobi);

}  // namespace parsvd
