#include "core/incremental_brand.hpp"

#include <algorithm>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace parsvd {
namespace {

/// Updates between explicit re-orthonormalizations of U. Brand's update
/// keeps U orthonormal only in exact arithmetic; round-off drift
/// accumulates at ~eps per step, so a periodic cleanup (a k x k QR fold,
/// cost O(m k²)) keeps long streams healthy.
constexpr Index kReorthInterval = 32;

}  // namespace

IncrementalSVD::IncrementalSVD(StreamingOptions opts, bool track_right_vectors)
    : SvdBase(std::move(opts)),
      track_v_(track_right_vectors),
      rng_(opts_.randomized.seed) {}

SvdResult IncrementalSVD::inner_svd(const Matrix& a, Index rank) {
  if (opts_.low_rank) {
    RandomizedOptions ropts = opts_.randomized;
    ropts.rank = std::min(rank, std::min(a.rows(), a.cols()));
    return randomized_svd(a, ropts, rng_);
  }
  SvdOptions sopts;
  sopts.method = opts_.method;
  sopts.rank = std::min(rank, std::min(a.rows(), a.cols()));
  return svd(a, sopts);
}

void IncrementalSVD::initialize(const Matrix& batch) {
  PARSVD_REQUIRE(!initialized_, "initialize() called twice");
  PARSVD_REQUIRE(!batch.empty(), "empty initial batch");
  num_rows_ = batch.rows();

  const Matrix scaled = apply_row_weights(batch);
  QrResult qr = qr_thin(scaled);
  const Index keep =
      std::min(opts_.num_modes, std::min(batch.rows(), batch.cols()));
  SvdResult f = inner_svd(qr.r, keep);
  modes_ = matmul(qr.q, f.u.left_cols(keep));
  singular_values_ = f.s.head(keep);
  if (track_v_) {
    v_ = f.v.left_cols(keep);
  }
  snapshots_seen_ = batch.cols();
  initialized_ = true;
}

void IncrementalSVD::incorporate_data(const Matrix& batch) {
  require_initialized();
  PARSVD_REQUIRE(batch.rows() == num_rows_,
                 "batch row count differs from the initialized problem");
  PARSVD_REQUIRE(batch.cols() > 0, "empty streaming batch");
  ++iteration_;
  snapshots_seen_ += batch.cols();

  const Matrix c = apply_row_weights(batch);
  const Index k = modes_.cols();
  const Index b = c.cols();

  // Project the new columns onto the current basis and split off the
  // out-of-subspace residual. A naive QR of the residual breaks when a
  // batch lies (numerically) inside span(U): QR of a ~zero matrix
  // returns arbitrary directions that are NOT orthogonal to U, silently
  // double-counting energy. Instead: project twice (classical
  // Gram-Schmidt-squared, folding the correction back into L) and
  // orthonormalize the residual with a drop threshold — in-span
  // directions come back as zero columns, which are harmless.
  Matrix l = matmul(modes_, c, Trans::Yes, Trans::No);  // k x b
  Matrix h = c;
  gemm(Trans::No, Trans::No, -1.0, modes_, l, 1.0, h);  // C - U L
  const Matrix l2 = matmul(modes_, h, Trans::Yes, Trans::No);
  gemm(Trans::No, Trans::No, -1.0, modes_, l2, 1.0, h);
  l += l2;

  Matrix j_basis = h;                  // m x b, zero columns where in-span
  orthonormalize_mgs2(j_basis);
  const Matrix r_h = matmul(j_basis, h, Trans::Yes, Trans::No);  // b x b

  // Augmented core: [ ff·diag(S)  L ; 0  R_H ].
  const Index b2 = j_basis.cols();
  Matrix core(k + b2, k + b, 0.0);
  for (Index i = 0; i < k; ++i) {
    core(i, i) = opts_.forget_factor * singular_values_[i];
  }
  core.set_block(0, k, l);
  core.set_block(k, k, r_h);

  const Index keep = std::min(opts_.num_modes, std::min(k + b2, k + b));
  SvdResult f = inner_svd(core, keep);

  // Rotate the enlarged basis [U J] onto the leading core directions.
  const Matrix basis = hcat(modes_, j_basis);  // m x (k + b2)
  modes_ = matmul(basis, f.u.left_cols(keep));
  singular_values_ = f.s.head(keep);

  if (track_v_) {
    // V_new = [ V 0 ; 0 I_b ] V_core — old snapshots rotate through the
    // top k rows of V_core, the new batch enters through the bottom b.
    const Matrix v_top = f.v.block(0, 0, k, keep);
    const Matrix v_bottom = f.v.block(k, 0, b, keep);
    v_ = vcat(matmul(v_, v_top), v_bottom);
  }

  // Periodic re-orthonormalization: fold the QR of U back into the
  // small factors so the factorization stays exact.
  if (iteration_ % kReorthInterval == 0) {
    QrResult uqr = qr_thin(modes_);
    Matrix rs = uqr.r;  // k x k
    for (Index j = 0; j < rs.cols(); ++j) {
      scal(singular_values_[j], rs.col_span(j));
    }
    SvdResult rf = inner_svd(rs, rs.cols());
    modes_ = matmul(uqr.q, rf.u);
    singular_values_ = rf.s;
    if (track_v_) v_ = matmul(v_, rf.v);
  }
}

const Matrix& IncrementalSVD::right_vectors() const {
  PARSVD_REQUIRE(track_v_, "right-vector tracking was not enabled");
  return v_;
}

Matrix IncrementalSVD::reconstruct_stream() const {
  PARSVD_REQUIRE(initialized_, "initialize() must be called first");
  PARSVD_REQUIRE(track_v_, "right-vector tracking was not enabled");
  Matrix us = modes_;
  for (Index j = 0; j < us.cols(); ++j) {
    scal(singular_values_[j], us.col_span(j));
  }
  return remove_row_weights(matmul(us, v_, Trans::No, Trans::Yes));
}

}  // namespace parsvd
