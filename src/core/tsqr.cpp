#include "core/tsqr.hpp"

#include <algorithm>
#include <optional>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "obs/trace.hpp"
#include "pmpi/request.hpp"
#include "pmpi/tags.hpp"
#include "pmpi/topology.hpp"
#include "support/log.hpp"

namespace parsvd {
namespace {

// Wire tags come from the pmpi registry: the tree variant owns the
// kTsqrUpBase/kTsqrDownBase bands (one tag per level); the direct
// variant reuses the down-sweep band for its Q-slice scatter.
using pmpi::tags::tsqr_down;
using pmpi::tags::tsqr_up;

TsqrResult tsqr_direct(pmpi::Communicator& comm, const Matrix& a_local) {
  PARSVD_TRACE_SCOPE("tsqr.direct");
  const int p = comm.size();

  // Stage 1: local thin QR with the deterministic sign convention.
  QrResult local = [&] {
    PARSVD_TRACE_SCOPE("tsqr.factor_panel");
    return qr_thin(a_local);
  }();
  if (p == 1) {
    return {std::move(local.q), std::move(local.r), {}};
  }

  // Stage 2: gather R factors at root and factor the stack.
  std::vector<Matrix> r_blocks = comm.gather_matrices(local.r, 0);

  Matrix r_final;
  if (comm.is_root()) {
    const Matrix stacked = vcat(r_blocks);
    QrResult root = qr_thin(stacked);
    r_final = std::move(root.r);

    // Stage 3: scatter row-slices of the stack's Q in rank order.
    Index offset = 0;
    Matrix my_slice;
    for (int dst = 0; dst < p; ++dst) {
      const Index nrows = r_blocks[static_cast<std::size_t>(dst)].rows();
      Matrix slice = root.q.block(offset, 0, nrows, root.q.cols());
      offset += nrows;
      if (dst == 0) {
        my_slice = std::move(slice);
      } else {
        comm.send_matrix(slice, dst, tsqr_down(0));
      }
    }
    comm.bcast_matrix(r_final, 0);
    return {matmul(local.q, my_slice), std::move(r_final), {}};
  }

  Matrix my_slice = comm.recv_matrix(0, tsqr_down(0));
  comm.bcast_matrix(r_final, 0);
  return {matmul(local.q, my_slice), std::move(r_final), {}};
}

// Fault-tolerant direct TSQR: dead ranks' R factors are excluded from
// the stack and the factorization completes on the survivors' rows.
TsqrResult tsqr_direct_ft(pmpi::Communicator& comm, const Matrix& a_local) {
  PARSVD_TRACE_SCOPE("tsqr.direct_ft");
  const int p = comm.size();

  QrResult local = [&] {
    PARSVD_TRACE_SCOPE("tsqr.factor_panel");
    return qr_thin(a_local);
  }();
  if (p == 1) {
    return {std::move(local.q), std::move(local.r), {}};
  }

  std::vector<std::optional<Matrix>> r_blocks =
      comm.gather_matrices_ft(local.r, 0);

  Matrix r_final;
  std::vector<double> excluded;  // rides bcast_doubles_ft as doubles
  Matrix my_slice;
  if (comm.is_root()) {
    std::vector<Matrix> surviving;
    surviving.reserve(r_blocks.size());
    for (int src = 0; src < p; ++src) {
      const auto& block = r_blocks[static_cast<std::size_t>(src)];
      if (block) {
        surviving.push_back(*block);
      } else {
        excluded.push_back(static_cast<double>(src));
      }
    }
    QrResult root = qr_thin(vcat(surviving));
    r_final = std::move(root.r);

    // Scatter row-slices of the stack's Q to the surviving ranks. A
    // rank dying after its gather contribution just leaves the posted
    // slice unconsumed in its mailbox.
    Index offset = 0;
    for (int dst = 0; dst < p; ++dst) {
      const auto& block = r_blocks[static_cast<std::size_t>(dst)];
      if (!block) continue;
      const Index nrows = block->rows();
      Matrix slice = root.q.block(offset, 0, nrows, root.q.cols());
      offset += nrows;
      if (dst == 0) {
        my_slice = std::move(slice);
      } else {
        comm.send_matrix(slice, dst, tsqr_down(0));
      }
    }
  } else {
    // Root-must-survive contract: rank 0 owns the stacked factorization
    // and always sends the slice to a rank it saw deliver its R block.
    // parsvd-lint: allow-ft-wait
    my_slice = comm.recv_matrix(0, tsqr_down(0));
  }
  comm.bcast_matrix_ft(r_final, 0);
  comm.bcast_doubles_ft(excluded, 0);

  TsqrResult out{matmul(local.q, my_slice), std::move(r_final), {}};
  out.excluded_ranks.reserve(excluded.size());
  for (double r : excluded) out.excluded_ranks.push_back(static_cast<int>(r));
  return out;
}

TsqrResult tsqr_tree(pmpi::Communicator& comm, const Matrix& a_local) {
  PARSVD_TRACE_SCOPE("tsqr.tree");
  const int p = comm.size();
  const int rank = comm.rank();

  if (p == 1) {
    QrResult local = qr_thin(a_local);
    return {std::move(local.q), std::move(local.r), {}};
  }

  // A rank's whole exchange schedule is a pure function of (rank, p) —
  // topology::tsqr_plan, shared with the static verifier: it is
  // "active" at level l while rank % 2^(l+1) == 0, receiving from
  // partner rank + 2^l, and ships its R upward at the level of its
  // lowest set bit. That makes every receive postable BEFORE the local
  // panel factorization, so partners' R factors (and eventually the
  // parent's down-sweep transform) arrive while this rank is busy in
  // qr_thin — the up-sweep pipelining this variant exists for.
  const pmpi::topology::TsqrPlan plan = pmpi::topology::tsqr_plan(rank, p);

  // parsvd-pipelined begin (pre-posted schedule overlaps qr_thin; a
  // blocking receive here would serialize the up-sweep again)
  std::vector<pmpi::Request> up_reqs;
  up_reqs.reserve(plan.recvs.size());
  for (const auto& step : plan.recvs) {
    up_reqs.push_back(comm.irecv(step.partner, tsqr_up(step.level)));
  }
  pmpi::Request t_req;
  if (rank != 0) {
    // The down-sweep transform from the parent is on a statically known
    // channel too; posting it now costs nothing and completes the
    // rank's whole receive schedule before any compute.
    t_req = comm.irecv(plan.parent, tsqr_down(plan.sent_level));
  }

  QrResult local = [&] {
    PARSVD_TRACE_SCOPE("tsqr.factor_panel");
    return qr_thin(a_local);
  }();
  // parsvd-pipelined end

  // Upward sweep: pairwise R combination, consuming the pre-posted
  // receives in level order.
  struct LevelRecord {
    Index rows_mine;     // rows contributed by our subtree's R
    Index rows_partner;  // rows contributed by the partner's R
    Matrix q_comb;       // (rows_mine + rows_partner) x k' combined Q
    int partner;
    int level;           // tree level (levels with no in-range partner skip)
  };
  std::vector<LevelRecord> records;
  records.reserve(plan.recvs.size());
  Matrix r_mine = local.r;
  {
    PARSVD_TRACE_SCOPE("tsqr.up_sweep");
    for (std::size_t i = 0; i < plan.recvs.size(); ++i) {
      up_reqs[i].wait();
      Matrix r_partner = up_reqs[i].take_matrix();
      const Index rows_mine = r_mine.rows();
      const Index rows_partner = r_partner.rows();
      QrResult combined = qr_thin(vcat(r_mine, r_partner));
      records.push_back(LevelRecord{rows_mine, rows_partner,
                                    std::move(combined.q),
                                    plan.recvs[i].partner,
                                    plan.recvs[i].level});
      r_mine = std::move(combined.r);
    }
    if (plan.sent_level >= 0) {
      comm.send_matrix(r_mine, plan.parent, tsqr_up(plan.sent_level));
    }
  }

  // Downward sweep: unwind accumulated transforms. The final R lives at
  // rank 0; each rank's transform T satisfies Q_slice = Q_local · T.
  Matrix r_final;
  Matrix t;
  {
    PARSVD_TRACE_SCOPE("tsqr.down_sweep");
    if (rank == 0) {
      r_final = r_mine;
      t = Matrix::identity(r_mine.rows());
    } else {
      // Our transform arrives from the partner we sent our R to.
      t_req.wait();
      t = t_req.take_matrix();
    }
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      const Matrix q_top =
          it->q_comb.block(0, 0, it->rows_mine, it->q_comb.cols());
      const Matrix q_bot = it->q_comb.block(it->rows_mine, 0, it->rows_partner,
                                            it->q_comb.cols());
      comm.send_matrix(matmul(q_bot, t), it->partner, tsqr_down(it->level));
      t = matmul(q_top, t);
    }
    comm.bcast_matrix(r_final, 0);
  }
  return {matmul(local.q, t), std::move(r_final), {}};
}

}  // namespace

TsqrResult tsqr(pmpi::Communicator& comm, const Matrix& a_local,
                TsqrVariant variant, bool fault_tolerant) {
  PARSVD_REQUIRE(!a_local.empty(), "tsqr of an empty local block");
  if (fault_tolerant) {
    if (variant == TsqrVariant::Tree) {
      log::debug("tsqr: Tree variant has no exclusion path; using Direct "
                 "for the fault-tolerant call");
    }
    return tsqr_direct_ft(comm, a_local);
  }
  switch (variant) {
    case TsqrVariant::Direct:
      return tsqr_direct(comm, a_local);
    case TsqrVariant::Tree:
      return tsqr_tree(comm, a_local);
  }
  throw ConfigError("unknown TSQR variant");
}

}  // namespace parsvd
