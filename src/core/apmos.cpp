#include "core/apmos.hpp"

#include <algorithm>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"

namespace parsvd {

std::pair<Matrix, Vector> generate_right_vectors(const Matrix& a, Index r1,
                                                 SvdMethod method,
                                                 EighMethod eigh_method) {
  PARSVD_REQUIRE(!a.empty(), "right vectors of an empty matrix");
  PARSVD_REQUIRE(r1 > 0, "r1 must be positive");
  SvdOptions opts;
  opts.method = method;
  opts.eigh_method = eigh_method;
  opts.rank = std::min(r1, std::min(a.rows(), a.cols()));
  const SvdResult f = svd(a, opts);
  return {f.v, f.s};
}

ApmosResult apmos_svd(pmpi::Communicator& comm, const Matrix& a_local,
                      const ApmosOptions& opts, Rng* rng) {
  opts.validate();
  PARSVD_REQUIRE(!a_local.empty(), "apmos of an empty local block");

  // Stages 1-2: local right vectors scaled by singular values.
  auto [vlocal, slocal] =
      generate_right_vectors(a_local, opts.r1, opts.method, opts.eigh_method);
  Matrix wlocal = vlocal;  // n x k1
  for (Index j = 0; j < wlocal.cols(); ++j) {
    scal(slocal[j], wlocal.col_span(j));
  }

  // Stage 3: gather W at rank 0 (column-wise concatenation).
  std::vector<Matrix> blocks = comm.gather_matrices(wlocal, 0);

  // Stages 4-5: root SVD of W, truncation to r2.
  Matrix x;
  Vector lambda;
  if (comm.is_root()) {
    const Matrix w = hcat(blocks);
    SvdResult f;
    if (opts.low_rank) {
      RandomizedOptions ropts = opts.randomized;
      ropts.rank = std::min<Index>(opts.r2, std::min(w.rows(), w.cols()));
      if (rng != nullptr) {
        f = randomized_svd(w, ropts, *rng);
      } else {
        f = randomized_svd(w, ropts);
      }
    } else {
      SvdOptions sopts;
      sopts.method = opts.method;
      sopts.eigh_method = opts.eigh_method;
      sopts.rank = std::min<Index>(opts.r2, std::min(w.rows(), w.cols()));
      f = svd(w, sopts);
    }
    // Deterministic mode orientation so distributed results are
    // comparable across rank counts and against serial references.
    fix_svd_signs(f.u, f.v);
    x = std::move(f.u);
    lambda = std::move(f.s);
  }
  comm.bcast_matrix(x, 0);
  {
    std::vector<double> lam(lambda.begin(), lambda.end());
    comm.bcast(lam, 0);
    lambda = Vector(static_cast<Index>(lam.size()));
    std::copy(lam.begin(), lam.end(), lambda.begin());
  }

  // Stage 6: lift the global right-space modes through the local block:
  // Ũ^i = A^i X̃ diag(1/Λ̃).
  ApmosResult out;
  out.u_local = matmul(a_local, x);
  out.s = lambda;
  const double cutoff = (lambda.size() > 0 ? lambda[0] : 0.0) * 1e-14;
  for (Index j = 0; j < out.u_local.cols(); ++j) {
    if (lambda[j] > cutoff && lambda[j] > 0.0) {
      scal(1.0 / lambda[j], out.u_local.col_span(j));
    } else {
      auto col = out.u_local.col_span(j);
      std::fill(col.begin(), col.end(), 0.0);
    }
  }
  return out;
}

}  // namespace parsvd
