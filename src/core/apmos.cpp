#include "core/apmos.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <span>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "obs/trace.hpp"
#include "pmpi/request.hpp"
#include "pmpi/tags.hpp"

namespace parsvd {

std::pair<Matrix, Vector> generate_right_vectors(const Matrix& a, Index r1,
                                                 SvdMethod method,
                                                 EighMethod eigh_method) {
  PARSVD_REQUIRE(!a.empty(), "right vectors of an empty matrix");
  PARSVD_REQUIRE(r1 > 0, "r1 must be positive");
  SvdOptions opts;
  opts.method = method;
  opts.eigh_method = eigh_method;
  opts.rank = std::min(r1, std::min(a.rows(), a.cols()));
  const SvdResult f = svd(a, opts);
  return {f.v, f.s};
}

ApmosResult apmos_svd(pmpi::Communicator& comm, const Matrix& a_local,
                      const ApmosOptions& opts, Rng* rng) {
  opts.validate();
  PARSVD_REQUIRE(!a_local.empty(), "apmos of an empty local block");
  PARSVD_TRACE_SCOPE("apmos.svd");

  // The Stage-3 receive schedule is static — root takes one W block
  // from every other rank — so root posts the whole gather BEFORE its
  // own Stage-1/2 factorization: the other ranks' blocks land while
  // root is busy in its local SVD.
  // parsvd-pipelined begin (Stage-3 irecvs overlap the Stage-1/2 local
  // factorization; a blocking receive here would serialize the gather)
  std::vector<pmpi::Request> w_reqs;
  if (!opts.fault_tolerant && comm.is_root() && comm.size() > 1) {
    w_reqs.reserve(static_cast<std::size_t>(comm.size() - 1));
    for (int src = 1; src < comm.size(); ++src) {
      w_reqs.push_back(comm.irecv(src, pmpi::tags::apmos_w()));
    }
  }

  // Stages 1-2: local right vectors scaled by singular values.
  Matrix wlocal;  // n x k1
  {
    PARSVD_TRACE_SCOPE("apmos.stage12.local_svd");
    auto [vlocal, slocal] =
        generate_right_vectors(a_local, opts.r1, opts.method, opts.eigh_method);
    wlocal = std::move(vlocal);
    for (Index j = 0; j < wlocal.cols(); ++j) {
      scal(slocal[j], wlocal.col_span(j));
    }
  }
  // parsvd-pipelined end

  // Root SVD of the assembled W with truncation to r2 (stages 4-5).
  const auto root_svd = [&](const Matrix& w) {
    PARSVD_TRACE_SCOPE("apmos.stage45.root_svd");
    SvdResult f;
    if (opts.low_rank) {
      RandomizedOptions ropts = opts.randomized;
      ropts.rank = std::min<Index>(opts.r2, std::min(w.rows(), w.cols()));
      if (rng != nullptr) {
        f = randomized_svd(w, ropts, *rng);
      } else {
        f = randomized_svd(w, ropts);
      }
    } else {
      SvdOptions sopts;
      sopts.method = opts.method;
      sopts.eigh_method = opts.eigh_method;
      sopts.rank = std::min<Index>(opts.r2, std::min(w.rows(), w.cols()));
      f = svd(w, sopts);
    }
    // Deterministic mode orientation so distributed results are
    // comparable across rank counts and against serial references.
    fix_svd_signs(f.u, f.v);
    return f;
  };

  Matrix x;
  Vector lambda;
  FaultReport report;
  if (opts.fault_tolerant) {
    // Stage 3, degraded-capable: one atomic payload per rank —
    // [rows, ‖A^i‖_F²] header + packed W^i — so a contribution that
    // arrives always carries its own metadata.
    const double frob = a_local.norm_fro();
    const double meta[2] = {static_cast<double>(a_local.rows()), frob * frob};
    std::vector<std::byte> payload(sizeof(meta));
    std::memcpy(payload.data(), meta, sizeof(meta));
    pmpi::pack_matrix_into(wlocal, payload);
    const auto raw = comm.gather_bytes_ft(std::move(payload), 0);

    if (comm.is_root()) {
      std::vector<Matrix> blocks;
      blocks.reserve(raw.size());
      for (int src = 0; src < comm.size(); ++src) {
        const auto& c = raw[static_cast<std::size_t>(src)];
        if (!c) {
          report.dead_ranks.push_back(src);
          continue;
        }
        PARSVD_REQUIRE(c->size() > sizeof(meta), "apmos: short ft payload");
        double hdr[2];
        std::memcpy(hdr, c->data(), sizeof(hdr));
        report.surviving_rows += static_cast<Index>(hdr[0]);
        blocks.push_back(pmpi::unpack_matrix(
            std::span<const std::byte>(*c).subspan(sizeof(meta))));
      }
      report.degraded = !report.dead_ranks.empty();
      // A rank that died before its gather post never reported its
      // extent or energy, so the lost mass is unknowable here and the
      // Weyl-type bound degrades to the vacuous worst case.
      report.extent_known = !report.degraded;
      report.coverage = report.degraded ? 0.0 : 1.0;
      report.accuracy_bound = report.degraded ? 1.0 : 0.0;

      SvdResult f = root_svd(hcat(blocks));
      x = std::move(f.u);
      lambda = std::move(f.s);
    }
    comm.bcast_matrix_ft(x, 0);
    {
      std::vector<double> lam(lambda.begin(), lambda.end());
      comm.bcast_doubles_ft(lam, 0);
      lambda = Vector(static_cast<Index>(lam.size()));
      std::copy(lam.begin(), lam.end(), lambda.begin());
    }
    std::vector<double> flat = report.to_doubles();
    comm.bcast_doubles_ft(flat, 0);
    report = FaultReport::from_doubles(flat);
  } else {
    // Stage 3: gather W at rank 0 (column-wise concatenation). Root
    // consumes the receives it posted before Stage 1 in completion
    // order; non-roots ship their block as a buffered isend and move
    // straight on to the result broadcast.
    if (comm.is_root()) {
      std::vector<Matrix> blocks(static_cast<std::size_t>(comm.size()));
      blocks[0] = std::move(wlocal);
      {
        PARSVD_TRACE_SCOPE("apmos.stage3.gather");
        for (std::size_t n = 0; n < w_reqs.size(); ++n) {
          const std::size_t which = pmpi::wait_any(w_reqs);
          blocks[which + 1] = w_reqs[which].take_matrix();
        }
      }
      SvdResult f = root_svd(hcat(blocks));
      x = std::move(f.u);
      lambda = std::move(f.s);
    } else {
      comm.isend_matrix(wlocal, 0, pmpi::tags::apmos_w());
    }
    comm.bcast_matrix(x, 0);
    {
      std::vector<double> lam(lambda.begin(), lambda.end());
      comm.bcast(lam, 0);
      lambda = Vector(static_cast<Index>(lam.size()));
      std::copy(lam.begin(), lam.end(), lambda.begin());
    }
  }

  // Stage 6: lift the global right-space modes through the local block:
  // Ũ^i = A^i X̃ diag(1/Λ̃).
  PARSVD_TRACE_SCOPE("apmos.stage6.lift");
  ApmosResult out;
  out.u_local = matmul(a_local, x);
  out.s = lambda;
  out.report = std::move(report);
  const double cutoff = (lambda.size() > 0 ? lambda[0] : 0.0) * 1e-14;
  for (Index j = 0; j < out.u_local.cols(); ++j) {
    if (lambda[j] > cutoff && lambda[j] > 0.0) {
      scal(1.0 / lambda[j], out.u_local.col_span(j));
    } else {
      auto col = out.u_local.col_span(j);
      std::fill(col.begin(), col.end(), 0.0);
    }
  }
  return out;
}

}  // namespace parsvd
