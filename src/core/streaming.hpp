// Streaming SVD base class and serial implementation.
//
// Mirrors PyParSVD's factory design (§4): a shared base (ParSVD_Base)
// with Serial and Parallel derivations. The serial algorithm is
// Levy & Lindenbaum's sequential Karhunen-Loève update (Algorithm 1):
// keep (U, Σ) of everything seen so far, and on each new batch A_i
// factor the concatenation [ff·U Σ | A_i] to refresh the leading K
// modes. ff < 1 exponentially discounts older batches.
#pragma once

#include <memory>

#include "core/options.hpp"
#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace parsvd {

/// Abstract streaming-SVD interface shared by the serial and parallel
/// implementations (the paper's ParSVD_Base).
class SvdBase {
 public:
  explicit SvdBase(StreamingOptions opts);
  virtual ~SvdBase() = default;

  SvdBase(const SvdBase&) = delete;
  SvdBase& operator=(const SvdBase&) = delete;

  /// Ingest the first data batch (performs the initial factorization).
  /// Must be called exactly once, before any incorporate_data.
  virtual void initialize(const Matrix& batch) = 0;

  /// Ingest a subsequent batch (streaming update). Snapshot dimension
  /// (row count of the batch) must match the initialized one.
  virtual void incorporate_data(const Matrix& batch) = 0;

  /// Leading singular values (length = retained mode count).
  const Vector& singular_values() const { return singular_values_; }

  /// Retained left singular vectors. For the parallel implementation
  /// this is the *gathered global* mode matrix, populated on the root
  /// rank only (empty elsewhere). When row weights are configured these
  /// vectors live in √w-scaled space (Euclidean-orthonormal); use
  /// physical_modes() for vectors orthonormal under ⟨·,·⟩_w.
  const Matrix& modes() const { return modes_; }

  /// Modes mapped back to physical space: column j is W^{-1/2} modes_j,
  /// orthonormal under the weighted inner product. Without weights this
  /// is identical to modes(). For the parallel implementation this is a
  /// COLLECTIVE call (it re-gathers at root; non-root ranks get empty).
  virtual Matrix physical_modes();

  /// Modal coefficients of a batch of snapshots: C = Φᵀ W B where Φ are
  /// the physical modes (K x batch_cols). This is the Galerkin
  /// projection used to build reduced-order models (paper §2). For the
  /// parallel implementation this is a COLLECTIVE call (each rank
  /// contributes its row block; the summed coefficients are returned on
  /// every rank).
  virtual Matrix project(const Matrix& batch);

  /// Reconstruct snapshots from modal coefficients: B ≈ Φ C. The serial
  /// implementation returns the full field; the parallel one returns
  /// this rank's row block. `coefficients` is K x batch_cols.
  virtual Matrix reconstruct(const Matrix& coefficients) const;

  /// Number of incorporate_data calls performed so far.
  Index iterations() const { return iteration_; }

  /// Number of snapshots ingested so far (all batches).
  Index snapshots_seen() const { return snapshots_seen_; }

  bool initialized() const { return initialized_; }

  const StreamingOptions& options() const { return opts_; }

 protected:
  void require_initialized() const {
    PARSVD_REQUIRE(initialized_, "initialize() must be called first");
  }

  /// Returns `batch` with row i scaled by √row_weights[i] (the map into
  /// the Euclidean space the factorization runs in); pass-through when
  /// no weights are configured. Validates the weight length lazily on
  /// the first batch.
  Matrix apply_row_weights(const Matrix& batch) const;

  /// Undo the √w scaling on a mode block whose rows correspond to
  /// row_weights (identity when unweighted).
  Matrix remove_row_weights(const Matrix& modes) const;

  StreamingOptions opts_;
  Matrix modes_;             // M x K (serial) or gathered global (parallel root)
  Vector singular_values_;   // K
  Index iteration_ = 0;
  Index snapshots_seen_ = 0;
  bool initialized_ = false;
};

/// Serial Levy-Lindenbaum streaming SVD (the paper's ParSVD_Serial,
/// Listing 1).
class SerialStreamingSVD final : public SvdBase {
 public:
  explicit SerialStreamingSVD(StreamingOptions opts);

  void initialize(const Matrix& batch) override;
  void incorporate_data(const Matrix& batch) override;

 private:
  /// Inner dense SVD honoring the low_rank/randomized switch.
  SvdResult inner_svd(const Matrix& a, Index rank);

  Rng rng_;
  Index num_rows_ = 0;
};

}  // namespace parsvd
