// Randomized SVD (paper §3.3, Halko-Martinsson-Tropp scheme).
//
//   1. Draw a test matrix Ω (n x (r + p)) — dense Gaussian by default, or
//      a structured sparse-sign / SRHT operator via
//      RandomizedOptions::sketch_kind (src/sketch/, DESIGN §10).
//   2. Sample the range: Y = A Ω, optionally refined by power iterations
//      Y ← A (Aᵀ Y) with re-orthonormalization between products.
//   3. Orthonormalize Q = qr(Y).
//   4. Project B = Qᵀ A ((r+p) x n, small), take its dense SVD.
//   5. Lift U = Q Ũ and truncate to rank r.
//
// Step 2's re-orthonormalization is essential: without it the powered
// sketch collapses onto the dominant singular direction in floating
// point.  The paper samples a fresh Ω "every time a randomized SVD is
// required"; we mirror that by advancing the RNG stream per call (one
// draw seeds the operator through sketch::derive_operator_seed).
#pragma once

#include "core/options.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace parsvd {

/// Orthonormal basis approximating the range of `a`.
/// Returns an m x min(rank + oversampling, min(m, n)) matrix Q with
/// orthonormal columns.
Matrix randomized_range_finder(const Matrix& a, const RandomizedOptions& opts,
                               Rng& rng);

/// Rank-truncated randomized SVD with caller-owned RNG (deterministic
/// given the generator state).
SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts,
                         Rng& rng);

/// Convenience overload seeding a fresh generator from opts.seed.
SvdResult randomized_svd(const Matrix& a, const RandomizedOptions& opts);

}  // namespace parsvd
