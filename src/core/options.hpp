// User-facing configuration for the parsvd core algorithms.
//
// Defaults mirror the paper: forget factor ff = 0.95 (§3.1), APMOS
// truncation r1 = 50, r2 = 5 (§3.2), and Gaussian sketching for the
// randomized path (§3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "sketch/sketch.hpp"

namespace parsvd {

/// Outcome metadata for a fault-tolerant (degraded-completion) run.
///
/// When ranks die mid-computation the survivors finish the SVD on the
/// rows they still hold. The result is exact for the surviving
/// partitions of the row space; what is lost is the dead ranks' row
/// blocks. By Weyl's inequality the singular values of the full matrix
/// and of the survivor submatrix differ by at most ‖A_lost‖₂ ≤
/// ‖A_lost‖_F, so with coverage = Σ_alive ‖A_i‖_F² / Σ_all ‖A_i‖_F²
/// the relative perturbation is bounded by √(1 − coverage)·‖A‖_F
/// (cf. Iwen & Ong, arXiv:1601.07010; Li et al., arXiv:1612.08709).
struct FaultReport {
  /// True when at least one rank's contribution was lost.
  bool degraded = false;
  /// Ranks excluded from the result (dead at the deciding collective).
  std::vector<int> dead_ranks;
  /// Rows of the global matrix still represented in the result.
  Index surviving_rows = 0;
  /// Rows owned by dead ranks (0 when extent_known is false).
  Index lost_rows = 0;
  /// False when a rank died before ever reporting its row extent, so
  /// lost_rows is a lower bound rather than exact.
  bool extent_known = true;
  /// Fraction of the total Frobenius energy Σ‖A_i‖_F² retained by the
  /// survivors; 1.0 for a clean run.
  double coverage = 1.0;
  /// Weyl-type bound √(1 − coverage) on the relative (‖A‖_F-scaled)
  /// singular-value perturbation caused by the lost rows.
  double accuracy_bound = 0.0;

  /// Flat double encoding so the report can ride bcast_doubles_ft from
  /// root to the survivors: [degraded, ndead, dead..., surviving_rows,
  /// lost_rows, extent_known, coverage, accuracy_bound].
  std::vector<double> to_doubles() const;
  static FaultReport from_doubles(const std::vector<double>& flat);
};

/// Randomized range-finder configuration (Halko et al. style).
struct RandomizedOptions {
  /// Target rank r of the approximation (required, > 0).
  Index rank = 10;
  /// Extra sketch columns beyond `rank`; improves accuracy at tiny cost.
  Index oversampling = 8;
  /// Power (subspace) iterations; 1-2 sharpen spectra with slow decay.
  int power_iterations = 0;
  /// Seed for the test matrix (deterministic per seed).
  std::uint64_t seed = 0x5eed;
  /// Backend used for the small inner SVD.
  SvdMethod inner_method = SvdMethod::Jacobi;
  /// Test-matrix family for the range finder. DenseGaussian (the paper's
  /// operator) unless overridden here or via PARSVD_SKETCH_KIND; Auto
  /// picks the cheapest kind from the per-shape apply-cost model.
  sketch::SketchKind sketch_kind = sketch::default_kind();
  /// Arithmetic regime for the range finder (DESIGN §12). Double is the
  /// reference; Mixed runs the sketch apply and power-iteration GEMMs in
  /// fp32 and refines the basis back to fp64 (one fp64 re-orthogonalization
  /// before the fp64 projection) — near-fp64 singular values at fp32
  /// inner-loop cost; Single stays fp32 through the projection (coarse).
  /// Default from PARSVD_PRECISION; also reached through the nested
  /// `randomized` options of StreamingOptions / ApmosOptions.
  Precision precision = default_precision();
};

/// Streaming (Levy-Lindenbaum) configuration, serial and parallel.
struct StreamingOptions {
  /// Number of retained modes K (leading left singular vectors).
  Index num_modes = 10;
  /// Forget factor in (0, 1]; 1.0 reproduces the batch SVD exactly.
  double forget_factor = 0.95;
  /// Route the inner dense SVDs through the randomized path.
  bool low_rank = false;
  RandomizedOptions randomized{};
  /// Deterministic backend for non-randomized inner SVDs.
  SvdMethod method = SvdMethod::Jacobi;
  /// Optional positive row weights w defining the inner product
  /// ⟨u, v⟩ = uᵀ diag(w) v — e.g. cell-area (cos-latitude) weights for
  /// lat-lon grids, the standard EOF convention in weather/climate work.
  /// Empty = Euclidean. For the distributed implementation each rank
  /// passes the weights of ITS rows. Internally the data is scaled by
  /// √w so the factorization machinery is unchanged; modes() then holds
  /// the √w-scaled (Euclidean-orthonormal) vectors and physical_modes()
  /// undoes the scaling, yielding vectors orthonormal under ⟨·,·⟩_w.
  Vector row_weights{};
  /// Use fault-tolerant collectives: ranks that die mid-run are excluded
  /// and the SVD completes on the survivors, with the loss quantified in
  /// a FaultReport. Adds one ft-gather per update; off by default.
  bool fault_tolerant = false;

  void validate() const;
};

/// APMOS distributed-SVD configuration (Algorithm 2).
struct ApmosOptions {
  /// r1: columns of V and Σ each rank contributes to the gathered W.
  Index r1 = 50;
  /// r2: retained global modes broadcast back to the ranks.
  Index r2 = 5;
  /// Randomize the root SVD of W.
  bool low_rank = false;
  RandomizedOptions randomized{};
  SvdMethod method = SvdMethod::Jacobi;
  /// Eigensolver for the MethodOfSnapshots local stage (the paper's
  /// suggested path when M_i >> N; Tridiagonal is the fast choice).
  EighMethod eigh_method = EighMethod::Jacobi;
  /// Use fault-tolerant collectives (see StreamingOptions::fault_tolerant).
  bool fault_tolerant = false;

  void validate() const;
};

/// TSQR variant selection.
enum class TsqrVariant {
  /// Paper/Benson et al. "direct" TSQR: gather all local R factors at
  /// rank 0, one QR of the stack, scatter Q slices. O(p n^2) root memory.
  Direct,
  /// Binary-tree reduction: pairwise QR combines up a tree, transforms
  /// unwound down it. O(log p) depth, O(n^2) per-message volume.
  Tree,
};

}  // namespace parsvd
