// User-facing configuration for the parsvd core algorithms.
//
// Defaults mirror the paper: forget factor ff = 0.95 (§3.1), APMOS
// truncation r1 = 50, r2 = 5 (§3.2), and Gaussian sketching for the
// randomized path (§3.3).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace parsvd {

/// Randomized range-finder configuration (Halko et al. style).
struct RandomizedOptions {
  /// Target rank r of the approximation (required, > 0).
  Index rank = 10;
  /// Extra sketch columns beyond `rank`; improves accuracy at tiny cost.
  Index oversampling = 8;
  /// Power (subspace) iterations; 1-2 sharpen spectra with slow decay.
  int power_iterations = 0;
  /// Seed for the Gaussian test matrix (deterministic per seed).
  std::uint64_t seed = 0x5eed;
  /// Backend used for the small inner SVD.
  SvdMethod inner_method = SvdMethod::Jacobi;
};

/// Streaming (Levy-Lindenbaum) configuration, serial and parallel.
struct StreamingOptions {
  /// Number of retained modes K (leading left singular vectors).
  Index num_modes = 10;
  /// Forget factor in (0, 1]; 1.0 reproduces the batch SVD exactly.
  double forget_factor = 0.95;
  /// Route the inner dense SVDs through the randomized path.
  bool low_rank = false;
  RandomizedOptions randomized{};
  /// Deterministic backend for non-randomized inner SVDs.
  SvdMethod method = SvdMethod::Jacobi;
  /// Optional positive row weights w defining the inner product
  /// ⟨u, v⟩ = uᵀ diag(w) v — e.g. cell-area (cos-latitude) weights for
  /// lat-lon grids, the standard EOF convention in weather/climate work.
  /// Empty = Euclidean. For the distributed implementation each rank
  /// passes the weights of ITS rows. Internally the data is scaled by
  /// √w so the factorization machinery is unchanged; modes() then holds
  /// the √w-scaled (Euclidean-orthonormal) vectors and physical_modes()
  /// undoes the scaling, yielding vectors orthonormal under ⟨·,·⟩_w.
  Vector row_weights{};

  void validate() const;
};

/// APMOS distributed-SVD configuration (Algorithm 2).
struct ApmosOptions {
  /// r1: columns of V and Σ each rank contributes to the gathered W.
  Index r1 = 50;
  /// r2: retained global modes broadcast back to the ranks.
  Index r2 = 5;
  /// Randomize the root SVD of W.
  bool low_rank = false;
  RandomizedOptions randomized{};
  SvdMethod method = SvdMethod::Jacobi;
  /// Eigensolver for the MethodOfSnapshots local stage (the paper's
  /// suggested path when M_i >> N; Tridiagonal is the fast choice).
  EighMethod eigh_method = EighMethod::Jacobi;

  void validate() const;
};

/// TSQR variant selection.
enum class TsqrVariant {
  /// Paper/Benson et al. "direct" TSQR: gather all local R factors at
  /// rank 0, one QR of the stack, scatter Q slices. O(p n^2) root memory.
  Direct,
  /// Binary-tree reduction: pairwise QR combines up a tree, transforms
  /// unwound down it. O(log p) depth, O(n^2) per-message volume.
  Tree,
};

}  // namespace parsvd
