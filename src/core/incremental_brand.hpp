// Brand's incremental SVD — the classical baseline for streaming
// factorization (M. Brand, "Fast low-rank modifications of the thin
// singular value decomposition", Linear Algebra Appl. 415, 2006; the
// lineage the paper cites through Sarwar et al.'s recommender systems).
//
// Differences from the Levy-Lindenbaum update (Algorithm 1):
//   * the update factors only the (k + b) x (k + b) augmented core
//     [diag(S)  UᵀC; 0  R_H] instead of re-QR-ing the full m x (k + b)
//     concatenation — cheaper per batch when m >> k + b;
//   * it can carry the right singular vectors V along (Levy-Lindenbaum
//     discards them), at O(n k) memory — enabling full reconstruction
//     U S Vᵀ of everything seen;
//   * no forget factor in Brand's formulation; this implementation adds
//     the same exponential discount for comparability (ff = 1 recovers
//     Brand's method exactly).
//
// The abl_streaming_algorithms bench races the two updates; the test
// suite verifies they agree with each other and with the batch SVD.
#pragma once

#include "core/streaming.hpp"

namespace parsvd {

class IncrementalSVD final : public SvdBase {
 public:
  /// `track_right_vectors` keeps V (grows by one row per snapshot).
  explicit IncrementalSVD(StreamingOptions opts,
                          bool track_right_vectors = false);

  void initialize(const Matrix& batch) override;
  void incorporate_data(const Matrix& batch) override;

  bool tracks_right_vectors() const { return track_v_; }

  /// Right singular vectors, snapshots_seen x K. Only valid when
  /// track_right_vectors was requested.
  const Matrix& right_vectors() const;

  /// Low-rank reconstruction U diag(S) Vᵀ of the entire stream seen so
  /// far (requires right-vector tracking). Weighted runs return the
  /// physical-space field.
  Matrix reconstruct_stream() const;

 private:
  SvdResult inner_svd(const Matrix& a, Index rank);

  bool track_v_;
  Matrix v_;       // snapshots_seen x K (only when track_v_)
  Rng rng_;
  Index num_rows_ = 0;
};

}  // namespace parsvd
