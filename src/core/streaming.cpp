#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace parsvd {

SvdBase::SvdBase(StreamingOptions opts) : opts_(opts) { opts_.validate(); }

Matrix SvdBase::apply_row_weights(const Matrix& batch) const {
  if (opts_.row_weights.empty()) return batch;
  PARSVD_REQUIRE(opts_.row_weights.size() == batch.rows(),
                 "row_weights length must match the batch row count");
  Matrix scaled = batch;
  for (Index j = 0; j < scaled.cols(); ++j) {
    double* col = scaled.col_data(j);
    for (Index i = 0; i < scaled.rows(); ++i) {
      col[i] *= std::sqrt(opts_.row_weights[i]);
    }
  }
  return scaled;
}

Matrix SvdBase::remove_row_weights(const Matrix& modes) const {
  if (opts_.row_weights.empty()) return modes;
  PARSVD_REQUIRE(opts_.row_weights.size() == modes.rows(),
                 "row_weights length must match the mode row count");
  Matrix physical = modes;
  for (Index j = 0; j < physical.cols(); ++j) {
    double* col = physical.col_data(j);
    for (Index i = 0; i < physical.rows(); ++i) {
      col[i] /= std::sqrt(opts_.row_weights[i]);
    }
  }
  return physical;
}

Matrix SvdBase::physical_modes() { return remove_row_weights(modes_); }

Matrix SvdBase::project(const Matrix& batch) {
  require_initialized();
  // In √w space: C = modes_ᵀ (√w ∘ B) = Φᵀ W B, since Φ = W^{-1/2} modes_.
  return matmul(modes_, apply_row_weights(batch), Trans::Yes, Trans::No);
}

Matrix SvdBase::reconstruct(const Matrix& coefficients) const {
  PARSVD_REQUIRE(initialized_, "initialize() must be called first");
  PARSVD_REQUIRE(coefficients.rows() == modes_.cols(),
                 "coefficient rows must equal the retained mode count");
  return remove_row_weights(matmul(modes_, coefficients));
}

SerialStreamingSVD::SerialStreamingSVD(StreamingOptions opts)
    : SvdBase(std::move(opts)), rng_(opts_.randomized.seed) {}

SvdResult SerialStreamingSVD::inner_svd(const Matrix& a, Index rank) {
  if (opts_.low_rank) {
    RandomizedOptions ropts = opts_.randomized;
    ropts.rank = std::min(rank, std::min(a.rows(), a.cols()));
    return randomized_svd(a, ropts, rng_);
  }
  SvdOptions sopts;
  sopts.method = opts_.method;
  sopts.rank = std::min(rank, std::min(a.rows(), a.cols()));
  return svd(a, sopts);
}

void SerialStreamingSVD::initialize(const Matrix& batch) {
  PARSVD_REQUIRE(!initialized_, "initialize() called twice");
  PARSVD_REQUIRE(!batch.empty(), "empty initial batch");
  num_rows_ = batch.rows();

  // I1-I2 of Algorithm 1: QR of the first batch, SVD of the small R,
  // lift U through Q. Weighted problems run on the √w-scaled data.
  QrResult qr = qr_thin(apply_row_weights(batch));
  const Index keep = std::min(opts_.num_modes, std::min(batch.rows(), batch.cols()));
  SvdResult f = inner_svd(qr.r, keep);
  modes_ = matmul(qr.q, f.u.left_cols(keep));
  singular_values_ = f.s.head(keep);
  snapshots_seen_ = batch.cols();
  initialized_ = true;
}

void SerialStreamingSVD::incorporate_data(const Matrix& batch) {
  require_initialized();
  PARSVD_REQUIRE(batch.rows() == num_rows_,
                 "batch row count differs from the initialized problem");
  PARSVD_REQUIRE(batch.cols() > 0, "empty streaming batch");
  ++iteration_;
  snapshots_seen_ += batch.cols();

  // Step 1: concatenate the discounted running factorization with the
  // new snapshots and re-factor: [ff·U Σ | A_i] = U' D'.
  Matrix m_ap = modes_;
  for (Index j = 0; j < m_ap.cols(); ++j) {
    scal(opts_.forget_factor * singular_values_[j], m_ap.col_span(j));
  }
  const Matrix concat = hcat(m_ap, apply_row_weights(batch));
  QrResult qr = qr_thin(concat);

  // Steps 2-5: SVD of the small D', keep the leading K triplets, rotate
  // the Q basis onto them.
  const Index keep =
      std::min(opts_.num_modes, std::min(qr.r.rows(), qr.r.cols()));
  SvdResult f = inner_svd(qr.r, keep);
  modes_ = matmul(qr.q, f.u.left_cols(keep));
  singular_values_ = f.s.head(keep);
}

}  // namespace parsvd
