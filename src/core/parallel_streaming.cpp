#include "core/parallel_streaming.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <optional>
#include <span>

#include "core/randomized.hpp"
#include "linalg/blas.hpp"
#include "obs/trace.hpp"

namespace parsvd {

ParallelStreamingSVD::ParallelStreamingSVD(pmpi::Communicator& comm,
                                           StreamingOptions opts,
                                           TsqrVariant tsqr_variant)
    : SvdBase(std::move(opts)),
      comm_(comm),
      tsqr_variant_(tsqr_variant),
      rng_(opts_.randomized.seed) {}

void ParallelStreamingSVD::initialize(const Matrix& batch) {
  PARSVD_REQUIRE(!initialized_, "initialize() called twice");
  PARSVD_REQUIRE(!batch.empty(), "empty initial batch");
  PARSVD_TRACE_SCOPE("pssvd.initialize");
  num_rows_ = batch.rows();

  // Row layout of the distributed mode matrix (needed by gather_modes
  // and by callers mapping local rows to global grid points).
  const std::vector<Index> all_rows = comm_.allgather_index(num_rows_);
  row_offset_ = 0;
  global_rows_ = 0;
  for (int r = 0; r < comm_.size(); ++r) {
    if (r < comm_.rank()) row_offset_ += all_rows[static_cast<std::size_t>(r)];
    global_rows_ += all_rows[static_cast<std::size_t>(r)];
  }
  rows_by_rank_ = all_rows;

  const Matrix weighted = apply_row_weights(batch);

  // Fault-tolerant bookkeeping: record every rank's row extent (above)
  // and initial Frobenius energy while everyone is still alive, so a
  // later death yields exact lost_rows and a sharp coverage bound.
  // initialize() itself is a healthy collective — all ranks must
  // survive it; deaths are tolerated from the first streaming update on.
  if (opts_.fault_tolerant) {
    const double frob = weighted.norm_fro();
    energy_by_rank_ = comm_.allgather_double(frob * frob);
  }

  // Listing 2: initialization runs APMOS with r1 = r2 = K (the parallel
  // SVD of the first batch), honoring the low-rank switch at the root.
  ApmosOptions aopts;
  const Index keep = std::min(opts_.num_modes, batch.cols());
  aopts.r1 = keep;
  aopts.r2 = keep;
  aopts.low_rank = opts_.low_rank;
  aopts.randomized = opts_.randomized;
  aopts.method = opts_.method;
  ApmosResult init = apmos_svd(comm_, weighted, aopts, &rng_);

  u_local_ = std::move(init.u_local);
  singular_values_ = std::move(init.s);
  snapshots_seen_ = batch.cols();
  initialized_ = true;
  gather_modes();
}

void ParallelStreamingSVD::root_svd_and_broadcast(const Matrix& r,
                                                  Matrix& u_small, Vector& s) {
  PARSVD_TRACE_SCOPE("pssvd.root_svd");
  const Index keep = std::min(opts_.num_modes, std::min(r.rows(), r.cols()));
  if (comm_.is_root()) {
    SvdResult f;
    if (opts_.low_rank) {
      RandomizedOptions ropts = opts_.randomized;
      ropts.rank = keep;
      f = randomized_svd(r, ropts, rng_);
    } else {
      SvdOptions sopts;
      sopts.method = opts_.method;
      sopts.rank = keep;
      f = svd(r, sopts);
    }
    fix_svd_signs(f.u, f.v);
    u_small = std::move(f.u);
    s = std::move(f.s);
  }
  std::vector<double> sv(s.begin(), s.end());
  if (opts_.fault_tolerant) {
    comm_.bcast_matrix_ft(u_small, 0);
    comm_.bcast_doubles_ft(sv, 0);
  } else {
    comm_.bcast_matrix(u_small, 0);
    comm_.bcast(sv, 0);
  }
  s = Vector(static_cast<Index>(sv.size()));
  std::copy(sv.begin(), sv.end(), s.begin());
}

void ParallelStreamingSVD::incorporate_data(const Matrix& batch) {
  require_initialized();
  PARSVD_REQUIRE(batch.rows() == num_rows_,
                 "batch row count differs from the initialized problem");
  PARSVD_REQUIRE(batch.cols() > 0, "empty streaming batch");
  PARSVD_TRACE_SCOPE("pssvd.incorporate");
  ++iteration_;
  snapshots_seen_ += batch.cols();

  const Matrix weighted = apply_row_weights(batch);

  // Fault-tolerant mode: fold this batch's energy into root's per-rank
  // ledger before the factorization touches the network, so a rank that
  // dies later in this update counts its in-flight batch as lost (the
  // conservative direction for the coverage bound).
  if (opts_.fault_tolerant) {
    const double frob = weighted.norm_fro();
    const double energy = frob * frob;
    std::array<std::byte, sizeof(double)> buf;
    std::memcpy(buf.data(), &energy, sizeof(double));
    const auto raw = comm_.gather_bytes_ft(buf, 0);
    if (comm_.is_root()) {
      for (int src = 0; src < comm_.size(); ++src) {
        const auto& c = raw[static_cast<std::size_t>(src)];
        if (!c || c->size() != sizeof(double)) continue;
        double e = 0.0;
        std::memcpy(&e, c->data(), sizeof(double));
        energy_by_rank_[static_cast<std::size_t>(src)] += e;
      }
    }
  }

  // Step 1 (distributed): concatenate the discounted local factorization
  // with the new local snapshots, then TSQR across ranks.
  Matrix ll = u_local_;
  for (Index j = 0; j < ll.cols(); ++j) {
    scal(opts_.forget_factor * singular_values_[j], ll.col_span(j));
  }
  ll = hcat(ll, weighted);
  TsqrResult qr = tsqr(comm_, ll, tsqr_variant_, opts_.fault_tolerant);

  // Step 2 (small, at root): SVD of the global R, truncated to K.
  // PyParSVD's listing only truncates on the low-rank path, which lets
  // the factorization width grow by B per batch; we truncate on both
  // paths, matching Algorithm 1 steps 3-5 (see DESIGN.md).
  Matrix u_small;
  Vector s;
  root_svd_and_broadcast(qr.r, u_small, s);

  // Steps 4-5: rotate the local Q slice onto the leading modes.
  u_local_ = matmul(qr.q_local, u_small);
  singular_values_ = std::move(s);
  gather_modes();
  if (opts_.fault_tolerant) update_fault_report();
}

void ParallelStreamingSVD::gather_modes() {
  PARSVD_TRACE_SCOPE("pssvd.gather_modes");
  if (opts_.fault_tolerant) {
    std::vector<std::optional<Matrix>> blocks =
        comm_.gather_matrices_ft(u_local_, 0);
    if (comm_.is_root()) {
      std::vector<Matrix> alive;
      alive.reserve(blocks.size());
      for (auto& b : blocks) {
        if (b) alive.push_back(std::move(*b));
      }
      modes_ = vcat(alive);
    } else {
      modes_ = Matrix{};
    }
    return;
  }
  std::vector<Matrix> blocks = comm_.gather_matrices(u_local_, 0);
  if (comm_.is_root()) {
    modes_ = vcat(blocks);
  } else {
    modes_ = Matrix{};
  }
}

void ParallelStreamingSVD::update_fault_report() {
  std::vector<double> flat;
  if (comm_.is_root()) {
    FaultReport rep;
    // Communicator-scoped, not Context-wide: on a group communicator
    // this lists group-local ranks and a sibling group's death never
    // appears here — the degraded report is the group's own.
    rep.dead_ranks = comm_.dead_ranks();
    rep.degraded = !rep.dead_ranks.empty();
    rep.extent_known = true;
    std::vector<bool> dead(static_cast<std::size_t>(comm_.size()), false);
    for (int d : rep.dead_ranks) dead[static_cast<std::size_t>(d)] = true;
    double lost_energy = 0.0;
    double total_energy = 0.0;
    Index lost_rows = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      const auto i = static_cast<std::size_t>(r);
      total_energy += energy_by_rank_[i];
      if (dead[i]) {
        lost_energy += energy_by_rank_[i];
        lost_rows += rows_by_rank_[i];
      }
    }
    rep.lost_rows = lost_rows;
    rep.surviving_rows = global_rows_ - lost_rows;
    rep.coverage = total_energy > 0.0
                       ? (total_energy - lost_energy) / total_energy
                       : 1.0;
    rep.accuracy_bound = std::sqrt(std::max(0.0, 1.0 - rep.coverage));
    flat = rep.to_doubles();
  }
  comm_.bcast_doubles_ft(flat, 0);
  report_ = FaultReport::from_doubles(flat);
}

Matrix ParallelStreamingSVD::project(const Matrix& batch) {
  require_initialized();
  PARSVD_REQUIRE(batch.rows() == num_rows_,
                 "project: batch row count differs from this rank's block");
  // Local contribution of the W-inner product, summed across ranks.
  Matrix local =
      matmul(u_local_, apply_row_weights(batch), Trans::Yes, Trans::No);
  std::span<double> flat(local.data(), static_cast<std::size_t>(local.size()));
  if (opts_.fault_tolerant) {
    comm_.allreduce_sum_ft(flat, 0);
  } else {
    comm_.allreduce(flat, pmpi::Op::Sum);
  }
  return local;
}

Matrix ParallelStreamingSVD::reconstruct(const Matrix& coefficients) const {
  PARSVD_REQUIRE(initialized_, "initialize() must be called first");
  PARSVD_REQUIRE(coefficients.rows() == u_local_.cols(),
                 "coefficient rows must equal the retained mode count");
  return remove_row_weights(matmul(u_local_, coefficients));
}

Matrix ParallelStreamingSVD::physical_modes() {
  // Each rank unscales its own rows (it holds its own weights), then the
  // physical blocks are gathered at root.
  if (opts_.fault_tolerant) {
    std::vector<std::optional<Matrix>> blocks =
        comm_.gather_matrices_ft(remove_row_weights(u_local_), 0);
    if (!comm_.is_root()) return Matrix{};
    std::vector<Matrix> alive;
    alive.reserve(blocks.size());
    for (auto& b : blocks) {
      if (b) alive.push_back(std::move(*b));
    }
    return vcat(alive);
  }
  std::vector<Matrix> blocks =
      comm_.gather_matrices(remove_row_weights(u_local_), 0);
  if (!comm_.is_root()) return Matrix{};
  return vcat(blocks);
}

}  // namespace parsvd
