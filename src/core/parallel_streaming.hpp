// Distributed streaming SVD (the paper's ParSVD_Parallel, Listing 2).
//
// Combines the three building blocks: APMOS initializes the distributed
// factorization, TSQR re-factors the concatenated [ff·U_loc Σ | A_i] on
// every streaming step, and the small root SVD of the global R may be
// randomized.  Each rank owns a fixed row-block (its grid points); the
// snapshot dimension streams in batches.
#pragma once

#include "core/apmos.hpp"
#include "core/streaming.hpp"
#include "core/tsqr.hpp"
#include "pmpi/comm.hpp"

namespace parsvd {

class ParallelStreamingSVD final : public SvdBase {
 public:
  /// `comm` must outlive the object; every rank of the communicator
  /// constructs its own instance with identical options.
  ParallelStreamingSVD(pmpi::Communicator& comm, StreamingOptions opts,
                       TsqrVariant tsqr_variant = TsqrVariant::Direct);

  /// Collective. `batch` is this rank's row-block of the first batch.
  void initialize(const Matrix& batch) override;

  /// Collective. Streaming update with this rank's row-block of A_i.
  void incorporate_data(const Matrix& batch) override;

  /// This rank's rows of the retained global modes (local_rows x K).
  /// In √w-scaled space when row weights are configured.
  const Matrix& local_modes() const { return u_local_; }

  /// Collective: gathers the weight-unscaled global modes at root
  /// (empty on other ranks). Equals modes() when unweighted.
  Matrix physical_modes() override;

  /// Collective: modal coefficients of a distributed batch (this rank
  /// passes its row block). Every rank receives the global K x B result.
  Matrix project(const Matrix& batch) override;

  /// Reconstruct THIS RANK's rows of the field from global coefficients.
  Matrix reconstruct(const Matrix& coefficients) const override;

  /// Row offset of this rank's block within the global mode matrix.
  Index row_offset() const { return row_offset_; }

  /// Global row count across all ranks.
  Index global_rows() const { return global_rows_; }

  /// Loss metadata when opts.fault_tolerant is set and ranks died during
  /// a streaming update; default-clean otherwise. Because initialize()
  /// records every rank's row extent and Frobenius energy up front, the
  /// report carries exact lost_rows and a sharp √(1 − coverage) bound —
  /// unlike one-shot APMOS. Updated by each incorporate_data() call.
  const FaultReport& fault_report() const { return report_; }

 private:
  /// Root SVD of the TSQR R factor + broadcast of (Ũ, Σ̃) — the "small
  /// operation" of Levy-Lindenbaum step 2 in the distributed setting.
  void root_svd_and_broadcast(const Matrix& r, Matrix& u_small, Vector& s);

  /// Re-gather the global modes at root into SvdBase::modes_.
  void gather_modes();

  /// Fault-tolerant mode only: root accumulates each rank's streamed
  /// Frobenius energy (for the coverage bound) from the per-batch
  /// ft-gathers; broadcast of the resulting report keeps survivors
  /// consistent.
  void update_fault_report();

  pmpi::Communicator& comm_;
  TsqrVariant tsqr_variant_;
  Matrix u_local_;        // local rows of the global modes, M_i x K
  Rng rng_;               // root-rank sketch stream (low_rank mode)
  Index num_rows_ = 0;    // this rank's row count (fixed after init)
  Index row_offset_ = 0;
  Index global_rows_ = 0;
  std::vector<Index> rows_by_rank_;     // recorded at initialize()
  std::vector<double> energy_by_rank_;  // Σ‖batchᵢ‖_F² per rank (root, ft)
  FaultReport report_;
};

}  // namespace parsvd
