#include "core/factory.hpp"

namespace parsvd {

std::unique_ptr<SvdBase> make_streaming_svd(const StreamingOptions& opts) {
  return std::make_unique<SerialStreamingSVD>(opts);
}

std::unique_ptr<SvdBase> make_streaming_svd(const StreamingOptions& opts,
                                            pmpi::Communicator& comm,
                                            TsqrVariant tsqr_variant) {
  return std::make_unique<ParallelStreamingSVD>(comm, opts, tsqr_variant);
}

}  // namespace parsvd
