#include "workloads/era5_synthetic.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace parsvd::workloads {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Stateless mixing so noise is a pure function of (cell, time): reading
/// any hyperslab of the dataset yields identical values, exactly like a
/// file on disk would.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double gaussian_at(std::uint64_t seed) {
  // Two mixed uniforms through Box-Muller; statelessness beats the polar
  // method's rejection loop here.
  const std::uint64_t a = mix64(seed);
  const std::uint64_t b = mix64(seed ^ 0xda3e39cb94b95bdbULL);
  const double u1 =
      (static_cast<double>(a >> 11) + 0.5) * 0x1.0p-53;  // (0, 1)
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;  // [0, 1)
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

}  // namespace

void Era5Config::validate() const {
  PARSVD_REQUIRE(n_lon >= 4 && n_lat >= 4, "grid too small");
  PARSVD_REQUIRE(snapshots >= 2, "need at least 2 snapshots");
  PARSVD_REQUIRE(n_modes >= 1 && n_modes <= 12, "n_modes must be in [1, 12]");
  PARSVD_REQUIRE(n_modes < n_lon * n_lat, "more modes than grid points");
  PARSVD_REQUIRE(leading_amplitude > 0.0, "leading amplitude must be positive");
  PARSVD_REQUIRE(amplitude_decay > 0.0 && amplitude_decay < 1.0,
                 "amplitude decay must lie in (0, 1)");
  PARSVD_REQUIRE(noise_std >= 0.0, "noise std must be non-negative");
}

Era5Synthetic::Era5Synthetic(const Era5Config& config)
    : config_(config), noise_base_(config.seed ^ 0xe5a5ULL) {
  config_.validate();
  build_modes();
  build_amplitudes();
}

void Era5Synthetic::build_modes() {
  const Index n_lat = config_.n_lat;
  const Index n_lon = config_.n_lon;
  const Index grid = grid_size();

  // Climatological mean: sea-level baseline with subtropical highs
  // (~±30°) and polar/equatorial lows.
  mean_ = Vector(grid);
  for (Index la = 0; la < n_lat; ++la) {
    // Latitude centers from -90 to +90.
    const double theta =
        (-90.0 + (static_cast<double>(la) + 0.5) * 180.0 /
                     static_cast<double>(n_lat)) *
        kPi / 180.0;
    const double belt = 8.0 * std::cos(2.0 * theta) * std::cos(theta);
    for (Index lo = 0; lo < n_lon; ++lo) {
      mean_[grid_index(la, lo)] = config_.base_pressure + belt;
    }
  }

  // Raw planetary-wave patterns; index m cycles through zonal wavenumber
  // and meridional structure combinations.
  Matrix raw(grid, config_.n_modes);
  for (Index m = 0; m < config_.n_modes; ++m) {
    const Index zonal = m / 2 + (m % 2);       // 0, 1, 1, 2, 2, 3, ...
    const Index merid = m / 2 + 1;             // 1, 1, 2, 2, 3, 3, ...
    const bool sine_phase = (m % 2 == 1);
    for (Index la = 0; la < n_lat; ++la) {
      const double theta =
          (-90.0 + (static_cast<double>(la) + 0.5) * 180.0 /
                       static_cast<double>(n_lat)) *
          kPi / 180.0;
      // Meridional envelope: vanishes at the poles, `merid` sign changes.
      const double envelope =
          std::cos(theta) * std::sin(static_cast<double>(merid) *
                                     (theta + kPi / 2.0));
      for (Index lo = 0; lo < n_lon; ++lo) {
        const double lambda = 2.0 * kPi * static_cast<double>(lo) /
                              static_cast<double>(n_lon);
        const double zphase =
            (zonal == 0)
                ? 1.0
                : (sine_phase ? std::sin(static_cast<double>(zonal) * lambda)
                              : std::cos(static_cast<double>(zonal) * lambda));
        raw(grid_index(la, lo), m) = envelope * zphase;
      }
    }
  }
  const Index dropped = orthonormalize_mgs2(raw);
  PARSVD_CHECK(dropped == 0, "planted ERA5 modes were linearly dependent");
  modes_ = std::move(raw);
}

void Era5Synthetic::build_amplitudes() {
  const Index n = config_.snapshots;
  const Index k = config_.n_modes;
  amplitudes_ = Matrix(n, k);
  Rng rng(config_.seed);

  // Each mode oscillates at a distinct harmonic of a 32-day planetary-
  // wave base period (128 six-hourly steps); distinct frequencies keep
  // the amplitude series mutually near-orthogonal over windows of a few
  // hundred snapshots, which is what makes the planted modes recoverable
  // by the SVD (the verification the real ERA5 cannot provide).
  const double base = 2.0 * kPi / 128.0;

  for (Index m = 0; m < k; ++m) {
    const double sigma =
        config_.leading_amplitude * std::pow(config_.amplitude_decay,
                                             static_cast<double>(m));
    Rng stream = rng.split(static_cast<std::uint64_t>(m));
    // Mode energy: half deterministic cycles, half AR(1) weather noise.
    const double det_frac = 0.5;
    const double cyc_amp = sigma * std::sqrt(det_frac) * std::sqrt(2.0);
    const double ar_sigma = sigma * std::sqrt(1.0 - det_frac);
    const double rho = 0.9;  // 6-hourly AR(1) → decorrelation in ~2 days
    const double innov = ar_sigma * std::sqrt(1.0 - rho * rho);
    const double phase = stream.uniform(0.0, 2.0 * kPi);
    const double freq = base * static_cast<double>(m + 1);

    double ar = ar_sigma * stream.gaussian();
    for (Index t = 0; t < n; ++t) {
      const double cyc =
          cyc_amp * std::sin(freq * static_cast<double>(t) + phase);
      amplitudes_(t, m) = cyc + ar;
      ar = rho * ar + innov * stream.gaussian();
    }
  }

  // Decorrelate: finite samples of distinct-frequency cycles plus AR(1)
  // noise retain O(1/sqrt(n_eff)) cross-correlations, which would mix
  // the recovered modes. Sequential orthogonalization (each series keeps
  // its own character minus projections onto earlier ones) followed by
  // rescaling to the target energies makes the sample covariance exactly
  // diagonal — so the SVD of the noise-free field recovers φ_k exactly,
  // the property the verification tests rely on.
  const Index dropped = orthonormalize_mgs2(amplitudes_);
  PARSVD_CHECK(dropped == 0, "amplitude series were linearly dependent");
  const double root_n = std::sqrt(static_cast<double>(n));
  for (Index m = 0; m < k; ++m) {
    const double sigma =
        config_.leading_amplitude * std::pow(config_.amplitude_decay,
                                             static_cast<double>(m));
    scal(root_n * sigma, amplitudes_.col_span(m));
  }
}

Vector Era5Synthetic::amplitude_std() const {
  Vector out(config_.n_modes);
  for (Index m = 0; m < config_.n_modes; ++m) {
    double mean = 0.0;
    for (Index t = 0; t < config_.snapshots; ++t) mean += amplitudes_(t, m);
    mean /= static_cast<double>(config_.snapshots);
    double var = 0.0;
    for (Index t = 0; t < config_.snapshots; ++t) {
      const double d = amplitudes_(t, m) - mean;
      var += d * d;
    }
    out[m] = std::sqrt(var / static_cast<double>(config_.snapshots));
  }
  return out;
}

Vector Era5Synthetic::area_weights() const {
  Vector w(grid_size());
  double sum = 0.0;
  for (Index la = 0; la < config_.n_lat; ++la) {
    const double theta =
        (-90.0 + (static_cast<double>(la) + 0.5) * 180.0 /
                     static_cast<double>(config_.n_lat)) *
        kPi / 180.0;
    const double cell = std::max(std::cos(theta), 1e-6);
    for (Index lo = 0; lo < config_.n_lon; ++lo) {
      w[grid_index(la, lo)] = cell;
      sum += cell;
    }
  }
  // Normalize to mean 1 so weighted and unweighted singular values stay
  // on comparable scales.
  const double scale = static_cast<double>(grid_size()) / sum;
  for (Index i = 0; i < w.size(); ++i) w[i] *= scale;
  return w;
}

Vector Era5Synthetic::snapshot(Index t) const {
  const Matrix block = snapshot_block(0, grid_size(), t, 1, false);
  return block.col(0);
}

Matrix Era5Synthetic::snapshot_block(Index row0, Index nrows, Index col0,
                                     Index ncols, bool subtract_mean) const {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= grid_size(),
                 "row hyperslab out of range");
  PARSVD_REQUIRE(col0 >= 0 && ncols > 0 && col0 + ncols <= config_.snapshots,
                 "snapshot hyperslab out of range");
  Matrix out(nrows, ncols);
  const std::uint64_t noise_seed = config_.seed * 0x100000001b3ULL;
  for (Index j = 0; j < ncols; ++j) {
    const Index t = col0 + j;
    double* col = out.col_data(j);
    for (Index i = 0; i < nrows; ++i) {
      const Index cell = row0 + i;
      double v = subtract_mean ? 0.0 : mean_[cell];
      for (Index m = 0; m < config_.n_modes; ++m) {
        v += amplitudes_(t, m) * modes_(cell, m);
      }
      if (config_.noise_std > 0.0) {
        const std::uint64_t key =
            noise_seed ^ (static_cast<std::uint64_t>(cell) << 24) ^
            static_cast<std::uint64_t>(t);
        v += config_.noise_std * gaussian_at(key);
      }
      col[i] = v;
    }
  }
  return out;
}

}  // namespace parsvd::workloads
