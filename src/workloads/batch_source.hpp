// Streaming batch sources: the producer side of the streaming SVD.
//
// The streaming classes consume data batch-by-batch; a BatchSource
// abstracts where batches come from — an in-memory matrix (tests,
// Burgers), an on-disk SnapshotStore (the ERA5 pipeline, where each rank
// pulls only its row block per batch: out-of-core, O(M_i · B) memory),
// or a generator called on demand.
#pragma once

#include <functional>
#include <memory>

#include "io/snapshot_store.hpp"
#include "linalg/matrix.hpp"

namespace parsvd::workloads {

class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Row count of every batch this source yields.
  virtual Index rows() const = 0;

  /// Total snapshots this source will yield across all batches.
  virtual Index total_snapshots() const = 0;

  /// Snapshots yielded so far.
  virtual Index position() const = 0;

  bool exhausted() const { return position() >= total_snapshots(); }

  /// Next batch of up to `max_cols` snapshots (fewer at the tail).
  /// Requires !exhausted().
  virtual Matrix next_batch(Index max_cols) = 0;
};

/// Serves column-batches of an in-memory matrix, optionally restricted to
/// a row block (the per-rank view of a shared dataset).
class MatrixBatchSource final : public BatchSource {
 public:
  explicit MatrixBatchSource(Matrix data);
  MatrixBatchSource(Matrix data, Index row0, Index nrows);

  Index rows() const override { return nrows_; }
  Index total_snapshots() const override { return data_.cols(); }
  Index position() const override { return cursor_; }
  Matrix next_batch(Index max_cols) override;

 private:
  Matrix data_;
  Index row0_;
  Index nrows_;
  Index cursor_ = 0;
};

/// Streams a row block of an on-disk SnapshotStore.
class StoreBatchSource final : public BatchSource {
 public:
  /// Reads rows [row0, row0 + nrows) of every snapshot in `path`.
  StoreBatchSource(const std::string& path, Index row0, Index nrows);

  Index rows() const override { return nrows_; }
  Index total_snapshots() const override { return reader_.snapshots(); }
  Index position() const override { return cursor_; }
  Matrix next_batch(Index max_cols) override;

 private:
  io::SnapshotReader reader_;
  Index row0_;
  Index nrows_;
  Index cursor_ = 0;
};

/// Adapts a generator function block(col0, ncols) → rows x ncols matrix.
class GeneratorBatchSource final : public BatchSource {
 public:
  using Generator = std::function<Matrix(Index col0, Index ncols)>;

  GeneratorBatchSource(Index rows, Index total, Generator gen);

  Index rows() const override { return rows_; }
  Index total_snapshots() const override { return total_; }
  Index position() const override { return cursor_; }
  Matrix next_batch(Index max_cols) override;

 private:
  Index rows_;
  Index total_;
  Generator gen_;
  Index cursor_ = 0;
};

/// Even row partition of `total_rows` over `size` ranks: rank r gets
/// rows [offset, offset + count). The remainder spreads over the first
/// ranks, matching the decomposition used throughout the benches.
struct RowPartition {
  Index offset;
  Index count;
};
RowPartition partition_rows(Index total_rows, int size, int rank);

}  // namespace parsvd::workloads
