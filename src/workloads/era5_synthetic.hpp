// Synthetic ERA5-like global surface-pressure dataset (paper §4.3, Fig 2).
//
// The paper extracts coherent structures from the ECMWF ERA5 surface
// pressure reanalysis, 2013-2020 at 6-hourly cadence.  That dataset is
// proprietary-access (Copernicus CDS) and unavailable here, so we build a
// statistically analogous field with *known* structure (the substitution
// preserves — and strengthens — the experiment: the paper could only plot
// its modes, we can also verify them):
//
//   p(x, t) = p̄(x) + Σ_k a_k(t) φ_k(x) + ε(x, t)
//
//   * p̄        — climatological mean: ~1013 hPa sea-level baseline with
//                a latitudinal profile (subtropical highs, polar lows);
//   * φ_k      — orthonormal spatial modes built from planetary-wave
//                patterns (annular/hemispheric seesaw, zonal wavenumbers
//                1-3) on the lat-lon grid, Gram-Schmidt orthonormalized;
//   * a_k(t)   — amplitudes with strictly decreasing variances mixing a
//                deterministic oscillation (distinct planetary-wave
//                harmonic per mode, 32-day base period) with an AR(1)
//                stochastic component (red spectrum, like real weather);
//   * ε        — small white measurement noise.
//
// Because the φ_k are exactly orthonormal with well-separated amplitude
// variances, the leading left singular vectors of the (mean-subtracted)
// snapshot matrix converge to ±φ_k — giving the Fig. 2 bench a ground
// truth to score against.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace parsvd::workloads {

struct Era5Config {
  Index n_lon = 144;        ///< 2.5° longitude grid
  Index n_lat = 72;         ///< 2.5° latitude grid
  Index snapshots = 11688;  ///< 8 years at 6-hourly cadence (2013-2020)
  Index n_modes = 6;        ///< planted coherent structures
  double base_pressure = 1013.25;  ///< hPa
  double leading_amplitude = 12.0; ///< std-dev of mode-1 amplitude, hPa
  double amplitude_decay = 0.6;    ///< σ_{k+1} = decay · σ_k
  double noise_std = 0.05;         ///< white measurement noise, hPa
  std::uint64_t seed = 2013;

  void validate() const;
};

class Era5Synthetic {
 public:
  explicit Era5Synthetic(const Era5Config& config = {});

  const Era5Config& config() const { return config_; }

  Index grid_size() const { return config_.n_lon * config_.n_lat; }
  Index snapshots() const { return config_.snapshots; }

  /// Ground-truth orthonormal spatial modes (grid_size x n_modes).
  const Matrix& true_modes() const { return modes_; }

  /// Planted amplitude series (snapshots x n_modes).
  const Matrix& amplitudes() const { return amplitudes_; }

  /// Standard deviation of each planted amplitude (descending).
  Vector amplitude_std() const;

  /// Climatological mean field (grid_size).
  const Vector& mean_field() const { return mean_; }

  /// One snapshot (grid_size), `t` in [0, snapshots).
  Vector snapshot(Index t) const;

  /// Hyperslab of the snapshot matrix: rows [row0, row0+nrows) of
  /// snapshots [col0, col0+ncols). When `subtract_mean` is set the
  /// climatology is removed (the form whose SVD recovers φ_k).
  Matrix snapshot_block(Index row0, Index nrows, Index col0, Index ncols,
                        bool subtract_mean = false) const;

  /// Flattened grid index of (lat, lon).
  Index grid_index(Index lat, Index lon) const {
    return lat * config_.n_lon + lon;
  }

  /// Cell-area weights (proportional to cos(latitude), the standard EOF
  /// weighting on regular lat-lon grids), normalized to mean 1.
  /// Pass as StreamingOptions::row_weights for area-true modes.
  Vector area_weights() const;

 private:
  void build_modes();
  void build_amplitudes();

  Era5Config config_;
  Matrix modes_;       // grid x n_modes, orthonormal columns
  Matrix amplitudes_;  // snapshots x n_modes
  Vector mean_;        // grid
  mutable Rng noise_base_;  // split per (row, col) for deterministic noise
};

}  // namespace parsvd::workloads
