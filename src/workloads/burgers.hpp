// Viscous Burgers equation workload (paper §4.3, Eq. 12-13).
//
// The paper's first experiment factors a snapshot matrix built from the
// closed-form solution
//
//   u(x,t) = (x / (t+1)) / (1 + sqrt((t+1)/t0) · exp(Re x² / (4t+4)))
//
// with t0 = exp(Re/8), on x ∈ [0, 1], t ∈ (0, 2], Re = 1000, 16384 grid
// points and 800 snapshots.  Because the solution is analytic we generate
// snapshots directly (exactly as the authors did) — no PDE solver in the
// loop — and tests verify the generator by checking the PDE residual
// u_t + u u_x - ν u_xx ≈ 0 with finite differences.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd::workloads {

struct BurgersConfig {
  Index grid_points = 16384;
  Index snapshots = 800;
  double length = 1.0;     ///< domain size L
  double t_final = 2.0;    ///< final time
  double reynolds = 1000;  ///< Re = 1/ν

  void validate() const;
};

class Burgers {
 public:
  explicit Burgers(const BurgersConfig& config = {});

  const BurgersConfig& config() const { return config_; }

  /// Closed-form solution value (Eq. 13).
  double solution(double x, double t) const;

  /// Grid coordinates x_i = i · L / (M - 1).
  Vector grid() const;

  /// Snapshot time t_j = (j + 1) · t_final / N, j in [0, N).
  double time_at(Index j) const;

  /// One full-grid snapshot at time t.
  Vector snapshot(double t) const;

  /// Full snapshot matrix (grid_points x snapshots).
  Matrix snapshot_matrix() const;

  /// Row-block of the snapshot matrix: rows [row0, row0 + nrows) of all
  /// snapshot columns [col0, col0 + ncols). Generates only what a rank
  /// needs — the distributed benches never materialize the global matrix.
  Matrix snapshot_block(Index row0, Index nrows, Index col0, Index ncols) const;

 private:
  BurgersConfig config_;
  double t0_;  // exp(Re / 8)
};

}  // namespace parsvd::workloads
