#include "workloads/prefetch_source.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace parsvd::workloads {

namespace {

obs::Gauge& occupancy_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("prefetch.occupancy");
  return g;
}

}  // namespace

PrefetchingBatchSource::PrefetchingBatchSource(
    std::unique_ptr<BatchSource> inner, Index batch_cols, std::size_t depth)
    : inner_(std::move(inner)),
      batch_cols_(batch_cols),
      depth_(depth),
      rows_(inner_->rows()),
      total_(inner_->total_snapshots()) {
  PARSVD_REQUIRE(inner_ != nullptr, "prefetch: null inner source");
  PARSVD_REQUIRE(batch_cols_ > 0, "prefetch: batch_cols must be positive");
  PARSVD_REQUIRE(depth_ > 0, "prefetch: depth must be positive");
  PARSVD_REQUIRE(inner_->position() == 0,
                 "prefetch: inner source already consumed");
  worker_ = std::thread([this] { worker_loop(); });
}

PrefetchingBatchSource::~PrefetchingBatchSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  consumed_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Index PrefetchingBatchSource::position() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

Matrix PrefetchingBatchSource::next_batch(Index max_cols) {
  PARSVD_REQUIRE(max_cols == batch_cols_,
                 "prefetch: next_batch width must match the configured "
                 "batch_cols (the worker already chose batch boundaries)");
  std::unique_lock<std::mutex> lock(mu_);
  produced_.wait(lock, [this] {
    return !queue_.empty() || error_ != nullptr || inner_done_;
  });
  if (queue_.empty()) {
    if (error_ != nullptr) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
    PARSVD_REQUIRE(false, "prefetch: next_batch past exhaustion");
  }
  Matrix batch = std::move(queue_.front());
  queue_.pop_front();
  occupancy_gauge().set(static_cast<std::int64_t>(queue_.size()));
  delivered_ += batch.cols();
  lock.unlock();
  consumed_.notify_one();
  return batch;
}

void PrefetchingBatchSource::worker_loop() {
  obs::set_thread_identity(-1, 91, "prefetch");
  // The worker is the sole toucher of inner_ from here on; only the
  // queue handoff needs the lock, so inner_->next_batch (the expensive
  // ingest) runs outside it and genuinely overlaps the consumer.
  try {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        consumed_.wait(lock, [this] { return queue_.size() < depth_ || stop_; });
        if (stop_) return;
      }
      if (inner_->exhausted()) break;
      Matrix batch = [&] {
        PARSVD_TRACE_SCOPE("prefetch.ingest");
        return inner_->next_batch(batch_cols_);
      }();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
        queue_.push_back(std::move(batch));
        const auto depth = static_cast<std::int64_t>(queue_.size());
        occupancy_gauge().set(depth);
        occupancy_gauge().track_max(depth);
      }
      produced_.notify_one();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inner_done_ = true;
  }
  produced_.notify_all();
}

}  // namespace parsvd::workloads
