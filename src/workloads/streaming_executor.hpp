// Pipelined streaming executor: drives any SvdBase over a BatchSource.
//
// This is the ingest loop every bench and example used to hand-write
// (initialize on the first batch, incorporate_data until exhaustion),
// packaged so the pipelining is a flag: with prefetch on, batches are
// pulled by a PrefetchingBatchSource worker thread and the solver's
// compute overlaps the next batch's ingest latency. Batch boundaries
// are identical either way, so the factorization is bit-for-bit the
// same with prefetch on or off.
#pragma once

#include <memory>

#include "core/streaming.hpp"
#include "workloads/batch_source.hpp"

namespace parsvd::workloads {

struct StreamingExecutorOptions {
  /// Columns per streaming batch (the tail batch may be smaller).
  Index batch_cols = 32;
  /// Pull batches ahead on a background thread.
  bool prefetch = true;
  /// Queue depth when prefetching; 2 = double buffering.
  std::size_t prefetch_depth = 2;
};

/// Feeds every batch of `source` into `svd` (initialize on the first,
/// incorporate_data on the rest). Takes ownership of the source — with
/// prefetch enabled it is handed to a worker thread. Collective when
/// `svd` is a ParallelStreamingSVD: every rank passes its own row-block
/// source and the same options. Returns the number of batches ingested.
Index run_streaming(SvdBase& svd, std::unique_ptr<BatchSource> source,
                    const StreamingExecutorOptions& opts = {});

}  // namespace parsvd::workloads
