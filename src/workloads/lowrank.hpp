// Synthetic matrices with a prescribed singular spectrum — the standard
// rig for validating and benchmarking randomized SVD accuracy (§3.3).
#pragma once

#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace parsvd::workloads {

/// A = U diag(spectrum) Vᵀ with Haar-ish random orthonormal U (m x k) and
/// V (n x k), k = spectrum.size() <= min(m, n). The singular values of A
/// are exactly `spectrum` (which must be non-negative, descending).
Matrix synthetic_low_rank(Index m, Index n, const Vector& spectrum, Rng& rng);

/// Geometric spectrum: s_i = first · ratio^i, length k.
Vector geometric_spectrum(Index k, double first, double ratio);

/// Slowly-decaying algebraic spectrum: s_i = first / (1 + i)^power.
Vector algebraic_spectrum(Index k, double first, double power);

/// Random matrix with orthonormal columns (m x k), from QR of a Gaussian.
Matrix random_orthonormal(Index m, Index k, Rng& rng);

}  // namespace parsvd::workloads
