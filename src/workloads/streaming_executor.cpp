#include "workloads/streaming_executor.hpp"

#include <utility>

#include "workloads/prefetch_source.hpp"

namespace parsvd::workloads {

Index run_streaming(SvdBase& svd, std::unique_ptr<BatchSource> source,
                    const StreamingExecutorOptions& opts) {
  PARSVD_REQUIRE(source != nullptr, "run_streaming: null source");
  PARSVD_REQUIRE(opts.batch_cols > 0,
                 "run_streaming: batch_cols must be positive");
  PARSVD_REQUIRE(!source->exhausted(), "run_streaming: source is empty");

  if (opts.prefetch) {
    source = std::make_unique<PrefetchingBatchSource>(
        std::move(source), opts.batch_cols, opts.prefetch_depth);
  }

  Index batches = 0;
  svd.initialize(source->next_batch(opts.batch_cols));
  ++batches;
  while (!source->exhausted()) {
    svd.incorporate_data(source->next_batch(opts.batch_cols));
    ++batches;
  }
  return batches;
}

}  // namespace parsvd::workloads
