#include "workloads/streaming_executor.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workloads/prefetch_source.hpp"

namespace parsvd::workloads {

Index run_streaming(SvdBase& svd, std::unique_ptr<BatchSource> source,
                    const StreamingExecutorOptions& opts) {
  PARSVD_REQUIRE(source != nullptr, "run_streaming: null source");
  PARSVD_REQUIRE(opts.batch_cols > 0,
                 "run_streaming: batch_cols must be positive");
  PARSVD_REQUIRE(!source->exhausted(), "run_streaming: source is empty");
  PARSVD_TRACE_SCOPE("stream.run");
  static obs::Counter& batch_count =
      obs::Registry::global().counter("stream.batches");

  if (opts.prefetch) {
    source = std::make_unique<PrefetchingBatchSource>(
        std::move(source), opts.batch_cols, opts.prefetch_depth);
  }

  const auto pull = [&] {
    PARSVD_TRACE_SCOPE("stream.ingest");
    return source->next_batch(opts.batch_cols);
  };

  Index batches = 0;
  {
    PARSVD_TRACE_SCOPE("stream.initialize");
    svd.initialize(pull());
  }
  ++batches;
  batch_count.add(1);
  while (!source->exhausted()) {
    PARSVD_TRACE_SCOPE("stream.incorporate");
    svd.incorporate_data(pull());
    ++batches;
    batch_count.add(1);
  }
  return batches;
}

}  // namespace parsvd::workloads
