#include "workloads/batch_source.hpp"

#include <algorithm>

namespace parsvd::workloads {

MatrixBatchSource::MatrixBatchSource(Matrix data)
    : data_(std::move(data)), row0_(0), nrows_(data_.rows()) {}

MatrixBatchSource::MatrixBatchSource(Matrix data, Index row0, Index nrows)
    : data_(std::move(data)), row0_(row0), nrows_(nrows) {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= data_.rows(),
                 "row block out of range");
}

Matrix MatrixBatchSource::next_batch(Index max_cols) {
  PARSVD_REQUIRE(max_cols > 0, "batch width must be positive");
  PARSVD_REQUIRE(!exhausted(), "source exhausted");
  const Index take = std::min(max_cols, data_.cols() - cursor_);
  Matrix batch = data_.block(row0_, cursor_, nrows_, take);
  cursor_ += take;
  return batch;
}

StoreBatchSource::StoreBatchSource(const std::string& path, Index row0,
                                   Index nrows)
    : reader_(path), row0_(row0), nrows_(nrows) {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= reader_.rows(),
                 "row block out of range");
}

Matrix StoreBatchSource::next_batch(Index max_cols) {
  PARSVD_REQUIRE(max_cols > 0, "batch width must be positive");
  PARSVD_REQUIRE(!exhausted(), "source exhausted");
  const Index take = std::min(max_cols, reader_.snapshots() - cursor_);
  Matrix batch = reader_.read_rows(row0_, nrows_, cursor_, take);
  cursor_ += take;
  return batch;
}

GeneratorBatchSource::GeneratorBatchSource(Index rows, Index total,
                                           Generator gen)
    : rows_(rows), total_(total), gen_(std::move(gen)) {
  PARSVD_REQUIRE(rows > 0 && total > 0, "empty generator source");
  PARSVD_REQUIRE(gen_ != nullptr, "null generator");
}

Matrix GeneratorBatchSource::next_batch(Index max_cols) {
  PARSVD_REQUIRE(max_cols > 0, "batch width must be positive");
  PARSVD_REQUIRE(!exhausted(), "source exhausted");
  const Index take = std::min(max_cols, total_ - cursor_);
  Matrix batch = gen_(cursor_, take);
  PARSVD_REQUIRE(batch.rows() == rows_ && batch.cols() == take,
                 "generator returned a wrong-shaped batch");
  cursor_ += take;
  return batch;
}

RowPartition partition_rows(Index total_rows, int size, int rank) {
  PARSVD_REQUIRE(size >= 1, "partition size must be >= 1");
  PARSVD_REQUIRE(rank >= 0 && rank < size, "rank out of range");
  PARSVD_REQUIRE(total_rows >= size, "fewer rows than ranks");
  const Index base = total_rows / size;
  const Index extra = total_rows % size;
  const Index count = base + (rank < extra ? 1 : 0);
  const Index offset = static_cast<Index>(rank) * base +
                       std::min<Index>(rank, extra);
  return {offset, count};
}

}  // namespace parsvd::workloads
