#include "workloads/lowrank.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace parsvd::workloads {

Matrix random_orthonormal(Index m, Index k, Rng& rng) {
  PARSVD_REQUIRE(k <= m, "cannot have more orthonormal columns than rows");
  Matrix g = Matrix::gaussian(m, k, rng);
  QrResult qr = qr_thin(g);
  return std::move(qr.q);
}

Matrix synthetic_low_rank(Index m, Index n, const Vector& spectrum, Rng& rng) {
  const Index k = spectrum.size();
  PARSVD_REQUIRE(k >= 1 && k <= std::min(m, n),
                 "spectrum length must be in [1, min(m, n)]");
  for (Index i = 0; i < k; ++i) {
    PARSVD_REQUIRE(spectrum[i] >= 0.0, "singular values must be >= 0");
    if (i > 0) {
      PARSVD_REQUIRE(spectrum[i] <= spectrum[i - 1],
                     "spectrum must be descending");
    }
  }
  const Matrix u = random_orthonormal(m, k, rng);
  const Matrix v = random_orthonormal(n, k, rng);
  Matrix us = u;
  for (Index j = 0; j < k; ++j) scal(spectrum[j], us.col_span(j));
  return matmul(us, v, Trans::No, Trans::Yes);
}

Vector geometric_spectrum(Index k, double first, double ratio) {
  PARSVD_REQUIRE(k >= 1, "spectrum length must be positive");
  PARSVD_REQUIRE(first > 0.0 && ratio > 0.0 && ratio <= 1.0,
                 "need first > 0 and ratio in (0, 1]");
  Vector s(k);
  double v = first;
  for (Index i = 0; i < k; ++i) {
    s[i] = v;
    v *= ratio;
  }
  return s;
}

Vector algebraic_spectrum(Index k, double first, double power) {
  PARSVD_REQUIRE(k >= 1, "spectrum length must be positive");
  PARSVD_REQUIRE(first > 0.0 && power >= 0.0, "need first > 0, power >= 0");
  Vector s(k);
  for (Index i = 0; i < k; ++i) {
    s[i] = first / std::pow(1.0 + static_cast<double>(i), power);
  }
  return s;
}

}  // namespace parsvd::workloads
