#include "workloads/burgers.hpp"

#include <cmath>

namespace parsvd::workloads {

void BurgersConfig::validate() const {
  PARSVD_REQUIRE(grid_points >= 2, "need at least 2 grid points");
  PARSVD_REQUIRE(snapshots >= 1, "need at least 1 snapshot");
  PARSVD_REQUIRE(length > 0.0, "domain length must be positive");
  PARSVD_REQUIRE(t_final > 0.0, "final time must be positive");
  PARSVD_REQUIRE(reynolds > 0.0, "Reynolds number must be positive");
}

Burgers::Burgers(const BurgersConfig& config) : config_(config) {
  config_.validate();
  t0_ = std::exp(config_.reynolds / 8.0);
}

double Burgers::solution(double x, double t) const {
  // Eq. 13. The exponential can overflow for large Re x²/(4t+4); guard by
  // noting the solution tends to 0 there.
  const double tp1 = t + 1.0;
  const double expo = config_.reynolds * x * x / (4.0 * tp1);
  if (expo > 600.0) return 0.0;
  const double denom = 1.0 + std::sqrt(tp1 / t0_) * std::exp(expo);
  return (x / tp1) / denom;
}

Vector Burgers::grid() const {
  Vector x(config_.grid_points);
  const double dx = config_.length / static_cast<double>(config_.grid_points - 1);
  for (Index i = 0; i < config_.grid_points; ++i) {
    x[i] = static_cast<double>(i) * dx;
  }
  return x;
}

double Burgers::time_at(Index j) const {
  PARSVD_REQUIRE(j >= 0 && j < config_.snapshots, "snapshot index out of range");
  return static_cast<double>(j + 1) * config_.t_final /
         static_cast<double>(config_.snapshots);
}

Vector Burgers::snapshot(double t) const {
  Vector u(config_.grid_points);
  const double dx = config_.length / static_cast<double>(config_.grid_points - 1);
  for (Index i = 0; i < config_.grid_points; ++i) {
    u[i] = solution(static_cast<double>(i) * dx, t);
  }
  return u;
}

Matrix Burgers::snapshot_matrix() const {
  return snapshot_block(0, config_.grid_points, 0, config_.snapshots);
}

Matrix Burgers::snapshot_block(Index row0, Index nrows, Index col0,
                               Index ncols) const {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= config_.grid_points,
                 "row block out of range");
  PARSVD_REQUIRE(col0 >= 0 && ncols > 0 && col0 + ncols <= config_.snapshots,
                 "snapshot block out of range");
  Matrix a(nrows, ncols);
  const double dx = config_.length / static_cast<double>(config_.grid_points - 1);
  for (Index j = 0; j < ncols; ++j) {
    const double t = time_at(col0 + j);
    double* col = a.col_data(j);
    for (Index i = 0; i < nrows; ++i) {
      col[i] = solution(static_cast<double>(row0 + i) * dx, t);
    }
  }
  return a;
}

}  // namespace parsvd::workloads
