// Double-buffered batch prefetch: the consumer side of the pipelined
// streaming executor.
//
// A PrefetchingBatchSource wraps any BatchSource and pulls its batches
// on a background thread into a small bounded queue, so the solver's
// compute phase (TSQR + root SVD of the previous batch) overlaps the
// ingest latency of the next one — the paper's streaming setting, where
// snapshots arrive from disk or a simulation and ingestion is the
// bottleneck. Batches are produced strictly in order with a FIXED
// column width, so results are bit-identical to synchronous ingestion
// with the same width.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "workloads/batch_source.hpp"

namespace parsvd::workloads {

class PrefetchingBatchSource final : public BatchSource {
 public:
  /// Wraps `inner`, prefetching batches of exactly `batch_cols` columns
  /// (fewer only at the tail) up to `depth` batches ahead. `depth` = 2
  /// is classic double buffering: one batch in flight while one waits.
  /// After construction the inner source is touched ONLY by the worker
  /// thread; callers must not retain references into it.
  PrefetchingBatchSource(std::unique_ptr<BatchSource> inner, Index batch_cols,
                         std::size_t depth = 2);

  /// Stops and joins the worker. Never throws: a pending worker
  /// exception that was never consumed is dropped here.
  ~PrefetchingBatchSource() override;

  PrefetchingBatchSource(const PrefetchingBatchSource&) = delete;
  PrefetchingBatchSource& operator=(const PrefetchingBatchSource&) = delete;

  Index rows() const override { return rows_; }
  Index total_snapshots() const override { return total_; }
  Index position() const override;

  /// `max_cols` must equal the construction-time `batch_cols`: the
  /// worker decided the batch boundaries when it ran ahead, so a
  /// different width here could not be honoured. Rethrows any exception
  /// the inner source raised on the worker thread.
  Matrix next_batch(Index max_cols) override;

 private:
  void worker_loop();

  std::unique_ptr<BatchSource> inner_;  // worker-thread-owned after start
  const Index batch_cols_;
  const std::size_t depth_;
  const Index rows_;
  const Index total_;

  mutable std::mutex mu_;
  std::condition_variable produced_;  // worker -> consumer: queue grew
  std::condition_variable consumed_;  // consumer -> worker: slot freed
  std::deque<Matrix> queue_;
  std::exception_ptr error_;
  Index delivered_ = 0;  // snapshots handed to the consumer
  bool inner_done_ = false;
  bool stop_ = false;

  std::thread worker_;  // last member: starts after state is ready
};

}  // namespace parsvd::workloads
