#include "support/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace parsvd::env {

std::optional<std::string> get(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::int64_t get_int(const std::string& name, std::int64_t fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return fallback;
  return static_cast<std::int64_t>(parsed);
}

double get_double(const std::string& name, double fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool get_bool(const std::string& name, bool fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  return fallback;
}

std::string get_string(const std::string& name, const std::string& fallback) {
  const auto v = get(name);
  return v ? *v : fallback;
}

}  // namespace parsvd::env
