// Deterministic random-number generation.
//
// The randomized SVD draws Gaussian sketch matrices; reproducibility across
// runs and across rank counts matters for testing, so we use our own
// xoshiro256** generator (public-domain algorithm by Blackman & Vigna)
// seeded through SplitMix64.  Rank-parallel code derives independent
// streams with Rng::split(stream_id) instead of sharing one generator.
#pragma once

#include <cstdint>
#include <vector>

namespace parsvd {

/// xoshiro256** pseudo-random generator with Gaussian sampling helpers.
class Rng {
 public:
  /// Seeds the state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via the Marsaglia polar method (cached spare).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Fill `out` with i.i.d. standard normals.
  void fill_gaussian(double* out, std::size_t n);

  /// Deterministically derive an independent stream (e.g. one per rank).
  /// split(a) and split(b) with a != b produce decorrelated generators.
  Rng split(std::uint64_t stream_id) const;

  /// Satisfy UniformRandomBitGenerator so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace parsvd
