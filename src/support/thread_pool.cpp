#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace parsvd {

namespace {

obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.tasks");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("pool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn one fewer
  // worker than the requested concurrency.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      // Worker tids start at 1: tid 0 on the shared-thread trace row is
      // whatever non-rank thread drives parallel_for from outside run_on.
      obs::set_thread_identity(-1, static_cast<int>(i) + 1, "pool-worker");
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      PARSVD_TRACE_SCOPE("pool.chunk");
      tasks_counter().add(1);
      task.body(task.begin, task.end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(task.group->mu);
      if (err && !task.group->error) task.group->error = err;
      if (--task.group->pending == 0) task.group->cv.notify_all();
    }
  }
}

bool ThreadPool::run_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  std::exception_ptr err;
  try {
    PARSVD_TRACE_SCOPE("pool.chunk");
    tasks_counter().add(1);
    task.body(task.begin, task.end);
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(task.group->mu);
    if (err && !task.group->error) task.group->error = err;
    if (--task.group->pending == 0) task.group->cv.notify_all();
  }
  return true;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body_range,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t concurrency = workers_.size() + 1;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (4 * concurrency));
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1 || concurrency == 1) {
    body_range(begin, end);
    return;
  }

  PARSVD_TRACE_SCOPE("pool.parallel_for");
  Group group;
  group.pending = chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      queue_.push_back(Task{body_range, lo, hi, &group});
    }
    const auto depth = static_cast<std::int64_t>(queue_.size());
    queue_depth_gauge().set(depth);
    queue_depth_gauge().track_max(depth);
  }
  cv_.notify_all();

  // Help drain the queue instead of blocking immediately; this keeps the
  // calling thread productive and avoids idle cores for small pools.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(group.mu);
      if (group.pending == 0) break;
    }
    if (!run_one()) {
      std::unique_lock<std::mutex> lock(group.mu);
      group.cv.wait(lock, [&group] { return group.pending == 0; });
      break;
    }
  }
  if (group.error) std::rethrow_exception(group.error);
}

namespace {

std::size_t env_thread_count() {
  if (const char* env = std::getenv("PARSVD_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

std::mutex& global_pool_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(env_thread_count());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  slot.reset();  // join the old workers before spawning the new pool
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace parsvd
