// Error-handling primitives shared by every parsvd module.
//
// All recoverable failures are reported through exceptions derived from
// parsvd::Error so callers can catch one base type.  Precondition checks in
// public APIs use PARSVD_REQUIRE (always on); internal invariants that are
// cheap to test use PARSVD_CHECK (also always on — the kernels here are not
// hot enough for the cost to matter; hot inner loops avoid checks entirely).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace parsvd {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape / index mismatches in linear-algebra entry points.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// Iterative kernel failed to reach its tolerance within its budget.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// Filesystem / serialization failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Misuse of the message-passing runtime (bad rank, mismatched sizes, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// A blocking pmpi wait exceeded its configured timeout budget (including
/// bounded retries) — the typed replacement for a silent deadlock when a
/// message is lost and cannot be recovered.
class CommTimeout : public CommError {
 public:
  explicit CommTimeout(const std::string& what) : CommError(what) {}
};

/// A pmpi operation needed a rank that has been marked dead (killed by
/// fault injection) and whose contribution is not recoverable.
class RankDeadError : public CommError {
 public:
  explicit RankDeadError(const std::string& what) : CommError(what) {}
};

/// Thrown inside the rank a FaultPlan kills. The run() harness treats it
/// as an injected death (recorded in Context::dead_ranks(), not rethrown);
/// survivors decide the job's fate — degraded completion or typed failure.
class RankKilledError : public CommError {
 public:
  explicit RankKilledError(const std::string& what) : CommError(what) {}
};

/// A blocked pmpi wait()/barrier() was woken by Context::abort_job()
/// after ANOTHER rank failed — a secondary victim, not the root cause.
/// run() uses the distinct type to rethrow the originating error instead
/// of whichever victim happened to sit at the lowest rank index.
class JobAbortedError : public CommError {
 public:
  explicit JobAbortedError(const std::string& what) : CommError(what) {}
};

/// Invalid user-provided configuration (negative rank counts etc.).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_failed_check(const char* kind, const char* expr,
                                     const std::string& msg,
                                     std::source_location loc);
}  // namespace detail

}  // namespace parsvd

/// Validate a caller-supplied precondition; throws parsvd::Error on failure.
#define PARSVD_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::parsvd::detail::throw_failed_check("precondition", #cond, (msg),   \
                                           std::source_location::current()); \
    }                                                                      \
  } while (false)

/// Validate an internal invariant; throws parsvd::Error on failure.
#define PARSVD_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::parsvd::detail::throw_failed_check("invariant", #cond, (msg),      \
                                           std::source_location::current()); \
    }                                                                      \
  } while (false)
