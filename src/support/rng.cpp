#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace parsvd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // All-zero state is the one invalid configuration for xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x1ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PARSVD_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling removes modulo bias.
  const std::uint64_t threshold = (~0ULL - n + 1) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

void Rng::fill_gaussian(double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = gaussian();
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Mix the child id with the parent state through SplitMix64 so the
  // derived stream is decorrelated even for adjacent stream_ids.
  std::uint64_t mix = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  return Rng(splitmix64(mix));
}

}  // namespace parsvd
