// Wall-clock timing utilities used by the benchmark harnesses and the
// weak-scaling experiment.
//
// Stopwatch is a plain start/stop accumulator; TimingRegistry aggregates
// named sections (count / total / min / max) so a bench binary can print a
// per-phase breakdown, e.g. local-QR vs gather vs root-SVD in APMOS.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace parsvd {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Unlike wall time this excludes scheduler contention, so timing a
/// thread-backed "rank" with it approximates the cost on a dedicated
/// core — the quantity the weak-scaling bench models (DESIGN.md §1).
double thread_cpu_seconds();

/// Monotonic wall-clock stopwatch with lap accumulation.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  /// Starts (or restarts) the current lap.
  void start() { start_ = clock::now(); running_ = true; }

  /// Ends the current lap and folds it into the running total.
  /// Returns the lap duration in seconds; 0 if not running.
  double stop();

  /// Total accumulated seconds over all completed laps.
  double total_seconds() const { return total_; }

  /// Seconds elapsed in the current lap (0 when stopped).
  double lap_seconds() const;

  /// Number of completed laps.
  std::size_t laps() const { return laps_; }

  void reset() { total_ = 0.0; laps_ = 0; running_ = false; }

 private:
  clock::time_point start_{};
  double total_ = 0.0;
  std::size_t laps_ = 0;
  bool running_ = false;
};

/// Capped exponential retry-delay schedule, used by the pmpi reliability
/// layer to extend a timed-out wait: next() yields base, base*factor,
/// base*factor^2, ... clamped to `cap`.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(
      std::chrono::milliseconds base, double factor = 2.0,
      std::chrono::milliseconds cap = std::chrono::milliseconds(10000));

  /// Current delay; advances the schedule.
  std::chrono::milliseconds next();

  void reset() { current_ = base_; }

 private:
  std::chrono::milliseconds base_;
  std::chrono::milliseconds cap_;
  std::chrono::milliseconds current_;
  double factor_;
};

/// Aggregated statistics for one named timing section.
struct TimingStats {
  std::size_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : total / static_cast<double>(count); }
};

/// Thread-safe registry of named section timings.
class TimingRegistry {
 public:
  /// Record one observation of `seconds` under `name`.
  void record(const std::string& name, double seconds);

  /// Snapshot of all sections, sorted by name.
  std::vector<std::pair<std::string, TimingStats>> snapshot() const;

  TimingStats stats(const std::string& name) const;

  void clear();

  /// Render a fixed-width table (one row per section) for bench output.
  std::string format_table() const;

  /// Process-wide registry used by default by ScopedTimer.
  static TimingRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, TimingStats> sections_;
};

/// RAII timer: records elapsed wall time into a registry on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name,
                       TimingRegistry& registry = TimingRegistry::global())
      : name_(std::move(name)), registry_(registry) {
    watch_.start();
  }
  ~ScopedTimer() { registry_.record(name_, watch_.stop()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  TimingRegistry& registry_;
  Stopwatch watch_;
};

}  // namespace parsvd
