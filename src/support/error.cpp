#include "support/error.hpp"

#include <sstream>

namespace parsvd::detail {

void throw_failed_check(const char* kind, const char* expr,
                        const std::string& msg, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " [" << kind << " failed] "
     << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace parsvd::detail
