#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace parsvd::log {
namespace {

std::atomic<Level>& level_storage() {
  static std::atomic<Level> lvl = [] {
    if (const char* env = std::getenv("PARSVD_LOG_LEVEL")) {
      return parse_level(env);
    }
    return Level::Warn;
  }();
  return lvl;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info:  return "INFO ";
    case Level::Warn:  return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level lvl) {
  level_storage().store(lvl, std::memory_order_relaxed);
}

Level parse_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return Level::Trace;
  if (lower == "debug") return Level::Debug;
  if (lower == "info") return Level::Info;
  if (lower == "warn" || lower == "warning") return Level::Warn;
  if (lower == "error") return Level::Error;
  if (lower == "off" || lower == "none") return Level::Off;
  return Level::Warn;
}

void write(Level lvl, std::string_view msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[parsvd %s] %.*s\n", level_name(lvl),
               static_cast<int>(msg.size()), msg.data());
  std::fflush(stderr);
}

}  // namespace parsvd::log
