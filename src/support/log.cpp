#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace parsvd::log {
namespace {

std::atomic<Level>& level_storage() {
  static std::atomic<Level> lvl = [] {
    if (const char* env = std::getenv("PARSVD_LOG_LEVEL")) {
      return parse_level(env);
    }
    return Level::Warn;
  }();
  return lvl;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info:  return "INFO ";
    case Level::Warn:  return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off:   return "OFF  ";
  }
  return "?????";
}

obs::Counter& level_counter(Level lvl) {
  // One registry series per level (log.messages.<level>), resolved once.
  static obs::Counter& trace_c = obs::Registry::global().counter("log.messages.trace");
  static obs::Counter& debug_c = obs::Registry::global().counter("log.messages.debug");
  static obs::Counter& info_c = obs::Registry::global().counter("log.messages.info");
  static obs::Counter& warn_c = obs::Registry::global().counter("log.messages.warn");
  static obs::Counter& error_c = obs::Registry::global().counter("log.messages.error");
  static obs::Counter& other_c = obs::Registry::global().counter("log.messages.other");
  switch (lvl) {
    case Level::Trace: return trace_c;
    case Level::Debug: return debug_c;
    case Level::Info:  return info_c;
    case Level::Warn:  return warn_c;
    case Level::Error: return error_c;
    case Level::Off:   return other_c;
  }
  return other_c;
}

}  // namespace

Level level() { return level_storage().load(std::memory_order_relaxed); }

void set_level(Level lvl) {
  level_storage().store(lvl, std::memory_order_relaxed);
}

Level parse_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return Level::Trace;
  if (lower == "debug") return Level::Debug;
  if (lower == "info") return Level::Info;
  if (lower == "warn" || lower == "warning") return Level::Warn;
  if (lower == "error") return Level::Error;
  if (lower == "off" || lower == "none") return Level::Off;
  return Level::Warn;
}

void write(Level lvl, std::string_view msg) {
  level_counter(lvl).add(1);
  // Monotonic milliseconds since the first log line of the process: line
  // ordering stays interpretable across rank threads without wall-clock
  // reads (the obs clock is the steady clock, or the fake one in tests).
  static const std::int64_t base_ns = obs::clock().now_ns();
  const std::int64_t elapsed_ns = obs::clock().now_ns() - base_ns;
  const double elapsed_ms = static_cast<double>(elapsed_ns) / 1e6;
  // Rank tag: rank threads registered via obs::set_thread_identity print
  // r<N>; shared/unregistered threads print r-.
  char rank_tag[16];
  const int rank = obs::current_rank();
  if (rank >= 0) {
    std::snprintf(rank_tag, sizeof(rank_tag), "r%d", rank);
  } else {
    std::snprintf(rank_tag, sizeof(rank_tag), "r-");
  }
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[parsvd %s +%.3fms %s] %.*s\n", rank_tag, elapsed_ms,
               level_name(lvl), static_cast<int>(msg.size()), msg.data());
  std::fflush(stderr);
}

}  // namespace parsvd::log
