// Minimal leveled logger.
//
// Intended for library diagnostics, not high-frequency tracing: each call
// takes a global mutex so interleaved multi-rank output stays line-atomic.
// The level defaults to Warn and can be raised via PARSVD_LOG_LEVEL
// (trace|debug|info|warn|error|off) or set_level().
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace parsvd::log {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current threshold; messages below it are dropped.
Level level();
void set_level(Level lvl);

/// Parse "info", "debug", ... (case-insensitive). Unknown → Warn.
Level parse_level(std::string_view text);

/// Emit one line (thread-safe, flushes stderr).
void write(Level lvl, std::string_view msg);

namespace detail {
template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void trace(Args&&... args) { detail::emit(Level::Trace, std::forward<Args>(args)...); }
template <typename... Args>
void debug(Args&&... args) { detail::emit(Level::Debug, std::forward<Args>(args)...); }
template <typename... Args>
void info(Args&&... args) { detail::emit(Level::Info, std::forward<Args>(args)...); }
template <typename... Args>
void warn(Args&&... args) { detail::emit(Level::Warn, std::forward<Args>(args)...); }
template <typename... Args>
void error(Args&&... args) { detail::emit(Level::Error, std::forward<Args>(args)...); }

}  // namespace parsvd::log
