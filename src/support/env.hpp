// Typed environment-variable lookup used by benches and examples so runs
// can be parameterized without recompiling (e.g. PARSVD_RANKS=8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace parsvd::env {

/// Raw lookup; nullopt when unset.
std::optional<std::string> get(const std::string& name);

/// Parse as int64; returns fallback when unset or malformed.
std::int64_t get_int(const std::string& name, std::int64_t fallback);

/// Parse as double; returns fallback when unset or malformed.
double get_double(const std::string& name, double fallback);

/// Returns fallback when unset; "1/true/yes/on" → true (case-insensitive).
bool get_bool(const std::string& name, bool fallback);

/// String with fallback.
std::string get_string(const std::string& name, const std::string& fallback);

}  // namespace parsvd::env
