// Fixed-size thread pool with a blocking parallel_for.
//
// Used by the shared-memory GEMM kernels (linalg) for intra-rank
// parallelism; the distributed ranks themselves are managed by pmpi, not by
// this pool.  parallel_for splits [begin, end) into contiguous chunks, runs
// them on the workers plus the calling thread, and rethrows the first
// worker exception on completion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parsvd {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run body(i) for every i in [begin, end), partitioned into at most
  /// `grain`-sized contiguous chunks. Blocks until all chunks finish.
  /// grain == 0 picks a chunk size that yields ~4 chunks per worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body_range,
                    std::size_t grain = 0);

  /// Process-wide pool sized from PARSVD_NUM_THREADS (default: hardware).
  static ThreadPool& global();

  /// Replace the process-wide pool with one of `threads` workers (0 =
  /// hardware). Used by benchmarks sweeping thread counts; must not be
  /// called while a parallel_for on the old pool is in flight.
  static void set_global_threads(std::size_t threads);

 private:
  struct Group;

  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin;
    std::size_t end;
    // Completion bookkeeping shared by all chunks of one parallel_for.
    Group* group;
  };

  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  bool run_one();  // returns false if queue empty

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace parsvd
