#include "support/timer.hpp"

#include <ctime>

#include <algorithm>
#include <cstdio>

namespace parsvd {

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

ExponentialBackoff::ExponentialBackoff(std::chrono::milliseconds base,
                                       double factor,
                                       std::chrono::milliseconds cap)
    : base_(std::max(base, std::chrono::milliseconds(1))),
      cap_(std::max(cap, base_)),
      current_(base_),
      factor_(std::max(factor, 1.0)) {}

std::chrono::milliseconds ExponentialBackoff::next() {
  const std::chrono::milliseconds delay = current_;
  const auto scaled = static_cast<long long>(
      static_cast<double>(current_.count()) * factor_);
  current_ = std::min(cap_, std::chrono::milliseconds(scaled));
  return delay;
}

double Stopwatch::stop() {
  if (!running_) return 0.0;
  const double lap = lap_seconds();
  total_ += lap;
  ++laps_;
  running_ = false;
  return lap;
}

double Stopwatch::lap_seconds() const {
  if (!running_) return 0.0;
  const auto now = clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

void TimingRegistry::record(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sections_.try_emplace(name);
  TimingStats& s = it->second;
  if (inserted || s.count == 0) {
    s.min = seconds;
    s.max = seconds;
  } else {
    s.min = std::min(s.min, seconds);
    s.max = std::max(s.max, seconds);
  }
  s.total += seconds;
  ++s.count;
}

std::vector<std::pair<std::string, TimingStats>> TimingRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {sections_.begin(), sections_.end()};
}

TimingStats TimingRegistry::stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sections_.find(name);
  return it == sections_.end() ? TimingStats{} : it->second;
}

void TimingRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sections_.clear();
}

std::string TimingRegistry::format_table() const {
  const auto rows = snapshot();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %8s %12s %12s %12s %12s\n",
                "section", "count", "total[s]", "mean[s]", "min[s]", "max[s]");
  out += line;
  for (const auto& [name, s] : rows) {
    std::snprintf(line, sizeof(line), "%-32s %8zu %12.6f %12.6f %12.6f %12.6f\n",
                  name.c_str(), s.count, s.total, s.mean(), s.min, s.max);
    out += line;
  }
  return out;
}

TimingRegistry& TimingRegistry::global() {
  static TimingRegistry registry;
  return registry;
}

}  // namespace parsvd
