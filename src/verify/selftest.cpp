#include "verify/selftest.hpp"

#include <utility>

#include "pmpi/tags.hpp"

namespace parsvd::verify {

namespace {

namespace tags = pmpi::tags;

/// A flat broadcast whose rank-2 receive was dropped: root's second
/// send is never consumed.
SeededDefect dropped_recv() {
  Schedule s = make_schedule("bad:dropped-recv (flat bcast p=4)", 4);
  for (int dst = 1; dst < 4; ++dst) {
    s.ranks[0].send(dst, tags::kBcast, 64, "bcast copy");
  }
  s.ranks[1].recv(0, tags::kBcast, 64, "bcast");
  // rank 2: receive dropped — the seeded defect.
  s.ranks[3].recv(0, tags::kBcast, 64, "bcast");
  return {std::move(s), Violation::Kind::UnmatchedSend};
}

/// A point-to-point exchange on a raw tag no tags.hpp band reserves.
SeededDefect rogue_tag() {
  Schedule s = make_schedule("bad:rogue-tag (raw tag 7)", 2);
  s.ranks[0].send(1, 7, 8, "ad-hoc tag");
  s.ranks[1].recv(0, 7, 8, "ad-hoc tag");
  return {std::move(s), Violation::Kind::UnregisteredTag};
}

/// Both ranks receive before they send: match-complete, yet no
/// execution can take a single step.
SeededDefect cyclic_wait() {
  Schedule s = make_schedule("bad:cyclic-wait (recv-before-send pair)", 2);
  s.ranks[0].recv(1, tags::kUserBase, 8, "head-of-line receive");
  s.ranks[0].send(1, tags::kUserBase, 8, "reply");
  s.ranks[1].recv(0, tags::kUserBase, 8, "head-of-line receive");
  s.ranks[1].send(0, tags::kUserBase, 8, "reply");
  return {std::move(s), Violation::Kind::Deadlock};
}

/// Two outstanding irecvs on one (dst, src, tag) channel — the
/// discipline Context::register_irecv enforces at runtime in debug
/// builds, caught here statically.
SeededDefect channel_overlap() {
  Schedule s = make_schedule("bad:channel-overlap (double irecv)", 2);
  s.ranks[0].send(1, tags::kUserBase, 8, "first");
  s.ranks[0].send(1, tags::kUserBase, 8, "second");
  const int a = s.ranks[1].irecv(0, tags::kUserBase, 8, "first post");
  const int b = s.ranks[1].irecv(0, tags::kUserBase, 8, "overlapping post");
  s.ranks[1].wait(a);
  s.ranks[1].wait(b);
  return {std::move(s), Violation::Kind::ChannelOverlap};
}

/// Sender and receiver disagree on the payload size.
SeededDefect byte_mismatch() {
  Schedule s = make_schedule("bad:byte-mismatch (16 B vs 8 B)", 2);
  s.ranks[0].send(1, tags::kBcast, 16, "sender's framing");
  s.ranks[1].recv(0, tags::kBcast, 8, "receiver's framing");
  return {std::move(s), Violation::Kind::ByteMismatch};
}

/// Two concurrent jobs on one context — a world bcast and a subgroup
/// bcast whose emitter forgot tags::group_scope. Both streams then
/// share the channel (0 -> 1, kBcast); the jobs have no cross-ordering,
/// so rank 1 legally services its group job first and the FIFO
/// interleave breaks byte-exactness. With the scope applied the streams
/// live on disjoint channels and either order is fine — this is the tag
/// hygiene the group namespace exists for.
SeededDefect unscoped_group_tag() {
  Schedule s = make_schedule(
      "bad:unscoped-group-tag (subgroup bcast missing tags::group_scope)", 4);
  for (int dst = 1; dst < 4; ++dst) {
    s.ranks[0].send(dst, tags::kBcast, 64, "world bcast");
  }
  s.ranks[0].send(1, tags::kBcast, 16, "group{0,1} bcast — UNSCOPED");
  s.ranks[1].recv(0, tags::kBcast, 16, "group{0,1} bcast — UNSCOPED");
  s.ranks[1].recv(0, tags::kBcast, 64, "world bcast");
  s.ranks[2].recv(0, tags::kBcast, 64, "world bcast");
  s.ranks[3].recv(0, tags::kBcast, 64, "world bcast");
  return {std::move(s), Violation::Kind::ByteMismatch};
}

/// rogue_tag, group edition: a scoped wire tag inside a valid group
/// band whose base tag no tags.hpp band reserves — scoping does not
/// launder an ad-hoc constant into the registry.
SeededDefect scoped_rogue_tag() {
  Schedule s = make_schedule("bad:scoped-rogue-tag (raw tag 7 in group 2)", 2);
  const int tag = tags::group_scope(2, 7);
  s.ranks[0].send(1, tag, 8, "ad-hoc tag, group-scoped");
  s.ranks[1].recv(0, tag, 8, "ad-hoc tag, group-scoped");
  return {std::move(s), Violation::Kind::UnregisteredTag};
}

}  // namespace

std::vector<SeededDefect> seeded_defects() {
  std::vector<SeededDefect> out;
  out.push_back(dropped_recv());
  out.push_back(rogue_tag());
  out.push_back(cyclic_wait());
  out.push_back(channel_overlap());
  out.push_back(byte_mismatch());
  out.push_back(unscoped_group_tag());
  out.push_back(scoped_rogue_tag());
  return out;
}

}  // namespace parsvd::verify
