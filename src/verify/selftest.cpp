#include "verify/selftest.hpp"

#include <utility>

#include "pmpi/tags.hpp"

namespace parsvd::verify {

namespace {

namespace tags = pmpi::tags;

/// A flat broadcast whose rank-2 receive was dropped: root's second
/// send is never consumed.
SeededDefect dropped_recv() {
  Schedule s = make_schedule("bad:dropped-recv (flat bcast p=4)", 4);
  for (int dst = 1; dst < 4; ++dst) {
    s.ranks[0].send(dst, tags::kBcast, 64, "bcast copy");
  }
  s.ranks[1].recv(0, tags::kBcast, 64, "bcast");
  // rank 2: receive dropped — the seeded defect.
  s.ranks[3].recv(0, tags::kBcast, 64, "bcast");
  return {std::move(s), Violation::Kind::UnmatchedSend};
}

/// A point-to-point exchange on a raw tag no tags.hpp band reserves.
SeededDefect rogue_tag() {
  Schedule s = make_schedule("bad:rogue-tag (raw tag 7)", 2);
  s.ranks[0].send(1, 7, 8, "ad-hoc tag");
  s.ranks[1].recv(0, 7, 8, "ad-hoc tag");
  return {std::move(s), Violation::Kind::UnregisteredTag};
}

/// Both ranks receive before they send: match-complete, yet no
/// execution can take a single step.
SeededDefect cyclic_wait() {
  Schedule s = make_schedule("bad:cyclic-wait (recv-before-send pair)", 2);
  s.ranks[0].recv(1, tags::kUserBase, 8, "head-of-line receive");
  s.ranks[0].send(1, tags::kUserBase, 8, "reply");
  s.ranks[1].recv(0, tags::kUserBase, 8, "head-of-line receive");
  s.ranks[1].send(0, tags::kUserBase, 8, "reply");
  return {std::move(s), Violation::Kind::Deadlock};
}

/// Two outstanding irecvs on one (dst, src, tag) channel — the
/// discipline Context::register_irecv enforces at runtime in debug
/// builds, caught here statically.
SeededDefect channel_overlap() {
  Schedule s = make_schedule("bad:channel-overlap (double irecv)", 2);
  s.ranks[0].send(1, tags::kUserBase, 8, "first");
  s.ranks[0].send(1, tags::kUserBase, 8, "second");
  const int a = s.ranks[1].irecv(0, tags::kUserBase, 8, "first post");
  const int b = s.ranks[1].irecv(0, tags::kUserBase, 8, "overlapping post");
  s.ranks[1].wait(a);
  s.ranks[1].wait(b);
  return {std::move(s), Violation::Kind::ChannelOverlap};
}

/// Sender and receiver disagree on the payload size.
SeededDefect byte_mismatch() {
  Schedule s = make_schedule("bad:byte-mismatch (16 B vs 8 B)", 2);
  s.ranks[0].send(1, tags::kBcast, 16, "sender's framing");
  s.ranks[1].recv(0, tags::kBcast, 8, "receiver's framing");
  return {std::move(s), Violation::Kind::ByteMismatch};
}

/// Two concurrent jobs on one context — a world bcast and a subgroup
/// bcast whose emitter forgot tags::group_scope. Both streams then
/// share the channel (0 -> 1, kBcast); the jobs have no cross-ordering,
/// so rank 1 legally services its group job first and the FIFO
/// interleave breaks byte-exactness. With the scope applied the streams
/// live on disjoint channels and either order is fine — this is the tag
/// hygiene the group namespace exists for.
SeededDefect unscoped_group_tag() {
  Schedule s = make_schedule(
      "bad:unscoped-group-tag (subgroup bcast missing tags::group_scope)", 4);
  for (int dst = 1; dst < 4; ++dst) {
    s.ranks[0].send(dst, tags::kBcast, 64, "world bcast");
  }
  s.ranks[0].send(1, tags::kBcast, 16, "group{0,1} bcast — UNSCOPED");
  s.ranks[1].recv(0, tags::kBcast, 16, "group{0,1} bcast — UNSCOPED");
  s.ranks[1].recv(0, tags::kBcast, 64, "world bcast");
  s.ranks[2].recv(0, tags::kBcast, 64, "world bcast");
  s.ranks[3].recv(0, tags::kBcast, 64, "world bcast");
  return {std::move(s), Violation::Kind::ByteMismatch};
}

/// rogue_tag, group edition: a scoped wire tag inside a valid group
/// band whose base tag no tags.hpp band reserves — scoping does not
/// launder an ad-hoc constant into the registry.
SeededDefect scoped_rogue_tag() {
  Schedule s = make_schedule("bad:scoped-rogue-tag (raw tag 7 in group 2)", 2);
  const int tag = tags::group_scope(2, 7);
  s.ranks[0].send(1, tag, 8, "ad-hoc tag, group-scoped");
  s.ranks[1].recv(0, tag, 8, "ad-hoc tag, group-scoped");
  return {std::move(s), Violation::Kind::UnregisteredTag};
}

// ----------------------------------------------- seeded FAULT defects
// Each schedule is healthy under check_schedule; the defect only
// surfaces once the paired kill truncates the victim. They mirror the
// recovery-path bug classes DESIGN §13 enumerates.

/// The root waits for a possibly-dead child with a NAKED receive — the
/// un-watchdogged wait the `ft-wait` lint rule bans. With rank 1 dead
/// before its post, recovery never runs: OrphanedWait.
SeededFaultDefect ft_naked_wait() {
  Schedule s = make_schedule("bad:ft-naked-wait (un-watchdogged gather root)", 3);
  s.ranks[1].send(0, tags::kFtGather, 64, "contribution");
  s.ranks[2].send(0, tags::kFtGather, 64, "contribution");
  s.ranks[0].recv(1, tags::kFtGather, 64,
                  "NAKED wait on a possibly-dead child — the defect");
  s.ranks[0].recv_bounded(2, tags::kFtGather, 64, "bounded wait");
  return {std::move(s), {/*victim=*/1, /*kill_step=*/0},
          Violation::Kind::OrphanedWait};
}

/// Recovery asks the surviving rank to retransmit the dead rank's slot
/// but reframes it with an 8-byte repair header — on the SAME channel
/// the survivor's own contribution used. The FIFO pairing of the live
/// channel breaks: ByteMismatch.
SeededFaultDefect ft_retransmit_reframed() {
  Schedule s =
      make_schedule("bad:ft-retransmit-reframed (recovery reframes a live "
                    "channel)", 3);
  s.ranks[1].send(0, tags::kFtGather, 64, "contribution");
  s.ranks[2].send(0, tags::kFtGather, 64, "contribution");
  s.ranks[2].send(0, tags::kFtGather, 72,
                  "retransmit of rank 1's slot, +8 B repair header — the "
                  "defect");
  s.ranks[0].recv_bounded(1, tags::kFtGather, 64, "bounded wait");
  s.ranks[0].recv_bounded(2, tags::kFtGather, 64, "bounded wait");
  s.ranks[0].recv(2, tags::kFtGather, 64,
                  "recovery consume — expects original framing");
  return {std::move(s), {/*victim=*/1, /*kill_step=*/0},
          Violation::Kind::ByteMismatch};
}

/// After observing the death, root's recovery release loop strides by
/// two and never releases rank 3 — a LIVE survivor stuck on a live but
/// finished peer: Deadlock (not OrphanedWait; the victim is not what
/// rank 3 waits on).
SeededFaultDefect ft_skipped_release() {
  Schedule s = make_schedule(
      "bad:ft-skipped-release (recovery forgets a live survivor)", 4);
  for (int src = 1; src < 4; ++src) {
    s.ranks[src].send(0, tags::kFtGather, 32, "contribution");
  }
  for (int src = 1; src < 4; ++src) {
    s.ranks[0].recv_bounded(src, tags::kFtGather, 32, "bounded wait");
  }
  s.ranks[0].send(2, tags::kFtBcast, 16, "release (loop strides by 2)");
  s.ranks[2].recv(0, tags::kFtBcast, 16, "release");
  s.ranks[3].recv(0, tags::kFtBcast, 16, "release — never sent: the defect");
  return {std::move(s), {/*victim=*/1, /*kill_step=*/0},
          Violation::Kind::Deadlock};
}

/// The victim's contribution DID execute before the kill, but root's
/// recovery drops the slot entirely (it skips every rank it later
/// learns is dead, consumed or not): the delivered bytes rot in root's
/// mailbox — UnmatchedSend.
SeededFaultDefect ft_dropped_contribution() {
  Schedule s = make_schedule(
      "bad:ft-dropped-contribution (root forgets the victim's delivered "
      "slot)", 3);
  s.ranks[1].send(0, tags::kFtGather, 64,
                  "contribution — executes before the kill");
  s.ranks[2].send(0, tags::kFtGather, 64, "contribution");
  s.ranks[0].recv_bounded(2, tags::kFtGather, 64,
                          "bounded wait (rank 1's slot skipped — the defect)");
  return {std::move(s), {/*victim=*/1, /*kill_step=*/1},
          Violation::Kind::UnmatchedSend};
}

}  // namespace

std::vector<SeededDefect> seeded_defects() {
  std::vector<SeededDefect> out;
  out.push_back(dropped_recv());
  out.push_back(rogue_tag());
  out.push_back(cyclic_wait());
  out.push_back(channel_overlap());
  out.push_back(byte_mismatch());
  out.push_back(unscoped_group_tag());
  out.push_back(scoped_rogue_tag());
  return out;
}

std::vector<SeededFaultDefect> seeded_fault_defects() {
  std::vector<SeededFaultDefect> out;
  out.push_back(ft_naked_wait());
  out.push_back(ft_retransmit_reframed());
  out.push_back(ft_skipped_release());
  out.push_back(ft_dropped_contribution());
  return out;
}

}  // namespace parsvd::verify
