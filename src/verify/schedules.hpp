// Schedule emitters: one per SPMD protocol in the library.
//
// Each emitter rebuilds, from (rank, P) and the job-wide collective
// policy alone, the exact per-rank wire schedule the production path
// posts — same topology functions (pmpi/topology.hpp), same tag
// registry (pmpi/tags.hpp), same program order, same byte counts. The
// result is a CommScript Schedule the ScheduleChecker can prove
// match-complete and deadlock-free without running a single thread.
//
// Scope: the fault-FREE protocols. The degraded-mode (_ft) collectives
// react to deaths observed at runtime, so their schedules are pure
// functions of (rank, P) only once the failure is part of the input —
// verify/fault_schedules.hpp emits them conditioned on a
// (victim, kill_step) scenario, and schedule_check --faults sweeps that
// failure space (DESIGN §13).
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "pmpi/topology.hpp"
#include "verify/comm_script.hpp"

namespace parsvd::verify {

/// Job-wide collective policy inputs, mirroring the Context settings
/// every rank of a real job agrees on (PARSVD_COMM_ALGO /
/// PARSVD_COMM_EAGER_BYTES / PARSVD_COMM_TREE_MIN_RANKS).
struct CollectiveConfig {
  pmpi::CollectiveAlgo algo = pmpi::CollectiveAlgo::Auto;
  std::uint64_t eager_threshold_bytes = std::uint64_t{1} << 14;
  int tree_min_ranks = 8;

  std::string suffix() const;  ///< ", algo=tree, eager=16384, tmr=8"
};

/// Communicator::bcast — binomial tree (or flat fan-out under Flat).
Schedule script_bcast(int p, int root, std::uint64_t bytes,
                      const CollectiveConfig& cfg);

/// The gather engine under gatherv / gather_matrices: flat root loop or
/// binomial tree with framed subtree aggregation. `bytes_per_rank` is
/// each rank's contribution payload (size p).
Schedule script_gather(int p, int root,
                       std::span<const std::uint64_t> bytes_per_rank,
                       const CollectiveConfig& cfg);

/// allgather_double / allgather_index: gatherv to root 0 then bcast.
Schedule script_allgather(int p, std::uint64_t per_rank_bytes,
                          const CollectiveConfig& cfg);

/// Communicator::reduce — flat root loop or binomial tree.
Schedule script_reduce(int p, int root, std::uint64_t bytes,
                       const CollectiveConfig& cfg);

/// Communicator::allreduce — recursive doubling, or reduce+bcast below
/// the eager threshold.
Schedule script_allreduce(int p, std::uint64_t bytes,
                          const CollectiveConfig& cfg);

/// Communicator::scatter_rows — root fans row blocks out directly.
/// `block_bytes` is the packed payload each rank receives (size p).
Schedule script_scatter_rows(int p, int root,
                             std::span<const std::uint64_t> block_bytes,
                             const CollectiveConfig& cfg);

/// core/tsqr.cpp tsqr_tree: pre-posted up/down-sweep irecvs, level-
/// tagged exchanges, final R broadcast. `k` is the panel column count
/// (every exchanged R / transform is k×k once local rows >= k, the
/// documented TSQR precondition).
Schedule script_tsqr_tree(int p, std::int64_t k, const CollectiveConfig& cfg);

/// core/apmos.cpp Stage-3 W gather (root pre-posts, consumes via
/// wait_any) plus the Stage-5 X / Λ result broadcasts.
Schedule script_apmos(int p, std::uint64_t w_bytes, std::uint64_t x_bytes,
                      std::uint64_t lambda_bytes, const CollectiveConfig& cfg);

// ------------------------------------------------ communicator groups
// Mirrors of Communicator::split / subgroup (pmpi/comm.hpp): a group
// communicator runs the SAME protocols with its group size and dense
// group ranks, and the wire layer rewrites (rank, tag) via
// Group::world_rank and tags::group_scope. embed_group_schedule applies
// exactly that rewrite to a model schedule, so the partition schedules
// the checker proves safe are the schedules concurrent group jobs post.

/// Model of one pmpi::Group: its Context-minted id and its members as
/// world ranks, indexed by group rank (the split/subgroup ordering).
struct GroupSpec {
  int id = 1;
  std::vector<int> members;
};

/// Splice `local` — a p-rank schedule emitted as if the group were the
/// whole world — into `world`, translating every event the way the
/// group communicator's wire layer does: peers through g.members, tags
/// through tags::group_scope(g.id, tag), request ids remapped into the
/// destination scripts. Events land in each member's program order,
/// after whatever that member's script already contains.
void embed_group_schedule(Schedule& world, const Schedule& local,
                          const GroupSpec& g);

/// Communicator::barrier on a group communicator: flat gather-then-
/// release through group rank 0 on tags::kBarrier (the world barrier is
/// the Context's central rendezvous and posts no wire traffic).
Schedule script_group_barrier(int p);

/// The protocol one group of a partition runs concurrently with its
/// siblings.
enum class GroupProtocol {
  Bcast,
  Gather,
  Reduce,
  Allreduce,
  Allgather,
  Barrier,
  TsqrTree,
  Apmos,
};

const char* to_string(GroupProtocol proto);

/// A full partitioned job: every group of `groups` runs its protocol
/// concurrently on one world of `world_p` ranks, each embedded with its
/// own tag scope. Members must be disjoint; a world rank in no group
/// simply stays silent. `bytes` seeds the payload sizes (TSQR/APMOS
/// derive their frames from it).
Schedule script_partition(int world_p, std::span<const GroupSpec> groups,
                          std::span<const GroupProtocol> protocols,
                          std::uint64_t bytes, const CollectiveConfig& cfg);

/// Per-group send totals of a schedule — the model-side mirror of the
/// "comm.group<id>.messages" / "comm.group<id>.bytes" registry counters
/// (pmpi bumps both on every post of group-scoped traffic).
struct GroupTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Totals keyed by group id, decoded from the scoped wire tags.
std::map<int, GroupTotals> group_send_totals(const Schedule& s);

}  // namespace parsvd::verify
