// schedule_check: sweep every SPMD protocol schedule over P in [1, 64]
// and every collective-policy combination, proving match-completeness,
// tag hygiene, channel discipline and deadlock-freedom statically (no
// threads, no payloads). Also self-tests the checker against seeded
// defective schedules, printing the counterexample trace for each.
//
// Subgroup schedules are swept alongside the world ones: every P is
// partitioned into halves / singleton+rest / three-way / even-odd
// member lists, each group runs a different protocol concurrently under
// its own tag scope, and the partition is checked as one world
// schedule — proving sibling groups cannot interfere by construction.
//
// The --faults mode sweeps the FAILURE space instead (DESIGN §13):
// every FT protocol × P in [1, 32] × every non-root victim × every
// single-rank kill point, each scenario checked for degraded-mode
// quiescence with check_fault_schedule, plus the healthy (victim
// survives) emission of every degraded schedule. Seeded recovery-path
// defects self-test the fault checker the same way seeded_defects()
// self-tests the fault-free one.
//
//   schedule_check            full sweep (world + groups) + selftest
//   schedule_check --smoke    reduced rank set (CI gate)
//   schedule_check --groups   subgroup-partition sweep only (+ selftest)
//   schedule_check --selftest seeded-defect detection only
//   schedule_check --faults   failure-space sweep + fault selftest;
//                             --proto=<gather|bcast|allreduce|tsqr|
//                             apmos|streaming> restricts to one
//                             protocol family (the CI shard axis)
//
// Exit code 0 iff every real schedule passes AND every seeded defect is
// caught with the expected violation kind.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/fault_schedules.hpp"
#include "verify/schedules.hpp"
#include "verify/selftest.hpp"

namespace {

using namespace parsvd;
using namespace parsvd::verify;

/// The policy grid: both fixed algorithms, the default Auto policy, and
/// Auto with thresholds pushed to each extreme so both sides of every
/// eager/tree switch are exercised at every rank count.
std::vector<CollectiveConfig> policy_grid() {
  using A = pmpi::CollectiveAlgo;
  return {
      {A::Flat, std::uint64_t{1} << 14, 8},
      {A::Tree, std::uint64_t{1} << 14, 8},
      {A::Auto, std::uint64_t{1} << 14, 8},  // shipped defaults
      {A::Auto, 0, 2},                       // trees wherever Auto can
      {A::Auto, 256, 4},                     // mid thresholds
  };
}

struct SweepStats {
  std::size_t schedules = 0;
  std::size_t events = 0;
  std::size_t failures = 0;
};

void run_check(const Schedule& s, SweepStats* stats) {
  const CheckReport report = check_schedule(s);
  ++stats->schedules;
  stats->events += report.events_checked;
  if (!report.ok()) {
    ++stats->failures;
    std::cerr << report.to_string();
  }
}

void sweep_p(int p, const std::vector<CollectiveConfig>& grid,
             SweepStats* stats) {
  // Roots: first, last, middle (deduplicated for small p) so the
  // virtual-rank rotation is exercised, not just the root-0 layout.
  std::vector<int> roots{0};
  if (p > 1) roots.push_back(p - 1);
  if (p > 4) roots.push_back(p / 2);

  // Asymmetric per-rank contributions (gatherv has no symmetry
  // guarantee) and per-rank scatter blocks.
  std::vector<std::uint64_t> gather_bytes(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> scatter_bytes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    gather_bytes[static_cast<std::size_t>(r)] =
        24 + 8 * static_cast<std::uint64_t>(r);
    scatter_bytes[static_cast<std::size_t>(r)] =
        16 + 8 * 3 * static_cast<std::uint64_t>(r + 1);
  }

  for (const CollectiveConfig& cfg : grid) {
    for (const int root : roots) {
      run_check(script_bcast(p, root, 4096, cfg), stats);
      run_check(script_gather(p, root, gather_bytes, cfg), stats);
      run_check(script_scatter_rows(p, root, scatter_bytes, cfg), stats);
      // Both sides of the 16 KiB default (and 256 B mid) eager switch.
      run_check(script_reduce(p, root, 64, cfg), stats);
      run_check(script_reduce(p, root, std::uint64_t{1} << 15, cfg), stats);
    }
    run_check(script_allgather(p, 8, cfg), stats);
    run_check(script_allreduce(p, 64, cfg), stats);
    run_check(script_allreduce(p, std::uint64_t{1} << 15, cfg), stats);
    run_check(script_tsqr_tree(p, 4, cfg), stats);
    run_check(script_apmos(p, /*w=*/16 + 8 * 6 * 4, /*x=*/16 + 8 * 6 * 4,
                           /*lambda=*/4 * 8, cfg),
              stats);
  }
}

/// The partition shapes swept per world size: contiguous halves, a
/// singleton plus the rest, contiguous thirds, and an even/odd
/// interleave (non-contiguous members, so the group-rank -> world-rank
/// translation is exercised, not just offsetting). Shapes collapse for
/// tiny p (p=1 yields the same single-group partition three times over);
/// empty groups are dropped. Group ids are minted 1..n in partition
/// order, matching Communicator::split's ascending-color order.
std::vector<std::vector<GroupSpec>> partitions_for(int p) {
  std::vector<std::vector<int>> shapes[4];
  // halves
  shapes[0].assign(2, {});
  for (int r = 0; r < p; ++r) {
    shapes[0][r < p / 2 ? 0u : 1u].push_back(r);
  }
  // singleton + rest
  shapes[1].assign(2, {});
  shapes[1][0].push_back(0);
  for (int r = 1; r < p; ++r) shapes[1][1].push_back(r);
  // three-way
  shapes[2].assign(3, {});
  for (int r = 0; r < p; ++r) {
    shapes[2][static_cast<std::size_t>(std::min(r / ((p + 2) / 3), 2))]
        .push_back(r);
  }
  // even/odd interleave
  shapes[3].assign(2, {});
  for (int r = 0; r < p; ++r) shapes[3][static_cast<std::size_t>(r % 2)]
      .push_back(r);

  std::vector<std::vector<GroupSpec>> out;
  for (auto& shape : shapes) {
    std::vector<GroupSpec> partition;
    int next_id = 1;
    for (auto& members : shape) {
      if (members.empty()) continue;
      partition.push_back({next_id++, std::move(members)});
    }
    out.push_back(std::move(partition));
  }
  return out;
}

void sweep_groups(int p, const std::vector<CollectiveConfig>& grid,
                  SweepStats* stats) {
  constexpr GroupProtocol kProtos[] = {
      GroupProtocol::TsqrTree,  GroupProtocol::Allreduce,
      GroupProtocol::Gather,    GroupProtocol::Bcast,
      GroupProtocol::Barrier,   GroupProtocol::Allgather,
      GroupProtocol::Reduce,    GroupProtocol::Apmos,
  };
  constexpr int kNumProtos = static_cast<int>(std::size(kProtos));
  const std::vector<std::vector<GroupSpec>> partitions = partitions_for(p);
  for (const CollectiveConfig& cfg : grid) {
    for (std::size_t shape = 0; shape < partitions.size(); ++shape) {
      const std::vector<GroupSpec>& groups = partitions[shape];
      // Rotate protocol assignments with the shape index so every
      // protocol eventually runs concurrently with every other.
      std::vector<GroupProtocol> protos;
      protos.reserve(groups.size());
      for (std::size_t i = 0; i < groups.size(); ++i) {
        protos.push_back(
            kProtos[(static_cast<int>(i + shape)) % kNumProtos]);
      }
      // Both sides of the 16 KiB default eager switch, per group.
      run_check(script_partition(p, groups, protos, 64, cfg), stats);
      run_check(script_partition(p, groups, protos, std::uint64_t{1} << 15,
                                 cfg),
                stats);
    }
  }
}

bool run_sweep(bool smoke, bool groups_only) {
  SweepStats stats;
  const std::vector<CollectiveConfig> grid = policy_grid();
  const std::vector<int> smoke_ps{1, 2, 3, 4, 5, 8, 16, 33, 64};
  if (smoke) {
    for (const int p : smoke_ps) {
      if (!groups_only) sweep_p(p, grid, &stats);
      sweep_groups(p, grid, &stats);
    }
  } else {
    for (int p = 1; p <= 64; ++p) {
      if (!groups_only) sweep_p(p, grid, &stats);
      sweep_groups(p, grid, &stats);
    }
  }
  std::cout << "schedule_check: " << stats.schedules << " schedules, "
            << stats.events << " events, " << stats.failures << " failure(s)"
            << (groups_only ? " [groups]" : "") << (smoke ? " [smoke]" : "")
            << "\n";
  return stats.failures == 0;
}

// ------------------------------------------------- failure-space sweep

/// Check one degraded schedule; racy scenarios (a root is_dead() guard
/// concurrent with the kill) are counted but still checked — the model
/// commits to the traffic-dominating alive branch.
void run_fault_check(const FaultSchedule& fs, SweepStats* stats,
                     std::size_t* racy) {
  const CheckReport report = check_fault_schedule(fs.schedule, fs.scenario);
  ++stats->schedules;
  stats->events += report.events_checked;
  if (!fs.deterministic) ++*racy;
  if (!report.ok()) {
    ++stats->failures;
    std::cerr << report.to_string();
  }
}

/// Enumerate every kill point of one (protocol, victim) pair: emit the
/// healthy scenario once to learn the victim's event count, check it,
/// then check the kill at every step before each of those events.
template <typename Emit>
void sweep_kill_points(Emit&& emit, int victim, SweepStats* stats,
                       std::size_t* racy) {
  const FaultSchedule healthy = emit(FaultScenario{victim, kNoKillStep});
  const std::size_t n =
      healthy.schedule.ranks[static_cast<std::size_t>(victim)].events().size();
  run_fault_check(healthy, stats, racy);
  for (std::size_t step = 0; step < n; ++step) {
    run_fault_check(emit(FaultScenario{victim, step}), stats, racy);
  }
}

bool proto_enabled(const std::string& filter, const char* name) {
  return filter.empty() || filter == name;
}

/// All FT protocols × P in [1, 32] × every non-root victim × every
/// kill point. Root victims are excluded by contract — every _ft
/// collective documents root-must-survive; the seeded ft defects cover
/// what the checker reports when that contract is broken. P=1 runs no
/// wire protocol, so the sweep starts at the first p with a victim.
bool run_fault_sweep(bool smoke, const std::string& proto) {
  SweepStats stats;
  std::size_t racy = 0;

  std::vector<int> ps;
  if (smoke) {
    ps = {2, 3, 4, 5, 8, 16, 32};
  } else {
    for (int p = 2; p <= 32; ++p) ps.push_back(p);
  }

  for (const int p : ps) {
    std::vector<int> roots{0};
    if (p > 2) roots.push_back(p - 1);
    if (p > 4) roots.push_back(p / 2);

    if (proto_enabled(proto, "gather")) {
      std::vector<std::uint64_t> bytes(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        bytes[static_cast<std::size_t>(r)] =
            24 + 8 * static_cast<std::uint64_t>(r);
      }
      for (const int root : roots) {
        for (int v = 0; v < p; ++v) {
          if (v == root) continue;
          sweep_kill_points(
              [&](FaultScenario f) { return script_ft_gather(p, root, bytes, f); },
              v, &stats, &racy);
        }
      }
    }
    if (proto_enabled(proto, "bcast")) {
      for (const int root : roots) {
        for (int v = 0; v < p; ++v) {
          if (v == root) continue;
          sweep_kill_points(
              [&](FaultScenario f) { return script_ft_bcast(p, root, 4096, f); },
              v, &stats, &racy);
        }
      }
    }
    if (proto_enabled(proto, "allreduce")) {
      for (const int root : roots) {
        for (int v = 0; v < p; ++v) {
          if (v == root) continue;
          sweep_kill_points(
              [&](FaultScenario f) {
                return script_ft_allreduce(p, root, 6, f);
              },
              v, &stats, &racy);
        }
      }
    }
    if (proto_enabled(proto, "tsqr")) {
      for (const std::int64_t k : {std::int64_t{3}, std::int64_t{5}}) {
        // Uniform tall panels, and a ragged layout with some blocks
        // shorter than k so the min(rows, k) extents are exercised.
        std::vector<std::int64_t> uniform(static_cast<std::size_t>(p), k + 2);
        std::vector<std::int64_t> ragged(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
          ragged[static_cast<std::size_t>(r)] = 2 + (r % 5);
        }
        for (const auto& rows : {uniform, ragged}) {
          for (int v = 1; v < p; ++v) {
            sweep_kill_points(
                [&](FaultScenario f) {
                  return script_ft_tsqr_direct(rows, k, f);
                },
                v, &stats, &racy);
          }
        }
      }
    }
    if (proto_enabled(proto, "apmos")) {
      struct ApmosShape {
        std::int64_t n_cols, r1, r2;
      };
      for (const ApmosShape& sh : {ApmosShape{6, 3, 2}, ApmosShape{4, 5, 4}}) {
        std::vector<std::int64_t> rows(static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r) {
          rows[static_cast<std::size_t>(r)] = 3 + (r % 4);
        }
        for (int v = 1; v < p; ++v) {
          sweep_kill_points(
              [&](FaultScenario f) {
                return script_ft_apmos(rows, sh.n_cols, sh.r1, sh.r2, f);
              },
              v, &stats, &racy);
        }
      }
    }
    if (proto_enabled(proto, "streaming")) {
      struct StreamKB {
        std::int64_t num_modes, batch_cols;
      };
      for (const StreamKB& kb : {StreamKB{2, 2}, StreamKB{3, 1}}) {
        for (int rounds = 1; rounds <= 4; ++rounds) {
          StreamingShape shape;
          shape.rows_by_rank.resize(static_cast<std::size_t>(p));
          for (int r = 0; r < p; ++r) {
            shape.rows_by_rank[static_cast<std::size_t>(r)] = 4 + (r % 3);
          }
          shape.num_modes = kb.num_modes;
          shape.batch_cols = kb.batch_cols;
          shape.rounds = rounds;
          for (int v = 1; v < p; ++v) {
            sweep_kill_points(
                [&](FaultScenario f) {
                  return script_ft_streaming_updates(shape, f);
                },
                v, &stats, &racy);
          }
        }
      }
    }
  }

  std::cout << "schedule_check --faults: " << stats.schedules
            << " scenarios (" << racy << " racy), " << stats.events
            << " events, " << stats.failures << " failure(s)"
            << (proto.empty() ? "" : " [proto=" + proto + "]")
            << (smoke ? " [smoke]" : "") << "\n";
  return stats.failures == 0;
}

bool run_fault_selftest() {
  bool ok = true;
  for (const SeededFaultDefect& defect : seeded_fault_defects()) {
    const CheckReport report =
        check_fault_schedule(defect.schedule, defect.scenario);
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) found = true;
    }
    std::cout << "--- seeded fault defect: " << defect.schedule.name
              << defect.scenario.suffix() << " (expect "
              << to_string(defect.expected) << ")\n";
    if (report.ok()) {
      std::cout << "NOT DETECTED — fault checker is unsound for this class\n";
      ok = false;
    } else {
      std::cout << report.to_string();
      if (!found) {
        std::cout << "detected, but without the expected "
                  << to_string(defect.expected) << " violation\n";
        ok = false;
      }
    }
  }
  std::cout << (ok ? "fault selftest: all seeded defects detected\n"
                   : "fault selftest: FAILED\n");
  return ok;
}

bool run_selftest() {
  bool ok = true;
  for (const SeededDefect& defect : seeded_defects()) {
    const CheckReport report = check_schedule(defect.schedule);
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) found = true;
    }
    std::cout << "--- seeded defect: " << defect.schedule.name
              << " (expect " << to_string(defect.expected) << ")\n";
    if (report.ok()) {
      std::cout << "NOT DETECTED — checker is unsound for this class\n";
      ok = false;
    } else {
      std::cout << report.to_string();
      if (!found) {
        std::cout << "detected, but without the expected "
                  << to_string(defect.expected) << " violation\n";
        ok = false;
      }
    }
  }
  std::cout << (ok ? "selftest: all seeded defects detected\n"
                   : "selftest: FAILED\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool selftest_only = false;
  bool groups_only = false;
  bool faults = false;
  std::string proto;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest_only = true;
    } else if (std::strcmp(argv[i], "--groups") == 0) {
      groups_only = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strncmp(argv[i], "--proto=", 8) == 0) {
      proto = argv[i] + 8;
    } else {
      std::cerr << "usage: schedule_check [--smoke] "
                   "[--groups|--selftest|--faults [--proto=NAME]]\n";
      return 2;
    }
  }
  if (faults) {
    bool ok = run_fault_sweep(smoke, proto);
    ok = run_fault_selftest() && ok;
    return ok ? 0 : 1;
  }
  bool ok = true;
  if (!selftest_only) ok = run_sweep(smoke, groups_only) && ok;
  ok = run_selftest() && ok;
  return ok ? 0 : 1;
}
