// schedule_check: sweep every SPMD protocol schedule over P in [1, 64]
// and every collective-policy combination, proving match-completeness,
// tag hygiene, channel discipline and deadlock-freedom statically (no
// threads, no payloads). Also self-tests the checker against seeded
// defective schedules, printing the counterexample trace for each.
//
// Subgroup schedules are swept alongside the world ones: every P is
// partitioned into halves / singleton+rest / three-way / even-odd
// member lists, each group runs a different protocol concurrently under
// its own tag scope, and the partition is checked as one world
// schedule — proving sibling groups cannot interfere by construction.
//
//   schedule_check            full sweep (world + groups) + selftest
//   schedule_check --smoke    reduced rank set (CI gate)
//   schedule_check --groups   subgroup-partition sweep only (+ selftest)
//   schedule_check --selftest seeded-defect detection only
//
// Exit code 0 iff every real schedule passes AND every seeded defect is
// caught with the expected violation kind.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/schedules.hpp"
#include "verify/selftest.hpp"

namespace {

using namespace parsvd;
using namespace parsvd::verify;

/// The policy grid: both fixed algorithms, the default Auto policy, and
/// Auto with thresholds pushed to each extreme so both sides of every
/// eager/tree switch are exercised at every rank count.
std::vector<CollectiveConfig> policy_grid() {
  using A = pmpi::CollectiveAlgo;
  return {
      {A::Flat, std::uint64_t{1} << 14, 8},
      {A::Tree, std::uint64_t{1} << 14, 8},
      {A::Auto, std::uint64_t{1} << 14, 8},  // shipped defaults
      {A::Auto, 0, 2},                       // trees wherever Auto can
      {A::Auto, 256, 4},                     // mid thresholds
  };
}

struct SweepStats {
  std::size_t schedules = 0;
  std::size_t events = 0;
  std::size_t failures = 0;
};

void run_check(const Schedule& s, SweepStats* stats) {
  const CheckReport report = check_schedule(s);
  ++stats->schedules;
  stats->events += report.events_checked;
  if (!report.ok()) {
    ++stats->failures;
    std::cerr << report.to_string();
  }
}

void sweep_p(int p, const std::vector<CollectiveConfig>& grid,
             SweepStats* stats) {
  // Roots: first, last, middle (deduplicated for small p) so the
  // virtual-rank rotation is exercised, not just the root-0 layout.
  std::vector<int> roots{0};
  if (p > 1) roots.push_back(p - 1);
  if (p > 4) roots.push_back(p / 2);

  // Asymmetric per-rank contributions (gatherv has no symmetry
  // guarantee) and per-rank scatter blocks.
  std::vector<std::uint64_t> gather_bytes(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> scatter_bytes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    gather_bytes[static_cast<std::size_t>(r)] =
        24 + 8 * static_cast<std::uint64_t>(r);
    scatter_bytes[static_cast<std::size_t>(r)] =
        16 + 8 * 3 * static_cast<std::uint64_t>(r + 1);
  }

  for (const CollectiveConfig& cfg : grid) {
    for (const int root : roots) {
      run_check(script_bcast(p, root, 4096, cfg), stats);
      run_check(script_gather(p, root, gather_bytes, cfg), stats);
      run_check(script_scatter_rows(p, root, scatter_bytes, cfg), stats);
      // Both sides of the 16 KiB default (and 256 B mid) eager switch.
      run_check(script_reduce(p, root, 64, cfg), stats);
      run_check(script_reduce(p, root, std::uint64_t{1} << 15, cfg), stats);
    }
    run_check(script_allgather(p, 8, cfg), stats);
    run_check(script_allreduce(p, 64, cfg), stats);
    run_check(script_allreduce(p, std::uint64_t{1} << 15, cfg), stats);
    run_check(script_tsqr_tree(p, 4, cfg), stats);
    run_check(script_apmos(p, /*w=*/16 + 8 * 6 * 4, /*x=*/16 + 8 * 6 * 4,
                           /*lambda=*/4 * 8, cfg),
              stats);
  }
}

/// The partition shapes swept per world size: contiguous halves, a
/// singleton plus the rest, contiguous thirds, and an even/odd
/// interleave (non-contiguous members, so the group-rank -> world-rank
/// translation is exercised, not just offsetting). Shapes collapse for
/// tiny p (p=1 yields the same single-group partition three times over);
/// empty groups are dropped. Group ids are minted 1..n in partition
/// order, matching Communicator::split's ascending-color order.
std::vector<std::vector<GroupSpec>> partitions_for(int p) {
  std::vector<std::vector<int>> shapes[4];
  // halves
  shapes[0].assign(2, {});
  for (int r = 0; r < p; ++r) {
    shapes[0][r < p / 2 ? 0u : 1u].push_back(r);
  }
  // singleton + rest
  shapes[1].assign(2, {});
  shapes[1][0].push_back(0);
  for (int r = 1; r < p; ++r) shapes[1][1].push_back(r);
  // three-way
  shapes[2].assign(3, {});
  for (int r = 0; r < p; ++r) {
    shapes[2][static_cast<std::size_t>(std::min(r / ((p + 2) / 3), 2))]
        .push_back(r);
  }
  // even/odd interleave
  shapes[3].assign(2, {});
  for (int r = 0; r < p; ++r) shapes[3][static_cast<std::size_t>(r % 2)]
      .push_back(r);

  std::vector<std::vector<GroupSpec>> out;
  for (auto& shape : shapes) {
    std::vector<GroupSpec> partition;
    int next_id = 1;
    for (auto& members : shape) {
      if (members.empty()) continue;
      partition.push_back({next_id++, std::move(members)});
    }
    out.push_back(std::move(partition));
  }
  return out;
}

void sweep_groups(int p, const std::vector<CollectiveConfig>& grid,
                  SweepStats* stats) {
  constexpr GroupProtocol kProtos[] = {
      GroupProtocol::TsqrTree,  GroupProtocol::Allreduce,
      GroupProtocol::Gather,    GroupProtocol::Bcast,
      GroupProtocol::Barrier,   GroupProtocol::Allgather,
      GroupProtocol::Reduce,    GroupProtocol::Apmos,
  };
  constexpr int kNumProtos = static_cast<int>(std::size(kProtos));
  const std::vector<std::vector<GroupSpec>> partitions = partitions_for(p);
  for (const CollectiveConfig& cfg : grid) {
    for (std::size_t shape = 0; shape < partitions.size(); ++shape) {
      const std::vector<GroupSpec>& groups = partitions[shape];
      // Rotate protocol assignments with the shape index so every
      // protocol eventually runs concurrently with every other.
      std::vector<GroupProtocol> protos;
      protos.reserve(groups.size());
      for (std::size_t i = 0; i < groups.size(); ++i) {
        protos.push_back(
            kProtos[(static_cast<int>(i + shape)) % kNumProtos]);
      }
      // Both sides of the 16 KiB default eager switch, per group.
      run_check(script_partition(p, groups, protos, 64, cfg), stats);
      run_check(script_partition(p, groups, protos, std::uint64_t{1} << 15,
                                 cfg),
                stats);
    }
  }
}

bool run_sweep(bool smoke, bool groups_only) {
  SweepStats stats;
  const std::vector<CollectiveConfig> grid = policy_grid();
  const std::vector<int> smoke_ps{1, 2, 3, 4, 5, 8, 16, 33, 64};
  if (smoke) {
    for (const int p : smoke_ps) {
      if (!groups_only) sweep_p(p, grid, &stats);
      sweep_groups(p, grid, &stats);
    }
  } else {
    for (int p = 1; p <= 64; ++p) {
      if (!groups_only) sweep_p(p, grid, &stats);
      sweep_groups(p, grid, &stats);
    }
  }
  std::cout << "schedule_check: " << stats.schedules << " schedules, "
            << stats.events << " events, " << stats.failures << " failure(s)"
            << (groups_only ? " [groups]" : "") << (smoke ? " [smoke]" : "")
            << "\n";
  return stats.failures == 0;
}

bool run_selftest() {
  bool ok = true;
  for (const SeededDefect& defect : seeded_defects()) {
    const CheckReport report = check_schedule(defect.schedule);
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) found = true;
    }
    std::cout << "--- seeded defect: " << defect.schedule.name
              << " (expect " << to_string(defect.expected) << ")\n";
    if (report.ok()) {
      std::cout << "NOT DETECTED — checker is unsound for this class\n";
      ok = false;
    } else {
      std::cout << report.to_string();
      if (!found) {
        std::cout << "detected, but without the expected "
                  << to_string(defect.expected) << " violation\n";
        ok = false;
      }
    }
  }
  std::cout << (ok ? "selftest: all seeded defects detected\n"
                   : "selftest: FAILED\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool selftest_only = false;
  bool groups_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest_only = true;
    } else if (std::strcmp(argv[i], "--groups") == 0) {
      groups_only = true;
    } else {
      std::cerr << "usage: schedule_check [--smoke] [--groups|--selftest]\n";
      return 2;
    }
  }
  bool ok = true;
  if (!selftest_only) ok = run_sweep(smoke, groups_only) && ok;
  ok = run_selftest() && ok;
  return ok ? 0 : 1;
}
