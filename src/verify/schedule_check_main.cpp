// schedule_check: sweep every SPMD protocol schedule over P in [1, 64]
// and every collective-policy combination, proving match-completeness,
// tag hygiene, channel discipline and deadlock-freedom statically (no
// threads, no payloads). Also self-tests the checker against seeded
// defective schedules, printing the counterexample trace for each.
//
//   schedule_check            full sweep + selftest
//   schedule_check --smoke    reduced rank set (CI gate)
//   schedule_check --selftest seeded-defect detection only
//
// Exit code 0 iff every real schedule passes AND every seeded defect is
// caught with the expected violation kind.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/schedules.hpp"
#include "verify/selftest.hpp"

namespace {

using namespace parsvd;
using namespace parsvd::verify;

/// The policy grid: both fixed algorithms, the default Auto policy, and
/// Auto with thresholds pushed to each extreme so both sides of every
/// eager/tree switch are exercised at every rank count.
std::vector<CollectiveConfig> policy_grid() {
  using A = pmpi::CollectiveAlgo;
  return {
      {A::Flat, std::uint64_t{1} << 14, 8},
      {A::Tree, std::uint64_t{1} << 14, 8},
      {A::Auto, std::uint64_t{1} << 14, 8},  // shipped defaults
      {A::Auto, 0, 2},                       // trees wherever Auto can
      {A::Auto, 256, 4},                     // mid thresholds
  };
}

struct SweepStats {
  std::size_t schedules = 0;
  std::size_t events = 0;
  std::size_t failures = 0;
};

void run_check(const Schedule& s, SweepStats* stats) {
  const CheckReport report = check_schedule(s);
  ++stats->schedules;
  stats->events += report.events_checked;
  if (!report.ok()) {
    ++stats->failures;
    std::cerr << report.to_string();
  }
}

void sweep_p(int p, const std::vector<CollectiveConfig>& grid,
             SweepStats* stats) {
  // Roots: first, last, middle (deduplicated for small p) so the
  // virtual-rank rotation is exercised, not just the root-0 layout.
  std::vector<int> roots{0};
  if (p > 1) roots.push_back(p - 1);
  if (p > 4) roots.push_back(p / 2);

  // Asymmetric per-rank contributions (gatherv has no symmetry
  // guarantee) and per-rank scatter blocks.
  std::vector<std::uint64_t> gather_bytes(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> scatter_bytes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    gather_bytes[static_cast<std::size_t>(r)] =
        24 + 8 * static_cast<std::uint64_t>(r);
    scatter_bytes[static_cast<std::size_t>(r)] =
        16 + 8 * 3 * static_cast<std::uint64_t>(r + 1);
  }

  for (const CollectiveConfig& cfg : grid) {
    for (const int root : roots) {
      run_check(script_bcast(p, root, 4096, cfg), stats);
      run_check(script_gather(p, root, gather_bytes, cfg), stats);
      run_check(script_scatter_rows(p, root, scatter_bytes, cfg), stats);
      // Both sides of the 16 KiB default (and 256 B mid) eager switch.
      run_check(script_reduce(p, root, 64, cfg), stats);
      run_check(script_reduce(p, root, std::uint64_t{1} << 15, cfg), stats);
    }
    run_check(script_allgather(p, 8, cfg), stats);
    run_check(script_allreduce(p, 64, cfg), stats);
    run_check(script_allreduce(p, std::uint64_t{1} << 15, cfg), stats);
    run_check(script_tsqr_tree(p, 4, cfg), stats);
    run_check(script_apmos(p, /*w=*/16 + 8 * 6 * 4, /*x=*/16 + 8 * 6 * 4,
                           /*lambda=*/4 * 8, cfg),
              stats);
  }
}

bool run_sweep(bool smoke) {
  SweepStats stats;
  const std::vector<CollectiveConfig> grid = policy_grid();
  if (smoke) {
    for (const int p : {1, 2, 3, 4, 5, 8, 16, 33, 64}) {
      sweep_p(p, grid, &stats);
    }
  } else {
    for (int p = 1; p <= 64; ++p) sweep_p(p, grid, &stats);
  }
  std::cout << "schedule_check: " << stats.schedules << " schedules, "
            << stats.events << " events, " << stats.failures << " failure(s)"
            << (smoke ? " [smoke]" : "") << "\n";
  return stats.failures == 0;
}

bool run_selftest() {
  bool ok = true;
  for (const SeededDefect& defect : seeded_defects()) {
    const CheckReport report = check_schedule(defect.schedule);
    bool found = false;
    for (const Violation& v : report.violations) {
      if (v.kind == defect.expected) found = true;
    }
    std::cout << "--- seeded defect: " << defect.schedule.name
              << " (expect " << to_string(defect.expected) << ")\n";
    if (report.ok()) {
      std::cout << "NOT DETECTED — checker is unsound for this class\n";
      ok = false;
    } else {
      std::cout << report.to_string();
      if (!found) {
        std::cout << "detected, but without the expected "
                  << to_string(defect.expected) << " violation\n";
        ok = false;
      }
    }
  }
  std::cout << (ok ? "selftest: all seeded defects detected\n"
                   : "selftest: FAILED\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool selftest_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest_only = true;
    } else {
      std::cerr << "usage: schedule_check [--smoke|--selftest]\n";
      return 2;
    }
  }
  bool ok = true;
  if (!selftest_only) ok = run_sweep(smoke) && ok;
  ok = run_selftest() && ok;
  return ok ? 0 : 1;
}
