// Failure-space schedule emitters: one per fault-tolerant protocol.
//
// Each emitter rebuilds the degraded execution a single-rank kill
// induces on an _ft protocol (pmpi gather_bytes_ft / bcast_bytes_ft /
// allreduce_sum_ft, core tsqr_direct_ft, APMOS and streaming FT
// branches) as plain CommScript data — same tags (pmpi/tags.hpp), same
// framing (pack_matrix's 16-byte header), same program order, same
// recovery decisions (skip-dead on gather results, is_dead guards on
// broadcast) the production code makes. The kill itself is a
// FaultScenario: the victim runs its first kill_step events, then
// vanishes (DESIGN §13).
//
// Unlike the fault-free emitters, a degraded schedule is a function of
// the scenario: which contributions the root collects decides the
// stacked-QR extent, the slice sizes, the exclusion list and the
// FaultReport. The emitters replay that dataflow and additionally
// predict the observable side effects the cross-validation tests pin
// to the real runtime:
//   - effective registry totals (messages / bytes actually posted),
//   - the FaultReport wire payload the root broadcasts,
//   - whether the scenario is deterministic, i.e. free of the one
//     benign race the runtime allows: a root-side is_dead() guard
//     sampled while the kill is concurrent with the victim's matching
//     receive. Racy scenarios are still CHECKED (the model takes the
//     alive branch, which dominates traffic), but not cross-validated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "verify/comm_script.hpp"

namespace parsvd::verify {

/// A degraded-mode schedule plus the scenario that shaped it and the
/// runtime observables the model predicts for it.
struct FaultSchedule {
  Schedule schedule;       ///< victim's script = its full healthy program
  FaultScenario scenario;  ///< the kill the survivors' scripts assume
  /// False when a root is_dead() guard races the kill (see file
  /// comment); such scenarios are model-checked but not byte-pinned.
  bool deterministic = true;
  std::uint64_t messages = 0;  ///< posts that execute under the kill
  std::uint64_t bytes = 0;     ///< payload bytes of those posts
  /// Predicted FaultReport::to_doubles() payload (APMOS / streaming
  /// protocols only; empty for the bare collectives).
  std::vector<double> report_flat;
};

/// pmpi gather_bytes_ft: non-roots post on tags::kFtGather, the root
/// death-bounded-waits on every source in ascending rank order.
FaultSchedule script_ft_gather(int p, int root,
                               std::span<const std::uint64_t> bytes_per_rank,
                               const FaultScenario& f);

/// pmpi bcast_bytes_ft: the root posts tags::kFtBcast copies to every
/// destination its is_dead() guard does not skip; non-roots block on a
/// NAKED receive (the documented root-must-survive contract).
FaultSchedule script_ft_bcast(int p, int root, std::uint64_t bytes,
                              const FaultScenario& f);

/// pmpi allreduce_sum_ft: gather_bytes_ft of the addends to the root,
/// root sums the survivors, bcast_bytes_ft of the total.
FaultSchedule script_ft_allreduce(int p, int root, std::size_t n_doubles,
                                  const FaultScenario& f);

/// core tsqr_direct_ft (root = rank 0): FT gather of the local R
/// factors, stacked QR over the survivors, Q row-slices sent back to
/// the contributing survivors only, then FT broadcasts of the final R
/// and the exclusion list. The victim must be a non-root rank.
FaultSchedule script_ft_tsqr_direct(std::span<const std::int64_t> rows_by_rank,
                                    std::int64_t k, const FaultScenario& f);

/// core apmos_svd FT branch (root = rank 0): FT gather of the
/// header+W payloads, root SVD over the surviving stack, FT broadcasts
/// of X, Λ and the FaultReport. The victim must be a non-root rank.
FaultSchedule script_ft_apmos(std::span<const std::int64_t> rows_by_rank,
                              std::int64_t n_cols, std::int64_t r1,
                              std::int64_t r2, const FaultScenario& f);

/// Shape of a ParallelStreamingSVD FT run for the update-loop emitter.
struct StreamingShape {
  std::vector<std::int64_t> rows_by_rank;
  std::int64_t num_modes = 2;  ///< K — modes retained per update
  std::int64_t batch_cols = 2; ///< B — columns in every update batch
  int rounds = 1;              ///< update() calls modelled
  /// Columns of u_local_ entering the first modelled update (the keep
  /// count initialize() produced). Defaults to num_modes, which is
  /// exact whenever the initialize batch had >= num_modes columns.
  std::int64_t start_cols = -1;
  /// Energy ledger inputs for exact FaultReport coverage prediction:
  /// per-rank ||initialize batch||_F^2, then per-round per-rank update
  /// energies. Leave empty to default every entry to 1.0 (sweep mode,
  /// where only the report's SIZE is load-bearing).
  std::vector<double> init_energy;
  std::vector<std::vector<double>> round_energy;
};

/// core parallel_streaming.cpp FT update loop (root = rank 0), `rounds`
/// updates after a healthy initialize. Per round: FT energy gather,
/// tsqr_direct_ft on [discounted modes | batch], u_small / singular
/// value FT broadcasts, FT mode gather, FaultReport FT broadcast. The
/// victim must be a non-root rank; report_flat is the LAST round's
/// report payload.
FaultSchedule script_ft_streaming_updates(const StreamingShape& shape,
                                          const FaultScenario& f);

}  // namespace parsvd::verify
