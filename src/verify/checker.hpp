// ScheduleChecker: proves communication-correctness properties of a
// CommScript Schedule without executing it.
//
// Checked properties:
//   1. Tag registry   — every wire tag comes from pmpi/tags.hpp (a
//                       named collective tag, a solver band, or the
//                       application space at kUserBase and above).
//   2. Match-completeness — on every (src, dst, tag) channel the
//                       ordered send byte-sequence equals the ordered
//                       receive byte-sequence (kAnyBytes matches any).
//   3. Channel discipline — no two outstanding non-blocking receives
//                       (and no blocking receive racing one) ever share
//                       a (dst, src, tag) channel: the same invariant
//                       Context::register_irecv enforces in debug runs.
//   4. Deadlock-freedom — a greedy whole-schedule simulation reaches
//                       completion. Sends are buffered (never block) and
//                       each channel has a single consumer draining it
//                       in FIFO order, so every maximal execution of a
//                       schedule consumes the same messages: greedy
//                       stalling is equivalent to SOME real execution
//                       stalling, and greedy completing proves ALL real
//                       executions complete (confluence).
//
// On failure the report carries a counterexample: the violating channel
// or the wait-for cycle, with each blocked rank's program position.
#pragma once

#include <string>
#include <vector>

#include "verify/comm_script.hpp"

namespace parsvd::verify {

/// True when `tag` belongs to a reserved range of pmpi/tags.hpp: the
/// named collective tags, the solver protocol bands, or the application
/// space at kUserBase and above.
bool tag_registered(int tag);

struct Violation {
  enum class Kind {
    UnregisteredTag,  ///< tag outside every tags.hpp reservation
    UnmatchedSend,    ///< channel has more sends than receives
    UnmatchedRecv,    ///< channel has more receives than sends
    ByteMismatch,     ///< n-th send and n-th receive disagree on size
    ChannelOverlap,   ///< concurrent receives share a channel
    BadWait,          ///< wait on an already-completed request
    Deadlock,         ///< cyclic wait-for (or stall on a finished peer)
    OrphanedWait,     ///< naked (un-bounded) wait on a dead rank's channel
  };
  Kind kind;
  std::string message;             ///< one-line diagnosis
  std::vector<std::string> trace;  ///< counterexample, one line each
};

const char* to_string(Violation::Kind kind);

struct CheckReport {
  std::string schedule;  ///< Schedule::name
  std::size_t events_checked = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// Multi-line rendering: PASS one-liner, or every violation with its
  /// counterexample trace indented below it.
  std::string to_string() const;
};

/// Run all four checks on `s`. Never throws on schedule defects — they
/// all land in the report (throws only on malformed CommScript data,
/// e.g. a peer rank outside [0, P)).
CheckReport check_schedule(const Schedule& s);

/// Failure-space variant of check_schedule: run the four checks on the
/// post-kill execution of `s` under `f` (DESIGN §13). The victim's
/// script is truncated at f.kill_step; its executed events are real
/// traffic, everything later vanishes. Quiescence demands:
///   - sends from survivors to the victim may go unconsumed (they land
///     in a dead mailbox) but any the victim DID consume pre-kill must
///     byte-match;
///   - a bounded receive on the dead victim's channel dead-resolves
///     (progress without consumption) once the victim can post nothing
///     further; a NAKED receive/wait in that position is OrphanedWait;
///   - survivor<->survivor channels keep the full fault-free contract:
///     byte-exact match-completeness, tag hygiene, channel discipline,
///     and the greedy simulation must drain every survivor's script.
/// A victim unable to reach its own kill point (stuck pre-kill) is
/// reported as Deadlock: the scenario's pre-kill prefix must itself be
/// executable.
CheckReport check_fault_schedule(const Schedule& s, const FaultScenario& f);

}  // namespace parsvd::verify
