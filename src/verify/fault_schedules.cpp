#include "verify/fault_schedules.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "pmpi/tags.hpp"
#include "support/error.hpp"

namespace parsvd::verify {
namespace {

using pmpi::tags::kFtBcast;
using pmpi::tags::kFtGather;

/// pack_matrix framing: 16-byte [rows, cols] header + column-major
/// doubles — what send_matrix / gather_matrices_ft put on the wire.
std::uint64_t matrix_bytes(std::int64_t rows, std::int64_t cols) {
  return 2 * sizeof(std::int64_t) +
         static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
             sizeof(double);
}

/// Scenario-aware emission. Routes every event into the Schedule while
/// tracking (a) the victim's healthy event index, (b) per-channel FIFO
/// queues of the victim's sends, so a survivor's bounded receive knows
/// whether it consumes or dead-resolves, (c) which survivors have
/// OBSERVED the death through a dead-resolved wait — the only
/// happens-before edge pmpi gives an is_dead() guard — and (d) the
/// post totals that actually execute (a killing post neither delivers
/// nor counts: account_op fires before the registry bumps).
class FaultBuilder {
 public:
  FaultBuilder(Schedule& s, const FaultScenario& f)
      : s_(s), f_(f), observed_(static_cast<std::size_t>(s.size()), false) {}

  void send(int r, int dst, int tag, std::uint64_t bytes, std::string note) {
    s_.ranks[static_cast<std::size_t>(r)].send(dst, tag, bytes,
                                               std::move(note));
    if (r == f_.victim) {
      if (victim_next_ < f_.kill_step) count(bytes);
      // Enqueue even post-kill sends: the consumer side pops in FIFO
      // order and decides delivery from the recorded index.
      victim_sends_[{dst, tag}].push_back(victim_next_);
      ++victim_next_;
    } else {
      count(bytes);
    }
  }

  void recv(int r, int src, int tag, std::uint64_t bytes, std::string note) {
    s_.ranks[static_cast<std::size_t>(r)].recv(src, tag, bytes,
                                               std::move(note));
    if (r == f_.victim) {
      ++victim_next_;
    } else if (src == f_.victim) {
      // Keep the FIFO aligned; whether a naked receive orphans here is
      // the checker's verdict, not the builder's.
      consume_victim(r, tag);
    }
  }

  /// Death-bounded receive. Returns true when the matching message is
  /// actually delivered, false when the wait dead-resolves — in which
  /// case rank `r` has now observed the death.
  bool recv_bounded(int r, int src, int tag, std::uint64_t bytes,
                    std::string note) {
    s_.ranks[static_cast<std::size_t>(r)].recv_bounded(src, tag, bytes,
                                                       std::move(note));
    if (r == f_.victim) {
      ++victim_next_;
      return true;
    }
    if (src != f_.victim) return true;
    const bool delivered = consume_victim(r, tag);
    if (!delivered) observed_[static_cast<std::size_t>(r)] = true;
    return delivered;
  }

  /// The root-side is_dead(victim) guard of bcast_bytes_ft, consulted
  /// immediately before the victim's matching receive is emitted.
  /// True: the guard deterministically skips the post (`r` observed the
  /// death through an earlier dead-resolved wait). False: the post is
  /// emitted; if the victim is not provably alive at that point (the
  /// kill lands at or before its matching receive, unobserved by `r`)
  /// the branch races mark_dead and the scenario is demoted to
  /// non-deterministic — the alive branch the model commits to is the
  /// traffic-dominating one, and the dead branch merely drops a post
  /// into a dead mailbox, which quiesces a fortiori.
  bool guard_skips(int r) {
    if (observed_[static_cast<std::size_t>(r)]) return true;
    if (!victim_reaches(victim_next_ + 1)) deterministic_ = false;
    return false;
  }

  /// The root reading Communicator::dead_ranks() for the streaming
  /// FaultReport, again consulted immediately before the victim's
  /// report receive is emitted. Returns the dead count the read
  /// observes (0 or 1), with the same race rule as guard_skips.
  int report_ndead(int r) {
    if (observed_[static_cast<std::size_t>(r)]) return 1;
    if (!victim_reaches(victim_next_ + 1)) deterministic_ = false;
    return 0;
  }

  /// True when the victim executes at least its first `n` events.
  bool victim_reaches(std::size_t n) const { return f_.kill_step >= n; }

  bool deterministic() const { return deterministic_; }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  void count(std::uint64_t bytes) {
    ++messages_;
    bytes_ += bytes;
  }

  /// Pop the victim's next send on (dst, tag); true iff it executes.
  bool consume_victim(int dst, int tag) {
    auto& q = victim_sends_[{dst, tag}];
    PARSVD_REQUIRE(!q.empty(),
                   "fault emitter bug: receive from the victim emitted "
                   "before its matching healthy send");
    const std::size_t idx = q.front();
    q.pop_front();
    return idx < f_.kill_step;
  }

  Schedule& s_;
  const FaultScenario& f_;
  std::vector<bool> observed_;
  std::map<std::pair<int, int>, std::deque<std::size_t>> victim_sends_;
  std::size_t victim_next_ = 0;
  bool deterministic_ = true;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Mirror of gather_bytes_ft to `root`: every non-root posts its
/// contribution on kFtGather, the root death-bounded-waits on each
/// source in ascending rank order (its own entry needs no wire).
/// Returns delivered[src] — root and survivors always, the victim iff
/// its post executes.
std::vector<bool> gather_ft(FaultBuilder& b, Schedule& s, int root,
                            std::span<const std::uint64_t> bytes_per_rank,
                            const std::string& what) {
  const int p = s.size();
  std::vector<bool> delivered(static_cast<std::size_t>(p), true);
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    b.send(src, root, kFtGather, bytes_per_rank[static_cast<std::size_t>(src)],
           what);
  }
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    delivered[static_cast<std::size_t>(src)] = b.recv_bounded(
        root, src, kFtGather, bytes_per_rank[static_cast<std::size_t>(src)],
        what + " (dead-resolvable)");
  }
  return delivered;
}

/// Mirror of bcast_bytes_ft from `root`: guarded sends to every other
/// rank, then the non-root receives — NAKED, per the root-must-survive
/// contract. `healthy` is the fault-free payload (the victim's receive
/// expectation), `actual` the degraded payload surviving destinations
/// get; whenever the victim's receive actually executes the two are
/// equal by construction (a live victim means nothing was excluded).
void bcast_ft(FaultBuilder& b, Schedule& s, int root, std::uint64_t healthy,
              std::uint64_t actual, const std::string& what, int victim) {
  const int p = s.size();
  if (p == 1) return;  // bcast_bytes_ft early-outs on size()==1
  for (int dst = 0; dst < p; ++dst) {
    if (dst == root) continue;
    if (dst == victim && victim != root && b.guard_skips(root)) continue;
    b.send(root, dst, kFtBcast, actual, what);
  }
  for (int dst = 0; dst < p; ++dst) {
    if (dst == root) continue;
    b.recv(dst, root, kFtBcast, dst == victim ? healthy : actual,
           what + " (naked; root must survive)");
  }
}

void check_victim(int p, const FaultScenario& f, bool root_must_survive) {
  PARSVD_REQUIRE(f.victim >= 0 && f.victim < p,
                 "fault scenario: victim outside [0, P)");
  if (root_must_survive) {
    PARSVD_REQUIRE(f.victim != 0,
                   "fault scenario: this protocol's root (rank 0) must "
                   "survive — pick a non-root victim");
  }
}

void finish(FaultSchedule& out, const FaultBuilder& b) {
  out.deterministic = b.deterministic();
  out.messages = b.messages();
  out.bytes = b.bytes();
}

std::string rows_suffix(std::span<const std::int64_t> rows) {
  std::string s;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) s += '/';
    s += std::to_string(rows[i]);
  }
  return s;
}

}  // namespace

FaultSchedule script_ft_gather(int p, int root,
                               std::span<const std::uint64_t> bytes_per_rank,
                               const FaultScenario& f) {
  PARSVD_REQUIRE(p >= 1 && root >= 0 && root < p, "ft_gather: bad (p, root)");
  PARSVD_REQUIRE(static_cast<int>(bytes_per_rank.size()) == p,
                 "ft_gather: bytes_per_rank size != p");
  check_victim(p, f, /*root_must_survive=*/false);
  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule("ft_gather(p=" + std::to_string(p) +
                                   ", root=" + std::to_string(root) + ")",
                               p);
  FaultBuilder b(out.schedule, f);
  gather_ft(b, out.schedule, root, bytes_per_rank, "ft gather contribution");
  finish(out, b);
  return out;
}

FaultSchedule script_ft_bcast(int p, int root, std::uint64_t bytes,
                              const FaultScenario& f) {
  PARSVD_REQUIRE(p >= 1 && root >= 0 && root < p, "ft_bcast: bad (p, root)");
  check_victim(p, f, /*root_must_survive=*/false);
  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule("ft_bcast(p=" + std::to_string(p) +
                                   ", root=" + std::to_string(root) + ")",
                               p);
  FaultBuilder b(out.schedule, f);
  bcast_ft(b, out.schedule, root, bytes, bytes, "ft bcast payload", f.victim);
  finish(out, b);
  return out;
}

FaultSchedule script_ft_allreduce(int p, int root, std::size_t n_doubles,
                                  const FaultScenario& f) {
  PARSVD_REQUIRE(p >= 1 && root >= 0 && root < p,
                 "ft_allreduce: bad (p, root)");
  check_victim(p, f, /*root_must_survive=*/false);
  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule("ft_allreduce(p=" + std::to_string(p) +
                                   ", root=" + std::to_string(root) + ")",
                               p);
  FaultBuilder b(out.schedule, f);
  const std::uint64_t payload = n_doubles * sizeof(double);
  const std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(p),
                                            payload);
  gather_ft(b, out.schedule, root, per_rank, "ft allreduce addend");
  bcast_ft(b, out.schedule, root, payload, payload, "ft allreduce total",
           f.victim);
  finish(out, b);
  return out;
}

FaultSchedule script_ft_tsqr_direct(std::span<const std::int64_t> rows_by_rank,
                                    std::int64_t k, const FaultScenario& f) {
  const int p = static_cast<int>(rows_by_rank.size());
  PARSVD_REQUIRE(p >= 2 && k >= 1, "ft_tsqr_direct: need p >= 2 and k >= 1");
  check_victim(p, f, /*root_must_survive=*/true);
  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule(
      "ft_tsqr_direct(p=" + std::to_string(p) + ", k=" + std::to_string(k) +
          ", rows=" + rows_suffix(rows_by_rank) + ")",
      p);
  FaultBuilder b(out.schedule, f);
  Schedule& s = out.schedule;

  const auto rloc = [&](int r) {
    return std::min<std::int64_t>(rows_by_rank[static_cast<std::size_t>(r)], k);
  };

  // FT gather of the local R factors (min(rows, k) x k each).
  std::vector<std::uint64_t> rbytes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    rbytes[static_cast<std::size_t>(r)] = matrix_bytes(rloc(r), k);
  }
  const std::vector<bool> delivered =
      gather_ft(b, s, 0, rbytes, "local R factor");

  // Stacked-QR extent over the contributors (root included), degraded
  // and healthy. A delivered victim means nothing was excluded, so the
  // two agree whenever the victim's later receives execute.
  std::int64_t stack = 0;
  std::int64_t stack_h = 0;
  for (int r = 0; r < p; ++r) {
    stack_h += rloc(r);
    if (delivered[static_cast<std::size_t>(r)]) stack += rloc(r);
  }
  const std::int64_t qcols = std::min(stack, k);
  const std::int64_t qcols_h = std::min(stack_h, k);
  const std::int64_t ndead =
      delivered[static_cast<std::size_t>(f.victim)] ? 0 : 1;

  // Q row-slices back to the contributing survivors only. The skip is
  // decided from the gather results — deterministic, not an is_dead
  // race; a contributor dying afterwards just leaves its posted slice
  // unconsumed in the dead mailbox.
  for (int dst = 1; dst < p; ++dst) {
    if (!delivered[static_cast<std::size_t>(dst)]) continue;
    b.send(0, dst, pmpi::tags::tsqr_down(0), matrix_bytes(rloc(dst), qcols),
           "Q row-slice");
  }
  for (int dst = 1; dst < p; ++dst) {
    b.recv(dst, 0, pmpi::tags::tsqr_down(0),
           matrix_bytes(rloc(dst), dst == f.victim ? qcols_h : qcols),
           "Q row-slice (naked; root must survive)");
  }

  // FT broadcasts of the final R and the exclusion list.
  bcast_ft(b, s, 0, matrix_bytes(qcols_h, k), matrix_bytes(qcols, k),
           "final R", f.victim);
  bcast_ft(b, s, 0, 0,
           static_cast<std::uint64_t>(ndead) * sizeof(double),
           "exclusion list", f.victim);
  finish(out, b);
  return out;
}

FaultSchedule script_ft_apmos(std::span<const std::int64_t> rows_by_rank,
                              std::int64_t n_cols, std::int64_t r1,
                              std::int64_t r2, const FaultScenario& f) {
  const int p = static_cast<int>(rows_by_rank.size());
  PARSVD_REQUIRE(p >= 2 && n_cols >= 1 && r1 >= 1 && r2 >= 1,
                 "ft_apmos: need p >= 2 and positive n_cols/r1/r2");
  check_victim(p, f, /*root_must_survive=*/true);
  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule(
      "ft_apmos(p=" + std::to_string(p) + ", n=" + std::to_string(n_cols) +
          ", r1=" + std::to_string(r1) + ", r2=" + std::to_string(r2) +
          ", rows=" + rows_suffix(rows_by_rank) + ")",
      p);
  FaultBuilder b(out.schedule, f);
  Schedule& s = out.schedule;

  // Stage-3 payload per rank: 16-byte [rows, energy] header + packed
  // W^i, W^i being n_cols x k1 with k1 = min(r1, rows, n_cols).
  const auto k1 = [&](int r) {
    return std::min(
        r1, std::min(rows_by_rank[static_cast<std::size_t>(r)], n_cols));
  };
  std::vector<std::uint64_t> wbytes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    wbytes[static_cast<std::size_t>(r)] =
        2 * sizeof(double) + matrix_bytes(n_cols, k1(r));
  }
  const std::vector<bool> delivered =
      gather_ft(b, s, 0, wbytes, "W block + extent header");

  // Root SVD extent over the surviving stack, degraded and healthy.
  std::int64_t ksum = 0;
  std::int64_t ksum_h = 0;
  std::int64_t surviving_rows = 0;
  for (int r = 0; r < p; ++r) {
    ksum_h += k1(r);
    if (delivered[static_cast<std::size_t>(r)]) {
      ksum += k1(r);
      surviving_rows += rows_by_rank[static_cast<std::size_t>(r)];
    }
  }
  const std::int64_t rho = std::min(r2, std::min(n_cols, ksum));
  const std::int64_t rho_h = std::min(r2, std::min(n_cols, ksum_h));
  const bool degraded = !delivered[static_cast<std::size_t>(f.victim)];

  bcast_ft(b, s, 0, matrix_bytes(n_cols, rho_h), matrix_bytes(n_cols, rho),
           "X modes", f.victim);
  bcast_ft(b, s, 0, static_cast<std::uint64_t>(rho_h) * sizeof(double),
           static_cast<std::uint64_t>(rho) * sizeof(double), "singular values",
           f.victim);

  // The APMOS FaultReport is derived entirely from the gather results,
  // so unlike the streaming report it is race-free by construction.
  out.report_flat.push_back(degraded ? 1.0 : 0.0);
  out.report_flat.push_back(degraded ? 1.0 : 0.0);  // ndead
  if (degraded) out.report_flat.push_back(static_cast<double>(f.victim));
  out.report_flat.push_back(static_cast<double>(surviving_rows));
  out.report_flat.push_back(0.0);  // lost_rows: unknowable pre-extent
  out.report_flat.push_back(degraded ? 0.0 : 1.0);  // extent_known
  out.report_flat.push_back(degraded ? 0.0 : 1.0);  // coverage
  out.report_flat.push_back(degraded ? 1.0 : 0.0);  // accuracy_bound
  bcast_ft(b, s, 0, 7 * sizeof(double),
           out.report_flat.size() * sizeof(double), "fault report", f.victim);
  finish(out, b);
  return out;
}

FaultSchedule script_ft_streaming_updates(const StreamingShape& shape,
                                          const FaultScenario& f) {
  const int p = static_cast<int>(shape.rows_by_rank.size());
  PARSVD_REQUIRE(p >= 2, "ft_streaming: need p >= 2");
  PARSVD_REQUIRE(shape.num_modes >= 1 && shape.batch_cols >= 1 &&
                     shape.rounds >= 1,
                 "ft_streaming: need positive num_modes/batch_cols/rounds");
  check_victim(p, f, /*root_must_survive=*/true);
  PARSVD_REQUIRE(shape.init_energy.empty() ||
                     static_cast<int>(shape.init_energy.size()) == p,
                 "ft_streaming: init_energy size != p");
  PARSVD_REQUIRE(shape.round_energy.empty() ||
                     static_cast<int>(shape.round_energy.size()) ==
                         shape.rounds,
                 "ft_streaming: round_energy size != rounds");

  const std::int64_t K = shape.num_modes;
  const std::int64_t B = shape.batch_cols;
  const std::int64_t total_rows = [&] {
    std::int64_t n = 0;
    for (const std::int64_t r : shape.rows_by_rank) n += r;
    return n;
  }();

  FaultSchedule out;
  out.scenario = f;
  out.schedule = make_schedule(
      "ft_streaming(p=" + std::to_string(p) + ", K=" + std::to_string(K) +
          ", B=" + std::to_string(B) + ", T=" + std::to_string(shape.rounds) +
          ", rows=" + rows_suffix(shape.rows_by_rank) + ")",
      p);
  FaultBuilder b(out.schedule, f);
  Schedule& s = out.schedule;

  // Root's per-rank energy ledger, seeded by the healthy initialize.
  std::vector<double> ledger(static_cast<std::size_t>(p), 1.0);
  if (!shape.init_energy.empty()) ledger = shape.init_energy;

  const auto rows = [&](int r) {
    return shape.rows_by_rank[static_cast<std::size_t>(r)];
  };

  // u_local_ column count entering each round, degraded and healthy
  // (they diverge only once an exclusion actually shrinks the stack).
  std::int64_t ucols = shape.start_cols >= 0 ? shape.start_cols : K;
  std::int64_t ucols_h = ucols;

  for (int t = 0; t < shape.rounds; ++t) {
    const std::string round = "update " + std::to_string(t + 1);

    // Energy fold: 8-byte Frobenius addend per rank.
    const std::vector<std::uint64_t> ebytes(static_cast<std::size_t>(p),
                                            sizeof(double));
    const std::vector<bool> delivered_e =
        gather_ft(b, s, 0, ebytes, round + ": batch energy");
    for (int r = 0; r < p; ++r) {
      if (!delivered_e[static_cast<std::size_t>(r)]) continue;
      ledger[static_cast<std::size_t>(r)] +=
          shape.round_energy.empty()
              ? 1.0
              : shape.round_energy[static_cast<std::size_t>(t)]
                                  [static_cast<std::size_t>(r)];
    }

    // tsqr_direct_ft on [discounted modes | batch]: k = ucols + B.
    const std::int64_t k = ucols + B;
    const std::int64_t k_h = ucols_h + B;
    std::vector<std::uint64_t> rbytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const std::int64_t kk = r == f.victim ? k_h : k;
      rbytes[static_cast<std::size_t>(r)] =
          matrix_bytes(std::min(rows(r), kk), kk);
    }
    const std::vector<bool> delivered_t =
        gather_ft(b, s, 0, rbytes, round + ": local R factor");
    std::int64_t stack = 0;
    std::int64_t stack_h = 0;
    for (int r = 0; r < p; ++r) {
      stack_h += std::min(rows(r), k_h);
      if (delivered_t[static_cast<std::size_t>(r)]) {
        stack += std::min(rows(r), k);
      }
    }
    const std::int64_t qcols = std::min(stack, k);
    const std::int64_t qcols_h = std::min(stack_h, k_h);
    const std::int64_t ndead_t =
        delivered_t[static_cast<std::size_t>(f.victim)] ? 0 : 1;
    for (int dst = 1; dst < p; ++dst) {
      if (!delivered_t[static_cast<std::size_t>(dst)]) continue;
      b.send(0, dst, pmpi::tags::tsqr_down(0),
             matrix_bytes(std::min(rows(dst), k), qcols),
             round + ": Q row-slice");
    }
    for (int dst = 1; dst < p; ++dst) {
      const std::int64_t kk = dst == f.victim ? k_h : k;
      b.recv(dst, 0, pmpi::tags::tsqr_down(0),
             matrix_bytes(std::min(rows(dst), kk),
                          dst == f.victim ? qcols_h : qcols),
             round + ": Q row-slice (naked; root must survive)");
    }
    bcast_ft(b, s, 0, matrix_bytes(qcols_h, k_h), matrix_bytes(qcols, k),
             round + ": final R", f.victim);
    bcast_ft(b, s, 0, 0,
             static_cast<std::uint64_t>(ndead_t) * sizeof(double),
             round + ": exclusion list", f.victim);

    // Root SVD of the global R, truncated to K, then FT result bcasts.
    const std::int64_t keep = std::min(K, qcols);
    const std::int64_t keep_h = std::min(K, qcols_h);
    bcast_ft(b, s, 0, matrix_bytes(qcols_h, keep_h),
             matrix_bytes(qcols, keep), round + ": rotation U", f.victim);
    bcast_ft(b, s, 0, static_cast<std::uint64_t>(keep_h) * sizeof(double),
             static_cast<std::uint64_t>(keep) * sizeof(double),
             round + ": singular values", f.victim);
    ucols = keep;
    ucols_h = keep_h;

    // Mode gather of the rotated u_local blocks (rows x keep each).
    std::vector<std::uint64_t> mbytes(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      mbytes[static_cast<std::size_t>(r)] =
          matrix_bytes(rows(r), r == f.victim ? ucols_h : ucols);
    }
    gather_ft(b, s, 0, mbytes, round + ": mode block");

    // FaultReport: root reads Communicator::dead_ranks() — context
    // truth, so the observation is racy when the kill lands exactly at
    // the victim's report receive.
    const int ndead = b.report_ndead(0);
    const std::int64_t lost_rows = ndead ? rows(f.victim) : 0;
    double total_energy = 0.0;
    for (const double e : ledger) total_energy += e;
    const double lost_energy =
        ndead ? ledger[static_cast<std::size_t>(f.victim)] : 0.0;
    const double coverage =
        total_energy > 0.0 ? (total_energy - lost_energy) / total_energy : 1.0;
    std::vector<double> flat;
    flat.push_back(ndead ? 1.0 : 0.0);
    flat.push_back(static_cast<double>(ndead));
    if (ndead) flat.push_back(static_cast<double>(f.victim));
    flat.push_back(static_cast<double>(total_rows - lost_rows));
    flat.push_back(static_cast<double>(lost_rows));
    flat.push_back(1.0);  // extent_known: rows recorded at initialize
    flat.push_back(coverage);
    flat.push_back(std::sqrt(std::max(0.0, 1.0 - coverage)));
    bcast_ft(b, s, 0, 7 * sizeof(double), flat.size() * sizeof(double),
             round + ": fault report", f.victim);
    out.report_flat = std::move(flat);
  }
  finish(out, b);
  return out;
}

}  // namespace parsvd::verify
