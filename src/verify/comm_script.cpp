#include "verify/comm_script.hpp"

#include "support/error.hpp"

namespace parsvd::verify {

const char* to_string(CommEvent::Kind kind) {
  switch (kind) {
    case CommEvent::Kind::Send:
      return "Send";
    case CommEvent::Kind::Recv:
      return "Recv";
    case CommEvent::Kind::IrecvPost:
      return "IrecvPost";
    case CommEvent::Kind::Wait:
      return "Wait";
    case CommEvent::Kind::WaitAll:
      return "WaitAll";
  }
  return "?";
}

std::string to_string(const CommEvent& e) {
  std::string out(to_string(e.kind));
  out += '(';
  switch (e.kind) {
    case CommEvent::Kind::Send:
      out += "dest=" + std::to_string(e.peer);
      break;
    case CommEvent::Kind::Recv:
    case CommEvent::Kind::IrecvPost:
      out += "src=" + std::to_string(e.peer);
      break;
    case CommEvent::Kind::Wait:
      out += "req=" + std::to_string(e.req);
      break;
    case CommEvent::Kind::WaitAll: {
      out += "reqs={";
      for (std::size_t i = 0; i < e.reqs.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(e.reqs[i]);
      }
      out += '}';
      break;
    }
  }
  if (e.kind == CommEvent::Kind::Send || e.kind == CommEvent::Kind::Recv ||
      e.kind == CommEvent::Kind::IrecvPost) {
    out += ", tag=" + std::to_string(e.tag);
    out += e.bytes == kAnyBytes ? ", ? B" : ", " + std::to_string(e.bytes) + " B";
  }
  if (e.bounded) out += ", bounded";
  out += ')';
  if (!e.note.empty()) {
    out += "  // ";
    out += e.note;
  }
  return out;
}

void CommScript::send(int dest, int tag, std::uint64_t bytes,
                      std::string note) {
  CommEvent e;
  e.kind = CommEvent::Kind::Send;
  e.peer = dest;
  e.tag = tag;
  e.bytes = bytes;
  e.note = std::move(note);
  events_.push_back(std::move(e));
}

void CommScript::recv(int src, int tag, std::uint64_t bytes, std::string note) {
  CommEvent e;
  e.kind = CommEvent::Kind::Recv;
  e.peer = src;
  e.tag = tag;
  e.bytes = bytes;
  e.note = std::move(note);
  events_.push_back(std::move(e));
}

void CommScript::recv_bounded(int src, int tag, std::uint64_t bytes,
                              std::string note) {
  CommEvent e;
  e.kind = CommEvent::Kind::Recv;
  e.peer = src;
  e.tag = tag;
  e.bytes = bytes;
  e.bounded = true;
  e.note = std::move(note);
  events_.push_back(std::move(e));
}

int CommScript::irecv(int src, int tag, std::uint64_t bytes, std::string note) {
  CommEvent e;
  e.kind = CommEvent::Kind::IrecvPost;
  e.peer = src;
  e.tag = tag;
  e.bytes = bytes;
  e.req = next_req_++;
  e.note = std::move(note);
  events_.push_back(std::move(e));
  return events_.back().req;
}

void CommScript::wait(int req, std::string note) {
  PARSVD_REQUIRE(req >= 0 && req < next_req_, "wait on unknown request id");
  CommEvent e;
  e.kind = CommEvent::Kind::Wait;
  e.req = req;
  e.note = std::move(note);
  events_.push_back(std::move(e));
}

void CommScript::wait_all(std::vector<int> reqs, std::string note) {
  for (const int req : reqs) {
    PARSVD_REQUIRE(req >= 0 && req < next_req_, "wait_all on unknown request id");
  }
  CommEvent e;
  e.kind = CommEvent::Kind::WaitAll;
  e.reqs = std::move(reqs);
  e.note = std::move(note);
  events_.push_back(std::move(e));
}

std::string FaultScenario::suffix() const {
  return " + kill(victim=" + std::to_string(victim) +
         ", step=" + std::to_string(kill_step) + ")";
}

Schedule make_schedule(std::string name, int p) {
  PARSVD_REQUIRE(p >= 1, "schedule needs at least one rank");
  Schedule s;
  s.name = std::move(name);
  s.ranks.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) s.ranks.emplace_back(r);
  return s;
}

}  // namespace parsvd::verify
