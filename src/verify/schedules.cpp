#include "verify/schedules.hpp"

#include <map>
#include <utility>

#include "pmpi/tags.hpp"
#include "support/error.hpp"

namespace parsvd::verify {

namespace {

namespace tags = pmpi::tags;
namespace topo = pmpi::topology;

/// Packed Matrix wire size: [i64 rows][i64 cols][doubles...].
constexpr std::uint64_t matrix_bytes(std::int64_t rows, std::int64_t cols) {
  return 2 * sizeof(std::int64_t) +
         static_cast<std::uint64_t>(rows * cols) * sizeof(double);
}

/// Mirror of Communicator::bcast appended onto an existing schedule, so
/// the composite protocols (allreduce fallback, allgather, TSQR final R)
/// reuse it exactly as the production code reuses bcast().
void emit_bcast(Schedule& s, int root, std::uint64_t bytes,
                const CollectiveConfig& cfg, const std::string& note) {
  const int p = s.size();
  if (p == 1) return;
  if (cfg.algo == pmpi::CollectiveAlgo::Flat) {
    for (int r = 0; r < p; ++r) {
      if (r == root) {
        for (int dst = 0; dst < p; ++dst) {
          if (dst == root) continue;
          s.ranks[static_cast<std::size_t>(r)].send(dst, tags::kBcast, bytes,
                                                    note);
        }
      } else {
        s.ranks[static_cast<std::size_t>(r)].recv(root, tags::kBcast, bytes,
                                                  note);
      }
    }
    return;
  }
  for (int r = 0; r < p; ++r) {
    CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    const int vrank = (r - root + p) % p;
    if (vrank != 0) {
      const int parent = (topo::binomial_parent(vrank) + root) % p;
      script.recv(parent, tags::kBcast, bytes, note);
    }
    for (const int child_v : topo::binomial_children(vrank, p,
                                                     /*ascending=*/false)) {
      script.send((child_v + root) % p, tags::kBcast, bytes, note);
    }
  }
}

/// Mirror of Communicator::gather_bytes_impl (flat root loop or binomial
/// tree with framed subtree aggregation).
void emit_gather(Schedule& s, int root,
                 std::span<const std::uint64_t> bytes_per_rank,
                 const CollectiveConfig& cfg, const std::string& note) {
  const int p = s.size();
  PARSVD_REQUIRE(static_cast<int>(bytes_per_rank.size()) == p,
                 "emit_gather: need one byte count per rank");
  if (p == 1) return;
  if (!topo::use_tree_gather(cfg.algo, p, cfg.tree_min_ranks)) {
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      s.ranks[static_cast<std::size_t>(r)].send(
          root, tags::kGather, bytes_per_rank[static_cast<std::size_t>(r)],
          note);
    }
    for (int src = 0; src < p; ++src) {
      if (src == root) continue;
      s.ranks[static_cast<std::size_t>(root)].recv(
          src, tags::kGather, bytes_per_rank[static_cast<std::size_t>(src)],
          note);
    }
    return;
  }
  // A node's frame carries its whole virtual subtree [vrank, vrank+n):
  //   [u64 n][n x (u64 src, u64 nbytes)][payloads...]
  const auto frame_bytes = [&](int vrank) {
    const int n = topo::binomial_subtree(vrank, p);
    std::uint64_t total = sizeof(std::uint64_t) +
                          static_cast<std::uint64_t>(n) * 2 *
                              sizeof(std::uint64_t);
    for (int v = vrank; v < vrank + n; ++v) {
      total += bytes_per_rank[static_cast<std::size_t>((v + root) % p)];
    }
    return total;
  };
  for (int r = 0; r < p; ++r) {
    CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    const int vrank = (r - root + p) % p;
    for (const int child_v : topo::binomial_children(vrank, p,
                                                     /*ascending=*/true)) {
      script.recv((child_v + root) % p, tags::kGatherTree,
                  frame_bytes(child_v), note + " subtree frame");
    }
    if (vrank != 0) {
      script.send((topo::binomial_parent(vrank) + root) % p, tags::kGatherTree,
                  frame_bytes(vrank), note + " subtree frame");
    }
  }
}

/// Mirror of Communicator::reduce (flat root loop or binomial tree).
void emit_reduce(Schedule& s, int root, std::uint64_t bytes,
                 const CollectiveConfig& cfg, const std::string& note) {
  const int p = s.size();
  if (p == 1) return;
  if (topo::use_tree_reduce(cfg.algo, p, bytes, cfg.tree_min_ranks,
                            cfg.eager_threshold_bytes)) {
    for (int r = 0; r < p; ++r) {
      CommScript& script = s.ranks[static_cast<std::size_t>(r)];
      const int vrank = (r - root + p) % p;
      for (const int child_v : topo::binomial_children(vrank, p,
                                                       /*ascending=*/true)) {
        script.recv((child_v + root) % p, tags::kReduceTree, bytes, note);
      }
      if (vrank != 0) {
        script.send((topo::binomial_parent(vrank) + root) % p,
                    tags::kReduceTree, bytes, note);
      }
    }
    return;
  }
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    s.ranks[static_cast<std::size_t>(r)].send(root, tags::kReduce, bytes, note);
  }
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    s.ranks[static_cast<std::size_t>(root)].recv(src, tags::kReduce, bytes,
                                                 note);
  }
}

/// Mirror of Communicator::allreduce (recursive doubling above the eager
/// threshold, reduce-to-0 + bcast below it).
void emit_allreduce(Schedule& s, std::uint64_t bytes,
                    const CollectiveConfig& cfg, const std::string& note) {
  const int p = s.size();
  if (p == 1) return;
  if (!topo::use_tree_reduce(cfg.algo, p, bytes, cfg.tree_min_ranks,
                             cfg.eager_threshold_bytes)) {
    // allreduce() delegates to reduce(0) + bcast(0); reduce re-evaluates
    // the same predicate with the same inputs, so it stays flat.
    emit_reduce(s, 0, bytes, cfg, note + " reduce leg");
    emit_bcast(s, 0, bytes, cfg, note + " bcast leg");
    return;
  }
  for (int r = 0; r < p; ++r) {
    CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    const topo::RdSchedule sched = topo::rd_schedule(r, p);
    if (sched.folded_out) {
      script.send(sched.fold_peer, tags::kAllreduce, bytes, note + " fold-in");
      script.recv(sched.fold_peer, tags::kAllreduce, bytes, note + " fan-out");
      continue;
    }
    if (sched.fold_peer >= 0) {
      script.recv(sched.fold_peer, tags::kAllreduce, bytes, note + " fold-in");
    }
    for (const int partner : sched.partners) {
      script.send(partner, tags::kAllreduce, bytes, note + " rd exchange");
      script.recv(partner, tags::kAllreduce, bytes, note + " rd exchange");
    }
    if (sched.fold_peer >= 0) {
      script.send(sched.fold_peer, tags::kAllreduce, bytes, note + " fan-out");
    }
  }
}

std::string algo_name(pmpi::CollectiveAlgo algo) {
  switch (algo) {
    case pmpi::CollectiveAlgo::Auto:
      return "auto";
    case pmpi::CollectiveAlgo::Flat:
      return "flat";
    case pmpi::CollectiveAlgo::Tree:
      return "tree";
  }
  return "?";
}

}  // namespace

std::string CollectiveConfig::suffix() const {
  return ", algo=" + algo_name(algo) +
         ", eager=" + std::to_string(eager_threshold_bytes) +
         ", tmr=" + std::to_string(tree_min_ranks);
}

Schedule script_bcast(int p, int root, std::uint64_t bytes,
                      const CollectiveConfig& cfg) {
  Schedule s = make_schedule("bcast(p=" + std::to_string(p) +
                                 ", root=" + std::to_string(root) + ", " +
                                 std::to_string(bytes) + " B" + cfg.suffix() +
                                 ")",
                             p);
  emit_bcast(s, root, bytes, cfg, "bcast");
  return s;
}

Schedule script_gather(int p, int root,
                       std::span<const std::uint64_t> bytes_per_rank,
                       const CollectiveConfig& cfg) {
  Schedule s = make_schedule("gather(p=" + std::to_string(p) +
                                 ", root=" + std::to_string(root) +
                                 cfg.suffix() + ")",
                             p);
  emit_gather(s, root, bytes_per_rank, cfg, "gather");
  return s;
}

Schedule script_allgather(int p, std::uint64_t per_rank_bytes,
                          const CollectiveConfig& cfg) {
  Schedule s = make_schedule("allgather(p=" + std::to_string(p) + ", " +
                                 std::to_string(per_rank_bytes) +
                                 " B/rank" + cfg.suffix() + ")",
                             p);
  const std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(p),
                                            per_rank_bytes);
  emit_gather(s, 0, per_rank, cfg, "allgather gather leg");
  emit_bcast(s, 0, per_rank_bytes * static_cast<std::uint64_t>(p), cfg,
             "allgather bcast leg");
  return s;
}

Schedule script_reduce(int p, int root, std::uint64_t bytes,
                       const CollectiveConfig& cfg) {
  Schedule s = make_schedule("reduce(p=" + std::to_string(p) +
                                 ", root=" + std::to_string(root) + ", " +
                                 std::to_string(bytes) + " B" + cfg.suffix() +
                                 ")",
                             p);
  emit_reduce(s, root, bytes, cfg, "reduce");
  return s;
}

Schedule script_allreduce(int p, std::uint64_t bytes,
                          const CollectiveConfig& cfg) {
  Schedule s = make_schedule("allreduce(p=" + std::to_string(p) + ", " +
                                 std::to_string(bytes) + " B" + cfg.suffix() +
                                 ")",
                             p);
  emit_allreduce(s, bytes, cfg, "allreduce");
  return s;
}

Schedule script_scatter_rows(int p, int root,
                             std::span<const std::uint64_t> block_bytes,
                             const CollectiveConfig& cfg) {
  PARSVD_REQUIRE(static_cast<int>(block_bytes.size()) == p,
                 "script_scatter_rows: need one block size per rank");
  Schedule s = make_schedule("scatter_rows(p=" + std::to_string(p) +
                                 ", root=" + std::to_string(root) +
                                 cfg.suffix() + ")",
                             p);
  if (p == 1) return s;
  for (int dst = 0; dst < p; ++dst) {
    if (dst == root) continue;
    s.ranks[static_cast<std::size_t>(root)].send(
        dst, tags::kScatter, block_bytes[static_cast<std::size_t>(dst)],
        "scatter row block");
    s.ranks[static_cast<std::size_t>(dst)].recv(
        root, tags::kScatter, block_bytes[static_cast<std::size_t>(dst)],
        "scatter row block");
  }
  return s;
}

Schedule script_tsqr_tree(int p, std::int64_t k, const CollectiveConfig& cfg) {
  Schedule s = make_schedule("tsqr_tree(p=" + std::to_string(p) +
                                 ", k=" + std::to_string(k) + cfg.suffix() +
                                 ")",
                             p);
  if (p == 1) return s;
  // With local rows >= k (the documented precondition), every exchanged
  // R factor and down-sweep transform is a packed k x k matrix.
  const std::uint64_t kk = matrix_bytes(k, k);
  for (int r = 0; r < p; ++r) {
    CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    const topo::TsqrPlan plan = topo::tsqr_plan(r, p);

    // Pre-posted receive schedule (the pipelined region): every up-sweep
    // R and the parent's down-sweep transform, before any compute.
    std::vector<int> up_reqs;
    up_reqs.reserve(plan.recvs.size());
    for (const auto& step : plan.recvs) {
      up_reqs.push_back(script.irecv(
          step.partner, tags::tsqr_up(step.level), kk,
          "up-sweep R, level " + std::to_string(step.level)));
    }
    int t_req = -1;
    if (r != 0) {
      t_req = script.irecv(plan.parent, tags::tsqr_down(plan.sent_level), kk,
                           "down-sweep transform");
    }

    // Upward sweep: consume pre-posted receives in level order, then
    // ship the combined R to the parent.
    for (std::size_t i = 0; i < up_reqs.size(); ++i) {
      script.wait(up_reqs[i],
                  "combine level " + std::to_string(plan.recvs[i].level));
    }
    if (plan.sent_level >= 0) {
      script.send(plan.parent, tags::tsqr_up(plan.sent_level), kk,
                  "ship R up, level " + std::to_string(plan.sent_level));
    }

    // Downward sweep: take the transform, unwind in reverse level order.
    if (r != 0) {
      script.wait(t_req, "take down-sweep transform");
    }
    for (std::size_t i = plan.recvs.size(); i-- > 0;) {
      script.send(plan.recvs[i].partner, tags::tsqr_down(plan.recvs[i].level),
                  kk,
                  "forward transform, level " +
                      std::to_string(plan.recvs[i].level));
    }
  }
  emit_bcast(s, 0, kk, cfg, "final R bcast");
  return s;
}

Schedule script_apmos(int p, std::uint64_t w_bytes, std::uint64_t x_bytes,
                      std::uint64_t lambda_bytes, const CollectiveConfig& cfg) {
  Schedule s = make_schedule("apmos(p=" + std::to_string(p) + cfg.suffix() +
                                 ")",
                             p);
  if (p > 1) {
    // Stage 3: root pre-posts every W receive before its own Stage-1/2
    // factorization and consumes them in completion order (wait_any, so
    // one order-abstracted WaitAll); non-roots ship a buffered isend.
    CommScript& root = s.ranks[0];
    std::vector<int> w_reqs;
    w_reqs.reserve(static_cast<std::size_t>(p - 1));
    for (int src = 1; src < p; ++src) {
      w_reqs.push_back(root.irecv(src, tags::apmos_w(), w_bytes,
                                  "W block pre-post"));
    }
    root.wait_all(std::move(w_reqs), "assemble W (completion order)");
    for (int r = 1; r < p; ++r) {
      s.ranks[static_cast<std::size_t>(r)].send(0, tags::apmos_w(), w_bytes,
                                                "ship W block");
    }
  }
  // Stage 5: result broadcasts.
  emit_bcast(s, 0, x_bytes, cfg, "X bcast");
  emit_bcast(s, 0, lambda_bytes, cfg, "lambda bcast");
  return s;
}

// ------------------------------------------------ communicator groups

void embed_group_schedule(Schedule& world, const Schedule& local,
                          const GroupSpec& g) {
  PARSVD_REQUIRE(g.id >= 1 && g.id <= tags::kMaxGroups,
                 "embed_group_schedule: group id out of the minted range");
  PARSVD_REQUIRE(local.size() == static_cast<int>(g.members.size()),
                 "embed_group_schedule: schedule size != member count");
  for (int gr = 0; gr < local.size(); ++gr) {
    const int wr = g.members[static_cast<std::size_t>(gr)];
    PARSVD_REQUIRE(wr >= 0 && wr < world.size(),
                   "embed_group_schedule: member outside the world");
    CommScript& dst = world.ranks[static_cast<std::size_t>(wr)];
    // Request ids are per-script counters; remap the local ids onto the
    // ids the destination script mints (it may already hold events from
    // a previous embed or from world traffic).
    std::map<int, int> req_map;
    const std::string where = " [group" + std::to_string(g.id) + "]";
    for (const CommEvent& e : local.ranks[static_cast<std::size_t>(gr)]
                                  .events()) {
      const auto peer = [&] {
        PARSVD_REQUIRE(e.peer >= 0 && e.peer < local.size(),
                       "embed_group_schedule: peer outside the group");
        return g.members[static_cast<std::size_t>(e.peer)];
      };
      const int tag = e.kind == CommEvent::Kind::Wait ||
                              e.kind == CommEvent::Kind::WaitAll
                          ? e.tag
                          : tags::group_scope(g.id, e.tag);
      switch (e.kind) {
        case CommEvent::Kind::Send:
          dst.send(peer(), tag, e.bytes, e.note + where);
          break;
        case CommEvent::Kind::Recv:
          dst.recv(peer(), tag, e.bytes, e.note + where);
          break;
        case CommEvent::Kind::IrecvPost:
          req_map[e.req] = dst.irecv(peer(), tag, e.bytes, e.note + where);
          break;
        case CommEvent::Kind::Wait:
          dst.wait(req_map.at(e.req), e.note + where);
          break;
        case CommEvent::Kind::WaitAll: {
          std::vector<int> reqs;
          reqs.reserve(e.reqs.size());
          for (const int r : e.reqs) reqs.push_back(req_map.at(r));
          dst.wait_all(std::move(reqs), e.note + where);
          break;
        }
      }
    }
  }
}

Schedule script_group_barrier(int p) {
  Schedule s = make_schedule("group_barrier(p=" + std::to_string(p) + ")", p);
  if (p == 1) return s;
  // Flat arrive-then-release through group rank 0, exactly the message
  // barrier Communicator::barrier posts on a group communicator.
  for (int src = 1; src < p; ++src) {
    s.ranks[0].recv(src, tags::kBarrier, 0, "barrier arrive");
  }
  for (int dst = 1; dst < p; ++dst) {
    s.ranks[0].send(dst, tags::kBarrier, 0, "barrier release");
  }
  for (int r = 1; r < p; ++r) {
    s.ranks[static_cast<std::size_t>(r)].send(0, tags::kBarrier, 0,
                                              "barrier arrive");
    s.ranks[static_cast<std::size_t>(r)].recv(0, tags::kBarrier, 0,
                                              "barrier release");
  }
  return s;
}

const char* to_string(GroupProtocol proto) {
  switch (proto) {
    case GroupProtocol::Bcast:
      return "bcast";
    case GroupProtocol::Gather:
      return "gather";
    case GroupProtocol::Reduce:
      return "reduce";
    case GroupProtocol::Allreduce:
      return "allreduce";
    case GroupProtocol::Allgather:
      return "allgather";
    case GroupProtocol::Barrier:
      return "barrier";
    case GroupProtocol::TsqrTree:
      return "tsqr";
    case GroupProtocol::Apmos:
      return "apmos";
  }
  return "?";
}

namespace {

Schedule group_protocol_schedule(GroupProtocol proto, int p,
                                 std::uint64_t bytes,
                                 const CollectiveConfig& cfg) {
  switch (proto) {
    case GroupProtocol::Bcast:
      return script_bcast(p, 0, bytes, cfg);
    case GroupProtocol::Gather: {
      // Asymmetric contributions, as gatherv allows.
      std::vector<std::uint64_t> per(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        per[static_cast<std::size_t>(r)] =
            bytes + 8 * static_cast<std::uint64_t>(r);
      }
      return script_gather(p, 0, per, cfg);
    }
    case GroupProtocol::Reduce:
      return script_reduce(p, 0, bytes, cfg);
    case GroupProtocol::Allreduce:
      return script_allreduce(p, bytes, cfg);
    case GroupProtocol::Allgather:
      return script_allgather(p, bytes, cfg);
    case GroupProtocol::Barrier:
      return script_group_barrier(p);
    case GroupProtocol::TsqrTree:
      return script_tsqr_tree(p, 3, cfg);
    case GroupProtocol::Apmos:
      return script_apmos(p, bytes, bytes, 32, cfg);
  }
  PARSVD_REQUIRE(false, "group_protocol_schedule: unknown protocol");
  return make_schedule("?", p);
}

}  // namespace

Schedule script_partition(int world_p, std::span<const GroupSpec> groups,
                          std::span<const GroupProtocol> protocols,
                          std::uint64_t bytes, const CollectiveConfig& cfg) {
  PARSVD_REQUIRE(groups.size() == protocols.size(),
                 "script_partition: one protocol per group");
  std::string name = "partition(P=" + std::to_string(world_p);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    name += ", g" + std::to_string(groups[i].id) + "[" +
            std::to_string(groups[i].members.size()) + "]=" +
            to_string(protocols[i]);
  }
  name += ", " + std::to_string(bytes) + " B" + cfg.suffix() + ")";
  Schedule world = make_schedule(std::move(name), world_p);
  std::vector<bool> claimed(static_cast<std::size_t>(world_p), false);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupSpec& g = groups[i];
    for (const int m : g.members) {
      PARSVD_REQUIRE(m >= 0 && m < world_p &&
                         !claimed[static_cast<std::size_t>(m)],
                     "script_partition: groups must be disjoint world ranks");
      claimed[static_cast<std::size_t>(m)] = true;
    }
    const Schedule local = group_protocol_schedule(
        protocols[i], static_cast<int>(g.members.size()), bytes, cfg);
    embed_group_schedule(world, local, g);
  }
  return world;
}

std::map<int, GroupTotals> group_send_totals(const Schedule& s) {
  std::map<int, GroupTotals> out;
  for (const CommScript& script : s.ranks) {
    for (const CommEvent& e : script.events()) {
      if (e.kind != CommEvent::Kind::Send) continue;
      if (!tags::is_group_scoped(e.tag)) continue;
      GroupTotals& t = out[tags::scoped_group(e.tag)];
      t.messages += 1;
      t.bytes += e.bytes;
    }
  }
  return out;
}

}  // namespace parsvd::verify
