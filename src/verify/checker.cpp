#include "verify/checker.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "pmpi/tags.hpp"
#include "support/error.hpp"

namespace parsvd::verify {

namespace {

namespace tags = pmpi::tags;

/// Directed channel identity: messages from `src` to `dst` under `tag`
/// form one FIFO stream in the pmpi mailbox model.
using ChannelKey = std::tuple<int, int, int>;  // (src, dst, tag)

std::string channel_str(const ChannelKey& c) {
  return "channel (src " + std::to_string(std::get<0>(c)) + " -> dst " +
         std::to_string(std::get<1>(c)) + ", tag " +
         std::to_string(std::get<2>(c)) + ")";
}

std::string bytes_str(std::uint64_t bytes) {
  return bytes == kAnyBytes ? "? B" : std::to_string(bytes) + " B";
}

/// A few lines of one rank's script around `pc`, with a marker on the
/// event under diagnosis (or "<end of script>" when pc is past it).
void trace_rank(const CommScript& script, std::size_t pc,
                std::vector<std::string>* out) {
  const auto& events = script.events();
  out->push_back("rank " + std::to_string(script.rank()) + " (event " +
                 std::to_string(pc) + " of " + std::to_string(events.size()) +
                 "):");
  const std::size_t begin = pc >= 2 ? pc - 2 : 0;
  const std::size_t end = std::min(events.size(), pc + 3);
  for (std::size_t i = begin; i < end; ++i) {
    out->push_back(std::string(i == pc ? "  > [" : "    [") +
                   std::to_string(i) + "] " + to_string(events[i]));
  }
  if (pc >= events.size()) out->push_back("  > <end of script>");
}

// ------------------------------------------------------------ tag check

void check_tags(const Schedule& s, std::vector<Violation>* out) {
  for (const CommScript& script : s.ranks) {
    for (std::size_t i = 0; i < script.events().size(); ++i) {
      const CommEvent& e = script.events()[i];
      if (e.kind == CommEvent::Kind::Wait || e.kind == CommEvent::Kind::WaitAll)
        continue;
      if (tag_registered(e.tag)) continue;
      Violation v;
      v.kind = Violation::Kind::UnregisteredTag;
      v.message = "tag " + std::to_string(e.tag) +
                  " is outside every pmpi/tags.hpp reservation";
      trace_rank(script, i, &v.trace);
      out->push_back(std::move(v));
    }
  }
}

// ------------------------------------------------- match-completeness

struct SeqEntry {
  std::uint64_t bytes;
  int rank;        ///< owning rank (for the trace)
  std::size_t pc;  ///< event index in that rank's script
};

void check_matching(const Schedule& s, std::vector<Violation>* out) {
  std::map<ChannelKey, std::vector<SeqEntry>> sends;
  std::map<ChannelKey, std::vector<SeqEntry>> recvs;
  for (const CommScript& script : s.ranks) {
    for (std::size_t i = 0; i < script.events().size(); ++i) {
      const CommEvent& e = script.events()[i];
      switch (e.kind) {
        case CommEvent::Kind::Send:
          PARSVD_REQUIRE(e.peer >= 0 && e.peer < s.size(),
                         "checker: send peer out of range");
          sends[{script.rank(), e.peer, e.tag}].push_back(
              {e.bytes, script.rank(), i});
          break;
        case CommEvent::Kind::Recv:
        case CommEvent::Kind::IrecvPost:
          // Per-channel consumption is FIFO no matter how waits
          // interleave, so program order of the receive INTENTS is the
          // consumption order on each channel.
          PARSVD_REQUIRE(e.peer >= 0 && e.peer < s.size(),
                         "checker: recv peer out of range");
          recvs[{e.peer, script.rank(), e.tag}].push_back(
              {e.bytes, script.rank(), i});
          break;
        case CommEvent::Kind::Wait:
        case CommEvent::Kind::WaitAll:
          break;
      }
    }
  }

  std::set<ChannelKey> channels;
  for (const auto& [key, seq] : sends) channels.insert(key);
  for (const auto& [key, seq] : recvs) channels.insert(key);

  const auto entry_trace = [&](const SeqEntry& entry,
                               std::vector<std::string>* trace) {
    trace_rank(s.ranks[static_cast<std::size_t>(entry.rank)], entry.pc, trace);
  };

  for (const ChannelKey& key : channels) {
    const std::vector<SeqEntry>& sent = sends[key];
    const std::vector<SeqEntry>& received = recvs[key];
    const std::size_t common = std::min(sent.size(), received.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (sent[i].bytes == received[i].bytes ||
          sent[i].bytes == kAnyBytes || received[i].bytes == kAnyBytes) {
        continue;
      }
      Violation v;
      v.kind = Violation::Kind::ByteMismatch;
      v.message = "message " + std::to_string(i) + " on " + channel_str(key) +
                  ": sender posts " + bytes_str(sent[i].bytes) +
                  ", receiver expects " + bytes_str(received[i].bytes);
      entry_trace(sent[i], &v.trace);
      entry_trace(received[i], &v.trace);
      out->push_back(std::move(v));
    }
    for (std::size_t i = common; i < sent.size(); ++i) {
      Violation v;
      v.kind = Violation::Kind::UnmatchedSend;
      v.message = "send " + std::to_string(i) + " on " + channel_str(key) +
                  " (" + bytes_str(sent[i].bytes) +
                  ") has no matching receive";
      entry_trace(sent[i], &v.trace);
      out->push_back(std::move(v));
    }
    for (std::size_t i = common; i < received.size(); ++i) {
      Violation v;
      v.kind = Violation::Kind::UnmatchedRecv;
      v.message = "receive " + std::to_string(i) + " on " + channel_str(key) +
                  " (" + bytes_str(received[i].bytes) +
                  ") has no matching send";
      entry_trace(received[i], &v.trace);
      out->push_back(std::move(v));
    }
  }
}

// --------------------------------------------------- channel discipline

/// `limit` caps how much of each rank's script executes (the fault
/// checker truncates the victim there); kNoLimit = the whole script.
inline constexpr std::size_t kNoLimit = ~std::size_t{0};

std::size_t rank_limit(const Schedule& s, int rank, int victim,
                       std::size_t kill_step) {
  const std::size_t n =
      s.ranks[static_cast<std::size_t>(rank)].events().size();
  return rank == victim ? std::min(kill_step, n) : n;
}

void check_discipline(const Schedule& s, std::vector<Violation>* out,
                      int victim = -1, std::size_t kill_step = kNoLimit) {
  for (const CommScript& script : s.ranks) {
    const std::size_t limit = rank_limit(s, script.rank(), victim, kill_step);
    // (src, tag) -> pc of the open irecv; and req -> its channel.
    std::map<std::pair<int, int>, std::size_t> open;
    std::map<int, std::pair<int, int>> req_channel;
    const auto close_req = [&](int req, std::size_t pc) {
      const auto it = req_channel.find(req);
      if (it == req_channel.end()) {
        Violation v;
        v.kind = Violation::Kind::BadWait;
        v.message = "wait on request " + std::to_string(req) +
                    " which is not outstanding (already completed, or "
                    "never posted)";
        trace_rank(script, pc, &v.trace);
        out->push_back(std::move(v));
        return;
      }
      open.erase(it->second);
      req_channel.erase(it);
    };
    for (std::size_t i = 0; i < limit; ++i) {
      const CommEvent& e = script.events()[i];
      switch (e.kind) {
        case CommEvent::Kind::Send:
          break;
        case CommEvent::Kind::Recv:
        case CommEvent::Kind::IrecvPost: {
          const auto it = open.find({e.peer, e.tag});
          if (it != open.end()) {
            Violation v;
            v.kind = Violation::Kind::ChannelOverlap;
            v.message =
                std::string(e.kind == CommEvent::Kind::Recv
                                ? "blocking receive overlaps an outstanding "
                                  "non-blocking receive"
                                : "two outstanding non-blocking receives "
                                  "share a channel") +
                " on " +
                channel_str({e.peer, script.rank(), e.tag});
            trace_rank(script, it->second, &v.trace);
            trace_rank(script, i, &v.trace);
            out->push_back(std::move(v));
          } else if (e.kind == CommEvent::Kind::IrecvPost) {
            open[{e.peer, e.tag}] = i;
            req_channel[e.req] = {e.peer, e.tag};
          }
          break;
        }
        case CommEvent::Kind::Wait:
          close_req(e.req, i);
          break;
        case CommEvent::Kind::WaitAll:
          for (const int req : e.reqs) close_req(req, i);
          break;
      }
    }
  }
}

// ---------------------------------------------------- greedy simulation

/// One rank's simulation cursor.
struct RankState {
  std::size_t pc = 0;
  /// Open irecv request -> channel it will consume from.
  std::map<int, ChannelKey> open_reqs;
};

void check_progress(const Schedule& s, std::vector<Violation>* out) {
  const int p = s.size();
  std::vector<RankState> st(static_cast<std::size_t>(p));
  // In-flight message byte counts per channel, FIFO order.
  std::map<ChannelKey, std::vector<std::uint64_t>> queues;
  std::map<ChannelKey, std::size_t> heads;  // consumed prefix per queue

  const auto available = [&](const ChannelKey& key) {
    const auto it = queues.find(key);
    return it != queues.end() && heads[key] < it->second.size();
  };
  const auto consume = [&](const ChannelKey& key) { ++heads[key]; };

  // Try to execute rank r's next event; true when it made progress.
  const auto step = [&](int r) {
    RankState& rank = st[static_cast<std::size_t>(r)];
    const CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    if (rank.pc >= script.events().size()) return false;
    const CommEvent& e = script.events()[rank.pc];
    switch (e.kind) {
      case CommEvent::Kind::Send:
        queues[{r, e.peer, e.tag}].push_back(e.bytes);
        break;
      case CommEvent::Kind::Recv: {
        const ChannelKey key{e.peer, r, e.tag};
        if (!available(key)) return false;
        consume(key);
        break;
      }
      case CommEvent::Kind::IrecvPost:
        // Registration only; the message is consumed at the wait. A
        // malformed double-post was already reported by the discipline
        // pass — the simulation keeps the latest and carries on.
        rank.open_reqs[e.req] = {e.peer, r, e.tag};
        break;
      case CommEvent::Kind::Wait: {
        const auto it = rank.open_reqs.find(e.req);
        if (it == rank.open_reqs.end()) break;  // reported as BadWait
        if (!available(it->second)) return false;
        consume(it->second);
        rank.open_reqs.erase(it);
        break;
      }
      case CommEvent::Kind::WaitAll: {
        // wait_any consumes completions as they arrive, but consuming a
        // buffered message has no effect on any other rank's
        // enabledness, so "block until every channel has one" reaches
        // the same states beyond this event.
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it != rank.open_reqs.end() && !available(it->second))
            return false;
        }
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it == rank.open_reqs.end()) continue;
          consume(it->second);
          rank.open_reqs.erase(it);
        }
        break;
      }
    }
    ++rank.pc;
    return true;
  };

  for (;;) {
    bool progressed = false;
    for (int r = 0; r < p; ++r) {
      while (step(r)) progressed = true;
    }
    if (!progressed) break;
  }

  // Fully drained: every rank ran its script to the end.
  std::vector<int> stuck;
  for (int r = 0; r < p; ++r) {
    if (st[static_cast<std::size_t>(r)].pc <
        s.ranks[static_cast<std::size_t>(r)].events().size()) {
      stuck.push_back(r);
    }
  }
  if (stuck.empty()) return;

  // Stalled. Build the wait-for graph: each stuck rank points at the
  // source ranks of the empty channels its blocking event needs.
  const auto blockers = [&](int r) {
    std::vector<ChannelKey> needs;
    const RankState& rank = st[static_cast<std::size_t>(r)];
    const CommEvent& e =
        s.ranks[static_cast<std::size_t>(r)].events()[rank.pc];
    switch (e.kind) {
      case CommEvent::Kind::Recv:
        needs.push_back({e.peer, r, e.tag});
        break;
      case CommEvent::Kind::Wait: {
        const auto it = rank.open_reqs.find(e.req);
        if (it != rank.open_reqs.end()) needs.push_back(it->second);
        break;
      }
      case CommEvent::Kind::WaitAll:
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it != rank.open_reqs.end() && !available(it->second))
            needs.push_back(it->second);
        }
        break;
      default:
        break;
    }
    return needs;
  };

  Violation v;
  v.kind = Violation::Kind::Deadlock;
  std::vector<int> cycle_hint;
  for (const int r : stuck) {
    for (const ChannelKey& key : blockers(r)) {
      const int src = std::get<0>(key);
      const bool src_finished =
          std::find(stuck.begin(), stuck.end(), src) == stuck.end();
      v.trace.push_back("rank " + std::to_string(r) + " blocked on " +
                        channel_str(key) +
                        (src_finished ? " — source rank has FINISHED its "
                                        "script (dropped send)"
                                      : " — source rank is itself blocked"));
      if (!src_finished) cycle_hint.push_back(src);
    }
    trace_rank(s.ranks[static_cast<std::size_t>(r)],
               st[static_cast<std::size_t>(r)].pc, &v.trace);
  }
  v.message =
      std::to_string(stuck.size()) + " of " + std::to_string(p) +
      " ranks cannot run to completion" +
      (cycle_hint.empty() ? " (stalled on messages never sent)"
                          : " (cyclic wait-for)");
  out->push_back(std::move(v));
}

// ------------------------------------------- failure-space: matching

/// Match-completeness under a single-rank kill. The victim contributes
/// only its pre-kill events; channels touching it get the degraded
/// contract (prefix-exact, dead-resolvable tails), survivor<->survivor
/// channels keep the byte-exact one.
void check_fault_matching(const Schedule& s, const FaultScenario& f,
                          std::vector<Violation>* out) {
  struct RecvEntry {
    std::uint64_t bytes;
    int rank;
    std::size_t pc;
    bool bounded;
  };
  std::map<ChannelKey, std::vector<SeqEntry>> sends;
  std::map<ChannelKey, std::vector<RecvEntry>> recvs;
  for (const CommScript& script : s.ranks) {
    const std::size_t limit =
        rank_limit(s, script.rank(), f.victim, f.kill_step);
    for (std::size_t i = 0; i < limit; ++i) {
      const CommEvent& e = script.events()[i];
      switch (e.kind) {
        case CommEvent::Kind::Send:
          PARSVD_REQUIRE(e.peer >= 0 && e.peer < s.size(),
                         "fault checker: send peer out of range");
          sends[{script.rank(), e.peer, e.tag}].push_back(
              {e.bytes, script.rank(), i});
          break;
        case CommEvent::Kind::Recv:
        case CommEvent::Kind::IrecvPost:
          PARSVD_REQUIRE(e.peer >= 0 && e.peer < s.size(),
                         "fault checker: recv peer out of range");
          recvs[{e.peer, script.rank(), e.tag}].push_back(
              {e.bytes, script.rank(), i,
               e.kind == CommEvent::Kind::Recv && e.bounded});
          break;
        case CommEvent::Kind::Wait:
        case CommEvent::Kind::WaitAll:
          break;
      }
    }
  }

  std::set<ChannelKey> channels;
  for (const auto& [key, seq] : sends) channels.insert(key);
  for (const auto& [key, seq] : recvs) channels.insert(key);

  for (const ChannelKey& key : channels) {
    const int src = std::get<0>(key);
    const int dst = std::get<1>(key);
    const std::vector<SeqEntry>& sent = sends[key];
    const std::vector<RecvEntry>& received = recvs[key];
    const std::size_t common = std::min(sent.size(), received.size());
    // The executed prefix was consumed for real in every admissible
    // execution — byte-exact regardless of who dies later.
    for (std::size_t i = 0; i < common; ++i) {
      if (sent[i].bytes == received[i].bytes ||
          sent[i].bytes == kAnyBytes || received[i].bytes == kAnyBytes) {
        continue;
      }
      Violation v;
      v.kind = Violation::Kind::ByteMismatch;
      v.message = "message " + std::to_string(i) + " on " + channel_str(key) +
                  ": sender posts " + bytes_str(sent[i].bytes) +
                  ", receiver expects " + bytes_str(received[i].bytes);
      trace_rank(s.ranks[static_cast<std::size_t>(sent[i].rank)], sent[i].pc,
                 &v.trace);
      trace_rank(s.ranks[static_cast<std::size_t>(received[i].rank)],
                 received[i].pc, &v.trace);
      out->push_back(std::move(v));
    }
    for (std::size_t i = common; i < sent.size(); ++i) {
      if (dst == f.victim) continue;  // lands in the dead mailbox — dropped
      Violation v;
      v.kind = Violation::Kind::UnmatchedSend;
      v.message = "send " + std::to_string(i) + " on " + channel_str(key) +
                  " (" + bytes_str(sent[i].bytes) + ") " +
                  (src == f.victim
                       ? "was posted by the victim pre-kill but no survivor "
                         "ever consumes it"
                       : "has no matching receive among the survivors");
      trace_rank(s.ranks[static_cast<std::size_t>(sent[i].rank)], sent[i].pc,
                 &v.trace);
      out->push_back(std::move(v));
    }
    for (std::size_t i = common; i < received.size(); ++i) {
      if (src == f.victim && received[i].bounded) continue;  // dead-resolves
      Violation v;
      if (src == f.victim) {
        v.kind = Violation::Kind::OrphanedWait;
        v.message = "receive " + std::to_string(i) + " on " +
                    channel_str(key) + " is a naked wait on rank " +
                    std::to_string(f.victim) + ", which dies at step " +
                    std::to_string(f.kill_step) +
                    " without posting it — the wait can never complete";
      } else {
        v.kind = Violation::Kind::UnmatchedRecv;
        v.message =
            "receive " + std::to_string(i) + " on " + channel_str(key) + " (" +
            bytes_str(received[i].bytes) + ") has no matching send" +
            (dst == f.victim ? " — the victim cannot reach its kill point"
                             : " among the survivors");
      }
      trace_rank(s.ranks[static_cast<std::size_t>(received[i].rank)],
                 received[i].pc, &v.trace);
      if (src == f.victim) {
        trace_rank(s.ranks[static_cast<std::size_t>(f.victim)], f.kill_step,
                   &v.trace);
      }
      out->push_back(std::move(v));
    }
  }
}

// ------------------------------------------- failure-space: progress

/// Greedy simulation of the post-kill execution: the victim runs its
/// pre-kill prefix then halts; a bounded receive on the halted victim's
/// channel resolves without consuming once nothing further can arrive.
/// Confluence still holds — dead-resolution only fires when the channel
/// is provably dry forever, so it never races a real delivery.
void check_fault_progress(const Schedule& s, const FaultScenario& f,
                          std::vector<Violation>* out) {
  const int p = s.size();
  std::vector<std::size_t> limits(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    limits[static_cast<std::size_t>(r)] = rank_limit(s, r, f.victim,
                                                     f.kill_step);
  }
  std::vector<RankState> st(static_cast<std::size_t>(p));
  std::map<ChannelKey, std::vector<std::uint64_t>> queues;
  std::map<ChannelKey, std::size_t> heads;

  const auto available = [&](const ChannelKey& key) {
    const auto it = queues.find(key);
    return it != queues.end() && heads[key] < it->second.size();
  };
  const auto consume = [&](const ChannelKey& key) { ++heads[key]; };
  const auto victim_halted = [&] {
    return st[static_cast<std::size_t>(f.victim)].pc >=
           limits[static_cast<std::size_t>(f.victim)];
  };

  const auto step = [&](int r) {
    RankState& rank = st[static_cast<std::size_t>(r)];
    const CommScript& script = s.ranks[static_cast<std::size_t>(r)];
    if (rank.pc >= limits[static_cast<std::size_t>(r)]) return false;
    const CommEvent& e = script.events()[rank.pc];
    switch (e.kind) {
      case CommEvent::Kind::Send:
        queues[{r, e.peer, e.tag}].push_back(e.bytes);
        break;
      case CommEvent::Kind::Recv: {
        const ChannelKey key{e.peer, r, e.tag};
        if (!available(key)) {
          // Dead-resolution: once the victim has halted, every message
          // it will ever post is already queued; an empty channel from
          // it stays empty, so a bounded wait completes without a
          // message (the RankDeadError -> exclusion path).
          if (!(e.bounded && e.peer == f.victim && r != f.victim &&
                victim_halted())) {
            return false;
          }
          break;
        }
        consume(key);
        break;
      }
      case CommEvent::Kind::IrecvPost:
        rank.open_reqs[e.req] = {e.peer, r, e.tag};
        break;
      case CommEvent::Kind::Wait: {
        const auto it = rank.open_reqs.find(e.req);
        if (it == rank.open_reqs.end()) break;  // reported as BadWait
        if (!available(it->second)) return false;
        consume(it->second);
        rank.open_reqs.erase(it);
        break;
      }
      case CommEvent::Kind::WaitAll: {
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it != rank.open_reqs.end() && !available(it->second))
            return false;
        }
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it == rank.open_reqs.end()) continue;
          consume(it->second);
          rank.open_reqs.erase(it);
        }
        break;
      }
    }
    ++rank.pc;
    return true;
  };

  for (;;) {
    bool progressed = false;
    for (int r = 0; r < p; ++r) {
      while (step(r)) progressed = true;
    }
    if (!progressed) break;
  }

  std::vector<int> stuck;
  for (int r = 0; r < p; ++r) {
    if (st[static_cast<std::size_t>(r)].pc < limits[static_cast<std::size_t>(r)])
      stuck.push_back(r);
  }
  if (stuck.empty()) return;

  const auto blockers = [&](int r) {
    std::vector<ChannelKey> needs;
    const RankState& rank = st[static_cast<std::size_t>(r)];
    const CommEvent& e =
        s.ranks[static_cast<std::size_t>(r)].events()[rank.pc];
    switch (e.kind) {
      case CommEvent::Kind::Recv:
        needs.push_back({e.peer, r, e.tag});
        break;
      case CommEvent::Kind::Wait: {
        const auto it = rank.open_reqs.find(e.req);
        if (it != rank.open_reqs.end()) needs.push_back(it->second);
        break;
      }
      case CommEvent::Kind::WaitAll:
        for (const int req : e.reqs) {
          const auto it = rank.open_reqs.find(req);
          if (it != rank.open_reqs.end() && !available(it->second))
            needs.push_back(it->second);
        }
        break;
      default:
        break;
    }
    return needs;
  };

  // Split the stuck ranks: a rank blocked SOLELY on the halted victim's
  // dry channels holds an orphaned naked wait (the dedicated defect
  // class); anything else is an ordinary deadlock among survivors.
  std::vector<int> orphaned;
  std::vector<int> deadlocked;
  for (const int r : stuck) {
    const std::vector<ChannelKey> needs = blockers(r);
    const bool all_victim =
        r != f.victim && !needs.empty() && victim_halted() &&
        std::all_of(needs.begin(), needs.end(), [&](const ChannelKey& key) {
          return std::get<0>(key) == f.victim;
        });
    (all_victim ? orphaned : deadlocked).push_back(r);
  }

  for (const int r : orphaned) {
    Violation v;
    v.kind = Violation::Kind::OrphanedWait;
    v.message = "rank " + std::to_string(r) +
                " blocks forever on rank " + std::to_string(f.victim) +
                ", which died at step " + std::to_string(f.kill_step) +
                " — the wait is not death-bounded, so recovery never runs";
    trace_rank(s.ranks[static_cast<std::size_t>(r)],
               st[static_cast<std::size_t>(r)].pc, &v.trace);
    trace_rank(s.ranks[static_cast<std::size_t>(f.victim)], f.kill_step,
               &v.trace);
    out->push_back(std::move(v));
  }
  if (deadlocked.empty()) return;

  Violation v;
  v.kind = Violation::Kind::Deadlock;
  bool victim_stuck = false;
  for (const int r : deadlocked) {
    if (r == f.victim) victim_stuck = true;
    for (const ChannelKey& key : blockers(r)) {
      const int src = std::get<0>(key);
      const bool src_finished =
          std::find(stuck.begin(), stuck.end(), src) == stuck.end();
      v.trace.push_back("rank " + std::to_string(r) + " blocked on " +
                        channel_str(key) +
                        (src_finished ? " — source rank has FINISHED its "
                                        "script (dropped send)"
                                      : " — source rank is itself blocked"));
    }
    trace_rank(s.ranks[static_cast<std::size_t>(r)],
               st[static_cast<std::size_t>(r)].pc, &v.trace);
  }
  v.message = std::to_string(deadlocked.size()) + " of " + std::to_string(p) +
              " ranks cannot run to completion under the kill" +
              (victim_stuck ? " (the victim cannot even reach its kill point)"
                            : "");
  out->push_back(std::move(v));
}

}  // namespace

bool tag_registered(int tag) {
  if (tags::is_group_scoped(tag)) {
    // A scoped wire tag is registered iff it decodes to a valid group id
    // and a base tag that is registered in the group-LOCAL tag space:
    // the world rules below, plus kBarrier (the message-based group
    // barrier, which never appears unscoped — the world barrier is the
    // context's central rendezvous, not wire traffic), minus user tags
    // at or above kGroupUserLimit (they don't fit in one band).
    const int gid = tags::scoped_group(tag);
    if (gid < 1 || gid > tags::kMaxGroups) return false;
    const int base = tags::unscoped(tag);
    if (base >= tags::kGroupUserLimit) return false;
    return base == tags::kBarrier || tag_registered(base);
  }
  if (tag >= tags::kAllreduce && tag <= tags::kBcast) return true;
  if (tag >= tags::kTsqrUpBase && tag < tags::kApmosGatherBase + tags::kRangeWidth)
    return true;
  return tag >= tags::kUserBase;
}

const char* to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::UnregisteredTag:
      return "unregistered-tag";
    case Violation::Kind::UnmatchedSend:
      return "unmatched-send";
    case Violation::Kind::UnmatchedRecv:
      return "unmatched-recv";
    case Violation::Kind::ByteMismatch:
      return "byte-mismatch";
    case Violation::Kind::ChannelOverlap:
      return "channel-overlap";
    case Violation::Kind::BadWait:
      return "bad-wait";
    case Violation::Kind::Deadlock:
      return "deadlock";
    case Violation::Kind::OrphanedWait:
      return "orphaned-wait";
  }
  return "?";
}

std::string CheckReport::to_string() const {
  if (ok()) {
    return "PASS " + schedule + " (" + std::to_string(events_checked) +
           " events)";
  }
  std::string out = "FAIL " + schedule + " — " +
                    std::to_string(violations.size()) + " violation(s)\n";
  for (const Violation& v : violations) {
    out += "  [" + std::string(verify::to_string(v.kind)) + "] " + v.message +
           "\n";
    for (const std::string& line : v.trace) {
      out += "    " + line + "\n";
    }
  }
  return out;
}

CheckReport check_schedule(const Schedule& s) {
  CheckReport report;
  report.schedule = s.name;
  report.events_checked = s.total_events();
  check_tags(s, &report.violations);
  check_matching(s, &report.violations);
  check_discipline(s, &report.violations);
  check_progress(s, &report.violations);
  return report;
}

CheckReport check_fault_schedule(const Schedule& s, const FaultScenario& f) {
  PARSVD_REQUIRE(f.victim >= 0 && f.victim < s.size(),
                 "fault checker: victim out of range");
  CheckReport report;
  report.schedule = s.name + f.suffix();
  // Effective events: survivors' full scripts + the victim's pre-kill
  // prefix (what the degraded execution actually runs).
  report.events_checked = 0;
  for (const CommScript& script : s.ranks) {
    report.events_checked += rank_limit(s, script.rank(), f.victim,
                                        f.kill_step);
  }
  check_tags(s, &report.violations);
  check_fault_matching(s, f, &report.violations);
  check_discipline(s, &report.violations, f.victim, f.kill_step);
  check_fault_progress(s, f, &report.violations);
  return report;
}

}  // namespace parsvd::verify
