// Seeded-defect schedules: hand-built choreographies that each violate
// exactly one checker property. They are the checker's own regression
// surface — a sound checker must flag every one of them with the
// expected violation kind and a usable counterexample trace. Shared by
// `schedule_check --selftest` and the negative tests in
// tests/test_verify.cpp.
#pragma once

#include <vector>

#include "verify/checker.hpp"
#include "verify/comm_script.hpp"

namespace parsvd::verify {

struct SeededDefect {
  Schedule schedule;
  Violation::Kind expected;
};

/// One schedule per detectable defect class: dropped receive, rogue tag,
/// cyclic wait, overlapping irecv channels, byte-count disagreement,
/// subgroup traffic missing its tags::group_scope, and a rogue base tag
/// hiding inside a group-scoped band.
std::vector<SeededDefect> seeded_defects();

}  // namespace parsvd::verify
