// Seeded-defect schedules: hand-built choreographies that each violate
// exactly one checker property. They are the checker's own regression
// surface — a sound checker must flag every one of them with the
// expected violation kind and a usable counterexample trace. Shared by
// `schedule_check --selftest` and the negative tests in
// tests/test_verify.cpp.
#pragma once

#include <vector>

#include "verify/checker.hpp"
#include "verify/comm_script.hpp"

namespace parsvd::verify {

struct SeededDefect {
  Schedule schedule;
  Violation::Kind expected;
};

/// One schedule per detectable defect class: dropped receive, rogue tag,
/// cyclic wait, overlapping irecv channels, byte-count disagreement,
/// subgroup traffic missing its tags::group_scope, and a rogue base tag
/// hiding inside a group-scoped band.
std::vector<SeededDefect> seeded_defects();

/// A seeded defect in a RECOVERY path: the schedule only misbehaves
/// under the given kill, so it exercises check_fault_schedule rather
/// than check_schedule.
struct SeededFaultDefect {
  Schedule schedule;
  FaultScenario scenario;
  Violation::Kind expected;
};

/// One scenario per fault-checker defect class: a naked
/// (un-watchdogged) wait on a dead parent, a recovery retransmit that
/// reframes a live channel, a recovery release loop that skips a live
/// survivor, and a root that forgets the victim's pre-kill
/// contribution. Shared by `schedule_check --faults` and the golden
/// counterexample-trace tests in tests/test_faultcheck.cpp.
std::vector<SeededFaultDefect> seeded_fault_defects();

}  // namespace parsvd::verify
