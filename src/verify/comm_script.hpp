// CommScript: a solver's communication schedule as plain data.
//
// The verify layer never spawns a thread or touches a payload. Each
// protocol emitter (schedules.hpp) replays the schedule math the
// production code shares with it (pmpi/topology.hpp) and records, per
// rank, the ordered sequence of wire operations the rank would post:
// sends, blocking receives, non-blocking receive posts and their
// completion waits — each carrying (peer, tag, byte count) and nothing
// else. The ScheduleChecker (checker.hpp) then proves properties of
// the recorded choreography without ever executing it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace parsvd::verify {

/// Wildcard byte count for messages whose size is not statically known
/// to the receiver (the checker then matches on (peer, tag) only).
inline constexpr std::uint64_t kAnyBytes = ~std::uint64_t{0};

/// One wire operation of one rank, in program order.
struct CommEvent {
  enum class Kind {
    Send,       ///< buffered post to `peer` — never blocks in pmpi
    Recv,       ///< blocking receive from `peer`
    IrecvPost,  ///< non-blocking receive registration (opens `req`)
    Wait,       ///< blocking completion of the irecv that opened `req`
    WaitAll,    ///< blocking completion of `reqs` in any order (the
                ///< wait_any consume loop, order-abstracted)
  };
  Kind kind = Kind::Send;
  int peer = -1;  ///< Send: destination rank; Recv/IrecvPost: source rank
  int tag = 0;
  std::uint64_t bytes = 0;  ///< payload bytes (kAnyBytes = unknown)
  int req = -1;             ///< IrecvPost: id it opens; Wait: id it closes
  std::vector<int> reqs;    ///< WaitAll: ids it closes
  /// Recv only: the receive resolves when its source rank dies (the
  /// _ft collectives' wait_scoped under a fault plan catches
  /// RankDeadError / dead-resolves instead of blocking forever). A
  /// naked (bounded=false) receive stuck on a dead source is the
  /// OrphanedWait defect the fault checker exists to catch.
  bool bounded = false;
  std::string note;         ///< human context for counterexample traces
};

const char* to_string(CommEvent::Kind kind);
/// One-line rendering for counterexample traces, e.g.
/// "Recv(src=3, tag=-2, 40 B)  // bcast down-edge".
std::string to_string(const CommEvent& e);

/// One rank's ordered schedule plus its irecv bookkeeping.
class CommScript {
 public:
  explicit CommScript(int rank) : rank_(rank) {}

  int rank() const { return rank_; }
  const std::vector<CommEvent>& events() const { return events_; }

  void send(int dest, int tag, std::uint64_t bytes, std::string note = "");
  void recv(int src, int tag, std::uint64_t bytes, std::string note = "");
  /// A death-bounded blocking receive: resolves (without consuming)
  /// once `src` is dead with nothing recoverable in flight — the FT
  /// collectives' degraded-completion wait.
  void recv_bounded(int src, int tag, std::uint64_t bytes,
                    std::string note = "");
  /// Returns the request id for a later wait()/wait_all().
  int irecv(int src, int tag, std::uint64_t bytes, std::string note = "");
  void wait(int req, std::string note = "");
  void wait_all(std::vector<int> reqs, std::string note = "");

 private:
  int rank_;
  int next_req_ = 0;
  std::vector<CommEvent> events_;
};

/// One protocol instance: a named set of per-rank scripts, index = rank.
struct Schedule {
  std::string name;  ///< e.g. "gather(p=12, root=0, algo=tree)"
  std::vector<CommScript> ranks;

  int size() const { return static_cast<int>(ranks.size()); }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const CommScript& s : ranks) n += s.events().size();
    return n;
  }
};

/// A Schedule with one per-rank script builder per rank, ready to emit.
Schedule make_schedule(std::string name, int p);

/// A single-rank failure transition over a Schedule: `victim` executes
/// exactly its first `kill_step` events, then dies. The event at index
/// kill_step never starts — pmpi evaluates kills inside account_op,
/// BEFORE the op posts a message or blocks, so a killing post neither
/// delivers nor counts in the registry totals. kill_step >= the
/// victim's event count (e.g. kNoKillStep) models a run the victim
/// survives.
struct FaultScenario {
  int victim = -1;
  std::size_t kill_step = 0;

  std::string suffix() const;  ///< " + kill(victim=3, step=2)"
};

/// kill_step sentinel for "the victim never dies" (healthy emission).
inline constexpr std::size_t kNoKillStep = ~std::size_t{0};

}  // namespace parsvd::verify
