// Pluggable time source for the observability layer.
//
// Every timestamp the tracer or the logger emits flows through clock():
// production uses the monotonic steady clock (never the wall clock, so
// trace JSON stays bit-reproducible and composes with the project's
// wall-clock lint rule), and tests inject a FakeClock to make two runs
// of the same workload produce byte-identical traces.
#pragma once

#include <atomic>
#include <cstdint>

namespace parsvd::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds on this clock's (arbitrary-epoch) timeline.
  virtual std::int64_t now_ns() = 0;
};

/// std::chrono::steady_clock; the production default.
class SteadyClock final : public Clock {
 public:
  std::int64_t now_ns() override;
};

/// Manually advanced clock for deterministic tests. All operations are
/// thread-safe; the clock never moves on its own.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_ns = 0) : now_(start_ns) {}
  std::int64_t now_ns() override {
    return now_.load(std::memory_order_relaxed);
  }
  void set_ns(std::int64_t ns) { now_.store(ns, std::memory_order_relaxed); }
  void advance_ns(std::int64_t ns) {
    now_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_;
};

/// The process-wide clock every obs timestamp is read from.
Clock& clock();

/// Install a replacement clock (nullptr restores the steady clock). The
/// pointer must outlive all tracing; intended for test setup only.
void set_clock(Clock* replacement);

/// One-shot wall-clock anchor for trace metadata: Unix nanoseconds at
/// first call, or 0 when PARSVD_TRACE_WALL_ANCHOR is off (the default,
/// keeping traces deterministic).
std::int64_t wall_anchor_ns();

}  // namespace parsvd::obs
