#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace parsvd::obs {
namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0;
}

std::size_t default_ring_capacity() {
  if (const char* v = std::getenv("PARSVD_TRACE_BUFFER")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 16384;
}

std::atomic<std::size_t>& ring_capacity_slot() {
  static std::atomic<std::size_t> cap{default_ring_capacity()};
  return cap;
}

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
};

RingRegistry& registry() {
  static RingRegistry* instance = new RingRegistry;  // leaked: threads may
  return *instance;                                  // outlive static dtors
}

struct ThreadState {
  int rank = -1;
  int tid = -1;  // < 0: not yet assigned; fallback allocated lazily
  const char* label = nullptr;
  std::shared_ptr<TraceRing> ring;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

TraceRing& thread_ring() {
  ThreadState& state = thread_state();
  if (state.ring == nullptr) {
    auto ring =
        std::make_shared<TraceRing>(ring_capacity_slot().load(
            std::memory_order_relaxed));
    ring->pid = state.rank >= 0 ? state.rank + 1 : 0;
    if (state.tid < 0) {
      // Unidentified thread: give it a unique fallback track well above
      // the explicitly assigned ones.
      static std::atomic<int> next_anon{1000};
      state.tid = next_anon.fetch_add(1, std::memory_order_relaxed);
      if (state.label == nullptr) state.label = "thread";
    }
    ring->tid = state.tid;
    ring->label = state.label != nullptr ? state.label : "thread";
    {
      std::lock_guard<std::mutex> lock(registry().mu);
      registry().rings.push_back(ring);
    }
    state.ring = std::move(ring);
  }
  return *state.ring;
}

void flush_to_env_path();

std::atomic<int>& armed_state() {
  static std::atomic<int> state{-1};
  return state;
}

int armed_init() {
  const int on = env_flag("PARSVD_TRACE") ? 1 : 0;
  if (on == 1 && std::getenv("PARSVD_TRACE_OUT") != nullptr) {
    std::atexit(flush_to_env_path);
  }
  armed_state().store(on, std::memory_order_relaxed);
  return on;
}

void flush_to_env_path() {
  if (const char* path = std::getenv("PARSVD_TRACE_OUT")) {
    trace::flush_json_to(path);
  }
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(std::bit_ceil(std::max<std::size_t>(capacity, 2))) {}

void TraceRing::push(const TraceEvent& e) {
  const std::uint64_t idx = count_.load(std::memory_order_relaxed);
  slots_[static_cast<std::size_t>(idx) & (slots_.size() - 1)] = e;
  count_.store(idx + 1, std::memory_order_release);
}

std::uint64_t TraceRing::dropped() const {
  const std::uint64_t n = count_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  return n > cap ? n - cap : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t n = count_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t keep = std::min(n, cap);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(keep));
  for (std::uint64_t i = n - keep; i < n; ++i) {
    out.push_back(slots_[static_cast<std::size_t>(i) & (slots_.size() - 1)]);
  }
  return out;
}

namespace trace {

bool armed() {
  const int v = armed_state().load(std::memory_order_relaxed);
  if (v >= 0) return v == 1;
  return armed_init() == 1;
}

void arm(bool on) {
  armed();  // force env init first so arm() wins over PARSVD_TRACE
  armed_state().store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) {
  ring_capacity_slot().store(std::max<std::size_t>(events, 2),
                             std::memory_order_relaxed);
}

void instant(const char* name) {
  thread_ring().push({name, clock().now_ns(), -1});
}

std::vector<FlushedEvent> snapshot() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(registry().mu);
    rings = registry().rings;
  }
  std::vector<FlushedEvent> out;
  for (const auto& ring : rings) {
    for (const TraceEvent& e : ring->snapshot()) {
      out.push_back({ring->pid, ring->tid, e});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlushedEvent& a, const FlushedEvent& b) {
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.event.start_ns != b.event.start_ns) {
                return a.event.start_ns < b.event.start_ns;
              }
              // Longer spans first so a parent precedes its children.
              if (a.event.dur_ns != b.event.dur_ns) {
                return a.event.dur_ns > b.event.dur_ns;
              }
              return std::strcmp(a.event.name, b.event.name) < 0;
            });
  return out;
}

std::uint64_t dropped() {
  std::lock_guard<std::mutex> lock(registry().mu);
  std::uint64_t total = 0;
  for (const auto& ring : registry().rings) total += ring->dropped();
  return total;
}

void reset() {
  std::lock_guard<std::mutex> lock(registry().mu);
  for (const auto& ring : registry().rings) ring->clear();
}

namespace {

void append_us(std::string& out, std::int64_t ns) {
  char buf[40];
  const std::int64_t us = ns / 1000;
  const std::int64_t frac = ns % 1000;
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(us),
                static_cast<long long>(frac < 0 ? -frac : frac));
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string flush_json() {
  const std::vector<FlushedEvent> events = snapshot();

  std::int64_t t0 = 0;
  bool have_t0 = false;
  for (const FlushedEvent& fe : events) {
    if (!have_t0 || fe.event.start_ns < t0) {
      t0 = fe.event.start_ns;
      have_t0 = true;
    }
  }

  // Track metadata, in (pid, tid) order to match the event stream.
  struct Track {
    int pid;
    int tid;
    std::string label;
  };
  std::vector<Track> tracks;
  {
    std::lock_guard<std::mutex> lock(registry().mu);
    for (const auto& ring : registry().rings) {
      tracks.push_back({ring->pid, ring->tid, ring->label});
    }
  }
  std::sort(tracks.begin(), tracks.end(), [](const Track& a, const Track& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.label < b.label;
  });
  tracks.erase(std::unique(tracks.begin(), tracks.end(),
                           [](const Track& a, const Track& b) {
                             return a.pid == b.pid && a.tid == b.tid;
                           }),
               tracks.end());

  std::string json = "{\"traceEvents\":[\n";
  char buf[128];
  bool first = true;
  const auto comma = [&] {
    if (!first) json += ",\n";
    first = false;
  };

  int last_pid = -1;
  for (const Track& t : tracks) {
    if (t.pid != last_pid) {
      last_pid = t.pid;
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                    "\"tid\":0,\"args\":{\"name\":",
                    t.pid);
      json += buf;
      append_json_string(json, t.pid == 0
                                   ? std::string("shared")
                                   : "rank " + std::to_string(t.pid - 1));
      json += "}}";
    }
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":",
                  t.pid, t.tid);
    json += buf;
    append_json_string(json, t.label);
    json += "}}";
  }

  for (const FlushedEvent& fe : events) {
    comma();
    const bool is_instant = fe.event.dur_ns < 0;
    std::snprintf(buf, sizeof(buf), "{\"ph\":\"%s\",\"name\":",
                  is_instant ? "i" : "X");
    json += buf;
    append_json_string(json, fe.event.name);
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d,\"ts\":", fe.pid,
                  fe.tid);
    json += buf;
    append_us(json, fe.event.start_ns - t0);
    if (is_instant) {
      json += ",\"s\":\"t\"";
    } else {
      json += ",\"dur\":";
      append_us(json, fe.event.dur_ns);
    }
    json += "}";
  }

  json += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"wall_anchor_ns\":\"";
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(wall_anchor_ns()));
  json += buf;
  json += "\"}}\n";
  return json;
}

bool flush_json_to(const std::string& path) {
  const std::string json = flush_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace trace

void set_thread_identity(int rank, int tid, const char* label) {
  ThreadState& state = thread_state();
  state.rank = rank;
  state.tid = tid;
  state.label = label;
  if (state.ring != nullptr) {
    state.ring->pid = rank >= 0 ? rank + 1 : 0;
    state.ring->tid = tid;
    state.ring->label = label != nullptr ? label : "thread";
  }
}

int current_rank() { return thread_state().rank; }

TraceScope::~TraceScope() {
  if (start_ns_ == kDisarmed) return;
  const std::int64_t end_ns = clock().now_ns();
  thread_ring().push({name_, start_ns_, end_ns - start_ns_});
}

}  // namespace parsvd::obs
