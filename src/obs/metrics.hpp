// Typed named metrics: counters, gauges and log2-bucketed histograms.
//
// A Registry maps stable dotted names ("comm.bytes", "pool.queue_depth")
// to metric objects with stable addresses: look the metric up once, keep
// the reference, and every subsequent update is a single relaxed atomic
// operation — cheap enough for the messaging and kernel hot paths.
//
// Naming convention (DESIGN §9): lowercase `<layer>.<component>.<what>`,
// with a unit suffix where the name alone is ambiguous (`_bytes`, `_ms`).
// Per-rank variants append `.rank<N>`.
//
// Two scopes exist: Registry::global() for process-wide series (logger,
// thread pool, kernels, streaming executor) and one Registry per
// pmpi::Context for communication series, so concurrent jobs never mix
// their byte counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parsvd::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Retain the largest value ever set()/observed via this call.
  void track_max(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Power-of-two bucketed histogram of unsigned samples: bucket b counts
/// samples whose bit width is b (0, 1, 2-3, 4-7, ...). Fixed storage,
/// lock-free recording.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of uint64 is 0..64

  void record(std::uint64_t sample);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

class Registry {
 public:
  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime; hot paths call this once and cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Sample {
    std::string name;
    char kind;  // 'c'ounter, 'g'auge, 'h'istogram
    std::int64_t value = 0;       // counter/gauge value, histogram count
    std::uint64_t sum = 0;        // histogram only
    std::int64_t max_value = 0;   // gauge only
  };
  /// Name-sorted snapshot of every metric (counters first within a name
  /// collision, then gauges, then histograms).
  std::vector<Sample> snapshot() const;

  /// Human-readable fixed-width table of snapshot(), one metric per line.
  std::string format_table() const;

  /// Zero every metric (objects stay registered; cached refs stay valid).
  void reset();

  /// Process-wide registry for non-communicator series.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  // Node-based maps: element addresses survive future insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace parsvd::obs
