#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace parsvd::obs {

void Histogram::record(std::uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(std::bit_width(sample))].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, 'c', static_cast<std::int64_t>(c.value()), 0, 0});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, 'g', g.value(), 0, g.max_value()});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back(
        {name, 'h', static_cast<std::int64_t>(h.count()), h.sum(), 0});
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    return a.name != b.name ? a.name < b.name : a.kind < b.kind;
  });
  return out;
}

std::string Registry::format_table() const {
  std::string table;
  char line[160];
  for (const Sample& s : snapshot()) {
    int n = 0;
    switch (s.kind) {
      case 'c':
        n = std::snprintf(line, sizeof(line), "%-40s counter %20lld\n",
                          s.name.c_str(), static_cast<long long>(s.value));
        break;
      case 'g':
        n = std::snprintf(line, sizeof(line),
                          "%-40s gauge   %20lld (max %lld)\n", s.name.c_str(),
                          static_cast<long long>(s.value),
                          static_cast<long long>(s.max_value));
        break;
      default:
        n = std::snprintf(line, sizeof(line),
                          "%-40s histo   %20lld (sum %llu)\n", s.name.c_str(),
                          static_cast<long long>(s.value),
                          static_cast<unsigned long long>(s.sum));
        break;
    }
    if (n > 0) table.append(line, static_cast<std::size_t>(n));
  }
  return table;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace parsvd::obs
