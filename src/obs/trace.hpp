// Span tracing with per-thread ring buffers and Chrome trace-event
// output.
//
//   PARSVD_TRACE_SCOPE("tsqr.factor_panel");   // RAII duration span
//   PARSVD_TRACE_INSTANT("comm.timeout");      // point event
//
// Design:
//   * Each thread owns one fixed-capacity TraceRing it alone writes to —
//     recording a span is two clock reads plus one slot store, with no
//     shared locks anywhere on the hot path. When tracing is disarmed a
//     scope costs one relaxed atomic load; when compiled out
//     (-DPARSVD_OBS_DISABLE) the macros expand to nothing.
//   * Rings overwrite their oldest events on overflow (the drop count is
//     kept) so tracing can never stall or OOM a run.
//   * Threads carry an identity (rank, tid, label) that maps onto the
//     Chrome trace layout: each pmpi rank is a process row (pid), each
//     thread a track (tid). pmpi::run_on, the ThreadPool workers and the
//     prefetch worker set their identity at spawn; unidentified threads
//     get a stable-enough fallback tid.
//   * flush_json() serializes every ring, events sorted by
//     (pid, tid, start, -dur, name): with a deterministic workload and a
//     FakeClock the output is byte-identical run to run. Flushing
//     requires writers to be quiescent (call it after joining workers /
//     after run_on returns).
//
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace parsvd::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;  // < 0 marks an instant event
};

/// Single-writer ring of trace events. Public for the unit tests; normal
/// code only touches it through the macros below.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& e);
  std::uint64_t recorded() const {
    return count_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t dropped() const;
  /// Retained events, oldest first. Writer must be quiescent.
  std::vector<TraceEvent> snapshot() const;
  void clear() { count_.store(0, std::memory_order_release); }

  // Track identity, fixed at registration time.
  int pid = 0;  // rank + 1; 0 = threads shared across ranks
  int tid = 0;
  std::string label;

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> count_{0};
};

namespace trace {

/// Runtime switch. Initialized from PARSVD_TRACE at first query; arm()
/// overrides it either way.
bool armed();
void arm(bool on);

/// Per-thread ring capacity for rings created after this call (default:
/// PARSVD_TRACE_BUFFER, else 16384 events).
void set_ring_capacity(std::size_t events);

/// Record an instant event on the calling thread's track.
void instant(const char* name);

/// All retained events of every registered ring with their track
/// identity, in flush order. Writers must be quiescent.
struct FlushedEvent {
  int pid;
  int tid;
  TraceEvent event;
};
std::vector<FlushedEvent> snapshot();

/// Chrome trace-event JSON (Perfetto-loadable): per-rank process rows,
/// per-thread tracks, microsecond timestamps with fixed formatting.
std::string flush_json();
/// flush_json() to a file; returns false when the file cannot be written.
bool flush_json_to(const std::string& path);

/// Total events overwritten in full rings since the last reset.
std::uint64_t dropped();

/// Clear every registered ring (threads keep their rings and identity).
void reset();

}  // namespace trace

/// Bind the calling thread to a trace track: `rank` >= 0 places it on
/// that rank's process row (tid 0 is the rank's main thread); rank < 0
/// places it on the shared row. Also consumed by the logger's rank
/// prefix. Call before the thread's first span.
void set_thread_identity(int rank, int tid, const char* label);

/// Rank bound to the calling thread, or -1.
int current_rank();

class TraceScope {
 public:
  explicit TraceScope(const char* name)
      : name_(name),
        start_ns_(trace::armed() ? clock().now_ns() : kDisarmed) {}
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  static constexpr std::int64_t kDisarmed = INT64_MIN;
  const char* name_;
  std::int64_t start_ns_;
};

}  // namespace parsvd::obs

#if defined(PARSVD_OBS_DISABLE)
#define PARSVD_TRACE_SCOPE(name)
#define PARSVD_TRACE_INSTANT(name)
#else
#define PARSVD_OBS_CONCAT_INNER(a, b) a##b
#define PARSVD_OBS_CONCAT(a, b) PARSVD_OBS_CONCAT_INNER(a, b)
#define PARSVD_TRACE_SCOPE(name) \
  ::parsvd::obs::TraceScope PARSVD_OBS_CONCAT(parsvd_trace_scope_, __LINE__) { name }
#define PARSVD_TRACE_INSTANT(name)                    \
  do {                                                \
    if (::parsvd::obs::trace::armed()) {              \
      ::parsvd::obs::trace::instant(name);            \
    }                                                 \
  } while (false)
#endif
