#include "obs/clock.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace parsvd::obs {
namespace {

SteadyClock& steady_instance() {
  static SteadyClock instance;
  return instance;
}

std::atomic<Clock*>& clock_slot() {
  static std::atomic<Clock*> slot{&steady_instance()};
  return slot;
}

bool wall_anchor_enabled() {
  const char* v = std::getenv("PARSVD_TRACE_WALL_ANCHOR");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0;
}

}  // namespace

std::int64_t SteadyClock::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Clock& clock() { return *clock_slot().load(std::memory_order_acquire); }

void set_clock(Clock* replacement) {
  clock_slot().store(replacement != nullptr ? replacement : &steady_instance(),
                     std::memory_order_release);
}

std::int64_t wall_anchor_ns() {
  // The ONLY sanctioned wall-clock read in the tree: an opt-in epoch
  // anchor so a human can line a trace up with log files. Off by
  // default, so trace JSON stays bit-reproducible.
  static const std::int64_t anchor = [] {
    if (!wall_anchor_enabled()) return std::int64_t{0};
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               // parsvd-lint: allow-wall-clock (the sanctioned anchor read)
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }();
  return anchor;
}

}  // namespace parsvd::obs
