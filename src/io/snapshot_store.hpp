// SnapshotStore — a chunked on-disk container for snapshot matrices,
// standing in for the NetCDF4 + parallel-IO layer the paper uses for the
// ERA5 experiment.
//
// Layout: a fixed header (global rows M, snapshot capacity hint, chunk
// width C) followed by column chunks; each chunk stores up to C full
// snapshots column-major. Appending snapshots only ever writes at the
// end; readers address any hyperslab (row range x snapshot range) with
// seek+read per column segment — the access pattern NetCDF hyperslab
// reads compile down to.
//
// Parallel reading: every rank opens the same file independently and
// pulls only its own row block (read_rows), exactly how a domain-
// decomposed analysis consumes a shared dataset on a parallel
// filesystem. Writers are single-owner (one process appends); this
// matches the producer/consumer split of the paper's workflow where the
// simulation writes and the analysis reads.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "linalg/matrix.hpp"

namespace parsvd::io {

/// Append-only writer. Creates/overwrites the file on construction.
class SnapshotWriter {
 public:
  /// `rows` is the global state dimension M; `chunk_cols` the number of
  /// snapshots per chunk (IO granularity, like a NetCDF chunk shape).
  SnapshotWriter(const std::string& path, Index rows, Index chunk_cols = 16);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Append one snapshot (length must equal rows()).
  void append(const Vector& snapshot);

  /// Append a batch (rows() x k matrix, snapshots as columns).
  void append_batch(const Matrix& batch);

  /// Flush buffered snapshots and finalize the header. Called by the
  /// destructor as well; explicit close surfaces IO errors.
  void close();

  Index rows() const { return rows_; }
  Index snapshots_written() const { return written_; }

 private:
  void flush_buffer();
  void rewrite_header();

  std::string path_;
  std::ofstream out_;
  Index rows_;
  Index chunk_cols_;
  Index written_ = 0;
  Matrix buffer_;        // rows_ x chunk_cols_, partially filled
  Index buffered_ = 0;
  bool closed_ = false;
};

/// Random-access reader.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& path);

  Index rows() const { return rows_; }
  Index snapshots() const { return snapshots_; }
  Index chunk_cols() const { return chunk_cols_; }

  /// Read full snapshots [col0, col0 + ncols) → rows() x ncols.
  Matrix read_snapshots(Index col0, Index ncols);

  /// Hyperslab: rows [row0, row0+nrows) of snapshots [col0, col0+ncols).
  /// This is the per-rank partitioned read used by the distributed
  /// pipeline.
  Matrix read_rows(Index row0, Index nrows, Index col0, Index ncols);

 private:
  /// Absolute file offset of element (row, snapshot_col).
  std::uint64_t element_offset(Index row, Index col) const;

  std::ifstream in_;
  std::string path_;
  Index rows_ = 0;
  Index snapshots_ = 0;
  Index chunk_cols_ = 0;
};

}  // namespace parsvd::io
