#include "io/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace parsvd::io {
namespace {

constexpr std::uint64_t kMatrixMagic = 0x5053564d41545258ULL;  // "PSVMATRX"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::int64_t rows;
  std::int64_t cols;
};
static_assert(sizeof(Header) == 32);

}  // namespace

void write_matrix(const std::string& path, const Matrix& m) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  const Header h{kMatrixMagic, kVersion, 0, static_cast<std::int64_t>(m.rows()),
                 static_cast<std::int64_t>(m.cols())};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                         sizeof(double)));
  if (!out) throw IoError("write failed: " + path);
}

Matrix read_matrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || h.magic != kMatrixMagic) {
    throw IoError("not a parsvd matrix file: " + path);
  }
  if (h.version != kVersion) {
    throw IoError("unsupported matrix file version in " + path);
  }
  if (h.rows < 0 || h.cols < 0) throw IoError("corrupt header in " + path);
  Matrix m(static_cast<Index>(h.rows), static_cast<Index>(h.cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                       sizeof(double)));
  if (!in) throw IoError("truncated matrix file: " + path);
  return m;
}

void write_vector(const std::string& path, const Vector& v) {
  Matrix m(v.size(), 1);
  m.set_col(0, v);
  write_matrix(path, m);
}

Vector read_vector(const std::string& path) {
  const Matrix m = read_matrix(path);
  if (m.cols() != 1) throw IoError("not a vector file: " + path);
  return m.col(0);
}

void write_csv(const std::string& path, const Matrix& m,
               const std::vector<std::string>& column_names) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  if (!column_names.empty()) {
    PARSVD_REQUIRE(static_cast<Index>(column_names.size()) == m.cols(),
                   "column name count mismatch");
    for (std::size_t j = 0; j < column_names.size(); ++j) {
      if (j > 0) out << ',';
      out << column_names[j];
    }
    out << '\n';
  }
  char buf[40];
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      if (j > 0) out << ',';
      std::snprintf(buf, sizeof(buf), "%.17g", m(i, j));
      out << buf;
    }
    out << '\n';
  }
  if (!out) throw IoError("write failed: " + path);
}

Matrix read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> fields;
    std::stringstream ss(line);
    std::string cell;
    bool numeric = true;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || (*end != '\0' && *end != '\r')) {
        numeric = false;
        break;
      }
      fields.push_back(v);
    }
    if (first && !numeric) {
      first = false;  // header row
      continue;
    }
    first = false;
    if (!numeric) throw IoError("non-numeric CSV row in " + path);
    if (!rows.empty() && rows.front().size() != fields.size()) {
      throw IoError("ragged CSV in " + path);
    }
    rows.push_back(std::move(fields));
  }
  if (rows.empty()) return Matrix{};
  Matrix m(static_cast<Index>(rows.size()),
           static_cast<Index>(rows.front().size()));
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      m(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  return m;
}

}  // namespace parsvd::io
