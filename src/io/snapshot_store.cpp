#include "io/snapshot_store.hpp"

#include <algorithm>

namespace parsvd::io {
namespace {

constexpr std::uint64_t kSnapMagic = 0x50535644534e4150ULL;  // "PSVDSNAP"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::int64_t rows;
  std::int64_t snapshots;
  std::int64_t chunk_cols;
};
static_assert(sizeof(Header) == 40);

}  // namespace

// ----------------------------------------------------------- SnapshotWriter

SnapshotWriter::SnapshotWriter(const std::string& path, Index rows,
                               Index chunk_cols)
    : path_(path), rows_(rows), chunk_cols_(chunk_cols) {
  PARSVD_REQUIRE(rows > 0, "snapshot rows must be positive");
  PARSVD_REQUIRE(chunk_cols > 0, "chunk width must be positive");
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw IoError("cannot create snapshot store: " + path);
  rewrite_header();
  buffer_ = Matrix(rows_, chunk_cols_);
}

SnapshotWriter::~SnapshotWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; explicit close() reports errors.
  }
}

void SnapshotWriter::rewrite_header() {
  const Header h{kSnapMagic,
                 kVersion,
                 0,
                 static_cast<std::int64_t>(rows_),
                 static_cast<std::int64_t>(written_),
                 static_cast<std::int64_t>(chunk_cols_)};
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out_.seekp(0, std::ios::end);
  if (!out_) throw IoError("header write failed: " + path_);
}

void SnapshotWriter::flush_buffer() {
  if (buffered_ == 0) return;
  // A chunk always occupies chunk_cols_ columns on disk (trailing columns
  // of a partial final chunk are zero-padded) so reader offsets stay
  // O(1)-computable.
  out_.seekp(0, std::ios::end);
  Matrix padded = buffer_;
  for (Index j = buffered_; j < chunk_cols_; ++j) {
    auto col = padded.col_span(j);
    std::fill(col.begin(), col.end(), 0.0);
  }
  out_.write(reinterpret_cast<const char*>(padded.data()),
             static_cast<std::streamsize>(
                 static_cast<std::size_t>(padded.size()) * sizeof(double)));
  if (!out_) throw IoError("chunk write failed: " + path_);
  buffered_ = 0;
}

void SnapshotWriter::append(const Vector& snapshot) {
  PARSVD_REQUIRE(!closed_, "writer already closed");
  PARSVD_REQUIRE(snapshot.size() == rows_, "snapshot length mismatch");
  buffer_.set_col(buffered_, snapshot);
  ++buffered_;
  ++written_;
  if (buffered_ == chunk_cols_) flush_buffer();
}

void SnapshotWriter::append_batch(const Matrix& batch) {
  PARSVD_REQUIRE(batch.rows() == rows_, "batch row mismatch");
  for (Index j = 0; j < batch.cols(); ++j) append(batch.col(j));
}

void SnapshotWriter::close() {
  if (closed_) return;
  flush_buffer();
  rewrite_header();
  out_.flush();
  if (!out_) throw IoError("close failed: " + path_);
  out_.close();
  closed_ = true;
}

// ----------------------------------------------------------- SnapshotReader

SnapshotReader::SnapshotReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::binary);
  if (!in_) throw IoError("cannot open snapshot store: " + path);
  Header h{};
  in_.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in_ || h.magic != kSnapMagic) {
    throw IoError("not a snapshot store: " + path);
  }
  if (h.version != kVersion) throw IoError("unsupported store version: " + path);
  rows_ = static_cast<Index>(h.rows);
  snapshots_ = static_cast<Index>(h.snapshots);
  chunk_cols_ = static_cast<Index>(h.chunk_cols);
  PARSVD_REQUIRE(rows_ > 0 && snapshots_ >= 0 && chunk_cols_ > 0,
                 "corrupt snapshot store header");
}

std::uint64_t SnapshotReader::element_offset(Index row, Index col) const {
  const std::uint64_t chunk = static_cast<std::uint64_t>(col / chunk_cols_);
  const std::uint64_t col_in_chunk = static_cast<std::uint64_t>(col % chunk_cols_);
  const std::uint64_t chunk_bytes = static_cast<std::uint64_t>(rows_) *
                                    static_cast<std::uint64_t>(chunk_cols_) *
                                    sizeof(double);
  return sizeof(Header) + chunk * chunk_bytes +
         (col_in_chunk * static_cast<std::uint64_t>(rows_) +
          static_cast<std::uint64_t>(row)) *
             sizeof(double);
}

Matrix SnapshotReader::read_snapshots(Index col0, Index ncols) {
  return read_rows(0, rows_, col0, ncols);
}

Matrix SnapshotReader::read_rows(Index row0, Index nrows, Index col0,
                                 Index ncols) {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= rows_,
                 "row hyperslab out of range");
  PARSVD_REQUIRE(col0 >= 0 && ncols > 0 && col0 + ncols <= snapshots_,
                 "snapshot hyperslab out of range");
  Matrix out(nrows, ncols);
  for (Index j = 0; j < ncols; ++j) {
    // One contiguous read per column segment — the column is contiguous
    // within its chunk, so the row range maps to a single span.
    in_.seekg(static_cast<std::streamoff>(element_offset(row0, col0 + j)));
    in_.read(reinterpret_cast<char*>(out.col_data(j)),
             static_cast<std::streamsize>(static_cast<std::size_t>(nrows) *
                                          sizeof(double)));
    if (!in_) throw IoError("hyperslab read failed: " + path_);
  }
  return out;
}

}  // namespace parsvd::io
