// Binary and CSV (de)serialization for matrices and vectors.
//
// The binary format is a fixed little-endian header (magic, version,
// rows, cols) followed by column-major doubles — fast, exact round-trip.
// CSV is for handing series to plotting tools and for EXPERIMENTS.md
// artifacts; it is lossy only in the sense of %.17g formatting (which is
// in fact exact for doubles).
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace parsvd::io {

/// Write `m` to `path` in the parsvd binary format (overwrites).
void write_matrix(const std::string& path, const Matrix& m);

/// Read a matrix written by write_matrix. Throws IoError on malformed
/// files.
Matrix read_matrix(const std::string& path);

void write_vector(const std::string& path, const Vector& v);
Vector read_vector(const std::string& path);

/// CSV with an optional header row; one matrix row per line.
void write_csv(const std::string& path, const Matrix& m,
               const std::vector<std::string>& column_names = {});

/// Parse a CSV produced by write_csv (header auto-detected: a first line
/// with any non-numeric field is treated as column names).
Matrix read_csv(const std::string& path);

}  // namespace parsvd::io
