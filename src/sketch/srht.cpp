#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "sketch/sketch.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace parsvd::sketch {
namespace {

// Rows of A processed per FWHT workspace pass. The workspace is
// lane-major — w[i * kPanel + lane] holds Hadamard index i of panel row
// `lane` — so every butterfly touches two contiguous kPanel-wide blocks
// and the add/sub pair vectorizes across lanes instead of forming a
// scalar dependency chain down one transform.
constexpr Index kPanel = 16;

// One blocked FWHT over all kPanel lanes at once: the classic iterative
// butterfly, but each (u, v) pair is a contiguous block of kPanel
// doubles. Unused lanes carry zeros and stay zero.
void fwht_lanes(double* w, Index n) {
  for (Index h = 1; h < n; h <<= 1) {
    for (Index i = 0; i < n; i += 2 * h) {
      for (Index j = i; j < i + h; ++j) {
        double* u = w + static_cast<std::size_t>(j) * kPanel;
        double* v = w + static_cast<std::size_t>(j + h) * kPanel;
        for (Index l = 0; l < kPanel; ++l) {
          const double x = u[l];
          const double z = v[l];
          u[l] = x + z;
          v[l] = x - z;
        }
      }
    }
  }
}

}  // namespace

SrhtSketch::SrhtSketch(Index dim, Index sketch_dim, std::uint64_t seed)
    : SketchOperator(SketchKind::Srht, dim, sketch_dim, seed),
      padded_(next_pow2(dim)),
      scale_(1.0 / std::sqrt(static_cast<double>(sketch_dim))) {
  PARSVD_REQUIRE(sketch_dim <= padded_,
                 "SRHT sketch_dim cannot exceed the padded dimension");
  // The output subsample P lives on its own split of the operator stream
  // — row_rng() is reserved for the per-row sign diagonal D.
  Rng sel = Rng(seed).split(0x5e1ec7edULL);
  std::vector<char> taken(static_cast<std::size_t>(padded_), 0);
  selected_.reserve(static_cast<std::size_t>(sketch_dim));
  for (Index t = 0; t < sketch_dim; ++t) {
    Index c = 0;
    do {
      c = static_cast<Index>(
          sel.uniform_index(static_cast<std::uint64_t>(padded_)));
    } while (taken[static_cast<std::size_t>(c)] != 0);
    taken[static_cast<std::size_t>(c)] = 1;
    selected_.push_back(c);
  }
  std::sort(selected_.begin(), selected_.end());
}

double SrhtSketch::sign(Index row) const {
  return (row_rng(operator_seed(), row).next_u64() & 1ULL) != 0 ? 1.0 : -1.0;
}

Matrix SrhtSketch::realize_rows(Index row0, Index nrows) const {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= dim(),
                 "realize_rows: row block out of range");
  const Index s = sketch_dim();
  Matrix block(nrows, s);
  for (Index r = 0; r < nrows; ++r) {
    const Index row = row0 + r;
    const double sgn = sign(row) * scale_;
    for (Index k = 0; k < s; ++k) {
      const auto bits = static_cast<std::uint64_t>(row) &
                        static_cast<std::uint64_t>(
                            selected_[static_cast<std::size_t>(k)]);
      block(r, k) = (std::popcount(bits) & 1) != 0 ? -sgn : sgn;
    }
  }
  return block;
}

double SrhtSketch::apply_flops(Index m) const {
  const double dm = static_cast<double>(m);
  double lg = 0.0;
  for (Index p = 1; p < padded_; p <<= 1) lg += 1.0;
  return dm * static_cast<double>(dim()) +
         dm * static_cast<double>(padded_) * lg +
         dm * static_cast<double>(sketch_dim());
}

void SrhtSketch::do_apply_right(const Matrix& a, Matrix& y) const {
  const Index m = a.rows();
  const Index d = dim();
  const Index d2 = padded_;
  const Index s = sketch_dim();
  // The sign diagonal is row-derived; pull it once so the panel loop is
  // pure arithmetic.
  std::vector<double> signs(static_cast<std::size_t>(d));
  for (Index r = 0; r < d; ++r) {
    signs[static_cast<std::size_t>(r)] = sign(r);
  }
  const auto panel = [&](std::size_t i0z, std::size_t i1z) {
    // Lane-major workspace (see kPanel).
    std::vector<double> w(static_cast<std::size_t>(d2) * kPanel);
    for (Index p0 = static_cast<Index>(i0z); p0 < static_cast<Index>(i1z);
         p0 += kPanel) {
      const Index p1 = std::min(p0 + kPanel, static_cast<Index>(i1z));
      const Index pw = p1 - p0;
      // The butterfly mixes values into the zero-padding rows [d, d2),
      // so they must be re-zeroed before every transform.
      std::fill(w.begin() + static_cast<std::ptrdiff_t>(d) * kPanel, w.end(),
                0.0);
      for (Index r = 0; r < d; ++r) {
        const double* ar = a.col_data(r) + p0;
        const double sgn = signs[static_cast<std::size_t>(r)];
        double* wr = w.data() + static_cast<std::size_t>(r) * kPanel;
        for (Index i = 0; i < pw; ++i) wr[i] = sgn * ar[i];
        for (Index i = pw; i < kPanel; ++i) wr[i] = 0.0;
      }
      fwht_lanes(w.data(), d2);
      for (Index k = 0; k < s; ++k) {
        const Index c = selected_[static_cast<std::size_t>(k)];
        double* yk = y.col_data(k) + p0;
        const double* wc = w.data() + static_cast<std::size_t>(c) * kPanel;
        for (Index i = 0; i < pw; ++i) yk[i] = scale_ * wc[i];
      }
    }
  };
  double lg = 0.0;
  for (Index p = 1; p < d2; p <<= 1) lg += 1.0;
  const bool threaded =
      static_cast<double>(m) * static_cast<double>(d2) * lg >=
          static_cast<double>(kGemmParallelThreshold) &&
      ThreadPool::global().size() > 1;
  if (threaded) {
    ThreadPool::global().parallel_for(0, static_cast<std::size_t>(m), panel);
  } else {
    panel(0, static_cast<std::size_t>(m));
  }
}

}  // namespace parsvd::sketch
