#include "sketch/distributed.hpp"

#include <span>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace parsvd::sketch {

Matrix distributed_sketch_apply(pmpi::Communicator& comm,
                                const SketchOperator& op,
                                const Matrix& a_local, Index row_offset) {
  PARSVD_REQUIRE(!a_local.empty(),
                 "distributed sketch: every rank needs a non-empty block");
  PARSVD_TRACE_SCOPE("sketch.distributed.apply");
  Matrix b(op.sketch_dim(), a_local.cols());
  op.accumulate_left(a_local, row_offset, b);
  comm.allreduce(
      std::span<double>(b.data(), static_cast<std::size_t>(b.size())),
      pmpi::Op::Sum);
  return b;
}

}  // namespace parsvd::sketch
