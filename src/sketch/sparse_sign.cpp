#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"
#include "sketch/sketch.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace parsvd::sketch {
namespace {

// Fan out once the scatter work is GEMM-threshold comparable (the sparse
// apply moves m * dim * nnz flops where the dense apply moves m*dim*s).
bool worth_threading(Index flops) {
  return flops >= kGemmParallelThreshold &&
         ThreadPool::global().size() > 1;
}

}  // namespace

SparseSignSketch::SparseSignSketch(Index dim, Index sketch_dim,
                                   std::uint64_t seed, Index nnz)
    : SketchOperator(SketchKind::SparseSign, dim, sketch_dim, seed),
      nnz_(nnz > 0 ? std::min(nnz, sketch_dim)
                   : std::min(default_sparse_nnz(), sketch_dim)),
      scale_(1.0 / std::sqrt(static_cast<double>(nnz_))) {}

void SparseSignSketch::row_pattern(Index row, Index* cols,
                                   double* vals) const {
  Rng rng = row_rng(operator_seed(), row);
  for (Index t = 0; t < nnz_; ++t) {
    // Rejection keeps the nnz columns of one row distinct; nnz <= s so
    // the loop terminates quickly (nnz defaults to 8).
    Index c = 0;
    bool fresh = false;
    while (!fresh) {
      c = static_cast<Index>(
          rng.uniform_index(static_cast<std::uint64_t>(sketch_dim())));
      fresh = true;
      for (Index u = 0; u < t; ++u) {
        if (cols[u] == c) {
          fresh = false;
          break;
        }
      }
    }
    cols[t] = c;
    vals[t] = (rng.next_u64() & 1ULL) != 0 ? scale_ : -scale_;
  }
}

Matrix SparseSignSketch::realize_rows(Index row0, Index nrows) const {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= dim(),
                 "realize_rows: row block out of range");
  Matrix block(nrows, sketch_dim());
  std::vector<Index> cols(static_cast<std::size_t>(nnz_));
  std::vector<double> vals(static_cast<std::size_t>(nnz_));
  for (Index r = 0; r < nrows; ++r) {
    row_pattern(row0 + r, cols.data(), vals.data());
    for (Index t = 0; t < nnz_; ++t) {
      block(r, cols[static_cast<std::size_t>(t)]) =
          vals[static_cast<std::size_t>(t)];
    }
  }
  return block;
}

double SparseSignSketch::apply_flops(Index m) const {
  return 2.0 * static_cast<double>(m) * static_cast<double>(dim()) *
         static_cast<double>(nnz_);
}

void SparseSignSketch::do_apply_right(const Matrix& a, Matrix& y) const {
  const Index m = a.rows();
  const Index d = dim();
  y.fill(0.0);
  // Derive the whole pattern once (d * nnz entries), then scatter: the
  // panel loop is pure arithmetic and each thread owns a disjoint row
  // range of Y, so no synchronization is needed.
  const std::size_t total = static_cast<std::size_t>(d * nnz_);
  std::vector<Index> cols(total);
  std::vector<double> vals(total);
  for (Index r = 0; r < d; ++r) {
    const std::size_t at = static_cast<std::size_t>(r * nnz_);
    row_pattern(r, cols.data() + at, vals.data() + at);
  }
  const auto panel = [&](std::size_t i0z, std::size_t i1z) {
    const Index i0 = static_cast<Index>(i0z);
    const Index i1 = static_cast<Index>(i1z);
    for (Index r = 0; r < d; ++r) {
      const double* ar = a.col_data(r);
      const std::size_t at = static_cast<std::size_t>(r * nnz_);
      for (Index t = 0; t < nnz_; ++t) {
        double* yc = y.col_data(cols[at + static_cast<std::size_t>(t)]);
        const double v = vals[at + static_cast<std::size_t>(t)];
        for (Index i = i0; i < i1; ++i) {
          yc[i] += v * ar[i];
        }
      }
    }
  };
  if (worth_threading(m * d * nnz_)) {
    ThreadPool::global().parallel_for(0, static_cast<std::size_t>(m), panel);
  } else {
    panel(0, static_cast<std::size_t>(m));
  }
}

void SparseSignSketch::do_accumulate_left(const Matrix& a, Index row_offset,
                                          Matrix& b) const {
  const Index mloc = a.rows();
  const Index n = a.cols();
  // Pattern of the local row block only; threads own disjoint column
  // ranges of B (and of A), so the scatter into B columns is race-free.
  const std::size_t total = static_cast<std::size_t>(mloc * nnz_);
  std::vector<Index> cols(total);
  std::vector<double> vals(total);
  for (Index r = 0; r < mloc; ++r) {
    const std::size_t at = static_cast<std::size_t>(r * nnz_);
    row_pattern(row_offset + r, cols.data() + at, vals.data() + at);
  }
  const auto panel = [&](std::size_t j0z, std::size_t j1z) {
    for (std::size_t jz = j0z; jz < j1z; ++jz) {
      const Index j = static_cast<Index>(jz);
      const double* aj = a.col_data(j);
      double* bj = b.col_data(j);
      for (Index r = 0; r < mloc; ++r) {
        const double ar = aj[r];
        const std::size_t at = static_cast<std::size_t>(r * nnz_);
        for (Index t = 0; t < nnz_; ++t) {
          bj[cols[at + static_cast<std::size_t>(t)]] +=
              vals[at + static_cast<std::size_t>(t)] * ar;
        }
      }
    }
  };
  if (worth_threading(mloc * n * nnz_)) {
    ThreadPool::global().parallel_for(0, static_cast<std::size_t>(n), panel);
  } else {
    panel(0, static_cast<std::size_t>(n));
  }
}

}  // namespace parsvd::sketch
