#include "sketch/sketch.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "linalg/blas.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace parsvd::sketch {
namespace {

// SplitMix64 finalizer — the same mixer Rng seeds through, reused here so
// the documented seed-derivation chain is one primitive end to end.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

const char* apply_span_name(SketchKind kind) {
  switch (kind) {
    case SketchKind::DenseGaussian:
      return "sketch.apply.dense_gaussian";
    case SketchKind::SparseSign:
      return "sketch.apply.sparse_sign";
    case SketchKind::Srht:
      return "sketch.apply.srht";
    case SketchKind::Auto:
      break;
  }
  return "sketch.apply";
}

std::string counter_name(SketchKind kind, const char* what) {
  return std::string("sketch.") + to_string(kind) + "." + what;
}

}  // namespace

const char* to_string(SketchKind kind) {
  switch (kind) {
    case SketchKind::DenseGaussian:
      return "dense_gaussian";
    case SketchKind::SparseSign:
      return "sparse_sign";
    case SketchKind::Srht:
      return "srht";
    case SketchKind::Auto:
      return "auto";
  }
  return "unknown";
}

SketchKind kind_from_string(std::string_view name) {
  std::string low(name);
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (low == "dense" || low == "gaussian" || low == "dense_gaussian") {
    return SketchKind::DenseGaussian;
  }
  if (low == "sparse" || low == "sparse_sign" || low == "countsketch") {
    return SketchKind::SparseSign;
  }
  if (low == "srht" || low == "hadamard") {
    return SketchKind::Srht;
  }
  if (low == "auto") {
    return SketchKind::Auto;
  }
  throw ConfigError("unknown sketch kind '" + std::string(name) +
                    "' (expected dense, sparse, srht or auto)");
}

SketchKind default_kind() {
  static const SketchKind kind =
      kind_from_string(env::get_string("PARSVD_SKETCH_KIND", "dense"));
  return kind;
}

Index default_sparse_nnz() {
  static const Index nnz = [] {
    const Index v = static_cast<Index>(env::get_int("PARSVD_SKETCH_NNZ", 8));
    return v > 0 ? v : Index{8};
  }();
  return nnz;
}

std::uint64_t derive_operator_seed(std::uint64_t base_seed, SketchKind kind,
                                   std::uint64_t draw_index) {
  std::uint64_t h = base_seed +
                    0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(kind) + 1);
  h = mix64(h);
  return mix64(h ^ (0xda942042e4dd58b5ULL * (draw_index + 1)));
}

Rng row_rng(std::uint64_t operator_seed, Index global_row) {
  PARSVD_CHECK(global_row >= 0, "row_rng row index must be non-negative");
  return Rng(mix64(operator_seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(global_row) + 1))));
}

Index next_pow2(Index n) {
  PARSVD_REQUIRE(n > 0, "next_pow2 of a non-positive value");
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

// ---------------------------------------------------------- base class

SketchOperator::SketchOperator(SketchKind kind, Index dim, Index sketch_dim,
                               std::uint64_t seed)
    : kind_(kind), dim_(dim), sketch_dim_(sketch_dim), seed_(seed) {
  PARSVD_REQUIRE(dim > 0, "sketch operator dim must be positive");
  PARSVD_REQUIRE(sketch_dim > 0, "sketch_dim must be positive");
  obs::Registry& reg = obs::Registry::global();
  applies_ = &reg.counter(counter_name(kind, "applies"));
  flops_ = &reg.counter(counter_name(kind, "flops"));
}

void SketchOperator::apply_right(const Matrix& a, Matrix& y) const {
  PARSVD_REQUIRE(!a.empty(), "sketch apply of an empty matrix");
  PARSVD_REQUIRE(a.cols() == dim_,
                 "sketch apply: input has " + std::to_string(a.cols()) +
                     " cols, operator dim is " + std::to_string(dim_));
  PARSVD_REQUIRE(!a.aliases(y), "sketch apply: output aliases input");
  y.resize(a.rows(), sketch_dim_);
  obs::TraceScope span(apply_span_name(kind_));
  do_apply_right(a, y);
  applies_->add(1);
  flops_->add(static_cast<std::uint64_t>(apply_flops(a.rows())));
}

Matrix SketchOperator::apply_right(const Matrix& a) const {
  Matrix y;
  apply_right(a, y);
  return y;
}

void SketchOperator::apply_right_f32(const MatrixF& a, MatrixF& y) const {
  PARSVD_REQUIRE(!a.empty(), "sketch apply of an empty matrix");
  PARSVD_REQUIRE(a.cols() == dim_,
                 "sketch apply: input has " + std::to_string(a.cols()) +
                     " cols, operator dim is " + std::to_string(dim_));
  PARSVD_REQUIRE(!a.aliases(y), "sketch apply: output aliases input");
  obs::TraceScope span(apply_span_name(kind_));
  if (kind_ == SketchKind::DenseGaussian) {
    const MatrixF omega = to_single(realize_rows(0, dim_));
    y = MatrixF(a.rows(), sketch_dim_);
    gemm_f32(Trans::No, Trans::No, 1.0f, a, omega, 0.0f, y);
  } else {
    // Structured applies are scatter/butterfly passes with no fp32
    // variant; widen, apply, narrow. Their apply is already far below
    // GEMM cost, so the conversions don't change the regime.
    const Matrix ad = to_double(a);
    Matrix yd(a.rows(), sketch_dim_);
    do_apply_right(ad, yd);
    y = to_single(yd);
  }
  applies_->add(1);
  flops_->add(static_cast<std::uint64_t>(apply_flops(a.rows())));
}

void SketchOperator::accumulate_left(const Matrix& a, Index row_offset,
                                     Matrix& b) const {
  PARSVD_REQUIRE(!a.empty(), "sketch accumulate of an empty matrix");
  PARSVD_REQUIRE(row_offset >= 0 && row_offset + a.rows() <= dim_,
                 "sketch accumulate: row block exceeds operator dim");
  PARSVD_REQUIRE(b.rows() == sketch_dim_ && b.cols() == a.cols(),
                 "sketch accumulate: output must be sketch_dim x cols(A)");
  PARSVD_REQUIRE(!a.aliases(b), "sketch accumulate: output aliases input");
  obs::TraceScope span("sketch.accumulate_left");
  do_accumulate_left(a, row_offset, b);
  applies_->add(1);
  // The left-apply moves the same operator mass as a right-apply of the
  // block's shape; reuse the per-kind model scaled to the block rows.
  flops_->add(static_cast<std::uint64_t>(
      apply_flops(a.cols()) / static_cast<double>(dim_) *
      static_cast<double>(a.rows())));
}

void SketchOperator::do_accumulate_left(const Matrix& a, Index row_offset,
                                        Matrix& b) const {
  // Generic fallback: realize row blocks of Ω and accumulate through the
  // packed kernel — O(rows x sketch_dim) extra memory per chunk.
  constexpr Index kChunk = 512;
  for (Index r0 = 0; r0 < a.rows(); r0 += kChunk) {
    const Index nr = std::min(kChunk, a.rows() - r0);
    const Matrix block = realize_rows(row_offset + r0, nr);
    detail::gemm_accumulate(Trans::Yes, Trans::No, sketch_dim_, a.cols(), nr,
                            1.0, block.data(), nr, a.data() + r0, a.rows(),
                            b.data(), sketch_dim_);
  }
}

// -------------------------------------------------------------- factory

std::unique_ptr<SketchOperator> make_sketch(SketchKind kind, Index dim,
                                            Index sketch_dim,
                                            std::uint64_t operator_seed) {
  switch (kind) {
    case SketchKind::DenseGaussian:
      return std::make_unique<GaussianSketch>(dim, sketch_dim, operator_seed);
    case SketchKind::SparseSign:
      return std::make_unique<SparseSignSketch>(dim, sketch_dim,
                                                operator_seed);
    case SketchKind::Srht:
      return std::make_unique<SrhtSketch>(dim, sketch_dim, operator_seed);
    case SketchKind::Auto:
      break;
  }
  throw ConfigError("make_sketch requires a concrete kind (resolve Auto first)");
}

SketchKind resolve_auto(SketchKind kind, Index m, Index dim,
                        Index sketch_dim) {
  if (kind != SketchKind::Auto) return kind;
  // An embedding no narrower than half the input dimension gains nothing
  // structured; keep the plain Gaussian GEMM.
  if (sketch_dim * 2 >= dim) return SketchKind::DenseGaussian;
  const double md = static_cast<double>(m) * static_cast<double>(dim);
  const double dense = 2.0 * md * static_cast<double>(sketch_dim);
  const double sparse =
      2.0 * md *
      static_cast<double>(std::min(default_sparse_nnz(), sketch_dim));
  const Index d2 = next_pow2(dim);
  double lg = 0.0;
  for (Index p = 1; p < d2; p <<= 1) lg += 1.0;
  const double srht = md + static_cast<double>(m) *
                               (static_cast<double>(d2) * lg +
                                static_cast<double>(sketch_dim));
  SketchKind best = SketchKind::DenseGaussian;
  double cost = dense;
  if (srht < cost) {
    best = SketchKind::Srht;
    cost = srht;
  }
  if (sparse < cost) {
    best = SketchKind::SparseSign;
  }
  return best;
}

void fwht(double* data, Index n) {
  PARSVD_CHECK(n > 0 && (n & (n - 1)) == 0, "fwht length must be a power of two");
  for (Index len = 1; len < n; len <<= 1) {
    for (Index i = 0; i < n; i += len << 1) {
      double* even = data + i;
      double* odd = even + len;
      for (Index j = 0; j < len; ++j) {
        const double u = even[j];
        const double v = odd[j];
        even[j] = u + v;
        odd[j] = u - v;
      }
    }
  }
}

}  // namespace parsvd::sketch
