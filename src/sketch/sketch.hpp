// Structured random sketch operators (randomized SVD v2).
//
// The Halko-style range finder spends its time applying a test matrix:
// Y = A Ω with Ω (n x s) dense Gaussian costs O(mns) — a full GEMM.
// Li-Kluger-Tygert (arXiv:1612.08709) show that structured embeddings
// reach the same spectral-error guarantees far cheaper:
//   * sparse-sign / CountSketch: ζ nonzeros (±1/√ζ) per row of Ω, apply
//     is a scatter-accumulate over A's columns, O(mnζ) with ζ ≈ 8;
//   * SRHT (subsampled randomized Hadamard transform): Ω = D H Pᵀ with a
//     ±1 diagonal D, the Walsh-Hadamard transform H on the next power of
//     two, and a column subsampling P; apply is O(mn log n) via the
//     in-place butterfly.
// The dense Gaussian operator remains available (and the default) behind
// the same interface.
//
// Seeding contract (DESIGN §10). Every operator is fully determined by
// (kind, dim, sketch_dim, operator_seed):
//   * operator_seed is derived from a caller base seed with
//     derive_operator_seed(base, kind, draw_index) — the documented split
//     that keeps per-call fresh-Ω streams and per-kind operators from
//     silently correlating;
//   * all row-indexed randomness (Gaussian rows, sparse patterns, SRHT
//     signs) comes from row_rng(operator_seed, global_row) — a fresh
//     generator per GLOBAL row index, so realize_rows(lo, n) is bit-exact
//     regardless of how the row range is blocked. P identically-seeded
//     ranks each holding a row slice therefore realize exactly the rows
//     of the one global operator (the distributed sketch-apply contract).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace parsvd::sketch {

/// Test-matrix family used by the randomized range finder.
enum class SketchKind {
  DenseGaussian,  ///< i.i.d. N(0,1) entries; O(mns) GEMM apply.
  SparseSign,     ///< CountSketch-style, ζ entries ±1/√ζ per row; O(mnζ).
  Srht,           ///< subsampled randomized Hadamard; O(mn log n).
  Auto,           ///< pick by the per-kind apply-cost model.
};

const char* to_string(SketchKind kind);

/// Parse "dense"/"gaussian", "sparse"/"sparse_sign"/"countsketch",
/// "srht"/"hadamard", "auto" (case-insensitive). Throws on anything else.
SketchKind kind_from_string(std::string_view name);

/// Process-wide default for RandomizedOptions: PARSVD_SKETCH_KIND (read
/// once), DenseGaussian when unset — the sketched paths are opt-in.
SketchKind default_kind();

/// Nonzeros per Ω row for sparse-sign operators: PARSVD_SKETCH_NNZ (read
/// once), 8 when unset (the SketchySVD operating point).
Index default_sparse_nnz();

// ------------------------------------------------------ seeding contract

/// Derive the seed of one concrete operator from a caller stream value.
/// `draw_index` distinguishes multiple operators minted from one base
/// (e.g. per power-iteration refresh); the kind is mixed in so switching
/// kinds can never replay another kind's stream.
std::uint64_t derive_operator_seed(std::uint64_t base_seed, SketchKind kind,
                                   std::uint64_t draw_index);

/// Generator of all randomness attached to one GLOBAL row of Ω. Fresh
/// per row — never advanced across rows — so block realizations are
/// partition-invariant bit-for-bit.
Rng row_rng(std::uint64_t operator_seed, Index global_row);

// ---------------------------------------------------- operator interface

/// A random linear map Ω : R^dim → R^sketch_dim, applied without ever
/// materializing Ω on the fast paths. Thread-safe for concurrent applies
/// (operators are immutable after construction).
class SketchOperator {
 public:
  virtual ~SketchOperator() = default;
  SketchOperator(const SketchOperator&) = delete;
  SketchOperator& operator=(const SketchOperator&) = delete;

  SketchKind kind() const { return kind_; }
  /// d — the dimension being compressed (columns of A for Y = A Ω; the
  /// global row count for the distributed left-apply).
  Index dim() const { return dim_; }
  /// s — the embedding dimension (rank + oversampling).
  Index sketch_dim() const { return sketch_dim_; }
  std::uint64_t operator_seed() const { return seed_; }

  /// Y = A Ω (A: m x dim, Y resized to m x sketch_dim) — the range
  /// finder's sketch. Large inputs fan out over the global ThreadPool in
  /// row panels.
  void apply_right(const Matrix& a, Matrix& y) const;
  Matrix apply_right(const Matrix& a) const;

  /// fp32 working-precision sketch: Y = A Ω on float buffers (the Mixed /
  /// Single range-finder paths, DESIGN §12). Dense kinds realize Ω once,
  /// narrow it, and run the fp32 packed GEMM — the full ~2x throughput
  /// win; structured kinds (already bandwidth-bound, no fp32 kernels)
  /// fall back to the fp64 apply and narrow the result.
  void apply_right_f32(const MatrixF& a, MatrixF& y) const;

  /// B += Ω[row_offset : row_offset + a.rows(), :]ᵀ A — one rank's
  /// contribution to the row-compressing sketch B = Ωᵀ A of a
  /// row-distributed matrix (B: sketch_dim x a.cols()). The partial
  /// sketches of all ranks sum to the serial Ωᵀ A because realization is
  /// per-global-row (see the seeding contract above).
  void accumulate_left(const Matrix& a, Index row_offset, Matrix& b) const;

  /// Dense realization of rows [row0, row0 + nrows) of Ω — bit-exact for
  /// any blocking of the row range. Reference path for tests and the
  /// generic accumulate_left fallback; O(nrows x sketch_dim) memory.
  virtual Matrix realize_rows(Index row0, Index nrows) const = 0;

  /// Flop estimate of one apply_right on an m x dim input, for the
  /// metrics counters and the Auto cost model.
  virtual double apply_flops(Index m) const = 0;

 protected:
  SketchOperator(SketchKind kind, Index dim, Index sketch_dim,
                 std::uint64_t seed);

  virtual void do_apply_right(const Matrix& a, Matrix& y) const = 0;
  /// Default: realize row blocks and accumulate through gemm. SparseSign
  /// overrides with the scatter version.
  virtual void do_accumulate_left(const Matrix& a, Index row_offset,
                                  Matrix& b) const;

 private:
  SketchKind kind_;
  Index dim_;
  Index sketch_dim_;
  std::uint64_t seed_;
  // Cached registry series ("sketch.<kind>.applies" / ".flops"): one
  // relaxed add per apply.
  obs::Counter* applies_ = nullptr;
  obs::Counter* flops_ = nullptr;
};

/// Dense i.i.d. N(0,1) test matrix — the paper's §3.3 operator behind
/// the common interface. apply_right materializes Ω and runs one GEMM
/// (exactly the legacy cost); rows are derived per-global-row so the
/// distributed contract holds for it too.
class GaussianSketch final : public SketchOperator {
 public:
  GaussianSketch(Index dim, Index sketch_dim, std::uint64_t seed);
  Matrix realize_rows(Index row0, Index nrows) const override;
  double apply_flops(Index m) const override;

 protected:
  void do_apply_right(const Matrix& a, Matrix& y) const override;
};

/// Sparse-sign / CountSketch embedding: each row of Ω holds `nnz` values
/// ±1/√nnz in distinct columns. apply_right is a scatter-accumulate over
/// A's columns, threaded over row panels of A.
class SparseSignSketch final : public SketchOperator {
 public:
  /// `nnz` == 0 selects min(default_sparse_nnz(), sketch_dim).
  SparseSignSketch(Index dim, Index sketch_dim, std::uint64_t seed,
                   Index nnz = 0);
  Index nnz_per_row() const { return nnz_; }
  Matrix realize_rows(Index row0, Index nrows) const override;
  double apply_flops(Index m) const override;

 protected:
  void do_apply_right(const Matrix& a, Matrix& y) const override;
  void do_accumulate_left(const Matrix& a, Index row_offset,
                          Matrix& b) const override;

 private:
  /// Columns and signed values (±1/√nnz) of global row `row`, written to
  /// cols[0..nnz) / vals[0..nnz). Derivation only — no state.
  void row_pattern(Index row, Index* cols, double* vals) const;

  Index nnz_;
  double scale_;
};

/// Subsampled randomized Hadamard transform: Ω = √(d₂/s)·D·H·Pᵀ/√d₂ with
/// d₂ = next power of two ≥ dim (inputs zero-padded), D a ±1 diagonal
/// derived per global row, H the Walsh-Hadamard matrix applied via the
/// in-place butterfly, P a uniform sample of s distinct output indices.
/// Entries of the realized Ω are ±1/√s.
class SrhtSketch final : public SketchOperator {
 public:
  SrhtSketch(Index dim, Index sketch_dim, std::uint64_t seed);
  Index padded_dim() const { return padded_; }
  /// The s sampled Hadamard output indices (ascending, deterministic).
  const std::vector<Index>& selected() const { return selected_; }
  Matrix realize_rows(Index row0, Index nrows) const override;
  double apply_flops(Index m) const override;

 protected:
  void do_apply_right(const Matrix& a, Matrix& y) const override;

 private:
  double sign(Index row) const;

  Index padded_;
  std::vector<Index> selected_;
  double scale_;  // 1/√s
};

/// Construct an operator; `kind` must be concrete (resolve Auto first).
std::unique_ptr<SketchOperator> make_sketch(SketchKind kind, Index dim,
                                            Index sketch_dim,
                                            std::uint64_t operator_seed);

/// Resolve Auto to the cheapest kind for an m x dim input sketched to
/// sketch_dim columns (per-kind apply-cost model; dense wins ties and
/// all degenerate shapes where the embedding is no narrower than dim/2).
SketchKind resolve_auto(SketchKind kind, Index m, Index dim,
                        Index sketch_dim);

/// In-place unnormalized Walsh-Hadamard transform of data[0..n), n a
/// power of two: y[c] = Σ_r x[r]·(−1)^popcount(r & c).
void fwht(double* data, Index n);

/// Smallest power of two >= n (the SRHT padded dimension).
Index next_pow2(Index n);

}  // namespace parsvd::sketch
