// Distributed sketch-apply for row-distributed matrices.
//
// A (global m x n) lives as row blocks A_i on P ranks. Every rank holds an
// identically-seeded SketchOperator over the GLOBAL row dimension m; the
// per-global-row seeding contract (sketch.hpp) means rank i's
// accumulate_left realizes exactly rows [offset_i, offset_i + m_i) of the
// one global Ω, so
//     B = Ωᵀ A = Σ_i Ω[rows_i, :]ᵀ A_i
// is one local sketch per rank followed by an allreduce-sum over the s x n
// partials through the existing tree collectives.
#pragma once

#include "linalg/matrix.hpp"
#include "pmpi/comm.hpp"
#include "sketch/sketch.hpp"

namespace parsvd::sketch {

/// B = Ωᵀ A for a row-distributed A. `a_local` is this rank's row block,
/// `row_offset` its first global row; `op.dim()` must equal the global row
/// count. Collective: every rank of `comm` must call with the same
/// operator (kind, dims, operator_seed) and a consistent row partition.
/// Returns the full sketch_dim x cols(A) sketch on every rank.
Matrix distributed_sketch_apply(pmpi::Communicator& comm,
                                const SketchOperator& op,
                                const Matrix& a_local, Index row_offset);

}  // namespace parsvd::sketch
