#include "sketch/sketch.hpp"

#include "linalg/blas.hpp"
#include "support/error.hpp"

namespace parsvd::sketch {

GaussianSketch::GaussianSketch(Index dim, Index sketch_dim, std::uint64_t seed)
    : SketchOperator(SketchKind::DenseGaussian, dim, sketch_dim, seed) {}

Matrix GaussianSketch::realize_rows(Index row0, Index nrows) const {
  PARSVD_REQUIRE(row0 >= 0 && nrows > 0 && row0 + nrows <= dim(),
                 "realize_rows: row block out of range");
  const Index s = sketch_dim();
  Matrix block(nrows, s);
  std::vector<double> row(static_cast<std::size_t>(s));
  for (Index r = 0; r < nrows; ++r) {
    Rng rng = row_rng(operator_seed(), row0 + r);
    rng.fill_gaussian(row.data(), row.size());
    for (Index k = 0; k < s; ++k) {
      block(r, k) = row[static_cast<std::size_t>(k)];
    }
  }
  return block;
}

double GaussianSketch::apply_flops(Index m) const {
  // One m x dim x sketch_dim GEMM plus the Ω draw itself.
  const double d = static_cast<double>(dim());
  const double s = static_cast<double>(sketch_dim());
  return 2.0 * static_cast<double>(m) * d * s + d * s;
}

void GaussianSketch::do_apply_right(const Matrix& a, Matrix& y) const {
  const Matrix omega = realize_rows(0, dim());
  gemm(Trans::No, Trans::No, 1.0, a, omega, 0.0, y);
}

}  // namespace parsvd::sketch
