// Symmetric eigendecomposition via Householder tridiagonalization and
// implicit-shift QL iteration — the classic tred2/tql2 pair (Bowdler,
// Martin, Reinsch & Wilkinson 1968; EISPACK lineage), written against
// Golub & Van Loan §8.3. Independent of the Jacobi backend in eigh.cpp
// so the two can cross-validate each other in the test suite.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/eigh.hpp"

namespace parsvd {
namespace {

/// Householder reduction of the symmetric matrix stored in z to
/// tridiagonal form: on return d holds the diagonal, e the subdiagonal
/// (e[0] = 0), and z the accumulated orthogonal transform Q with
/// A = Q T Qᵀ.
void tred2(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const Index n = z.rows();

  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (Index k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[static_cast<std::size_t>(i)] = z(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<std::size_t>(i)] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (Index j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;  // store u/H for the transform pass
          g = 0.0;
          for (Index k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (Index k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[static_cast<std::size_t>(j)] = g / h;
          f += e[static_cast<std::size_t>(j)] * z(i, j);
        }
        const double hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[static_cast<std::size_t>(j)] - hh * f;
          e[static_cast<std::size_t>(j)] = g;
          for (Index k = 0; k <= j; ++k) {
            z(j, k) -= f * e[static_cast<std::size_t>(k)] + g * z(i, k);
          }
        }
      }
    } else {
      e[static_cast<std::size_t>(i)] = z(i, l);
    }
    d[static_cast<std::size_t>(i)] = h;
  }

  // Accumulate the orthogonal transform.
  d[0] = 0.0;
  e[0] = 0.0;
  for (Index i = 0; i < n; ++i) {
    const Index l = i - 1;
    if (d[static_cast<std::size_t>(i)] != 0.0) {
      for (Index j = 0; j <= l; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (Index k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[static_cast<std::size_t>(i)] = z(i, i);
    z(i, i) = 1.0;
    for (Index j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on the tridiagonal (d, e) with
/// eigenvector accumulation into z. e[0] is ignored on entry.
void tql2(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const Index n = z.rows();
  if (n == 1) return;

  for (Index i = 1; i < n; ++i) e[static_cast<std::size_t>(i - 1)] = e[static_cast<std::size_t>(i)];
  e[static_cast<std::size_t>(n - 1)] = 0.0;

  constexpr double kEps = 2.220446049250313e-16;
  // Absolute deflation floor: rank-deficient inputs (e.g. Gram matrices
  // of low-rank data) leave trailing blocks whose d AND e entries are
  // all round-off noise ~ eps*||A||; the relative test |e| <= eps*dd
  // never fires there and the sweep stagnates. Dropping |e| <= eps*anorm
  // perturbs eigenvalues by at most eps*||A|| — the method's intrinsic
  // (backward-stable) accuracy.
  double anorm = 0.0;
  for (Index i = 0; i < n; ++i) {
    anorm = std::max(anorm, std::fabs(d[static_cast<std::size_t>(i)]) +
                                std::fabs(e[static_cast<std::size_t>(i)]));
  }
  const double abs_floor = kEps * anorm;

  constexpr int kMaxIter = 50;
  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    Index m;
    do {
      // Look for a negligible subdiagonal element to split at.
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[static_cast<std::size_t>(m)]) +
                          std::fabs(d[static_cast<std::size_t>(m + 1)]);
        const double em = std::fabs(e[static_cast<std::size_t>(m)]);
        if (em <= kEps * dd || em <= abs_floor) {
          break;
        }
      }
      if (m != l) {
        if (++iter > kMaxIter) {
          throw ConvergenceError("tql2 exceeded its iteration budget");
        }
        // Wilkinson shift from the leading 2x2.
        double g = (d[static_cast<std::size_t>(l + 1)] -
                    d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        Index i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            // Deflate without finishing the sweep.
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          // Accumulate the rotation into the eigenvector matrix.
          for (Index k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

EighResult eigh_tridiagonal(const Matrix& input, const EighOptions& opts) {
  PARSVD_REQUIRE(input.rows() == input.cols(),
                 "eigh requires a square matrix");
  const Index n = input.rows();
  if (n == 0) return {Vector{}, Matrix{}};

  const double scale = std::max(input.norm_max(), 1.0);
  Matrix z(n, n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      PARSVD_REQUIRE(std::fabs(input(i, j) - input(j, i)) <= 1e-8 * scale,
                     "eigh input is not symmetric");
      const double v = 0.5 * (input(i, j) + input(j, i));
      z(i, j) = v;
      z(j, i) = v;
    }
  }

  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<double> e(static_cast<std::size_t>(n), 0.0);
  tred2(z, d, e);
  tql2(z, d, e);

  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(), [&d](Index a, Index b) {
    return d[static_cast<std::size_t>(a)] > d[static_cast<std::size_t>(b)];
  });

  EighResult out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (Index k = 0; k < n; ++k) {
    const Index src = order[static_cast<std::size_t>(k)];
    out.values[k] = d[static_cast<std::size_t>(src)];
    out.vectors.set_col(k, z.col(src));
  }
  (void)opts;
  return out;
}

}  // namespace parsvd
