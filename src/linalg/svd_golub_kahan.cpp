// Golub-Kahan-Reinsch SVD: Householder bidiagonalization followed by
// implicit-shift QR iteration on the bidiagonal with bulge chasing
// (Golub & Van Loan, Algorithm 8.6.2).  Provided as an independent
// backend so tests can cross-validate it against the one-sided Jacobi
// implementation — the two share no code beyond the Matrix container.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace parsvd {
namespace {

/// Plane rotation: returns (c, s, r) with c*a + s*b = r, -s*a + c*b = 0.
struct Givens {
  double c;
  double s;
  double r;
};

Givens make_givens(double a, double b) {
  if (b == 0.0) return {1.0, 0.0, a};
  if (a == 0.0) return {0.0, 1.0, b};
  const double r = std::hypot(a, b);
  return {a / r, b / r, r};
}

/// col_j := c*col_j + s*col_k ; col_k := -s*col_j_old + c*col_k.
void rotate_cols(Matrix& m, Index j, Index k, double c, double s) {
  double* pj = m.col_data(j);
  double* pk = m.col_data(k);
  const Index rows = m.rows();
  for (Index i = 0; i < rows; ++i) {
    const double xj = pj[i], xk = pk[i];
    pj[i] = c * xj + s * xk;
    pk[i] = -s * xj + c * xk;
  }
}

struct Bidiagonalization {
  std::vector<double> d;  // diagonal, length n
  std::vector<double> e;  // superdiagonal, length n-1
  Matrix u;               // m x n, accumulated left reflectors
  Matrix v;               // n x n, accumulated right reflectors
};

/// Householder bidiagonalization of A (m >= n): A = U B Vᵀ with B upper
/// bidiagonal. U is returned thin (m x n).
Bidiagonalization bidiagonalize(const Matrix& input) {
  Matrix a = input;  // working copy; reflectors stored in place
  const Index m = a.rows();
  const Index n = a.cols();
  std::vector<double> tau_l(static_cast<std::size_t>(n), 0.0);
  std::vector<double> tau_r(static_cast<std::size_t>(n), 0.0);

  for (Index j = 0; j < n; ++j) {
    // --- left reflector: zero column j below the diagonal ---
    {
      double alpha = a(j, j);
      double xnorm = 0.0;
      for (Index i = j + 1; i < m; ++i) xnorm += a(i, j) * a(i, j);
      xnorm = std::sqrt(xnorm);
      if (xnorm != 0.0 || alpha != 0.0) {
        double beta = std::hypot(alpha, xnorm);
        if (alpha >= 0.0) beta = -beta;
        if (beta != 0.0 && xnorm != 0.0) {
          const double tau = (beta - alpha) / beta;
          const double inv = 1.0 / (alpha - beta);
          for (Index i = j + 1; i < m; ++i) a(i, j) *= inv;
          tau_l[static_cast<std::size_t>(j)] = tau;
          a(j, j) = beta;
          // Apply to trailing columns.
          for (Index c = j + 1; c < n; ++c) {
            double w = a(j, c);
            for (Index i = j + 1; i < m; ++i) w += a(i, j) * a(i, c);
            w *= tau;
            a(j, c) -= w;
            for (Index i = j + 1; i < m; ++i) a(i, c) -= w * a(i, j);
          }
        }
      }
    }
    // --- right reflector: zero row j beyond the superdiagonal ---
    if (j + 2 < n) {
      double alpha = a(j, j + 1);
      double xnorm = 0.0;
      for (Index c = j + 2; c < n; ++c) xnorm += a(j, c) * a(j, c);
      xnorm = std::sqrt(xnorm);
      if (xnorm != 0.0) {
        double beta = std::hypot(alpha, xnorm);
        if (alpha >= 0.0) beta = -beta;
        const double tau = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (Index c = j + 2; c < n; ++c) a(j, c) *= inv;
        tau_r[static_cast<std::size_t>(j)] = tau;
        a(j, j + 1) = beta;
        // Apply to rows j+1..m-1 from the right.
        for (Index i = j + 1; i < m; ++i) {
          double w = a(i, j + 1);
          for (Index c = j + 2; c < n; ++c) w += a(j, c) * a(i, c);
          w *= tau;
          a(i, j + 1) -= w;
          for (Index c = j + 2; c < n; ++c) a(i, c) -= w * a(j, c);
        }
      }
    }
  }

  Bidiagonalization out;
  out.d.resize(static_cast<std::size_t>(n));
  out.e.resize(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (Index j = 0; j < n; ++j) out.d[static_cast<std::size_t>(j)] = a(j, j);
  for (Index j = 0; j + 1 < n; ++j) out.e[static_cast<std::size_t>(j)] = a(j, j + 1);

  // Form thin U = H_0 ... H_{n-1} I(:, 0..n-1), reflectors applied in
  // reverse order.
  out.u = Matrix(m, n);
  for (Index j = 0; j < n; ++j) out.u(j, j) = 1.0;
  for (Index j = n - 1; j >= 0; --j) {
    const double tau = tau_l[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    for (Index c = 0; c < n; ++c) {
      double* colc = out.u.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += a(i, j) * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * a(i, j);
    }
  }

  // Form V = G_0 ... G_{n-3} applied to I, reflectors living in rows.
  out.v = Matrix::identity(n);
  for (Index j = n - 3; j >= 0; --j) {
    const double tau = tau_r[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    // Reflector vector: v[j+1] = 1, v[c] = a(j, c) for c in j+2..n-1.
    for (Index col = 0; col < n; ++col) {
      double* vc = out.v.col_data(col);
      double w = vc[j + 1];
      for (Index c = j + 2; c < n; ++c) w += a(j, c) * vc[c];
      w *= tau;
      vc[j + 1] -= w;
      for (Index c = j + 2; c < n; ++c) vc[c] -= w * a(j, c);
    }
  }
  return out;
}

/// One implicit-shift QR step with bulge chasing on block [lo, hi].
void qr_step(std::vector<double>& d, std::vector<double>& e, Index lo,
             Index hi, Matrix& u, Matrix& v) {
  auto D = [&](Index i) -> double& { return d[static_cast<std::size_t>(i)]; };
  auto E = [&](Index i) -> double& { return e[static_cast<std::size_t>(i)]; };

  // Wilkinson shift from the trailing 2x2 of BᵀB.
  const double dm1 = D(hi - 1), dm = D(hi);
  const double em1 = E(hi - 1);
  const double em2 = (hi - 1 > lo) ? E(hi - 2) : 0.0;
  const double t11 = dm1 * dm1 + em2 * em2;
  const double t12 = dm1 * em1;
  const double t22 = dm * dm + em1 * em1;
  const double delta = 0.5 * (t11 - t22);
  double mu;
  if (delta == 0.0 && t12 == 0.0) {
    mu = t22;
  } else {
    const double denom = delta + std::copysign(std::hypot(delta, t12), delta);
    mu = (denom != 0.0) ? t22 - t12 * t12 / denom : t22;
  }

  double y = D(lo) * D(lo) - mu;
  double z = D(lo) * E(lo);

  for (Index k = lo; k < hi; ++k) {
    // Right rotation on columns (k, k+1): zero z in the implicit first
    // column; introduces the bulge below the diagonal.
    Givens g = make_givens(y, z);
    if (k > lo) E(k - 1) = g.r;
    const double dk = D(k), ek = E(k), dk1 = D(k + 1);
    D(k) = g.c * dk + g.s * ek;
    E(k) = -g.s * dk + g.c * ek;
    double bulge = g.s * dk1;
    D(k + 1) = g.c * dk1;
    rotate_cols(v, k, k + 1, g.c, g.s);

    // Left rotation on rows (k, k+1): annihilate the bulge.
    g = make_givens(D(k), bulge);
    D(k) = g.r;
    const double ek2 = E(k), dk2 = D(k + 1);
    E(k) = g.c * ek2 + g.s * dk2;
    D(k + 1) = -g.s * ek2 + g.c * dk2;
    rotate_cols(u, k, k + 1, g.c, g.s);
    if (k + 1 < hi) {
      const double ek1 = E(k + 1);
      y = E(k);
      z = g.s * ek1;
      E(k + 1) = g.c * ek1;
    }
  }
}

/// Annihilate superdiagonal entry e[k] when d[k] is (numerically) zero by
/// chasing it along row k with left rotations against rows k+1..hi.
void zero_row(std::vector<double>& d, std::vector<double>& e, Index k,
              Index hi, Matrix& u) {
  auto D = [&](Index i) -> double& { return d[static_cast<std::size_t>(i)]; };
  auto E = [&](Index i) -> double& { return e[static_cast<std::size_t>(i)]; };

  double f = E(k);
  E(k) = 0.0;
  for (Index l = k + 1; l <= hi && f != 0.0; ++l) {
    const Givens g = make_givens(D(l), f);  // c = d/r, s = f/r
    D(l) = g.r;
    // Row k mixes with row l: U columns (k, l) rotate with (c, -s)
    // because new row_k = c*row_k - s*row_l.
    rotate_cols(u, l, k, g.c, g.s);
    if (l < hi) {
      f = -g.s * E(l);
      E(l) = g.c * E(l);
    }
  }
}

}  // namespace

SvdResult svd_golub_kahan(const Matrix& a, const SvdOptions& opts) {
  PARSVD_REQUIRE(!a.empty(), "svd of an empty matrix");
  const Index m = a.rows();
  const Index n = a.cols();

  if (m < n) {
    SvdOptions o = opts;
    o.rank = 0;
    SvdResult out = svd_golub_kahan(a.transposed(), o);
    std::swap(out.u, out.v);
    if (opts.rank > 0 && opts.rank < out.s.size()) {
      out.u = out.u.left_cols(opts.rank);
      out.v = out.v.left_cols(opts.rank);
      out.s = out.s.head(opts.rank);
    }
    return out;
  }

  Bidiagonalization bd = bidiagonalize(a);
  std::vector<double>& d = bd.d;
  std::vector<double>& e = bd.e;
  constexpr double kEps = 2.220446049250313e-16;

  const int max_iter = 100 * static_cast<int>(std::max<Index>(n, 1));
  int iter = 0;
  for (;;) {
    // Deflate negligible superdiagonal entries.
    for (Index i = 0; i + 1 < n; ++i) {
      const double thresh =
          kEps * (std::fabs(d[static_cast<std::size_t>(i)]) +
                  std::fabs(d[static_cast<std::size_t>(i + 1)]));
      if (std::fabs(e[static_cast<std::size_t>(i)]) <= thresh) {
        e[static_cast<std::size_t>(i)] = 0.0;
      }
    }
    // Find the trailing unreduced block [lo, hi].
    Index hi = n - 1;
    while (hi > 0 && e[static_cast<std::size_t>(hi - 1)] == 0.0) --hi;
    if (hi == 0) break;  // fully diagonal
    Index lo = hi - 1;
    while (lo > 0 && e[static_cast<std::size_t>(lo - 1)] != 0.0) --lo;

    if (++iter > max_iter) {
      throw ConvergenceError("Golub-Kahan QR iteration exceeded budget");
    }

    // Zero diagonal inside the block needs the row-annihilation special
    // case; otherwise run a shifted QR step.
    bool handled_zero = false;
    const double dmax = [&] {
      double mval = 0.0;
      for (Index i = lo; i <= hi; ++i) {
        mval = std::max(mval, std::fabs(d[static_cast<std::size_t>(i)]));
      }
      return mval;
    }();
    for (Index i = lo; i < hi; ++i) {
      if (std::fabs(d[static_cast<std::size_t>(i)]) <= kEps * dmax) {
        d[static_cast<std::size_t>(i)] = 0.0;
        zero_row(d, e, i, hi, bd.u);
        handled_zero = true;
        break;
      }
    }
    if (!handled_zero) {
      qr_step(d, e, lo, hi, bd.u, bd.v);
    }
  }

  // Make singular values non-negative (flip matching V column).
  for (Index j = 0; j < n; ++j) {
    if (d[static_cast<std::size_t>(j)] < 0.0) {
      d[static_cast<std::size_t>(j)] = -d[static_cast<std::size_t>(j)];
      scal(-1.0, bd.v.col_span(j));
    }
  }

  // Sort descending.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(), [&d](Index x, Index y) {
    return d[static_cast<std::size_t>(x)] > d[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.s = Vector(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    out.s[j] = d[static_cast<std::size_t>(src)];
    out.u.set_col(j, bd.u.col(src));
    out.v.set_col(j, bd.v.col(src));
  }
  if (opts.rank > 0 && opts.rank < out.s.size()) {
    out.u = out.u.left_cols(opts.rank);
    out.v = out.v.left_cols(opts.rank);
    out.s = out.s.head(opts.rank);
  }
  return out;
}

}  // namespace parsvd
