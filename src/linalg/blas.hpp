// BLAS-style dense kernels.
//
// The substrate the paper gets for free from NumPy/LAPACK. Level-3 matmul
// runs through a packed, register-tiled kernel engine (BLIS-style
// MC/KC/NC cache blocking around an MR x NR micro-kernel) and fans out to
// the shared-memory thread pool above a size threshold; gram() and gemv()
// reuse the same engine / partitioning. The library's cost profile is
// dominated by GEMM and the factorizations built on it.
//
// Tuning knobs (read once per process, see DESIGN.md "kernel engine"):
//   PARSVD_GEMM_MC / PARSVD_GEMM_KC / PARSVD_GEMM_NC — cache block sizes
//   PARSVD_NUM_THREADS                               — pool width
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd {

/// Transposition selector for matmul operands.
enum class Trans { No, Yes };

// ------------------------------------------------------------- level 1

/// dot(x, y) = xᵀy
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// Euclidean norm with overflow-safe scaling.
double nrm2(std::span<const double> x);

// ------------------------------------------------------------- level 2

/// y = alpha * op(A) x + beta * y.
/// Above kGemvParallelThreshold the row (No) / column (Yes) range is
/// partitioned over the thread pool.
void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y);

/// A += alpha * x yᵀ  (rank-1 update)
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ------------------------------------------------------------- level 3

/// C = alpha * op(A) op(B) + beta * C.
/// Shapes are validated; C must already have the result shape and must not
/// alias A or B (checked — an aliased output would be silently corrupted
/// by the packed kernel's accumulation order).
/// All four transpose combinations route through the same packed kernel,
/// so Trans::Yes operands pay no strided-access penalty.
void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c);

/// Convenience: returns op(A) op(B) as a fresh matrix.
Matrix matmul(const Matrix& a, const Matrix& b,
              Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// C = AᵀA (n x n Gram matrix). Only the upper triangle is computed (per
/// column block, through the packed kernel) and mirrored; column blocks are
/// partitioned over the thread pool above the GEMM threshold.
Matrix gram(const Matrix& a);

/// Minimum per-op flop proxy (m*n*k) before GEMM fans out to the thread
/// pool; exposed so tests can force both the serial and parallel paths.
inline constexpr Index kGemmParallelThreshold = 64 * 64 * 64;

/// Minimum element count (m*n) before GEMV fans out to the thread pool.
inline constexpr Index kGemvParallelThreshold = 128 * 1024;

namespace detail {

/// Core packed-kernel entry on raw column-major views:
///   C(m x n, leading dim ldc) += alpha * op(A)(m x k) * op(B)(k x n)
/// with op resolved during packing. `lda`/`ldb` are the leading dimensions
/// of the *stored* (untransposed) operands. Used by gemm/gram and the
/// blocked-QR trailing updates; callers guarantee C does not alias A or B.
/// `allow_parallel` gates the pool fan-out (callers already running inside
/// a parallel_for must pass false).
void gemm_accumulate(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                     double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     bool allow_parallel = true);

}  // namespace detail

}  // namespace parsvd
