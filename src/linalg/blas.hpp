// BLAS-style dense kernels.
//
// The substrate the paper gets for free from NumPy/LAPACK. Level-3 matmul
// runs through a packed, register-tiled kernel engine (BLIS-style
// MC/KC/NC cache blocking around an MR x NR micro-kernel, shared between
// the fp64 and fp32 paths — see linalg/gemm_engine.hpp) and fans out to
// the shared-memory thread pool above a size threshold; gram() and gemv()
// reuse the same engine / partitioning. The library's cost profile is
// dominated by GEMM and the factorizations built on it.
//
// Three precision regimes (DESIGN.md §12):
//   * fp64 — the default and the library's currency;
//   * fp32 — gemm_f32/matmul_f32 on MatrixF buffers, ~2x vector
//     throughput, used by the mixed randomized-SVD path which refines
//     the fp32 subspace back to fp64 (core/randomized.cpp);
//   * compensated — double-double (two-sum/two-prod) accumulation for
//     Gram matrices and long-stream dots behind PARSVD_COMPENSATED, for
//     the ill-conditioned spots where naive fp64 summation loses digits.
//
// Blocking parameters come from the autotune profile (linalg/autotune.hpp):
// defaults -> PARSVD_TUNE_PROFILE file -> PARSVD_GEMM_MC/KC/NC overrides.
#pragma once

#include <string_view>

#include "linalg/autotune.hpp"
#include "linalg/matrix.hpp"

namespace parsvd {

/// Transposition selector for matmul operands.
enum class Trans { No, Yes };

/// Arithmetic regime for the flop-heavy inner loops of the randomized /
/// streaming paths. Double is the reference; Single runs the range finder
/// entirely in fp32 (coarse — bench/ablation use); Mixed runs sketch
/// applies and power-iteration GEMMs in fp32 then re-orthogonalizes and
/// projects in fp64, recovering fp64-grade singular values (DESIGN §12).
enum class Precision { Double, Single, Mixed };

const char* to_string(Precision p);

/// Parse "double" / "single" / "mixed" (case-sensitive, matching the env
/// registry); throws parsvd::Error on anything else.
Precision precision_from_string(std::string_view s);

/// Process-wide default from PARSVD_PRECISION (cached; "double" if unset).
Precision default_precision();

// ----------------------------------------------------- precision casts

/// Elementwise narrowing copy (rounds to nearest float).
MatrixF to_single(const Matrix& a);

/// Elementwise widening copy.
Matrix to_double(const MatrixF& a);

// ------------------------------------------------------------- level 1

/// dot(x, y) = xᵀy. Routes to dot_compensated when PARSVD_COMPENSATED
/// is on (long-stream dots are one of the two ill-conditioned spots).
double dot(std::span<const double> x, std::span<const double> y);

/// Compensated dot product (Ogita–Rump–Oishi Dot2: two-prod via FMA plus
/// running two-sum compensation) — results as if accumulated in roughly
/// twice the working precision, at ~4x the flops.
double dot_compensated(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// Euclidean norm with overflow-safe scaling.
double nrm2(std::span<const double> x);

// ------------------------------------------------------------- level 2

/// y = alpha * op(A) x + beta * y.
/// Above kGemvParallelThreshold the row (No) / column (Yes) range is
/// partitioned over the thread pool.
void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y);

/// A += alpha * x yᵀ  (rank-1 update)
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ------------------------------------------------------------- level 3

/// C = alpha * op(A) op(B) + beta * C.
/// Shapes are validated; C must already have the result shape and must not
/// alias A or B (checked — an aliased output would be silently corrupted
/// by the packed kernel's accumulation order).
/// All four transpose combinations route through the same packed kernel,
/// so Trans::Yes operands pay no strided-access penalty.
void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c);

/// fp32 C = alpha * op(A) op(B) + beta * C through the same packed engine
/// (float micro-kernels, fp32-tuned blocking). Same shape/alias contract
/// as gemm().
void gemm_f32(Trans trans_a, Trans trans_b, float alpha, const MatrixF& a,
              const MatrixF& b, float beta, MatrixF& c);

/// Convenience: returns op(A) op(B) as a fresh matrix.
Matrix matmul(const Matrix& a, const Matrix& b,
              Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// fp32 convenience counterpart of matmul().
MatrixF matmul_f32(const MatrixF& a, const MatrixF& b,
                   Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// C = AᵀA (n x n Gram matrix). Only the upper triangle is computed (per
/// column block, through the packed kernel) and mirrored; column blocks are
/// partitioned over the thread pool above the GEMM threshold. Routes to
/// gram_compensated when PARSVD_COMPENSATED is on.
Matrix gram(const Matrix& a);

/// Compensated Gram matrix: every entry is a Dot2 compensated column dot,
/// so G = AᵀA carries roughly double-double accumulation accuracy. Much
/// slower than the packed path — reserved for ill-conditioned spots.
Matrix gram_compensated(const Matrix& a);

/// True when PARSVD_COMPENSATED requests compensated accumulation for the
/// routing entry points dot() / gram() (cached once per process).
bool compensated_enabled();

/// Minimum per-op flop proxy (m*n*k) before GEMM fans out to the thread
/// pool; exposed so tests can force both the serial and parallel paths.
inline constexpr Index kGemmParallelThreshold = 64 * 64 * 64;

/// Minimum element count (m*n) before GEMV fans out to the thread pool.
inline constexpr Index kGemvParallelThreshold = 128 * 1024;

namespace detail {

/// Core packed-kernel entry on raw column-major views:
///   C(m x n, leading dim ldc) += alpha * op(A)(m x k) * op(B)(k x n)
/// with op resolved during packing. `lda`/`ldb` are the leading dimensions
/// of the *stored* (untransposed) operands. Used by gemm/gram and the
/// blocked-QR trailing updates; callers guarantee C does not alias A or B.
/// `allow_parallel` gates the pool fan-out (callers already running inside
/// a parallel_for must pass false).
void gemm_accumulate(Trans trans_a, Trans trans_b, Index m, Index n, Index k,
                     double alpha, const double* a, Index lda,
                     const double* b, Index ldb, double* c, Index ldc,
                     bool allow_parallel = true);

/// fp32 counterpart (same contract).
void gemm_accumulate_f32(Trans trans_a, Trans trans_b, Index m, Index n,
                         Index k, float alpha, const float* a, Index lda,
                         const float* b, Index ldb, float* c, Index ldc,
                         bool allow_parallel = true);

/// True when an (mr, nr) micro-kernel is instantiated for the precision —
/// the autotuner's feasibility check for sweep candidates.
bool has_kernel_f64(Index mr, Index nr);
bool has_kernel_f32(Index mr, Index nr);

/// Timed-probe entries for the autotuner: run the serial packed engine on
/// untransposed column-major operands with an *explicit* blocking (cache
/// blocks and micro tile), bypassing the cached active profile. C += A*B.
/// Throws parsvd::Error when (blk.mr, blk.nr) has no instantiated kernel.
void gemm_probe_f64(Index m, Index n, Index k, const double* a,
                    const double* b, double* c, const autotune::Blocking& blk);
void gemm_probe_f32(Index m, Index n, Index k, const float* a, const float* b,
                    float* c, const autotune::Blocking& blk);

}  // namespace detail

}  // namespace parsvd
