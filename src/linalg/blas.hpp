// BLAS-style dense kernels.
//
// The substrate the paper gets for free from NumPy/LAPACK. Level-3 matmul
// is cache-blocked and (above a size threshold) parallelized over the
// shared-memory thread pool; everything else is straightforward level-1/2
// code — the library's cost profile is dominated by GEMM and the
// factorizations built on it.
#pragma once

#include "linalg/matrix.hpp"

namespace parsvd {

/// Transposition selector for matmul operands.
enum class Trans { No, Yes };

// ------------------------------------------------------------- level 1

/// dot(x, y) = xᵀy
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// Euclidean norm with overflow-safe scaling.
double nrm2(std::span<const double> x);

// ------------------------------------------------------------- level 2

/// y = alpha * op(A) x + beta * y
void gemv(Trans trans_a, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y);

/// A += alpha * x yᵀ  (rank-1 update)
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ------------------------------------------------------------- level 3

/// C = alpha * op(A) op(B) + beta * C.
/// Shapes are validated; C must already have the result shape.
void gemm(Trans trans_a, Trans trans_b, double alpha, const Matrix& a,
          const Matrix& b, double beta, Matrix& c);

/// Convenience: returns op(A) op(B) as a fresh matrix.
Matrix matmul(const Matrix& a, const Matrix& b,
              Trans trans_a = Trans::No, Trans trans_b = Trans::No);

/// C = AᵀA (n x n Gram matrix), exploiting symmetry.
Matrix gram(const Matrix& a);

/// Minimum per-op element count before GEMM fans out to the thread pool;
/// exposed so tests can force both the serial and parallel paths.
inline constexpr Index kGemmParallelThreshold = 64 * 64 * 64;

}  // namespace parsvd
