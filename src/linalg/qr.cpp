#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/env.hpp"

namespace parsvd {
namespace {

// Generate a Householder reflector for x = (alpha; tail) such that
// (I - tau v vᵀ) x = (beta; 0), with v = (1; tail/ (alpha - beta)).
// Returns {tau, beta}; v's tail is written over x's tail.
struct Reflector {
  double tau;
  double beta;
};

Reflector make_reflector(double alpha, std::span<double> tail) {
  const double xnorm = nrm2(tail);
  if (xnorm == 0.0) {
    // Nothing below the diagonal: identity reflector.
    return {0.0, alpha};
  }
  double beta = std::hypot(alpha, xnorm);
  if (alpha >= 0.0) beta = -beta;  // choose sign to avoid cancellation
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  scal(inv, tail);
  return {tau, beta};
}

Index default_qr_block() {
  static const Index nb = std::clamp<Index>(
      env::get_int("PARSVD_QR_BLOCK", 32), 1, 1024);
  return nb;
}

// In-place C(mrow x nc, leading dim ldc) := (I - V op(T) Vᵀ) C — the
// compact-WY block reflector, i.e. Qᵀ C for op(T) = Tᵀ (transpose=true)
// and Q C for op(T) = T.  Both rank-jb products run through the packed
// GEMM engine; the small jb x jb triangular product stays serial.
void apply_wy(const Matrix& v, const Matrix& t, bool transpose, double* c,
              Index ldc, Index nc) {
  const Index mrow = v.rows();
  const Index jb = v.cols();
  if (nc == 0) return;

  // W = Vᵀ C  (jb x nc)
  Matrix w(jb, nc);
  detail::gemm_accumulate(Trans::Yes, Trans::No, jb, nc, mrow, 1.0, v.data(),
                          mrow, c, ldc, w.data(), jb);
  // W := op(T) W — T is jb x jb upper triangular.
  if (transpose) {
    // (Tᵀ W)_i = Σ_{l<=i} T(l,i) W_l; descending i keeps inputs intact.
    for (Index col = 0; col < nc; ++col) {
      double* wc = w.col_data(col);
      for (Index i = jb - 1; i >= 0; --i) {
        double s = 0.0;
        for (Index l = 0; l <= i; ++l) s += t(l, i) * wc[l];
        wc[i] = s;
      }
    }
  } else {
    // (T W)_i = Σ_{l>=i} T(i,l) W_l; ascending i keeps inputs intact.
    for (Index col = 0; col < nc; ++col) {
      double* wc = w.col_data(col);
      for (Index i = 0; i < jb; ++i) {
        double s = 0.0;
        for (Index l = i; l < jb; ++l) s += t(i, l) * wc[l];
        wc[i] = s;
      }
    }
  }
  // C -= V W
  detail::gemm_accumulate(Trans::No, Trans::No, mrow, nc, jb, -1.0, v.data(),
                          mrow, w.data(), jb, c, ldc);
}

}  // namespace

HouseholderQr::HouseholderQr(const Matrix& a) : HouseholderQr(a, 0) {}

HouseholderQr::HouseholderQr(const Matrix& a, Index block) : qr_(a) {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(m > 0 && n > 0, "QR of an empty matrix");
  PARSVD_TRACE_SCOPE("linalg.qr.factor");
  static obs::Counter& calls = obs::Registry::global().counter("linalg.qr.calls");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.qr.flops");
  calls.add(1);
  const Index k = std::min(m, n);
  // Householder QR cost model: 2mnk - 2k^3/3 (k = min(m, n)); since
  // k <= m and k <= n the subtraction can't wrap the unsigned counter.
  flops.add(2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
                static_cast<std::uint64_t>(k) -
            2ull * static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(k) *
                static_cast<std::uint64_t>(k) / 3);
  tau_.assign(static_cast<std::size_t>(k), 0.0);
  block_ = (block > 0) ? block : default_qr_block();
  if (block_ <= 1) {
    factor_unblocked();
  } else {
    factor_blocked();
  }
}

void HouseholderQr::factor_unblocked() {
  factor_panel(0, rank_bound(), qr_.cols());
}

void HouseholderQr::factor_blocked() {
  const Index n = qr_.cols();
  const Index k = rank_bound();
  for (Index j0 = 0; j0 < k; j0 += block_) {
    const Index jb = std::min(block_, k - j0);
    factor_panel(j0, jb, j0 + jb);
    const Index next = j0 + jb;
    if (next < n) {
      // Level-3 trailing update: A(j0:m, next:n) := Q_panelᵀ A(j0:m, next:n).
      const Matrix v = panel_v(j0, jb);
      const Matrix t = build_t(j0, jb);
      apply_wy(v, t, /*transpose=*/true, qr_.col_data(next) + j0, qr_.rows(),
               n - next);
    }
  }
}

void HouseholderQr::factor_panel(Index j0, Index jb, Index update_to) {
  const Index m = qr_.rows();
  for (Index jj = 0; jj < jb; ++jj) {
    const Index j = j0 + jj;
    double* colj = qr_.col_data(j);
    std::span<double> tail(colj + j + 1, static_cast<std::size_t>(m - j - 1));
    const Reflector h = make_reflector(colj[j], tail);
    tau_[static_cast<std::size_t>(j)] = h.tau;
    colj[j] = h.beta;
    if (h.tau == 0.0) continue;

    // Apply (I - tau v vᵀ) to the remaining panel columns.
    // v = (1, qr_(j+1..m-1, j)).
    for (Index c = j + 1; c < update_to; ++c) {
      double* colc = qr_.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += colj[i] * colc[i];
      w *= h.tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * colj[i];
    }
  }
}

Matrix HouseholderQr::panel_v(Index j0, Index jb) const {
  const Index m = qr_.rows();
  Matrix v(m - j0, jb);
  for (Index jj = 0; jj < jb; ++jj) {
    v(jj, jj) = 1.0;
    const double* col = qr_.col_data(j0 + jj);
    for (Index r = jj + 1; r < m - j0; ++r) v(r, jj) = col[j0 + r];
  }
  return v;
}

Matrix HouseholderQr::build_t(Index j0, Index jb) const {
  // LAPACK larft, forward columnwise: growing T so that
  // H_0 ... H_{i} = I - V(:,0:i+1) T(0:i+1,0:i+1) V(:,0:i+1)ᵀ with
  // T(0:i, i) = -tau_i T(0:i,0:i) (V(:,0:i)ᵀ v_i), T(i,i) = tau_i.
  const Index m = qr_.rows();
  Matrix t(jb, jb);
  std::vector<double> w(static_cast<std::size_t>(jb));
  for (Index i = 0; i < jb; ++i) {
    const double taui = tau_[static_cast<std::size_t>(j0 + i)];
    if (taui == 0.0) continue;  // identity reflector: column stays zero
    t(i, i) = taui;
    const Index row0 = j0 + i;  // row of v_i's implicit unit entry
    const double* vi = qr_.col_data(j0 + i);
    for (Index l = 0; l < i; ++l) {
      const double* vl = qr_.col_data(j0 + l);
      double s = vl[row0];  // v_l against v_i's implicit 1
      for (Index r = row0 + 1; r < m; ++r) s += vl[r] * vi[r];
      w[static_cast<std::size_t>(l)] = s;
    }
    for (Index l = 0; l < i; ++l) {
      double s = 0.0;
      for (Index p = l; p < i; ++p) s += t(l, p) * w[static_cast<std::size_t>(p)];
      t(l, i) = -taui * s;
    }
  }
  return t;
}

Matrix HouseholderQr::r() const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  const Index k = std::min(m, n);
  Matrix out(k, n);
  for (Index j = 0; j < n; ++j) {
    const Index upto = std::min(j + 1, k);
    for (Index i = 0; i < upto; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

Matrix HouseholderQr::thin_q() const {
  const Index m = qr_.rows();
  const Index k = rank_bound();
  // Start from the leading k columns of I and apply Q = H_0 ... H_{k-1}.
  Matrix q(m, k);
  for (Index j = 0; j < k; ++j) q(j, j) = 1.0;
  apply_q(q);
  return q;
}

void HouseholderQr::apply_blocked(Matrix& b, bool transpose) const {
  const Index k = rank_bound();
  const Index nc = b.cols();
  const Index nblocks = (k + block_ - 1) / block_;
  // Qᵀ B applies the reflector blocks forward, Q B in reverse.
  for (Index bi = 0; bi < nblocks; ++bi) {
    const Index blk = transpose ? bi : nblocks - 1 - bi;
    const Index j0 = blk * block_;
    const Index jb = std::min(block_, k - j0);
    const Matrix v = panel_v(j0, jb);
    const Matrix t = build_t(j0, jb);
    apply_wy(v, t, transpose, b.data() + j0, b.rows(), nc);
  }
}

void HouseholderQr::apply_qt(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_qt: row mismatch");
  if (block_ > 1) {
    apply_blocked(b, /*transpose=*/true);
    return;
  }
  const Index k = rank_bound();
  // Qᵀ = H_{k-1} ... H_0 applied in forward order.
  for (Index j = 0; j < k; ++j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

void HouseholderQr::apply_q(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_q: row mismatch");
  if (block_ > 1) {
    apply_blocked(b, /*transpose=*/false);
    return;
  }
  const Index k = rank_bound();
  // Q = H_0 ... H_{k-1} applied in reverse order.
  for (Index j = k - 1; j >= 0; --j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

Vector HouseholderQr::solve_least_squares(const Vector& b) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(b.size() == m, "least-squares rhs length mismatch");
  PARSVD_REQUIRE(m >= n, "least squares requires m >= n");

  Matrix rhs(m, 1);
  rhs.set_col(0, b);
  apply_qt(rhs);

  // Back substitution on the n x n upper triangle.
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double s = rhs(i, 0);
    for (Index j = i + 1; j < n; ++j) s -= qr_(i, j) * x[j];
    const double rii = qr_(i, i);
    PARSVD_REQUIRE(rii != 0.0, "rank-deficient least-squares system");
    x[i] = s / rii;
  }
  return x;
}

QrResult qr_thin_raw(const Matrix& a) {
  HouseholderQr f(a);
  return {f.thin_q(), f.r()};
}

QrResult qr_thin(const Matrix& a) {
  QrResult qr = qr_thin_raw(a);
  // Deterministic sign convention: flip so every diagonal of R is >= 0.
  const Index k = std::min(qr.r.rows(), qr.r.cols());
  for (Index i = 0; i < k; ++i) {
    if (qr.r(i, i) < 0.0) {
      for (Index j = 0; j < qr.r.cols(); ++j) qr.r(i, j) = -qr.r(i, j);
      double* qc = qr.q.col_data(i);
      for (Index r = 0; r < qr.q.rows(); ++r) qc[r] = -qc[r];
    }
  }
  return qr;
}

Index orthonormalize_mgs2(Matrix& a, double tol) {
  const Index n = a.cols();
  Index dropped = 0;
  std::vector<double> initial(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) initial[static_cast<std::size_t>(j)] = nrm2(a.col_span(j));

  for (Index j = 0; j < n; ++j) {
    auto colj = a.col_span(j);
    // Two MGS passes against all previous columns for CGS2-level
    // orthogonality (single-pass MGS loses orthogonality at kappa ~ 1e8).
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i < j; ++i) {
        const double proj = dot(a.col_span(i), colj);
        axpy(-proj, a.col_span(i), colj);
      }
    }
    const double norm = nrm2(colj);
    const double floor_norm = tol * std::max(initial[static_cast<std::size_t>(j)], 1.0);
    if (norm <= floor_norm) {
      std::fill(colj.begin(), colj.end(), 0.0);
      ++dropped;
    } else {
      scal(1.0 / norm, colj);
    }
  }
  return dropped;
}

double orthogonality_error(const Matrix& q) {
  const Matrix g = gram(q);
  double err = 0.0;
  for (Index j = 0; j < g.cols(); ++j) {
    for (Index i = 0; i < g.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      err = std::max(err, std::fabs(g(i, j) - target));
    }
  }
  return err;
}

}  // namespace parsvd
