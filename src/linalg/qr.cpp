#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"

namespace parsvd {
namespace {

// Generate a Householder reflector for x = (alpha; tail) such that
// (I - tau v vᵀ) x = (beta; 0), with v = (1; tail/ (alpha - beta)).
// Returns {tau, beta}; v's tail is written over x's tail.
struct Reflector {
  double tau;
  double beta;
};

Reflector make_reflector(double alpha, std::span<double> tail) {
  const double xnorm = nrm2(tail);
  if (xnorm == 0.0) {
    // Nothing below the diagonal: identity reflector.
    return {0.0, alpha};
  }
  double beta = std::hypot(alpha, xnorm);
  if (alpha >= 0.0) beta = -beta;  // choose sign to avoid cancellation
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  scal(inv, tail);
  return {tau, beta};
}

}  // namespace

HouseholderQr::HouseholderQr(const Matrix& a) : qr_(a) {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(m > 0 && n > 0, "QR of an empty matrix");
  const Index k = std::min(m, n);
  tau_.assign(static_cast<std::size_t>(k), 0.0);

  std::vector<double> work(static_cast<std::size_t>(n));
  for (Index j = 0; j < k; ++j) {
    double* colj = qr_.col_data(j);
    std::span<double> tail(colj + j + 1, static_cast<std::size_t>(m - j - 1));
    const Reflector h = make_reflector(colj[j], tail);
    tau_[static_cast<std::size_t>(j)] = h.tau;
    colj[j] = h.beta;
    if (h.tau == 0.0) continue;

    // Apply (I - tau v vᵀ) to the trailing columns j+1..n-1.
    // v = (1, qr_(j+1..m-1, j)).
    for (Index c = j + 1; c < n; ++c) {
      double* colc = qr_.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += colj[i] * colc[i];
      w *= h.tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * colj[i];
    }
  }
}

Matrix HouseholderQr::r() const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  const Index k = std::min(m, n);
  Matrix out(k, n);
  for (Index j = 0; j < n; ++j) {
    const Index upto = std::min(j + 1, k);
    for (Index i = 0; i < upto; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

Matrix HouseholderQr::thin_q() const {
  const Index m = qr_.rows();
  const Index k = rank_bound();
  // Start from the leading k columns of I and apply Q = H_0 ... H_{k-1}.
  Matrix q(m, k);
  for (Index j = 0; j < k; ++j) q(j, j) = 1.0;
  apply_q(q);
  return q;
}

void HouseholderQr::apply_qt(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_qt: row mismatch");
  const Index k = rank_bound();
  // Qᵀ = H_{k-1} ... H_0 applied in forward order.
  for (Index j = 0; j < k; ++j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

void HouseholderQr::apply_q(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_q: row mismatch");
  const Index k = rank_bound();
  // Q = H_0 ... H_{k-1} applied in reverse order.
  for (Index j = k - 1; j >= 0; --j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

Vector HouseholderQr::solve_least_squares(const Vector& b) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(b.size() == m, "least-squares rhs length mismatch");
  PARSVD_REQUIRE(m >= n, "least squares requires m >= n");

  Matrix rhs(m, 1);
  rhs.set_col(0, b);
  apply_qt(rhs);

  // Back substitution on the n x n upper triangle.
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double s = rhs(i, 0);
    for (Index j = i + 1; j < n; ++j) s -= qr_(i, j) * x[j];
    const double rii = qr_(i, i);
    PARSVD_REQUIRE(rii != 0.0, "rank-deficient least-squares system");
    x[i] = s / rii;
  }
  return x;
}

QrResult qr_thin_raw(const Matrix& a) {
  HouseholderQr f(a);
  return {f.thin_q(), f.r()};
}

QrResult qr_thin(const Matrix& a) {
  QrResult qr = qr_thin_raw(a);
  // Deterministic sign convention: flip so every diagonal of R is >= 0.
  const Index k = std::min(qr.r.rows(), qr.r.cols());
  for (Index i = 0; i < k; ++i) {
    if (qr.r(i, i) < 0.0) {
      for (Index j = 0; j < qr.r.cols(); ++j) qr.r(i, j) = -qr.r(i, j);
      double* qc = qr.q.col_data(i);
      for (Index r = 0; r < qr.q.rows(); ++r) qc[r] = -qc[r];
    }
  }
  return qr;
}

Index orthonormalize_mgs2(Matrix& a, double tol) {
  const Index m = a.rows();
  const Index n = a.cols();
  Index dropped = 0;
  std::vector<double> initial(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) initial[static_cast<std::size_t>(j)] = nrm2(a.col_span(j));

  for (Index j = 0; j < n; ++j) {
    auto colj = a.col_span(j);
    // Two MGS passes against all previous columns for CGS2-level
    // orthogonality (single-pass MGS loses orthogonality at kappa ~ 1e8).
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i < j; ++i) {
        const double proj = dot(a.col_span(i), colj);
        axpy(-proj, a.col_span(i), colj);
      }
    }
    const double norm = nrm2(colj);
    const double floor_norm = tol * std::max(initial[static_cast<std::size_t>(j)], 1.0);
    if (norm <= floor_norm) {
      std::fill(colj.begin(), colj.end(), 0.0);
      ++dropped;
    } else {
      scal(1.0 / norm, colj);
    }
  }
  (void)m;
  return dropped;
}

double orthogonality_error(const Matrix& q) {
  const Matrix g = gram(q);
  double err = 0.0;
  for (Index j = 0; j < g.cols(); ++j) {
    for (Index i = 0; i < g.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      err = std::max(err, std::fabs(g(i, j) - target));
    }
  }
  return err;
}

}  // namespace parsvd
