#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/autotune.hpp"
#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace parsvd {
namespace {

// Generate a Householder reflector for x = (alpha; tail) such that
// (I - tau v vᵀ) x = (beta; 0), with v = (1; tail/ (alpha - beta)).
// Returns {tau, beta}; v's tail is written over x's tail.
struct Reflector {
  double tau;
  double beta;
};

Reflector make_reflector(double alpha, std::span<double> tail) {
  const double xnorm = nrm2(tail);
  if (xnorm == 0.0) {
    // Nothing below the diagonal: identity reflector.
    return {0.0, alpha};
  }
  double beta = std::hypot(alpha, xnorm);
  if (alpha >= 0.0) beta = -beta;  // choose sign to avoid cancellation
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  scal(inv, tail);
  return {tau, beta};
}

Index default_qr_block() {
  // The autotune profile already folds in the PARSVD_QR_BLOCK override
  // (defaults -> profile file -> env; see linalg/autotune.hpp).
  return autotune::active_profile().qr_block;
}

// In-place C(mrow x nc, leading dim ldc) := (I - V op(T) Vᵀ) C — the
// compact-WY block reflector, i.e. Qᵀ C for op(T) = Tᵀ (transpose=true)
// and Q C for op(T) = T.  Both rank-jb products run through the packed
// GEMM engine; the small jb x jb triangular product stays serial.
void apply_wy(const Matrix& v, const Matrix& t, bool transpose, double* c,
              Index ldc, Index nc) {
  const Index mrow = v.rows();
  const Index jb = v.cols();
  if (nc == 0) return;

  // W = Vᵀ C  (jb x nc)
  Matrix w(jb, nc);
  detail::gemm_accumulate(Trans::Yes, Trans::No, jb, nc, mrow, 1.0, v.data(),
                          mrow, c, ldc, w.data(), jb);
  // W := op(T) W — T is jb x jb upper triangular.
  if (transpose) {
    // (Tᵀ W)_i = Σ_{l<=i} T(l,i) W_l; descending i keeps inputs intact.
    for (Index col = 0; col < nc; ++col) {
      double* wc = w.col_data(col);
      for (Index i = jb - 1; i >= 0; --i) {
        double s = 0.0;
        for (Index l = 0; l <= i; ++l) s += t(l, i) * wc[l];
        wc[i] = s;
      }
    }
  } else {
    // (T W)_i = Σ_{l>=i} T(i,l) W_l; ascending i keeps inputs intact.
    for (Index col = 0; col < nc; ++col) {
      double* wc = w.col_data(col);
      for (Index i = 0; i < jb; ++i) {
        double s = 0.0;
        for (Index l = i; l < jb; ++l) s += t(i, l) * wc[l];
        wc[i] = s;
      }
    }
  }
  // C -= V W
  detail::gemm_accumulate(Trans::No, Trans::No, mrow, nc, jb, -1.0, v.data(),
                          mrow, w.data(), jb, c, ldc);
}

}  // namespace

HouseholderQr::HouseholderQr(const Matrix& a) : HouseholderQr(a, 0) {}

HouseholderQr::HouseholderQr(const Matrix& a, Index block) : qr_(a) {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(m > 0 && n > 0, "QR of an empty matrix");
  PARSVD_TRACE_SCOPE("linalg.qr.factor");
  static obs::Counter& calls = obs::Registry::global().counter("linalg.qr.calls");
  static obs::Counter& flops = obs::Registry::global().counter("linalg.qr.flops");
  calls.add(1);
  const Index k = std::min(m, n);
  // Householder QR cost model: 2mnk - 2k^3/3 (k = min(m, n)); since
  // k <= m and k <= n the subtraction can't wrap the unsigned counter.
  flops.add(2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
                static_cast<std::uint64_t>(k) -
            2ull * static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(k) *
                static_cast<std::uint64_t>(k) / 3);
  tau_.assign(static_cast<std::size_t>(k), 0.0);
  block_ = (block > 0) ? block : default_qr_block();
  if (block_ <= 1) {
    factor_unblocked();
  } else {
    factor_blocked();
  }
}

void HouseholderQr::factor_unblocked() {
  factor_panel(0, rank_bound(), qr_.cols());
}

void HouseholderQr::factor_blocked() {
  const Index n = qr_.cols();
  const Index k = rank_bound();
  for (Index j0 = 0; j0 < k; j0 += block_) {
    const Index jb = std::min(block_, k - j0);
    factor_panel(j0, jb, j0 + jb);
    const Index next = j0 + jb;
    if (next < n) {
      // Level-3 trailing update: A(j0:m, next:n) := Q_panelᵀ A(j0:m, next:n).
      const Matrix v = panel_v(j0, jb);
      const Matrix t = build_t(j0, jb);
      apply_wy(v, t, /*transpose=*/true, qr_.col_data(next) + j0, qr_.rows(),
               n - next);
    }
  }
}

void HouseholderQr::factor_panel(Index j0, Index jb, Index update_to) {
  const Index m = qr_.rows();
  for (Index jj = 0; jj < jb; ++jj) {
    const Index j = j0 + jj;
    double* colj = qr_.col_data(j);
    std::span<double> tail(colj + j + 1, static_cast<std::size_t>(m - j - 1));
    const Reflector h = make_reflector(colj[j], tail);
    tau_[static_cast<std::size_t>(j)] = h.tau;
    colj[j] = h.beta;
    if (h.tau == 0.0) continue;

    // Apply (I - tau v vᵀ) to the remaining panel columns.
    // v = (1, qr_(j+1..m-1, j)).
    for (Index c = j + 1; c < update_to; ++c) {
      double* colc = qr_.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += colj[i] * colc[i];
      w *= h.tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * colj[i];
    }
  }
}

Matrix HouseholderQr::panel_v(Index j0, Index jb) const {
  const Index m = qr_.rows();
  Matrix v(m - j0, jb);
  for (Index jj = 0; jj < jb; ++jj) {
    v(jj, jj) = 1.0;
    const double* col = qr_.col_data(j0 + jj);
    for (Index r = jj + 1; r < m - j0; ++r) v(r, jj) = col[j0 + r];
  }
  return v;
}

Matrix HouseholderQr::build_t(Index j0, Index jb) const {
  // LAPACK larft, forward columnwise: growing T so that
  // H_0 ... H_{i} = I - V(:,0:i+1) T(0:i+1,0:i+1) V(:,0:i+1)ᵀ with
  // T(0:i, i) = -tau_i T(0:i,0:i) (V(:,0:i)ᵀ v_i), T(i,i) = tau_i.
  const Index m = qr_.rows();
  Matrix t(jb, jb);
  std::vector<double> w(static_cast<std::size_t>(jb));
  for (Index i = 0; i < jb; ++i) {
    const double taui = tau_[static_cast<std::size_t>(j0 + i)];
    if (taui == 0.0) continue;  // identity reflector: column stays zero
    t(i, i) = taui;
    const Index row0 = j0 + i;  // row of v_i's implicit unit entry
    const double* vi = qr_.col_data(j0 + i);
    for (Index l = 0; l < i; ++l) {
      const double* vl = qr_.col_data(j0 + l);
      double s = vl[row0];  // v_l against v_i's implicit 1
      for (Index r = row0 + 1; r < m; ++r) s += vl[r] * vi[r];
      w[static_cast<std::size_t>(l)] = s;
    }
    for (Index l = 0; l < i; ++l) {
      double s = 0.0;
      for (Index p = l; p < i; ++p) s += t(l, p) * w[static_cast<std::size_t>(p)];
      t(l, i) = -taui * s;
    }
  }
  return t;
}

Matrix HouseholderQr::r() const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  const Index k = std::min(m, n);
  Matrix out(k, n);
  for (Index j = 0; j < n; ++j) {
    const Index upto = std::min(j + 1, k);
    for (Index i = 0; i < upto; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

Matrix HouseholderQr::thin_q() const {
  const Index m = qr_.rows();
  const Index k = rank_bound();
  // Start from the leading k columns of I and apply Q = H_0 ... H_{k-1}.
  Matrix q(m, k);
  for (Index j = 0; j < k; ++j) q(j, j) = 1.0;
  apply_q(q);
  return q;
}

void HouseholderQr::apply_blocked(Matrix& b, bool transpose) const {
  const Index k = rank_bound();
  const Index nc = b.cols();
  const Index nblocks = (k + block_ - 1) / block_;
  // Qᵀ B applies the reflector blocks forward, Q B in reverse.
  for (Index bi = 0; bi < nblocks; ++bi) {
    const Index blk = transpose ? bi : nblocks - 1 - bi;
    const Index j0 = blk * block_;
    const Index jb = std::min(block_, k - j0);
    const Matrix v = panel_v(j0, jb);
    const Matrix t = build_t(j0, jb);
    apply_wy(v, t, transpose, b.data() + j0, b.rows(), nc);
  }
}

void HouseholderQr::apply_qt(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_qt: row mismatch");
  if (block_ > 1) {
    apply_blocked(b, /*transpose=*/true);
    return;
  }
  const Index k = rank_bound();
  // Qᵀ = H_{k-1} ... H_0 applied in forward order.
  for (Index j = 0; j < k; ++j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

void HouseholderQr::apply_q(Matrix& b) const {
  const Index m = qr_.rows();
  PARSVD_REQUIRE(b.rows() == m, "apply_q: row mismatch");
  if (block_ > 1) {
    apply_blocked(b, /*transpose=*/false);
    return;
  }
  const Index k = rank_bound();
  // Q = H_0 ... H_{k-1} applied in reverse order.
  for (Index j = k - 1; j >= 0; --j) {
    const double tau = tau_[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    const double* v = qr_.col_data(j);
    for (Index c = 0; c < b.cols(); ++c) {
      double* colc = b.col_data(c);
      double w = colc[j];
      for (Index i = j + 1; i < m; ++i) w += v[i] * colc[i];
      w *= tau;
      colc[j] -= w;
      for (Index i = j + 1; i < m; ++i) colc[i] -= w * v[i];
    }
  }
}

Vector HouseholderQr::solve_least_squares(const Vector& b) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  PARSVD_REQUIRE(b.size() == m, "least-squares rhs length mismatch");
  PARSVD_REQUIRE(m >= n, "least squares requires m >= n");

  Matrix rhs(m, 1);
  rhs.set_col(0, b);
  apply_qt(rhs);

  // Back substitution on the n x n upper triangle.
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double s = rhs(i, 0);
    for (Index j = i + 1; j < n; ++j) s -= qr_(i, j) * x[j];
    const double rii = qr_(i, i);
    PARSVD_REQUIRE(rii != 0.0, "rank-deficient least-squares system");
    x[i] = s / rii;
  }
  return x;
}

QrResult qr_thin_raw(const Matrix& a) {
  HouseholderQr f(a);
  return {f.thin_q(), f.r()};
}

QrResult qr_thin(const Matrix& a) {
  QrResult qr = qr_thin_raw(a);
  // Deterministic sign convention: flip so every diagonal of R is >= 0.
  const Index k = std::min(qr.r.rows(), qr.r.cols());
  for (Index i = 0; i < k; ++i) {
    if (qr.r(i, i) < 0.0) {
      for (Index j = 0; j < qr.r.cols(); ++j) qr.r(i, j) = -qr.r(i, j);
      double* qc = qr.q.col_data(i);
      for (Index r = 0; r < qr.q.rows(); ++r) qc[r] = -qc[r];
    }
  }
  return qr;
}

namespace {

// fp32 column helpers with double accumulation (a float dot over 10^4+
// rows loses ~3 digits if accumulated in float; the widening is free on
// scalar units and irrelevant next to the fp32 GEMM savings).
double dot_f32(std::span<const float> x, std::span<const float> y) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return s;
}

void axpy_f32(float alpha, std::span<const float> x, std::span<float> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

Index orthonormalize_mgs2_f32(MatrixF& a, float tol) {
  const Index n = a.cols();
  Index dropped = 0;
  std::vector<double> initial(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    initial[static_cast<std::size_t>(j)] =
        std::sqrt(dot_f32(a.col_span(j), a.col_span(j)));
  }

  for (Index j = 0; j < n; ++j) {
    auto colj = a.col_span(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i < j; ++i) {
        const double proj = dot_f32(a.col_span(i), colj);
        axpy_f32(static_cast<float>(-proj), a.col_span(i), colj);
      }
    }
    const double norm = std::sqrt(dot_f32(colj, colj));
    const double floor_norm = static_cast<double>(tol) *
                              std::max(initial[static_cast<std::size_t>(j)], 1.0);
    if (norm <= floor_norm) {
      std::fill(colj.begin(), colj.end(), 0.0f);
      ++dropped;
    } else {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& v : colj) v *= inv;
    }
  }
  return dropped;
}

Index orthonormalize_mgs2(Matrix& a, double tol) {
  const Index n = a.cols();
  Index dropped = 0;
  std::vector<double> initial(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) initial[static_cast<std::size_t>(j)] = nrm2(a.col_span(j));

  for (Index j = 0; j < n; ++j) {
    auto colj = a.col_span(j);
    // Two MGS passes against all previous columns for CGS2-level
    // orthogonality (single-pass MGS loses orthogonality at kappa ~ 1e8).
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i < j; ++i) {
        const double proj = dot(a.col_span(i), colj);
        axpy(-proj, a.col_span(i), colj);
      }
    }
    const double norm = nrm2(colj);
    const double floor_norm = tol * std::max(initial[static_cast<std::size_t>(j)], 1.0);
    if (norm <= floor_norm) {
      std::fill(colj.begin(), colj.end(), 0.0);
      ++dropped;
    } else {
      scal(1.0 / norm, colj);
    }
  }
  return dropped;
}

namespace {

// Cholesky S = RᵀR of a symmetric matrix (full storage), R left in the
// upper triangle, strict lower zeroed. Fails (false) on a pivot at or
// below `pivot_floor` — the caller sets the floor to the Gram noise level
// of the precision that computed S, so "breakdown" means the
// factorization would be resolving noise, not data. The `!(d > ...)`
// form also catches NaN from an overflowed Gram.
bool cholesky_upper(Matrix& s, double pivot_floor) {
  const Index n = s.rows();
  for (Index j = 0; j < n; ++j) {
    double d = s(j, j);
    for (Index k = 0; k < j; ++k) d -= s(k, j) * s(k, j);
    if (!(d > pivot_floor)) return false;
    const double r = std::sqrt(d);
    s(j, j) = r;
    for (Index i = j + 1; i < n; ++i) {
      double v = s(j, i);
      for (Index k = 0; k < j; ++k) v -= s(k, j) * s(k, i);
      s(j, i) = v / r;
    }
  }
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) s(i, j) = 0.0;
  }
  return true;
}

// Inverse of an upper-triangular R by back substitution, column by
// column. n is the sketch width (tens), so the O(n^3) scalar loops are
// noise next to the m x n GEMMs around them.
Matrix upper_inverse(const Matrix& r) {
  const Index n = r.rows();
  Matrix inv(n, n);
  for (Index j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / r(j, j);
    for (Index i = j - 1; i >= 0; --i) {
      double s = 0.0;
      for (Index k = i + 1; k <= j; ++k) s += r(i, k) * inv(k, j);
      inv(i, j) = -s / r(i, i);
    }
  }
  return inv;
}

// One fp64 CholeskyQR pass. `pivot_rel` scales the breakdown floor by the
// largest Gram diagonal.
bool cholqr_pass(Matrix& a, double pivot_rel) {
  Matrix s = gram(a);
  double max_diag = 0.0;
  for (Index j = 0; j < s.cols(); ++j) max_diag = std::max(max_diag, s(j, j));
  if (!(max_diag > 0.0)) return false;
  if (!cholesky_upper(s, pivot_rel * max_diag)) return false;
  const Matrix rinv = upper_inverse(s);
  Matrix out(a.rows(), a.cols());
  gemm(Trans::No, Trans::No, 1.0, a, rinv, 0.0, out);
  a = std::move(out);
  return true;
}

// fp32 pass: Gram and the basis update through the packed fp32 engine,
// the small factorization in double (free, and it keeps one Cholesky).
bool cholqr_pass_f32(MatrixF& a, double pivot_rel) {
  MatrixF sf(a.cols(), a.cols());
  gemm_f32(Trans::Yes, Trans::No, 1.0f, a, a, 0.0f, sf);
  Matrix s(a.cols(), a.cols());
  double max_diag = 0.0;
  for (Index j = 0; j < sf.cols(); ++j) {
    for (Index i = 0; i < sf.rows(); ++i) s(i, j) = static_cast<double>(sf(i, j));
    max_diag = std::max(max_diag, s(j, j));
  }
  if (!(max_diag > 0.0)) return false;
  if (!cholesky_upper(s, pivot_rel * max_diag)) return false;
  const Matrix rinv = upper_inverse(s);
  MatrixF rinvf(rinv.rows(), rinv.cols());
  for (Index j = 0; j < rinv.cols(); ++j) {
    for (Index i = 0; i < rinv.rows(); ++i) {
      rinvf(i, j) = static_cast<float>(rinv(i, j));
    }
  }
  MatrixF out(a.rows(), a.cols());
  gemm_f32(Trans::No, Trans::No, 1.0f, a, rinvf, 0.0f, out);
  a = std::move(out);
  return true;
}

}  // namespace

Index orthonormalize_cholqr2(Matrix& a, double tol) {
  if (a.cols() == 0) return 0;
  // Pivot floor at the fp64 Gram noise level: kappa(A)^2 beyond ~1e13
  // means the first Gram is numerically singular and MGS2 (which never
  // squares the condition number) is the right tool.
  Matrix backup = a;
  if (cholqr_pass(a, 1e-13) && cholqr_pass(a, 1e-13)) return 0;
  a = std::move(backup);
  return orthonormalize_mgs2(a, tol);
}

Index orthonormalize_cholqr2_f32(MatrixF& a, float tol) {
  if (a.cols() == 0) return 0;
  // fp32 Gram noise sits near 1e-7 relative, so breakdown fires around
  // kappa(A) ~ 3e3 — exactly where fp32 CholeskyQR stops being safe.
  MatrixF backup = a;
  if (cholqr_pass_f32(a, 1e-6) && cholqr_pass_f32(a, 1e-6)) return 0;
  a = std::move(backup);
  return orthonormalize_mgs2_f32(a, tol);
}

double orthogonality_error(const Matrix& q) {
  const Matrix g = gram(q);
  double err = 0.0;
  for (Index j = 0; j < g.cols(); ++j) {
    for (Index i = 0; i < g.rows(); ++i) {
      const double target = (i == j) ? 1.0 : 0.0;
      err = std::max(err, std::fabs(g(i, j) - target));
    }
  }
  return err;
}

}  // namespace parsvd
